module repaircount

go 1.24

package repaircount

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"

	"repaircount/internal/ntt"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

// TestEndToEndPipeline exercises the whole stack in one pass:
// generate a workload → serialize → parse back → count with every exact
// algorithm → validate the Algorithm 2 compactor → cross-check the
// Algorithm 1 NTT → approximate with the FPRAS → rank answers.
func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewPCG(2025, 610))
	gdb, gks := workload.Employee(rng, 12, 3, 0.5)

	// Serialize and re-parse: the text codec must round-trip the instance.
	var b strings.Builder
	if err := relational.WriteInstance(&b, gdb, gks); err != nil {
		t.Fatal(err)
	}
	db, keys, err := ParseInstanceString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != gdb.Len() {
		t.Fatalf("codec round trip lost facts: %d vs %d", db.Len(), gdb.Len())
	}

	q := workload.SameDeptQuery(1, 2)
	c, err := NewCounter(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	inst := c.Instance()

	// Every exact algorithm agrees.
	enum, err := inst.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := inst.CountIE(0)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := inst.CountCompactor()
	if err != nil {
		t.Fatal(err)
	}
	fo, err := inst.CountEnumFO(0)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*big.Int{"ie": ie, "compactor": comp, "fo": fo} {
		if got.Cmp(enum) != 0 {
			t.Fatalf("%s = %s, enum = %s", name, got, enum)
		}
	}

	// The compactor is structurally valid and the NTT span agrees.
	cc, err := inst.Compactor()
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}
	span, err := ntt.Span(ntt.CQATransducer(inst.UCQ, inst.Keys, inst.DB), 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(enum) != 0 {
		t.Fatalf("NTT span %s vs exact %s", span, enum)
	}

	// Decision consistency.
	if c.Decide() != (enum.Sign() > 0) {
		t.Fatalf("decision disagrees with count")
	}

	// FPRAS lands in the ε-band (when the count is non-trivial).
	if enum.Sign() > 0 {
		est, err := c.Approximate(0.2, 0.05, 1234)
		if err != nil {
			t.Fatal(err)
		}
		lo := new(big.Float).Mul(new(big.Float).SetInt(enum), big.NewFloat(0.8))
		hi := new(big.Float).Mul(new(big.Float).SetInt(enum), big.NewFloat(1.2))
		if est.Value.Cmp(lo) < 0 || est.Value.Cmp(hi) > 0 {
			t.Fatalf("FPRAS estimate %v outside [%v, %v]", est.Value, lo, hi)
		}
	}

	// Answer ranking over a non-Boolean variant.
	rq, err := ParseQuery("exists i, n . Employee(i, n, d)")
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankAnswers(db, keys, rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatalf("no departments ranked")
	}
	prev := big.NewRat(2, 1)
	for _, r := range ranked {
		if r.Frequency.Cmp(prev) > 0 {
			t.Fatalf("ranking not sorted: %v", ranked)
		}
		prev = r.Frequency
		if r.Frequency.Sign() <= 0 || r.Frequency.Cmp(big.NewRat(1, 1)) > 0 {
			t.Fatalf("frequency %s out of (0,1]", r.Frequency)
		}
	}
}

// TestRobustnessNoPanics feeds malformed inputs through every parser: they
// must return errors, never panic.
func TestRobustnessNoPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	alphabet := `R(x,y)'"\&|!->.,exists forall key 123 #$%⋆ ` + "\n\t"
	for i := 0; i < 3000; i++ {
		n := rng.IntN(40)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.IntN(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on query input %q: %v", src, r)
				}
			}()
			_, _ = ParseQuery(src)
		}()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on instance input %q: %v", src, r)
				}
			}()
			_, _, _ = ParseInstanceString(src)
		}()
	}
}

package repaircount

import (
	"math/big"
	"testing"
)

func TestRankAnswersExample(t *testing.T) {
	db, keys, err := ParseInstanceString(exampleInstanceText)
	if err != nil {
		t.Fatal(err)
	}
	// Who works in IT, and how certain is each name?
	q, err := ParseQuery("exists i . Employee(i, n, 'IT')")
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankAnswers(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates over D: Bob, Alice, Tim. Frequencies: Bob 1/2 (only when
	// his IT tuple survives), Alice 1/2, Tim 1/2.
	if len(ranked) != 3 {
		t.Fatalf("ranked = %v", ranked)
	}
	half := big.NewRat(1, 2)
	for _, r := range ranked {
		if r.Frequency.Cmp(half) != 0 {
			t.Errorf("tuple %v frequency %s, want 1/2", r.Tuple, r.Frequency)
		}
		if r.Count.Cmp(big.NewInt(2)) != 0 {
			t.Errorf("tuple %v count %s, want 2", r.Tuple, r.Count)
		}
	}
	// Ties broken lexicographically: Alice, Bob, Tim.
	if ranked[0].Tuple[0] != "Alice" || ranked[1].Tuple[0] != "Bob" || ranked[2].Tuple[0] != "Tim" {
		t.Fatalf("tie-break order wrong: %v", ranked)
	}
}

func TestRankAnswersSortsByFrequency(t *testing.T) {
	db, keys, err := ParseInstanceString(`
		key P 1
		P(1, x)
		P(1, y)
		P(2, x)
	`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("exists i . P(i, v)")
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := RankAnswers(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	// v=x holds in both repairs (P(2,x) is certain): frequency 1.
	// v=y holds only when P(1,y) survives: frequency 1/2.
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0].Tuple[0] != "x" || ranked[0].Frequency.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("top answer wrong: %v", ranked[0])
	}
	if ranked[1].Tuple[0] != "y" || ranked[1].Frequency.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("second answer wrong: %v", ranked[1])
	}
	certain, err := CertainAnswers(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(certain) != 1 || certain[0][0] != "x" {
		t.Fatalf("certain answers = %v, want [x]", certain)
	}
	possible, err := PossibleAnswers(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(possible) != 2 {
		t.Fatalf("possible answers = %v", possible)
	}
}

func TestRankAnswersRejections(t *testing.T) {
	db, keys, _ := ParseInstanceString(exampleInstanceText)
	if _, err := RankAnswers(db, keys, MustParseQuery(t, "!Employee(1, n, 'IT')")); err == nil {
		t.Fatalf("FO query accepted by RankAnswers")
	}
	if _, err := RankAnswers(db, keys, MustParseQuery(t, "exists i, n . Employee(i, n, 'IT')")); err == nil {
		t.Fatalf("Boolean query accepted by RankAnswers")
	}
}

func MustParseQuery(t *testing.T, src string) Formula {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRankAnswersOmitsZeroSupport(t *testing.T) {
	// R(1,a) conflicts with R(1,b); query asks for pairs (v,w) with
	// R(i,v) & R(i,w): (a,b) is an answer over D but no repair holds both.
	db, keys, err := ParseInstanceString(`
		key R 1
		R(1, a)
		R(1, b)
	`)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(t, "exists i . (R(i, v) & R(i, w))")
	ranked, err := RankAnswers(db, keys, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		if r.Tuple[0] != r.Tuple[1] {
			t.Fatalf("cross tuple %v has support %s; conflicting facts cannot co-occur", r.Tuple, r.Count)
		}
	}
	if len(ranked) != 2 {
		t.Fatalf("want exactly (a,a) and (b,b), got %v", ranked)
	}
}

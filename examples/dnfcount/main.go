// DNF counting: #DisjPoskDNF (paper §7.1) through the Λ[k] machinery.
//
// The program builds a partitioned positive 2DNF instance, counts its
// satisfying P-assignments four ways — brute force, compactor unfold
// (inclusion–exclusion), the Theorem 6.2 FPRAS, and #CQA after the
// Theorem 5.1 reduction into repair counting — and prints the compact
// representation strings of Definition 4.1 along the way.
//
// Run with: go run ./examples/dnfcount
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repaircount/internal/core"
	"repaircount/internal/problems/dnf"
	"repaircount/internal/reductions"
	"repaircount/internal/repairs"
)

func main() {
	// X = {x0..x5}, P = {{x0,x1},{x2,x3},{x4,x5}},
	// φ = (x0 ∧ x2) ∨ (x3 ∧ x4) ∨ x1.
	in := dnf.MustInstance(
		dnf.Formula{
			NumVars: 6,
			Width:   2,
			Clauses: []dnf.Clause{{0, 2}, {3, 4}, {1}},
		},
		dnf.Partition{{0, 1}, {2, 3}, {4, 5}},
	)
	fmt.Println("φ = (x0 ∧ x2) ∨ (x3 ∧ x4) ∨ x1 over partition {x0,x1},{x2,x3},{x4,x5}")
	fmt.Printf("P-assignments: %s (choose one variable per class)\n\n", in.TotalAssignments())

	// The k-compactor of Theorem 7.1 and its compact representations.
	c := in.Compactor()
	fmt.Printf("k-compactor with k = %d; compact representations [[S1..Sn]]_k per clause:\n", c.K)
	for _, box := range c.Boxes() {
		fmt.Printf("  %s\n", core.EncodeCompact(c.Doms, box))
	}
	fmt.Println()

	bf := in.CountBruteForce()
	unfold, err := c.CountExact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute force:        %s\n", bf)
	fmt.Printf("compactor unfold:   %s\n", unfold)

	est, err := c.Apx(0.1, 0.05, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPRAS (ε=0.1):      %s  (t=%d samples)\n", est.Value.Text('f', 2), est.Samples)

	// Reduce into repair counting (Theorem 5.1 hardness direction): the
	// count survives the trip into #CQA(Q_k, Σ_k).
	img, err := reductions.LambdaToCQA(c)
	if err != nil {
		log.Fatal(err)
	}
	cqa := repairs.MustInstance(img.DB, img.Keys, img.Q)
	viaCQA, algo, err := cqa.CountExact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via #CQA reduction: %s  (database D_x has %d facts; counted by %s)\n",
		viaCQA, img.DB.Len(), algo)
	fmt.Printf("\nfixed query of the reduction:\n  Q_%d = %s\n", c.K, img.Q)
}

// SpanLL: why unbounded problems need the complex sample space (§7.2).
//
// #DisjPosDNF — positive DNF with *unbounded* clause width — is
// SpanLL-complete (Theorem 7.5). The natural-space FPRAS of Theorem 6.2
// needs t = (2+ε)·m^k/ε²·ln(2/δ) samples, which explodes with the clause
// width k; the Karp–Luby estimator over (box, tuple) pairs keeps a budget
// proportional to the number of clauses instead (Theorem 7.4). This
// program makes the divergence concrete.
//
// Run with: go run ./examples/spanll
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repaircount/internal/core"
	"repaircount/internal/problems/dnf"
)

func main() {
	const classSize = 3
	const eps, delta = 0.25, 0.1
	fmt.Println("#DisjPosDNF with one clause spanning k classes of size 3")
	fmt.Printf("%-4s %-14s %-16s %-10s %-12s %-10s\n",
		"k", "m^k", "natural-space t", "KL t", "KL estimate", "exact")
	for _, k := range []int{2, 4, 8, 16, 24} {
		// k classes of 3 variables; one clause selecting the first variable
		// of every class, plus a short clause to keep the union non-trivial.
		var part dnf.Partition
		n := 0
		for c := 0; c < k; c++ {
			part = append(part, []int{n, n + 1, n + 2})
			n += 3
		}
		var wide dnf.Clause
		for c := 0; c < k; c++ {
			wide = append(wide, part[c][0])
		}
		narrow := dnf.Clause{part[0][1], part[1][1]}
		in := dnf.MustInstance(
			dnf.Formula{NumVars: n, Width: -1, Clauses: []dnf.Clause{wide, narrow}},
			part,
		)
		c := in.Compactor()
		exact, err := c.CountExact()
		if err != nil {
			log.Fatal(err)
		}
		naturalT := core.SampleBound(classSize, k, eps, delta)
		boxes := c.Boxes()
		klT := core.KarpLubyBound(len(boxes), eps, delta)
		kl, err := core.KarpLuby(c.Doms, boxes, int(klT.Int64()), rand.New(rand.NewPCG(uint64(k), 5)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-14s %-16s %-10d %-12s %-10s\n",
			k,
			pow(classSize, k), naturalT.String(), kl.Samples,
			kl.Value.Text('f', 0), exact.String())
	}
	fmt.Println()
	fmt.Println("the natural space (Algorithm 3) needs m^k-many samples — billions at")
	fmt.Println("k=16 — while the Karp–Luby budget tracks the number of clauses only.")
	fmt.Println("Bounding k is exactly what separates Λ[k] (FPRAS via the natural")
	fmt.Println("space, Theorem 6.2) from SpanLL (complex space required, Theorem 7.4).")
}

func pow(b, e int) string {
	v := int64(1)
	for i := 0; i < e; i++ {
		v *= int64(b)
		if v > 1<<50 {
			return fmt.Sprintf("%d^%d", b, e)
		}
	}
	return fmt.Sprintf("%d", v)
}

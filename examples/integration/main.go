// Integration: ranking answers over conflicting sources by repair
// frequency.
//
// Two product catalogs are merged; they disagree on categories and
// prices (primary key: the product id). Instead of refusing to answer
// ("no certain answer"), we rank each candidate category for a product by
// the fraction of repairs supporting it — the relative-frequency semantics
// motivating the paper (§1.1). Non-Boolean queries are answered per tuple
// by binding the free variable, exactly the paper's reduction.
//
// Run with: go run ./examples/integration
package main

import (
	"fmt"
	"log"
	"math/big"
	"sort"

	"repaircount"
)

func main() {
	// Source A and source B disagree about products 101 and 103.
	db, keys, err := repaircount.ParseInstanceString(`
		key Product 1
		Product(101, Espresso-Machine, kitchen, 120)
		Product(101, Espresso-Machine, appliances, 120)
		Product(101, Espresso-Machine, appliances, 135)
		Product(102, Desk-Lamp, lighting, 35)
		Product(103, Air-Fryer, kitchen, 89)
		Product(103, Air-Fryer, appliances, 95)
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("merged catalog with conflicts on products 101 and 103")
	fmt.Println()

	for _, id := range []string{"101", "102", "103"} {
		// Q(cat) = ∃name,price Product(id, name, cat, price)
		q, err := repaircount.ParseQuery(
			fmt.Sprintf("exists n, p . Product(%s, n, cat, p)", id))
		if err != nil {
			log.Fatal(err)
		}
		type ranked struct {
			category string
			freq     *big.Rat
		}
		var rows []ranked
		for _, cat := range []repaircount.Const{"kitchen", "appliances", "lighting"} {
			bound, err := repaircount.Bind(q, cat)
			if err != nil {
				log.Fatal(err)
			}
			c, err := repaircount.NewCounter(db, keys, bound)
			if err != nil {
				log.Fatal(err)
			}
			freq, err := c.RelativeFrequency()
			if err != nil {
				log.Fatal(err)
			}
			if freq.Sign() > 0 {
				rows = append(rows, ranked{string(cat), freq})
			}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].freq.Cmp(rows[j].freq) > 0 })
		fmt.Printf("product %s — category support across repairs:\n", id)
		for _, r := range rows {
			f, _ := r.freq.Float64()
			bar := ""
			for i := 0; i < int(f*20+0.5); i++ {
				bar += "█"
			}
			fmt.Printf("  %-12s %-7s %5.1f%%  %s\n", r.category, r.freq.RatString(), f*100, bar)
		}
		fmt.Println()
	}
	fmt.Println("certain-answer semantics would return only categories with 100% support;")
	fmt.Println("repair counting recovers a useful ranking from the conflicting sources.")
}

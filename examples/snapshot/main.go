// Snapshot: build a persistent .cqs instance once, then serve counting
// probes from it with zero parsing.
//
// A .cqs snapshot stores the interned columnar encoding of an instance —
// symbol table, fact arenas, key metadata, conflict-block boundaries,
// posting lists — behind a checksummed section table. Loading mmaps the
// file and reconstructs the database, the block partition and the
// evaluation index by aliasing the mapped arenas, so the second process
// (or the thousandth probe server) skips the parse/sort/index work
// entirely and still produces bit-identical counts.
//
// Run with: go run ./examples/snapshot
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repaircount"
	"repaircount/internal/workload"
)

func main() {
	// A multi-component workload: 16 independent predicates, 8 conflict
	// blocks of 4 facts each — 4^128 repairs, the factorized engine's
	// home turf.
	db, keys, q := workload.MultiComponent(16, 8, 4)

	dir, err := os.MkdirTemp("", "cqs-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "instance.cqs")

	// Build once (the offline step; repairctl build does the same).
	start := time.Now()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := repaircount.WriteSnapshot(f, db, keys); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("built %s: %d facts, %d bytes (%v)\n", filepath.Base(path), db.Len(), st.Size(), time.Since(start).Round(time.Microsecond))

	// Load: no parsing, arenas aliased straight out of the mapping.
	start = time.Now()
	snap, err := repaircount.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	loadTime := time.Since(start)

	counter, err := snap.Counter(q)
	if err != nil {
		log.Fatal(err)
	}
	n, err := counter.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded in %v; %d facts ready without parsing\n", loadTime.Round(time.Microsecond), snap.Database().Len())
	fmt.Printf("repairs entailing Q (factorized, from snapshot): %s\n", n)

	// The parse path agrees bit for bit.
	reference, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	m, err := reference.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same count from the in-memory instance:          %s\n", m)
	fmt.Printf("bit-identical: %v\n", n.Cmp(m) == 0)
}

// Approximation: tuning the Theorem 6.2 FPRAS on a realistic workload.
//
// A 40-employee database with 35% conflicting entities is too large for
// repair enumeration to be comfortable, but the query's keywidth is 2, so
// the FPRAS sample bound t = (2+ε)·m²/ε²·ln(2/δ) stays small. The program
// sweeps ε, compares estimates against the exact count (computed by
// certificate inclusion–exclusion), and contrasts the natural-space
// sampler with the Karp–Luby estimator at the same budget.
//
// Run with: go run ./examples/approximation
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand/v2"

	"repaircount"
	"repaircount/internal/core"
	"repaircount/internal/workload"
)

func main() {
	rng := rand.New(rand.NewPCG(2024, 6))
	db, keys := workload.Employee(rng, 40, 5, 0.35)

	// Find an id pair whose same-department status is genuinely uncertain:
	// entailed by some but not all repairs.
	var (
		c     *repaircount.Counter
		exact *big.Int
		algo  repaircount.EngineKind
	)
	found := false
search:
	for id1 := 1; id1 <= 10 && !found; id1++ {
		for id2 := id1 + 1; id2 <= 20; id2++ {
			q := workload.SameDeptQuery(id1, id2)
			cand, err := repaircount.NewCounter(db, keys, q)
			if err != nil {
				log.Fatal(err)
			}
			n, a, err := cand.Count()
			if err != nil {
				log.Fatal(err)
			}
			if n.Sign() > 0 && n.Cmp(cand.Total()) < 0 {
				c, exact, algo = cand, n, a
				fmt.Printf("query: are employees %d and %d in the same department?\n", id1, id2)
				found = true
				break search
			}
		}
	}
	if !found {
		log.Fatal("no uncertain id pair found; change the seed")
	}
	fmt.Printf("employee database: %d facts, %s repairs, query keywidth %d\n\n",
		db.Len(), c.Total(), c.Keywidth())
	fmt.Printf("exact count (%s): %s\n\n", algo, exact)

	fmt.Println("ε sweep (δ = 0.05):")
	fmt.Printf("%-8s %-10s %-14s %-10s\n", "ε", "samples t", "estimate", "rel err")
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.05} {
		est, err := c.Approximate(eps, 0.05, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-10d %-14s %-10.4f\n",
			eps, est.Samples, est.Value.Text('f', 1), core.RelativeError(est.Value, exact))
	}

	// Karp–Luby over the certificate boxes, at the ε=0.1 budget.
	inst := c.Instance()
	est, err := c.Approximate(0.1, 0.05, 99)
	if err != nil {
		log.Fatal(err)
	}
	kl, err := inst.KarpLuby(est.Samples, rand.New(rand.NewPCG(100, 1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKarp–Luby at the same budget (%d samples): %s (rel err %.4f)\n",
		kl.Samples, kl.Value.Text('f', 1), core.RelativeError(kl.Value, exact))
	fmt.Println("\nboth estimators are FPRAS here; the paper's contribution is that the")
	fmt.Println("natural-space sampler (top table) is conceptually simpler — it draws")
	fmt.Println("repairs directly, one uniform pick per conflict block (Algorithm 3).")
}

// Coloring: #kForbColoring (paper §7.1) — scheduling with forbidden
// patterns.
//
// Vertices are shifts, colors are staff members qualified for each shift,
// and per-pair forbidden assignments encode "these two people cannot cover
// adjacent shifts together". Counting forbidden colorings (assignments
// hitting at least one forbidden pattern) measures how constrained the
// schedule space is; 1 − forbidden/total is the fraction of valid
// schedules.
//
// Run with: go run ./examples/coloring
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand/v2"

	"repaircount/internal/problems/coloring"
)

func main() {
	// Four shifts in a cycle; adjacent shifts constrain staff pairs.
	h := coloring.Hypergraph{
		N:     4,
		K:     2,
		Edges: [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	colors := [][]coloring.Color{
		{"ana", "bo"},
		{"ana", "bo", "cy"},
		{"bo", "cy"},
		{"ana", "cy"},
	}
	// Forbidden: the same person on both adjacent shifts, plus one
	// specific bad pairing on the night handover (edge 2→3).
	forb := make([][]coloring.Forbidden, len(h.Edges))
	for ei, e := range h.Edges {
		for _, person := range []coloring.Color{"ana", "bo", "cy"} {
			_ = e
			forb[ei] = append(forb[ei], coloring.Forbidden{person, person})
		}
	}
	forb[2] = append(forb[2], coloring.Forbidden{"bo", "cy"})

	in := coloring.MustInstance(h, colors, forb)
	total := in.TotalColorings()
	forbidden, err := in.Count()
	if err != nil {
		log.Fatal(err)
	}
	bf := in.CountBruteForce()
	if forbidden.Cmp(bf) != 0 {
		log.Fatalf("unfold %s != brute force %s", forbidden, bf)
	}
	valid := new(big.Int).Sub(total, forbidden)

	fmt.Println("4 shifts (cycle), per-shift staff lists, forbidden adjacent patterns")
	fmt.Printf("total assignments:      %s\n", total)
	fmt.Printf("forbidden (≥1 clash):   %s   (#kForbColoring, k = %d)\n", forbidden, in.H.K)
	fmt.Printf("valid schedules:        %s\n\n", valid)

	est, err := in.Compactor().Apx(0.15, 0.1, rand.New(rand.NewPCG(3, 4)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPRAS check (ε=0.15):   %s forbidden (t=%d samples)\n",
		est.Value.Text('f', 2), est.Samples)
	fmt.Println("\nthe same Λ[k] machinery that counts repairs counts forbidden colorings —")
	fmt.Println("Theorem 7.2 makes this precise: #kForbColoring is Λ[k]-complete.")
}

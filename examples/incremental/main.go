// Incremental: keep exact counts live under an insert/delete stream
// instead of rebuilding the instance per update.
//
// A counter's instance is a versioned mutable substrate: Apply threads
// each delta through the database (append-only columns with tombstones),
// the maintained canonical block sequence (only the touched block
// changes), and the evaluation index (membership, posting lists, domain
// and key partitions patched in place). Counting between deltas stays
// bit-identical to a rebuild, and the factorized engine's structural
// component memo means a recount re-enumerates only the components the
// delta touched — the difference between microseconds and a full
// parse+index+count per update.
//
// The same machinery backs the .cqs delta journal: AppendJournal persists
// deltas after a sealed snapshot in O(deltas), loads replay them, and
// CompactSnapshot reseals.
//
// Run with: go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"path/filepath"
	"time"

	"repaircount"
	"repaircount/internal/workload"
)

func main() {
	// 32 independent components of 4 blocks × 4 facts: 4^128 repairs.
	db, keys, q := workload.MultiComponent(32, 4, 4)
	counter, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	count, err := counter.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base instance:     %d facts, #CQA = %s (version %d)\n",
		db.Len(), count, counter.Version())

	// A deterministic update stream: interleaved inserts and deletes, most
	// inserts landing in existing conflict blocks.
	rng := rand.New(rand.NewPCG(7, 7))
	stream := workload.UpdateStream(rng, db, keys, 64, 0.7)
	deltas := make([]repaircount.Delta, len(stream))
	for i, u := range stream {
		if u.Del {
			deltas[i] = repaircount.Delete(u.Fact)
		} else {
			deltas[i] = repaircount.Insert(u.Fact)
		}
	}

	start := time.Now()
	for _, d := range deltas {
		if _, err := counter.Apply(d); err != nil {
			log.Fatal(err)
		}
		if count, err = counter.CountFactorized(); err != nil {
			log.Fatal(err)
		}
	}
	perUpdate := time.Since(start) / time.Duration(len(deltas))
	fmt.Printf("after %d deltas:   %d facts, #CQA = %s (version %d)\n",
		len(deltas), db.Len(), count, counter.Version())
	fmt.Printf("apply + recount:   %v per update (exact, bit-identical to a rebuild)\n", perUpdate)

	// Rebuild-from-scratch comparison for one update.
	start = time.Now()
	rebuilt, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}
	rcount, err := rebuilt.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild + count:   %v (the per-update cost without maintenance)\n", time.Since(start))
	if rcount.Cmp(count) != 0 {
		log.Fatalf("rebuilt count %s != incremental %s", rcount, count)
	}

	// The same deltas as a persistent journal on a sealed snapshot.
	dir, err := os.MkdirTemp("", "cqs-incremental")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "instance.cqs")
	base, keys2, _ := workload.MultiComponent(32, 4, 4)
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := repaircount.WriteSnapshot(f, base, keys2); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := repaircount.AppendJournal(path, deltas...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal append:    %d deltas in %v (base untouched)\n", len(deltas), time.Since(start))

	snap, err := repaircount.OpenSnapshot(path)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := snap.Counter(q)
	if err != nil {
		log.Fatal(err)
	}
	scount, err := sc.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	snap.Close()

	compacted := filepath.Join(dir, "compacted.cqs")
	if err := repaircount.CompactSnapshot(path, compacted); err != nil {
		log.Fatal(err)
	}
	csnap, err := repaircount.OpenSnapshot(compacted)
	if err != nil {
		log.Fatal(err)
	}
	cc, err := csnap.Counter(q)
	if err != nil {
		log.Fatal(err)
	}
	ccount, err := cc.CountFactorized()
	if err != nil {
		log.Fatal(err)
	}
	csnap.Close()

	fmt.Printf("journaled load:    #CQA = %s\n", scount)
	fmt.Printf("compacted reseal:  #CQA = %s\n", ccount)
	if scount.Cmp(count) != 0 || ccount.Cmp(count) != 0 {
		log.Fatal("journal / compact counts diverge from the live instance")
	}
	fmt.Println("all four paths agree bit-for-bit.")
}

// Quickstart: Example 1.1 of the paper, end to end.
//
// The Employee table is inconsistent: employee 1 has two departments and
// employee 2 two names. Its four repairs each pick one tuple per conflict
// block; the query "do employees 1 and 2 work in the same department?" is
// entailed by two of the four repairs, so its relative frequency is 1/2 —
// strictly more informative than certain answers (which say only "not
// certain").
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repaircount"
)

func main() {
	db, keys, err := repaircount.ParseInstanceString(`
		key Employee 1
		Employee(1, Bob, HR)
		Employee(1, Bob, IT)
		Employee(2, Alice, IT)
		Employee(2, Tim, IT)
	`)
	if err != nil {
		log.Fatal(err)
	}

	q, err := repaircount.ParseQuery(
		"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	if err != nil {
		log.Fatal(err)
	}

	c, err := repaircount.NewCounter(db, keys, q)
	if err != nil {
		log.Fatal(err)
	}

	total := c.Total()
	count, algo, err := c.Count()
	if err != nil {
		log.Fatal(err)
	}
	freq, err := c.RelativeFrequency()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("database: the Employee table of Example 1.1 (4 facts, 2 conflict blocks)")
	fmt.Printf("query:    %s\n", q)
	fmt.Printf("fragment: %s, keywidth: %d\n\n", c.Fragment(), c.Keywidth())
	fmt.Printf("total repairs:        %s\n", total)
	fmt.Printf("repairs entailing Q:  %s   (exact, via %s)\n", count, algo)
	fmt.Printf("relative frequency:   %s\n", freq)
	fmt.Printf("certain answer:       %v (entailed by every repair?)\n", count.Cmp(total) == 0)
	fmt.Printf("possible answer:      %v (entailed by some repair?)\n\n", c.Decide())

	// The same number, approximated by the paper's FPRAS (Theorem 6.2).
	est, err := c.Approximate(0.1, 0.05, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPRAS estimate:       %s  (ε=0.1, δ=0.05, t=%d samples)\n",
		est.Value.Text('f', 3), est.Samples)
}

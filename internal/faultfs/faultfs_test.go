package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestNoHookPassesThrough(t *testing.T) {
	Clear()
	dir := t.TempDir()
	f, err := Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "b"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestBudgetTornWrite(t *testing.T) {
	dir := t.TempDir()
	h := Inject(3)
	defer Clear()
	f, err := Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v, want 3, ErrInjected", n, err)
	}
	if !h.Tripped() {
		t.Fatal("hook not tripped")
	}
	// Fail-stop: every later operation fails too.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip write: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip sync: %v", err)
	}
	if err := f.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip close: %v", err)
	}
	if err := Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trip rename: %v", err)
	}
	Clear()
	got, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(got) != "hel" {
		t.Fatalf("on-disk prefix %q, %v", got, err)
	}
}

func TestMetadataOpsCostOneUnit(t *testing.T) {
	dir := t.TempDir()
	// Budget covers the 5-byte write and the sync but not the rename:
	// the crash point lands between sync and rename.
	Inject(6)
	defer Clear()
	f, err := Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename should trip: %v", err)
	}
	Clear()
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatal("rename happened despite trip")
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatal("temp file should survive the crash point")
	}
}

func TestFromEnv(t *testing.T) {
	const key = "FAULTFS_TEST_SPEC"
	t.Setenv(key, "budget=2")
	Clear()
	FromEnv(key)
	defer Clear()
	f, err := Create(filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("abc")); n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("n=%d err=%v, want 2, ErrInjected", n, err)
	}
}

func TestFromEnvUnsetIsNoop(t *testing.T) {
	const key = "FAULTFS_TEST_UNSET"
	os.Unsetenv(key)
	Clear()
	FromEnv(key)
	if active.Load() != nil {
		t.Fatal("hook installed from unset variable")
	}
}

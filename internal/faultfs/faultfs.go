// Package faultfs is a deterministic fault-injection shim over the small
// set of filesystem operations the snapshot write path performs. The store
// routes every durable write through it; with no hook installed each
// wrapper is a direct call into the os package.
//
// A hook carries a cost budget: every written byte costs one unit and
// every metadata operation (Sync, Close, Rename, SyncDir) costs one unit
// before it executes. The operation that exhausts the budget fails — a
// Write lands its affordable prefix first, modelling a torn write — and
// every later operation fails too (fail-stop), or the process exits
// immediately when the hook is in exit mode (modelling kill -9 mid-write).
// Sweeping the budget over 0..cost(workload) therefore enumerates every
// crash point of a write path, including the gaps between a data sync and
// the rename that commits it.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error every faulted operation returns.
var ErrInjected = errors.New("faultfs: injected fault")

// ExitCode is the status a hook in exit mode terminates the process with.
const ExitCode = 3

// Hook is one installed fault plan.
type Hook struct {
	mu      sync.Mutex
	budget  int64
	exit    bool
	tripped bool
}

var active atomic.Pointer[Hook]

// Inject installs a hook that trips after `budget` cost units (bytes
// written + metadata operations): the tripping operation and all later
// ones fail with ErrInjected. It replaces any installed hook.
func Inject(budget int64) *Hook {
	h := &Hook{budget: budget}
	active.Store(h)
	return h
}

// InjectExit installs a hook that exits the process (status ExitCode) at
// the operation that exhausts the budget — after a faulted Write has
// landed its affordable prefix, before a faulted metadata operation runs.
func InjectExit(budget int64) *Hook {
	h := &Hook{budget: budget, exit: true}
	active.Store(h)
	return h
}

// Clear uninstalls any hook; subsequent operations run natively.
func Clear() { active.Store(nil) }

// Tripped reports whether the hook's budget was exhausted.
func (h *Hook) Tripped() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tripped
}

// FromEnv installs a hook described by the environment variable `key`,
// for CLI crash tests that fault a subprocess: "budget=N" installs
// Inject(N), "budget=N,exit" installs InjectExit(N). An unset or empty
// variable is a no-op; a malformed one panics (a silently ignored fault
// plan would make a crash test vacuous).
func FromEnv(key string) {
	spec := os.Getenv(key)
	if spec == "" {
		return
	}
	exit := false
	if rest, ok := strings.CutSuffix(spec, ",exit"); ok {
		spec, exit = rest, true
	}
	val, ok := strings.CutPrefix(spec, "budget=")
	if !ok {
		panic(fmt.Sprintf("faultfs: malformed %s=%q (want budget=N[,exit])", key, spec))
	}
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil || n < 0 {
		panic(fmt.Sprintf("faultfs: malformed budget in %s=%q", key, spec))
	}
	if exit {
		InjectExit(n)
	} else {
		Inject(n)
	}
}

// spend charges up to `want` units and reports how many were granted.
// granted < want means the hook tripped on this operation; in exit mode
// the caller must perform the granted work and then call die.
func spend(want int64) (granted int64, trip bool, h *Hook) {
	h = active.Load()
	if h == nil {
		return want, false, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tripped {
		return 0, true, h
	}
	if h.budget >= want {
		h.budget -= want
		return want, false, h
	}
	granted = h.budget
	h.budget = 0
	h.tripped = true
	return granted, true, h
}

func (h *Hook) die() {
	if h.exit {
		os.Exit(ExitCode)
	}
}

// File wraps an os.File with byte-budgeted writes. Read-side methods are
// deliberately absent: faults model the durability path only.
type File struct {
	f *os.File
}

// Create opens a budgeted file for writing, truncating any existing one.
func Create(name string) (*File, error) {
	if _, trip, h := spend(0); trip {
		h.die()
		return nil, ErrInjected
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// CreateTemp opens a budgeted temporary file in dir (os.CreateTemp
// naming).
func CreateTemp(dir, pattern string) (*File, error) {
	if _, trip, h := spend(0); trip {
		h.die()
		return nil, ErrInjected
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// OpenFile opens a budgeted file with the given flags.
func OpenFile(name string, flag int, perm os.FileMode) (*File, error) {
	if _, trip, h := spend(0); trip {
		h.die()
		return nil, ErrInjected
	}
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &File{f: f}, nil
}

// Name returns the underlying file's name.
func (w *File) Name() string { return w.f.Name() }

// Write writes p, charging one unit per byte. A tripping write lands its
// affordable prefix — a torn write — then fails (or exits the process).
func (w *File) Write(p []byte) (int, error) {
	granted, trip, h := spend(int64(len(p)))
	n, err := w.f.Write(p[:granted])
	if trip {
		h.die()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// WriteAt is Write at an offset.
func (w *File) WriteAt(p []byte, off int64) (int, error) {
	granted, trip, h := spend(int64(len(p)))
	n, err := w.f.WriteAt(p[:granted], off)
	if trip {
		h.die()
		if err == nil {
			err = ErrInjected
		}
	}
	return n, err
}

// Sync fsyncs the file; one unit. A tripping Sync exits (exit mode)
// or fails before syncing — the data may or may not be durable.
func (w *File) Sync() error {
	if _, trip, h := spend(1); trip {
		h.die()
		return ErrInjected
	}
	return w.f.Sync()
}

// Close closes the file; one unit. A tripping Close still releases the
// descriptor so sweeps don't leak, but reports the fault.
func (w *File) Close() error {
	if _, trip, h := spend(1); trip {
		h.die()
		w.f.Close()
		return ErrInjected
	}
	return w.f.Close()
}

// Rename renames a file; one unit, charged before the rename so a trip
// models a crash with the temp file still in place.
func Rename(oldpath, newpath string) error {
	if _, trip, h := spend(1); trip {
		h.die()
		return ErrInjected
	}
	return os.Rename(oldpath, newpath)
}

// SyncDir fsyncs a directory, making a completed rename durable; one
// unit, charged before the sync.
func SyncDir(dir string) error {
	if _, trip, h := spend(1); trip {
		h.die()
		return ErrInjected
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

package relational

// UnionFind is a classic disjoint-set forest with union by rank and path
// halving, used to compute the connected components of the block
// interaction graph: blocks that can co-occur in the image of one
// homomorphism are merged, and each resulting component can be counted
// independently by the factorized exact counters.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns n singleton sets {0}, ..., {n−1}.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	p := int32(x)
	for u.parent[p] != p {
		u.parent[p] = u.parent[u.parent[p]] // path halving
		p = u.parent[p]
	}
	return int(p)
}

// Union merges the sets of x and y.
func (u *UnionFind) Union(x, y int) {
	rx, ry := int32(u.Find(x)), int32(u.Find(y))
	if rx == ry {
		return
	}
	switch {
	case u.rank[rx] < u.rank[ry]:
		u.parent[rx] = ry
	case u.rank[rx] > u.rank[ry]:
		u.parent[ry] = rx
	default:
		u.parent[ry] = rx
		u.rank[rx]++
	}
}

// Components returns the sets as slices of their members in ascending
// order; the sets themselves are ordered by smallest member, so the
// decomposition is deterministic.
func (u *UnionFind) Components() [][]int32 {
	order := map[int]int{} // representative → component position
	var out [][]int32
	for i := range u.parent {
		r := u.Find(i)
		ci, ok := order[r]
		if !ok {
			ci = len(out)
			order[r] = ci
			out = append(out, nil)
		}
		out[ci] = append(out[ci], int32(i))
	}
	return out
}

package relational

import "sync"

// This file implements the interned-ID substrate: a symbol table mapping
// constants and predicate names to dense uint32 IDs, plus the FNV-style
// hashing helpers used for integer-keyed fact and key-value lookups. Hot
// kernels (block decomposition, membership tests, homomorphism joins)
// operate on these IDs instead of building canonical strings, which removes
// an allocation per probe and turns string comparisons into word compares.
//
// IDs are dense and stable: the i-th distinct symbol interned gets ID i, so
// an Interner also serves as a bijection ID ↔ symbol for decode paths.

// Interner assigns dense uint32 IDs to constants and predicate names.
// Constants and predicates are numbered independently. The zero value is
// not ready to use; call NewInterner. An Interner only grows; IDs never
// change once assigned. It is not safe for concurrent mutation.
type Interner struct {
	constIDs map[Const]uint32
	consts   []Const
	predIDs  map[string]uint32
	preds    []string

	// mapsOnce guards the deferred symbol → ID map build of interners
	// created by InternerFromSymbols: snapshot loads alias the symbol
	// arenas and must not pay an O(symbols) map construction up front.
	mapsOnce sync.Once
}

// InternerFromSymbols builds a symbol table over preassigned dense IDs:
// consts[i] has constant ID i and preds[j] predicate ID j. Both slices are
// borrowed, not copied — the snapshot loader passes views aliasing a mapped
// file. The reverse maps (symbol → ID) are built lazily on the first lookup
// or interning call, so constructing the table allocates nothing beyond the
// struct itself.
func InternerFromSymbols(consts []Const, preds []string) *Interner {
	return &Interner{consts: consts, preds: preds}
}

// ensureMaps builds the symbol → ID maps of a lazily-constructed interner.
// Safe for concurrent callers; a no-op for interners built by NewInterner.
func (t *Interner) ensureMaps() {
	t.mapsOnce.Do(func() {
		if t.constIDs == nil {
			t.constIDs = make(map[Const]uint32, len(t.consts))
			for i, c := range t.consts {
				if _, dup := t.constIDs[c]; !dup {
					t.constIDs[c] = uint32(i)
				}
			}
		}
		if t.predIDs == nil {
			t.predIDs = make(map[string]uint32, len(t.preds))
			for i, p := range t.preds {
				if _, dup := t.predIDs[p]; !dup {
					t.predIDs[p] = uint32(i)
				}
			}
		}
	})
}

// NewInterner builds an empty symbol table.
func NewInterner() *Interner {
	return &Interner{
		constIDs: make(map[Const]uint32),
		predIDs:  make(map[string]uint32),
	}
}

// ConstID interns a constant, assigning the next dense ID on first sight.
func (t *Interner) ConstID(c Const) uint32 {
	t.ensureMaps()
	if id, ok := t.constIDs[c]; ok {
		return id
	}
	id := uint32(len(t.consts))
	t.constIDs[c] = id
	t.consts = append(t.consts, c)
	return id
}

// LookupConst returns the ID of a constant without interning it; ok is
// false when the constant has never been seen. Read-only probes (membership
// tests against facts that may mention foreign constants) use this so the
// table does not grow on misses.
func (t *Interner) LookupConst(c Const) (uint32, bool) {
	t.ensureMaps()
	id, ok := t.constIDs[c]
	return id, ok
}

// ConstAt returns the constant with the given ID.
func (t *Interner) ConstAt(id uint32) Const { return t.consts[id] }

// NumConsts returns the number of interned constants.
func (t *Interner) NumConsts() int { return len(t.consts) }

// Consts returns the interned constants in ID order. Callers must not
// mutate the result.
func (t *Interner) Consts() []Const { return t.consts }

// PredID interns a predicate name.
func (t *Interner) PredID(p string) uint32 {
	t.ensureMaps()
	if id, ok := t.predIDs[p]; ok {
		return id
	}
	id := uint32(len(t.preds))
	t.predIDs[p] = id
	t.preds = append(t.preds, p)
	return id
}

// LookupPred returns the ID of a predicate without interning it.
func (t *Interner) LookupPred(p string) (uint32, bool) {
	t.ensureMaps()
	id, ok := t.predIDs[p]
	return id, ok
}

// PredAt returns the predicate name with the given ID.
func (t *Interner) PredAt(id uint32) string { return t.preds[id] }

// NumPreds returns the number of interned predicates.
func (t *Interner) NumPreds() int { return len(t.preds) }

// Clone returns an independent copy of the symbol table (same IDs).
func (t *Interner) Clone() *Interner {
	t.ensureMaps()
	out := &Interner{
		constIDs: make(map[Const]uint32, len(t.constIDs)),
		consts:   append([]Const(nil), t.consts...),
		predIDs:  make(map[string]uint32, len(t.predIDs)),
		preds:    append([]string(nil), t.preds...),
	}
	for c, id := range t.constIDs {
		out.constIDs[c] = id
	}
	for p, id := range t.predIDs {
		out.predIDs[p] = id
	}
	return out
}

// InternFact interns the predicate and arguments of a fact, appending the
// argument IDs to buf (which may be nil or a reused scratch slice) and
// returning the predicate ID and the extended buffer.
func (t *Interner) InternFact(f Fact, buf []uint32) (uint32, []uint32) {
	pid := t.PredID(f.Pred)
	for _, a := range f.Args {
		buf = append(buf, t.ConstID(a))
	}
	return pid, buf
}

// FNV-1a-style hashing over uint32 words. Hash equality is never trusted:
// every bucket probe verifies with a structural comparison, so the hash
// only needs to spread well. HashIDs and U32Equal are exported for the
// evaluation layer's interned index, so the whole repository shares one
// hash definition.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashWord folds one 32-bit word into a running hash.
func hashWord(h uint64, w uint32) uint64 {
	return (h ^ uint64(w)) * fnvPrime64
}

// HashIDs hashes a predicate ID and a slice of argument IDs.
func HashIDs(pred uint32, args []uint32) uint64 {
	h := hashWord(fnvOffset64, pred)
	for _, a := range args {
		h = hashWord(h, a)
	}
	return h
}

// hashIDs is the package-internal alias of HashIDs.
func hashIDs(pred uint32, args []uint32) uint64 { return HashIDs(pred, args) }

// hashString folds a string into a running hash byte-wise, with a
// terminator so adjacent components cannot run together.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ 0xff) * fnvPrime64
}

// hashKeyValue hashes a key value structurally (no canonical string).
func hashKeyValue(kv KeyValue) uint64 {
	h := hashString(fnvOffset64, kv.Pred)
	for _, v := range kv.Vals {
		h = hashString(h, string(v))
	}
	return h
}

// U32Equal reports whether two ID slices are identical.
func U32Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// u32Equal is the package-internal alias of U32Equal.
func u32Equal(a, b []uint32) bool { return U32Equal(a, b) }

package relational

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"testing"
)

// Regression guards for the interned block decomposition: the former
// implementation built a canonical string per fact (O(n) allocations) and
// looked blocks up by linear scan (O(n²) overall). The rewrite must keep
// Blocks at a constant number of allocations regardless of instance size,
// and keep the lookup paths allocation-free.

func syntheticDB(n int, rng *rand.Rand) (*Database, *KeySet) {
	db := MustDatabase()
	for b := 0; b < n; b++ {
		key := Const("k" + strconv.Itoa(b))
		for j := 0; j <= rng.IntN(3); j++ {
			db.Add(Fact{Pred: "R", Args: []Const{key, Const("v" + strconv.Itoa(rng.IntN(5)))}})
		}
	}
	return db, Keys(map[string]int{"R": 1})
}

func TestBlocksAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	small, ksS := syntheticDB(500, rng)
	big, ksB := syntheticDB(4000, rng)
	// Warm the memoized rank tables so AllocsPerRun measures steady state.
	Blocks(small, ksS)
	Blocks(big, ksB)
	allocsSmall := testing.AllocsPerRun(5, func() { Blocks(small, ksS) })
	allocsBig := testing.AllocsPerRun(5, func() { Blocks(big, ksB) })
	// A handful of arena and header allocations, independent of n up to
	// map-growth noise. The old path allocated ~5 per fact.
	if allocsBig > 200 {
		t.Fatalf("Blocks(4000 blocks) = %v allocs/run; decomposition is allocating per fact again", allocsBig)
	}
	if allocsBig > 8*allocsSmall+64 {
		t.Fatalf("Blocks allocations scale with instance size: %v (n=500) vs %v (n=4000)", allocsSmall, allocsBig)
	}
}

func TestBlockLookupNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	db, ks := syntheticDB(1000, rng)
	blocks := Blocks(db, ks)
	bi := NewBlockIndex(blocks)
	probe := NewFact("R", "k500", "vX")
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := bi.Find(ks, probe); !ok {
			t.Fatal("block not found")
		}
	}); allocs > 0 {
		t.Fatalf("BlockIndex.Find allocates %v per lookup", allocs)
	}
	member := blocks[0].Facts[0]
	if allocs := testing.AllocsPerRun(100, func() {
		if blocks[0].Index(member) < 0 {
			t.Fatal("member not found")
		}
	}); allocs > 0 {
		t.Fatalf("Block.Index allocates %v per lookup", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if !db.Contains(member) {
			t.Fatal("member not found")
		}
	}); allocs > 0 {
		t.Fatalf("Database.Contains allocates %v per probe", allocs)
	}
}

// BenchmarkBlocksScaling records the decomposition's growth curve so a
// regression back to super-linear behavior is visible in the numbers.
func BenchmarkBlocksScaling(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(11, uint64(n)))
			db, ks := syntheticDB(n, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := Blocks(db, ks); len(got) != n {
					b.Fatalf("got %d blocks", len(got))
				}
			}
		})
	}
}

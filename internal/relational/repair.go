package relational

import (
	"iter"
	"math/big"
)

// NumRepairs returns |rep(D,Σ)| = ∏_i |B_i| (paper §2.1). Computing the
// total number of repairs is in FP; the count is returned as a big integer
// because it is exponential in the number of conflicting blocks.
func NumRepairs(d *Database, ks *KeySet) *big.Int {
	return NumRepairsOfBlocks(Blocks(d, ks))
}

// NumRepairsOfBlocks returns ∏_i |B_i| for a precomputed block sequence.
func NumRepairsOfBlocks(blocks []Block) *big.Int {
	n := big.NewInt(1)
	for _, b := range blocks {
		n.Mul(n, big.NewInt(int64(b.Size())))
	}
	return n
}

// Repairs iterates over all repairs of D w.r.t. Σ in the canonical
// lexicographic order induced by ≺(D,Σ) and the within-block fact order.
// Each yielded slice has one fact per block, in block order; the slice is
// reused between iterations and must be copied if retained.
//
// This is an odometer over the cartesian product Π_i B_i, the construction
// rep(D,Σ) = {{α1,...,αn} : ⟨α1,...,αn⟩ ∈ Π(D,Σ)} of the paper.
func Repairs(blocks []Block) iter.Seq[[]Fact] {
	return func(yield func([]Fact) bool) {
		n := len(blocks)
		choice := make([]int, n)
		cur := make([]Fact, n)
		for {
			for i := range blocks {
				cur[i] = blocks[i].Facts[choice[i]]
			}
			if !yield(cur) {
				return
			}
			// advance odometer (last block varies fastest)
			i := n - 1
			for ; i >= 0; i-- {
				choice[i]++
				if choice[i] < blocks[i].Size() {
					break
				}
				choice[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
}

// RepairDatabases iterates repairs as *Database values (copies), convenient
// for evaluation code; prefer Repairs for hot loops.
func RepairDatabases(d *Database, ks *KeySet) iter.Seq[*Database] {
	blocks := Blocks(d, ks)
	return func(yield func(*Database) bool) {
		for facts := range Repairs(blocks) {
			cp := make([]Fact, len(facts))
			copy(cp, facts)
			if !yield(Subset(cp)) {
				return
			}
		}
	}
}

// IsRepairOf reports whether r is a repair of d w.r.t. ks: r ⊆ d, r ⊨ Σ,
// and r is ⊆-maximal among consistent subsets of d. Under primary keys
// maximality is equivalent to containing one fact from every block.
func IsRepairOf(r, d *Database, ks *KeySet) bool {
	for _, f := range r.FactsUnsorted() {
		if !d.Contains(f) {
			return false
		}
	}
	if !r.Satisfies(ks) {
		return false
	}
	// One fact per block of d: count distinct key values present in r.
	blocks := Blocks(d, ks)
	bi := NewBlockIndex(blocks)
	present := make([]bool, len(blocks))
	n := 0
	for _, f := range r.FactsUnsorted() {
		i, ok := bi.Find(ks, f)
		if !ok {
			return false
		}
		if !present[i] {
			present[i] = true
			n++
		}
	}
	return n == len(blocks)
}

// RandomRepair draws a repair uniformly at random: an independent uniform
// pick from each block. pick(i, n) must return an integer in [0, n). The
// uniform distribution over rep(D,Σ) factorizes over blocks because repairs
// correspond bijectively to Π_i B_i.
func RandomRepair(blocks []Block, pick func(i, n int) int) []Fact {
	out := make([]Fact, len(blocks))
	for i, b := range blocks {
		out[i] = b.Facts[pick(i, b.Size())]
	}
	return out
}

package relational

import (
	"sort"
	"sync"
)

// BlockSeq is an incrementally maintained canonical block sequence: the
// partition ≺(D,Σ) of Blocks, kept up to date under single-fact inserts and
// deletes instead of being recomputed per instance. Inserting a fact
// touches only its own block (found through the maintained BlockIndex);
// a fact with a fresh key value splices a new block into its canonical
// position, and deleting the last fact of a block splices the block out,
// so the sequence always equals what Blocks would compute from scratch —
// the invariant the FPRAS sampling determinism and the factorized counter
// rely on across deltas.
//
// Block fact slices may alias shared arenas (the snapshot loader's mapped
// columns, the Blocks fact arena); the first mutation of a block replaces
// its slice with a private copy, never writing through the original.
// A BlockSeq is not safe for concurrent mutation.
type BlockSeq struct {
	blocks []Block
	// bi is the lazily built, then incrementally maintained index. biMu
	// guards only the first build: concurrent read-only users (counters
	// sharing one loaded snapshot) may race to Index, while mutation is
	// single-threaded by the type's contract.
	biMu    sync.Mutex
	bi      *BlockIndex
	version uint64
}

// NewBlockSeq wraps an existing canonical block sequence (as produced by
// Blocks or the snapshot loader). The slice is borrowed; the caller must
// not mutate it independently afterwards.
func NewBlockSeq(blocks []Block) *BlockSeq {
	return &BlockSeq{blocks: blocks}
}

// Seq returns the current block sequence in canonical ≺(D,Σ) order. The
// slice is invalidated by the next structural mutation (block added or
// removed); re-read it after every Insert/Remove.
func (s *BlockSeq) Seq() []Block { return s.blocks }

// Len returns the number of blocks.
func (s *BlockSeq) Len() int { return len(s.blocks) }

// Version returns a counter incremented by every successful mutation.
func (s *BlockSeq) Version() uint64 { return s.version }

// Index returns the maintained key-value → position index over the
// sequence, building it on first use. Safe for concurrent read-only
// callers.
func (s *BlockSeq) Index() *BlockIndex {
	s.biMu.Lock()
	if s.bi == nil {
		s.bi = NewBlockIndex(s.blocks)
	}
	bi := s.bi
	s.biMu.Unlock()
	return bi
}

// Insert adds fact f to the partition: into its existing block (keeping
// the block's canonical fact order) or, for a fresh key value, as a new
// block at its canonical position. It reports whether the sequence changed
// (false: the fact is already present).
func (s *BlockSeq) Insert(ks *KeySet, f Fact) bool {
	kv := ks.KeyValue(f)
	if pos, ok := s.Index().FindKey(kv); ok {
		b := &s.blocks[pos]
		i := sort.Search(len(b.Facts), func(i int) bool { return !b.Facts[i].Less(f) })
		if i < len(b.Facts) && b.Facts[i].Equal(f) {
			return false
		}
		// Copy-on-write: the old slice may subslice a shared arena.
		facts := make([]Fact, 0, len(b.Facts)+1)
		facts = append(facts, b.Facts[:i]...)
		facts = append(facts, f)
		facts = append(facts, b.Facts[i:]...)
		b.Facts = facts
		s.version++
		return true
	}
	pos := sort.Search(len(s.blocks), func(i int) bool { return kv.Less(s.blocks[i].Key) })
	s.blocks = append(s.blocks, Block{})
	copy(s.blocks[pos+1:], s.blocks[pos:])
	s.blocks[pos] = Block{Key: kv, Facts: []Fact{f}}
	s.noteSpliceIn(pos)
	s.version++
	return true
}

// Remove deletes fact f from the partition, splicing its block out when f
// was the block's last fact. It reports whether the fact was present.
func (s *BlockSeq) Remove(ks *KeySet, f Fact) bool {
	pos, ok := s.Index().FindKey(ks.KeyValue(f))
	if !ok {
		return false
	}
	b := &s.blocks[pos]
	i := b.Index(f)
	if i < 0 {
		return false
	}
	if len(b.Facts) == 1 {
		key := b.Key
		copy(s.blocks[pos:], s.blocks[pos+1:])
		s.blocks[len(s.blocks)-1] = Block{}
		s.blocks = s.blocks[:len(s.blocks)-1]
		s.noteSpliceOut(pos, key)
		s.version++
		return true
	}
	facts := make([]Fact, 0, len(b.Facts)-1)
	facts = append(facts, b.Facts[:i]...)
	facts = append(facts, b.Facts[i+1:]...)
	b.Facts = facts
	s.version++
	return true
}

// noteSpliceIn updates the maintained index for a new block at pos: every
// stored position ≥ pos shifts up by one, then the new key is added.
func (s *BlockSeq) noteSpliceIn(pos int) {
	if s.bi == nil {
		return
	}
	s.bi.blocks = s.blocks
	for _, ords := range s.bi.buckets {
		for i, o := range ords {
			if int(o) >= pos {
				ords[i] = o + 1
			}
		}
	}
	h := hashKeyValue(s.blocks[pos].Key)
	s.bi.buckets[h] = append(s.bi.buckets[h], int32(pos))
}

// noteSpliceOut updates the maintained index for the removal of the block
// with the given key, formerly at pos: its entry is dropped and every
// stored position > pos shifts down. Called after the splice.
func (s *BlockSeq) noteSpliceOut(pos int, key KeyValue) {
	if s.bi == nil {
		return
	}
	s.bi.blocks = s.blocks
	h := hashKeyValue(key)
	ords := s.bi.buckets[h]
	for i, o := range ords {
		if int(o) == pos {
			ords = append(ords[:i], ords[i+1:]...)
			break
		}
	}
	if len(ords) == 0 {
		delete(s.bi.buckets, h)
	} else {
		s.bi.buckets[h] = ords
	}
	for _, bords := range s.bi.buckets {
		for i, o := range bords {
			if int(o) > pos {
				bords[i] = o - 1
			}
		}
	}
}

package relational

import (
	"strings"
	"testing"
)

// FuzzParseInstance checks that the instance codec never panics and that
// accepted instances round-trip through serialization.
func FuzzParseInstance(f *testing.F) {
	for _, seed := range []string{
		"key Employee 1\nEmployee(1, Bob, HR)\nEmployee(1, Bob, IT)",
		"# comment\nR(1)\n\nS('quoted value', 2)",
		"key R 0\nR(a)\nR(b)",
		"key R -1",
		"R(",
		"R(1) trailing",
		"key R 1\nkey R 2",
		"R('esc\\'aped')",
		"R(⋆)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, ks, err := ParseInstanceString(src)
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteInstance(&b, db, ks); err != nil {
			t.Fatalf("serialize accepted instance: %v", err)
		}
		db2, ks2, err := ParseInstanceString(b.String())
		if err != nil {
			t.Fatalf("re-parse of serialized instance failed: %v\n%s", err, b.String())
		}
		if db.String() != db2.String() || ks.String() != ks2.String() {
			t.Fatalf("round trip changed instance:\n%q\nvs\n%q", db.String(), db2.String())
		}
	})
}

// FuzzParseFact checks fact parsing in isolation.
func FuzzParseFact(f *testing.F) {
	for _, seed := range []string{
		"R(1,Bob,HR)", "R()", "R('a,b', 'c)d')", "R(⋆,⋆)", "R((", "R", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fact, err := ParseFact(src)
		if err != nil {
			return
		}
		back, err := ParseFact(fact.Canonical())
		if err != nil {
			t.Fatalf("canonical form of accepted fact rejected: %q -> %q: %v", src, fact.Canonical(), err)
		}
		if !fact.Equal(back) {
			t.Fatalf("canonical round trip changed fact: %v vs %v", fact, back)
		}
	})
}

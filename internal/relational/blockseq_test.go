package relational

import (
	"math/rand/v2"
	"strconv"
	"testing"
)

// TestBlockSeqDifferential drives a random insert/delete stream through a
// database plus maintained BlockSeq and asserts, after every operation,
// that the maintained sequence equals the from-scratch decomposition —
// order, keys and within-block fact order — and that the maintained
// BlockIndex resolves every key to the right position.
func TestBlockSeqDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 3))
	ks := Keys(map[string]int{"R": 1, "S": 2})
	db := MustDatabase()
	seed := []Fact{
		{Pred: "R", Args: []Const{"a", "x"}},
		{Pred: "R", Args: []Const{"a", "y"}},
		{Pred: "R", Args: []Const{"b", "x"}},
		{Pred: "S", Args: []Const{"a", "b", "1"}},
		{Pred: "T", Args: []Const{"t1"}}, // unkeyed
	}
	for _, f := range seed {
		if err := db.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	bs := NewBlockSeq(Blocks(db, ks))
	bs.Index() // build early so every splice exercises index maintenance

	randomFact := func() Fact {
		switch rng.IntN(3) {
		case 0:
			return Fact{Pred: "R", Args: []Const{
				Const("a" + strconv.Itoa(rng.IntN(3))),
				Const("x" + strconv.Itoa(rng.IntN(3)))}}
		case 1:
			return Fact{Pred: "S", Args: []Const{
				Const("a" + strconv.Itoa(rng.IntN(2))),
				Const("b" + strconv.Itoa(rng.IntN(2))),
				Const("c" + strconv.Itoa(rng.IntN(3)))}}
		default:
			return Fact{Pred: "T", Args: []Const{Const("t" + strconv.Itoa(rng.IntN(4)))}}
		}
	}

	var live []Fact
	live = append(live, seed...)
	for step := 0; step < 200; step++ {
		if rng.IntN(2) == 0 && len(live) > 0 {
			f := live[rng.IntN(len(live))]
			if !db.Delete(f) {
				t.Fatalf("step %d: live fact %v missing from db", step, f)
			}
			if !bs.Remove(ks, f) {
				t.Fatalf("step %d: live fact %v missing from block seq", step, f)
			}
			for i := range live {
				if live[i].Equal(f) {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		} else {
			f := randomFact()
			added, err := db.Insert(f)
			if err != nil {
				t.Fatal(err)
			}
			if bs.Insert(ks, f) != added {
				t.Fatalf("step %d: block seq and db disagree on whether %v is new", step, f)
			}
			if added {
				live = append(live, f)
			}
		}

		want := Blocks(db, ks)
		got := bs.Seq()
		if len(got) != len(want) {
			t.Fatalf("step %d: %d maintained blocks vs %d canonical", step, len(got), len(want))
		}
		for i := range got {
			if !got[i].Key.Equal(want[i].Key) {
				t.Fatalf("step %d: block %d key %v vs canonical %v", step, i, got[i].Key, want[i].Key)
			}
			if len(got[i].Facts) != len(want[i].Facts) {
				t.Fatalf("step %d: block %d size %d vs canonical %d", step, i, len(got[i].Facts), len(want[i].Facts))
			}
			for j := range got[i].Facts {
				if !got[i].Facts[j].Equal(want[i].Facts[j]) {
					t.Fatalf("step %d: block %d fact %d %v vs canonical %v", step, i, j, got[i].Facts[j], want[i].Facts[j])
				}
			}
			pos, ok := bs.Index().FindKey(got[i].Key)
			if !ok || pos != i {
				t.Fatalf("step %d: index resolves %v to (%d, %v), want (%d, true)", step, got[i].Key, pos, ok, i)
			}
		}
		if _, ok := bs.Index().FindKey(KeyValue{Pred: "R", Vals: []Const{"nope"}}); ok {
			t.Fatalf("step %d: index resolves an absent key", step)
		}
	}
}

// TestDatabaseTombstones pins Database delete semantics: length, canonical
// fact listing, domain, membership and block decomposition all reflect
// only the live facts, and a deleted fact can be re-inserted.
func TestDatabaseTombstones(t *testing.T) {
	ks := Keys(map[string]int{"R": 1})
	db := MustDatabase()
	a := Fact{Pred: "R", Args: []Const{"k", "a"}}
	b := Fact{Pred: "R", Args: []Const{"k", "b"}}
	for _, f := range []Fact{a, b} {
		if err := db.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	if !db.Delete(b) {
		t.Fatal("delete of present fact failed")
	}
	if db.Delete(b) {
		t.Fatal("double delete succeeded")
	}
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if db.Contains(b) || !db.Contains(a) {
		t.Fatal("membership ignores the tombstone")
	}
	if facts := db.Facts(); len(facts) != 1 || !facts[0].Equal(a) {
		t.Fatalf("Facts = %v", facts)
	}
	if dom := db.Dom(); len(dom) != 2 { // k, a — b's constant is gone
		t.Fatalf("Dom = %v, want [a k]", dom)
	}
	if blocks := Blocks(db, ks); len(blocks) != 1 || blocks[0].Size() != 1 {
		t.Fatalf("Blocks = %v", blocks)
	}
	if !db.Satisfies(ks) {
		t.Fatal("single live fact per key should satisfy Σ")
	}
	if added, err := db.Insert(b); err != nil || !added {
		t.Fatalf("re-insert after delete: added=%v err=%v", added, err)
	}
	if db.Len() != 2 || !db.Contains(b) {
		t.Fatal("re-inserted fact not visible")
	}
}

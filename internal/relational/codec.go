package relational

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// The text codec reads and writes databases plus key sets in a small
// line-oriented format:
//
//	# comment
//	key Employee 1
//	Employee(1, Bob, HR)
//	Employee(1, Bob, IT)
//
// Constants are bare identifiers/numbers or single-quoted strings with
// backslash escapes. "key R m" declares key(R) = {1,...,m}.

// ParseInstance reads a key set and database from r.
func ParseInstance(r io.Reader) (*Database, *KeySet, error) {
	db := MustDatabase()
	ks := NewKeySet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "key "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("relational: line %d: want 'key <pred> <width>', got %q", lineNo, line)
			}
			var w int
			if _, err := fmt.Sscanf(fields[1], "%d", &w); err != nil {
				return nil, nil, fmt.Errorf("relational: line %d: bad key width %q: %w", lineNo, fields[1], err)
			}
			if err := ks.Add(fields[0], w); err != nil {
				return nil, nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
			}
			continue
		}
		f, err := ParseFact(line)
		if err != nil {
			return nil, nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
		}
		if err := db.Add(f); err != nil {
			return nil, nil, fmt.Errorf("relational: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("relational: read: %w", err)
	}
	if err := ks.Validate(db.Schema()); err != nil {
		return nil, nil, err
	}
	return db, ks, nil
}

// ParseInstanceString is ParseInstance over a string.
func ParseInstanceString(s string) (*Database, *KeySet, error) {
	return ParseInstance(strings.NewReader(s))
}

// WriteInstance writes the key set followed by the database in the text
// codec format; the output round-trips through ParseInstance.
func WriteInstance(w io.Writer, d *Database, ks *KeySet) error {
	if _, err := io.WriteString(w, ks.String()); err != nil {
		return err
	}
	_, err := io.WriteString(w, d.String())
	return err
}

// ParseFact parses a single fact such as Employee(1, 'Bob Smith', HR).
func ParseFact(s string) (Fact, error) {
	p := &termParser{src: s}
	f, err := p.fact()
	if err != nil {
		return Fact{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Fact{}, fmt.Errorf("relational: trailing input %q in fact %q", p.src[p.pos:], s)
	}
	return f, nil
}

// termParser is a tiny recursive-descent parser shared by the fact codec.
type termParser struct {
	src string
	pos int
}

func (p *termParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *termParser) fact() (Fact, error) {
	p.skipSpace()
	pred, err := p.ident()
	if err != nil {
		return Fact{}, err
	}
	p.skipSpace()
	if !p.eat('(') {
		return Fact{}, fmt.Errorf("relational: expected '(' after predicate %s", pred)
	}
	var args []Const
	p.skipSpace()
	if p.eat(')') {
		return Fact{Pred: pred, Args: args}, nil
	}
	for {
		c, err := p.constant()
		if err != nil {
			return Fact{}, err
		}
		args = append(args, c)
		p.skipSpace()
		if p.eat(',') {
			p.skipSpace()
			continue
		}
		if p.eat(')') {
			return Fact{Pred: pred, Args: args}, nil
		}
		return Fact{}, fmt.Errorf("relational: expected ',' or ')' at offset %d of %q", p.pos, p.src)
	}
}

func (p *termParser) eat(b byte) bool {
	if p.pos < len(p.src) && p.src[p.pos] == b {
		p.pos++
		return true
	}
	return false
}

func (p *termParser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		if !isBareRune(r) {
			break
		}
		p.pos += size
	}
	if p.pos == start {
		return "", fmt.Errorf("relational: expected identifier at offset %d of %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

func (p *termParser) constant() (Const, error) {
	p.skipSpace()
	if p.pos < len(p.src) && (p.src[p.pos] == '\'' || p.src[p.pos] == '"') {
		return p.quoted(p.src[p.pos])
	}
	s, err := p.ident()
	if err != nil {
		return "", fmt.Errorf("relational: expected constant at offset %d of %q", p.pos, p.src)
	}
	return Const(s), nil
}

func (p *termParser) quoted(q byte) (Const, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case q:
			p.pos++
			return Const(b.String()), nil
		case '\\':
			p.pos++
			if p.pos >= len(p.src) {
				return "", fmt.Errorf("relational: dangling escape in %q", p.src)
			}
			switch p.src[p.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(p.src[p.pos])
			}
			p.pos++
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("relational: unterminated quoted constant in %q", p.src)
}

package relational

import (
	"fmt"
	"sort"
	"strings"
)

// Fact is an expression R(c1,...,cn) over a schema: a predicate applied to
// constants (an atom without variables, paper §2.1).
type Fact struct {
	Pred string
	Args []Const
}

// NewFact builds a fact. The arguments are copied.
func NewFact(pred string, args ...Const) Fact {
	cp := make([]Const, len(args))
	copy(cp, args)
	return Fact{Pred: pred, Args: cp}
}

// Arity returns the number of arguments of the fact.
func (f Fact) Arity() int { return len(f.Args) }

// Equal reports whether two facts are identical.
func (f Fact) Equal(g Fact) bool {
	if f.Pred != g.Pred || len(f.Args) != len(g.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != g.Args[i] {
			return false
		}
	}
	return true
}

// Canonical returns an injective string encoding of the fact, suitable as a
// map key. Quoting makes the encoding unambiguous for arbitrary constants.
func (f Fact) Canonical() string {
	var b strings.Builder
	b.WriteString(f.Pred)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quoteConst(a))
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact in the text codec format, e.g. Employee(1,Bob,HR).
func (f Fact) String() string { return f.Canonical() }

// Less imposes the canonical total order on facts: by predicate, then
// argument-wise. It is used to order facts within a block deterministically,
// which the paper's output-uniqueness argument for Algorithm 1 relies on.
func (f Fact) Less(g Fact) bool {
	if f.Pred != g.Pred {
		return f.Pred < g.Pred
	}
	n := min(len(f.Args), len(g.Args))
	for i := 0; i < n; i++ {
		if f.Args[i] != g.Args[i] {
			return f.Args[i] < g.Args[i]
		}
	}
	return len(f.Args) < len(g.Args)
}

// SortFacts sorts facts into the canonical order in place and returns the
// slice.
func SortFacts(fs []Fact) []Fact {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Less(fs[j]) })
	return fs
}

// SortOrdinalsByFact sorts a slice of positions into facts by the canonical
// order of the facts they point at. Index builders use it to establish
// ordinal numbering without copying facts twice.
func SortOrdinalsByFact(ords []int32, facts []Fact) {
	sort.Slice(ords, func(i, j int) bool { return facts[ords[i]].Less(facts[ords[j]]) })
}

// FactsEqual reports whether two fact slices contain the same facts,
// regardless of order.
func FactsEqual(a, b []Fact) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, f := range a {
		seen[f.Canonical()]++
	}
	for _, f := range b {
		k := f.Canonical()
		seen[k]--
		if seen[k] < 0 {
			return false
		}
	}
	return true
}

// KeyValue is the key value key_Σ(α) of a fact α (paper §2.1): the predicate
// together with the key prefix of the arguments (the full argument list when
// the predicate has no key in Σ). Facts with equal key values conflict.
type KeyValue struct {
	Pred string
	Vals []Const
}

// Canonical returns an injective string encoding of the key value.
func (k KeyValue) Canonical() string {
	var b strings.Builder
	b.WriteString(k.Pred)
	b.WriteByte('[')
	for i, v := range k.Vals {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(quoteConst(v))
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the key value as ⟨R,⟨c1,...,cm⟩⟩ style text.
func (k KeyValue) String() string {
	parts := make([]string, len(k.Vals))
	for i, v := range k.Vals {
		parts[i] = quoteConst(v)
	}
	return fmt.Sprintf("<%s,<%s>>", k.Pred, strings.Join(parts, ","))
}

// Equal reports whether two key values are identical.
func (k KeyValue) Equal(other KeyValue) bool {
	if k.Pred != other.Pred || len(k.Vals) != len(other.Vals) {
		return false
	}
	for i := range k.Vals {
		if k.Vals[i] != other.Vals[i] {
			return false
		}
	}
	return true
}

// Less imposes the lexicographic order ≺(D,Σ) on key values (paper §2.1):
// by predicate name, then value-wise.
func (k KeyValue) Less(other KeyValue) bool {
	if k.Pred != other.Pred {
		return k.Pred < other.Pred
	}
	n := min(len(k.Vals), len(other.Vals))
	for i := 0; i < n; i++ {
		if k.Vals[i] != other.Vals[i] {
			return k.Vals[i] < other.Vals[i]
		}
	}
	return len(k.Vals) < len(other.Vals)
}

package relational

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a finite set of facts over a schema (paper §2.1). Insertion
// order is not significant; iteration helpers expose the canonical order.
// Facts are interned on insertion: every constant and predicate gets a
// dense uint32 ID from the database's symbol table, and membership tests
// run against an integer-keyed hash index instead of canonical strings.
// The zero value is not ready to use; call NewDatabase.
//
// A database is mutable: Insert appends facts and Delete tombstones them.
// The fact columns are strictly append-only — a deleted fact keeps its
// ordinal and its column entries, it is only marked dead and removed from
// the membership index — so databases assembled over borrowed snapshot
// arenas stay valid under mutation (appending past the borrowed capacity
// reallocates, never writes through the mapping), and every structure
// keyed by fact ordinals survives a delta without renumbering.
type Database struct {
	facts []Fact
	// ipred and iargs hold the interned encoding of facts[i]: the predicate
	// ID and the argument IDs, aligned with facts.
	ipred []uint32
	iargs [][]uint32
	// dead is the tombstone mask: bit i set ⇔ facts[i] has been deleted.
	// nil until the first Delete; it may be shorter than facts (ordinals
	// beyond its end are alive). nDead counts the set bits.
	dead  []uint64
	nDead int
	// buckets maps the fact hash to the ordinals of facts with that hash;
	// probes verify structurally, so hash collisions are harmless. For
	// databases assembled from snapshot arenas the map is built lazily on
	// the first membership probe or insertion (guarded by bktOnce), so a
	// load stays O(1) allocations.
	buckets map[uint64][]int32
	bktOnce sync.Once
	in      *Interner
	arity   Schema

	// Memoized order ranks of the interned symbols: rankConst[id] is the
	// position of constant id in the sorted constant set (likewise for
	// predicates). They turn the lexicographic comparisons of block
	// decomposition into integer compares, and are invalidated whenever the
	// interner grows. Guarded by rankMu so concurrent readers are safe.
	rankMu    sync.Mutex
	rankConst []int32
	rankPred  []int32
}

// NewDatabase builds a database from the given facts, de-duplicating them.
// It fails if a predicate is used with two different arities.
func NewDatabase(facts ...Fact) (*Database, error) {
	d := &Database{
		buckets: map[uint64][]int32{},
		in:      NewInterner(),
		arity:   Schema{},
	}
	for _, f := range facts {
		if err := d.Add(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustDatabase is NewDatabase that panics on error; for fixed test fixtures.
func MustDatabase(facts ...Fact) *Database {
	d, err := NewDatabase(facts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Interner returns the database's symbol table. Callers must not mutate it
// concurrently with Add.
func (d *Database) Interner() *Interner { return d.in }

// DatabaseFromArenas assembles a database from preassembled columns: facts
// (already de-duplicated, with facts[i] interned as predicate ipred[i] and
// argument IDs iargs[i] under in). All slices are borrowed, not copied —
// the snapshot loader passes views whose backing arrays alias a mapped
// file. The membership index is built lazily on the first probe, so the
// call itself performs a constant number of allocations.
func DatabaseFromArenas(in *Interner, facts []Fact, ipred []uint32, iargs [][]uint32, schema Schema) *Database {
	arity := make(Schema, len(schema))
	for p, a := range schema {
		arity[p] = a
	}
	return &Database{
		facts: facts,
		ipred: ipred,
		iargs: iargs,
		in:    in,
		arity: arity,
	}
}

// ensureBuckets builds the fact-hash membership index of a lazily-assembled
// database. Safe for concurrent read-only callers; a no-op for databases
// built by NewDatabase.
func (d *Database) ensureBuckets() {
	d.bktOnce.Do(func() {
		if d.buckets != nil {
			return
		}
		b := make(map[uint64][]int32, len(d.facts))
		for i := range d.facts {
			if !d.alive(i) {
				continue
			}
			h := hashIDs(d.ipred[i], d.iargs[i])
			b[h] = append(b[h], int32(i))
		}
		d.buckets = b
	})
}

// Add inserts a fact (a no-op if already present). It fails on an arity
// clash with earlier facts of the same predicate.
func (d *Database) Add(f Fact) error {
	_, err := d.Insert(f)
	return err
}

// Insert adds a fact, reporting whether the database changed (false: the
// fact was already present). It fails on an arity clash with earlier facts
// of the same predicate.
func (d *Database) Insert(f Fact) (bool, error) {
	if ar, ok := d.arity[f.Pred]; ok && ar != len(f.Args) {
		return false, fmt.Errorf("relational: predicate %s used with arities %d and %d", f.Pred, ar, len(f.Args))
	}
	d.ensureBuckets()
	pid, args := d.in.InternFact(f, make([]uint32, 0, len(f.Args)))
	h := hashIDs(pid, args)
	for _, ord := range d.buckets[h] {
		if d.ipred[ord] == pid && u32Equal(d.iargs[ord], args) {
			return false, nil // duplicate
		}
	}
	d.arity[f.Pred] = len(f.Args)
	d.buckets[h] = append(d.buckets[h], int32(len(d.facts)))
	d.facts = append(d.facts, f)
	d.ipred = append(d.ipred, pid)
	d.iargs = append(d.iargs, args)
	return true, nil
}

// Delete removes a fact, reporting whether it was present. The fact's
// ordinal is tombstoned, not reused: the columns stay append-only, so
// ordinal-keyed structures built over the database remain valid.
func (d *Database) Delete(f Fact) bool {
	d.ensureBuckets()
	pid, ok := d.in.LookupPred(f.Pred)
	if !ok {
		return false
	}
	args := make([]uint32, 0, len(f.Args))
	for _, a := range f.Args {
		id, ok := d.in.LookupConst(a)
		if !ok {
			return false
		}
		args = append(args, id)
	}
	h := hashIDs(pid, args)
	ords := d.buckets[h]
	for i, ord := range ords {
		if d.ipred[ord] != pid || !u32Equal(d.iargs[ord], args) {
			continue
		}
		d.buckets[h] = append(ords[:i], ords[i+1:]...)
		w := int(ord) >> 6
		for len(d.dead) <= w {
			d.dead = append(d.dead, 0)
		}
		d.dead[w] |= 1 << (uint(ord) & 63)
		d.nDead++
		return true
	}
	return false
}

// alive reports whether fact ordinal i is not tombstoned.
func (d *Database) alive(i int) bool {
	w := i >> 6
	return d.nDead == 0 || w >= len(d.dead) || d.dead[w]&(1<<(uint(i)&63)) == 0
}

// Contains reports whether the fact is in the database. The probe is
// read-only: it does not grow the symbol table.
func (d *Database) Contains(f Fact) bool {
	d.ensureBuckets()
	pid, ok := d.in.LookupPred(f.Pred)
	if !ok {
		return false
	}
	var buf [maxStackArity]uint32
	args := buf[:0]
	if len(f.Args) > maxStackArity {
		args = make([]uint32, 0, len(f.Args))
	}
	for _, a := range f.Args {
		id, ok := d.in.LookupConst(a)
		if !ok {
			return false
		}
		args = append(args, id)
	}
	h := hashIDs(pid, args)
	for _, ord := range d.buckets[h] {
		if d.ipred[ord] == pid && u32Equal(d.iargs[ord], args) {
			return true
		}
	}
	return false
}

// maxStackArity bounds the argument count for which read-only probes avoid
// heap allocation of the scratch ID buffer.
const maxStackArity = 16

// Len returns the number of (live) facts.
func (d *Database) Len() int { return len(d.facts) - d.nDead }

// Facts returns a copy of the live facts in canonical sorted order.
func (d *Database) Facts() []Fact {
	out := make([]Fact, 0, d.Len())
	for i, f := range d.facts {
		if d.alive(i) {
			out = append(out, f)
		}
	}
	return SortFacts(out)
}

// FactsUnsorted returns the live facts in insertion order. The result is
// shared (not copied) while no fact has ever been deleted; callers must not
// mutate it.
func (d *Database) FactsUnsorted() []Fact {
	if d.nDead == 0 {
		return d.facts
	}
	out := make([]Fact, 0, d.Len())
	for i, f := range d.facts {
		if d.alive(i) {
			out = append(out, f)
		}
	}
	return out
}

// FactsFor returns the live facts with the given predicate, canonically
// sorted.
func (d *Database) FactsFor(pred string) []Fact {
	var out []Fact
	for i, f := range d.facts {
		if f.Pred == pred && d.alive(i) {
			out = append(out, f)
		}
	}
	return SortFacts(out)
}

// Schema returns the inferred schema (predicate → arity). The result is a
// copy.
func (d *Database) Schema() Schema {
	out := make(Schema, len(d.arity))
	for p, a := range d.arity {
		out[p] = a
	}
	return out
}

// Dom returns the active domain dom(D): the constants occurring in D, sorted
// and de-duplicated.
func (d *Database) Dom() []Const {
	if d.nDead == 0 {
		// The interner already de-duplicates, so copy-and-sort suffices.
		cs := make([]Const, 0, d.in.NumConsts())
		cs = append(cs, d.in.Consts()...)
		return ConstSlice(cs)
	}
	// Tombstoned constants may linger in the symbol table; rebuild the
	// domain from the live facts so it matches a from-scratch database.
	used := make([]bool, d.in.NumConsts())
	for i := range d.facts {
		if !d.alive(i) {
			continue
		}
		for _, id := range d.iargs[i] {
			used[id] = true
		}
	}
	var cs []Const
	for id, u := range used {
		if u {
			cs = append(cs, d.in.ConstAt(uint32(id)))
		}
	}
	return ConstSlice(cs)
}

// Satisfies reports whether D is consistent with the key constraints
// (D ⊨ Σ): no two distinct facts agree on a key value. Facts are
// de-duplicated, so any two facts sharing a key value are distinct.
func (d *Database) Satisfies(ks *KeySet) bool {
	seen := make(map[uint64][]int32, len(d.facts))
	for i := range d.facts {
		if !d.alive(i) {
			continue
		}
		pid, kw := d.keyOf(ks, i)
		key := d.iargs[i][:kw]
		h := hashWord(hashIDs(pid, key), uint32(kw))
		for _, ord := range seen[h] {
			opid, okw := d.keyOf(ks, int(ord))
			if opid == pid && okw == kw && u32Equal(d.iargs[ord][:okw], key) {
				return false
			}
		}
		seen[h] = append(seen[h], int32(i))
	}
	return true
}

// ranks returns (computing and memoizing on first use) the order ranks of
// the interned constants and predicates.
func (d *Database) ranks() (rankConst, rankPred []int32) {
	d.rankMu.Lock()
	defer d.rankMu.Unlock()
	if len(d.rankConst) != d.in.NumConsts() {
		d.rankConst = symbolRanks(d.in.NumConsts(), func(i, j int) bool {
			return d.in.ConstAt(uint32(i)) < d.in.ConstAt(uint32(j))
		})
	}
	if len(d.rankPred) != d.in.NumPreds() {
		d.rankPred = symbolRanks(d.in.NumPreds(), func(i, j int) bool {
			return d.in.PredAt(uint32(i)) < d.in.PredAt(uint32(j))
		})
	}
	return d.rankConst, d.rankPred
}

// symbolRanks computes rank[id] = position of symbol id under the order.
func symbolRanks(n int, less func(i, j int) bool) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool { return less(int(perm[i]), int(perm[j])) })
	rank := make([]int32, n)
	for pos, id := range perm {
		rank[id] = int32(pos)
	}
	return rank
}

// keyOf returns the interned predicate ID and effective key width of fact
// ordinal i under Σ (the full arity when the predicate is unkeyed).
func (d *Database) keyOf(ks *KeySet, i int) (uint32, int) {
	f := d.facts[i]
	if w, ok := ks.Width(f.Pred); ok && w <= len(f.Args) {
		return d.ipred[i], w
	}
	return d.ipred[i], len(f.Args)
}

// Clone returns an independent copy of the database.
func (d *Database) Clone() *Database {
	d.ensureBuckets()
	out := &Database{
		facts:   append([]Fact(nil), d.facts...),
		ipred:   append([]uint32(nil), d.ipred...),
		iargs:   make([][]uint32, len(d.iargs)),
		buckets: make(map[uint64][]int32, len(d.buckets)),
		in:      d.in.Clone(),
		arity:   make(Schema, len(d.arity)),
	}
	for i, a := range d.iargs {
		out.iargs[i] = append([]uint32(nil), a...)
	}
	for h, ords := range d.buckets {
		out.buckets[h] = append([]int32(nil), ords...)
	}
	for p, a := range d.arity {
		out.arity[p] = a
	}
	out.dead = append([]uint64(nil), d.dead...)
	out.nDead = d.nDead
	return out
}

// Union returns a new database containing the facts of both databases.
func (d *Database) Union(other *Database) (*Database, error) {
	out := d.Clone()
	for i, f := range other.facts {
		if !other.alive(i) {
			continue
		}
		if err := out.Add(f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Subset builds a database from a subset of facts; it assumes the facts are
// arity-consistent (they come from an existing database).
func Subset(facts []Fact) *Database {
	d, err := NewDatabase(facts...)
	if err != nil {
		panic(fmt.Sprintf("relational: Subset on inconsistent facts: %v", err))
	}
	return d
}

// String renders the database in the text codec format, facts in canonical
// order, one per line.
func (d *Database) String() string {
	var b []byte
	for _, f := range d.Facts() {
		b = append(b, f.Canonical()...)
		b = append(b, '\n')
	}
	return string(b)
}

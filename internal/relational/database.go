package relational

import (
	"fmt"
)

// Database is a finite set of facts over a schema (paper §2.1). Insertion
// order is not significant; iteration helpers expose the canonical order.
// The zero value is not ready to use; call NewDatabase.
type Database struct {
	facts []Fact
	index map[string]int // Canonical() -> position in facts
	arity Schema
}

// NewDatabase builds a database from the given facts, de-duplicating them.
// It fails if a predicate is used with two different arities.
func NewDatabase(facts ...Fact) (*Database, error) {
	d := &Database{index: map[string]int{}, arity: Schema{}}
	for _, f := range facts {
		if err := d.Add(f); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// MustDatabase is NewDatabase that panics on error; for fixed test fixtures.
func MustDatabase(facts ...Fact) *Database {
	d, err := NewDatabase(facts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Add inserts a fact (a no-op if already present). It fails on an arity
// clash with earlier facts of the same predicate.
func (d *Database) Add(f Fact) error {
	if ar, ok := d.arity[f.Pred]; ok && ar != len(f.Args) {
		return fmt.Errorf("relational: predicate %s used with arities %d and %d", f.Pred, ar, len(f.Args))
	}
	k := f.Canonical()
	if _, dup := d.index[k]; dup {
		return nil
	}
	d.arity[f.Pred] = len(f.Args)
	d.index[k] = len(d.facts)
	d.facts = append(d.facts, f)
	return nil
}

// Contains reports whether the fact is in the database.
func (d *Database) Contains(f Fact) bool {
	_, ok := d.index[f.Canonical()]
	return ok
}

// Len returns the number of facts.
func (d *Database) Len() int { return len(d.facts) }

// Facts returns a copy of the facts in canonical sorted order.
func (d *Database) Facts() []Fact {
	out := make([]Fact, len(d.facts))
	copy(out, d.facts)
	return SortFacts(out)
}

// FactsUnsorted returns the facts in insertion order without copying.
// Callers must not mutate the result.
func (d *Database) FactsUnsorted() []Fact { return d.facts }

// FactsFor returns the facts with the given predicate, canonically sorted.
func (d *Database) FactsFor(pred string) []Fact {
	var out []Fact
	for _, f := range d.facts {
		if f.Pred == pred {
			out = append(out, f)
		}
	}
	return SortFacts(out)
}

// Schema returns the inferred schema (predicate → arity). The result is a
// copy.
func (d *Database) Schema() Schema {
	out := make(Schema, len(d.arity))
	for p, a := range d.arity {
		out[p] = a
	}
	return out
}

// Dom returns the active domain dom(D): the constants occurring in D, sorted
// and de-duplicated.
func (d *Database) Dom() []Const {
	var cs []Const
	for _, f := range d.facts {
		cs = append(cs, f.Args...)
	}
	return ConstSlice(cs)
}

// Satisfies reports whether D is consistent with the key constraints
// (D ⊨ Σ): no two distinct facts agree on a key value.
func (d *Database) Satisfies(ks *KeySet) bool {
	seen := make(map[string]string, len(d.facts))
	for _, f := range d.facts {
		kv := ks.KeyValue(f).Canonical()
		if prev, ok := seen[kv]; ok && prev != f.Canonical() {
			return false
		}
		seen[kv] = f.Canonical()
	}
	return true
}

// Clone returns an independent copy of the database.
func (d *Database) Clone() *Database {
	out := &Database{
		facts: make([]Fact, len(d.facts)),
		index: make(map[string]int, len(d.index)),
		arity: make(Schema, len(d.arity)),
	}
	copy(out.facts, d.facts)
	for k, v := range d.index {
		out.index[k] = v
	}
	for p, a := range d.arity {
		out.arity[p] = a
	}
	return out
}

// Union returns a new database containing the facts of both databases.
func (d *Database) Union(other *Database) (*Database, error) {
	out := d.Clone()
	for _, f := range other.facts {
		if err := out.Add(f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Subset builds a database from a subset of facts; it assumes the facts are
// arity-consistent (they come from an existing database).
func Subset(facts []Fact) *Database {
	d, err := NewDatabase(facts...)
	if err != nil {
		panic(fmt.Sprintf("relational: Subset on inconsistent facts: %v", err))
	}
	return d
}

// String renders the database in the text codec format, facts in canonical
// order, one per line.
func (d *Database) String() string {
	var b []byte
	for _, f := range d.Facts() {
		b = append(b, f.Canonical()...)
		b = append(b, '\n')
	}
	return string(b)
}

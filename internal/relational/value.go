// Package relational implements the relational substrate of the paper
// "Counting Database Repairs under Primary Keys Revisited" (PODS 2019):
// constants, facts, schemas, primary-key constraints, databases, conflict
// blocks and repairs.
//
// Terminology follows the paper (§2.1). A database is a finite set of facts.
// A key constraint key(R) = {1,...,m} states that the first m attributes of R
// form the key (the paper's w.l.o.g. prefix form). A set of primary keys has
// at most one key per predicate. A repair of an inconsistent database D is a
// maximal subset of D that is consistent; under primary keys a repair keeps
// exactly one fact from each conflict block.
package relational

import (
	"sort"
	"strconv"
	"strings"
)

// Const is a database constant, drawn from the countably infinite set C of
// the paper. Constants compare by string value.
type Const string

// Star is the auxiliary padding constant "⋆" used by the Theorem 5.1
// hardness reduction (Section 5.1 of the paper).
const Star Const = "⋆"

// quoteConst renders a constant in the text codec: bare if it is a plain
// identifier or number, single-quoted otherwise.
func quoteConst(c Const) string {
	if isBareConst(string(c)) {
		return string(c)
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range string(c) {
		switch r {
		case '\'', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

// isBareConst reports whether s can appear unquoted in the text codec.
func isBareConst(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !isBareRune(r) {
			return false
		}
	}
	// Avoid collisions with keywords of the query surface syntax so that the
	// same term lexer can be reused for databases and queries.
	switch s {
	case "exists", "forall", "not", "and", "or", "true", "false":
		return false
	}
	return true
}

func isBareRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_', r == '-', r == '.', r == '⋆':
		return true
	}
	return false
}

// ConstSlice sorts and de-duplicates a slice of constants in place and
// returns it. It is used for canonical active-domain computations.
func ConstSlice(cs []Const) []Const {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || cs[i-1] != c {
			out = append(out, c)
		}
	}
	return out
}

// IntConst converts an integer into a constant, e.g. IntConst(7) == "7".
// Workload generators and reductions use it for synthetic domains.
func IntConst(i int) Const { return Const(strconv.Itoa(i)) }

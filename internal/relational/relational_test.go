package relational

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

// employeeDB builds the database of Example 1.1 of the paper.
func employeeDB(t testing.TB) (*Database, *KeySet) {
	t.Helper()
	db := MustDatabase(
		NewFact("Employee", "1", "Bob", "HR"),
		NewFact("Employee", "1", "Bob", "IT"),
		NewFact("Employee", "2", "Alice", "IT"),
		NewFact("Employee", "2", "Tim", "IT"),
	)
	ks := Keys(map[string]int{"Employee": 1})
	return db, ks
}

func TestFactEqualityAndOrder(t *testing.T) {
	a := NewFact("R", "1", "x")
	b := NewFact("R", "1", "x")
	c := NewFact("R", "1", "y")
	if !a.Equal(b) {
		t.Fatalf("equal facts reported unequal")
	}
	if a.Equal(c) {
		t.Fatalf("distinct facts reported equal")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatalf("fact order broken: want %v < %v", a, c)
	}
	if a.Less(b) || b.Less(a) {
		t.Fatalf("Less must be irreflexive on equal facts")
	}
	d := NewFact("Q", "9")
	if !d.Less(a) {
		t.Fatalf("predicate order broken: want Q < R")
	}
}

func TestFactCanonicalInjective(t *testing.T) {
	// Constants with separators must not collide in the canonical encoding.
	a := NewFact("R", "a,b", "c")
	b := NewFact("R", "a", "b,c")
	if a.Canonical() == b.Canonical() {
		t.Fatalf("canonical encoding is ambiguous: %q", a.Canonical())
	}
	c := NewFact("R", "a'b")
	d := NewFact("R", `a\'b`)
	if c.Canonical() == d.Canonical() {
		t.Fatalf("canonical encoding is ambiguous under escapes: %q", c.Canonical())
	}
}

func TestDatabaseDedupAndArity(t *testing.T) {
	db := MustDatabase()
	f := NewFact("R", "1")
	if err := db.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(f); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Fatalf("dedup failed: len=%d", db.Len())
	}
	if err := db.Add(NewFact("R", "1", "2")); err == nil {
		t.Fatalf("arity clash not detected")
	}
}

func TestKeySetBasics(t *testing.T) {
	ks := NewKeySet()
	if err := ks.Add("R", 1); err != nil {
		t.Fatal(err)
	}
	if err := ks.Add("R", 2); err == nil {
		t.Fatalf("duplicate key accepted; primary keys allow one key per predicate")
	}
	if err := ks.Add("S", -1); err == nil {
		t.Fatalf("negative key width accepted")
	}
	if w, ok := ks.Width("R"); !ok || w != 1 {
		t.Fatalf("Width(R) = %d,%v", w, ok)
	}
	if ks.HasKey("S") {
		t.Fatalf("S should have no key")
	}
}

func TestKeyValueAndConflict(t *testing.T) {
	ks := Keys(map[string]int{"Employee": 1})
	f := NewFact("Employee", "1", "Bob", "HR")
	g := NewFact("Employee", "1", "Bob", "IT")
	h := NewFact("Employee", "2", "Alice", "IT")
	if kv := ks.KeyValue(f); kv.Pred != "Employee" || len(kv.Vals) != 1 || kv.Vals[0] != "1" {
		t.Fatalf("key value wrong: %v", kv)
	}
	if !ks.Conflict(f, g) {
		t.Fatalf("f and g must conflict")
	}
	if ks.Conflict(f, h) {
		t.Fatalf("f and h must not conflict")
	}
	if ks.Conflict(f, f) {
		t.Fatalf("a fact does not conflict with itself")
	}
	// Unkeyed predicate: key value is the whole tuple, so no conflicts.
	unk := NewKeySet()
	if unk.Conflict(f, g) {
		t.Fatalf("unkeyed facts must not conflict")
	}
	if kv := unk.KeyValue(f); len(kv.Vals) != 3 {
		t.Fatalf("unkeyed key value must be full tuple, got %v", kv)
	}
}

func TestBlocksExampleOneOne(t *testing.T) {
	db, ks := employeeDB(t)
	blocks := Blocks(db, ks)
	if len(blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(blocks))
	}
	if blocks[0].Size() != 2 || blocks[1].Size() != 2 {
		t.Fatalf("want block sizes 2,2, got %d,%d", blocks[0].Size(), blocks[1].Size())
	}
	// Block order must follow key value order: Employee[1] before Employee[2].
	if blocks[0].Key.Vals[0] != "1" || blocks[1].Key.Vals[0] != "2" {
		t.Fatalf("blocks not in ≺ order: %v, %v", blocks[0].Key, blocks[1].Key)
	}
	if MaxBlockSize(blocks) != 2 {
		t.Fatalf("MaxBlockSize = %d", MaxBlockSize(blocks))
	}
	if got := NumRepairsOfBlocks(blocks); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("want 4 repairs, got %s", got)
	}
}

func TestRepairsEnumeration(t *testing.T) {
	db, ks := employeeDB(t)
	blocks := Blocks(db, ks)
	seen := map[string]bool{}
	for r := range Repairs(blocks) {
		cp := make([]Fact, len(r))
		copy(cp, r)
		rd := Subset(cp)
		if !rd.Satisfies(ks) {
			t.Fatalf("repair %v violates Σ", rd)
		}
		if !IsRepairOf(rd, db, ks) {
			t.Fatalf("enumerated repair %v is not a repair of D", rd)
		}
		seen[rd.String()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("want 4 distinct repairs, got %d", len(seen))
	}
}

func TestRepairsEarlyStop(t *testing.T) {
	db, ks := employeeDB(t)
	blocks := Blocks(db, ks)
	n := 0
	for range Repairs(blocks) {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Fatalf("early break failed, n=%d", n)
	}
}

func TestIsRepairOfRejectsNonMaximal(t *testing.T) {
	db, ks := employeeDB(t)
	// Only one fact: consistent but misses the Employee[2] block entirely.
	sub := MustDatabase(NewFact("Employee", "1", "Bob", "HR"))
	if IsRepairOf(sub, db, ks) {
		t.Fatalf("non-maximal subset accepted as repair")
	}
	// A fact outside D is not a repair either.
	out := MustDatabase(
		NewFact("Employee", "1", "Bob", "Sales"),
		NewFact("Employee", "2", "Tim", "IT"),
	)
	if IsRepairOf(out, db, ks) {
		t.Fatalf("subset relation not enforced")
	}
}

func TestConsistentDatabaseSingleRepair(t *testing.T) {
	db := MustDatabase(
		NewFact("R", "1", "a"),
		NewFact("R", "2", "b"),
	)
	ks := Keys(map[string]int{"R": 1})
	if !db.Satisfies(ks) {
		t.Fatalf("consistent database reported inconsistent")
	}
	if got := NumRepairs(db, ks); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("consistent database must have exactly 1 repair, got %s", got)
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := MustDatabase()
	ks := NewKeySet()
	if got := NumRepairs(db, ks); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty database has the empty repair only; got %s", got)
	}
	n := 0
	for range Repairs(Blocks(db, ks)) {
		n++
	}
	if n != 1 {
		t.Fatalf("want exactly one (empty) repair, got %d", n)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	src := `
# Example 1.1
key Employee 1
Employee(1, Bob, HR)
Employee(1, Bob, IT)
Employee(2, Alice, IT)
Employee(2, 'Tim O''s friend', IT)
`
	// note: '' is not an escape; use backslash form instead
	src = strings.ReplaceAll(src, "Tim O''s", `Tim O\'s`)
	db, ks, err := ParseInstanceString(src)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Fatalf("want 4 facts, got %d", db.Len())
	}
	if w, ok := ks.Width("Employee"); !ok || w != 1 {
		t.Fatalf("key lost in parse: %d %v", w, ok)
	}
	var b strings.Builder
	if err := WriteInstance(&b, db, ks); err != nil {
		t.Fatal(err)
	}
	db2, ks2, err := ParseInstanceString(b.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\ntext:\n%s", err, b.String())
	}
	if db.String() != db2.String() || ks.String() != ks2.String() {
		t.Fatalf("round trip changed instance:\n%s\nvs\n%s", db.String(), db2.String())
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"key R",            // missing width
		"key R x",          // bad width
		"R(1",              // unterminated
		"R(1) extra",       // trailing
		"key R 1\nkey R 2", // duplicate key
		"R('abc)",          // unterminated quote
	}
	for _, src := range cases {
		if _, _, err := ParseInstanceString(src); err == nil {
			t.Errorf("ParseInstanceString(%q) succeeded, want error", src)
		}
	}
}

func TestParseFactQuoting(t *testing.T) {
	f := NewFact("R", "a b", "c'd", `e\f`, "⋆")
	g, err := ParseFact(f.Canonical())
	if err != nil {
		t.Fatalf("parse %q: %v", f.Canonical(), err)
	}
	if !f.Equal(g) {
		t.Fatalf("round trip changed fact: %v vs %v", f, g)
	}
}

// Property: for random databases, the number of enumerated repairs equals
// ∏|B_i|, every repair is consistent and maximal, and all are distinct.
func TestRepairInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		db := MustDatabase()
		nBlocks := 1 + rng.IntN(5)
		for b := 0; b < nBlocks; b++ {
			sz := 1 + rng.IntN(3)
			for j := 0; j < sz; j++ {
				db.Add(NewFact("R", IntConst(b), IntConst(j)))
			}
		}
		// A second, unkeyed predicate: always certain.
		for j := 0; j < rng.IntN(3); j++ {
			db.Add(NewFact("S", IntConst(j)))
		}
		ks := Keys(map[string]int{"R": 1})
		blocks := Blocks(db, ks)
		want := NumRepairsOfBlocks(blocks)
		seen := map[string]bool{}
		for r := range Repairs(blocks) {
			cp := make([]Fact, len(r))
			copy(cp, r)
			rd := Subset(cp)
			if !IsRepairOf(rd, db, ks) {
				return false
			}
			seen[rd.String()] = true
		}
		return big.NewInt(int64(len(seen))).Cmp(want) == 0
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: fact canonical encoding is injective on random facts.
func TestCanonicalInjectiveProperty(t *testing.T) {
	prop := func(p1, p2 string, a1, a2 []string) bool {
		if p1 == "" || p2 == "" {
			return true
		}
		toFact := func(p string, args []string) Fact {
			cs := make([]Const, len(args))
			for i, s := range args {
				cs[i] = Const(s)
			}
			return Fact{Pred: p, Args: cs}
		}
		f, g := toFact(p1, a1), toFact(p2, a2)
		if f.Equal(g) {
			return f.Canonical() == g.Canonical()
		}
		return f.Canonical() != g.Canonical()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRepairUniform(t *testing.T) {
	db, ks := employeeDB(t)
	blocks := Blocks(db, ks)
	rng := rand.New(rand.NewPCG(7, 9))
	counts := map[string]int{}
	const trials = 4000
	for i := 0; i < trials; i++ {
		r := RandomRepair(blocks, func(_, n int) int { return rng.IntN(n) })
		cp := make([]Fact, len(r))
		copy(cp, r)
		counts[Subset(cp).String()]++
	}
	if len(counts) != 4 {
		t.Fatalf("want 4 distinct repairs sampled, got %d", len(counts))
	}
	for k, c := range counts {
		// Each repair has probability 1/4; allow generous slack.
		if c < trials/8 || c > trials/2 {
			t.Fatalf("repair %q sampled %d/%d times; far from uniform", k, c, trials)
		}
	}
}

func TestDomAndSchema(t *testing.T) {
	db, _ := employeeDB(t)
	dom := db.Dom()
	want := []Const{"1", "2", "Alice", "Bob", "HR", "IT", "Tim"}
	if len(dom) != len(want) {
		t.Fatalf("dom = %v", dom)
	}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("dom[%d] = %q, want %q", i, dom[i], want[i])
		}
	}
	sch := db.Schema()
	if sch["Employee"] != 3 {
		t.Fatalf("schema arity wrong: %v", sch)
	}
}

func TestBlockOfAndIndex(t *testing.T) {
	db, ks := employeeDB(t)
	blocks := Blocks(db, ks)
	f := NewFact("Employee", "2", "Zed", "X") // same key value as block 2
	b, ok := BlockOf(blocks, ks, f)
	if !ok || b.Key.Vals[0] != "2" {
		t.Fatalf("BlockOf failed: %v %v", b, ok)
	}
	if _, ok := BlockOf(blocks, ks, NewFact("Employee", "3", "q", "r")); ok {
		t.Fatalf("BlockOf found a block for an absent key value")
	}
	idx := NewBlockIndex(blocks)
	if idx.Len() != 2 {
		t.Fatalf("BlockIndex size %d", idx.Len())
	}
	if i, ok := idx.Find(ks, f); !ok || blocks[i].Key.Vals[0] != "2" {
		t.Fatalf("BlockIndex.Find = %d, %v", i, ok)
	}
	if _, ok := idx.FindKey(ks.KeyValue(NewFact("Employee", "3", "q", "r"))); ok {
		t.Fatalf("BlockIndex.FindKey found an absent key value")
	}
	if b.Index(NewFact("Employee", "2", "Alice", "IT")) == -1 {
		t.Fatalf("Block.Index failed to find member")
	}
	if b.Index(NewFact("Employee", "2", "Nobody", "IT")) != -1 {
		t.Fatalf("Block.Index found a non-member")
	}
}

func TestDatabaseCloneAndUnion(t *testing.T) {
	db, ks := employeeDB(t)
	cp := db.Clone()
	if cp.Len() != db.Len() {
		t.Fatalf("clone lost facts")
	}
	if err := cp.Add(NewFact("Employee", "3", "Zed", "Ops")); err != nil {
		t.Fatal(err)
	}
	if db.Contains(NewFact("Employee", "3", "Zed", "Ops")) {
		t.Fatalf("clone aliases the original")
	}
	other := MustDatabase(NewFact("Dept", "HR"), NewFact("Employee", "1", "Bob", "HR"))
	u, err := db.Union(other)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != db.Len()+1 { // the shared fact deduplicates
		t.Fatalf("union size %d, want %d", u.Len(), db.Len()+1)
	}
	// Arity clash across the union fails.
	bad := MustDatabase(NewFact("Employee", "1"))
	if _, err := db.Union(bad); err == nil {
		t.Fatalf("arity clash in union not detected")
	}
	// Clone of key set is independent too.
	kcp := ks.Clone()
	kcp.MustAdd("Dept", 1)
	if ks.HasKey("Dept") {
		t.Fatalf("key set clone aliases the original")
	}
	if ks.Len() != 1 || kcp.Len() != 2 {
		t.Fatalf("key set lens wrong: %d %d", ks.Len(), kcp.Len())
	}
}

func TestFactsForAndAccessors(t *testing.T) {
	db, _ := employeeDB(t)
	fs := db.FactsFor("Employee")
	if len(fs) != 4 {
		t.Fatalf("FactsFor = %d facts", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Less(fs[i-1]) {
			t.Fatalf("FactsFor not sorted")
		}
	}
	if len(db.FactsFor("Missing")) != 0 {
		t.Fatalf("FactsFor on absent predicate")
	}
	f := fs[0]
	if f.Arity() != 3 {
		t.Fatalf("Arity = %d", f.Arity())
	}
	if f.String() != f.Canonical() {
		t.Fatalf("String and Canonical diverge")
	}
	kv := Keys(map[string]int{"Employee": 1}).KeyValue(f)
	if kv.String() != "<Employee,<1>>" {
		t.Fatalf("KeyValue.String = %q", kv.String())
	}
}

func TestFactsEqual(t *testing.T) {
	a := []Fact{NewFact("R", "1"), NewFact("R", "2")}
	b := []Fact{NewFact("R", "2"), NewFact("R", "1")}
	if !FactsEqual(a, b) {
		t.Fatalf("order must not matter")
	}
	if FactsEqual(a, a[:1]) {
		t.Fatalf("length mismatch accepted")
	}
	if FactsEqual(a, []Fact{NewFact("R", "1"), NewFact("R", "3")}) {
		t.Fatalf("different facts accepted")
	}
	// Multiset semantics: duplicates must be matched one-for-one.
	if FactsEqual([]Fact{NewFact("R", "1"), NewFact("R", "1")}, a) {
		t.Fatalf("multiset semantics violated")
	}
}

func TestRepairDatabases(t *testing.T) {
	db, ks := employeeDB(t)
	n := 0
	for rd := range RepairDatabases(db, ks) {
		n++
		if !IsRepairOf(rd, db, ks) {
			t.Fatalf("RepairDatabases yielded non-repair")
		}
		if n == 3 {
			break // early stop works
		}
	}
	if n != 3 {
		t.Fatalf("early stop failed, n=%d", n)
	}
}

func TestConflictingFacts(t *testing.T) {
	db, ks := employeeDB(t)
	if got := len(ConflictingFacts(db, ks)); got != 4 {
		t.Fatalf("all 4 facts are in conflicts, got %d", got)
	}
	db2 := MustDatabase(NewFact("R", "1", "a"), NewFact("R", "2", "b"))
	if got := len(ConflictingFacts(db2, Keys(map[string]int{"R": 1}))); got != 0 {
		t.Fatalf("consistent database has no conflicts, got %d", got)
	}
}

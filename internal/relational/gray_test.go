package relational

import (
	"testing"
)

func grayStates(t *testing.T, radix []int32) [][]int32 {
	t.Helper()
	g := NewGrayOdometer(radix)
	var out [][]int32
	for {
		out = append(out, append([]int32(nil), g.Digits()...))
		digit, old, new, ok := g.Step()
		if !ok {
			break
		}
		if old == new {
			t.Fatalf("step reported no change at digit %d", digit)
		}
		if d := old - new; d != 1 && d != -1 {
			t.Fatalf("digit %d jumped from %d to %d", digit, old, new)
		}
		if g.Digits()[digit] != new {
			t.Fatalf("digit %d is %d, step reported %d", digit, g.Digits()[digit], new)
		}
	}
	return out
}

func TestGrayOdometerCoversProduct(t *testing.T) {
	for _, radix := range [][]int32{
		{2}, {3}, {2, 2}, {2, 3}, {3, 2}, {4, 3, 2}, {2, 2, 2, 2, 2}, {5, 4},
	} {
		states := grayStates(t, radix)
		want := 1
		for _, r := range radix {
			want *= int(r)
		}
		if len(states) != want {
			t.Fatalf("radix %v: %d states, want %d", radix, len(states), want)
		}
		seen := map[string]bool{}
		for si, s := range states {
			key := ""
			for i, d := range s {
				if d < 0 || d >= radix[i] {
					t.Fatalf("radix %v: digit %d out of range in state %v", radix, i, s)
				}
				key += string(rune('0' + d))
			}
			if seen[key] {
				t.Fatalf("radix %v: state %v repeated at %d", radix, s, si)
			}
			seen[key] = true
			if si > 0 {
				diff := 0
				for i := range s {
					if s[i] != states[si-1][i] {
						diff++
					}
				}
				if diff != 1 {
					t.Fatalf("radix %v: states %v -> %v differ in %d digits", radix, states[si-1], s, diff)
				}
			}
		}
	}
}

func TestGrayOdometerEmptyAndReset(t *testing.T) {
	g := NewGrayOdometer(nil)
	if _, _, _, ok := g.Step(); ok {
		t.Fatal("empty odometer stepped")
	}
	// Reset reuses the backing arrays and restarts from all-zero.
	g.Reset([]int32{2, 2})
	n := 1
	for {
		if _, _, _, ok := g.Step(); !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("reset odometer visited %d states, want 4", n)
	}
	g.Reset([]int32{3})
	for _, d := range g.Digits() {
		if d != 0 {
			t.Fatalf("reset state %v not all-zero", g.Digits())
		}
	}
}

func TestGrayOdometerRejectsFixedDigits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("radix 1 accepted")
		}
	}()
	NewGrayOdometer([]int32{2, 1})
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(7)
	u.Union(0, 3)
	u.Union(3, 5)
	u.Union(1, 2)
	u.Union(2, 1) // no-op
	comps := u.Components()
	want := [][]int32{{0, 3, 5}, {1, 2}, {4}, {6}}
	if len(comps) != len(want) {
		t.Fatalf("components %v, want %v", comps, want)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("components %v, want %v", comps, want)
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("components %v, want %v", comps, want)
			}
		}
	}
	if u.Find(0) != u.Find(5) || u.Find(0) == u.Find(4) {
		t.Fatal("find disagrees with unions")
	}
}

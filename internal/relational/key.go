package relational

import (
	"fmt"
	"sort"
	"strings"
)

// KeySet is a set Σ of primary keys: at most one key per predicate, each of
// the prefix form key(R) = {1,...,m} (paper §2.1, w.l.o.g.).
type KeySet struct {
	widths map[string]int
}

// NewKeySet builds an empty set of primary keys.
func NewKeySet() *KeySet { return &KeySet{widths: map[string]int{}} }

// Keys constructs a KeySet from predicate → key-width pairs. It is the
// literal counterpart of writing Σ = { key(R) = {1,...,m}, ... }.
func Keys(pairs map[string]int) *KeySet {
	ks := NewKeySet()
	for pred, w := range pairs {
		ks.MustAdd(pred, w)
	}
	return ks
}

// Add declares key(pred) = {1,...,width}. It fails if the predicate already
// has a key (Σ must be a set of *primary* keys) or if width is negative.
func (ks *KeySet) Add(pred string, width int) error {
	if width < 0 {
		return fmt.Errorf("relational: key width for %s must be non-negative, got %d", pred, width)
	}
	if _, dup := ks.widths[pred]; dup {
		return fmt.Errorf("relational: duplicate key for predicate %s (primary keys allow at most one key per predicate)", pred)
	}
	ks.widths[pred] = width
	return nil
}

// MustAdd is Add that panics on error; intended for fixed, hand-written key
// sets where a failure is a programming error.
func (ks *KeySet) MustAdd(pred string, width int) {
	if err := ks.Add(pred, width); err != nil {
		panic(err)
	}
}

// Width returns the key width of pred and whether Σ has a key for pred.
func (ks *KeySet) Width(pred string) (int, bool) {
	if ks == nil {
		return 0, false
	}
	w, ok := ks.widths[pred]
	return w, ok
}

// HasKey reports whether Σ contains an R-key for pred.
func (ks *KeySet) HasKey(pred string) bool {
	_, ok := ks.Width(pred)
	return ok
}

// Predicates returns the predicates with a key, sorted.
func (ks *KeySet) Predicates() []string {
	if ks == nil {
		return nil
	}
	out := make([]string, 0, len(ks.widths))
	for p := range ks.widths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of key constraints in Σ.
func (ks *KeySet) Len() int {
	if ks == nil {
		return 0
	}
	return len(ks.widths)
}

// Clone returns an independent copy of the key set.
func (ks *KeySet) Clone() *KeySet {
	out := NewKeySet()
	if ks != nil {
		for p, w := range ks.widths {
			out.widths[p] = w
		}
	}
	return out
}

// KeyValue returns key_Σ(f): the predicate plus the key prefix of the
// arguments, or the full argument list when Σ has no key for the predicate
// (paper §2.1).
func (ks *KeySet) KeyValue(f Fact) KeyValue {
	if w, ok := ks.Width(f.Pred); ok && w <= len(f.Args) {
		return KeyValue{Pred: f.Pred, Vals: f.Args[:w]}
	}
	return KeyValue{Pred: f.Pred, Vals: f.Args}
}

// Conflict reports whether two facts violate Σ together: same key value but
// not identical.
func (ks *KeySet) Conflict(f, g Fact) bool {
	if f.Pred != g.Pred {
		return false
	}
	kf, kg := ks.KeyValue(f), ks.KeyValue(g)
	if !kf.Equal(kg) {
		return false
	}
	return !f.Equal(g)
}

// Validate checks the key set against a schema: every keyed predicate must
// exist with arity at least the key width. (A key wider than the arity would
// be vacuous; we reject it to surface specification bugs.)
func (ks *KeySet) Validate(s Schema) error {
	for _, p := range ks.Predicates() {
		w, _ := ks.Width(p)
		ar, ok := s[p]
		if !ok {
			continue // keys over predicates absent from the data are harmless
		}
		if w > ar {
			return fmt.Errorf("relational: key(%s) = {1..%d} exceeds arity %d", p, w, ar)
		}
	}
	return nil
}

// String renders Σ in the text codec format, one "key R m" line per key.
func (ks *KeySet) String() string {
	var b strings.Builder
	for _, p := range ks.Predicates() {
		w, _ := ks.Width(p)
		fmt.Fprintf(&b, "key %s %d\n", p, w)
	}
	return b.String()
}

// Schema maps predicate names to arities. Schemas are inferred from data; a
// predicate used with two different arities is a codec error.
type Schema map[string]int

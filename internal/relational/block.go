package relational

import (
	"sort"
)

// Block is a conflict block block_Σ(α, D): the set of facts of D sharing one
// key value (paper §2.1). Facts is sorted in the canonical fact order, and a
// repair keeps exactly one fact from each block.
type Block struct {
	Key   KeyValue
	Facts []Fact
}

// Size returns the number of facts in the block.
func (b Block) Size() int { return len(b.Facts) }

// Index returns the position of f in the block, or -1.
func (b Block) Index(f Fact) int {
	for i, g := range b.Facts {
		if g.Equal(f) {
			return i
		}
	}
	return -1
}

// Blocks partitions D into its conflict blocks and returns them in the
// lexicographic order ≺(D,Σ) over key values. This sequence B1,...,Bn is the
// canonical block sequence used by Algorithms 1 and 2 of the paper; fixing
// it is what makes distinct NTT computations produce distinct outputs.
//
// Grouping runs on the database's interned fact encodings: key values are
// hashed from integer IDs and verified structurally, so no canonical
// strings are built. The decomposition is near-linear in |D|.
func Blocks(d *Database, ks *KeySet) []Block {
	n := len(d.facts)
	nLive := d.Len()
	// Pass 1: assign each live fact a group ordinal by hashing its interned
	// key value (tombstoned ordinals are skipped). Collision chains live in
	// the groups slice (next links), so the bucket map holds plain int32
	// values and needs no per-key slices.
	type group struct {
		rep  int32 // ordinal of the first fact seen with this key
		kw   int32 // effective key width of the representative
		next int32 // next group with the same hash, -1 at chain end
		size int32
	}
	buckets := make(map[uint64]int32, nLive)
	groups := make([]group, 0, nLive)
	gid := make([]int32, n)
	for i := 0; i < n; i++ {
		if !d.alive(i) {
			gid[i] = -1
			continue
		}
		pid, kw := d.keyOf(ks, i)
		key := d.iargs[i][:kw]
		h := hashWord(hashIDs(pid, key), uint32(kw))
		found := int32(-1)
		head, ok := buckets[h]
		if ok {
			for g := head; g >= 0; g = groups[g].next {
				rep := groups[g].rep
				if d.ipred[rep] == pid && int(groups[g].kw) == kw && u32Equal(d.iargs[rep][:kw], key) {
					found = g
					break
				}
			}
		}
		if found < 0 {
			found = int32(len(groups))
			next := int32(-1)
			if ok {
				next = head
			}
			groups = append(groups, group{rep: int32(i), kw: int32(kw), next: next})
			buckets[h] = found
		}
		gid[i] = found
		groups[found].size++
	}
	// Pass 2: lay the fact ordinals of each group contiguously in one
	// shared arena, then order everything through the memoized symbol
	// ranks — integer compares instead of string compares.
	rankConst, rankPred := d.ranks()
	ordArena := make([]int32, nLive)
	offs := make([]int32, len(groups)+1)
	for g := range groups {
		offs[g+1] = offs[g] + groups[g].size
	}
	fill := append([]int32(nil), offs[:len(groups)]...)
	for i := 0; i < n; i++ {
		g := gid[i]
		if g < 0 {
			continue
		}
		ordArena[fill[g]] = int32(i)
		fill[g]++
	}
	// factLess is the canonical fact order (Fact.Less) through the ranks.
	factLess := func(a, b int32) bool {
		pa, pb := d.ipred[a], d.ipred[b]
		if pa != pb {
			return rankPred[pa] < rankPred[pb]
		}
		aa, ba := d.iargs[a], d.iargs[b]
		m := min(len(aa), len(ba))
		for i := 0; i < m; i++ {
			if aa[i] != ba[i] {
				return rankConst[aa[i]] < rankConst[ba[i]]
			}
		}
		return len(aa) < len(ba)
	}
	for g := range groups {
		ords := ordArena[offs[g]:offs[g+1]]
		if len(ords) > 32 {
			sort.Slice(ords, func(i, j int) bool { return factLess(ords[i], ords[j]) })
			continue
		}
		for i := 1; i < len(ords); i++ {
			for j := i; j > 0 && factLess(ords[j], ords[j-1]); j-- {
				ords[j], ords[j-1] = ords[j-1], ords[j]
			}
		}
	}
	// Order the groups by the lexicographic key-value order ≺(D,Σ). Key
	// values of distinct groups differ, so comparing the representatives'
	// key prefixes is a total order.
	perm := make([]int32, len(groups))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		ga, gb := groups[perm[i]], groups[perm[j]]
		pa, pb := d.ipred[ga.rep], d.ipred[gb.rep]
		if pa != pb {
			return rankPred[pa] < rankPred[pb]
		}
		ka := d.iargs[ga.rep][:ga.kw]
		kb := d.iargs[gb.rep][:gb.kw]
		m := min(len(ka), len(kb))
		for i := 0; i < m; i++ {
			if ka[i] != kb[i] {
				return rankConst[ka[i]] < rankConst[kb[i]]
			}
		}
		return len(ka) < len(kb)
	})
	// Materialize the blocks in final order, facts in one shared arena.
	factArena := make([]Fact, nLive)
	out := make([]Block, len(groups))
	pos := int32(0)
	for i, g := range perm {
		start := pos
		for _, ord := range ordArena[offs[g]:offs[g+1]] {
			factArena[pos] = d.facts[ord]
			pos++
		}
		facts := factArena[start:pos:pos]
		out[i] = Block{Key: ks.KeyValue(d.facts[groups[g].rep]), Facts: facts}
	}
	return out
}

// BlockOf returns the block of D containing facts with the same key value as
// f (block_Σ(f, D)); the boolean is false when no fact of D has that key
// value. The scan compares key values structurally (no canonical strings);
// for repeated lookups build a BlockIndex instead.
func BlockOf(blocks []Block, ks *KeySet, f Fact) (Block, bool) {
	target := ks.KeyValue(f)
	for _, b := range blocks {
		if b.Key.Equal(target) {
			return b, true
		}
	}
	return Block{}, false
}

// BlockIndex maps key values to positions in a block sequence for O(1)
// lookups in counting algorithms. Lookups hash the key value structurally
// and verify against the stored blocks, so no canonical strings are built.
type BlockIndex struct {
	blocks  []Block
	buckets map[uint64][]int32
}

// NewBlockIndex builds the index over a block sequence. The blocks slice is
// retained (not copied); callers must not mutate it while the index is in
// use.
func NewBlockIndex(blocks []Block) *BlockIndex {
	bi := &BlockIndex{
		blocks:  blocks,
		buckets: make(map[uint64][]int32, len(blocks)),
	}
	for i, b := range blocks {
		h := hashKeyValue(b.Key)
		bi.buckets[h] = append(bi.buckets[h], int32(i))
	}
	return bi
}

// FindKey returns the position of the block with the given key value, or
// ok=false when no block has it.
func (bi *BlockIndex) FindKey(kv KeyValue) (int, bool) {
	for _, i := range bi.buckets[hashKeyValue(kv)] {
		if bi.blocks[i].Key.Equal(kv) {
			return int(i), true
		}
	}
	return 0, false
}

// Find returns the position of the block containing facts with the same key
// value as f under Σ.
func (bi *BlockIndex) Find(ks *KeySet, f Fact) (int, bool) {
	return bi.FindKey(ks.KeyValue(f))
}

// Len returns the number of indexed blocks.
func (bi *BlockIndex) Len() int { return len(bi.blocks) }

// ConflictingFacts returns the facts of D that are in a conflict, i.e. whose
// block has size greater than one.
func ConflictingFacts(d *Database, ks *KeySet) []Fact {
	var out []Fact
	for _, b := range Blocks(d, ks) {
		if b.Size() > 1 {
			out = append(out, b.Facts...)
		}
	}
	return out
}

// MaxBlockSize returns max_i |B_i| (0 for an empty database). This is the
// quantity m in the paper's FPRAS sample bound t = (2+ε)m^k/ε²·ln(2/δ).
func MaxBlockSize(blocks []Block) int {
	m := 0
	for _, b := range blocks {
		if b.Size() > m {
			m = b.Size()
		}
	}
	return m
}

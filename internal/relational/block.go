package relational

import (
	"sort"
)

// Block is a conflict block block_Σ(α, D): the set of facts of D sharing one
// key value (paper §2.1). Facts is sorted in the canonical fact order, and a
// repair keeps exactly one fact from each block.
type Block struct {
	Key   KeyValue
	Facts []Fact
}

// Size returns the number of facts in the block.
func (b Block) Size() int { return len(b.Facts) }

// Index returns the position of f in the block, or -1.
func (b Block) Index(f Fact) int {
	c := f.Canonical()
	for i, g := range b.Facts {
		if g.Canonical() == c {
			return i
		}
	}
	return -1
}

// Blocks partitions D into its conflict blocks and returns them in the
// lexicographic order ≺(D,Σ) over key values. This sequence B1,...,Bn is the
// canonical block sequence used by Algorithms 1 and 2 of the paper; fixing
// it is what makes distinct NTT computations produce distinct outputs.
func Blocks(d *Database, ks *KeySet) []Block {
	byKey := map[string]*Block{}
	var order []string
	for _, f := range d.FactsUnsorted() {
		kv := ks.KeyValue(f)
		ck := kv.Canonical()
		blk, ok := byKey[ck]
		if !ok {
			blk = &Block{Key: kv}
			byKey[ck] = blk
			order = append(order, ck)
		}
		blk.Facts = append(blk.Facts, f)
	}
	out := make([]Block, 0, len(order))
	for _, ck := range order {
		blk := byKey[ck]
		SortFacts(blk.Facts)
		out = append(out, *blk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// BlockOf returns the block of D containing facts with the same key value as
// f (block_Σ(f, D)); the boolean is false when no fact of D has that key
// value.
func BlockOf(blocks []Block, ks *KeySet, f Fact) (Block, bool) {
	target := ks.KeyValue(f).Canonical()
	for _, b := range blocks {
		if b.Key.Canonical() == target {
			return b, true
		}
	}
	return Block{}, false
}

// BlockIndex builds a map from canonical key value to position in the block
// sequence, for O(1) lookups in counting algorithms.
func BlockIndex(blocks []Block) map[string]int {
	idx := make(map[string]int, len(blocks))
	for i, b := range blocks {
		idx[b.Key.Canonical()] = i
	}
	return idx
}

// ConflictingFacts returns the facts of D that are in a conflict, i.e. whose
// block has size greater than one.
func ConflictingFacts(d *Database, ks *KeySet) []Fact {
	var out []Fact
	for _, b := range Blocks(d, ks) {
		if b.Size() > 1 {
			out = append(out, b.Facts...)
		}
	}
	return out
}

// MaxBlockSize returns max_i |B_i| (0 for an empty database). This is the
// quantity m in the paper's FPRAS sample bound t = (2+ε)m^k/ε²·ln(2/δ).
func MaxBlockSize(blocks []Block) int {
	m := 0
	for _, b := range blocks {
		if b.Size() > m {
			m = b.Size()
		}
	}
	return m
}

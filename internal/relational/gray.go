package relational

// This file implements the mixed-radix reflected Gray-code odometer used by
// the factorized exact counters: it enumerates the cartesian product
// Π_i {0,...,radix_i−1} so that consecutive states differ in exactly one
// digit by exactly one. The counters exploit this to maintain match
// viability incrementally — one fact swap per enumerated repair instead of
// rebuilding evaluation state from scratch.

// GrayOdometer enumerates a mixed-radix space in reflected Gray-code order
// (Knuth 7.2.1.1, Algorithm H — loopless: every step is O(1)). Digit 0
// varies fastest. All radices must be ≥ 2; fixed coordinates (radix 1)
// carry no information and must be excluded by the caller.
type GrayOdometer struct {
	radix []int32
	a     []int32 // current digits
	o     []int32 // direction of each digit (+1 / −1)
	f     []int32 // focus pointers (len = len(radix)+1)
}

// NewGrayOdometer returns an odometer over the given radices, positioned at
// the all-zero state (which counts as the first state: callers visit the
// current state, then Step).
func NewGrayOdometer(radix []int32) *GrayOdometer {
	g := &GrayOdometer{}
	g.Reset(radix)
	return g
}

// Reset repositions the odometer at the all-zero state of a (possibly new)
// radix vector, reusing the backing arrays when they are large enough.
func (g *GrayOdometer) Reset(radix []int32) {
	n := len(radix)
	for _, r := range radix {
		if r < 2 {
			panic("relational: GrayOdometer radix < 2")
		}
	}
	if cap(g.f) < n+1 {
		g.a = make([]int32, n)
		g.o = make([]int32, n)
		g.f = make([]int32, n+1)
	}
	g.radix, g.a, g.o, g.f = radix, g.a[:n], g.o[:n], g.f[:n+1]
	for i := 0; i < n; i++ {
		g.a[i] = 0
		g.o[i] = 1
		g.f[i] = int32(i)
	}
	g.f[n] = int32(n)
}

// Digits returns the current state. Callers must not mutate the result; it
// is updated in place by Step.
func (g *GrayOdometer) Digits() []int32 { return g.a }

// Step advances to the next state, reporting which digit changed and its
// old and new values. ok is false when the space is exhausted (the odometer
// is then spent; Reset before reuse).
func (g *GrayOdometer) Step() (digit int, old, new int32, ok bool) {
	j := g.f[0]
	g.f[0] = 0
	if int(j) == len(g.a) {
		return 0, 0, 0, false
	}
	old = g.a[j]
	g.a[j] += g.o[j]
	new = g.a[j]
	if new == 0 || new == g.radix[j]-1 {
		g.o[j] = -g.o[j]
		g.f[j] = g.f[j+1]
		g.f[j+1] = j + 1
	}
	return int(j), old, new, true
}

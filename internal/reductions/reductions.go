// Package reductions implements the paper's many-one reductions in
// executable form:
//
//   - LambdaToCQA — the Theorem 5.1 hardness construction: any function
//     given as a k-compactor reduces to #CQA(Q_k, Σ_k) for the fixed
//     conjunctive query Q_k = ∃z,x̄,ȳ (Selector(z,x1,y1,...,xk,yk) ∧
//     ⋀ᵢ Element(xᵢ,yᵢ)) and Σ_k = {key(Element) = {1}}. The database D_x
//     stores the compactor's solution-domain elements and its ℓ-selectors.
//   - SATToCQAFO — the Theorem 3.2/3.3 construction: a 3CNF formula maps to
//     a database whose repairs are truth assignments, with a fixed FO query
//     (with negation) holding exactly on satisfying assignments; so
//     #3SAT = #CQA and 3SAT = #CQA>0.
//
// Every reduction is count-preserving and is verified mechanically in the
// tests by comparing exact counts on both sides.
package reductions

import (
	"fmt"
	"strconv"

	"repaircount/internal/core"
	"repaircount/internal/problems/sat"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// CQAInstance is the image of a reduction into #CQA: a database, keys and
// a Boolean query, ready for the repairs package.
type CQAInstance struct {
	DB   *relational.Database
	Keys *relational.KeySet
	Q    query.Formula
}

// LambdaQuery builds the fixed conjunctive query Q_k of the Theorem 5.1
// reduction. kw(Q_k, Σ_k) = k: the k Element atoms are keyed, Selector is
// not.
func LambdaQuery(k int) query.Formula {
	vars := []query.Var{"z"}
	selArgs := []query.Term{query.Var("z")}
	var conj []query.Formula
	for i := 1; i <= k; i++ {
		x := query.Var("x" + strconv.Itoa(i))
		y := query.Var("y" + strconv.Itoa(i))
		vars = append(vars, x, y)
		selArgs = append(selArgs, x, y)
		conj = append(conj, query.AtomF{Atom: query.NewAtom("Element", x, y)})
	}
	body := query.Conj(append([]query.Formula{
		query.AtomF{Atom: query.Atom{Pred: "Selector", Args: selArgs}},
	}, conj...)...)
	return query.Exists{Vars: vars, Kid: body}
}

// LambdaKeys builds Σ_k = {key(Element) = {1}}.
func LambdaKeys() *relational.KeySet {
	return relational.Keys(map[string]int{"Element": 1})
}

// LambdaToCQA maps a k-compactor instance to the database D_x of the
// Theorem 5.1 reduction, so that
//
//	unfold_M(x) = #CQA(Q_k, Σ_k)(D_x).
//
// D_element holds Element(⋆,⋆) plus Element(i, s) for every element s of
// domain i appearing in some compactor output (the pinned element for
// pinned coordinates; the whole domain for unpinned ones). D_selector
// holds, per distinct valid certificate output, a Selector fact listing
// its ℓ ≤ k pins padded with ⋆ to arity 1+2k.
func LambdaToCQA(c *core.Compactor) (*CQAInstance, error) {
	if c.K < 0 {
		return nil, fmt.Errorf("reductions: LambdaToCQA needs a bounded k-compactor; %s is unbounded", c.Name)
	}
	boxes := c.Boxes()
	db := relational.MustDatabase()
	if err := db.Add(relational.NewFact("Element", relational.Star, relational.Star)); err != nil {
		return nil, err
	}
	// Collect the elements appearing in outputs, per coordinate.
	appearing := make([]map[core.Element]bool, len(c.Doms))
	for i := range appearing {
		appearing[i] = map[core.Element]bool{}
	}
	for _, b := range boxes {
		j := 0
		for i := range c.Doms {
			if j < len(b) && b[j].Index == i {
				appearing[i][b[j].Elem] = true
				j++
				continue
			}
			for _, e := range c.Doms[i].Elems {
				appearing[i][e] = true
			}
		}
	}
	for i, set := range appearing {
		for e := range set {
			if err := db.Add(relational.NewFact("Element", posConst(i), relational.Const(e))); err != nil {
				return nil, err
			}
		}
	}
	// One Selector fact per distinct box, padded to arity 1 + 2k.
	for bi, b := range boxes {
		args := make([]relational.Const, 0, 1+2*c.K)
		args = append(args, relational.Const("c"+strconv.Itoa(bi)))
		for _, p := range b {
			args = append(args, posConst(p.Index), relational.Const(p.Elem))
		}
		for len(args) < 1+2*c.K {
			args = append(args, relational.Star)
		}
		if err := db.Add(relational.Fact{Pred: "Selector", Args: args}); err != nil {
			return nil, err
		}
	}
	return &CQAInstance{DB: db, Keys: LambdaKeys(), Q: LambdaQuery(c.K)}, nil
}

func posConst(i int) relational.Const {
	return relational.Const("p" + strconv.Itoa(i))
}

// SATToCQAFO maps a 3CNF formula to a #CQA(Q,Σ) instance over the fixed FO
// query SATQuery and Σ = {key(Var) = {1}}: each variable becomes a block
// {Var(v,0), Var(v,1)}, so repairs are exactly truth assignments, and each
// clause becomes an unkeyed fact Clause(c, v1,t1, v2,t2, v3,t3) listing,
// per literal, the variable and the truth value that satisfies the
// literal. The query holds on a repair iff no clause has all three
// satisfying values missing — iff the assignment satisfies the formula.
func SATToCQAFO(f sat.CNF) (*CQAInstance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	db := relational.MustDatabase()
	for v := 0; v < f.NumVars; v++ {
		name := relational.Const("v" + strconv.Itoa(v))
		if err := db.Add(relational.NewFact("Var", name, "0")); err != nil {
			return nil, err
		}
		if err := db.Add(relational.NewFact("Var", name, "1")); err != nil {
			return nil, err
		}
	}
	for ci, c := range f.Clauses {
		args := []relational.Const{relational.Const("cl" + strconv.Itoa(ci))}
		for _, l := range c {
			val := relational.Const("1")
			if l.Neg {
				val = "0"
			}
			args = append(args, relational.Const("v"+strconv.Itoa(l.Var)), val)
		}
		if err := db.Add(relational.Fact{Pred: "Clause", Args: args}); err != nil {
			return nil, err
		}
	}
	return &CQAInstance{
		DB:   db,
		Keys: relational.Keys(map[string]int{"Var": 1}),
		Q:    SATQuery(),
	}, nil
}

// SATQuery is the fixed FO query of the Theorem 3.2/3.3 reduction: no
// violated clause exists.
func SATQuery() query.Formula {
	return query.MustParse(
		"!(exists c, v1, t1, v2, t2, v3, t3 . (" +
			"Clause(c, v1, t1, v2, t2, v3, t3) & " +
			"!Var(v1, t1) & !Var(v2, t2) & !Var(v3, t3)))")
}

package reductions

import (
	"repaircount/internal/problems/dnf"
	"repaircount/internal/problems/graphs"
)

// GraphToPos2DNF implements the Provan–Ball bridge behind Theorem 4.4(2):
// #Pos2DNF is ≤p_T-complete for #P, witnessed by the reduction from
// counting non-independent sets. Each edge (u,v) becomes the clause
// x_u ∧ x_v, so the satisfying 0/1 assignments of the positive 2DNF are
// exactly the vertex subsets containing an edge:
//
//	#SAT(φ_G) = 2^|V| − #IndependentSets(G).
//
// Together with dnf.FromStandard this places the #P-hard function inside
// Λ[2], which is the executable content of FP^Λ[2] = FP^#P.
func GraphToPos2DNF(g graphs.Graph) (dnf.Formula, error) {
	if err := g.Validate(); err != nil {
		return dnf.Formula{}, err
	}
	f := dnf.Formula{NumVars: g.N, Width: 2}
	for _, e := range g.Edges {
		f.Clauses = append(f.Clauses, dnf.Clause{e[0], e[1]})
	}
	return f, nil
}

package reductions

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/core"
	"repaircount/internal/problems/coloring"
	"repaircount/internal/problems/dnf"
	"repaircount/internal/problems/graphs"
	"repaircount/internal/problems/sat"
	"repaircount/internal/query"
	"repaircount/internal/repairs"
)

func TestLambdaQueryShape(t *testing.T) {
	q2 := LambdaQuery(2)
	if got := query.Keywidth(q2, LambdaKeys()); got != 2 {
		t.Fatalf("kw(Q_2, Σ) = %d, want 2", got)
	}
	if !query.IsExistentialPositive(q2) {
		t.Fatalf("Q_k must be existential positive")
	}
	u := query.MustToUCQ(q2)
	if len(u.Disjuncts) != 1 {
		t.Fatalf("Q_k must be a single CQ")
	}
	q0 := LambdaQuery(0)
	if got := query.Keywidth(q0, LambdaKeys()); got != 0 {
		t.Fatalf("kw(Q_0, Σ) = %d, want 0", got)
	}
}

// reduceAndCount applies LambdaToCQA and counts repairs entailing Q_k.
func reduceAndCount(t *testing.T, c *core.Compactor) *big.Int {
	t.Helper()
	img, err := LambdaToCQA(c)
	if err != nil {
		t.Fatal(err)
	}
	in := repairs.MustInstance(img.DB, img.Keys, img.Q)
	n, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestLambdaToCQAOnDNF(t *testing.T) {
	in := dnf.MustInstance(
		dnf.Formula{NumVars: 4, Width: 2, Clauses: []dnf.Clause{{0}, {1, 2}}},
		dnf.Partition{{0, 1}, {2, 3}},
	)
	c := in.Compactor()
	want, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	got := reduceAndCount(t, c)
	if got.Cmp(want) != 0 {
		t.Fatalf("reduction changed count: %s vs %s", got, want)
	}
}

func TestLambdaToCQANoCertificates(t *testing.T) {
	in := dnf.MustInstance(dnf.Formula{NumVars: 2, Width: 2}, dnf.Partition{{0}, {1}})
	got := reduceAndCount(t, in.Compactor())
	if got.Sign() != 0 {
		t.Fatalf("count = %s, want 0", got)
	}
}

func TestLambdaToCQARejectsUnbounded(t *testing.T) {
	in := dnf.MustInstance(
		dnf.Formula{NumVars: 2, Width: -1, Clauses: []dnf.Clause{{0, 1}}},
		dnf.Partition{{0}, {1}},
	)
	if _, err := LambdaToCQA(in.Compactor()); err == nil {
		t.Fatalf("unbounded compactor accepted")
	}
}

// Property (Theorem 5.1 hardness, mechanically verified): for random
// Λ[k]-problem instances across three problem families, the reduction
// preserves the exact count.
func TestLambdaToCQACountPreservingProperty(t *testing.T) {
	prop := func(seed uint64, family uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 83))
		var c *core.Compactor
		switch family % 3 {
		case 0: // #DisjPoskDNF
			nClasses := 1 + rng.IntN(3)
			var p dnf.Partition
			n := 0
			for ci := 0; ci < nClasses; ci++ {
				sz := 1 + rng.IntN(2)
				var class []int
				for j := 0; j < sz; j++ {
					class = append(class, n)
					n++
				}
				p = append(p, class)
			}
			f := dnf.Formula{NumVars: n, Width: 2}
			for ci := 0; ci < rng.IntN(4); ci++ {
				sz := 1 + rng.IntN(2)
				clause := make(dnf.Clause, 0, sz)
				for j := 0; j < sz; j++ {
					clause = append(clause, rng.IntN(n))
				}
				f.Clauses = append(f.Clauses, clause)
			}
			c = dnf.MustInstance(f, p).Compactor()
		case 1: // graph non-independent sets
			n := 2 + rng.IntN(3)
			var edges [][2]int
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if rng.IntN(2) == 0 {
						edges = append(edges, [2]int{u, v})
					}
				}
			}
			var err error
			c, err = graphs.NonIndependentSets(graphs.Graph{N: n, Edges: edges})
			if err != nil {
				return false
			}
		default: // hypergraph forbidden colorings
			n := 2 + rng.IntN(2)
			palette := []coloring.Color{"r", "g"}
			colors := make([][]coloring.Color, n)
			for v := range colors {
				colors[v] = palette[:1+rng.IntN(2)]
			}
			h := coloring.Hypergraph{N: n, K: 2, Edges: [][]int{{0, 1}}}
			forb := [][]coloring.Forbidden{{{palette[rng.IntN(2)], palette[rng.IntN(2)]}}}
			c = coloring.MustInstance(h, colors, forb).Compactor()
		}
		want, err := c.CountExact()
		if err != nil {
			return false
		}
		img, err := LambdaToCQA(c)
		if err != nil {
			return false
		}
		in := repairs.MustInstance(img.DB, img.Keys, img.Q)
		got, _, err := in.CountExact()
		if err != nil {
			return false
		}
		if got.Cmp(want) != 0 {
			t.Logf("seed %d family %d: got %s want %s", seed, family%3, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 4.4(2)'s hardness witness: #Pos2DNF ∈ Λ[2] is #P-hard via the
// Provan–Ball reduction from counting (non-)independent sets. Verified by
// comparing the Λ[2]-machinery count of the edge-DNF against the graph
// brute force.
func TestProvanBallBridgeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 167))
		n := 2 + rng.IntN(6)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.IntN(2) == 0 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := graphs.Graph{N: n, Edges: edges}
		f, err := GraphToPos2DNF(g)
		if err != nil {
			return false
		}
		// Count satisfying assignments through the Λ[2] compactor.
		viaLambda, err := dnf.FromStandard(f).Count()
		if err != nil {
			return false
		}
		want := graphs.BruteForceSubsets(g, func(in []bool) bool {
			return !graphs.IsIndependent(g, in)
		})
		return viaLambda.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSATToCQAFOSmall(t *testing.T) {
	// (x0 ∨ x1 ∨ x2) ∧ (!x0 ∨ !x1 ∨ !x2): #SAT = 6.
	f := sat.CNF{NumVars: 3, Clauses: []sat.Clause{
		{sat.Literal{Var: 0}, sat.Literal{Var: 1}, sat.Literal{Var: 2}},
		{sat.Literal{Var: 0, Neg: true}, sat.Literal{Var: 1, Neg: true}, sat.Literal{Var: 2, Neg: true}},
	}}
	img, err := SATToCQAFO(f)
	if err != nil {
		t.Fatal(err)
	}
	in := repairs.MustInstance(img.DB, img.Keys, img.Q)
	n, algo, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if algo != repairs.EngineEnumFO {
		t.Fatalf("the SAT query must take the FO path, got %s", algo)
	}
	if n.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("#CQA = %s, want #SAT = 6", n)
	}
	if !in.HasRepairEntailing() {
		t.Fatalf("decision: formula is satisfiable")
	}
}

func TestSATToCQAFOUnsat(t *testing.T) {
	f := sat.CNF{NumVars: 1, Clauses: []sat.Clause{
		{sat.Literal{Var: 0}, sat.Literal{Var: 0}, sat.Literal{Var: 0}},
		{sat.Literal{Var: 0, Neg: true}, sat.Literal{Var: 0, Neg: true}, sat.Literal{Var: 0, Neg: true}},
	}}
	img, err := SATToCQAFO(f)
	if err != nil {
		t.Fatal(err)
	}
	in := repairs.MustInstance(img.DB, img.Keys, img.Q)
	n, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if n.Sign() != 0 {
		t.Fatalf("#CQA = %s, want 0 for unsatisfiable formula", n)
	}
	if in.HasRepairEntailing() {
		t.Fatalf("decision must be false")
	}
}

// Property (Theorems 3.2/3.3 mechanically verified): #CQA equals #3SAT on
// random 3CNF formulas, and the decision versions agree.
func TestSATReductionCountPreservingProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 91))
		n := 2 + rng.IntN(3)
		f := sat.CNF{NumVars: n}
		for c := 0; c < 1+rng.IntN(4); c++ {
			var cl sat.Clause
			for j := 0; j < 3; j++ {
				cl[j] = sat.Literal{Var: rng.IntN(n), Neg: rng.IntN(2) == 0}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		want := f.CountSatisfying()
		img, err := SATToCQAFO(f)
		if err != nil {
			return false
		}
		in := repairs.MustInstance(img.DB, img.Keys, img.Q)
		got, _, err := in.CountExact()
		if err != nil {
			return false
		}
		if got.Cmp(want) != 0 {
			t.Logf("seed %d: got %s want %s formula %+v", seed, got, want, f)
			return false
		}
		return in.HasRepairEntailing() == f.Satisfiable()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

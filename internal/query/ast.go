// Package query implements the query substrate of the paper (§2.1): a
// first-order query AST over relational atoms, a parser for a small surface
// syntax, fragment classification (CQ, UCQ, ∃FO⁺, FO), rewriting of
// existential positive queries into unions of conjunctive queries, and the
// keywidth covering function kw(Q,Σ) of §5.1.
//
// Surface syntax (one formula; quantifiers bind as far right as possible):
//
//	exists x, y, z . (Employee(1, x, 'HR') & Employee(2, z, y))
//	forall c . (Clause(c) -> Sat(c))
//	!phi    phi & psi    phi | psi    phi -> psi    true    false
//
// In query atoms, a bare token starting with a letter is a variable; tokens
// starting with a digit and quoted tokens are constants. (Databases have no
// variables, so the database codec treats all bare tokens as constants.)
package query

import (
	"fmt"
	"sort"
	"strings"

	"repaircount/internal/relational"
)

// Var is a first-order variable.
type Var string

// Term is either a Var or a relational.Const.
type Term interface{ isTerm() }

func (Var) isTerm() {}

// ConstTerm wraps a database constant as a term.
type ConstTerm relational.Const

func (ConstTerm) isTerm() {}

// Atom is a predicate applied to terms, R(t1,...,tn).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom; arguments are copied.
func NewAtom(pred string, args ...Term) Atom {
	cp := make([]Term, len(args))
	copy(cp, args)
	return Atom{Pred: pred, Args: cp}
}

// C converts a constant into a term.
func C(c relational.Const) Term { return ConstTerm(c) }

// V converts a name into a variable term.
func V(name string) Term { return Var(name) }

// Vars returns the variables of the atom in order of occurrence, possibly
// with duplicates.
func (a Atom) Vars() []Var {
	var out []Var
	for _, t := range a.Args {
		if v, ok := t.(Var); ok {
			out = append(out, v)
		}
	}
	return out
}

// IsGround reports whether the atom has no variables.
func (a Atom) IsGround() bool { return len(a.Vars()) == 0 }

// Canonical returns an injective string encoding of the atom, used for
// computing sets of atoms (e.g. in the keywidth function).
func (a Atom) Canonical() string { return a.String() }

func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(termString(t))
	}
	b.WriteByte(')')
	return b.String()
}

func termString(t Term) string {
	switch t := t.(type) {
	case Var:
		return string(t)
	case ConstTerm:
		return renderQueryConst(relational.Const(t))
	default:
		panic(fmt.Sprintf("query: unknown term type %T", t))
	}
}

// renderQueryConst renders a constant so it re-parses as a constant: bare
// only when it starts with a digit (identifier-looking constants must be
// quoted to avoid being read back as variables).
func renderQueryConst(c relational.Const) string {
	s := string(c)
	if s != "" && s[0] >= '0' && s[0] <= '9' && isBareNoLeadingLetter(s) {
		return s
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func isBareNoLeadingLetter(s string) bool {
	for _, r := range s {
		ok := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') ||
			r == '_' || r == '-' || r == '.'
		if !ok {
			return false
		}
	}
	return true
}

// Formula is a first-order formula built from atoms with ∧, ∨, ¬, ∃, ∀ and
// the truth constants.
type Formula interface {
	isFormula()
	String() string
}

// AtomF is an atomic formula.
type AtomF struct{ Atom Atom }

// And is an n-ary conjunction; And{} (no children) is ⊤.
type And struct{ Kids []Formula }

// Or is an n-ary disjunction; Or{} (no children) is ⊥.
type Or struct{ Kids []Formula }

// Not is negation.
type Not struct{ Kid Formula }

// Exists binds variables existentially.
type Exists struct {
	Vars []Var
	Kid  Formula
}

// Forall binds variables universally.
type Forall struct {
	Vars []Var
	Kid  Formula
}

// Truth is the constant true/false formula.
type Truth struct{ Val bool }

func (AtomF) isFormula()  {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Not) isFormula()    {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}
func (Truth) isFormula()  {}

func (f AtomF) String() string { return f.Atom.String() }

func (f And) String() string {
	if len(f.Kids) == 0 {
		return "true"
	}
	return joinFormulas(f.Kids, " & ")
}

func (f Or) String() string {
	if len(f.Kids) == 0 {
		return "false"
	}
	return joinFormulas(f.Kids, " | ")
}

func (f Not) String() string { return "!" + parenthesize(f.Kid) }

func (f Exists) String() string { return quantString("exists", f.Vars, f.Kid) }
func (f Forall) String() string { return quantString("forall", f.Vars, f.Kid) }

func (f Truth) String() string {
	if f.Val {
		return "true"
	}
	return "false"
}

func quantString(q string, vars []Var, kid Formula) string {
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = string(v)
	}
	return fmt.Sprintf("%s %s . %s", q, strings.Join(names, ", "), parenthesize(kid))
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = parenthesize(f)
	}
	return strings.Join(parts, sep)
}

func parenthesize(f Formula) string {
	switch f.(type) {
	case AtomF, Truth, Not:
		return f.String()
	default:
		return "(" + f.String() + ")"
	}
}

// Conj builds an n-ary conjunction, flattening nested Ands.
func Conj(fs ...Formula) Formula {
	var kids []Formula
	for _, f := range fs {
		if a, ok := f.(And); ok {
			kids = append(kids, a.Kids...)
		} else {
			kids = append(kids, f)
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return And{Kids: kids}
}

// Disj builds an n-ary disjunction, flattening nested Ors.
func Disj(fs ...Formula) Formula {
	var kids []Formula
	for _, f := range fs {
		if o, ok := f.(Or); ok {
			kids = append(kids, o.Kids...)
		} else {
			kids = append(kids, f)
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return Or{Kids: kids}
}

// FreeVars returns the free variables of the formula, sorted by name.
func FreeVars(f Formula) []Var {
	seen := map[Var]bool{}
	var walk func(Formula, map[Var]bool)
	walk = func(f Formula, bound map[Var]bool) {
		switch f := f.(type) {
		case AtomF:
			for _, v := range f.Atom.Vars() {
				if !bound[v] {
					seen[v] = true
				}
			}
		case And:
			for _, k := range f.Kids {
				walk(k, bound)
			}
		case Or:
			for _, k := range f.Kids {
				walk(k, bound)
			}
		case Not:
			walk(f.Kid, bound)
		case Exists:
			walk(f.Kid, withBound(bound, f.Vars))
		case Forall:
			walk(f.Kid, withBound(bound, f.Vars))
		case Truth:
		default:
			panic(fmt.Sprintf("query: unknown formula type %T", f))
		}
	}
	walk(f, map[Var]bool{})
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func withBound(bound map[Var]bool, vars []Var) map[Var]bool {
	out := make(map[Var]bool, len(bound)+len(vars))
	for v := range bound {
		out[v] = true
	}
	for _, v := range vars {
		out[v] = true
	}
	return out
}

// Atoms returns every atom occurring in the formula, in syntactic order
// (with duplicates).
func Atoms(f Formula) []Atom {
	var out []Atom
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case AtomF:
			out = append(out, f.Atom)
		case And:
			for _, k := range f.Kids {
				walk(k)
			}
		case Or:
			for _, k := range f.Kids {
				walk(k)
			}
		case Not:
			walk(f.Kid)
		case Exists:
			walk(f.Kid)
		case Forall:
			walk(f.Kid)
		case Truth:
		}
	}
	walk(f)
	return out
}

// Substitute replaces free occurrences of variables per the binding. Bound
// variables shadow the binding. The result shares structure where possible.
func Substitute(f Formula, binding map[Var]relational.Const) Formula {
	if len(binding) == 0 {
		return f
	}
	switch f := f.(type) {
	case AtomF:
		args := make([]Term, len(f.Atom.Args))
		for i, t := range f.Atom.Args {
			if v, ok := t.(Var); ok {
				if c, hit := binding[v]; hit {
					args[i] = ConstTerm(c)
					continue
				}
			}
			args[i] = t
		}
		return AtomF{Atom: Atom{Pred: f.Atom.Pred, Args: args}}
	case And:
		kids := make([]Formula, len(f.Kids))
		for i, k := range f.Kids {
			kids[i] = Substitute(k, binding)
		}
		return And{Kids: kids}
	case Or:
		kids := make([]Formula, len(f.Kids))
		for i, k := range f.Kids {
			kids[i] = Substitute(k, binding)
		}
		return Or{Kids: kids}
	case Not:
		return Not{Kid: Substitute(f.Kid, binding)}
	case Exists:
		return Exists{Vars: f.Vars, Kid: Substitute(f.Kid, shadow(binding, f.Vars))}
	case Forall:
		return Forall{Vars: f.Vars, Kid: Substitute(f.Kid, shadow(binding, f.Vars))}
	case Truth:
		return f
	default:
		panic(fmt.Sprintf("query: unknown formula type %T", f))
	}
}

func shadow(binding map[Var]relational.Const, vars []Var) map[Var]relational.Const {
	needsCopy := false
	for _, v := range vars {
		if _, ok := binding[v]; ok {
			needsCopy = true
			break
		}
	}
	if !needsCopy {
		return binding
	}
	out := make(map[Var]relational.Const, len(binding))
	for k, c := range binding {
		out[k] = c
	}
	for _, v := range vars {
		delete(out, v)
	}
	return out
}

// SubstituteAtom applies a variable binding to a single atom.
func SubstituteAtom(a Atom, binding map[Var]relational.Const) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if v, ok := t.(Var); ok {
			if c, hit := binding[v]; hit {
				args[i] = ConstTerm(c)
				continue
			}
		}
		args[i] = t
	}
	return Atom{Pred: a.Pred, Args: args}
}

// GroundAtom converts a fully-ground atom into a fact; ok is false if any
// variable remains.
func GroundAtom(a Atom) (relational.Fact, bool) {
	args := make([]relational.Const, len(a.Args))
	for i, t := range a.Args {
		ct, ok := t.(ConstTerm)
		if !ok {
			return relational.Fact{}, false
		}
		args[i] = relational.Const(ct)
	}
	return relational.Fact{Pred: a.Pred, Args: args}, true
}

package query

import (
	"testing"
)

func TestSimplifyFolding(t *testing.T) {
	cases := []struct{ in, want string }{
		{"R(x) & true", "R(x)"},
		{"R(x) & false", "false"},
		{"R(x) | true", "true"},
		{"R(x) | false", "R(x)"},
		{"!!R(x)", "R(x)"},
		{"!true", "false"},
		{"(R(x) & S(x)) & T(x)", "R(x) & S(x) & T(x)"},
		{"true & true", "true"},
		{"false | false", "false"},
	}
	for _, c := range cases {
		got := Simplify(MustParse(c.in)).String()
		want := MustParse(c.want).String()
		if got != want {
			t.Errorf("Simplify(%q) = %q, want %q", c.in, got, want)
		}
	}
}

func TestSimplifyPrunesUnusedVars(t *testing.T) {
	f := Simplify(MustParse("exists x, y . R(x)"))
	ex, ok := f.(Exists)
	if !ok || len(ex.Vars) != 1 || ex.Vars[0] != "x" {
		t.Fatalf("unused var not pruned: %v", f)
	}
	// All vars unused: one survives, because ∃x̄ φ asserts dom ≠ ∅.
	f2 := Simplify(MustParse("exists x, y . R('c')"))
	ex2, ok := f2.(Exists)
	if !ok || len(ex2.Vars) != 1 {
		t.Fatalf("dom≠∅ assertion lost: %v", f2)
	}
	// Quantifier over a truth constant must NOT fold away.
	f3 := Simplify(MustParse("exists x . true"))
	if _, ok := f3.(Exists); !ok {
		t.Fatalf("∃x true folded to %v; it is false on the empty database", f3)
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	srcs := []string{
		"exists x, y . (R(x) & (true | S(y)))",
		"forall x . (R(x) -> !(false & S(x)))",
		"!(R(x) | !S(y)) & true",
	}
	for _, src := range srcs {
		once := Simplify(MustParse(src))
		twice := Simplify(once)
		if once.String() != twice.String() {
			t.Errorf("Simplify not idempotent on %q: %q vs %q", src, once, twice)
		}
	}
}

package query

import (
	"testing"
)

// FuzzParse checks that the query parser never panics and that every
// formula it accepts survives a print/parse round trip to a fixpoint.
// The seed corpus covers all syntactic constructs; `go test` runs the
// corpus, `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))",
		"forall c . (Clause(c) -> Sat(c))",
		"!(R(x) | S(y)) & T('Bob')",
		"true",
		"R() | exists q . S(q, 'with space', 42)",
		"R(x) -> S(x) -> T(x)",
		"exists x . (R(x)",
		"key R 1",
		"R('unterminated",
		"((((",
		"exists . broken",
		"R(x) & & S(y)",
		"⋆(⋆)",
		"forall forall . x",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own print %q: %v", src, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("print/parse not a fixpoint: %q -> %q", printed, q2.String())
		}
		// Simplify must stay parseable and idempotent.
		s := Simplify(q)
		s2 := Simplify(s)
		if s.String() != s2.String() {
			t.Fatalf("Simplify not idempotent on %q", src)
		}
	})
}

package query

import (
	"fmt"
	"sort"
	"strings"
)

// Fragment identifies the smallest standard query class containing a
// formula, per the paper's hierarchy CQ ⊆ UCQ ⊆ ∃FO⁺ ⊆ FO.
type Fragment int

const (
	// FragmentCQ: atoms, conjunction and existential quantification only.
	FragmentCQ Fragment = iota
	// FragmentUCQ: a disjunction of conjunctive queries.
	FragmentUCQ
	// FragmentEP: existential positive (∃FO⁺) — atoms, ∧, ∨, ∃.
	FragmentEP
	// FragmentFO: arbitrary first-order.
	FragmentFO
)

func (f Fragment) String() string {
	switch f {
	case FragmentCQ:
		return "CQ"
	case FragmentUCQ:
		return "UCQ"
	case FragmentEP:
		return "∃FO+"
	default:
		return "FO"
	}
}

// Classify returns the smallest fragment containing the formula.
func Classify(f Formula) Fragment {
	switch {
	case isCQ(f):
		return FragmentCQ
	case isUCQShape(f):
		return FragmentUCQ
	case IsExistentialPositive(f):
		return FragmentEP
	default:
		return FragmentFO
	}
}

// IsExistentialPositive reports whether the formula is in ∃FO⁺: built from
// atoms and truth constants with ∧, ∨ and ∃ only.
func IsExistentialPositive(f Formula) bool {
	switch f := f.(type) {
	case AtomF, Truth:
		return true
	case And:
		for _, k := range f.Kids {
			if !IsExistentialPositive(k) {
				return false
			}
		}
		return true
	case Or:
		for _, k := range f.Kids {
			if !IsExistentialPositive(k) {
				return false
			}
		}
		return true
	case Exists:
		return IsExistentialPositive(f.Kid)
	default:
		return false
	}
}

// isCQ: ∃* over a conjunction of atoms.
func isCQ(f Formula) bool {
	for {
		if e, ok := f.(Exists); ok {
			f = e.Kid
			continue
		}
		break
	}
	switch f := f.(type) {
	case AtomF:
		return true
	case Truth:
		return f.Val // true is the empty CQ
	case And:
		for _, k := range f.Kids {
			if !isCQ(k) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// isUCQShape: a disjunction (possibly under ∃*) of CQs.
func isUCQShape(f Formula) bool {
	for {
		if e, ok := f.(Exists); ok {
			f = e.Kid
			continue
		}
		break
	}
	if t, ok := f.(Truth); ok {
		return !t.Val || isCQ(f) // false is the empty union; true is a CQ
	}
	if o, ok := f.(Or); ok {
		for _, k := range o.Kids {
			if !isCQ(k) && !isUCQShape(k) {
				return false
			}
		}
		return true
	}
	return isCQ(f)
}

// CQ is a Boolean conjunctive query represented as its set of atoms; all
// variables are implicitly existentially quantified.
type CQ struct {
	Atoms []Atom
}

// Vars returns the distinct variables of the CQ, sorted.
func (q CQ) Vars() []Var {
	seen := map[Var]bool{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			seen[v] = true
		}
	}
	out := make([]Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSelfJoinFree reports whether every predicate occurs in at most one atom.
// The Maslowski–Wijsen dichotomy (and our safe-plan counter) applies to
// self-join-free CQs.
func (q CQ) IsSelfJoinFree() bool {
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if seen[a.Pred] {
			return false
		}
		seen[a.Pred] = true
	}
	return true
}

// Canonical returns a canonical string for the CQ: its atoms sorted.
func (q CQ) Canonical() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.Canonical()
	}
	sort.Strings(parts)
	return strings.Join(parts, " & ")
}

func (q CQ) String() string {
	if len(q.Atoms) == 0 {
		return "true"
	}
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, " & ")
}

// Formula converts the CQ back into an AST formula (∃* ⋀ atoms).
func (q CQ) Formula() Formula {
	kids := make([]Formula, len(q.Atoms))
	for i, a := range q.Atoms {
		kids[i] = AtomF{Atom: a}
	}
	body := Conj(kids...)
	vars := q.Vars()
	if len(vars) == 0 {
		return body
	}
	return Exists{Vars: vars, Kid: body}
}

// UCQ is a Boolean union of conjunctive queries ⋁ᵢ Qᵢ.
type UCQ struct {
	Disjuncts []CQ
}

func (u UCQ) String() string {
	if len(u.Disjuncts) == 0 {
		return "false"
	}
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = "(" + q.String() + ")"
	}
	return strings.Join(parts, " | ")
}

// Formula converts the UCQ back into an AST formula.
func (u UCQ) Formula() Formula {
	kids := make([]Formula, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		kids[i] = q.Formula()
	}
	return Disj(kids...)
}

// Predicates returns the distinct predicates mentioned by the UCQ, sorted.
func (u UCQ) Predicates() []string {
	seen := map[string]bool{}
	for _, q := range u.Disjuncts {
		for _, a := range q.Atoms {
			seen[a.Pred] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ToUCQ rewrites a Boolean existential positive formula into an equivalent
// UCQ (paper §3.2: "Q can be equivalently rewritten ... as a query Q' ∈ UCQ
// of the form ⋁ᵢ Qᵢ"). Bound variables are standardized apart first so
// that merging conjuncts cannot capture variables. It fails if the formula
// is not in ∃FO⁺ or is not Boolean (has free variables).
func ToUCQ(f Formula) (UCQ, error) {
	if !IsExistentialPositive(f) {
		return UCQ{}, fmt.Errorf("query: %s is not existential positive", f)
	}
	if fv := FreeVars(f); len(fv) > 0 {
		return UCQ{}, fmt.Errorf("query: formula is not Boolean; free variables %v (bind them or substitute a tuple first)", fv)
	}
	renamed := StandardizeApart(f)
	sets := dnf(renamed)
	// Deduplicate identical disjuncts (same atom multiset up to order).
	var out UCQ
	seen := map[string]bool{}
	for _, atoms := range sets {
		q := CQ{Atoms: dedupeAtoms(atoms)}
		key := q.Canonical()
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Disjuncts = append(out.Disjuncts, q)
	}
	return out, nil
}

// MustToUCQ is ToUCQ that panics on error.
func MustToUCQ(f Formula) UCQ {
	u, err := ToUCQ(f)
	if err != nil {
		panic(err)
	}
	return u
}

func dedupeAtoms(atoms []Atom) []Atom {
	seen := map[string]bool{}
	var out []Atom
	for _, a := range atoms {
		k := a.Canonical()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// dnf computes the disjunctive normal form of an ∃FO⁺ formula as a list of
// atom conjunctions; quantifiers are dropped (all variables of a Boolean
// ∃FO⁺ formula are existential).
func dnf(f Formula) [][]Atom {
	switch f := f.(type) {
	case AtomF:
		return [][]Atom{{f.Atom}}
	case Truth:
		if f.Val {
			return [][]Atom{{}} // one empty conjunction: true
		}
		return nil // no disjuncts: false
	case Exists:
		return dnf(f.Kid)
	case Or:
		var out [][]Atom
		for _, k := range f.Kids {
			out = append(out, dnf(k)...)
		}
		return out
	case And:
		out := [][]Atom{{}}
		for _, k := range f.Kids {
			kd := dnf(k)
			var next [][]Atom
			for _, left := range out {
				for _, right := range kd {
					merged := make([]Atom, 0, len(left)+len(right))
					merged = append(merged, left...)
					merged = append(merged, right...)
					next = append(next, merged)
				}
			}
			out = next
		}
		return out
	default:
		panic(fmt.Sprintf("query: dnf on non-∃FO⁺ node %T", f))
	}
}

// StandardizeApart renames quantified variables so that no two quantifiers
// bind the same name and no bound name collides with a free name. It works
// for arbitrary FO formulas.
func StandardizeApart(f Formula) Formula {
	counter := 0
	used := map[Var]bool{}
	for _, v := range FreeVars(f) {
		used[v] = true
	}
	fresh := func(base Var) Var {
		for {
			counter++
			v := Var(fmt.Sprintf("%s_%d", base, counter))
			if !used[v] {
				used[v] = true
				return v
			}
		}
	}
	var walk func(Formula, map[Var]Var) Formula
	renameVars := func(vars []Var, env map[Var]Var) ([]Var, map[Var]Var) {
		out := make([]Var, len(vars))
		newEnv := make(map[Var]Var, len(env)+len(vars))
		for k, v := range env {
			newEnv[k] = v
		}
		for i, v := range vars {
			nv := fresh(v)
			out[i] = nv
			newEnv[v] = nv
		}
		return out, newEnv
	}
	walk = func(f Formula, env map[Var]Var) Formula {
		switch f := f.(type) {
		case AtomF:
			args := make([]Term, len(f.Atom.Args))
			for i, t := range f.Atom.Args {
				if v, ok := t.(Var); ok {
					if nv, hit := env[v]; hit {
						args[i] = nv
						continue
					}
				}
				args[i] = t
			}
			return AtomF{Atom: Atom{Pred: f.Atom.Pred, Args: args}}
		case And:
			kids := make([]Formula, len(f.Kids))
			for i, k := range f.Kids {
				kids[i] = walk(k, env)
			}
			return And{Kids: kids}
		case Or:
			kids := make([]Formula, len(f.Kids))
			for i, k := range f.Kids {
				kids[i] = walk(k, env)
			}
			return Or{Kids: kids}
		case Not:
			return Not{Kid: walk(f.Kid, env)}
		case Exists:
			vars, newEnv := renameVars(f.Vars, env)
			return Exists{Vars: vars, Kid: walk(f.Kid, newEnv)}
		case Forall:
			vars, newEnv := renameVars(f.Vars, env)
			return Forall{Vars: vars, Kid: walk(f.Kid, newEnv)}
		case Truth:
			return f
		default:
			panic(fmt.Sprintf("query: unknown formula type %T", f))
		}
	}
	return walk(f, map[Var]Var{})
}

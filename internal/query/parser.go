package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse parses a formula in the surface syntax. Operator precedence, from
// tightest to loosest: ! , & , | , -> (right associative). Quantifiers
// (exists/forall) extend as far right as possible.
func Parse(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.implies()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("query: trailing input at %q", p.peek().text)
	}
	return f, nil
}

// MustParse is Parse that panics on error; for fixed, hand-written queries.
func MustParse(src string) Formula {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind int

const (
	tEOF     tokKind = iota
	tIdent           // predicate, variable, or keyword
	tNumber          // numeric constant
	tQuoted          // quoted constant
	tLParen          // (
	tRParen          // )
	tComma           // ,
	tDot             // .
	tAnd             // &
	tOr              // |
	tNot             // !
	tImplies         // ->
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		r, size := utf8.DecodeRuneInString(src[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case r == '(':
			toks = append(toks, token{tLParen, "(", i})
			i++
		case r == ')':
			toks = append(toks, token{tRParen, ")", i})
			i++
		case r == ',':
			toks = append(toks, token{tComma, ",", i})
			i++
		case r == '.':
			toks = append(toks, token{tDot, ".", i})
			i++
		case r == '&':
			toks = append(toks, token{tAnd, "&", i})
			i++
		case r == '|':
			toks = append(toks, token{tOr, "|", i})
			i++
		case r == '!':
			toks = append(toks, token{tNot, "!", i})
			i++
		case r == '-':
			if strings.HasPrefix(src[i:], "->") {
				toks = append(toks, token{tImplies, "->", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '-' at offset %d", i)
			}
		case r == '\'' || r == '"':
			text, n, err := lexQuoted(src[i:], byte(r))
			if err != nil {
				return nil, fmt.Errorf("query: %w at offset %d", err, i)
			}
			toks = append(toks, token{tQuoted, text, i})
			i += n
		case r >= '0' && r <= '9':
			start := i
			for i < len(src) && isWordByte(src[i]) {
				i++
			}
			toks = append(toks, token{tNumber, src[start:i], start})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(src) {
				r2, sz := utf8.DecodeRuneInString(src[i:])
				if !unicode.IsLetter(r2) && !unicode.IsDigit(r2) && r2 != '_' {
					break
				}
				i += sz
			}
			toks = append(toks, token{tIdent, src[start:i], start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", r, i)
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks, nil
}

func isWordByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' ||
		b == '_' || b == '.' || b == '-'
}

func lexQuoted(src string, q byte) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(src) {
		switch src[i] {
		case q:
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(src) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch src[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(src[i])
			}
			i++
		default:
			b.WriteByte(src[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted constant")
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tEOF }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("query: expected %s at offset %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// implies := or ('->' implies)?         (right associative)
func (p *parser) implies() (Formula, error) {
	lhs, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tImplies {
		p.next()
		rhs, err := p.implies()
		if err != nil {
			return nil, err
		}
		// φ -> ψ is sugar for ¬φ ∨ ψ.
		return Disj(Not{Kid: lhs}, rhs), nil
	}
	return lhs, nil
}

// or := and ('|' and)*
func (p *parser) or() (Formula, error) {
	lhs, err := p.and()
	if err != nil {
		return nil, err
	}
	kids := []Formula{lhs}
	for p.peek().kind == tOr {
		p.next()
		rhs, err := p.and()
		if err != nil {
			return nil, err
		}
		kids = append(kids, rhs)
	}
	if len(kids) == 1 {
		return lhs, nil
	}
	return Disj(kids...), nil
}

// and := unary ('&' unary)*
func (p *parser) and() (Formula, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []Formula{lhs}
	for p.peek().kind == tAnd {
		p.next()
		rhs, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, rhs)
	}
	if len(kids) == 1 {
		return lhs, nil
	}
	return Conj(kids...), nil
}

// unary := '!' unary | quantifier | primary
func (p *parser) unary() (Formula, error) {
	switch t := p.peek(); {
	case t.kind == tNot:
		p.next()
		kid, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{Kid: kid}, nil
	case t.kind == tIdent && (t.text == "exists" || t.text == "forall"):
		return p.quantifier()
	default:
		return p.primary()
	}
}

// quantifier := ('exists'|'forall') var (',' var)* '.' implies
func (p *parser) quantifier() (Formula, error) {
	q := p.next() // exists / forall
	var vars []Var
	for {
		t, err := p.expect(tIdent, "variable")
		if err != nil {
			return nil, err
		}
		if isKeyword(t.text) {
			return nil, fmt.Errorf("query: keyword %q used as variable at offset %d", t.text, t.pos)
		}
		vars = append(vars, Var(t.text))
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tDot, "'.' after quantified variables"); err != nil {
		return nil, err
	}
	kid, err := p.implies()
	if err != nil {
		return nil, err
	}
	if q.text == "exists" {
		return Exists{Vars: vars, Kid: kid}, nil
	}
	return Forall{Vars: vars, Kid: kid}, nil
}

// primary := 'true' | 'false' | '(' implies ')' | atom
func (p *parser) primary() (Formula, error) {
	switch t := p.peek(); {
	case t.kind == tLParen:
		p.next()
		f, err := p.implies()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tIdent && t.text == "true":
		p.next()
		return Truth{Val: true}, nil
	case t.kind == tIdent && t.text == "false":
		p.next()
		return Truth{Val: false}, nil
	case t.kind == tIdent:
		return p.atom()
	default:
		return nil, fmt.Errorf("query: expected formula at offset %d, got %q", t.pos, t.text)
	}
}

// atom := pred '(' (term (',' term)*)? ')'
func (p *parser) atom() (Formula, error) {
	pred, err := p.expect(tIdent, "predicate")
	if err != nil {
		return nil, err
	}
	if isKeyword(pred.text) {
		return nil, fmt.Errorf("query: keyword %q used as predicate at offset %d", pred.text, pred.pos)
	}
	if _, err := p.expect(tLParen, "'(' after predicate"); err != nil {
		return nil, err
	}
	var args []Term
	if p.peek().kind == tRParen {
		p.next()
		return AtomF{Atom: Atom{Pred: pred.text, Args: args}}, nil
	}
	for {
		t := p.next()
		switch t.kind {
		case tIdent:
			if isKeyword(t.text) {
				return nil, fmt.Errorf("query: keyword %q used as term at offset %d", t.text, t.pos)
			}
			args = append(args, Var(t.text))
		case tNumber:
			args = append(args, ConstTerm(t.text))
		case tQuoted:
			args = append(args, ConstTerm(t.text))
		default:
			return nil, fmt.Errorf("query: expected term at offset %d, got %q", t.pos, t.text)
		}
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		if _, err := p.expect(tRParen, "',' or ')'"); err != nil {
			return nil, err
		}
		return AtomF{Atom: Atom{Pred: pred.text, Args: args}}, nil
	}
}

func isKeyword(s string) bool {
	switch s {
	case "exists", "forall", "true", "false":
		return true
	}
	return false
}

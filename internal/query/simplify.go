package query

// Simplify performs semantics-preserving constant folding and structural
// cleanup on a formula, under the active-domain semantics used throughout
// (quantifiers range over dom(D)):
//
//   - truth constants propagate through ∧, ∨, ¬;
//   - nested conjunctions/disjunctions flatten; singletons unwrap;
//   - double negations cancel;
//   - quantified variables not occurring in the body are dropped — except
//     that one variable is kept when none are used, because ∃x̄ φ asserts
//     dom(D) ≠ ∅ even when φ ignores x̄, and that assertion must survive.
//
// Quantifiers over truth constants are NOT folded for the same reason:
// ∃x true is false on the empty database.
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case AtomF, Truth:
		return f
	case And:
		var kids []Formula
		for _, k := range f.Kids {
			s := Simplify(k)
			if t, ok := s.(Truth); ok {
				if !t.Val {
					return Truth{Val: false}
				}
				continue // drop neutral true
			}
			if a, ok := s.(And); ok {
				kids = append(kids, a.Kids...)
				continue
			}
			kids = append(kids, s)
		}
		switch len(kids) {
		case 0:
			return Truth{Val: true}
		case 1:
			return kids[0]
		}
		return And{Kids: kids}
	case Or:
		var kids []Formula
		for _, k := range f.Kids {
			s := Simplify(k)
			if t, ok := s.(Truth); ok {
				if t.Val {
					return Truth{Val: true}
				}
				continue // drop neutral false
			}
			if o, ok := s.(Or); ok {
				kids = append(kids, o.Kids...)
				continue
			}
			kids = append(kids, s)
		}
		switch len(kids) {
		case 0:
			return Truth{Val: false}
		case 1:
			return kids[0]
		}
		return Or{Kids: kids}
	case Not:
		kid := Simplify(f.Kid)
		switch k := kid.(type) {
		case Truth:
			return Truth{Val: !k.Val}
		case Not:
			return k.Kid
		}
		return Not{Kid: kid}
	case Exists:
		kid := Simplify(f.Kid)
		return Exists{Vars: pruneVars(f.Vars, kid), Kid: kid}
	case Forall:
		kid := Simplify(f.Kid)
		return Forall{Vars: pruneVars(f.Vars, kid), Kid: kid}
	default:
		return f
	}
}

// pruneVars drops quantified variables unused by the body, keeping at
// least one (see Simplify's doc for why dom(D) ≠ ∅ must stay asserted).
// Duplicate names in the block collapse to the innermost occurrence, which
// for a single block is just a single binder.
func pruneVars(vars []Var, kid Formula) []Var {
	if len(vars) == 0 {
		return vars
	}
	used := map[Var]bool{}
	for _, v := range FreeVars(kid) {
		used[v] = true
	}
	var out []Var
	seen := map[Var]bool{}
	for _, v := range vars {
		if used[v] && !seen[v] {
			out = append(out, v)
			seen[v] = true
		}
	}
	if len(out) == 0 {
		out = vars[:1]
	}
	return out
}

package query

import (
	"strings"
	"testing"
	"testing/quick"

	"repaircount/internal/relational"
)

func TestParseExampleQuery(t *testing.T) {
	// The query of Example 1.1.
	f, err := Parse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := f.(Exists)
	if !ok {
		t.Fatalf("want Exists at top, got %T", f)
	}
	if len(ex.Vars) != 3 {
		t.Fatalf("want 3 quantified vars, got %v", ex.Vars)
	}
	atoms := Atoms(f)
	if len(atoms) != 2 || atoms[0].Pred != "Employee" {
		t.Fatalf("atoms = %v", atoms)
	}
	// First argument of first atom must be the constant 1, not a variable.
	if _, ok := atoms[0].Args[0].(ConstTerm); !ok {
		t.Fatalf("1 parsed as %T, want constant", atoms[0].Args[0])
	}
	if _, ok := atoms[0].Args[1].(Var); !ok {
		t.Fatalf("x parsed as %T, want variable", atoms[0].Args[1])
	}
	if got := Classify(f); got != FragmentCQ {
		t.Fatalf("Classify = %v, want CQ", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := MustParse("R(x) & S(x) | T(x)")
	or, ok := f.(Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("& must bind tighter than |: %v", f)
	}
	f2 := MustParse("R(x) -> S(x) -> T(x)")
	// -> desugars to ¬∨ (flattened): !R(x) | !S(x) | T(x).
	top, ok := f2.(Or)
	if !ok || len(top.Kids) != 3 {
		t.Fatalf("-> desugar broken: %#v", f2)
	}
	if _, ok := top.Kids[0].(Not); !ok {
		t.Fatalf("-> desugar broken, lhs %T", top.Kids[0])
	}
	if _, ok := top.Kids[2].(AtomF); !ok {
		t.Fatalf("-> desugar broken, final consequent %T", top.Kids[2])
	}
	f3 := MustParse("!R(x) & S(y)")
	if _, ok := f3.(And); !ok {
		t.Fatalf("! must bind tighter than &: %T", f3)
	}
}

func TestParseQuantifierScope(t *testing.T) {
	f := MustParse("exists x . R(x) & S(x)")
	// Quantifier extends as far right as possible: S(x) is bound.
	if fv := FreeVars(f); len(fv) != 0 {
		t.Fatalf("want no free vars, got %v", fv)
	}
	g := MustParse("(exists x . R(x)) & S(x)")
	if fv := FreeVars(g); len(fv) != 1 || fv[0] != "x" {
		t.Fatalf("want free x, got %v", fv)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R(x",
		"R(x))",
		"exists . R(x)",
		"exists x R(x)",
		"R(x) &",
		"R(x) - S(x)",
		"R('abc)",
		"exists true . R(x)",
		"true(x)",
		"R(x) R(y)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{
		"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))",
		"forall c . (Clause(c) -> Sat(c))",
		"!(R(x) | S(y)) & T('Bob')",
		"true",
		"false",
		"R() | exists q . S(q, 'with space', 42)",
	}
	for _, src := range cases {
		f1 := MustParse(src)
		f2, err := Parse(f1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q failed: %v", src, f1.String(), err)
		}
		if f1.String() != f2.String() {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", f1.String(), f2.String())
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want Fragment
	}{
		{"exists x . R(x)", FragmentCQ},
		{"R('a') & S('b')", FragmentCQ},
		{"true", FragmentCQ},
		{"(exists x . R(x)) | (exists y . S(y))", FragmentUCQ},
		{"exists x . (R(x) & (S(x) | T(x)))", FragmentEP},
		{"false", FragmentUCQ}, // empty union
		{"!R('a')", FragmentFO},
		{"forall x . R(x)", FragmentFO},
		{"R(x) -> S(x)", FragmentFO},
	}
	for _, c := range cases {
		if got := Classify(MustParse(c.src)); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestToUCQBasic(t *testing.T) {
	f := MustParse("exists x . (R(x) & (S(x) | T(x)))")
	u, err := ToUCQ(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 2 {
		t.Fatalf("want 2 disjuncts, got %v", u)
	}
	for _, q := range u.Disjuncts {
		if len(q.Atoms) != 2 {
			t.Fatalf("each disjunct has 2 atoms: %v", q)
		}
	}
}

func TestToUCQStandardizesApart(t *testing.T) {
	// The two x's are different variables; conflating them would force the
	// same witness in both atoms.
	f := MustParse("(exists x . R(x)) & (exists x . S(x))")
	u, err := ToUCQ(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Disjuncts) != 1 {
		t.Fatalf("want 1 disjunct, got %d", len(u.Disjuncts))
	}
	q := u.Disjuncts[0]
	if len(q.Vars()) != 2 {
		t.Fatalf("bound variables were conflated: vars = %v in %v", q.Vars(), q)
	}
}

func TestToUCQRejects(t *testing.T) {
	if _, err := ToUCQ(MustParse("!R('a')")); err == nil {
		t.Fatalf("negation accepted by ToUCQ")
	}
	if _, err := ToUCQ(MustParse("R(x)")); err == nil {
		t.Fatalf("free variables accepted by ToUCQ")
	}
}

func TestToUCQTruthConstants(t *testing.T) {
	u := MustToUCQ(MustParse("true"))
	if len(u.Disjuncts) != 1 || len(u.Disjuncts[0].Atoms) != 0 {
		t.Fatalf("true must become the single empty disjunct: %v", u)
	}
	u = MustToUCQ(MustParse("false"))
	if len(u.Disjuncts) != 0 {
		t.Fatalf("false must become the empty union: %v", u)
	}
	// x & (true | R('a')) simplifies: true disjunct absorbs.
	u = MustToUCQ(MustParse("S('b') & (true | R('a'))"))
	if len(u.Disjuncts) != 2 {
		t.Fatalf("want 2 disjuncts, got %v", u)
	}
}

func TestToUCQDeduplicates(t *testing.T) {
	u := MustToUCQ(MustParse("R('a') | R('a')"))
	if len(u.Disjuncts) != 1 {
		t.Fatalf("duplicate disjuncts kept: %v", u)
	}
	// Duplicate atoms within one conjunction collapse too.
	u = MustToUCQ(MustParse("R('a') & R('a')"))
	if len(u.Disjuncts[0].Atoms) != 1 {
		t.Fatalf("duplicate atoms kept: %v", u)
	}
}

func TestSubstitute(t *testing.T) {
	f := MustParse("R(x) & (exists x . S(x, y))")
	g := Substitute(f, map[Var]relational.Const{"x": "1", "y": "2"})
	atoms := Atoms(g)
	// Free x replaced, bound x untouched, y replaced.
	if _, ok := atoms[0].Args[0].(ConstTerm); !ok {
		t.Fatalf("free x not substituted: %v", atoms[0])
	}
	if _, ok := atoms[1].Args[0].(Var); !ok {
		t.Fatalf("bound x wrongly substituted: %v", atoms[1])
	}
	if ct, ok := atoms[1].Args[1].(ConstTerm); !ok || relational.Const(ct) != "2" {
		t.Fatalf("y not substituted: %v", atoms[1])
	}
	if fv := FreeVars(g); len(fv) != 0 {
		t.Fatalf("substituted formula still has free vars %v", fv)
	}
}

func TestKeywidth(t *testing.T) {
	ks := relational.Keys(map[string]int{"Employee": 1, "Element": 1})
	cases := []struct {
		src  string
		want int
	}{
		{"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))", 2},
		{"exists x . Unkeyed(x)", 0},
		{"exists x . (Employee(1, x, 'HR') & Unkeyed(x))", 1},
		// The same atom occurring twice counts once (a set of atoms).
		{"Employee(1, 'a', 'b') | Employee(1, 'a', 'b')", 1},
		{"true", 0},
	}
	for _, c := range cases {
		if got := Keywidth(MustParse(c.src), ks); got != c.want {
			t.Errorf("Keywidth(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestKeywidthUCQAndMaxDisjunct(t *testing.T) {
	ks := relational.Keys(map[string]int{"R": 1, "S": 1})
	u := MustToUCQ(MustParse("(exists x . (R(x) & S(x))) | (exists y . R(y))"))
	if got := KeywidthUCQ(u, ks); got != 3 {
		t.Errorf("KeywidthUCQ = %d, want 3 (R(x),S(x),R(y) distinct atoms)", got)
	}
	if got := KeywidthMaxDisjunct(u, ks); got != 2 {
		t.Errorf("KeywidthMaxDisjunct = %d, want 2", got)
	}
}

func TestSelfJoinFree(t *testing.T) {
	sjf := MustToUCQ(MustParse("exists x, y . (R(x, y) & S(y))")).Disjuncts[0]
	if !sjf.IsSelfJoinFree() {
		t.Fatalf("R,S query must be self-join-free")
	}
	sj := MustToUCQ(MustParse("exists x, y . (R(x) & R(y))")).Disjuncts[0]
	if sj.IsSelfJoinFree() {
		t.Fatalf("R,R query must not be self-join-free")
	}
}

func TestGroundAtom(t *testing.T) {
	a := NewAtom("R", C("1"), C("b"))
	f, ok := GroundAtom(a)
	if !ok || f.Pred != "R" || f.Args[1] != "b" {
		t.Fatalf("GroundAtom = %v %v", f, ok)
	}
	if _, ok := GroundAtom(NewAtom("R", V("x"))); ok {
		t.Fatalf("GroundAtom accepted a variable")
	}
}

func TestStandardizeApartNoCollisions(t *testing.T) {
	f := MustParse("(exists x . R(x)) & (exists x . S(x)) & (forall x . T(x) -> R(x))")
	g := StandardizeApart(f)
	// Collect all quantified variable names; they must be pairwise distinct.
	var names []Var
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Exists:
			names = append(names, f.Vars...)
			walk(f.Kid)
		case Forall:
			names = append(names, f.Vars...)
			walk(f.Kid)
		case And:
			for _, k := range f.Kids {
				walk(k)
			}
		case Or:
			for _, k := range f.Kids {
				walk(k)
			}
		case Not:
			walk(f.Kid)
		}
	}
	walk(g)
	seen := map[Var]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate bound name %q after standardize-apart: %v", n, g)
		}
		seen[n] = true
	}
}

// Property: every parseable formula prints to a string that re-parses to an
// identical print (printer/parser fixpoint) across a corpus of shapes.
func TestPrintParseFixpointProperty(t *testing.T) {
	shapes := []string{
		"R(x)", "R('c')", "R(x) & S(y)", "R(x) | S(y)", "!R(x)",
		"exists v . R(v)", "forall v . R(v)", "R(x) -> S(x)",
		"exists a, b . (R(a, b) & (S(a) | !T(b)))",
	}
	prop := func(i, j uint8) bool {
		a := shapes[int(i)%len(shapes)]
		b := shapes[int(j)%len(shapes)]
		src := "(" + a + ") & ((" + b + ") | !(" + a + "))"
		f1, err := Parse(src)
		if err != nil {
			return false
		}
		f2, err := Parse(f1.String())
		if err != nil {
			return false
		}
		return f1.String() == f2.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderQueryConstQuoting(t *testing.T) {
	// Identifier-looking constants must round-trip as constants.
	f := AtomF{Atom: NewAtom("R", C("HR"), C("123"), C("it's"))}
	g, err := Parse(f.String())
	if err != nil {
		t.Fatal(err)
	}
	atoms := Atoms(g)
	for i, a := range atoms[0].Args {
		ct, ok := a.(ConstTerm)
		if !ok {
			t.Fatalf("arg %d re-parsed as %T, want constant (text %q)", i, a, f.String())
		}
		want := f.Atom.Args[i].(ConstTerm)
		if ct != want {
			t.Fatalf("arg %d = %q, want %q", i, ct, want)
		}
	}
	if !strings.Contains(f.String(), "'HR'") {
		t.Fatalf("HR must be quoted in query rendering: %s", f.String())
	}
}

package query

import (
	"repaircount/internal/relational"
)

// Keywidth computes the covering function kw(Q,Σ) of the paper (§5.1): the
// number of distinct atoms occurring in Q whose predicate has a key in Σ.
// It is the parameter k for which #CQA(Q,Σ) ∈ Λ[k] (Theorem 5.1).
func Keywidth(f Formula, ks *relational.KeySet) int {
	seen := map[string]bool{}
	n := 0
	for _, a := range Atoms(f) {
		if !ks.HasKey(a.Pred) {
			continue
		}
		c := a.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		n++
	}
	return n
}

// KeywidthUCQ computes kw over a UCQ: the number of distinct keyed atoms
// across all disjuncts.
func KeywidthUCQ(u UCQ, ks *relational.KeySet) int {
	seen := map[string]bool{}
	n := 0
	for _, q := range u.Disjuncts {
		for _, a := range q.Atoms {
			if !ks.HasKey(a.Pred) {
				continue
			}
			c := a.Canonical()
			if seen[c] {
				continue
			}
			seen[c] = true
			n++
		}
	}
	return n
}

// KeywidthMaxDisjunct returns the maximum, over the disjuncts of a UCQ, of
// the number of distinct keyed atoms in that disjunct. This is the bound ℓ
// on selector length used by Algorithm 2's compactor (§4.1: "ℓ is bounded
// by the maximum number of atoms with a predicate that has a key over all
// disjuncts of Q"); it never exceeds KeywidthUCQ.
func KeywidthMaxDisjunct(u UCQ, ks *relational.KeySet) int {
	max := 0
	for _, q := range u.Disjuncts {
		seen := map[string]bool{}
		n := 0
		for _, a := range q.Atoms {
			if !ks.HasKey(a.Pred) {
				continue
			}
			c := a.Canonical()
			if seen[c] {
				continue
			}
			seen[c] = true
			n++
		}
		if n > max {
			max = n
		}
	}
	return max
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repaircount"
)

// This file is the probe plumbing shared by every serving topology: the
// bounded slot pool with per-slot counter caches, the structured error
// body, and the query extraction. The single-node daemon (Server) and
// the cluster coordinator/worker (internal/cluster) build their HTTP
// surfaces from these same pieces so admission, overload and error
// semantics cannot drift between topologies.

// ErrOverloaded is returned by Pool.Acquire when QueueDepth probes
// already wait for a slot.
var ErrOverloaded = errors.New("server: probe queue full")

// Slot carries one probe slot's reusable state: counters (and their
// compiled matchers, factorizations and memos) cached per query text,
// invalidated when the substrate epoch moves.
type Slot struct {
	epoch    uint64
	counters map[string]*repaircount.Counter
}

// Counter returns the slot's cached counter for the query text,
// rebuilding via build when absent or when the epoch moved (the
// substrate was replaced). The cache is bounded; a pathological query
// mix resets it rather than growing it.
func (sl *Slot) Counter(epoch uint64, qs string, build func(qs string) (*repaircount.Counter, error)) (*repaircount.Counter, error) {
	if sl.epoch != epoch {
		sl.counters = map[string]*repaircount.Counter{}
		sl.epoch = epoch
	}
	if c, ok := sl.counters[qs]; ok {
		return c, nil
	}
	c, err := build(qs)
	if err != nil {
		return nil, err
	}
	if len(sl.counters) >= 256 {
		sl.counters = map[string]*repaircount.Counter{}
	}
	sl.counters[qs] = c
	return c, nil
}

// Pool is a bounded probe-slot pool with an admission queue: at most
// `workers` probes run at once and at most `depth` wait; beyond that
// Acquire answers ErrOverloaded immediately.
type Pool struct {
	slots   chan *Slot
	depth   int64
	waiting atomic.Int64
}

// NewPool builds a pool of `workers` slots with a waiting queue of
// `depth`.
func NewPool(workers, depth int) *Pool {
	p := &Pool{slots: make(chan *Slot, workers), depth: int64(depth)}
	for i := 0; i < workers; i++ {
		p.slots <- &Slot{counters: map[string]*repaircount.Counter{}}
	}
	return p
}

// Acquire takes a probe slot, answering ErrOverloaded when the queue is
// full, and ctx.Err() when the deadline expires first.
func (p *Pool) Acquire(ctx context.Context) (*Slot, error) {
	select {
	case sl := <-p.slots:
		return sl, nil
	default:
	}
	if p.waiting.Add(1) > p.depth {
		p.waiting.Add(-1)
		return nil, ErrOverloaded
	}
	defer p.waiting.Add(-1)
	select {
	case sl := <-p.slots:
		return sl, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Release returns a slot to the pool.
func (p *Pool) Release(sl *Slot) { p.slots <- sl }

// APIError is the structured error body: {"error": {"code": ..., ...}}.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Admission details on budget_exceeded.
	PlannedCost string `json:"planned_cost,omitempty"`
	ExactBudget int64  `json:"exact_budget,omitempty"`
	SampleBound string `json:"sample_bound,omitempty"`
	MaxSamples  int64  `json:"max_samples,omitempty"`
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

// WriteErr writes a structured error response.
func WriteErr(w http.ResponseWriter, status int, e APIError) {
	WriteJSON(w, status, map[string]APIError{"error": e})
}

// WriteResult writes one successful probe result: the bare rendered
// value as text/plain when the request asked for format=text, the JSON
// body otherwise. An empty text form means the endpoint has no text
// rendering and always answers JSON. Every handler tail in the
// single-node daemon and the cluster coordinator funnels through here
// so the two response shapes cannot drift.
func WriteResult(w http.ResponseWriter, r *http.Request, text string, body map[string]any) {
	if text != "" && r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintf(w, "%s\n", text)
		return
	}
	WriteJSON(w, http.StatusOK, body)
}

// ProbeQuery extracts the query text from ?q= or a JSON {"query": ...}
// body.
func ProbeQuery(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body != nil && r.Method == http.MethodPost {
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err == nil && body.Query != "" {
			return body.Query, nil
		}
	}
	return "", fmt.Errorf("missing query: pass ?q= or a JSON body {\"query\": ...}")
}

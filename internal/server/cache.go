package server

import (
	"context"
	"math/big"
	"sync"
	"sync/atomic"

	"repaircount"
)

// This file is the shared probe cache: one bounded, concurrency-safe
// structure holding, per canonical query text, the compiled Counter
// (shared across all probe slots instead of compiled once per slot),
// the priced Admission, and completed exact results. Every memo is
// keyed by the substrate epoch (bumped when compaction re-maps the
// snapshot file — a Counter built against the old mapping must never
// run again) and the monotonic instance version (bumped by every
// applied delta), so a stale serve is structurally impossible: a moved
// version or epoch simply misses.
//
// Entry access is serialized by a context-aware lock, which doubles as
// the singleflight collapse point: when a thundering herd probes one
// query, the first holder runs the count and stores the result; every
// waiter acquires the lock after it and finds the memo populated.

// DefaultCacheEntries is the probe-cache bound when the config does not
// set one.
const DefaultCacheEntries = 512

// ResultKind names the per-query result memos. Fan is the cluster
// coordinator's merged fan-out result; the single-node daemon uses
// Count, Decide and Prob. Approximate and rank results are never cached.
type ResultKind uint8

const (
	ResultCount ResultKind = iota
	ResultDecide
	ResultFan
	ResultProb
	numResultKinds
)

// CachedResult is one completed probe result pinned to an (epoch,
// version) pair. N and Str are never mutated after StoreResult.
type CachedResult struct {
	N        *big.Int // exact count (nil for decide/prob)
	Str      string   // rendered response value: count text, or "true"/"false"
	Engine   repaircount.EngineKind
	Entailed bool    // decide verdict
	Lo, Hi   float64 // probability interval bounds (prob results)
}

// CacheStats is a point-in-time counter snapshot for /v1/stats.
// FPMerges counts results served across query texts through the
// count-fingerprint alias map: a probe whose own text had no memoized
// result but whose structural fingerprint matched another query's.
type CacheStats struct {
	Hits, Misses, Evictions, FPMerges int64
	Entries                           int
}

type admissionMemo struct {
	ok             bool
	epoch, version uint64
	planFP         string // fingerprint the admission was priced under ("" = none)
	adm            Admission
}

type resultMemo struct {
	ok             bool
	epoch, version uint64
	res            CachedResult
}

// CacheEntry is the cached state for one query text. All fields below
// lock are guarded by holding the entry lock (Acquire/Release);
// lastUse is guarded by the cache mutex.
type CacheEntry struct {
	pc      *ProbeCache
	qs      string
	lock    chan struct{} // capacity 1; the singleflight collapse point
	lastUse int64

	epoch   uint64
	counter *repaircount.Counter
	adm     admissionMemo
	results [numResultKinds]resultMemo
}

// ProbeCache is the shared, bounded probe cache. One instance is shared
// by every probe slot of a Server (and by the cluster coordinator's
// local counting path).
type ProbeCache struct {
	mu      sync.Mutex
	cap     int
	clock   int64
	entries map[string]*CacheEntry

	hits, misses, evictions, fpMerges atomic.Int64

	// fpResults aliases completed results across query texts: entries are
	// keyed by the structural count fingerprint (Counter.CountFingerprint)
	// instead of the text, so two structurally identical queries — equal
	// fingerprints imply equal counts — share one computed result. The
	// per-text memos above remain the fast path (and the only path for
	// queries without a fingerprint); this map is consulted on a per-text
	// miss and written through on every store. Guarded by mu.
	fpResults map[fpResKey]resultMemo

	// TotalRepairs is query-independent, so its memo lives on the cache
	// itself. totMu serializes recomputation (total singleflight).
	totMu            sync.Mutex
	totOK            bool
	totEpoch, totVer uint64
	tot              *big.Int
	totStr           string
}

// fpResKey keys the cross-query result alias map: one result kind under
// one structural count fingerprint.
type fpResKey struct {
	kind ResultKind
	fp   string
}

// NewProbeCache builds a cache bounded to at most `entries` queries
// (DefaultCacheEntries when <= 0).
func NewProbeCache(entries int) *ProbeCache {
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	return &ProbeCache{
		cap:       entries,
		entries:   make(map[string]*CacheEntry),
		fpResults: make(map[fpResKey]resultMemo),
	}
}

// ResultByFP returns a completed result memoized under the structural
// count fingerprint fp for (epoch, version) — the cross-query alias rung
// consulted after the per-text memo misses. A hit counts as a
// fingerprint merge (the result crossed query texts).
func (pc *ProbeCache) ResultByFP(kind ResultKind, fp string, epoch, version uint64) (CachedResult, bool) {
	if fp == "" {
		return CachedResult{}, false
	}
	pc.mu.Lock()
	m, ok := pc.fpResults[fpResKey{kind, fp}]
	pc.mu.Unlock()
	if ok && m.ok && m.epoch == epoch && m.version == version {
		pc.fpMerges.Add(1)
		return m.res, true
	}
	return CachedResult{}, false
}

// StoreResultByFP memoizes a completed result under the structural count
// fingerprint for (epoch, version). The alias map is bounded like the
// entry map: past the cap it is dropped wholesale and refills — aliasing
// is a throughput lever, never required for correctness.
func (pc *ProbeCache) StoreResultByFP(kind ResultKind, fp string, epoch, version uint64, res CachedResult) {
	if fp == "" {
		return
	}
	pc.mu.Lock()
	if len(pc.fpResults) >= pc.cap {
		pc.fpResults = make(map[fpResKey]resultMemo)
	}
	pc.fpResults[fpResKey{kind, fp}] = resultMemo{ok: true, epoch: epoch, version: version, res: res}
	pc.mu.Unlock()
}

// Acquire returns the locked entry for qs with a counter valid for the
// given epoch, building (or rebuilding, when compaction moved the
// epoch) via build. The entry stays locked — and concurrent probes for
// the same query wait — until Release; a canceled ctx abandons the
// wait. A build error evicts the entry so bad queries cannot occupy the
// map.
func (pc *ProbeCache) Acquire(ctx context.Context, epoch uint64, qs string, build func(qs string) (*repaircount.Counter, error)) (*CacheEntry, error) {
	pc.mu.Lock()
	e := pc.entries[qs]
	if e == nil {
		e = &CacheEntry{pc: pc, qs: qs, lock: make(chan struct{}, 1)}
		pc.entries[qs] = e
		pc.evictLocked(e)
	}
	pc.clock++
	e.lastUse = pc.clock
	pc.mu.Unlock()

	select {
	case e.lock <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.counter == nil || e.epoch != epoch {
		c, err := build(qs)
		if err != nil {
			<-e.lock
			pc.mu.Lock()
			if pc.entries[qs] == e {
				delete(pc.entries, qs)
			}
			pc.mu.Unlock()
			return nil, err
		}
		e.counter = c
		e.epoch = epoch
		e.adm = admissionMemo{}
		e.results = [numResultKinds]resultMemo{}
	}
	return e, nil
}

// Release unlocks an acquired entry.
func (pc *ProbeCache) Release(e *CacheEntry) { <-e.lock }

// evictLocked drops least-recently-used entries (never keep) until the
// map fits the bound. Caller holds pc.mu. An evicted entry that a probe
// still holds simply finishes detached: its pointer stays valid, only
// its memos are lost.
func (pc *ProbeCache) evictLocked(keep *CacheEntry) {
	for len(pc.entries) > pc.cap {
		var victim *CacheEntry
		for _, e := range pc.entries {
			if e == keep {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(pc.entries, victim.qs)
		pc.evictions.Add(1)
	}
}

// Stats snapshots the cache counters.
func (pc *ProbeCache) Stats() CacheStats {
	pc.mu.Lock()
	n := len(pc.entries)
	pc.mu.Unlock()
	return CacheStats{
		Hits:      pc.hits.Load(),
		Misses:    pc.misses.Load(),
		Evictions: pc.evictions.Load(),
		FPMerges:  pc.fpMerges.Load(),
		Entries:   n,
	}
}

// Counter returns the entry's compiled counter. Caller holds the entry
// lock, which is what makes a non-concurrency-safe Counter shareable.
func (e *CacheEntry) Counter() *repaircount.Counter { return e.counter }

// Admission returns the priced admission memoized for (epoch, version).
func (e *CacheEntry) Admission(epoch, version uint64) (Admission, bool) {
	if e.adm.ok && e.adm.epoch == epoch && e.adm.version == version {
		return e.adm.adm, true
	}
	return Admission{}, false
}

// StoreAdmission memoizes the priced admission for (epoch, version),
// without a plan fingerprint (it will not survive a version bump).
func (e *CacheEntry) StoreAdmission(epoch, version uint64, adm Admission) {
	e.adm = admissionMemo{ok: true, epoch: epoch, version: version, adm: adm}
}

// StoreAdmissionPlan memoizes the priced admission for (epoch, version)
// together with the plan fingerprint it was priced under, making it
// eligible for cross-version reuse via AdmissionForPlan.
func (e *CacheEntry) StoreAdmissionPlan(epoch, version uint64, planFP string, adm Admission) {
	e.adm = admissionMemo{ok: true, epoch: epoch, version: version, planFP: planFP, adm: adm}
}

// AdmissionForPlan returns the memoized admission when it was priced in
// the same epoch under an identical, non-empty plan fingerprint — the
// keyed check that carries a priced admission across version bumps whose
// deltas did not move the plan. The version is deliberately ignored;
// Ladder.PriceEntry restricts which admissions may travel this way.
func (e *CacheEntry) AdmissionForPlan(epoch uint64, planFP string) (Admission, bool) {
	if e.adm.ok && e.adm.epoch == epoch && planFP != "" && e.adm.planFP == planFP {
		return e.adm.adm, true
	}
	return Admission{}, false
}

// Result returns the completed result of the given kind memoized for
// (epoch, version), counting a cache hit or miss either way.
func (e *CacheEntry) Result(kind ResultKind, epoch, version uint64) (CachedResult, bool) {
	m := e.results[kind]
	if m.ok && m.epoch == epoch && m.version == version {
		e.pc.hits.Add(1)
		return m.res, true
	}
	e.pc.misses.Add(1)
	return CachedResult{}, false
}

// StoreResult memoizes a completed result for (epoch, version). The
// caller must not mutate res.N afterwards.
func (e *CacheEntry) StoreResult(kind ResultKind, epoch, version uint64, res CachedResult) {
	e.results[kind] = resultMemo{ok: true, epoch: epoch, version: version, res: res}
}

// Total returns the memoized TotalRepairs for (epoch, version),
// computing and rendering it once per instance state. compute runs
// under the total lock, so a herd of total probes runs one product.
func (pc *ProbeCache) Total(epoch, version uint64, compute func() *big.Int) (*big.Int, string) {
	pc.totMu.Lock()
	defer pc.totMu.Unlock()
	if pc.totOK && pc.totEpoch == epoch && pc.totVer == version {
		pc.hits.Add(1)
		return pc.tot, pc.totStr
	}
	pc.misses.Add(1)
	pc.tot = compute()
	pc.totStr = pc.tot.String()
	pc.totEpoch, pc.totVer, pc.totOK = epoch, version, true
	return pc.tot, pc.totStr
}

// Package server wraps a repair-counting snapshot as a long-lived
// HTTP/JSON daemon (`repairctl serve`): one mmapped .cqs snapshot, a
// bounded pool of probe workers with per-worker counter/matcher reuse
// over the shared live substrate, an admission ladder that prices every
// count probe before running it (exact → FPRAS with reported (ε, δ) →
// typed budget refusal), cooperative cancellation threaded into every
// enumeration kernel, and a crash-safe write path: an append-only ops
// file is tailed, applied through the live instance, journaled with
// fsync'd appends and compacted atomically, with torn-tail recovery at
// startup.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repaircount"
	"repaircount/internal/core"
	"repaircount/internal/repairs"
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// SnapshotPath is the .cqs file to serve (required). The file is
	// recovered (torn journal tails truncated) before it is mapped.
	SnapshotPath string
	// OpsPath, when set, is an append-only update-stream file ("+ Fact" /
	// "- Fact" lines) the daemon tails: new complete lines are applied to
	// the live instance and journaled to the snapshot.
	OpsPath string
	// Workers bounds concurrently running probes (default GOMAXPROCS).
	Workers int
	// CountWorkers is the goroutine count inside one exact count or
	// sampling loop (default 1: probe-level parallelism comes first).
	CountWorkers int
	// QueueDepth bounds probes waiting for a worker slot; beyond it the
	// daemon answers 503 overloaded immediately (default 4×Workers).
	QueueDepth int
	// Deadline is the per-probe wall-clock budget (default 30s). An
	// expired deadline cancels the probe cooperatively and answers 504.
	Deadline time.Duration
	// ExactBudget is the admission ceiling on the planner's priced exact
	// work Σ_c min(2^{n_c}, IE_c); costlier plans degrade to the FPRAS
	// (default repairs.DefaultEnumBudget).
	ExactBudget int64
	// MaxSamples is the admission ceiling on the Theorem 6.2 sample bound;
	// probes needing more get a budget_exceeded error (default
	// core.MaxApxSamples).
	MaxSamples int64
	// Eps and Delta are the accuracy served on the FPRAS rung (defaults
	// 0.1 and 0.05); responses report them.
	Eps, Delta float64
	// Seed makes degraded probes reproducible (default 1).
	Seed uint64
	// Poll is the ops-file tail interval (default 200ms).
	Poll time.Duration
	// CompactBytes triggers an atomic in-place compaction when the
	// snapshot's journal region exceeds it (default 1 MiB; < 0 disables).
	CompactBytes int64
}

func (cfg *Config) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CountWorkers <= 0 {
		cfg.CountWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.ExactBudget <= 0 {
		cfg.ExactBudget = int64(repairs.DefaultEnumBudget)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = core.MaxApxSamples
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.1
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 1 << 20
	}
}

// Server is one serving daemon instance. Probes take the read side of mu;
// the ops applier and compactor take the write side, so counts always see
// a consistent instance version.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	snap    *repaircount.Snapshot
	epoch   uint64 // bumped when the snapshot file is re-mapped (compaction)
	baseLen int64  // sealed-base bytes of the served file

	slots   chan *worker
	waiting atomic.Int64

	degradedReason atomic.Pointer[string]

	appliedOps atomic.Int64
	journaled  atomic.Int64
	recovered  int64 // torn bytes dropped at startup

	stats struct {
		probes, exact, approx, rejected, overloaded, deadline atomic.Int64
	}

	stop     chan struct{}
	stopOnce sync.Once
	tailDone chan struct{}
}

// worker carries one probe slot's reusable state: counters (and their
// compiled matchers, factorizations and memos) cached per query text,
// invalidated when the snapshot epoch moves.
type worker struct {
	epoch    uint64
	counters map[string]*repaircount.Counter
}

// New recovers, maps and starts serving the snapshot in cfg. The returned
// server's Handler routes the probe API; Close stops the tailer and
// releases the mapping.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.SnapshotPath == "" {
		return nil, fmt.Errorf("server: SnapshotPath is required")
	}
	recovered, err := repaircount.RecoverSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("server: recovering %s: %w", cfg.SnapshotPath, err)
	}
	snap, err := repaircount.OpenSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(cfg.SnapshotPath)
	if err != nil {
		snap.Close()
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		snap:      snap,
		baseLen:   st.Size() - snap.JournalBytes(),
		slots:     make(chan *worker, cfg.Workers),
		recovered: recovered,
		stop:      make(chan struct{}),
		tailDone:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.slots <- &worker{counters: map[string]*repaircount.Counter{}}
	}
	if cfg.OpsPath != "" {
		go s.tailLoop()
	} else {
		close(s.tailDone)
	}
	return s, nil
}

// Recovered returns the torn journal bytes dropped at startup.
func (s *Server) Recovered() int64 { return s.recovered }

// Close stops the ops tailer and unmaps the snapshot. In-flight probes
// must have drained (close the HTTP server first). Safe to call twice.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.tailDone
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap.Close()
}

// degrade marks the daemon read-only after a write-path failure: probes
// keep answering, the tailer stops, and /healthz fails.
func (s *Server) degrade(err error) {
	msg := err.Error()
	s.degradedReason.CompareAndSwap(nil, &msg)
}

// degraded returns the write-path failure reason, or "".
func (s *Server) degraded() string {
	if p := s.degradedReason.Load(); p != nil {
		return *p
	}
	return ""
}

// acquire takes a probe slot, answering overloaded when QueueDepth
// probes already wait, and ctx.Err() when the deadline expires first.
func (s *Server) acquire(ctx context.Context) (*worker, error) {
	select {
	case w := <-s.slots:
		return w, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, errOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case w := <-s.slots:
		return w, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) release(w *worker) { s.slots <- w }

// counterFor returns the worker's cached counter for the query text,
// rebuilding it when absent or when the epoch moved (compaction replaced
// the substrate). Caller holds s.mu.RLock.
func (s *Server) counterFor(w *worker, qs string) (*repaircount.Counter, error) {
	if w.epoch != s.epoch {
		w.counters = map[string]*repaircount.Counter{}
		w.epoch = s.epoch
	}
	if c, ok := w.counters[qs]; ok {
		return c, nil
	}
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		return nil, err
	}
	c, err := s.snap.Counter(q)
	if err != nil {
		return nil, err
	}
	if len(w.counters) >= 256 {
		w.counters = map[string]*repaircount.Counter{}
	}
	w.counters[qs] = c
	return c, nil
}

var errOverloaded = errors.New("server: probe queue full")

// apiError is the structured error body: {"error": {"code": ..., ...}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Admission details on budget_exceeded.
	PlannedCost string `json:"planned_cost,omitempty"`
	ExactBudget int64  `json:"exact_budget,omitempty"`
	SampleBound string `json:"sample_bound,omitempty"`
	MaxSamples  int64  `json:"max_samples,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func writeErr(w http.ResponseWriter, status int, e apiError) {
	writeJSON(w, status, map[string]apiError{"error": e})
}

// writeCtxErr maps a canceled probe context to its transport answer.
func (s *Server) writeCtxErr(w http.ResponseWriter, ctx context.Context) {
	if ctx.Err() == context.DeadlineExceeded {
		s.stats.deadline.Add(1)
		writeErr(w, http.StatusGatewayTimeout, apiError{Code: "deadline_exceeded",
			Message: fmt.Sprintf("probe exceeded the %s deadline", s.cfg.Deadline)})
		return
	}
	// Client went away; the status is never seen.
	writeErr(w, 499, apiError{Code: "canceled", Message: "client canceled the probe"})
}

// Handler routes the probe API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/count", s.handleCount)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/total", s.handleTotal)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// probeQuery extracts the query text from ?q= or a JSON {"query": ...}
// body.
func probeQuery(r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Body != nil && r.Method == http.MethodPost {
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err == nil && body.Query != "" {
			return body.Query, nil
		}
	}
	return "", fmt.Errorf("missing query: pass ?q= or a JSON body {\"query\": ...}")
}

// withProbe runs fn on an acquired worker under the read lock, handling
// slot acquisition, queue overload and the probe deadline uniformly.
func (s *Server) withProbe(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context, wk *worker)) {
	s.stats.probes.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	wk, err := s.acquire(ctx)
	if err != nil {
		if err == errOverloaded {
			s.stats.overloaded.Add(1)
			writeErr(w, http.StatusServiceUnavailable, apiError{Code: "overloaded",
				Message: fmt.Sprintf("%d probes already queued", s.cfg.QueueDepth)})
			return
		}
		s.writeCtxErr(w, ctx)
		return
	}
	defer s.release(wk)
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(ctx, wk)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	qs, err := probeQuery(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
		return
	}
	asText := r.URL.Query().Get("format") == "text"
	s.withProbe(w, r, func(ctx context.Context, wk *worker) {
		c, err := s.counterFor(wk, qs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
			return
		}
		version := s.snap.Version()
		adm := s.price(c)
		if adm.Mode == admitExact {
			n, engine, err := c.CountCtx(ctx, s.cfg.CountWorkers)
			switch {
			case err == nil:
				s.stats.exact.Add(1)
				if asText {
					w.Header().Set("Content-Type", "text/plain")
					fmt.Fprintf(w, "%s\n", n)
					return
				}
				writeJSON(w, http.StatusOK, map[string]any{
					"mode": "exact", "count": n.String(),
					"engine": engine.String(), "version": version, "epoch": s.epoch,
				})
				return
			case ctx.Err() != nil:
				s.writeCtxErr(w, ctx)
				return
			case errors.Is(err, repaircount.ErrBudget):
				// The runtime fallback chain ran out of budget despite the
				// plan's price: degrade to the FPRAS rung below.
				adm = s.priceApprox(c, adm)
			default:
				writeErr(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
				return
			}
		}
		if adm.Mode == admitApprox {
			est, err := c.ApproximateParallelCtx(ctx, s.cfg.Eps, s.cfg.Delta, s.cfg.CountWorkers, s.cfg.Seed)
			if err != nil {
				if ctx.Err() != nil {
					s.writeCtxErr(w, ctx)
					return
				}
				writeErr(w, http.StatusInternalServerError, apiError{Code: "internal", Message: err.Error()})
				return
			}
			s.stats.approx.Add(1)
			if asText {
				w.Header().Set("Content-Type", "text/plain")
				fmt.Fprintf(w, "%s\n", est.Value.Text('f', 2))
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"mode": "approx", "estimate": est.Value.Text('f', 2),
				"eps": s.cfg.Eps, "delta": s.cfg.Delta,
				"samples": est.Samples, "hits": est.Hits,
				"version": version, "epoch": s.epoch,
			})
			return
		}
		s.stats.rejected.Add(1)
		writeErr(w, http.StatusTooManyRequests, s.budgetError(adm))
	})
}

func (s *Server) budgetError(adm admission) apiError {
	e := apiError{
		Code:        "budget_exceeded",
		Message:     adm.Reason,
		ExactBudget: s.cfg.ExactBudget,
		MaxSamples:  s.cfg.MaxSamples,
	}
	if adm.PlannedCost != nil {
		e.PlannedCost = adm.PlannedCost.String()
	}
	if adm.SampleBound != nil {
		e.SampleBound = adm.SampleBound.String()
	}
	return e
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	qs, err := probeQuery(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, wk *worker) {
		c, err := s.counterFor(wk, qs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"entailed": c.Decide(), "version": s.snap.Version(), "epoch": s.epoch,
		})
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs, err := probeQuery(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, wk *worker) {
		c, err := s.counterFor(wk, qs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
			return
		}
		adm := s.price(c)
		resp := map[string]any{
			"admission": adm.Mode,
			"engine":    adm.Engine.String(),
			"version":   s.snap.Version(),
			"epoch":     s.epoch,
		}
		if adm.PlannedCost != nil {
			resp["planned_cost"] = adm.PlannedCost.String()
		}
		if adm.Mode == admitApprox || adm.SampleBound != nil {
			if adm.SampleBound != nil {
				resp["sample_bound"] = adm.SampleBound.String()
			}
			resp["eps"], resp["delta"] = s.cfg.Eps, s.cfg.Delta
		}
		if adm.Mode == admitReject {
			resp["reason"] = adm.Reason
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	qs, err := probeQuery(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, wk *worker) {
		q, err := repaircount.ParseQuery(qs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
			return
		}
		ranked, err := s.snap.RankAnswers(q)
		if err != nil {
			if errors.Is(err, repaircount.ErrBudget) {
				s.stats.rejected.Add(1)
				writeErr(w, http.StatusTooManyRequests, apiError{Code: "budget_exceeded", Message: err.Error()})
				return
			}
			writeErr(w, http.StatusBadRequest, apiError{Code: "bad_query", Message: err.Error()})
			return
		}
		type answer struct {
			Tuple     []string `json:"tuple"`
			Count     string   `json:"count"`
			Frequency string   `json:"frequency"`
		}
		out := make([]answer, len(ranked))
		for i, a := range ranked {
			tuple := make([]string, len(a.Tuple))
			for j, c := range a.Tuple {
				tuple[j] = string(c)
			}
			out[i] = answer{Tuple: tuple, Count: a.Count.String(), Frequency: a.Frequency.RatString()}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"answers": out, "version": s.snap.Version(), "epoch": s.epoch,
		})
	})
}

func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	s.withProbe(w, r, func(ctx context.Context, wk *worker) {
		total := s.snap.TotalRepairs()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprintf(w, "%s\n", total)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"total": total.String(), "version": s.snap.Version(), "epoch": s.epoch,
		})
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	journalBytes := int64(0)
	if st, err := os.Stat(s.cfg.SnapshotPath); err == nil {
		journalBytes = st.Size() - s.baseLen
	}
	resp := map[string]any{
		"epoch":            s.epoch,
		"version":          s.snap.Version(),
		"journal_bytes":    journalBytes,
		"applied_ops":      s.appliedOps.Load(),
		"journaled_ops":    s.journaled.Load(),
		"recovered_bytes":  s.recovered,
		"degraded":         s.degraded(),
		"probes":           s.stats.probes.Load(),
		"exact_probes":     s.stats.exact.Load(),
		"approx_probes":    s.stats.approx.Load(),
		"rejected_probes":  s.stats.rejected.Load(),
		"overloaded":       s.stats.overloaded.Load(),
		"deadline_expired": s.stats.deadline.Load(),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if reason := s.degraded(); reason != "" {
		http.Error(w, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// Package server wraps a repair-counting snapshot as a long-lived
// HTTP/JSON daemon (`repairctl serve`): one mmapped .cqs snapshot, a
// bounded pool of probe workers with per-worker counter/matcher reuse
// over the shared live substrate, an admission ladder that prices every
// count probe before running it (exact → FPRAS with reported (ε, δ) →
// typed budget refusal), cooperative cancellation threaded into every
// enumeration kernel, and a crash-safe write path: an append-only ops
// file is tailed, applied through the live instance, journaled with
// fsync'd appends and compacted atomically, with torn-tail recovery at
// startup and the consumed ops offset persisted in a sidecar so
// restarts resume the tail instead of replaying from zero.
//
// The hot serve path runs through a shared, bounded probe cache
// (ProbeCache): compiled counters, priced admissions and completed
// exact/total/decide results are memoized per query and keyed by the
// substrate epoch and instance version, with per-entry locks collapsing
// a thundering herd of identical probes into one count. See the
// "Serve-path performance" section of the root package docs.
//
// The probe plumbing (Pool/Slot), admission policy (Ladder), structured
// errors (APIError) and ops tail (Tailer) are exported so the
// distributed topology in internal/cluster serves with byte-identical
// semantics.
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repaircount"
	"repaircount/internal/core"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// SnapshotPath is the .cqs file to serve (required). The file is
	// recovered (torn journal tails truncated) before it is mapped.
	SnapshotPath string
	// OpsPath, when set, is an append-only update-stream file ("+ Fact" /
	// "- Fact" lines) the daemon tails: new complete lines are applied to
	// the live instance and journaled to the snapshot. The consumed byte
	// offset persists in the OpsPath + ".offset" sidecar.
	OpsPath string
	// Workers bounds concurrently running probes (default GOMAXPROCS).
	Workers int
	// CountWorkers is the goroutine count inside one exact count or
	// sampling loop (default 1: probe-level parallelism comes first).
	CountWorkers int
	// QueueDepth bounds probes waiting for a worker slot; beyond it the
	// daemon answers 503 overloaded immediately (default 4×Workers).
	QueueDepth int
	// Deadline is the per-probe wall-clock budget (default 30s). An
	// expired deadline cancels the probe cooperatively and answers 504.
	Deadline time.Duration
	// ExactBudget is the admission ceiling on the planner's priced exact
	// work Σ_c min(2^{n_c}, IE_c); costlier plans degrade to the FPRAS
	// (default repairs.DefaultEnumBudget).
	ExactBudget int64
	// MaxSamples is the admission ceiling on the Theorem 6.2 sample bound;
	// probes needing more get a budget_exceeded error (default
	// core.MaxApxSamples).
	MaxSamples int64
	// Eps and Delta are the accuracy served on the FPRAS rung (defaults
	// 0.1 and 0.05); responses report them.
	Eps, Delta float64
	// Seed makes degraded probes reproducible (default 1).
	Seed uint64
	// Poll is the ops-file tail interval (default 200ms).
	Poll time.Duration
	// CompactBytes triggers an atomic in-place compaction when the
	// snapshot's journal region exceeds it (default 1 MiB; < 0 disables).
	CompactBytes int64
	// CacheEntries bounds the shared probe cache holding compiled
	// counters, priced admissions and completed exact/total/decide
	// results keyed by (query, epoch, version). 0 selects
	// DefaultCacheEntries; < 0 disables the shared cache (probe slots
	// keep their private per-slot counter caches either way).
	CacheEntries int
	// ProbsPath, when set, is a per-fact probability-annotation file in
	// the workload prob-stream format ("weight<TAB>Fact" lines); /v1/prob
	// probes evaluate query probabilities under these weights through the
	// compiled-circuit weighted counters. Absent, /v1/prob serves the
	// uniform distribution (every repair equally likely — the relative
	// frequency). Annotations naming facts not in the instance are kept
	// and simply never used, so one file outlives the ops stream.
	ProbsPath string
}

func (cfg *Config) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CountWorkers <= 0 {
		cfg.CountWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.ExactBudget <= 0 {
		cfg.ExactBudget = int64(repairs.DefaultEnumBudget)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = core.MaxApxSamples
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.1
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 1 << 20
	}
}

// Ladder returns the admission policy the config describes.
func (cfg Config) Ladder() Ladder {
	return Ladder{ExactBudget: cfg.ExactBudget, MaxSamples: cfg.MaxSamples, Eps: cfg.Eps, Delta: cfg.Delta}
}

// Server is one serving daemon instance. Probes take the read side of mu;
// the ops applier and compactor take the write side, so counts always see
// a consistent instance version.
type Server struct {
	cfg    Config
	ladder Ladder

	mu      sync.RWMutex
	snap    *repaircount.Snapshot
	epoch   uint64 // bumped when the snapshot file is re-mapped (compaction)
	baseLen int64  // sealed-base bytes of the served file

	pool  *Pool
	cache *ProbeCache        // nil when CacheEntries < 0
	probs map[string]float64 // per-fact weights for /v1/prob (nil = uniform)

	degradedReason atomic.Pointer[string]

	appliedOps atomic.Int64
	journaled  atomic.Int64
	recovered  int64 // torn bytes dropped at startup

	stats struct {
		probes, exact, approx, prob, rejected, overloaded, deadline atomic.Int64
	}

	tailer   *Tailer
	stop     chan struct{}
	stopOnce sync.Once
	tailDone chan struct{}
}

// New recovers, maps and starts serving the snapshot in cfg. The returned
// server's Handler routes the probe API; Close stops the tailer and
// releases the mapping.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.SnapshotPath == "" {
		return nil, fmt.Errorf("server: SnapshotPath is required")
	}
	recovered, err := repaircount.RecoverSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("server: recovering %s: %w", cfg.SnapshotPath, err)
	}
	snap, err := repaircount.OpenSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(cfg.SnapshotPath)
	if err != nil {
		snap.Close()
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		ladder:    cfg.Ladder(),
		snap:      snap,
		baseLen:   st.Size() - snap.JournalBytes(),
		pool:      NewPool(cfg.Workers, cfg.QueueDepth),
		recovered: recovered,
		stop:      make(chan struct{}),
		tailDone:  make(chan struct{}),
	}
	if cfg.CacheEntries >= 0 {
		s.cache = NewProbeCache(cfg.CacheEntries)
	}
	if cfg.ProbsPath != "" {
		pf, err := os.Open(cfg.ProbsPath)
		if err != nil {
			snap.Close()
			return nil, fmt.Errorf("server: opening probs %s: %w", cfg.ProbsPath, err)
		}
		anns, err := workload.ParseProbAnnotations(pf)
		pf.Close()
		if err != nil {
			snap.Close()
			return nil, fmt.Errorf("server: parsing probs %s: %w", cfg.ProbsPath, err)
		}
		s.probs = workload.AnnotationMap(anns)
	}
	if cfg.OpsPath != "" {
		s.tailer = &Tailer{
			OpsPath:    cfg.OpsPath,
			OffsetPath: cfg.OpsPath + ".offset",
			Poll:       cfg.Poll,
			Apply:      s.applyBatch,
		}
		go s.tailLoop()
	} else {
		close(s.tailDone)
	}
	return s, nil
}

// Recovered returns the torn journal bytes dropped at startup.
func (s *Server) Recovered() int64 { return s.recovered }

// Close stops the ops tailer and unmaps the snapshot. In-flight probes
// must have drained (close the HTTP server first). Safe to call twice.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.tailDone
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap.Close()
}

// degrade marks the daemon read-only after a write-path failure: probes
// keep answering, the tailer stops, and /healthz fails.
func (s *Server) degrade(err error) {
	msg := err.Error()
	s.degradedReason.CompareAndSwap(nil, &msg)
}

// degraded returns the write-path failure reason, or "".
func (s *Server) degraded() string {
	if p := s.degradedReason.Load(); p != nil {
		return *p
	}
	return ""
}

// buildCounter parses and compiles one query against the current
// snapshot. Caller holds s.mu.RLock.
func (s *Server) buildCounter(qs string) (*repaircount.Counter, error) {
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		return nil, err
	}
	return s.snap.Counter(q)
}

// counterFor returns the slot's cached counter for the query text,
// rebuilding it when absent or when the epoch moved (compaction replaced
// the substrate). This is the cache-disabled fallback path; with the
// shared cache on, probes go through acquireEntry instead. Caller holds
// s.mu.RLock.
func (s *Server) counterFor(sl *Slot, qs string) (*repaircount.Counter, error) {
	return sl.Counter(s.epoch, qs, s.buildCounter)
}

// acquireEntry locks the shared cache entry for qs, writing the
// transport answer on failure. Caller holds s.mu.RLock and must Release
// the entry when non-nil.
func (s *Server) acquireEntry(w http.ResponseWriter, ctx context.Context, qs string) *CacheEntry {
	ent, err := s.cache.Acquire(ctx, s.epoch, qs, s.buildCounter)
	if err != nil {
		if ctx.Err() != nil {
			s.writeCtxErr(w, ctx)
		} else {
			WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		}
		return nil
	}
	return ent
}

// price returns the probe's admission, memoized per (epoch, version)
// when a cache entry is present — and, across version bumps that did not
// move the plan fingerprint, a memoized exact admission is reused without
// re-running the ladder (Ladder.PriceEntry). A later ErrBudget re-price
// is never stored: the memo keeps the plan-level admission, exactly
// mirroring what the uncached ladder would decide on every probe.
func (s *Server) price(ent *CacheEntry, c *repaircount.Counter, version uint64) Admission {
	if ent == nil {
		return s.ladder.Price(c)
	}
	return s.ladder.PriceEntry(ent, c, s.epoch, version)
}

// writeCtxErr maps a canceled probe context to its transport answer.
func (s *Server) writeCtxErr(w http.ResponseWriter, ctx context.Context) {
	if ctx.Err() == context.DeadlineExceeded {
		s.stats.deadline.Add(1)
		WriteErr(w, http.StatusGatewayTimeout, APIError{Code: "deadline_exceeded",
			Message: fmt.Sprintf("probe exceeded the %s deadline", s.cfg.Deadline)})
		return
	}
	// Client went away; the status is never seen.
	WriteErr(w, 499, APIError{Code: "canceled", Message: "client canceled the probe"})
}

// Handler routes the probe API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/count", s.handleCount)
	mux.HandleFunc("/v1/prob", s.handleProb)
	mux.HandleFunc("/v1/decide", s.handleDecide)
	mux.HandleFunc("/v1/explain", s.handleExplain)
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/total", s.handleTotal)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// withProbe runs fn on an acquired slot under the read lock, handling
// slot acquisition, queue overload and the probe deadline uniformly.
func (s *Server) withProbe(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context, sl *Slot)) {
	s.stats.probes.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Deadline)
	defer cancel()
	sl, err := s.pool.Acquire(ctx)
	if err != nil {
		if err == ErrOverloaded {
			s.stats.overloaded.Add(1)
			WriteErr(w, http.StatusServiceUnavailable, APIError{Code: "overloaded",
				Message: fmt.Sprintf("%d probes already queued", s.cfg.QueueDepth)})
			return
		}
		s.writeCtxErr(w, ctx)
		return
	}
	defer s.pool.Release(sl)
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(ctx, sl)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	qs, err := ProbeQuery(r)
	if err != nil {
		WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		version := s.snap.Version()
		var ent *CacheEntry
		var c *repaircount.Counter
		if s.cache != nil {
			if ent = s.acquireEntry(w, ctx, qs); ent == nil {
				return
			}
			defer s.cache.Release(ent)
			if res, ok := ent.Result(ResultCount, s.epoch, version); ok {
				s.stats.exact.Add(1)
				WriteResult(w, r, res.Str, map[string]any{
					"mode": "exact", "count": res.Str,
					"engine": res.Engine.String(), "version": version, "epoch": s.epoch,
				})
				return
			}
			c = ent.Counter()
			// The per-text memo missed; a structurally identical query may
			// already have computed this count. Equal count fingerprints
			// imply equal counts, so the aliased result is served as-is
			// (and copied into this text's memo for the fast path).
			if fp, ok := c.CountFingerprint(); ok {
				if res, ok := s.cache.ResultByFP(ResultCount, fp, s.epoch, version); ok {
					s.stats.exact.Add(1)
					ent.StoreResult(ResultCount, s.epoch, version, res)
					WriteResult(w, r, res.Str, map[string]any{
						"mode": "exact", "count": res.Str,
						"engine": res.Engine.String(), "version": version, "epoch": s.epoch,
					})
					return
				}
			}
		} else {
			var err error
			if c, err = s.counterFor(sl, qs); err != nil {
				WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
				return
			}
		}
		adm := s.price(ent, c, version)
		if adm.Mode == AdmitExact {
			n, engine, err := c.CountCtx(ctx, s.cfg.CountWorkers)
			switch {
			case err == nil:
				s.stats.exact.Add(1)
				str := n.String()
				if ent != nil {
					res := CachedResult{N: n, Str: str, Engine: engine}
					ent.StoreResult(ResultCount, s.epoch, version, res)
					if fp, ok := c.CountFingerprint(); ok {
						s.cache.StoreResultByFP(ResultCount, fp, s.epoch, version, res)
					}
				}
				WriteResult(w, r, str, map[string]any{
					"mode": "exact", "count": str,
					"engine": engine.String(), "version": version, "epoch": s.epoch,
				})
				return
			case ctx.Err() != nil:
				s.writeCtxErr(w, ctx)
				return
			case errors.Is(err, repaircount.ErrBudget):
				// The runtime fallback chain ran out of budget despite the
				// plan's price: degrade to the FPRAS rung below.
				adm = s.ladder.PriceApprox(c, adm)
			default:
				WriteErr(w, http.StatusInternalServerError, APIError{Code: "internal", Message: err.Error()})
				return
			}
		}
		if adm.Mode == AdmitApprox {
			est, err := c.ApproximateParallelCtx(ctx, s.cfg.Eps, s.cfg.Delta, s.cfg.CountWorkers, s.cfg.Seed)
			if err != nil {
				if ctx.Err() != nil {
					s.writeCtxErr(w, ctx)
					return
				}
				WriteErr(w, http.StatusInternalServerError, APIError{Code: "internal", Message: err.Error()})
				return
			}
			s.stats.approx.Add(1)
			WriteResult(w, r, est.Value.Text('f', 2), map[string]any{
				"mode": "approx", "estimate": est.Value.Text('f', 2),
				"eps": s.cfg.Eps, "delta": s.cfg.Delta,
				"samples": est.Samples, "hits": est.Hits,
				"version": version, "epoch": s.epoch,
			})
			return
		}
		s.stats.rejected.Add(1)
		WriteErr(w, http.StatusTooManyRequests, s.ladder.BudgetError(adm))
	})
}

// probResponse renders a served probability interval.
func probResponse(res CachedResult, version, epoch uint64) (string, map[string]any) {
	return res.Str, map[string]any{
		"prob_lo": res.Lo, "prob_hi": res.Hi, "prob": res.Str,
		"version": version, "epoch": epoch,
	}
}

// handleProb answers /v1/prob: the probability that a random repair
// entails the query under the daemon's per-fact weight annotations
// (-probs; uniform without one), evaluated through the compiled-circuit
// weighted counters as an outward-rounded interval bracketing the exact
// value. The probe is admission-priced by circuit size — the budget of
// the forced-compile plan, i.e. cached circuits at their node count and
// cold compiles at their capped bound — and there is no approximate rung:
// a plan beyond the exact budget (or a query the circuit engine cannot
// serve: non-∃FO⁺, masked factorization) is refused with a structured
// budget error, never silently estimated.
func (s *Server) handleProb(w http.ResponseWriter, r *http.Request) {
	qs, err := ProbeQuery(r)
	if err != nil {
		WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		version := s.snap.Version()
		var ent *CacheEntry
		var c *repaircount.Counter
		if s.cache != nil {
			if ent = s.acquireEntry(w, ctx, qs); ent == nil {
				return
			}
			defer s.cache.Release(ent)
			if res, ok := ent.Result(ResultProb, s.epoch, version); ok {
				s.stats.prob.Add(1)
				str, resp := probResponse(res, version, s.epoch)
				WriteResult(w, r, str, resp)
				return
			}
			c = ent.Counter()
		} else {
			if c, err = s.counterFor(sl, qs); err != nil {
				WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
				return
			}
		}
		plan, err := c.ExplainPlan(repaircount.EngineCompile)
		if err != nil {
			s.stats.rejected.Add(1)
			WriteErr(w, http.StatusTooManyRequests, APIError{Code: "budget_exceeded",
				Message: fmt.Sprintf("probability probe needs the circuit engine: %v", err), ExactBudget: s.cfg.ExactBudget})
			return
		}
		if plan.Engine == repaircount.EngineEnumFO {
			s.stats.rejected.Add(1)
			WriteErr(w, http.StatusTooManyRequests, APIError{Code: "budget_exceeded",
				Message:     "no circuit (and no weighted counter) exists outside existential positive FO",
				ExactBudget: s.cfg.ExactBudget})
			return
		}
		if !plan.AlwaysTrue && plan.Budget > s.cfg.ExactBudget {
			s.stats.rejected.Add(1)
			WriteErr(w, http.StatusTooManyRequests, APIError{Code: "budget_exceeded",
				Message:     fmt.Sprintf("planned circuit work %d exceeds the exact budget (no approximate rung for weighted counting)", plan.Budget),
				ExactBudget: s.cfg.ExactBudget, PlannedCost: fmt.Sprint(plan.Budget)})
			return
		}
		iv, err := c.ProbabilityOf(c.FactWeights(s.probs))
		if err != nil {
			if errors.Is(err, repaircount.ErrBudget) {
				s.stats.rejected.Add(1)
				WriteErr(w, http.StatusTooManyRequests, APIError{Code: "budget_exceeded", Message: err.Error(), ExactBudget: s.cfg.ExactBudget})
				return
			}
			WriteErr(w, http.StatusBadRequest, APIError{Code: "prob_unavailable", Message: err.Error()})
			return
		}
		s.stats.prob.Add(1)
		res := CachedResult{Lo: iv.Lo, Hi: iv.Hi, Str: iv.String()}
		if ent != nil {
			ent.StoreResult(ResultProb, s.epoch, version, res)
		}
		str, resp := probResponse(res, version, s.epoch)
		WriteResult(w, r, str, resp)
	})
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	qs, err := ProbeQuery(r)
	if err != nil {
		WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		version := s.snap.Version()
		var entailed bool
		if s.cache != nil {
			ent := s.acquireEntry(w, ctx, qs)
			if ent == nil {
				return
			}
			defer s.cache.Release(ent)
			res, ok := ent.Result(ResultDecide, s.epoch, version)
			if !ok {
				res = CachedResult{Entailed: ent.Counter().Decide()}
				res.Str = fmt.Sprintf("%v", res.Entailed)
				ent.StoreResult(ResultDecide, s.epoch, version, res)
			}
			entailed = res.Entailed
		} else {
			c, err := s.counterFor(sl, qs)
			if err != nil {
				WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
				return
			}
			entailed = c.Decide()
		}
		WriteResult(w, r, fmt.Sprintf("%v", entailed), map[string]any{
			"entailed": entailed, "version": version, "epoch": s.epoch,
		})
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs, err := ProbeQuery(r)
	if err != nil {
		WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		version := s.snap.Version()
		var adm Admission
		if s.cache != nil {
			ent := s.acquireEntry(w, ctx, qs)
			if ent == nil {
				return
			}
			defer s.cache.Release(ent)
			adm = s.price(ent, ent.Counter(), version)
		} else {
			c, err := s.counterFor(sl, qs)
			if err != nil {
				WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
				return
			}
			adm = s.ladder.Price(c)
		}
		resp := map[string]any{
			"admission": adm.Mode,
			"engine":    adm.Engine.String(),
			"version":   version,
			"epoch":     s.epoch,
		}
		if adm.PlannedCost != nil {
			resp["planned_cost"] = adm.PlannedCost.String()
		}
		if adm.Mode == AdmitApprox || adm.SampleBound != nil {
			if adm.SampleBound != nil {
				resp["sample_bound"] = adm.SampleBound.String()
			}
			resp["eps"], resp["delta"] = s.cfg.Eps, s.cfg.Delta
		}
		if adm.Mode == AdmitReject {
			resp["reason"] = adm.Reason
		}
		WriteJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	qs, err := ProbeQuery(r)
	if err != nil {
		WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		q, err := repaircount.ParseQuery(qs)
		if err != nil {
			WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
			return
		}
		ranked, err := s.snap.RankAnswers(q)
		if err != nil {
			if errors.Is(err, repaircount.ErrBudget) {
				s.stats.rejected.Add(1)
				WriteErr(w, http.StatusTooManyRequests, APIError{Code: "budget_exceeded", Message: err.Error()})
				return
			}
			WriteErr(w, http.StatusBadRequest, APIError{Code: "bad_query", Message: err.Error()})
			return
		}
		type answer struct {
			Tuple     []string `json:"tuple"`
			Count     string   `json:"count"`
			Frequency string   `json:"frequency"`
		}
		out := make([]answer, len(ranked))
		for i, a := range ranked {
			tuple := make([]string, len(a.Tuple))
			for j, c := range a.Tuple {
				tuple[j] = string(c)
			}
			out[i] = answer{Tuple: tuple, Count: a.Count.String(), Frequency: a.Frequency.RatString()}
		}
		WriteResult(w, r, "", map[string]any{
			"answers": out, "version": s.snap.Version(), "epoch": s.epoch,
		})
	})
}

func (s *Server) handleTotal(w http.ResponseWriter, r *http.Request) {
	s.withProbe(w, r, func(ctx context.Context, sl *Slot) {
		version := s.snap.Version()
		var str string
		if s.cache != nil {
			_, str = s.cache.Total(s.epoch, version, s.snap.TotalRepairs)
		} else {
			str = s.snap.TotalRepairs().String()
		}
		WriteResult(w, r, str, map[string]any{
			"total": str, "version": version, "epoch": s.epoch,
		})
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	journalBytes := int64(0)
	if st, err := os.Stat(s.cfg.SnapshotPath); err == nil {
		journalBytes = st.Size() - s.baseLen
	}
	opsOffset := int64(0)
	if s.tailer != nil {
		opsOffset = s.tailer.Offset()
	}
	resp := map[string]any{
		"epoch":            s.epoch,
		"version":          s.snap.Version(),
		"journal_bytes":    journalBytes,
		"applied_ops":      s.appliedOps.Load(),
		"journaled_ops":    s.journaled.Load(),
		"ops_offset":       opsOffset,
		"recovered_bytes":  s.recovered,
		"degraded":         s.degraded(),
		"probes":           s.stats.probes.Load(),
		"exact_probes":     s.stats.exact.Load(),
		"approx_probes":    s.stats.approx.Load(),
		"prob_probes":      s.stats.prob.Load(),
		"rejected_probes":  s.stats.rejected.Load(),
		"overloaded":       s.stats.overloaded.Load(),
		"deadline_expired": s.stats.deadline.Load(),
	}
	var cs CacheStats
	if s.cache != nil {
		cs = s.cache.Stats()
	}
	resp["cache_hits"] = cs.Hits
	resp["cache_misses"] = cs.Misses
	resp["cache_evictions"] = cs.Evictions
	resp["cache_entries"] = cs.Entries
	resp["cache_fp_merges"] = cs.FPMerges
	s.mu.RUnlock()
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if reason := s.degraded(); reason != "" {
		http.Error(w, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

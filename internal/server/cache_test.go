package server_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repaircount"
	"repaircount/internal/relational"
	"repaircount/internal/server"
	"repaircount/internal/workload"
)

// appendOp appends one update line to an ops stream file.
func appendOp(t *testing.T, path string, op workload.Update) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.FormatUpdates(f, []workload.Update{op}); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheDifferential pins the shared probe cache to the uncached
// daemon, byte for byte: two servers over identical snapshot and ops
// copies — one with the cache, one with CacheEntries < 0 — evolve in
// lockstep one op at a time under an aggressive compaction budget (so
// epochs move too), and after every step the raw bodies of every probe
// shape must be identical, including the second (memoized) probe of the
// cached daemon.
func TestCacheDifferential(t *testing.T) {
	db, ks, _ := workload.MultiComponent(4, 2, 2)
	dirA, dirB := t.TempDir(), t.TempDir()
	pathA := writeSnapshot(t, dirA, db, ks)
	pathB := writeSnapshot(t, dirB, db, ks)
	opsA := filepath.Join(dirA, "ops.txt")
	opsB := filepath.Join(dirB, "ops.txt")
	for _, p := range []string{opsA, opsB} {
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	mk := func(path, ops string, entries int) *httptest.Server {
		_, ts := start(t, server.Config{
			SnapshotPath: path, OpsPath: ops,
			Poll: 2 * time.Millisecond, CompactBytes: 1,
			CacheEntries: entries,
		})
		return ts
	}
	cached := mk(pathA, opsA, 0)
	plain := mk(pathB, opsB, -1)

	atom := "C0('k0', 'v0')"
	disj := multiComponentQuery(4)
	// Explain goes first: admission pricing depends on the counter's
	// component-memo warmth (a count prices the next plan at zero), so
	// the shapes only line up byte-for-byte when both daemons price the
	// epoch's cold counter — which the cache then pins for the epoch.
	probes := []string{
		"/v1/explain?q=" + url.QueryEscape(disj),
		countURL(atom, ""),
		countURL(atom, "&format=text"),
		countURL(disj, ""),
		"/v1/decide?q=" + url.QueryEscape(atom),
		"/v1/decide?q=" + url.QueryEscape(atom) + "&format=text",
		"/v1/total",
		"/v1/total?format=text",
	}
	compare := func(step int) {
		t.Helper()
		for _, p := range probes {
			sc, _, want := get(t, plain, p)
			sc2, _, got := get(t, cached, p)
			if sc != http.StatusOK || sc2 != http.StatusOK {
				t.Fatalf("step %d probe %s: status %d vs %d", step, p, sc, sc2)
			}
			if got != want {
				t.Fatalf("step %d probe %s: cached %q, uncached %q", step, p, got, want)
			}
			// The second probe is a memo hit; it must serve the same bytes.
			_, _, hit := get(t, cached, p)
			if hit != want {
				t.Fatalf("step %d probe %s: cache hit %q, uncached %q", step, p, hit, want)
			}
		}
	}

	compare(0)
	ops := []workload.Update{
		{Fact: relational.NewFact("C0", "k0", "z0")},
		{Fact: relational.NewFact("C1", "k1", "z1")},
		{Del: true, Fact: relational.NewFact("C0", "k0", "z0")},
		{Fact: relational.NewFact("C2", "k0", "z2")},
		{Del: true, Fact: relational.NewFact("C2", "k0", "v0")},
	}
	for i, op := range ops {
		// Lockstep: one op lands and journals on BOTH daemons before the
		// next is written, so the two sides see identical batch sequences
		// and therefore identical version and epoch trajectories.
		appendOp(t, opsA, op)
		appendOp(t, opsB, op)
		for _, ts := range []*httptest.Server{cached, plain} {
			waitStats(t, ts, fmt.Sprintf("op %d applied", i+1), func(st map[string]any) bool {
				return st["applied_ops"] == float64(i+1)
			})
		}
		compare(i + 1)
	}

	// The cache did real work during all of that.
	st := waitStats(t, cached, "cache counters", func(st map[string]any) bool {
		return st["cache_hits"].(float64) > 0 && st["cache_misses"].(float64) > 0
	})
	if st["cache_entries"].(float64) == 0 {
		t.Fatalf("cache holds no entries after the differential run: %v", st)
	}
}

// TestCacheEviction proves the cache is bounded: a working set wider
// than CacheEntries must evict (LRU), never grow the entry table.
func TestCacheEviction(t *testing.T) {
	db, ks, _ := workload.MultiComponent(8, 2, 2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path, CacheEntries: 2})

	for c := 0; c < 6; c++ {
		qs := fmt.Sprintf("C%d('k0', 'v0')", c)
		status, body, _ := get(t, ts, countURL(qs, ""))
		if status != http.StatusOK || body["mode"] != "exact" {
			t.Fatalf("probe %s: status %d body %v", qs, status, body)
		}
	}
	_, st, _ := get(t, ts, "/v1/stats")
	if n := st["cache_entries"].(float64); n > 2 {
		t.Fatalf("cache grew past its bound: %v entries, want <= 2", n)
	}
	if ev := st["cache_evictions"].(float64); ev < 4 {
		t.Fatalf("expected >= 4 evictions over a 6-query set with 2 slots, got %v", ev)
	}
}

// TestCacheSingleflight sends concurrent identical probes at a fresh
// daemon: the per-entry lock must collapse them onto one computation —
// exactly one result-memo miss, every other probe a hit.
func TestCacheSingleflight(t *testing.T) {
	db, ks, _ := workload.MultiComponent(4, 2, 2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path, Workers: 8, QueueDepth: 64})

	const n = 8
	qs := countURL("C0('k0', 'v0')", "")
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + qs)
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent probe failed: %s", e)
	}
	_, st, _ := get(t, ts, "/v1/stats")
	if st["cache_misses"].(float64) != 1 || st["cache_hits"].(float64) != float64(n-1) {
		t.Fatalf("singleflight did not collapse %d identical probes: %v", n, st)
	}
}

// TestCacheRaceStress runs hot probes, cold probes and a live delta
// stream concurrently (the CI -race build makes this a memory-model
// check on the shared cache), then pins the settled count to an offline
// replay of the full stream.
func TestCacheRaceStress(t *testing.T) {
	db, ks, _ := workload.MultiComponent(4, 4, 2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "ops.txt")
	if err := os.WriteFile(opsPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := start(t, server.Config{
		SnapshotPath: path, OpsPath: opsPath,
		Poll: 2 * time.Millisecond, CompactBytes: 1,
		Workers: 4, QueueDepth: 256,
	})

	const nOps = 50
	ops := make([]workload.Update, nOps)
	for i := range ops {
		ops[i] = workload.Update{Fact: relational.NewFact(fmt.Sprintf("C%d", i%4), "k0", relational.Const(fmt.Sprintf("w%d", i)))}
	}

	hot := "C0('k0', 'v0')"
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	probe := func(qs string) {
		resp, err := http.Get(ts.URL + countURL(qs, ""))
		if err != nil {
			select {
			case errs <- err.Error():
			default:
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			select {
			case errs <- fmt.Sprintf("probe %s: status %d", qs, resp.StatusCode):
			default:
			}
		}
	}
	wg.Add(1)
	go func() { // the write side: one op per millisecond
		defer wg.Done()
		for _, op := range ops {
			appendOp(t, opsPath, op)
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if g%2 == 0 {
					probe(hot) // hot: always the same entry
				} else {
					probe(fmt.Sprintf("C%d('k%d', 'v0')", (g+i)%4, i%4)) // cold-ish rotation
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("stress probe failed: %s", e)
	}

	waitStats(t, ts, "stream drained", func(st map[string]any) bool {
		return st["applied_ops"] == float64(nOps)
	})

	// Offline replay of the same stream gives the settled expectation.
	q, err := repaircount.ParseQuery(hot)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []repaircount.Delta
	for _, op := range ops {
		deltas = append(deltas, repaircount.Insert(op.Fact))
	}
	if _, err := c.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	status, _, raw := get(t, ts, countURL(hot, "&format=text"))
	if status != http.StatusOK || strings.TrimSpace(raw) != want.String() {
		t.Fatalf("settled count: status %d body %q, want %s", status, raw, want)
	}
}

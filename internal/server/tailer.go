package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"repaircount"
	"repaircount/internal/workload"
)

// The tailer is the daemon's only write path. It polls the ops file for
// new complete lines ("+ Fact" / "- Fact", # comments), applies them to
// the live instance under the write lock, journals the ops that changed
// the instance with an fsync'd append, and compacts the snapshot
// atomically once the journal region outgrows CompactBytes.
//
// Crash safety is a consequence of layering, not tailer bookkeeping: the
// ops file is the source of truth and its byte offset is only tracked in
// memory. After any crash — including kill -9 between apply and journal —
// the restarted daemon recovers the snapshot's torn tail, re-tails the
// ops file from offset zero, and re-applies everything: ops are absolute
// set-membership assignments, so replaying a prefix that is already
// journaled is a no-op that journals nothing, and the daemon converges to
// exactly the committed-plus-pending state.
//
// Any write-path failure (unparseable ops line, failed apply, failed
// journal append or compaction) degrades the daemon to read-only: probes
// keep answering against the last applied state, /healthz fails, and the
// reason is reported in /v1/stats.

// tailLoop polls until Close.
func (s *Server) tailLoop() {
	defer close(s.tailDone)
	var off int64
	t := time.NewTicker(s.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		if s.degraded() != "" {
			return
		}
		n, err := s.tailOnce(off)
		if err != nil {
			s.degrade(err)
			return
		}
		off = n
	}
}

// tailOnce reads any new complete lines past off, applies and journals
// them, and returns the new offset.
func (s *Server) tailOnce(off int64) (int64, error) {
	f, err := os.Open(s.cfg.OpsPath)
	if err != nil {
		if os.IsNotExist(err) {
			return off, nil // the stream has not started yet
		}
		return off, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return off, err
	}
	if st.Size() < off {
		return off, fmt.Errorf("server: ops file %s shrank from %d to %d bytes", s.cfg.OpsPath, off, st.Size())
	}
	if st.Size() == off {
		return off, nil
	}
	buf := make([]byte, st.Size()-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return off, err
	}
	// Only complete lines are parsed; a partially written tail waits for
	// the next poll.
	nl := bytes.LastIndexByte(buf, '\n')
	if nl < 0 {
		return off, nil
	}
	ops, err := workload.ParseUpdates(bytes.NewReader(buf[:nl+1]))
	if err != nil {
		return off, fmt.Errorf("server: ops file %s at offset %d: %w", s.cfg.OpsPath, off, err)
	}
	if len(ops) > 0 {
		if err := s.applyBatch(ops); err != nil {
			return off, err
		}
	}
	return off + int64(nl+1), nil
}

// applyBatch applies one parsed batch under the write lock, journals the
// ops that changed the instance, and triggers compaction when due.
func (s *Server) applyBatch(ops []workload.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var changed []repaircount.Delta
	for _, op := range ops {
		d := repaircount.Insert(op.Fact)
		if op.Del {
			d = repaircount.Delete(op.Fact)
		}
		n, err := s.snap.Apply(d)
		if err != nil {
			return fmt.Errorf("server: applying %s: %w", op.Fact, err)
		}
		if n > 0 {
			changed = append(changed, d)
		}
	}
	s.appliedOps.Add(int64(len(ops)))
	if len(changed) > 0 {
		if err := repaircount.AppendJournal(s.cfg.SnapshotPath, changed...); err != nil {
			return fmt.Errorf("server: journaling %d ops: %w", len(changed), err)
		}
		s.journaled.Add(int64(len(changed)))
	}
	if s.cfg.CompactBytes > 0 {
		// The mapped length is fixed at open, so the live journal size
		// comes from the file, not the snapshot.
		st, err := os.Stat(s.cfg.SnapshotPath)
		if err == nil && st.Size()-s.baseLen >= s.cfg.CompactBytes {
			if err := s.compactLocked(); err != nil {
				return fmt.Errorf("server: compacting: %w", err)
			}
		}
	}
	return nil
}

// compactLocked rewrites the snapshot without its journal (atomic
// temp+rename), remaps it, and bumps the epoch so worker caches rebuild
// over the new substrate. Caller holds the write lock.
func (s *Server) compactLocked() error {
	if err := repaircount.CompactSnapshot(s.cfg.SnapshotPath, s.cfg.SnapshotPath); err != nil {
		return err
	}
	snap, err := repaircount.OpenSnapshot(s.cfg.SnapshotPath)
	if err != nil {
		return err
	}
	st, err := os.Stat(s.cfg.SnapshotPath)
	if err != nil {
		snap.Close()
		return err
	}
	old := s.snap
	s.snap = snap
	s.baseLen = st.Size() - snap.JournalBytes()
	s.epoch++
	return old.Close()
}

package server

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repaircount"
	"repaircount/internal/faultfs"
	"repaircount/internal/workload"
)

// The tailer is the daemon's only write path. It polls the ops file for
// new complete lines ("+ Fact" / "- Fact", # comments), applies them
// through the owner's Apply callback (which takes the write lock,
// patches the live instance and journals the changed ops with an
// fsync'd append), and then — only after the batch is durably applied —
// persists the consumed byte offset to a sidecar file so a restart
// resumes the tail instead of re-applying the whole stream.
//
// Crash safety is a consequence of layering plus ordering, not tailer
// bookkeeping: the ops file is the source of truth, and the sidecar is
// written strictly after the journal append it covers, so the persisted
// offset never runs ahead of journaled state. After any crash —
// including kill -9 between apply and journal, or between journal and
// sidecar — the restarted daemon recovers the snapshot's torn tail and
// re-tails from the last persisted offset (or zero when the sidecar is
// missing, corrupt, or past the ops file's end): ops are absolute
// set-membership assignments, so replaying an already-journaled suffix
// is a no-op that journals nothing, and the daemon converges to exactly
// the committed-plus-pending state.
//
// Any write-path failure (unparseable ops line, failed apply, failed
// journal append or compaction) stops the tail and degrades the owner
// to read-only: probes keep answering against the last applied state,
// /healthz fails, and the reason is reported in /v1/stats.

// offsetMagic prefixes the sidecar's single line: "CQSO1 <offset>\n".
const offsetMagic = "CQSO1"

// Tailer follows an append-only update-stream file and hands parsed
// batches to Apply. It is shared by the single-node daemon and the
// cluster coordinator.
type Tailer struct {
	// OpsPath is the stream file to follow.
	OpsPath string
	// OffsetPath, when set, is the sidecar persisting the consumed byte
	// offset across restarts ("" replays from zero every start).
	OffsetPath string
	// Poll is the tail interval.
	Poll time.Duration
	// Apply durably applies one parsed batch; an error stops the tail.
	Apply func(ops []workload.Update) error

	off atomic.Int64
}

// Offset returns the consumed byte offset of the ops file.
func (t *Tailer) Offset() int64 { return t.off.Load() }

// Run tails until stop closes or Apply fails, returning the failure (nil
// on a clean stop). The starting offset is loaded from the sidecar.
func (t *Tailer) Run(stop <-chan struct{}) error {
	t.off.Store(t.loadOffset())
	tick := time.NewTicker(t.Poll)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-tick.C:
		}
		if err := t.tailOnce(); err != nil {
			return err
		}
	}
}

// tailOnce reads any new complete lines past the current offset, applies
// them, and persists the advanced offset.
func (t *Tailer) tailOnce() error {
	off := t.off.Load()
	f, err := os.Open(t.OpsPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // the stream has not started yet
		}
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < off {
		return fmt.Errorf("server: ops file %s shrank from %d to %d bytes", t.OpsPath, off, st.Size())
	}
	if st.Size() == off {
		return nil
	}
	buf := make([]byte, st.Size()-off)
	if _, err := f.ReadAt(buf, off); err != nil && err != io.EOF {
		return err
	}
	// Only complete lines are parsed; a partially written tail waits for
	// the next poll.
	nl := bytes.LastIndexByte(buf, '\n')
	if nl < 0 {
		return nil
	}
	ops, err := workload.ParseUpdates(bytes.NewReader(buf[:nl+1]))
	if err != nil {
		return fmt.Errorf("server: ops file %s at offset %d: %w", t.OpsPath, off, err)
	}
	if len(ops) > 0 {
		if err := t.Apply(ops); err != nil {
			return err
		}
	}
	t.off.Store(off + int64(nl+1))
	// The batch is applied and journaled; only now may the sidecar
	// advance. A sidecar failure is not a correctness failure (restart
	// replays idempotently from the stale offset) but it is a broken
	// durability invariant worth refusing to hide.
	if err := t.persistOffset(); err != nil {
		return fmt.Errorf("server: persisting ops offset: %w", err)
	}
	return nil
}

// loadOffset reads the sidecar, falling back to zero — the replay-all
// behavior — when it is absent, corrupt, or names an offset past the
// current end of the ops file (a replaced stream).
func (t *Tailer) loadOffset() int64 {
	if t.OffsetPath == "" {
		return 0
	}
	data, err := os.ReadFile(t.OffsetPath)
	if err != nil {
		return 0
	}
	var magic string
	var off int64
	if _, err := fmt.Sscanf(strings.TrimSuffix(string(data), "\n"), "%s %d", &magic, &off); err != nil || magic != offsetMagic || off < 0 {
		return 0
	}
	if st, err := os.Stat(t.OpsPath); err != nil || st.Size() < off {
		return 0
	}
	return off
}

// persistOffset durably writes the sidecar: temp file, fsync, atomic
// rename, directory fsync — all through faultfs so the crash sweeps
// cover every byte of this path too.
func (t *Tailer) persistOffset() error {
	if t.OffsetPath == "" {
		return nil
	}
	dir := filepath.Dir(t.OffsetPath)
	f, err := faultfs.CreateTemp(dir, filepath.Base(t.OffsetPath)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = fmt.Fprintf(f, "%s %d\n", offsetMagic, t.off.Load())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = faultfs.Rename(tmp, t.OffsetPath)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return faultfs.SyncDir(dir)
}

// tailLoop runs the server's tailer until Close or a write-path failure.
func (s *Server) tailLoop() {
	defer close(s.tailDone)
	if err := s.tailer.Run(s.stop); err != nil {
		s.degrade(err)
	}
}

// applyBatch applies one parsed batch under the write lock, journals the
// ops that changed the instance, and triggers compaction when due.
func (s *Server) applyBatch(ops []workload.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var changed []repaircount.Delta
	for _, op := range ops {
		d := repaircount.Insert(op.Fact)
		if op.Del {
			d = repaircount.Delete(op.Fact)
		}
		n, err := s.snap.Apply(d)
		if err != nil {
			return fmt.Errorf("server: applying %s: %w", op.Fact, err)
		}
		if n > 0 {
			changed = append(changed, d)
		}
	}
	s.appliedOps.Add(int64(len(ops)))
	if len(changed) > 0 {
		if err := repaircount.AppendJournal(s.cfg.SnapshotPath, changed...); err != nil {
			return fmt.Errorf("server: journaling %d ops: %w", len(changed), err)
		}
		s.journaled.Add(int64(len(changed)))
	}
	if s.cfg.CompactBytes > 0 {
		// The mapped length is fixed at open, so the live journal size
		// comes from the file, not the snapshot.
		st, err := os.Stat(s.cfg.SnapshotPath)
		if err == nil && st.Size()-s.baseLen >= s.cfg.CompactBytes {
			if err := s.compactLocked(); err != nil {
				return fmt.Errorf("server: compacting: %w", err)
			}
		}
	}
	return nil
}

// compactLocked rewrites the snapshot without its journal (atomic
// temp+rename), remaps it, and bumps the epoch so worker caches rebuild
// over the new substrate. Caller holds the write lock.
func (s *Server) compactLocked() error {
	if err := repaircount.CompactSnapshot(s.cfg.SnapshotPath, s.cfg.SnapshotPath); err != nil {
		return err
	}
	snap, err := repaircount.OpenSnapshot(s.cfg.SnapshotPath)
	if err != nil {
		return err
	}
	st, err := os.Stat(s.cfg.SnapshotPath)
	if err != nil {
		snap.Close()
		return err
	}
	old := s.snap
	s.snap = snap
	s.baseLen = st.Size() - snap.JournalBytes()
	s.epoch++
	return old.Close()
}

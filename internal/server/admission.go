package server

import (
	"fmt"
	"math/big"

	"repaircount"
)

// Admission modes: every count probe is priced before any enumeration
// runs. Cheap plans are answered exactly; plans beyond ExactBudget
// degrade to the FPRAS with the served (ε, δ); probes whose Theorem 6.2
// sample bound also exceeds MaxSamples — and non-∃FO⁺ queries, which
// have no FPRAS at all (Theorem 6.1) — get a structured budget error
// instead of an unbounded computation.
const (
	AdmitExact  = "exact"
	AdmitApprox = "approx"
	AdmitReject = "reject"
)

// Admission is a priced probe: the mode the ladder chose and the numbers
// that justified it, reported back to the client either way.
type Admission struct {
	Mode        string
	Engine      repaircount.EngineKind
	PlannedCost *big.Int // planner-priced exact work (repair count for non-EP)
	SampleBound *big.Int // Theorem 6.2 bound, when the FPRAS rung was priced
	Reason      string   // human-readable refusal, when Mode == AdmitReject
}

// Ladder is the admission policy, shared by the single-node daemon and
// the cluster coordinator: the budgets the rungs are priced against and
// the accuracy served on the FPRAS rung.
type Ladder struct {
	ExactBudget int64
	MaxSamples  int64
	Eps, Delta  float64
}

// Price runs the admission ladder for one counter against the current
// instance version.
func (l Ladder) Price(c *repaircount.Counter) Admission {
	plan, err := c.ExplainPlan(repaircount.EngineAuto)
	if err != nil {
		return Admission{Mode: AdmitReject, Reason: err.Error()}
	}
	adm := Admission{Engine: plan.Engine}
	if plan.Engine == repaircount.EngineEnumFO {
		// Outside ∃FO⁺ the only engine enumerates every repair, and
		// Theorem 6.1 rules out an FPRAS, so the ladder has exactly one
		// rung: the repair count itself must fit the exact budget.
		total := c.Total()
		adm.PlannedCost = new(big.Int).Set(total)
		if total.IsInt64() && total.Int64() <= l.ExactBudget {
			adm.Mode = AdmitExact
			return adm
		}
		adm.Mode = AdmitReject
		adm.Reason = fmt.Sprintf(
			"non-EP query needs %s full-repair evaluations (exact budget %d) and no FPRAS exists outside existential positive FO",
			total, l.ExactBudget)
		return adm
	}
	// Planned exact work Σ_c min(2^{n_c}, IE_c); closed-form engines
	// (always-true, safe plan, Λ[1]) price at zero.
	adm.PlannedCost = big.NewInt(plan.Budget)
	if plan.AlwaysTrue || plan.Budget <= l.ExactBudget {
		adm.Mode = AdmitExact
		return adm
	}
	return l.PriceApprox(c, adm)
}

// PriceEntry prices a probe through a cache entry's admission memo with
// cross-version reuse. The ladder's rungs are consulted in order:
//
//  1. the (epoch, version) memo serves exact repeats;
//  2. across a version bump, a memoized AdmitExact admission whose plan
//     fingerprint (Counter.PlanFingerprint) is unchanged is reused and
//     re-pinned to the new version — the exact rung is priced purely from
//     the ExplainPlan report the fingerprint digests, so re-running the
//     ladder cannot change the verdict;
//  3. everything else re-prices from scratch.
//
// Only exact admissions travel across versions: the FPRAS rung's sample
// bound depends on the active domain, which the plan fingerprint does not
// digest, so approx and reject verdicts are always re-priced. The caller
// holds the entry lock.
func (l Ladder) PriceEntry(ent *CacheEntry, c *repaircount.Counter, epoch, version uint64) Admission {
	if adm, ok := ent.Admission(epoch, version); ok {
		return adm
	}
	fp, fpOK := c.PlanFingerprint()
	if fpOK {
		if adm, ok := ent.AdmissionForPlan(epoch, fp); ok && adm.Mode == AdmitExact {
			ent.StoreAdmissionPlan(epoch, version, fp, adm)
			return adm
		}
	}
	adm := l.Price(c)
	if fpOK {
		ent.StoreAdmissionPlan(epoch, version, fp, adm)
	} else {
		ent.StoreAdmission(epoch, version, adm)
	}
	return adm
}

// PriceCost prices an externally computed exact cost against the ladder,
// for topologies where the planned work is not the local plan's total —
// the cluster coordinator admits the exact rung on the fleet critical
// path (the max over workers of their components' summed cost), since
// shards count in parallel.
func (l Ladder) PriceCost(c *repaircount.Counter, cost int64) Admission {
	adm := Admission{Engine: repaircount.EngineAuto, PlannedCost: big.NewInt(cost)}
	if cost <= l.ExactBudget {
		adm.Mode = AdmitExact
		return adm
	}
	return l.PriceApprox(c, adm)
}

// PriceApprox prices the FPRAS rung: admit when the Theorem 6.2 sample
// bound for the served (ε, δ) fits MaxSamples, else reject with both
// numbers. Also used to re-price a probe whose exact run hit a runtime
// ErrBudget despite its plan.
func (l Ladder) PriceApprox(c *repaircount.Counter, adm Admission) Admission {
	bound, err := c.ApproxSampleBound(l.Eps, l.Delta)
	if err != nil {
		adm.Mode = AdmitReject
		adm.Reason = fmt.Sprintf("exact work exceeds budget %d and the sampler is unavailable: %v", l.ExactBudget, err)
		return adm
	}
	adm.SampleBound = bound
	if bound.IsInt64() && bound.Int64() <= l.MaxSamples {
		adm.Mode = AdmitApprox
		return adm
	}
	adm.Mode = AdmitReject
	adm.Reason = fmt.Sprintf(
		"planned exact work exceeds budget %d and the (eps=%g, delta=%g) sample bound %s exceeds the cap %d",
		l.ExactBudget, l.Eps, l.Delta, bound, l.MaxSamples)
	return adm
}

// BudgetError renders a rejected admission as the structured 429 body.
func (l Ladder) BudgetError(adm Admission) APIError {
	e := APIError{
		Code:        "budget_exceeded",
		Message:     adm.Reason,
		ExactBudget: l.ExactBudget,
		MaxSamples:  l.MaxSamples,
	}
	if adm.PlannedCost != nil {
		e.PlannedCost = adm.PlannedCost.String()
	}
	if adm.SampleBound != nil {
		e.SampleBound = adm.SampleBound.String()
	}
	return e
}

package server

import (
	"fmt"
	"math/big"

	"repaircount"
)

// Admission modes: every count probe is priced before any enumeration
// runs. Cheap plans are answered exactly; plans beyond ExactBudget
// degrade to the FPRAS with the served (ε, δ); probes whose Theorem 6.2
// sample bound also exceeds MaxSamples — and non-∃FO⁺ queries, which
// have no FPRAS at all (Theorem 6.1) — get a structured budget error
// instead of an unbounded computation.
const (
	admitExact  = "exact"
	admitApprox = "approx"
	admitReject = "reject"
)

// admission is a priced probe: the mode the ladder chose and the numbers
// that justified it, reported back to the client either way.
type admission struct {
	Mode        string
	Engine      repaircount.EngineKind
	PlannedCost *big.Int // planner-priced exact work (repair count for non-EP)
	SampleBound *big.Int // Theorem 6.2 bound, when the FPRAS rung was priced
	Reason      string   // human-readable refusal, when Mode == admitReject
}

// price runs the admission ladder for one counter. Caller holds the read
// lock; the plan is computed against the current instance version.
func (s *Server) price(c *repaircount.Counter) admission {
	plan, err := c.ExplainPlan(repaircount.EngineAuto)
	if err != nil {
		return admission{Mode: admitReject, Reason: err.Error()}
	}
	adm := admission{Engine: plan.Engine}
	if plan.Engine == repaircount.EngineEnumFO {
		// Outside ∃FO⁺ the only engine enumerates every repair, and
		// Theorem 6.1 rules out an FPRAS, so the ladder has exactly one
		// rung: the repair count itself must fit the exact budget.
		total := c.Total()
		adm.PlannedCost = new(big.Int).Set(total)
		if total.IsInt64() && total.Int64() <= s.cfg.ExactBudget {
			adm.Mode = admitExact
			return adm
		}
		adm.Mode = admitReject
		adm.Reason = fmt.Sprintf(
			"non-EP query needs %s full-repair evaluations (exact budget %d) and no FPRAS exists outside existential positive FO",
			total, s.cfg.ExactBudget)
		return adm
	}
	// Planned exact work Σ_c min(2^{n_c}, IE_c); closed-form engines
	// (always-true, safe plan, Λ[1]) price at zero.
	adm.PlannedCost = big.NewInt(plan.Budget)
	if plan.AlwaysTrue || plan.Budget <= s.cfg.ExactBudget {
		adm.Mode = admitExact
		return adm
	}
	return s.priceApprox(c, adm)
}

// priceApprox prices the FPRAS rung: admit when the Theorem 6.2 sample
// bound for the served (ε, δ) fits MaxSamples, else reject with both
// numbers. Also used to re-price a probe whose exact run hit a runtime
// ErrBudget despite its plan.
func (s *Server) priceApprox(c *repaircount.Counter, adm admission) admission {
	bound, err := c.ApproxSampleBound(s.cfg.Eps, s.cfg.Delta)
	if err != nil {
		adm.Mode = admitReject
		adm.Reason = fmt.Sprintf("exact work exceeds budget %d and the sampler is unavailable: %v", s.cfg.ExactBudget, err)
		return adm
	}
	adm.SampleBound = bound
	if bound.IsInt64() && bound.Int64() <= s.cfg.MaxSamples {
		adm.Mode = admitApprox
		return adm
	}
	adm.Mode = admitReject
	adm.Reason = fmt.Sprintf(
		"planned exact work exceeds budget %d and the (eps=%g, delta=%g) sample bound %s exceeds the cap %d",
		s.cfg.ExactBudget, s.cfg.Eps, s.cfg.Delta, bound, s.cfg.MaxSamples)
	return adm
}

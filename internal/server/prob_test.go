package server_test

import (
	"context"
	"math/big"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"repaircount"
	"repaircount/internal/relational"
	"repaircount/internal/server"
	"repaircount/internal/workload"
)

// probURL builds /v1/prob?q=...
func probURL(q string) string { return "/v1/prob?q=" + url.QueryEscape(q) }

// TestProbEndpoint covers /v1/prob end to end: the uniform-weight
// probability must bracket the exact count/total ratio and match the
// offline weighted counter bit for bit, the memo must serve identical
// bytes, and the two refusal shapes (non-∃FO⁺, budget) must land as
// structured 429s.
func TestProbEndpoint(t *testing.T) {
	db, ks, qf := workload.MultiComponent(2, 2, 2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path})
	qs := multiComponentQuery(2)

	// Offline expectation: the same interval through the library.
	c, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ProbabilityOf(c.FactWeights(nil))
	if err != nil {
		t.Fatal(err)
	}
	count, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	exact := new(big.Rat).SetFrac(count, c.Total())

	status, body, raw := get(t, ts, probURL(qs))
	if status != http.StatusOK {
		t.Fatalf("prob: status %d body %v", status, body)
	}
	lo, ok1 := body["prob_lo"].(float64)
	hi, ok2 := body["prob_hi"].(float64)
	if !ok1 || !ok2 {
		t.Fatalf("prob: interval bounds missing in %v", body)
	}
	if lo != want.Lo || hi != want.Hi {
		t.Fatalf("prob: served [%v, %v], offline [%v, %v]", lo, hi, want.Lo, want.Hi)
	}
	// Soundness: the served interval brackets the exact rational ratio.
	if new(big.Rat).SetFloat64(lo).Cmp(exact) > 0 || new(big.Rat).SetFloat64(hi).Cmp(exact) < 0 {
		t.Fatalf("prob: interval [%v, %v] does not bracket exact %s", lo, hi, exact.RatString())
	}

	// The second probe is a memo hit and must serve the same bytes.
	_, _, hit := get(t, ts, probURL(qs))
	if hit != raw {
		t.Fatalf("prob memo hit served %q, first answer %q", hit, raw)
	}
	_, st, _ := get(t, ts, "/v1/stats")
	if st["prob_probes"].(float64) < 2 {
		t.Fatalf("prob probes not counted: %v", st)
	}

	// Non-∃FO⁺ queries have no circuit and are refused, not estimated.
	status, body, _ = get(t, ts, probURL("!C0('k0', 'v0')"))
	if status != http.StatusTooManyRequests || errCode(t, body) != "budget_exceeded" {
		t.Fatalf("non-EP prob: status %d body %v", status, body)
	}

	// A circuit plan beyond the exact budget is refused with its price;
	// there is deliberately no FPRAS rung for weighted counting.
	_, tiny := start(t, server.Config{SnapshotPath: path, ExactBudget: 1})
	status, body, _ = get(t, tiny, probURL(qs))
	if status != http.StatusTooManyRequests || errCode(t, body) != "budget_exceeded" {
		t.Fatalf("budget prob: status %d body %v", status, body)
	}
}

// TestProbAnnotated serves a prob-stream workload through -probs
// plumbing: the daemon loads the per-fact annotation file and its
// /v1/prob answer must equal the offline weighted counter over the
// parsed annotations bit for bit.
func TestProbAnnotated(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 99))
	db, ks, qf := workload.MultiComponent(3, 2, 2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)

	anns := workload.ProbStream(rng, db)
	probsPath := filepath.Join(dir, "weights.probs")
	f, err := os.Create(probsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.FormatProbAnnotations(f, anns); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ProbabilityOf(c.FactWeights(workload.AnnotationMap(anns)))
	if err != nil {
		t.Fatal(err)
	}

	_, ts := start(t, server.Config{SnapshotPath: path, ProbsPath: probsPath})
	status, body, _ := get(t, ts, probURL(multiComponentQuery(3)))
	if status != http.StatusOK {
		t.Fatalf("annotated prob: status %d body %v", status, body)
	}
	if body["prob_lo"].(float64) != want.Lo || body["prob_hi"].(float64) != want.Hi {
		t.Fatalf("annotated prob: served [%v, %v], offline [%v, %v]",
			body["prob_lo"], body["prob_hi"], want.Lo, want.Hi)
	}

	// A missing annotation file must fail the boot, not serve uniform.
	if _, err := server.New(server.Config{SnapshotPath: path, ProbsPath: filepath.Join(dir, "absent.probs")}); err == nil {
		t.Fatal("server booted with a missing -probs file")
	}
}

// TestCountFingerprintMerge sends two text-distinct but structurally
// identical queries (the same disjunction with its disjuncts reordered):
// the second must be served through the count-fingerprint alias instead
// of recounting, observable as cache_fp_merges in /v1/stats, and both
// must serve identical counts.
func TestCountFingerprintMerge(t *testing.T) {
	db, ks, _ := workload.MultiComponent(2, 2, 2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path})

	a := "(exists x, y . (C0(x, 'v0') & C0(y, 'v1'))) | (exists x, y . (C1(x, 'v0') & C1(y, 'v1')))"
	b := "(exists x, y . (C1(x, 'v0') & C1(y, 'v1'))) | (exists x, y . (C0(x, 'v0') & C0(y, 'v1')))"

	status, bodyA, _ := get(t, ts, countURL(a, ""))
	if status != http.StatusOK || bodyA["mode"] != "exact" {
		t.Fatalf("first text: status %d body %v", status, bodyA)
	}
	status, bodyB, _ := get(t, ts, countURL(b, ""))
	if status != http.StatusOK || bodyB["mode"] != "exact" {
		t.Fatalf("second text: status %d body %v", status, bodyB)
	}
	if bodyA["count"] != bodyB["count"] {
		t.Fatalf("aliased texts disagree: %v vs %v", bodyA["count"], bodyB["count"])
	}
	_, st, _ := get(t, ts, "/v1/stats")
	if st["cache_fp_merges"].(float64) < 1 {
		t.Fatalf("structurally identical texts did not merge: %v", st)
	}
}

// TestAdmissionPlanReuse pins Ladder.PriceEntry: across a version bump
// whose deltas leave the plan fingerprint unchanged, a memoized exact
// admission is reused without re-running the ladder (observable as
// pointer identity of the priced cost), while a plan-moving delta, an
// epoch move, and non-exact verdicts all force a fresh pricing.
func TestAdmissionPlanReuse(t *testing.T) {
	db, ks, qf := workload.MultiComponent(2, 2, 2)
	c, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	pc := server.NewProbeCache(4)
	build := func(string) (*repaircount.Counter, error) { return c, nil }
	ent, err := pc.Acquire(context.Background(), 0, "q", build)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Release(ent)
	l := server.Ladder{ExactBudget: 1 << 20, MaxSamples: 1 << 20, Eps: 0.5, Delta: 0.1}

	adm1 := l.PriceEntry(ent, c, 0, 1)
	if adm1.Mode != server.AdmitExact {
		t.Fatalf("fixture not exact-admissible: %+v", adm1)
	}
	// Same version: the (epoch, version) memo serves.
	if adm := l.PriceEntry(ent, c, 0, 1); adm.PlannedCost != adm1.PlannedCost {
		t.Fatal("same-version admission was re-priced")
	}
	// Version bump without a plan move: a cancelling insert/delete pair
	// leaves the instance — and therefore the plan report — exactly where
	// it was, so the admission travels instead of re-pricing.
	if _, err := c.Apply(repaircount.Insert(relational.NewFact("C0", "k0", "w0"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(repaircount.Delete(relational.NewFact("C0", "k0", "w0"))); err != nil {
		t.Fatal(err)
	}
	if adm := l.PriceEntry(ent, c, 0, 2); adm.PlannedCost != adm1.PlannedCost {
		t.Fatal("unchanged plan fingerprint did not carry the admission across the version bump")
	}
	// A plan-moving delta (a fresh block) must force a re-price.
	if _, err := c.Apply(repaircount.Insert(relational.NewFact("C0", "k9", "v0"))); err != nil {
		t.Fatal(err)
	}
	adm3 := l.PriceEntry(ent, c, 0, 3)
	if adm3.PlannedCost == adm1.PlannedCost {
		t.Fatal("plan-moving delta reused the stale admission")
	}
	// An epoch move invalidates the memo wholesale.
	if adm := l.PriceEntry(ent, c, 1, 3); adm.PlannedCost == adm3.PlannedCost {
		t.Fatal("admission crossed an epoch move")
	}

	// Non-exact verdicts never travel: under a tiny budget the approx
	// admission is re-priced on every version.
	tiny := server.Ladder{ExactBudget: 1, MaxSamples: 1 << 40, Eps: 0.5, Delta: 0.1}
	ent2, err := pc.Acquire(context.Background(), 0, "q2", build)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Release(ent2)
	admA := tiny.PriceEntry(ent2, c, 0, 3)
	if admA.Mode != server.AdmitApprox {
		t.Fatalf("fixture not approx under budget 1: %+v", admA)
	}
	if admB := tiny.PriceEntry(ent2, c, 0, 4); admB.SampleBound == admA.SampleBound {
		t.Fatal("approx admission crossed a version bump")
	}
}

package server_test

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repaircount"
	"repaircount/internal/relational"
	"repaircount/internal/server"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// TestCrashRecovery is the kill -9 drill: a daemon subprocess tails a
// growing update stream and is SIGKILLed mid-flight, at whatever point
// between apply, journal append and fsync the timing lands on. A
// restarted daemon must recover the snapshot's torn tail, re-tail the
// stream from offset zero, and converge to exactly the state an offline
// replay of the full stream produces. The test re-execs its own binary
// as the victim (the helper branch below).
func TestCrashRecovery(t *testing.T) {
	if os.Getenv("SERVE_CRASH_HELPER") == "1" {
		runCrashHelper()
		return
	}
	if testing.Short() {
		t.Skip("subprocess test")
	}

	db, ks := workload.PairsDatabase(3)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	baseSize, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	opsPath := filepath.Join(dir, "ops.txt")

	// The victim daemon, re-execed from this test binary.
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrashRecovery$")
	cmd.Env = append(os.Environ(),
		"SERVE_CRASH_HELPER=1",
		"CRASH_SNAP="+path,
		"CRASH_OPS="+opsPath,
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := bufio.NewScanner(out)
	if !ready.Scan() || ready.Text() != "READY" {
		cmd.Process.Kill()
		t.Fatalf("helper never came up: %q", ready.Text())
	}

	// Feed the stream one op at a time so journal appends happen while
	// the victim runs.
	const nOps = 200
	f, err := os.OpenFile(opsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []repaircount.Delta
	fed := make(chan struct{})
	go func() {
		defer close(fed)
		for i := 0; i < nOps; i++ {
			fact := relational.NewFact("R", relational.Const(fmt.Sprintf("n%d", i)), "a")
			fmt.Fprintf(f, "+ %s\n", fact.Canonical())
			time.Sleep(200 * time.Microsecond)
		}
		f.Close()
	}()
	for i := 0; i < nOps; i++ {
		fact := relational.NewFact("R", relational.Const(fmt.Sprintf("n%d", i)), "a")
		deltas = append(deltas, repaircount.Insert(fact))
	}

	// Kill -9 as soon as at least one journal append has landed — the
	// victim dies somewhere inside its apply/journal cycle.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := os.Stat(path)
		if err == nil && st.Size() > baseSize.Size() {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("victim never journaled an op")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	<-fed

	// Offline truth: the full stream over the base instance.
	q, err := repaircount.ParseQuery("exists x . R(x, 'a')")
	if err != nil {
		t.Fatal(err)
	}
	oc, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	want, _, err := oc.Count()
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := oc.Total()

	// The restarted daemon recovers and converges.
	s, err := server.New(server.Config{
		SnapshotPath: path, OpsPath: opsPath,
		Poll: time.Millisecond, CompactBytes: -1,
	})
	if err != nil {
		t.Fatalf("restart after kill -9 failed: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	convergeBy := time.Now().Add(20 * time.Second)
	for {
		code, _, body := get(t, ts, countURL("exists x . R(x, 'a')", "&format=text"))
		total := ""
		if code == http.StatusOK {
			_, _, total = get(t, ts, "/v1/total?format=text")
		}
		if code == http.StatusOK &&
			strings.TrimSpace(body) == want.String() && strings.TrimSpace(total) == wantTotal.String() {
			break
		}
		if time.Now().After(convergeBy) {
			t.Fatalf("restarted daemon never converged: count %q (want %s), total %q (want %s)",
				strings.TrimSpace(body), want, strings.TrimSpace(total), wantTotal)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runCrashHelper is the victim: it serves the snapshot and tails the ops
// stream until the parent kills it.
func runCrashHelper() {
	s, err := server.New(server.Config{
		SnapshotPath: os.Getenv("CRASH_SNAP"),
		OpsPath:      os.Getenv("CRASH_OPS"),
		Poll:         time.Millisecond,
		CompactBytes: -1,
	})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(2)
	}
	_ = s
	fmt.Println("READY")
	time.Sleep(time.Hour) // SIGKILL arrives first
}

package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repaircount"
	"repaircount/internal/relational"
	"repaircount/internal/server"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// writeSnapshot drops a fresh .cqs fixture for db under dir.
func writeSnapshot(t *testing.T, dir string, db *relational.Database, ks *relational.KeySet) string {
	t.Helper()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	return path
}

// start boots a server plus an httptest front end and registers cleanup.
func start(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// get fetches path and decodes the JSON body (or returns it raw for
// text responses).
func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("bad JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, body, string(raw)
}

// errCode digs the typed code out of an error body.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

// countURL builds /v1/count?q=...
func countURL(q string, extra string) string {
	return "/v1/count?q=" + url.QueryEscape(q) + extra
}

// TestProbes covers the read-only probe surface against offline results.
func TestProbes(t *testing.T) {
	db, ks := workload.PairsDatabase(3)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path})

	const qs = "exists x . R(x, 'a')"
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}

	status, body, _ := get(t, ts, countURL(qs, ""))
	if status != http.StatusOK {
		t.Fatalf("count: status %d: %v", status, body)
	}
	if body["mode"] != "exact" || body["count"] != want.String() {
		t.Fatalf("count: got %v, want exact %s", body, want)
	}

	// The text format serves bare digits for shell diffing.
	status, _, raw := get(t, ts, countURL(qs, "&format=text"))
	if status != http.StatusOK || strings.TrimSpace(raw) != want.String() {
		t.Fatalf("text count: status %d body %q, want %s", status, raw, want)
	}

	status, body, _ = get(t, ts, "/v1/decide?q="+url.QueryEscape(qs))
	if status != http.StatusOK || body["entailed"] != true {
		t.Fatalf("decide: status %d body %v", status, body)
	}

	status, body, _ = get(t, ts, "/v1/total")
	if status != http.StatusOK || body["total"] != c.Total().String() {
		t.Fatalf("total: status %d body %v, want %s", status, body, c.Total())
	}

	status, body, _ = get(t, ts, "/v1/explain?q="+url.QueryEscape(qs))
	if status != http.StatusOK || body["admission"] != "exact" {
		t.Fatalf("explain: status %d body %v", status, body)
	}

	status, _, raw = get(t, ts, "/healthz")
	if status != http.StatusOK || strings.TrimSpace(raw) != "ok" {
		t.Fatalf("healthz: status %d body %q", status, raw)
	}

	// Typed 400s: missing and malformed queries.
	status, body, _ = get(t, ts, "/v1/count")
	if status != http.StatusBadRequest || errCode(t, body) != "bad_query" {
		t.Fatalf("missing q: status %d body %v", status, body)
	}
	status, body, _ = get(t, ts, countURL("exists x . R(x", ""))
	if status != http.StatusBadRequest || errCode(t, body) != "bad_query" {
		t.Fatalf("malformed q: status %d body %v", status, body)
	}
}

// TestRank covers the ranked-answers probe against the offline ranking.
func TestRank(t *testing.T) {
	db, ks := workload.PairsDatabase(2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path})

	status, body, _ := get(t, ts, "/v1/rank?q="+url.QueryEscape("exists x . R(x, y)"))
	if status != http.StatusOK {
		t.Fatalf("rank: status %d body %v", status, body)
	}
	answers, ok := body["answers"].([]any)
	if !ok || len(answers) == 0 {
		t.Fatalf("rank: no answers in %v", body)
	}

	// A Boolean query cannot be ranked.
	status, body, _ = get(t, ts, "/v1/rank?q="+url.QueryEscape("exists x . R(x, 'a')"))
	if status != http.StatusBadRequest || errCode(t, body) != "bad_query" {
		t.Fatalf("boolean rank: status %d body %v", status, body)
	}
}

// multiComponentQuery rebuilds the MultiComponent disjunction as text so
// probes can be sent over HTTP.
func multiComponentQuery(nComponents int) string {
	var parts []string
	for c := 0; c < nComponents; c++ {
		parts = append(parts, fmt.Sprintf("(exists x, y . (C%d(x, 'v0') & C%d(y, 'v1')))", c, c))
	}
	return strings.Join(parts, " | ")
}

// TestAdmissionLadder drives one query through all three rungs by moving
// the budgets: exact under the default ceiling, degraded to the FPRAS
// with reported (eps, delta) under a tiny exact budget, and a structured
// 429 when the sample cap is also tiny. Non-EP queries get the
// no-FPRAS refusal.
func TestAdmissionLadder(t *testing.T) {
	db, ks, qf := workload.MultiComponent(3, 2, 2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	qs := multiComponentQuery(3)

	c, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	// Plan before counting: a count memoizes the factorization and the
	// next plan prices at zero.
	plan, err := c.ExplainPlan(repaircount.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Budget <= 1 {
		t.Fatalf("fixture too cheap to price: planned budget %d", plan.Budget)
	}
	want, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}

	// Rung 1: the plan fits the default exact budget.
	_, ts := start(t, server.Config{SnapshotPath: path})
	status, body, _ := get(t, ts, countURL(qs, ""))
	if status != http.StatusOK || body["mode"] != "exact" || body["count"] != want.String() {
		t.Fatalf("exact rung: status %d body %v, want %s", status, body, want)
	}

	// Rung 2: an exact budget of 1 degrades the same probe to the FPRAS,
	// which must report its accuracy.
	_, ts2 := start(t, server.Config{SnapshotPath: path, ExactBudget: 1, Seed: 7})
	status, body, _ = get(t, ts2, countURL(qs, ""))
	if status != http.StatusOK || body["mode"] != "approx" {
		t.Fatalf("approx rung: status %d body %v", status, body)
	}
	if body["eps"] == nil || body["delta"] == nil || body["samples"] == nil {
		t.Fatalf("approx rung: accuracy not reported: %v", body)
	}
	status, body, _ = get(t, ts2, "/v1/explain?q="+url.QueryEscape(qs))
	if status != http.StatusOK || body["admission"] != "approx" || body["sample_bound"] == nil {
		t.Fatalf("approx explain: status %d body %v", status, body)
	}

	// Rung 3: with the sample cap also at 1 the probe is refused with the
	// numbers that justified the refusal.
	_, ts3 := start(t, server.Config{SnapshotPath: path, ExactBudget: 1, MaxSamples: 1})
	status, body, _ = get(t, ts3, countURL(qs, ""))
	if status != http.StatusTooManyRequests || errCode(t, body) != "budget_exceeded" {
		t.Fatalf("reject rung: status %d body %v", status, body)
	}
	e := body["error"].(map[string]any)
	if e["planned_cost"] == nil || e["sample_bound"] == nil {
		t.Fatalf("reject rung: pricing not reported: %v", e)
	}

	// Non-EP: cheap enough to enumerate under the default budget...
	nonEP := "!C0('k0', 'v0')"
	status, body, _ = get(t, ts, countURL(nonEP, ""))
	if status != http.StatusOK || body["mode"] != "exact" {
		t.Fatalf("non-EP exact: status %d body %v", status, body)
	}
	// ...but refused (no FPRAS rung exists) when it is not.
	status, body, _ = get(t, ts3, countURL(nonEP, ""))
	if status != http.StatusTooManyRequests || errCode(t, body) != "budget_exceeded" {
		t.Fatalf("non-EP reject: status %d body %v", status, body)
	}
}

// TestProbeStreamContract pins workloadgen's probe-stream generator to
// the real admission ladder: every emitted probe must land on exactly the
// rung its line promises when the daemon runs with the stream's budget.
func TestProbeStreamContract(t *testing.T) {
	db, ks, budget, probes := workload.ProbeStream(3, 2)
	path := writeSnapshot(t, t.TempDir(), db, ks)
	_, ts := start(t, server.Config{SnapshotPath: path, ExactBudget: budget})
	for _, p := range probes {
		status, body, _ := get(t, ts, countURL(p.Query, ""))
		switch p.Expect {
		case "exact", "approx":
			if status != http.StatusOK || body["mode"] != p.Expect {
				t.Errorf("probe %q: status %d body %v, want mode %s", p.Query, status, body, p.Expect)
			}
		case "reject":
			if status != http.StatusTooManyRequests || errCode(t, body) != "budget_exceeded" {
				t.Errorf("probe %q: status %d body %v, want budget_exceeded", p.Query, status, body)
			}
		default:
			t.Fatalf("probe %q: unknown expectation %q", p.Query, p.Expect)
		}
	}
}

// waitStats polls /v1/stats until pred holds or the deadline expires.
func waitStats(t *testing.T, ts *httptest.Server, what string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, body, _ := get(t, ts, "/v1/stats")
		if pred(body) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %v", what, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUpdateStreamJournal covers the write path end to end: ops tailed
// from the stream are applied, journaled durably, idempotent across a
// restart, and visible to probes at the right counts.
func TestUpdateStreamJournal(t *testing.T) {
	db, ks := workload.PairsDatabase(2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "ops.txt")

	ops := []workload.Update{
		{Fact: relational.NewFact("R", "k9", "a")},
		{Fact: relational.NewFact("R", "k9", "b")},
		{Del: true, Fact: relational.NewFact("R", "k0", "b")},
	}
	var sb strings.Builder
	sb.WriteString("# probe stream\n")
	if err := workload.FormatUpdates(&sb, ops); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	// Offline expectation: the same deltas through a fresh counter.
	const qs = "exists x . R(x, 'a')"
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	var deltas []repaircount.Delta
	for _, op := range ops {
		if op.Del {
			deltas = append(deltas, repaircount.Delete(op.Fact))
		} else {
			deltas = append(deltas, repaircount.Insert(op.Fact))
		}
	}
	if _, err := c.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}

	cfg := server.Config{SnapshotPath: path, OpsPath: opsPath, Poll: 2 * time.Millisecond, CompactBytes: -1}
	s, ts := start(t, cfg)
	waitStats(t, ts, "ops applied", func(st map[string]any) bool {
		return st["applied_ops"] == float64(len(ops))
	})
	status, body, _ := get(t, ts, countURL(qs, ""))
	if status != http.StatusOK || body["count"] != want.String() {
		t.Fatalf("post-update count: status %d body %v, want %s", status, body, want)
	}
	if body["version"] == float64(0) {
		t.Fatalf("post-update count did not move the version: %v", body)
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal made the updates durable: a cold offline open agrees.
	snap, err := repaircount.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumJournalOps() != len(ops) {
		t.Fatalf("journal holds %d ops, want %d", snap.NumJournalOps(), len(ops))
	}
	oc, err := snap.Counter(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := oc.Count()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("offline reopen counts %s, want %s", got, want)
	}
	snap.Close()
	sizeAfter, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Restart with the offset sidecar intact: the tail resumes where it
	// left off instead of replaying the stream, so nothing is re-applied
	// or re-journaled and the file does not grow.
	opsSt, err := os.Stat(opsPath)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := start(t, cfg)
	st := waitStats(t, ts2, "restart resume", func(st map[string]any) bool {
		return st["ops_offset"] == float64(opsSt.Size())
	})
	if st["applied_ops"] != float64(0) || st["journaled_ops"] != float64(0) {
		t.Fatalf("restart replayed the stream despite the offset sidecar: %v", st)
	}
	status, body, _ = get(t, ts2, countURL(qs, ""))
	if status != http.StatusOK || body["count"] != want.String() {
		t.Fatalf("restarted count: status %d body %v, want %s", status, body, want)
	}
	ts2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Without the sidecar the daemon falls back to re-tailing from offset
	// zero; the already-journaled ops are in-memory no-ops, so nothing is
	// journaled twice and the file does not grow.
	if err := os.Remove(opsPath + ".offset"); err != nil {
		t.Fatal(err)
	}
	_, ts3 := start(t, cfg)
	st = waitStats(t, ts3, "restart re-apply", func(st map[string]any) bool {
		return st["applied_ops"] == float64(len(ops))
	})
	if st["journaled_ops"] != float64(0) {
		t.Fatalf("restart re-journaled ops: %v", st)
	}
	status, body, _ = get(t, ts3, countURL(qs, ""))
	if status != http.StatusOK || body["count"] != want.String() {
		t.Fatalf("restarted count: status %d body %v, want %s", status, body, want)
	}
	size2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if size2.Size() != sizeAfter.Size() {
		t.Fatalf("restart grew the snapshot: %d -> %d bytes", sizeAfter.Size(), size2.Size())
	}
}

// TestCompaction forces a compaction on every journal append and checks
// the remapped snapshot keeps answering correctly with a bumped epoch and
// an empty journal region.
func TestCompaction(t *testing.T) {
	db, ks := workload.PairsDatabase(2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "ops.txt")
	ops := []workload.Update{
		{Fact: relational.NewFact("R", "k9", "a")},
		{Del: true, Fact: relational.NewFact("R", "k1", "b")},
	}
	var sb strings.Builder
	if err := workload.FormatUpdates(&sb, ops); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	const qs = "exists x . R(x, 'a')"
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(repaircount.Insert(ops[0].Fact), repaircount.Delete(ops[1].Fact)); err != nil {
		t.Fatal(err)
	}
	want, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}

	_, ts := start(t, server.Config{
		SnapshotPath: path, OpsPath: opsPath,
		Poll: 2 * time.Millisecond, CompactBytes: 1,
	})
	st := waitStats(t, ts, "compaction", func(st map[string]any) bool {
		return st["applied_ops"] == float64(len(ops)) && st["epoch"].(float64) >= 1
	})
	if st["journal_bytes"] != float64(0) {
		t.Fatalf("journal region survived compaction: %v", st)
	}
	status, body, _ := get(t, ts, countURL(qs, ""))
	if status != http.StatusOK || body["count"] != want.String() {
		t.Fatalf("post-compaction count: status %d body %v, want %s", status, body, want)
	}

	// The compacted file is sealed: no journal ops on a cold open.
	snap, err := repaircount.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	if snap.NumJournalOps() != 0 {
		t.Fatalf("compacted snapshot still carries %d journal ops", snap.NumJournalOps())
	}
}

// TestDegradeOnBadOps pins the fail-loud side of the write path: a
// poisoned ops line flips the daemon read-only, /healthz fails, and
// probes keep answering the last applied state.
func TestDegradeOnBadOps(t *testing.T) {
	db, ks := workload.PairsDatabase(2)
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "ops.txt")
	if err := os.WriteFile(opsPath, []byte("+ R(k9, 'a')\n+ garbage here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := start(t, server.Config{SnapshotPath: path, OpsPath: opsPath, Poll: 2 * time.Millisecond})
	waitStats(t, ts, "degrade", func(st map[string]any) bool {
		deg, _ := st["degraded"].(string)
		return deg != ""
	})
	status, _, _ := get(t, ts, "/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: status %d", status)
	}
	status, body, _ := get(t, ts, countURL("exists x . R(x, 'a')", ""))
	if status != http.StatusOK || body["mode"] != "exact" {
		t.Fatalf("degraded probe: status %d body %v", status, body)
	}
}

package cluster_test

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repaircount/internal/cluster"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// restartableWorker serves a worker on a fixed address so the test can
// kill it and bring it back on the same URL, like a crashed process
// restarting on its configured port.
type restartableWorker struct {
	t    *testing.T
	w    *cluster.Worker
	dir  string
	addr string
	srv  *http.Server
}

func startRestartable(t *testing.T) *restartableWorker {
	t.Helper()
	dir := t.TempDir()
	w, err := cluster.NewWorker(cluster.WorkerConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rw := &restartableWorker{t: t, w: w, dir: dir, addr: l.Addr().String()}
	rw.srv = &http.Server{Handler: w.Handler()}
	go rw.srv.Serve(l)
	t.Cleanup(func() {
		rw.srv.Close()
		rw.w.Close()
	})
	return rw
}

func (rw *restartableWorker) url() string { return "http://" + rw.addr }

// kill closes the listener and the worker, as abruptly as in-process
// code can.
func (rw *restartableWorker) kill() {
	rw.srv.Close()
	rw.w.Close()
}

// restart brings a fresh worker process back on the same address and
// state directory; the assignment sidecar re-assumes the shard without
// any coordinator help.
func (rw *restartableWorker) restart() {
	rw.t.Helper()
	w, err := cluster.NewWorker(cluster.WorkerConfig{Dir: rw.dir})
	if err != nil {
		rw.t.Fatal(err)
	}
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", rw.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			rw.t.Fatalf("rebinding %s: %v", rw.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rw.w = w
	rw.srv = &http.Server{Handler: w.Handler()}
	go rw.srv.Serve(l)
}

// TestWorkerDownDegradesAndRecovers kills one worker, verifies probes
// degrade to exact local counting with the fleet marked down, restarts
// the worker on the same address, and verifies the maintenance loop
// heals it back into fan-out service — every answer along the way exact.
func TestWorkerDownDegradesAndRecovers(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 6, 2)
	qs := q.String()
	path := writeSnapshot(t, t.TempDir(), db, ks)
	want := offlineCount(t, db, ks, qs)

	victim := startRestartable(t)
	peers := append(startWorkers(t, 3), victim.url())
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
	})

	// Healthy fleet serves by fan-out.
	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusOK || body["count"] != want.String() || body["engine"] != "fanout" {
		t.Fatalf("healthy count: status %d body %v, want fanned %s", status, body, want)
	}

	// Kill the worker. The probe retries, marks it down, and degrades to
	// local counting — same exact answer, never an error.
	victim.kill()
	status, body, _ = get(t, ts, countURL(qs))
	if status != http.StatusOK {
		t.Fatalf("degraded count: status %d: %v", status, body)
	}
	if body["mode"] != "exact" || body["count"] != want.String() {
		t.Fatalf("degraded count: got %v, want exact %s", body, want)
	}
	if body["engine"] != "local" {
		t.Fatalf("expected a local fallback while a worker is down: %v", body)
	}
	waitStats(t, ts, "victim to be marked down", func(st map[string]any) bool {
		for _, wi := range st["workers"].([]any) {
			w := wi.(map[string]any)
			if w["url"] == victim.url() {
				return w["down"] == true
			}
		}
		return false
	})

	// Restart on the same address: the maintenance loop reloads it and
	// the fleet serves fan-outs again.
	victim.restart()
	waitStats(t, ts, "victim to be healed", func(st map[string]any) bool {
		for _, wi := range st["workers"].([]any) {
			w := wi.(map[string]any)
			if w["url"] == victim.url() {
				return w["down"] == false && w["stale"] == false
			}
		}
		return false
	})
	status, body, _ = get(t, ts, countURL(qs))
	if status != http.StatusOK || body["count"] != want.String() || body["engine"] != "fanout" {
		t.Fatalf("recovered count: status %d body %v, want fanned %s", status, body, want)
	}
}

// tamperingProxy wraps a real worker handler but rewrites every partial
// it serves with the given mutation — a stand-in for a worker answering
// from the wrong epoch or the wrong shard set.
func tamperingProxy(t *testing.T, tamper func(p *store.PartialFile)) string {
	t.Helper()
	w, err := cluster.NewWorker(cluster.WorkerConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	inner := w.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/partial" {
			inner.ServeHTTP(rw, r)
			return
		}
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			rw.WriteHeader(rec.Code)
			rw.Write(rec.Body.Bytes())
			return
		}
		p, err := store.DecodePartial(rec.Body.Bytes())
		if err != nil {
			t.Errorf("proxy: decoding real partial: %v", err)
			rw.WriteHeader(http.StatusInternalServerError)
			return
		}
		tamper(p)
		body, err := store.EncodePartial(p)
		if err != nil {
			t.Errorf("proxy: re-encoding partial: %v", err)
			rw.WriteHeader(http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "text/plain")
		rw.Write(body)
	}))
	t.Cleanup(func() {
		ts.Close()
		w.Close()
	})
	return ts.URL
}

// TestStaleEpochPartialRefused pins the merge safety ladder: a partial
// carrying the wrong epoch stamp is a loud 502, never a miscount.
func TestStaleEpochPartialRefused(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 4, 2)
	qs := q.String()
	path := writeSnapshot(t, t.TempDir(), db, ks)

	peers := []string{startWorkers(t, 1)[0], tamperingProxy(t, func(p *store.PartialFile) {
		p.Epoch++
	})}
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
	})

	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusBadGateway {
		t.Fatalf("stale-epoch partial: status %d body %v, want 502", status, body)
	}
	if code := errCode(t, body); code != "stale_partial" {
		t.Fatalf("stale-epoch partial: code %q, want stale_partial", code)
	}
}

// TestForeignManifestPartialRefused pins the same ladder one rung lower:
// a partial produced under a different manifest (a mixed shard set)
// fails the digest gate with a loud 502.
func TestForeignManifestPartialRefused(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 4, 2)
	qs := q.String()
	path := writeSnapshot(t, t.TempDir(), db, ks)

	peers := []string{startWorkers(t, 1)[0], tamperingProxy(t, func(p *store.PartialFile) {
		p.ManifestCRC ^= 0xdecade
	})}
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
	})

	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusBadGateway {
		t.Fatalf("foreign partial: status %d body %v, want 502", status, body)
	}
	if code := errCode(t, body); code != "foreign_partial" {
		t.Fatalf("foreign partial: code %q, want foreign_partial", code)
	}
}

// TestStalePartialAfterUnackedDelta pins the applied stamp: a worker
// whose partial does not reflect the last acked delta batch is refused.
// The tampering proxy decrements the applied stamp to simulate a worker
// that silently lost its journal tail.
func TestStalePartialAfterUnackedDelta(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 4, 2)
	qs := q.String()
	path := writeSnapshot(t, t.TempDir(), db, ks)

	peers := []string{startWorkers(t, 1)[0], tamperingProxy(t, func(p *store.PartialFile) {
		p.Applied += 3
	})}
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
	})

	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusBadGateway {
		t.Fatalf("unsynced partial: status %d body %v, want 502", status, body)
	}
	if code := errCode(t, body); code != "stale_partial" {
		t.Fatalf("unsynced partial: code %q, want stale_partial", code)
	}
}

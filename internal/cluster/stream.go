package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repaircount"
	"repaircount/internal/workload"
)

// The coordinator's write path. The ops tail applies each batch to the
// coordinator's own snapshot first — applied through the live instance
// and journaled with an fsync'd append, exactly like the single-node
// daemon, so the coordinator alone is always a correct server. The ops
// that changed the instance are then routed to the fleet by the
// placement map recorded at the current epoch's birth:
//
//   - a block owned by worker w streams to w only;
//   - a shared (replicated singleton) block broadcasts to every worker;
//   - a block born after the epoch stays coordinator-only (it is
//     excluded from every physical shard; the fan-out validation decides
//     per probe whether that is still sound).
//
// Routing appends to per-worker pending queues; a separate flusher
// goroutine drains them over HTTP so probes and the tail never block on
// a slow worker. A worker acks a batch only after journaling it to its
// own shard file, and the ack carries the worker's resulting instance
// version, which the coordinator records as lastAck — the exact stamp
// every later partial from that worker must carry.

// applyBatch is the Tailer callback: apply one parsed batch under the
// write lock (draining in-flight probes), journal the changed ops, route
// them to the fleet, and re-shard when the journal outgrows its budget.
func (c *Coordinator) applyBatch(ops []workload.Update) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var changed []repaircount.Delta
	var changedOps []workload.Update
	for _, op := range ops {
		d := repaircount.Insert(op.Fact)
		if op.Del {
			d = repaircount.Delete(op.Fact)
		}
		n, err := c.snap.Apply(d)
		if err != nil {
			return fmt.Errorf("cluster: applying %s: %w", op.Fact, err)
		}
		if n > 0 {
			changed = append(changed, d)
			changedOps = append(changedOps, op)
		}
	}
	c.appliedOps.Add(int64(len(ops)))
	if len(changed) > 0 {
		if err := repaircount.AppendJournal(c.cfg.SnapshotPath, changed...); err != nil {
			return fmt.Errorf("cluster: journaling %d ops: %w", len(changed), err)
		}
		c.journaled.Add(int64(len(changed)))
		c.routeOps(changedOps)
	}
	if c.cfg.CompactBytes > 0 {
		st, err := os.Stat(c.cfg.SnapshotPath)
		if err == nil && st.Size()-c.baseLen >= c.cfg.CompactBytes {
			if err := c.reshardLocked(); err != nil {
				return fmt.Errorf("cluster: re-sharding: %w", err)
			}
		}
	}
	return nil
}

// routeOps classifies changed ops by the epoch-birth placement and
// queues them per worker. Caller holds c.mu's write side.
func (c *Coordinator) routeOps(ops []workload.Update) {
	keys := c.pcounter.Instance().Keys
	c.fmu.Lock()
	for _, op := range ops {
		key := keys.KeyValue(op.Fact).Canonical()
		w, ok := c.plac[key]
		if !ok {
			// A block born after the epoch: no physical shard holds it, so
			// it stays coordinator-only until the next re-shard.
			c.plac[key] = shardExcluded
			continue
		}
		switch {
		case w == shardShared:
			for _, ws := range c.fleet {
				ws.pending = append(ws.pending, op)
			}
		case w >= 0:
			c.fleet[w].pending = append(c.fleet[w].pending, op)
		}
	}
	c.fmu.Unlock()
	c.kickFlusher()
}

// flushLoop drains pending delta queues to the fleet whenever kicked.
func (c *Coordinator) flushLoop() {
	defer close(c.flushDone)
	for {
		select {
		case <-c.stop:
			return
		case <-c.flushCh:
		}
		c.flushPending()
	}
}

// flushPending streams each worker's queued ops in order. The queue is
// only truncated after the worker's journaled ack, and only if the epoch
// did not move mid-flight (a re-shard clears the queues wholesale — its
// state is baked into the fresh shards). Any failure marks the worker
// down; the maintenance loop reloads it and this queue replays.
func (c *Coordinator) flushPending() {
	for s := range c.fleet {
		for {
			c.fmu.Lock()
			ws := c.fleet[s]
			if ws.down || ws.stale || len(ws.pending) == 0 {
				c.fmu.Unlock()
				break
			}
			batch := ws.pending
			epoch := c.epoch
			url := ws.url
			c.fmu.Unlock()

			applied, err := c.sendApply(url, epoch, batch)

			c.fmu.Lock()
			if c.epoch != epoch {
				// A re-shard superseded this batch; its state is in the new
				// epoch's shard files and the queue was already cleared.
				c.fmu.Unlock()
				break
			}
			if err != nil {
				ws.down = true
				c.fmu.Unlock()
				fmt.Fprintf(os.Stderr, "cluster: delta stream to worker %d (%s) failed: %v\n", s, url, err)
				break
			}
			ws.lastAck = applied
			ws.pending = ws.pending[len(batch):]
			c.fmu.Unlock()
		}
	}
}

// sendApply POSTs one delta batch to a worker and returns the journaled
// version it acked.
func (c *Coordinator) sendApply(url string, epoch uint64, batch []workload.Update) (uint64, error) {
	var body strings.Builder
	if err := workload.FormatUpdates(&body, batch); err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HedgeAfter)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		fmt.Sprintf("%s/v1/apply?epoch=%d", url, epoch), strings.NewReader(body.String()))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if !statusOK(resp.StatusCode) {
		return 0, decodeError(resp.StatusCode, data)
	}
	var ar applyResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		return 0, fmt.Errorf("cluster: malformed apply ack: %w", err)
	}
	if ar.Epoch != epoch {
		return 0, fmt.Errorf("cluster: apply acked under epoch %d, sent under %d", ar.Epoch, epoch)
	}
	return ar.Applied, nil
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repaircount"
	"repaircount/internal/core"
	"repaircount/internal/repairs"
	"repaircount/internal/server"
	"repaircount/internal/workload"
)

// Config parameterizes a Coordinator. Zero values select the documented
// defaults.
type Config struct {
	// SnapshotPath is the full .cqs snapshot the coordinator owns
	// (required). It is recovered and, when journaled, compacted before
	// the first shard cut.
	SnapshotPath string
	// Query is the partition query (required): the one query whose counts
	// fan out to the fleet. Other probes are served locally.
	Query string
	// Peers are the worker base URLs; the shard count K is their number
	// (required, at least one).
	Peers []string
	// ShardDir receives one epoch-N directory of shard snapshots plus
	// manifest per re-shard (required).
	ShardDir string
	// OpsPath, when set, is the append-only update stream to tail; the
	// consumed offset persists in OpsPath + ".offset".
	OpsPath string
	// Workers, CountWorkers, QueueDepth, Deadline, ExactBudget,
	// MaxSamples, Eps, Delta, Seed, Poll and CompactBytes behave exactly
	// as in the single-node daemon (internal/server.Config); CompactBytes
	// here triggers a full re-shard, not just a compaction.
	Workers      int
	CountWorkers int
	QueueDepth   int
	Deadline     time.Duration
	ExactBudget  int64
	MaxSamples   int64
	Eps, Delta   float64
	Seed         uint64
	Poll         time.Duration
	CompactBytes int64
	// Retries is the attempt count per shard fetch (default 3).
	Retries int
	// RetryBackoff is the initial inter-attempt backoff, doubling each
	// retry (default 50ms).
	RetryBackoff time.Duration
	// HedgeAfter is the per-attempt timeout: a slow attempt is abandoned
	// and re-fired after this long (default 2s). This is
	// abandon-and-refire hedging — the slow request is canceled, not
	// raced.
	HedgeAfter time.Duration
	// CacheEntries bounds the shared probe cache, exactly as in
	// internal/server.Config: 0 selects the default, < 0 disables it. It
	// also gates the per-worker partial cache that lets an unchanged
	// shard skip its re-count on fan-out.
	CacheEntries int
}

func (cfg *Config) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CountWorkers <= 0 {
		cfg.CountWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
	if cfg.ExactBudget <= 0 {
		cfg.ExactBudget = int64(repairs.DefaultEnumBudget)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = core.MaxApxSamples
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.1
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.05
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 1 << 20
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = 2 * time.Second
	}
}

// workerState is the coordinator's book on one fleet member. Guarded by
// Coordinator.fmu.
type workerState struct {
	url string
	// down: the worker failed an availability check (refused, timed out);
	// probes fall back to local counting, the maintenance loop re-pings.
	down bool
	// stale: the worker returned an integrity violation (wrong digest,
	// epoch or applied stamp); it needs a reload before it is trusted
	// again.
	stale bool
	// lastAck is the instance version the worker acknowledged after its
	// last delta batch (or reload); a partial must carry exactly this.
	lastAck uint64
	// pending holds routed-but-unacked ops, in stream order.
	pending []workload.Update
}

// Coordinator owns the full snapshot, the manifest of the current epoch
// and the ops tail, and serves the probe API by fanning the partition
// query out to the worker fleet. Probes take the read side of mu; the
// ops applier and the re-sharder take the write side, so in-flight
// probes drain before any epoch swing.
type Coordinator struct {
	cfg    Config
	ladder server.Ladder
	client *http.Client
	pool   *server.Pool
	cache  *server.ProbeCache // nil when CacheEntries < 0

	mu      sync.RWMutex
	snap    *repaircount.Snapshot
	query   repaircount.Formula
	qs      string // canonical partition-query text
	baseLen int64

	// fmu guards the fleet book and the shard-set identity. The epoch and
	// shard set only move under mu's write side AND fmu, so holders of
	// either read a consistent epoch.
	fmu      sync.Mutex
	epoch    uint64
	shards   *repaircount.ShardSet
	plac     map[string]int32 // block key → worker, shardShared or shardExcluded
	fleet    []*workerState
	pcounter *repaircount.Counter // dedicated planning counter; rebuilt per epoch
	fan      *fanPlan             // cached validation for (epoch, version)
	parts    []partialMemo        // per-worker verified-partial cache, keyed (epoch, ack)

	degradedReason atomic.Pointer[string]

	appliedOps atomic.Int64
	journaled  atomic.Int64
	recovered  int64

	stats struct {
		probes, exact, approx, rejected, overloaded, deadline atomic.Int64
		fanouts, localFallback, integrity, reshards           atomic.Int64
		partialHits                                           atomic.Int64
	}

	tailer    *server.Tailer
	flushCh   chan struct{}
	stop      chan struct{}
	stopOnce  sync.Once
	tailDone  chan struct{}
	flushDone chan struct{}
	maintDone chan struct{}
}

const (
	shardShared   = repairs.ShardShared
	shardExcluded = repairs.ShardExcluded
)

// New recovers and maps the snapshot, cuts the first epoch's shard set,
// assigns the fleet (workers that are down are marked and healed later —
// probes degrade to local counting, they never fail), and starts the ops
// tail, the delta flusher and the maintenance loop.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	if cfg.SnapshotPath == "" || cfg.Query == "" || cfg.ShardDir == "" {
		return nil, fmt.Errorf("cluster: SnapshotPath, Query and ShardDir are required")
	}
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: at least one worker peer is required")
	}
	q, err := repaircount.ParseQuery(cfg.Query)
	if err != nil {
		return nil, fmt.Errorf("cluster: partition query: %w", err)
	}
	recovered, err := repaircount.RecoverSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("cluster: recovering %s: %w", cfg.SnapshotPath, err)
	}
	snap, err := repaircount.OpenSnapshot(cfg.SnapshotPath)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		ladder:    server.Ladder{ExactBudget: cfg.ExactBudget, MaxSamples: cfg.MaxSamples, Eps: cfg.Eps, Delta: cfg.Delta},
		client:    &http.Client{},
		pool:      server.NewPool(cfg.Workers, cfg.QueueDepth),
		snap:      snap,
		query:     q,
		qs:        fmt.Sprintf("%s", q),
		recovered: recovered,
		flushCh:   make(chan struct{}, 1),
		stop:      make(chan struct{}),
		tailDone:  make(chan struct{}),
		flushDone: make(chan struct{}),
		maintDone: make(chan struct{}),
	}
	if cfg.CacheEntries >= 0 {
		c.cache = server.NewProbeCache(cfg.CacheEntries)
	}
	c.fleet = make([]*workerState, len(cfg.Peers))
	c.parts = make([]partialMemo, len(cfg.Peers))
	for i, u := range cfg.Peers {
		c.fleet[i] = &workerState{url: u}
	}
	c.mu.Lock()
	err = c.reshardLocked()
	c.mu.Unlock()
	if err != nil {
		snap.Close()
		return nil, err
	}
	if cfg.OpsPath != "" {
		c.tailer = &server.Tailer{
			OpsPath:    cfg.OpsPath,
			OffsetPath: cfg.OpsPath + ".offset",
			Poll:       cfg.Poll,
			Apply:      c.applyBatch,
		}
		go c.tailLoop()
	} else {
		close(c.tailDone)
	}
	go c.flushLoop()
	go c.maintainLoop()
	return c, nil
}

// Close stops the tail, flusher and maintenance loops and unmaps the
// snapshot. In-flight probes must have drained first. Safe to call twice.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.tailDone
	<-c.flushDone
	<-c.maintDone
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snap == nil {
		return nil
	}
	err := c.snap.Close()
	c.snap = nil
	return err
}

func (c *Coordinator) degrade(err error) {
	msg := err.Error()
	c.degradedReason.CompareAndSwap(nil, &msg)
}

func (c *Coordinator) degraded() string {
	if p := c.degradedReason.Load(); p != nil {
		return *p
	}
	return ""
}

// reshardLocked cuts a new epoch: compact the journal into the sealed
// base if one accrued, re-plan the partition at the current version,
// write fresh shard snapshots plus manifest under ShardDir/epoch-N/,
// swing the fleet book (placement, acks, pending) to the new epoch, and
// reload every worker. Caller holds c.mu's write side, so in-flight
// probes have drained against the old epoch. Worker reload failures mark
// the worker down — they never fail the re-shard, because the
// coordinator can always count locally.
func (c *Coordinator) reshardLocked() error {
	if c.snap.JournalBytes() > 0 {
		if err := repaircount.CompactSnapshot(c.cfg.SnapshotPath, c.cfg.SnapshotPath); err != nil {
			return fmt.Errorf("cluster: compacting %s: %w", c.cfg.SnapshotPath, err)
		}
		snap, err := repaircount.OpenSnapshot(c.cfg.SnapshotPath)
		if err != nil {
			return err
		}
		old := c.snap
		c.snap = snap
		old.Close()
	}
	st, err := os.Stat(c.cfg.SnapshotPath)
	if err != nil {
		return err
	}
	c.baseLen = st.Size() - c.snap.JournalBytes()

	counter, err := c.snap.Counter(c.query)
	if err != nil {
		return err
	}
	plan, err := counter.PlanShards(len(c.fleet))
	if err != nil {
		return err
	}
	epoch := c.epoch + 1
	dir := filepath.Join(c.cfg.ShardDir, fmt.Sprintf("epoch-%06d", epoch))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	set, err := counter.WriteShards(dir, plan, c.snap.Digest())
	if err != nil {
		return fmt.Errorf("cluster: writing shard set for epoch %d: %w", epoch, err)
	}
	plac := make(map[string]int32, len(counter.Instance().Blocks))
	for pos, b := range counter.Instance().Blocks {
		plac[b.Key.Canonical()] = plan.ShardOf[pos]
	}

	c.fmu.Lock()
	c.epoch = epoch
	c.shards = set
	c.plac = plac
	c.pcounter = counter
	c.fan = nil
	for i := range c.parts {
		c.parts[i] = partialMemo{}
	}
	for _, ws := range c.fleet {
		ws.lastAck = 0
		ws.pending = nil
		ws.stale = false
	}
	c.fmu.Unlock()
	c.stats.reshards.Add(1)

	// Fan the reloads concurrently; the epoch swing above already
	// happened, so a worker that misses its reload is simply down until
	// the maintenance loop heals it.
	var wg sync.WaitGroup
	for s := range c.fleet {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			applied, err := c.sendReload(s)
			c.fmu.Lock()
			ws := c.fleet[s]
			if err != nil {
				ws.down = true
			} else {
				ws.down = false
				ws.lastAck = applied
			}
			c.fmu.Unlock()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cluster: reload of worker %d (%s) failed: %v\n", s, c.fleet[s].url, err)
			}
		}(s)
	}
	wg.Wait()
	return nil
}

// sendReload assigns shard s of the current epoch to worker s and
// returns the applied version the worker acknowledged.
func (c *Coordinator) sendReload(s int) (uint64, error) {
	c.fmu.Lock()
	req := reloadRequest{
		Epoch:        c.epoch,
		Shard:        s,
		K:            len(c.fleet),
		ManifestPath: c.shards.ManifestPath,
		ShardPath:    c.shards.Paths[s],
		ManifestCRC:  fmt.Sprintf("%016x", c.shards.ManifestCRC),
	}
	url := c.fleet[s].url
	c.fmu.Unlock()
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HedgeAfter)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/reload", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if !statusOK(resp.StatusCode) {
		return 0, decodeError(resp.StatusCode, data)
	}
	var rr reloadResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return 0, fmt.Errorf("cluster: malformed reload ack: %w", err)
	}
	if rr.Epoch != req.Epoch || rr.Shard != s {
		return 0, fmt.Errorf("cluster: worker %d acked epoch %d shard %d, assigned epoch %d shard %d",
			s, rr.Epoch, rr.Shard, req.Epoch, s)
	}
	return rr.Applied, nil
}

// maintainLoop periodically heals down and stale workers: reload them
// onto the current epoch and kick the flusher so their pending deltas
// replay. Healthy fleets cost one mutex peek per tick.
func (c *Coordinator) maintainLoop() {
	defer close(c.maintDone)
	tick := time.NewTicker(c.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
		}
		c.fmu.Lock()
		var heal []int
		for s, ws := range c.fleet {
			if ws.down || ws.stale {
				heal = append(heal, s)
			}
		}
		c.fmu.Unlock()
		for _, s := range heal {
			applied, err := c.sendReload(s)
			if err != nil {
				continue // still down; next tick retries
			}
			c.fmu.Lock()
			ws := c.fleet[s]
			ws.lastAck = applied
			ws.down = false
			ws.stale = false
			c.fmu.Unlock()
		}
		if len(heal) > 0 {
			c.kickFlusher()
		}
	}
}

func (c *Coordinator) kickFlusher() {
	select {
	case c.flushCh <- struct{}{}:
	default:
	}
}

// tailLoop runs the ops tailer until Close or a write-path failure.
func (c *Coordinator) tailLoop() {
	defer close(c.tailDone)
	if err := c.tailer.Run(c.stop); err != nil {
		c.degrade(err)
	}
}

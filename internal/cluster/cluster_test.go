package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repaircount"
	"repaircount/internal/cluster"
	"repaircount/internal/relational"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// writeSnapshot drops a fresh .cqs fixture for db under dir.
func writeSnapshot(t *testing.T, dir string, db *relational.Database, ks *relational.KeySet) string {
	t.Helper()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	return path
}

// startWorkers boots k shard workers on httptest listeners and returns
// their peer URLs.
func startWorkers(t *testing.T, k int) []string {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		w, err := cluster.NewWorker(cluster.WorkerConfig{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(func() {
			ts.Close()
			w.Close()
		})
		urls[i] = ts.URL
	}
	return urls
}

// startCoordinator boots a coordinator plus its httptest front end.
func startCoordinator(t *testing.T, cfg cluster.Config) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = 20 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("bad JSON %q: %v", raw, err)
		}
	}
	return resp.StatusCode, body, string(raw)
}

func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error object in %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func countURL(q string) string { return "/v1/count?q=" + url.QueryEscape(q) }

// offlineCount is the unsharded ground truth for the current db state.
func offlineCount(t *testing.T, db *relational.Database, ks *relational.KeySet, qs string) *big.Int {
	t.Helper()
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := repaircount.NewCounter(db, ks, q)
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := c.Count()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// waitStats polls /v1/stats until cond is satisfied.
func waitStats(t *testing.T, ts *httptest.Server, what string, cond func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st map[string]any
	for time.Now().Before(deadline) {
		_, st, _ = get(t, ts, "/v1/stats")
		if cond(st) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats: %v", what, st)
	return nil
}

// fleetSynced reports every worker healthy with an empty delta queue and
// the ops file fully consumed.
func fleetSynced(opsBytes int64) func(map[string]any) bool {
	return func(st map[string]any) bool {
		if st["ops_offset"] != float64(opsBytes) {
			return false
		}
		ws, _ := st["workers"].([]any)
		for _, wi := range ws {
			w := wi.(map[string]any)
			if w["down"] == true || w["stale"] == true || w["pending"] != float64(0) {
				return false
			}
		}
		return true
	}
}

// corpora are the differential-test instances: the factorized benchmark
// corpus, an inclusion-exclusion-heavy one, and a skewed one where LPT
// balancing actually matters.
func corpora() map[string]func() (*relational.Database, *relational.KeySet, string) {
	return map[string]func() (*relational.Database, *relational.KeySet, string){
		"MultiComponent": func() (*relational.Database, *relational.KeySet, string) {
			db, ks, q := workload.MultiComponent(6, 8, 2)
			return db, ks, q.String()
		},
		"IEHeavy": func() (*relational.Database, *relational.KeySet, string) {
			db, ks, q := workload.IEHeavy(3, 6, 2)
			return db, ks, q.String()
		},
		"SkewedComponents": func() (*relational.Database, *relational.KeySet, string) {
			db, ks, q := workload.SkewedComponents(4, 8, 1.2)
			return db, ks, q.String()
		},
	}
}

// TestDifferentialFanout pins coordinator counts bit-identical to the
// unsharded engine for K ∈ {1, 2, 4, 8} over every corpus, and verifies
// the counts actually came from the fleet, not a silent local fallback.
func TestDifferentialFanout(t *testing.T) {
	for name, mk := range corpora() {
		t.Run(name, func(t *testing.T) {
			db, ks, qs := mk()
			want := offlineCount(t, db, ks, qs)
			for _, k := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
					path := writeSnapshot(t, t.TempDir(), db, ks)
					peers := startWorkers(t, k)
					_, ts := startCoordinator(t, cluster.Config{
						SnapshotPath: path,
						Query:        qs,
						Peers:        peers,
						ShardDir:     t.TempDir(),
					})
					status, body, _ := get(t, ts, countURL(qs))
					if status != http.StatusOK {
						t.Fatalf("count: status %d: %v", status, body)
					}
					if body["mode"] != "exact" || body["count"] != want.String() {
						t.Fatalf("count: got %v, want exact %s", body, want)
					}
					if body["engine"] != "fanout" {
						t.Fatalf("count was not served by the fleet: %v", body)
					}
					_, st, _ := get(t, ts, "/v1/stats")
					if st["fanout_probes"] != float64(1) {
						t.Fatalf("expected 1 fan-out probe, stats: %v", st)
					}
				})
			}
		})
	}
}

// TestDifferentialAfterDeltas streams randomized updates through the ops
// tail and pins the post-delta coordinator count — fanned or degraded to
// local, whichever the placement validation allows — bit-identical to an
// offline counter that applied the same deltas.
func TestDifferentialAfterDeltas(t *testing.T) {
	db, ks, q := workload.MultiComponent(6, 8, 2)
	qs := q.String()
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "updates.ops")

	peers := startWorkers(t, 4)
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
		OpsPath:      opsPath,
		CompactBytes: -1, // no re-shard: the delta stream itself is under test
	})

	// Pre-delta: fleet-served and exact.
	want := offlineCount(t, db, ks, qs)
	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusOK || body["count"] != want.String() || body["engine"] != "fanout" {
		t.Fatalf("pre-delta count: status %d body %v, want fanned %s", status, body, want)
	}

	// Stream a randomized update batch through the ops tail.
	rng := rand.New(rand.NewPCG(7, 8))
	ops := workload.UpdateStream(rng, db, ks, 40, 0.6)
	var sb strings.Builder
	if err := workload.FormatUpdates(&sb, ops); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	waitStats(t, ts, "delta stream to drain", fleetSynced(int64(sb.Len())))

	// Offline ground truth over the same deltas.
	qf, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]repaircount.Delta, len(ops))
	for i, op := range ops {
		if op.Del {
			deltas[i] = repaircount.Delete(op.Fact)
		} else {
			deltas[i] = repaircount.Insert(op.Fact)
		}
	}
	if _, err := oc.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	want2, _, err := oc.Count()
	if err != nil {
		t.Fatal(err)
	}

	status, body, _ = get(t, ts, countURL(qs))
	if status != http.StatusOK {
		t.Fatalf("post-delta count: status %d: %v", status, body)
	}
	if body["mode"] != "exact" || body["count"] != want2.String() {
		t.Fatalf("post-delta count: got %v, want exact %s", body, want2)
	}
}

// TestReshardOnCompaction drives the journal over its budget so the
// coordinator re-shards live: the epoch must move, the fleet must be
// re-assigned, and the next probe must fan out over the fresh cut with a
// bit-identical count.
func TestReshardOnCompaction(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 6, 2)
	qs := q.String()
	dir := t.TempDir()
	path := writeSnapshot(t, dir, db, ks)
	opsPath := filepath.Join(dir, "updates.ops")

	peers := startWorkers(t, 4)
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
		OpsPath:      opsPath,
		CompactBytes: 1, // any journal byte triggers a re-shard
	})

	rng := rand.New(rand.NewPCG(11, 12))
	ops := workload.UpdateStream(rng, db, ks, 20, 0.5)
	var sb strings.Builder
	if err := workload.FormatUpdates(&sb, ops); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opsPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	st := waitStats(t, ts, "re-shard to settle", func(st map[string]any) bool {
		return fleetSynced(int64(sb.Len()))(st) && st["reshards"].(float64) >= 2
	})
	if st["epoch"].(float64) < 2 {
		t.Fatalf("expected the epoch to move past the initial cut, stats: %v", st)
	}

	qf, err := repaircount.ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	oc, err := repaircount.NewCounter(db, ks, qf)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]repaircount.Delta, len(ops))
	for i, op := range ops {
		if op.Del {
			deltas[i] = repaircount.Delete(op.Fact)
		} else {
			deltas[i] = repaircount.Insert(op.Fact)
		}
	}
	if _, err := oc.Apply(deltas...); err != nil {
		t.Fatal(err)
	}
	want, _, err := oc.Count()
	if err != nil {
		t.Fatal(err)
	}

	status, body, _ := get(t, ts, countURL(qs))
	if status != http.StatusOK || body["mode"] != "exact" || body["count"] != want.String() {
		t.Fatalf("post-reshard count: status %d body %v, want exact %s", status, body, want)
	}
	if body["engine"] != "fanout" {
		t.Fatalf("post-reshard probe did not fan out over the fresh cut: %v", body)
	}
}

// TestNonPartitionQueryServedLocally checks the coordinator serves other
// queries from its own snapshot, never the fleet.
func TestNonPartitionQueryServedLocally(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 4, 2)
	qs := q.String()
	path := writeSnapshot(t, t.TempDir(), db, ks)
	peers := startWorkers(t, 2)
	_, ts := startCoordinator(t, cluster.Config{
		SnapshotPath: path,
		Query:        qs,
		Peers:        peers,
		ShardDir:     t.TempDir(),
	})

	const other = "exists x, y . C0(x, y)"
	want := offlineCount(t, db, ks, other)
	status, body, _ := get(t, ts, countURL(other))
	if status != http.StatusOK || body["count"] != want.String() {
		t.Fatalf("local probe: status %d body %v, want %s", status, body, want)
	}
	if body["engine"] == "fanout" {
		t.Fatalf("non-partition query must not fan out: %v", body)
	}
	_, st, _ := get(t, ts, "/v1/stats")
	if st["fanout_probes"] != float64(0) {
		t.Fatalf("fleet served a non-partition query: %v", st)
	}
}

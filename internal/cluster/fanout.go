package cluster

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"sync"
	"time"

	"repaircount/internal/repairs"
	"repaircount/internal/server"
	"repaircount/internal/store"
)

// Fan-out soundness. The fleet physically holds the partition cut at the
// current epoch's birth; deltas since then were streamed by that same
// placement. A fan-out merges the workers' partials as
//
//	#Q = (Π_w Inner_w − Π_w NonEnt_w) × effOuter
//
// which is exact iff the FRESH factorization (re-planned at the current
// instance version) still respects the physical placement:
//
//   - a freshly shared block (relevant singleton) must be physically
//     replicated on every worker — its fact can appear in any
//     homomorphic image, so every sub-instance needs it;
//   - a freshly conflicting component's blocks must all sit on ONE
//     physical worker (any worker — not necessarily the fresh plan's LPT
//     pick): each sub-instance is a subset of the global instance, so no
//     worker can see a phantom image, and components are independent
//     given the replicated singletons, so the products multiply exactly;
//   - a freshly excluded block (irrelevant, or conflicting with no
//     entailing choice) is sound in three positions: off the fleet
//     entirely, where its size multiplies into effOuter; wholly on one
//     worker, where it multiplies into that worker's Inner AND NonEnt
//     and therefore factors out of Inner_w − NonEnt_w on its own — it
//     must NOT be counted into effOuter again; or replicated while still
//     a singleton, where it contributes a factor of one everywhere.
//
// effOuter is built by multiplication only, over the first position —
// the coordinator never divides big integers to "remove" a block from a
// stale outer factor.
//
// Any violation — a block that moved classes, a component that now
// straddles workers, a replicated block that grew — makes the fan-out
// UNSOUND, and the coordinator counts locally on its own snapshot
// instead, which is always exact, until the next re-shard rebuilds the
// physical cut. The validation is cached per (epoch, instance version):
// probe N+1 after a quiet stream pays one map lookup.

// fanPlan is the cached fan-out validation for one (epoch, version).
type fanPlan struct {
	version  uint64
	ok       bool
	reason   string   // why fan-out is unsound, when !ok
	effOuter *big.Int // Π sizes over blocks no physical shard holds
	maxCost  int64    // fleet critical path: max_w Σ planned cost on w
}

// currentFanPlan returns the fan-out validation for the current version,
// rebuilding it if deltas moved the instance. Caller holds c.mu.RLock,
// so the version cannot move underneath.
func (c *Coordinator) currentFanPlan() *fanPlan {
	version := c.snap.Version()
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if c.fan != nil && c.fan.version == version {
		return c.fan
	}
	c.fan = c.buildFanPlanLocked(version)
	return c.fan
}

// buildFanPlanLocked re-factorizes at the current version and validates
// the fresh partition against the physical placement. Caller holds
// c.mu.RLock and c.fmu.
func (c *Coordinator) buildFanPlanLocked(version uint64) *fanPlan {
	fp := &fanPlan{version: version, effOuter: big.NewInt(1)}
	plan, err := c.pcounter.PlanShards(len(c.fleet))
	if err != nil {
		fp.reason = err.Error()
		return fp
	}
	blocks := c.pcounter.Instance().Blocks
	compWorker := make([]int32, len(plan.Components))
	for i := range compWorker {
		compWorker[i] = -1
	}
	for pos, b := range blocks {
		phys, placed := c.plac[b.Key.Canonical()]
		switch s := plan.ShardOf[pos]; {
		case s == shardShared:
			if !placed || phys != shardShared {
				fp.reason = fmt.Sprintf("block %s is now a shared singleton but is not replicated across the fleet", b.Key.Canonical())
				return fp
			}
		case s >= 0:
			// A conflicting component block: it must live wholly on one
			// physical worker, and so must its whole component.
			if !placed || phys < 0 {
				fp.reason = fmt.Sprintf("conflicting block %s is not on any worker", b.Key.Canonical())
				return fp
			}
			if ci := plan.CompOf[pos]; ci >= 0 {
				switch compWorker[ci] {
				case -1:
					compWorker[ci] = phys
				case phys:
				default:
					fp.reason = fmt.Sprintf("component %d straddles workers %d and %d after deltas", ci, compWorker[ci], phys)
					return fp
				}
			}
		default: // freshly excluded
			switch {
			case !placed || phys == shardExcluded:
				fp.effOuter.Mul(fp.effOuter, big.NewInt(int64(b.Size())))
			case phys >= 0:
				// Folds into that worker's Inner and NonEnt and factors out
				// of the merge on its own; contributing it to effOuter too
				// would double-count it.
			case phys == shardShared:
				if b.Size() != 1 {
					fp.reason = fmt.Sprintf("block %s is replicated across the fleet but grew to %d facts", b.Key.Canonical(), b.Size())
					return fp
				}
			}
		}
	}
	cost := make([]int64, len(c.fleet))
	for ci := range plan.Components {
		if w := compWorker[ci]; w >= 0 {
			cost[w] += plan.Components[ci].Cost
		}
	}
	for _, cst := range cost {
		if cst > fp.maxCost {
			fp.maxCost = cst
		}
	}
	fp.ok = true
	return fp
}

// fleetView is a consistent copy of everything a fan-out needs, taken
// under fmu at fan time. Because the probe holds c.mu.RLock, no delta
// batch or re-shard can run concurrently; and because the view is only
// taken when every pending queue is empty, the flusher has nothing to
// flush, so acks are frozen too.
type fleetView struct {
	epoch    uint64
	manifest *store.Manifest
	mcrc     uint64
	urls     []string
	acks     []uint64
}

// fleetReady returns the frozen fleet view, or the reason the fleet
// cannot serve a fan-out right now (a worker down, stale, or with
// deltas still in flight).
func (c *Coordinator) fleetReady() (*fleetView, string) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	fv := &fleetView{
		epoch:    c.epoch,
		manifest: c.shards.Manifest,
		mcrc:     c.shards.ManifestCRC,
		urls:     make([]string, len(c.fleet)),
		acks:     make([]uint64, len(c.fleet)),
	}
	for s, ws := range c.fleet {
		switch {
		case ws.down:
			return nil, fmt.Sprintf("worker %d (%s) is down", s, ws.url)
		case ws.stale:
			return nil, fmt.Sprintf("worker %d (%s) is stale and awaiting reload", s, ws.url)
		case len(ws.pending) > 0:
			return nil, fmt.Sprintf("worker %d (%s) has %d deltas in flight", s, ws.url, len(ws.pending))
		}
		fv.urls[s] = ws.url
		fv.acks[s] = ws.lastAck
	}
	return fv, ""
}

// partialMemo caches one worker's last verified CQSP partial, keyed by
// the same (epoch, acked-version) stamps the merge safety ladder
// checks. The memo never skips the worker round trip — every fan-out
// still contacts every worker, which is how a dead worker is discovered
// and the probe degrades to local counting — it skips the RECOUNT: the
// coordinator sends the memoized stamps as a conditional fetch and the
// worker answers 204 when its shard hasn't moved, instead of running
// CountPartial and shipping the partial again. Guarded by
// Coordinator.fmu; reset on re-shard.
type partialMemo struct {
	ok    bool
	epoch uint64
	ack   uint64
	p     *store.PartialFile
}

// cachedPartial returns worker s's memoized partial when its stamps
// match the frozen fleet view, nil otherwise.
func (c *Coordinator) cachedPartial(s int, fv *fleetView) *store.PartialFile {
	if c.cache == nil {
		return nil
	}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	m := c.parts[s]
	if m.ok && m.epoch == fv.epoch && m.ack == fv.acks[s] {
		return m.p
	}
	return nil
}

// storePartials memoizes a fully verified partial set under the fleet
// view's stamps. Only called after every partial passed the ladder.
func (c *Coordinator) storePartials(fv *fleetView, parts []*store.PartialFile) {
	if c.cache == nil {
		return
	}
	c.fmu.Lock()
	for s, p := range parts {
		c.parts[s] = partialMemo{ok: true, epoch: fv.epoch, ack: fv.acks[s], p: p}
	}
	c.fmu.Unlock()
}

// integrityError is a merge-safety violation: a partial that must not be
// merged. It is never retried — the worker is marked stale and the probe
// answers a structured 502.
type integrityError struct {
	code string // "stale_partial" or "foreign_partial"
	err  error
}

func (e *integrityError) Error() string { return e.err.Error() }

// fanOut fetches, verifies and merges one partial per worker, returning
// the rendered exact count; an *integrityError when a verified-stale or
// foreign partial surfaced (502, never merged); or an availability
// error when a worker stayed unreachable through the retry budget (the
// caller falls back to local counting). Workers whose shard hasn't
// moved since the memoized partial answer the conditional fetch with a
// cheap 204 instead of re-counting; when a cache entry is held and the
// merged result is memoized for (epoch, version), the merge itself is
// skipped too — but never the per-worker round trips, which are the
// fleet's failure detector.
func (c *Coordinator) fanOut(ctx context.Context, fv *fleetView, effOuter *big.Int, ent *server.CacheEntry, version uint64) (string, error) {
	parts := make([]*store.PartialFile, len(fv.urls))
	errs := make([]error, len(fv.urls))
	var wg sync.WaitGroup
	for s := range fv.urls {
		cached := c.cachedPartial(s, fv)
		have := ""
		if cached != nil {
			have = fmt.Sprintf("%d-%d", cached.Epoch, cached.Applied)
		}
		wg.Add(1)
		go func(s int, cached *store.PartialFile, have string) {
			defer wg.Done()
			p, unchanged, err := c.fetchPartial(ctx, fv.urls[s], have)
			if unchanged {
				c.stats.partialHits.Add(1)
				p = cached
			}
			parts[s], errs[s] = p, err
		}(s, cached, have)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			c.markDown(s)
			return "", fmt.Errorf("worker %d (%s): %w", s, fv.urls[s], err)
		}
	}
	// Memoized partials run the ladder again too: the stamps are cheap
	// comparisons, and keeping every merged partial ladder-verified at
	// merge time is what makes the memo safe to trust.
	for s, p := range parts {
		if err := c.verifyPartial(fv, s, p); err != nil {
			c.stats.integrity.Add(1)
			c.markStale(s)
			return "", err
		}
	}
	c.storePartials(fv, parts)
	// Partials at matching stamps are deterministic, so a memoized merge
	// for this (epoch, version) is the same product — skip recombining
	// and re-rendering it.
	if ent != nil {
		if res, ok := ent.Result(server.ResultFan, fv.epoch, version); ok {
			return res.Str, nil
		}
	}
	rp := make([]*repairs.Partial, len(parts))
	for s, p := range parts {
		rp[s] = &repairs.Partial{Inner: p.Inner, NonEnt: p.NonEnt}
	}
	n := repairs.CombinePartials(effOuter, rp)
	str := n.String()
	if ent != nil {
		ent.StoreResult(server.ResultFan, fv.epoch, version, server.CachedResult{N: n, Str: str})
	}
	return str, nil
}

// verifyPartial runs the merge safety ladder on one fetched partial:
// the offline digest gate, then the epoch stamp, then the applied stamp.
func (c *Coordinator) verifyPartial(fv *fleetView, s int, p *store.PartialFile) error {
	if err := store.CheckPartial(fv.manifest, fv.mcrc, p); err != nil {
		return &integrityError{code: "foreign_partial", err: err}
	}
	if p.Shard != s {
		return &integrityError{code: "foreign_partial",
			err: fmt.Errorf("worker %d returned a partial for shard %d", s, p.Shard)}
	}
	if p.Epoch != fv.epoch {
		return &integrityError{code: "stale_partial",
			err: fmt.Errorf("worker %d answered under epoch %d, fleet is at %d", s, p.Epoch, fv.epoch)}
	}
	if p.Applied != fv.acks[s] {
		return &integrityError{code: "stale_partial",
			err: fmt.Errorf("worker %d counted at version %d, last acked delta was %d", s, p.Applied, fv.acks[s])}
	}
	return nil
}

// fetchPartial GETs one worker's partial with bounded retries: doubling
// backoff between attempts, and a per-attempt timeout that abandons a
// slow attempt and re-fires (abandon-and-refire hedging). A non-empty
// have carries the memoized partial's "epoch-applied" stamps as a
// conditional fetch; unchanged reports the worker's 204 answer (shard
// state still at those stamps, no partial body shipped).
func (c *Coordinator) fetchPartial(ctx context.Context, url, have string) (*store.PartialFile, bool, error) {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.HedgeAfter)
		p, unchanged, err := c.getPartial(actx, url, have)
		cancel()
		if err == nil {
			return p, unchanged, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
	}
	return nil, false, lastErr
}

func (c *Coordinator) getPartial(ctx context.Context, url, have string) (*store.PartialFile, bool, error) {
	target := url + "/v1/partial"
	if have != "" {
		target += "?have=" + have
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil, true, nil
	}
	if !statusOK(resp.StatusCode) {
		return nil, false, decodeError(resp.StatusCode, body)
	}
	p, err := store.DecodePartial(body)
	return p, false, err
}

func (c *Coordinator) markDown(s int) {
	c.fmu.Lock()
	c.fleet[s].down = true
	c.fmu.Unlock()
}

func (c *Coordinator) markStale(s int) {
	c.fmu.Lock()
	c.fleet[s].stale = true
	c.fmu.Unlock()
}

package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repaircount"
	"repaircount/internal/faultfs"
	"repaircount/internal/server"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// WorkerConfig parameterizes a shard worker. Zero values select the
// documented defaults.
type WorkerConfig struct {
	// Dir is the worker's own state directory (required): the assignment
	// sidecar lives here, so a restarted worker re-assumes its shard
	// without waiting for the coordinator.
	Dir string
	// Workers bounds concurrent partial probes (default GOMAXPROCS).
	Workers int
	// CountWorkers is the goroutine count inside one partial count
	// (default 1).
	CountWorkers int
	// QueueDepth bounds waiting probes (default 4×Workers).
	QueueDepth int
	// Deadline is the per-probe wall-clock budget (default 30s).
	Deadline time.Duration
	// ColdCounts drops the structural count memo before every partial, so
	// each probe pays the full cold cost — benchmarking only.
	ColdCounts bool
}

func (cfg *WorkerConfig) fill() {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CountWorkers <= 0 {
		cfg.CountWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 30 * time.Second
	}
}

// assignment is one worker's current shard duty, persisted as a JSON
// sidecar (Dir/assignment.json) so a kill -9'd worker comes back
// serving the same shard.
type assignment struct {
	Epoch        uint64 `json:"epoch"`
	Shard        int    `json:"shard"`
	K            int    `json:"k"`
	ManifestPath string `json:"manifest_path"`
	ShardPath    string `json:"shard_path"`
	ManifestCRC  uint64 `json:"manifest_crc"`
}

// Worker serves one shard snapshot: partials stamped with the shard
// digest, epoch and applied version, and delta batches applied through
// the live instance and journaled to the shard file before the ack.
type Worker struct {
	cfg  WorkerConfig
	pool *server.Pool

	mu       sync.RWMutex
	asn      *assignment // nil until assigned
	snap     *repaircount.Snapshot
	manifest *store.Manifest

	degradedReason atomic.Pointer[string]

	stats struct {
		partials, applies, reloads, skips atomic.Int64
	}
}

// NewWorker starts a worker. If Dir holds an assignment sidecar from a
// previous life, the shard is recovered (torn journal tails truncated)
// and reopened immediately; otherwise the worker waits unassigned for a
// coordinator /v1/reload.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("cluster: worker Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, pool: server.NewPool(cfg.Workers, cfg.QueueDepth)}
	asn, err := loadAssignment(w.sidecarPath())
	if err != nil {
		return nil, err
	}
	if asn != nil {
		if err := w.assume(asn); err != nil {
			// A stale sidecar (deleted epoch dir, replaced shard set) must
			// not keep the worker from starting: it waits for a reload.
			fmt.Fprintf(os.Stderr, "cluster: worker: dropping stale assignment: %v\n", err)
		}
	}
	return w, nil
}

func (w *Worker) sidecarPath() string { return filepath.Join(w.cfg.Dir, "assignment.json") }

// loadAssignment reads the sidecar; a missing file means unassigned, a
// corrupt one is dropped the same way (the coordinator re-assigns).
func loadAssignment(path string) (*assignment, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var asn assignment
	if err := json.Unmarshal(data, &asn); err != nil {
		return nil, nil
	}
	return &asn, nil
}

// assume verifies and adopts one assignment: the manifest must decode to
// the recorded digest, the shard snapshot must recover and open, and its
// sealed digest must be the one the manifest records for this shard.
// Caller must not hold w.mu.
func (w *Worker) assume(asn *assignment) error {
	m, mcrc, err := store.ReadManifestFile(asn.ManifestPath)
	if err != nil {
		return fmt.Errorf("cluster: worker reload: %w", err)
	}
	if mcrc != asn.ManifestCRC {
		return fmt.Errorf("cluster: worker reload: manifest %s hashes to %016x, assignment says %016x", asn.ManifestPath, mcrc, asn.ManifestCRC)
	}
	if asn.Shard < 0 || asn.Shard >= len(m.Shards) || asn.K != len(m.Shards) {
		return fmt.Errorf("cluster: worker reload: shard %d of %d does not fit a %d-shard manifest", asn.Shard, asn.K, len(m.Shards))
	}
	if _, err := repaircount.RecoverSnapshot(asn.ShardPath); err != nil {
		return fmt.Errorf("cluster: worker reload: recovering %s: %w", asn.ShardPath, err)
	}
	snap, err := repaircount.OpenSnapshot(asn.ShardPath)
	if err != nil {
		return fmt.Errorf("cluster: worker reload: %w", err)
	}
	if got, want := snap.Digest(), m.Shards[asn.Shard].CRC; got != want {
		snap.Close()
		return fmt.Errorf("cluster: worker reload: shard snapshot digest %016x, manifest records %016x for shard %d", got, want, asn.Shard)
	}
	w.mu.Lock()
	old := w.snap
	w.asn, w.snap, w.manifest = asn, snap, m
	w.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// persistAssignment writes the sidecar durably (temp, fsync, rename,
// dir fsync) through faultfs so crash sweeps cover it.
func (w *Worker) persistAssignment(asn *assignment) error {
	data, err := json.Marshal(asn)
	if err != nil {
		return err
	}
	f, err := faultfs.CreateTemp(w.cfg.Dir, "assignment.json.tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(append(data, '\n'))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = faultfs.Rename(tmp, w.sidecarPath())
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return faultfs.SyncDir(w.cfg.Dir)
}

// Close unmaps the shard snapshot.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snap == nil {
		return nil
	}
	err := w.snap.Close()
	w.snap = nil
	return err
}

func (w *Worker) degrade(err error) {
	msg := err.Error()
	w.degradedReason.CompareAndSwap(nil, &msg)
}

func (w *Worker) degraded() string {
	if p := w.degradedReason.Load(); p != nil {
		return *p
	}
	return ""
}

// Handler routes the worker API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/partial", w.handlePartial)
	mux.HandleFunc("/v1/apply", w.handleApply)
	mux.HandleFunc("/v1/reload", w.handleReload)
	mux.HandleFunc("/v1/stats", w.handleStats)
	mux.HandleFunc("/healthz", w.handleHealth)
	return mux
}

// writeUnassigned answers a probe that arrived before any reload.
func writeUnassigned(rw http.ResponseWriter) {
	server.WriteErr(rw, http.StatusServiceUnavailable,
		server.APIError{Code: "unassigned", Message: "worker has no shard assignment yet"})
}

// handlePartial counts this shard's partial and returns it as a CQSP
// version-2 body — the same digest-stamped artifact the offline merge
// consumes, plus the epoch and applied stamps the coordinator verifies.
func (w *Worker) handlePartial(rw http.ResponseWriter, r *http.Request) {
	w.stats.partials.Add(1)
	ctx, cancel := contextWithTimeout(r, w.cfg.Deadline)
	defer cancel()
	sl, err := w.pool.Acquire(ctx)
	if err != nil {
		if err == server.ErrOverloaded {
			server.WriteErr(rw, http.StatusServiceUnavailable,
				server.APIError{Code: "overloaded", Message: "partial probe queue full"})
			return
		}
		server.WriteErr(rw, http.StatusGatewayTimeout,
			server.APIError{Code: "deadline_exceeded", Message: ctx.Err().Error()})
		return
	}
	defer w.pool.Release(sl)
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.asn == nil {
		writeUnassigned(rw)
		return
	}
	// A conditional fetch: the coordinator already holds the verified
	// partial for these stamps, so an unmoved shard answers 204 instead
	// of re-counting and re-shipping it.
	if have := r.URL.Query().Get("have"); have != "" &&
		have == fmt.Sprintf("%d-%d", w.asn.Epoch, w.snap.Version()) {
		w.stats.skips.Add(1)
		rw.WriteHeader(http.StatusNoContent)
		return
	}
	c, err := sl.Counter(w.asn.Epoch, w.manifest.Query, func(qs string) (*repaircount.Counter, error) {
		q, err := repaircount.ParseQuery(qs)
		if err != nil {
			return nil, err
		}
		return w.snap.Counter(q)
	})
	if err != nil {
		server.WriteErr(rw, http.StatusInternalServerError,
			server.APIError{Code: "internal", Message: err.Error()})
		return
	}
	if w.cfg.ColdCounts {
		c.Instance().ResetComponentMemo()
	}
	p, err := c.CountPartialCtx(ctx, w.cfg.CountWorkers)
	if err != nil {
		if ctx.Err() != nil {
			server.WriteErr(rw, http.StatusGatewayTimeout,
				server.APIError{Code: "deadline_exceeded", Message: ctx.Err().Error()})
			return
		}
		server.WriteErr(rw, http.StatusInternalServerError,
			server.APIError{Code: "internal", Message: err.Error()})
		return
	}
	body, err := store.EncodePartial(&store.PartialFile{
		ManifestCRC: w.asn.ManifestCRC,
		Shard:       w.asn.Shard,
		K:           w.asn.K,
		SnapshotCRC: w.snap.Digest(),
		Inner:       p.Inner,
		NonEnt:      p.NonEnt,
		Epoch:       w.asn.Epoch,
		Applied:     w.snap.Version(),
	})
	if err != nil {
		server.WriteErr(rw, http.StatusInternalServerError,
			server.APIError{Code: "internal", Message: err.Error()})
		return
	}
	rw.Header().Set("Content-Type", "text/plain")
	rw.Write(body)
}

// handleApply applies one forwarded delta batch ("+ Fact"/"- Fact"
// lines) to the shard: ops are applied to the live instance, the ones
// that changed it are journaled to the shard file with an fsync'd
// append, and only then is the batch acked with the resulting version.
// A batch for another epoch is refused with 409 wrong_epoch so the
// coordinator knows to reload this worker first.
func (w *Worker) handleApply(rw http.ResponseWriter, r *http.Request) {
	w.stats.applies.Add(1)
	if reason := w.degraded(); reason != "" {
		server.WriteErr(rw, http.StatusServiceUnavailable,
			server.APIError{Code: "degraded", Message: reason})
		return
	}
	var epoch uint64
	if _, err := fmt.Sscanf(r.URL.Query().Get("epoch"), "%d", &epoch); err != nil {
		server.WriteErr(rw, http.StatusBadRequest,
			server.APIError{Code: "bad_request", Message: "missing or malformed ?epoch="})
		return
	}
	ops, err := workload.ParseUpdates(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		server.WriteErr(rw, http.StatusBadRequest,
			server.APIError{Code: "bad_request", Message: err.Error()})
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.asn == nil {
		writeUnassigned(rw)
		return
	}
	if epoch != w.asn.Epoch {
		server.WriteJSON(rw, http.StatusConflict, map[string]any{
			"error": map[string]any{
				"code":    "wrong_epoch",
				"message": fmt.Sprintf("batch is for epoch %d, worker serves %d", epoch, w.asn.Epoch),
				"epoch":   w.asn.Epoch,
			},
		})
		return
	}
	var changed []repaircount.Delta
	for _, op := range ops {
		d := repaircount.Insert(op.Fact)
		if op.Del {
			d = repaircount.Delete(op.Fact)
		}
		n, err := w.snap.Apply(d)
		if err != nil {
			err = fmt.Errorf("cluster: worker applying %s: %w", op.Fact, err)
			w.degrade(err)
			server.WriteErr(rw, http.StatusInternalServerError,
				server.APIError{Code: "internal", Message: err.Error()})
			return
		}
		if n > 0 {
			changed = append(changed, d)
		}
	}
	if len(changed) > 0 {
		if err := repaircount.AppendJournal(w.asn.ShardPath, changed...); err != nil {
			err = fmt.Errorf("cluster: worker journaling %d ops: %w", len(changed), err)
			w.degrade(err)
			server.WriteErr(rw, http.StatusInternalServerError,
				server.APIError{Code: "internal", Message: err.Error()})
			return
		}
	}
	server.WriteJSON(rw, http.StatusOK, applyResponse{Epoch: w.asn.Epoch, Applied: w.snap.Version()})
}

// handleReload adopts a new assignment from the coordinator and persists
// it, replacing any previous shard.
func (w *Worker) handleReload(rw http.ResponseWriter, r *http.Request) {
	w.stats.reloads.Add(1)
	var req reloadRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		server.WriteErr(rw, http.StatusBadRequest,
			server.APIError{Code: "bad_request", Message: err.Error()})
		return
	}
	var mcrc uint64
	if _, err := fmt.Sscanf(req.ManifestCRC, "%x", &mcrc); err != nil {
		server.WriteErr(rw, http.StatusBadRequest,
			server.APIError{Code: "bad_request", Message: "malformed manifest_crc"})
		return
	}
	asn := &assignment{
		Epoch:        req.Epoch,
		Shard:        req.Shard,
		K:            req.K,
		ManifestPath: req.ManifestPath,
		ShardPath:    req.ShardPath,
		ManifestCRC:  mcrc,
	}
	if err := w.assume(asn); err != nil {
		server.WriteErr(rw, http.StatusUnprocessableEntity,
			server.APIError{Code: "bad_assignment", Message: err.Error()})
		return
	}
	if err := w.persistAssignment(asn); err != nil {
		w.degrade(err)
		server.WriteErr(rw, http.StatusInternalServerError,
			server.APIError{Code: "internal", Message: err.Error()})
		return
	}
	w.mu.RLock()
	resp := reloadResponse{
		Epoch:    asn.Epoch,
		Shard:    asn.Shard,
		Applied:  w.snap.Version(),
		Snapshot: fmt.Sprintf("%016x", w.snap.Digest()),
	}
	w.mu.RUnlock()
	server.WriteJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	w.mu.RLock()
	resp := map[string]any{
		"assigned":      w.asn != nil,
		"degraded":      w.degraded(),
		"partials":      w.stats.partials.Load(),
		"partial_skips": w.stats.skips.Load(),
		"applies":       w.stats.applies.Load(),
		"reloads":       w.stats.reloads.Load(),
	}
	if w.asn != nil {
		resp["epoch"] = w.asn.Epoch
		resp["shard"] = w.asn.Shard
		resp["k"] = w.asn.K
		resp["applied"] = w.snap.Version()
		resp["snapshot"] = fmt.Sprintf("%016x", w.snap.Digest())
		resp["manifest"] = fmt.Sprintf("%016x", w.asn.ManifestCRC)
		resp["journal_ops"] = w.snap.NumJournalOps()
	}
	w.mu.RUnlock()
	server.WriteJSON(rw, http.StatusOK, resp)
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	if reason := w.degraded(); reason != "" {
		http.Error(rw, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	rw.Write([]byte("ok\n"))
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"

	"repaircount"
	"repaircount/internal/server"
)

// The coordinator's probe API mirrors the single-node daemon
// (internal/server) exactly — same endpoints, same admission ladder,
// same structured errors — with one addition: a /v1/count probe for the
// partition query fans out to the worker fleet when the fan-out is
// sound, and its exact rung is admitted on the FLEET CRITICAL PATH (the
// max over workers of their components' summed planned cost) instead of
// the local plan total, because shards count in parallel. Every other
// query, and every probe the fleet cannot soundly serve, runs on the
// coordinator's own snapshot — the cluster never answers worse than a
// single node.

// Handler routes the coordinator probe API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/count", c.handleCount)
	mux.HandleFunc("/v1/decide", c.handleDecide)
	mux.HandleFunc("/v1/explain", c.handleExplain)
	mux.HandleFunc("/v1/total", c.handleTotal)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/healthz", c.handleHealth)
	return mux
}

// withProbe runs fn on an acquired slot under the read lock, handling
// slot acquisition, queue overload and the probe deadline uniformly.
func (c *Coordinator) withProbe(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context, sl *server.Slot)) {
	c.stats.probes.Add(1)
	ctx, cancel := contextWithTimeout(r, c.cfg.Deadline)
	defer cancel()
	sl, err := c.pool.Acquire(ctx)
	if err != nil {
		if err == server.ErrOverloaded {
			c.stats.overloaded.Add(1)
			server.WriteErr(w, http.StatusServiceUnavailable, server.APIError{Code: "overloaded",
				Message: fmt.Sprintf("%d probes already queued", c.cfg.QueueDepth)})
			return
		}
		c.writeCtxErr(w, ctx)
		return
	}
	defer c.pool.Release(sl)
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn(ctx, sl)
}

func (c *Coordinator) writeCtxErr(w http.ResponseWriter, ctx context.Context) {
	if ctx.Err() == context.DeadlineExceeded {
		c.stats.deadline.Add(1)
		server.WriteErr(w, http.StatusGatewayTimeout, server.APIError{Code: "deadline_exceeded",
			Message: fmt.Sprintf("probe exceeded the %s deadline", c.cfg.Deadline)})
		return
	}
	server.WriteErr(w, 499, server.APIError{Code: "canceled", Message: "client canceled the probe"})
}

// counterFor returns the slot's cached local counter for the query text.
// Caller holds c.mu.RLock.
func (c *Coordinator) counterFor(sl *server.Slot, qs string) (*repaircount.Counter, error) {
	c.fmu.Lock()
	epoch := c.epoch
	c.fmu.Unlock()
	return sl.Counter(epoch, qs, func(qs string) (*repaircount.Counter, error) {
		q, err := repaircount.ParseQuery(qs)
		if err != nil {
			return nil, err
		}
		return c.snap.Counter(q)
	})
}

// isPartitionQuery reports whether a probe's query is the fleet's
// partition query, by canonical rendering.
func (c *Coordinator) isPartitionQuery(qs string) bool {
	if qs == c.cfg.Query || qs == c.qs {
		return true
	}
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		return false
	}
	return fmt.Sprintf("%s", q) == c.qs
}

func (c *Coordinator) handleCount(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	asText := r.URL.Query().Get("format") == "text"
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		cnt, err := c.counterFor(sl, qs)
		if err != nil {
			server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
			return
		}
		version := c.snap.Version()

		// Decide the serving path: fleet fan-out needs the partition
		// query, a sound fan plan, and a synced, healthy fleet.
		var (
			fanable  bool
			fallback string
			fp       *fanPlan
			fv       *fleetView
		)
		if c.isPartitionQuery(qs) {
			fp = c.currentFanPlan()
			if !fp.ok {
				fallback = fp.reason
			} else if fv, fallback = c.fleetReady(); fallback == "" {
				fanable = true
			}
		}

		// Admission: the fleet serves the exact rung on its critical path;
		// everything else is priced like a single node.
		var adm server.Admission
		if fanable {
			adm = c.ladder.PriceCost(cnt, fp.maxCost)
		} else {
			adm = c.ladder.Price(cnt)
		}

		if adm.Mode == server.AdmitExact && fanable {
			n, err := c.fanOut(ctx, fv, fp.effOuter)
			var ie *integrityError
			switch {
			case err == nil:
				c.stats.fanouts.Add(1)
				c.stats.exact.Add(1)
				if asText {
					w.Header().Set("Content-Type", "text/plain")
					fmt.Fprintf(w, "%s\n", n)
					return
				}
				server.WriteJSON(w, http.StatusOK, map[string]any{
					"mode": "exact", "count": n.String(), "engine": "fanout",
					"k": len(c.fleet), "version": version, "epoch": fv.epoch,
				})
				return
			case ctx.Err() != nil:
				c.writeCtxErr(w, ctx)
				return
			case errors.As(err, &ie):
				// A verified-stale or foreign partial: refusing loudly is
				// the contract — merging it could miscount.
				server.WriteErr(w, http.StatusBadGateway,
					server.APIError{Code: ie.code, Message: ie.err.Error()})
				return
			default:
				// Availability: a worker stayed down through the retry
				// budget. Degrade to local counting — still exact.
				fanable = false
				fallback = err.Error()
				fmt.Fprintf(os.Stderr, "cluster: fan-out failed, serving locally: %v\n", err)
			}
		}

		if adm.Mode == server.AdmitExact {
			c.stats.localFallback.Add(1)
			n, err := cnt.CountShardedCtx(ctx, len(c.fleet), c.cfg.CountWorkers)
			switch {
			case err == nil:
				c.stats.exact.Add(1)
				if asText {
					w.Header().Set("Content-Type", "text/plain")
					fmt.Fprintf(w, "%s\n", n)
					return
				}
				resp := map[string]any{
					"mode": "exact", "count": n.String(), "engine": "local",
					"version": version,
				}
				c.fmu.Lock()
				resp["epoch"] = c.epoch
				c.fmu.Unlock()
				if fallback != "" {
					resp["fallback_reason"] = fallback
				}
				server.WriteJSON(w, http.StatusOK, resp)
				return
			case ctx.Err() != nil:
				c.writeCtxErr(w, ctx)
				return
			case errors.Is(err, repaircount.ErrBudget):
				adm = c.ladder.PriceApprox(cnt, adm)
			default:
				server.WriteErr(w, http.StatusInternalServerError, server.APIError{Code: "internal", Message: err.Error()})
				return
			}
		}

		if adm.Mode == server.AdmitApprox {
			est, err := cnt.ApproximateParallelCtx(ctx, c.cfg.Eps, c.cfg.Delta, c.cfg.CountWorkers, c.cfg.Seed)
			if err != nil {
				if ctx.Err() != nil {
					c.writeCtxErr(w, ctx)
					return
				}
				server.WriteErr(w, http.StatusInternalServerError, server.APIError{Code: "internal", Message: err.Error()})
				return
			}
			c.stats.approx.Add(1)
			if asText {
				w.Header().Set("Content-Type", "text/plain")
				fmt.Fprintf(w, "%s\n", est.Value.Text('f', 2))
				return
			}
			server.WriteJSON(w, http.StatusOK, map[string]any{
				"mode": "approx", "estimate": est.Value.Text('f', 2),
				"eps": c.cfg.Eps, "delta": c.cfg.Delta,
				"samples": est.Samples, "hits": est.Hits,
				"version": version,
			})
			return
		}

		c.stats.rejected.Add(1)
		server.WriteErr(w, http.StatusTooManyRequests, c.ladder.BudgetError(adm))
	})
}

func (c *Coordinator) handleDecide(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		cnt, err := c.counterFor(sl, qs)
		if err != nil {
			server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
			return
		}
		server.WriteJSON(w, http.StatusOK, map[string]any{
			"entailed": cnt.Decide(), "version": c.snap.Version(),
		})
	})
}

// handleExplain prices a probe without running it; for the partition
// query it additionally reports whether a fan-out would be sound and the
// fleet critical-path cost that would price its exact rung.
func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		cnt, err := c.counterFor(sl, qs)
		if err != nil {
			server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
			return
		}
		resp := map[string]any{"version": c.snap.Version()}
		var adm server.Admission
		if c.isPartitionQuery(qs) {
			fp := c.currentFanPlan()
			_, notReady := c.fleetReady()
			fanable := fp.ok && notReady == ""
			resp["fanout"] = fanable
			if fp.ok {
				resp["fleet_cost"] = fp.maxCost
			}
			switch {
			case !fp.ok:
				resp["fanout_reason"] = fp.reason
			case notReady != "":
				resp["fanout_reason"] = notReady
			}
			if fanable {
				adm = c.ladder.PriceCost(cnt, fp.maxCost)
			} else {
				adm = c.ladder.Price(cnt)
			}
		} else {
			resp["fanout"] = false
			adm = c.ladder.Price(cnt)
		}
		resp["admission"] = adm.Mode
		resp["engine"] = adm.Engine.String()
		if adm.PlannedCost != nil {
			resp["planned_cost"] = adm.PlannedCost.String()
		}
		if adm.SampleBound != nil {
			resp["sample_bound"] = adm.SampleBound.String()
			resp["eps"], resp["delta"] = c.cfg.Eps, c.cfg.Delta
		}
		if adm.Mode == server.AdmitReject {
			resp["reason"] = adm.Reason
		}
		server.WriteJSON(w, http.StatusOK, resp)
	})
}

func (c *Coordinator) handleTotal(w http.ResponseWriter, r *http.Request) {
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		total := c.snap.TotalRepairs()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain")
			fmt.Fprintf(w, "%s\n", total)
			return
		}
		server.WriteJSON(w, http.StatusOK, map[string]any{
			"total": total.String(), "version": c.snap.Version(),
		})
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	version := c.snap.Version()
	journalBytes := int64(0)
	if st, err := os.Stat(c.cfg.SnapshotPath); err == nil {
		journalBytes = st.Size() - c.baseLen
	}
	c.mu.RUnlock()
	opsOffset := int64(0)
	if c.tailer != nil {
		opsOffset = c.tailer.Offset()
	}
	c.fmu.Lock()
	workers := make([]map[string]any, len(c.fleet))
	for s, ws := range c.fleet {
		workers[s] = map[string]any{
			"url": ws.url, "down": ws.down, "stale": ws.stale,
			"last_ack": ws.lastAck, "pending": len(ws.pending),
		}
	}
	epoch := c.epoch
	mcrc := fmt.Sprintf("%016x", c.shards.ManifestCRC)
	c.fmu.Unlock()
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"epoch":            epoch,
		"manifest":         mcrc,
		"k":                len(c.fleet),
		"version":          version,
		"workers":          workers,
		"journal_bytes":    journalBytes,
		"applied_ops":      c.appliedOps.Load(),
		"journaled_ops":    c.journaled.Load(),
		"ops_offset":       opsOffset,
		"recovered_bytes":  c.recovered,
		"degraded":         c.degraded(),
		"probes":           c.stats.probes.Load(),
		"exact_probes":     c.stats.exact.Load(),
		"approx_probes":    c.stats.approx.Load(),
		"rejected_probes":  c.stats.rejected.Load(),
		"overloaded":       c.stats.overloaded.Load(),
		"deadline_expired": c.stats.deadline.Load(),
		"fanout_probes":    c.stats.fanouts.Load(),
		"local_fallback":   c.stats.localFallback.Load(),
		"integrity_errors": c.stats.integrity.Load(),
		"reshards":         c.stats.reshards.Load(),
	})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	if reason := c.degraded(); reason != "" {
		http.Error(w, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"

	"repaircount"
	"repaircount/internal/server"
)

// The coordinator's probe API mirrors the single-node daemon
// (internal/server) exactly — same endpoints, same admission ladder,
// same structured errors — with one addition: a /v1/count probe for the
// partition query fans out to the worker fleet when the fan-out is
// sound, and its exact rung is admitted on the FLEET CRITICAL PATH (the
// max over workers of their components' summed planned cost) instead of
// the local plan total, because shards count in parallel. Every other
// query, and every probe the fleet cannot soundly serve, runs on the
// coordinator's own snapshot — the cluster never answers worse than a
// single node.

// Handler routes the coordinator probe API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/count", c.handleCount)
	mux.HandleFunc("/v1/decide", c.handleDecide)
	mux.HandleFunc("/v1/explain", c.handleExplain)
	mux.HandleFunc("/v1/total", c.handleTotal)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/healthz", c.handleHealth)
	return mux
}

// withProbe runs fn on an acquired slot under the read lock, handling
// slot acquisition, queue overload and the probe deadline uniformly.
func (c *Coordinator) withProbe(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context, sl *server.Slot)) {
	c.stats.probes.Add(1)
	ctx, cancel := contextWithTimeout(r, c.cfg.Deadline)
	defer cancel()
	sl, err := c.pool.Acquire(ctx)
	if err != nil {
		if err == server.ErrOverloaded {
			c.stats.overloaded.Add(1)
			server.WriteErr(w, http.StatusServiceUnavailable, server.APIError{Code: "overloaded",
				Message: fmt.Sprintf("%d probes already queued", c.cfg.QueueDepth)})
			return
		}
		c.writeCtxErr(w, ctx)
		return
	}
	defer c.pool.Release(sl)
	c.mu.RLock()
	defer c.mu.RUnlock()
	fn(ctx, sl)
}

func (c *Coordinator) writeCtxErr(w http.ResponseWriter, ctx context.Context) {
	if ctx.Err() == context.DeadlineExceeded {
		c.stats.deadline.Add(1)
		server.WriteErr(w, http.StatusGatewayTimeout, server.APIError{Code: "deadline_exceeded",
			Message: fmt.Sprintf("probe exceeded the %s deadline", c.cfg.Deadline)})
		return
	}
	server.WriteErr(w, 499, server.APIError{Code: "canceled", Message: "client canceled the probe"})
}

// curEpoch reads the shard-set epoch. The caller holds c.mu.RLock, so
// the epoch cannot swing while the probe runs.
func (c *Coordinator) curEpoch() uint64 {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.epoch
}

// buildCounter parses and compiles one query against the coordinator's
// own snapshot. Caller holds c.mu.RLock.
func (c *Coordinator) buildCounter(qs string) (*repaircount.Counter, error) {
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		return nil, err
	}
	return c.snap.Counter(q)
}

// counterFor returns the slot's cached local counter for the query text.
// This is the cache-disabled fallback; with the shared cache on, probes
// go through acquireEntry. Caller holds c.mu.RLock.
func (c *Coordinator) counterFor(sl *server.Slot, qs string) (*repaircount.Counter, error) {
	return sl.Counter(c.curEpoch(), qs, c.buildCounter)
}

// acquireEntry locks the shared cache entry for qs, writing the
// transport answer on failure. Caller holds c.mu.RLock and must Release
// the entry when non-nil.
func (c *Coordinator) acquireEntry(w http.ResponseWriter, ctx context.Context, epoch uint64, qs string) *server.CacheEntry {
	ent, err := c.cache.Acquire(ctx, epoch, qs, c.buildCounter)
	if err != nil {
		if ctx.Err() != nil {
			c.writeCtxErr(w, ctx)
		} else {
			server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		}
		return nil
	}
	return ent
}

// price runs the single-node admission ladder, memoized per (epoch,
// version) when a cache entry is present. Fleet critical-path pricing
// (PriceCost) is never memoized: it depends on fleet health, not just
// the instance state — and it is a constant-time comparison anyway.
func (c *Coordinator) price(ent *server.CacheEntry, cnt *repaircount.Counter, epoch, version uint64) server.Admission {
	if ent == nil {
		return c.ladder.Price(cnt)
	}
	if adm, ok := ent.Admission(epoch, version); ok {
		return adm
	}
	adm := c.ladder.Price(cnt)
	ent.StoreAdmission(epoch, version, adm)
	return adm
}

// isPartitionQuery reports whether a probe's query is the fleet's
// partition query, by canonical rendering.
func (c *Coordinator) isPartitionQuery(qs string) bool {
	if qs == c.cfg.Query || qs == c.qs {
		return true
	}
	q, err := repaircount.ParseQuery(qs)
	if err != nil {
		return false
	}
	return fmt.Sprintf("%s", q) == c.qs
}

func (c *Coordinator) handleCount(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		version := c.snap.Version()
		epoch := c.curEpoch()
		var ent *server.CacheEntry
		var cnt *repaircount.Counter
		if c.cache != nil {
			if ent = c.acquireEntry(w, ctx, epoch, qs); ent == nil {
				return
			}
			defer c.cache.Release(ent)
			cnt = ent.Counter()
		} else {
			var err error
			if cnt, err = c.counterFor(sl, qs); err != nil {
				server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
				return
			}
		}

		// Decide the serving path: fleet fan-out needs the partition
		// query, a sound fan plan, and a synced, healthy fleet.
		var (
			fanable  bool
			fallback string
			fp       *fanPlan
			fv       *fleetView
		)
		if c.isPartitionQuery(qs) {
			fp = c.currentFanPlan()
			if !fp.ok {
				fallback = fp.reason
			} else if fv, fallback = c.fleetReady(); fallback == "" {
				fanable = true
			}
		}

		// Admission: the fleet serves the exact rung on its critical path;
		// everything else is priced like a single node.
		var adm server.Admission
		if fanable {
			adm = c.ladder.PriceCost(cnt, fp.maxCost)
		} else {
			adm = c.price(ent, cnt, epoch, version)
		}

		if adm.Mode == server.AdmitExact && fanable {
			str, err := c.fanOut(ctx, fv, fp.effOuter, ent, version)
			var ie *integrityError
			switch {
			case err == nil:
				c.stats.fanouts.Add(1)
				c.stats.exact.Add(1)
				server.WriteResult(w, r, str, map[string]any{
					"mode": "exact", "count": str, "engine": "fanout",
					"k": len(c.fleet), "version": version, "epoch": fv.epoch,
				})
				return
			case ctx.Err() != nil:
				c.writeCtxErr(w, ctx)
				return
			case errors.As(err, &ie):
				// A verified-stale or foreign partial: refusing loudly is
				// the contract — merging it could miscount.
				server.WriteErr(w, http.StatusBadGateway,
					server.APIError{Code: ie.code, Message: ie.err.Error()})
				return
			default:
				// Availability: a worker stayed down through the retry
				// budget. Degrade to local counting — still exact.
				fanable = false
				fallback = err.Error()
				fmt.Fprintf(os.Stderr, "cluster: fan-out failed, serving locally: %v\n", err)
			}
		}

		if adm.Mode == server.AdmitExact {
			c.stats.localFallback.Add(1)
			localResp := func(str string) map[string]any {
				resp := map[string]any{
					"mode": "exact", "count": str, "engine": "local",
					"version": version, "epoch": epoch,
				}
				if fallback != "" {
					resp["fallback_reason"] = fallback
				}
				return resp
			}
			if ent != nil {
				if res, ok := ent.Result(server.ResultCount, epoch, version); ok {
					c.stats.exact.Add(1)
					server.WriteResult(w, r, res.Str, localResp(res.Str))
					return
				}
			}
			n, err := cnt.CountShardedCtx(ctx, len(c.fleet), c.cfg.CountWorkers)
			switch {
			case err == nil:
				c.stats.exact.Add(1)
				str := n.String()
				if ent != nil {
					ent.StoreResult(server.ResultCount, epoch, version, server.CachedResult{N: n, Str: str})
				}
				server.WriteResult(w, r, str, localResp(str))
				return
			case ctx.Err() != nil:
				c.writeCtxErr(w, ctx)
				return
			case errors.Is(err, repaircount.ErrBudget):
				adm = c.ladder.PriceApprox(cnt, adm)
			default:
				server.WriteErr(w, http.StatusInternalServerError, server.APIError{Code: "internal", Message: err.Error()})
				return
			}
		}

		if adm.Mode == server.AdmitApprox {
			est, err := cnt.ApproximateParallelCtx(ctx, c.cfg.Eps, c.cfg.Delta, c.cfg.CountWorkers, c.cfg.Seed)
			if err != nil {
				if ctx.Err() != nil {
					c.writeCtxErr(w, ctx)
					return
				}
				server.WriteErr(w, http.StatusInternalServerError, server.APIError{Code: "internal", Message: err.Error()})
				return
			}
			c.stats.approx.Add(1)
			server.WriteResult(w, r, est.Value.Text('f', 2), map[string]any{
				"mode": "approx", "estimate": est.Value.Text('f', 2),
				"eps": c.cfg.Eps, "delta": c.cfg.Delta,
				"samples": est.Samples, "hits": est.Hits,
				"version": version,
			})
			return
		}

		c.stats.rejected.Add(1)
		server.WriteErr(w, http.StatusTooManyRequests, c.ladder.BudgetError(adm))
	})
}

func (c *Coordinator) handleDecide(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		version := c.snap.Version()
		var entailed bool
		if c.cache != nil {
			epoch := c.curEpoch()
			ent := c.acquireEntry(w, ctx, epoch, qs)
			if ent == nil {
				return
			}
			defer c.cache.Release(ent)
			res, ok := ent.Result(server.ResultDecide, epoch, version)
			if !ok {
				res = server.CachedResult{Entailed: ent.Counter().Decide()}
				res.Str = fmt.Sprintf("%v", res.Entailed)
				ent.StoreResult(server.ResultDecide, epoch, version, res)
			}
			entailed = res.Entailed
		} else {
			cnt, err := c.counterFor(sl, qs)
			if err != nil {
				server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
				return
			}
			entailed = cnt.Decide()
		}
		server.WriteResult(w, r, fmt.Sprintf("%v", entailed), map[string]any{
			"entailed": entailed, "version": version,
		})
	})
}

// handleExplain prices a probe without running it; for the partition
// query it additionally reports whether a fan-out would be sound and the
// fleet critical-path cost that would price its exact rung.
func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs, err := server.ProbeQuery(r)
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
		return
	}
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		version := c.snap.Version()
		epoch := c.curEpoch()
		var ent *server.CacheEntry
		var cnt *repaircount.Counter
		if c.cache != nil {
			if ent = c.acquireEntry(w, ctx, epoch, qs); ent == nil {
				return
			}
			defer c.cache.Release(ent)
			cnt = ent.Counter()
		} else {
			var err error
			if cnt, err = c.counterFor(sl, qs); err != nil {
				server.WriteErr(w, http.StatusBadRequest, server.APIError{Code: "bad_query", Message: err.Error()})
				return
			}
		}
		resp := map[string]any{"version": version}
		var adm server.Admission
		if c.isPartitionQuery(qs) {
			fp := c.currentFanPlan()
			_, notReady := c.fleetReady()
			fanable := fp.ok && notReady == ""
			resp["fanout"] = fanable
			if fp.ok {
				resp["fleet_cost"] = fp.maxCost
			}
			switch {
			case !fp.ok:
				resp["fanout_reason"] = fp.reason
			case notReady != "":
				resp["fanout_reason"] = notReady
			}
			if fanable {
				adm = c.ladder.PriceCost(cnt, fp.maxCost)
			} else {
				adm = c.price(ent, cnt, epoch, version)
			}
		} else {
			resp["fanout"] = false
			adm = c.price(ent, cnt, epoch, version)
		}
		resp["admission"] = adm.Mode
		resp["engine"] = adm.Engine.String()
		if adm.PlannedCost != nil {
			resp["planned_cost"] = adm.PlannedCost.String()
		}
		if adm.SampleBound != nil {
			resp["sample_bound"] = adm.SampleBound.String()
			resp["eps"], resp["delta"] = c.cfg.Eps, c.cfg.Delta
		}
		if adm.Mode == server.AdmitReject {
			resp["reason"] = adm.Reason
		}
		server.WriteJSON(w, http.StatusOK, resp)
	})
}

func (c *Coordinator) handleTotal(w http.ResponseWriter, r *http.Request) {
	c.withProbe(w, r, func(ctx context.Context, sl *server.Slot) {
		version := c.snap.Version()
		var str string
		if c.cache != nil {
			_, str = c.cache.Total(c.curEpoch(), version, c.snap.TotalRepairs)
		} else {
			str = c.snap.TotalRepairs().String()
		}
		server.WriteResult(w, r, str, map[string]any{
			"total": str, "version": version,
		})
	})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	version := c.snap.Version()
	journalBytes := int64(0)
	if st, err := os.Stat(c.cfg.SnapshotPath); err == nil {
		journalBytes = st.Size() - c.baseLen
	}
	c.mu.RUnlock()
	opsOffset := int64(0)
	if c.tailer != nil {
		opsOffset = c.tailer.Offset()
	}
	c.fmu.Lock()
	workers := make([]map[string]any, len(c.fleet))
	for s, ws := range c.fleet {
		workers[s] = map[string]any{
			"url": ws.url, "down": ws.down, "stale": ws.stale,
			"last_ack": ws.lastAck, "pending": len(ws.pending),
		}
	}
	epoch := c.epoch
	mcrc := fmt.Sprintf("%016x", c.shards.ManifestCRC)
	c.fmu.Unlock()
	var cs server.CacheStats
	if c.cache != nil {
		cs = c.cache.Stats()
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{
		"epoch":            epoch,
		"manifest":         mcrc,
		"k":                len(c.fleet),
		"version":          version,
		"workers":          workers,
		"journal_bytes":    journalBytes,
		"applied_ops":      c.appliedOps.Load(),
		"journaled_ops":    c.journaled.Load(),
		"ops_offset":       opsOffset,
		"recovered_bytes":  c.recovered,
		"degraded":         c.degraded(),
		"probes":           c.stats.probes.Load(),
		"exact_probes":     c.stats.exact.Load(),
		"approx_probes":    c.stats.approx.Load(),
		"rejected_probes":  c.stats.rejected.Load(),
		"overloaded":       c.stats.overloaded.Load(),
		"deadline_expired": c.stats.deadline.Load(),
		"fanout_probes":    c.stats.fanouts.Load(),
		"local_fallback":   c.stats.localFallback.Load(),
		"integrity_errors": c.stats.integrity.Load(),
		"reshards":         c.stats.reshards.Load(),
		"cache_hits":       cs.Hits,
		"cache_misses":     cs.Misses,
		"cache_evictions":  cs.Evictions,
		"cache_entries":    cs.Entries,
		"partial_hits":     c.stats.partialHits.Load(),
	})
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	if reason := c.degraded(); reason != "" {
		http.Error(w, "degraded: "+reason, http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// Package cluster is the distributed serving topology: one coordinator
// owning the full snapshot, the CQSM manifest and the ops tail, and a
// fleet of shard workers each mmapping one shard .cqs and answering
// digest-stamped partials. Counts served by the coordinator are
// bit-identical to the unsharded engine or a structured error — the
// topology is a throughput lever, never an approximation.
//
// # Wire format
//
// Workers and coordinator speak HTTP/JSON, except for partials, which
// travel in the CQSP version-2 text form so the wire artifact is the
// same digest-stamped unit the offline shard/count/merge pipeline
// exchanges (internal/store):
//
//	GET  /v1/partial                 → 200 text: "CQSP 2\nmanifest %016x\n
//	                                   shard S of K\nsnapshot %016x\n
//	                                   inner N\nnonent N\nepoch E\napplied A\n"
//	POST /v1/apply?epoch=E           body: "+ Fact\n" / "- Fact\n" lines
//	                                 → 200 {"epoch":E,"applied":V}
//	                                 → 409 {"error":{"code":"wrong_epoch"}} when
//	                                   E is not the worker's epoch
//	POST /v1/reload                  {"epoch","shard","k","manifest_path",
//	                                  "shard_path","manifest_crc"}
//	                                 → 200 {"epoch","shard","applied","snapshot"}
//	GET  /v1/stats, GET /healthz     observability; /healthz fails once the
//	                                 worker's write path degraded
//
// An unassigned worker (fresh start, no reload yet and no assignment
// sidecar) answers 503 {"error":{"code":"unassigned"}} on /v1/partial
// and /v1/apply until the coordinator reloads it.
//
// # Epoch semantics
//
// An epoch is one sharding of the coordinator's sealed snapshot. Its
// authoritative identity is the manifest digest (the CQSM trailer CRC);
// the numeric epoch exists for observability and cheap comparison. The
// coordinator bumps the epoch exactly when it re-shards — at startup and
// on journal compaction — writing fresh shard snapshots plus a manifest
// under ShardDir/epoch-N/ and swinging the fleet via /v1/reload. The
// swing is atomic with respect to probes: re-sharding holds the write
// side of the substrate lock, so in-flight probes drain against the old
// epoch before the manifest moves, and every later probe fans out under
// the new one.
//
// Between epochs, deltas stream to the affected shards only: the
// coordinator classifies each changed op by the placement map recorded
// at the epoch's birth (its shard's worker; shared blocks broadcast to
// every worker; blocks born after the epoch stay coordinator-only).
// Workers journal the changed ops into their own shard file with an
// fsync'd append *before* acking, and the ack carries the worker's
// instance version, so the coordinator always knows — and can verify —
// exactly how many mutations each worker's counts reflect.
//
// # The merge safety ladder
//
// Every partial must pass, in order: the offline CheckPartial gate
// (manifest digest, shard count, shard index, sealed shard digest), the
// epoch stamp (== the coordinator's current epoch), and the applied
// stamp (== the last version the worker acked). A failure anywhere is an
// integrity error — a loud 502 naming the stale or foreign partial —
// never a miscount. Availability failures (a dead or slow worker) are
// retried with bounded exponential backoff; a worker that stays down
// degrades that probe to single-node local counting on the coordinator's
// own snapshot, which is exact, and the maintenance loop heals the
// worker (reload + pending-delta replay) when it returns.
//
// Post-delta fan-outs stay exact through placement validation: before
// fanning out, the coordinator re-factorizes at the current version and
// checks the fresh partition against the physical placement — every
// fresh shared block replicated everywhere, every fresh component's
// blocks on one worker, every fresh excluded block either off the fleet
// (its size folds into the outer factor) or wholly on one worker (it
// folds into that worker's partial). If deltas have broken any of this,
// the probe — and all following ones until the next re-shard — counts
// locally instead. See fanout.go for the argument.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// contextWithTimeout derives a probe context from the request, bounded
// by the configured wall-clock deadline: client disconnects and the
// deadline both cancel the count through core.Stop.
func contextWithTimeout(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), d)
}

// applyResponse acknowledges one delta batch: the worker's epoch and its
// instance version after the batch was applied and journaled.
type applyResponse struct {
	Epoch   uint64 `json:"epoch"`
	Applied uint64 `json:"applied"`
}

// reloadRequest assigns a worker one shard of one epoch. Paths name
// files the worker can reach (the fleet shares a filesystem; a
// cross-host transport would ship the bytes instead, behind the same
// digest checks).
type reloadRequest struct {
	Epoch        uint64 `json:"epoch"`
	Shard        int    `json:"shard"`
	K            int    `json:"k"`
	ManifestPath string `json:"manifest_path"`
	ShardPath    string `json:"shard_path"`
	ManifestCRC  string `json:"manifest_crc"` // %016x
}

// reloadResponse reports the assignment the worker now serves.
type reloadResponse struct {
	Epoch    uint64 `json:"epoch"`
	Shard    int    `json:"shard"`
	Applied  uint64 `json:"applied"`
	Snapshot string `json:"snapshot"` // %016x sealed shard digest
}

// errorBody decodes a worker's structured error for coordinator-side
// classification.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Epoch   uint64 `json:"epoch"`
	} `json:"error"`
}

// decodeError extracts the structured error code from a non-2xx worker
// response body.
func decodeError(status int, body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		return fmt.Errorf("worker answered %d %s: %s", status, eb.Error.Code, eb.Error.Message)
	}
	return fmt.Errorf("worker answered HTTP %d", status)
}

// statusOK reports whether an HTTP status is a success.
func statusOK(status int) bool { return status >= 200 && status < 300 }

package cluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repaircount/internal/cluster"
	"repaircount/internal/workload"
)

// getURL fetches an absolute URL (a worker peer, not the coordinator
// front end) and decodes the JSON body.
func getURL(t *testing.T, u string) map[string]any {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return body
}

// TestCacheDifferentialCluster pins the coordinator's probe cache to the
// uncached coordinator byte for byte across live re-shards: two fleets
// over identical snapshot and ops copies evolve in lockstep one op at a
// time under CompactBytes: 1 (every batch re-shards, so cut epochs move),
// and after every step the raw body of every probe shape must be
// identical — including the memoized second probe of the cached fleet.
// It then pins the conditional partial fetches: a quiet fleet answers
// repeat fan-outs with 204 skips, the coordinator substitutes memoized
// partials, and both sides of that hand-off leave counters behind.
func TestCacheDifferentialCluster(t *testing.T) {
	db, ks, q := workload.MultiComponent(6, 8, 2)
	qs := q.String()
	atom := "C0('k0', 'v0')"

	mk := func(entries int) (*httptest.Server, string, []string) {
		dir := t.TempDir()
		path := writeSnapshot(t, dir, db, ks)
		opsPath := filepath.Join(dir, "updates.ops")
		if err := os.WriteFile(opsPath, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		peers := startWorkers(t, 4)
		_, ts := startCoordinator(t, cluster.Config{
			SnapshotPath: path,
			Query:        qs,
			Peers:        peers,
			ShardDir:     t.TempDir(),
			OpsPath:      opsPath,
			CompactBytes: 1, // every applied batch re-shards the fleet
			CacheEntries: entries,
		})
		return ts, opsPath, peers
	}
	cached, opsA, peers := mk(0)
	plain, opsB, _ := mk(-1)

	probes := []string{
		countURL(qs),                  // fan-out path
		countURL(qs) + "&format=text", // text tail of the same
		countURL(atom),                // local path
		"/v1/decide?q=" + url.QueryEscape(qs),
		"/v1/total",
	}
	compare := func(step int) {
		t.Helper()
		for _, p := range probes {
			sc, _, want := get(t, plain, p)
			sc2, _, got := get(t, cached, p)
			if sc != http.StatusOK || sc2 != http.StatusOK {
				t.Fatalf("step %d probe %s: status %d vs %d", step, p, sc, sc2)
			}
			if got != want {
				t.Fatalf("step %d probe %s: cached %q, uncached %q", step, p, got, want)
			}
			_, _, hit := get(t, cached, p)
			if hit != want {
				t.Fatalf("step %d probe %s: cache hit %q, uncached %q", step, p, hit, want)
			}
		}
	}

	compare(0)
	rng := rand.New(rand.NewPCG(21, 22))
	ops := workload.UpdateStream(rng, db, ks, 6, 0.6)
	var written int64
	for i, op := range ops {
		var sb strings.Builder
		if err := workload.FormatUpdates(&sb, []workload.Update{op}); err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{opsA, opsB} {
			f, err := os.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(sb.String()); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		written += int64(sb.Len())
		// Lockstep: both fleets drain the op and settle on the fresh cut
		// before the next op is written, so version and epoch trajectories
		// stay identical and the bodies can be compared raw.
		for _, ts := range []*httptest.Server{cached, plain} {
			waitStats(t, ts, fmt.Sprintf("op %d drained", i+1), fleetSynced(written))
		}
		_, stA, _ := get(t, cached, "/v1/stats")
		_, stB, _ := get(t, plain, "/v1/stats")
		if stA["epoch"] != stB["epoch"] {
			t.Fatalf("step %d: cut epochs diverged (%v vs %v); the differential is void", i+1, stA["epoch"], stB["epoch"])
		}
		compare(i + 1)
	}

	// The quiet fleet serves repeat fan-outs by 204-skipping unchanged
	// shards: the coordinator substitutes its memoized partials (still
	// digest-verified) and counts the reuse.
	if sc, body, _ := get(t, cached, countURL(qs)); sc != http.StatusOK || body["engine"] != "fanout" {
		t.Fatalf("settled fan-out probe: status %d body %v", sc, body)
	}
	_, st, _ := get(t, cached, "/v1/stats")
	if st["partial_hits"].(float64) == 0 {
		t.Fatalf("no partial reuse after repeat fan-outs over a quiet fleet: %v", st)
	}
	if st["cache_hits"].(float64) == 0 || st["cache_misses"].(float64) == 0 {
		t.Fatalf("coordinator cache counters did not move: %v", st)
	}
	var skips float64
	for _, p := range peers {
		skips += getURL(t, p+"/v1/stats")["partial_skips"].(float64)
	}
	if skips == 0 {
		t.Fatalf("no worker reported a 204 partial skip despite %v coordinator partial hits", st["partial_hits"])
	}
}

package ntt

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/core"
	"repaircount/internal/problems/dnf"
	"repaircount/internal/problems/graphs"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
)

// coinFlips is a toy machine: flip n coins, output them, accept if at
// least one head. Span = 2^n − 1 (all-tails rejected); accepting paths
// likewise 2^n − 1 (outputs distinct per path here).
type coinFlips struct{ n int }

func (m coinFlips) Run(ch Chooser) (string, bool) {
	out := make([]byte, m.n)
	heads := false
	for i := 0; i < m.n; i++ {
		if ch.Choose(2) == 1 {
			out[i] = 'H'
			heads = true
		} else {
			out[i] = 'T'
		}
	}
	return string(out), heads
}

func TestPathsEnumeratesAll(t *testing.T) {
	m := coinFlips{n: 3}
	seen := map[string]bool{}
	total := 0
	for c := range Paths(m) {
		total++
		seen[c.Output] = true
	}
	if total != 8 {
		t.Fatalf("paths = %d, want 8", total)
	}
	if len(seen) != 8 {
		t.Fatalf("distinct outputs = %d, want 8", len(seen))
	}
}

func TestSpanAndAccept(t *testing.T) {
	m := coinFlips{n: 4}
	span, err := Span(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(big.NewInt(15)) != 0 {
		t.Fatalf("span = %s, want 15", span)
	}
	acc, err := CountAccepting(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Cmp(big.NewInt(15)) != 0 {
		t.Fatalf("accept = %s, want 15", acc)
	}
}

// duplicated outputs: machine flips 2 coins but outputs only the first;
// span = 2 while accepting paths = 4.
type dupOutput struct{}

func (dupOutput) Run(ch Chooser) (string, bool) {
	a := ch.Choose(2)
	ch.Choose(2)
	if a == 1 {
		return "one", true
	}
	return "zero", true
}

func TestSpanDeduplicates(t *testing.T) {
	span, err := Span(dupOutput{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("span = %s, want 2", span)
	}
	acc, err := CountAccepting(dupOutput{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("accept = %s, want 4", acc)
	}
}

func TestBudgetExceeded(t *testing.T) {
	m := coinFlips{n: 10}
	if _, err := Span(m, 100); err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestPathsEarlyStop(t *testing.T) {
	n := 0
	for range Paths(coinFlips{n: 5}) {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("early stop failed")
	}
}

func exampleInstance(t testing.TB) *repairs.Instance {
	t.Helper()
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	)
	ks := relational.Keys(map[string]int{"Employee": 1})
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	return repairs.MustInstance(db, ks, q)
}

func TestAlgorithmOneSpanOnExample(t *testing.T) {
	in := exampleInstance(t)
	m := CQATransducer(in.UCQ, in.Keys, in.DB)
	span, err := Span(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("span(M(Q,Σ)) = %s, want #CQA = 2", span)
	}
	// Multiple certificates can witness one repair: accepting paths may
	// exceed the span, which is exactly why span (not accept) semantics is
	// needed (§3.2).
	acc, err := CountAccepting(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Cmp(span) < 0 {
		t.Fatalf("accepting paths %s < span %s", acc, span)
	}
}

func TestTheorem33NTMOnFOQuery(t *testing.T) {
	db := relational.MustDatabase(
		relational.NewFact("Var", "x1", "0"),
		relational.NewFact("Var", "x1", "1"),
		relational.NewFact("Var", "x2", "0"),
		relational.NewFact("Var", "x2", "1"),
	)
	ks := relational.Keys(map[string]int{"Var": 1})
	q := query.MustParse("!(Var('x1', '0') & Var('x2', '0'))")
	m := FORepairNTM(q, ks, db)
	acc, err := CountAccepting(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("accept_M = %s, want 3", acc)
	}
	// For the NTM of Theorem 3.3, every accepting computation builds a
	// distinct repair, so span equals accept here.
	span, err := Span(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(acc) != 0 {
		t.Fatalf("span %s != accept %s for the block-guessing NTM", span, acc)
	}
}

func TestGuessCheckExpandSpanEqualsUnfold(t *testing.T) {
	in := exampleInstance(t)
	c, err := in.Compactor()
	if err != nil {
		t.Fatal(err)
	}
	m := GuessCheckExpand(c)
	span, err := Span(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(exact) != 0 {
		t.Fatalf("GCE span = %s, unfold = %s", span, exact)
	}
}

// Theorem 4.3's Λ ⊆ SpanL direction holds for every problem family: the
// guess-check-expand machine of any compactor has span equal to its
// unfold count.
func TestGuessCheckExpandAcrossProblems(t *testing.T) {
	din := dnf.MustInstance(
		dnf.Formula{NumVars: 4, Width: 2, Clauses: []dnf.Clause{{0, 2}, {1}}},
		dnf.Partition{{0, 1}, {2, 3}},
	)
	nis, err := graphs.NonIndependentSets(graphs.Graph{N: 4, Edges: [][2]int{{0, 1}, {2, 3}, {1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*core.Compactor{
		"#DisjPoskDNF":        din.Compactor(),
		"#NonIndependentSets": nis,
	}
	for name, c := range cases {
		unfold, err := c.CountExact()
		if err != nil {
			t.Fatal(err)
		}
		span, err := Span(GuessCheckExpand(c), 0)
		if err != nil {
			t.Fatal(err)
		}
		if span.Cmp(unfold) != 0 {
			t.Errorf("%s: GCE span %s vs unfold %s", name, span, unfold)
		}
	}
}

// Theorem 7.3's SpanLL ⊆ SpanL direction: the guess-check-expand machine
// of an unbounded compactor (arbitrary selector lengths) also realizes its
// unfold as a span.
func TestGuessCheckExpandSpanLL(t *testing.T) {
	// One wide clause pinning all four classes plus one narrow clause:
	// the SpanLL shape of §7.2.
	in := dnf.MustInstance(
		dnf.Formula{NumVars: 8, Width: -1, Clauses: []dnf.Clause{{0, 2, 4, 6}, {1, 3}}},
		dnf.Partition{{0, 1}, {2, 3}, {4, 5}, {6, 7}},
	)
	c := in.Compactor()
	if c.K >= 0 {
		t.Fatalf("instance must be unbounded, K = %d", c.K)
	}
	unfold, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if unfold.Cmp(in.CountBruteForce()) != 0 {
		t.Fatalf("unfold %s vs brute force %s", unfold, in.CountBruteForce())
	}
	span, err := Span(GuessCheckExpand(c), 0)
	if err != nil {
		t.Fatal(err)
	}
	if span.Cmp(unfold) != 0 {
		t.Fatalf("SpanLL GCE span %s vs unfold %s", span, unfold)
	}
}

// randomInstance builds small random #CQA instances (mirrors the repairs
// package generator, kept small so path enumeration stays feasible).
func randomInstance(rng *rand.Rand) *repairs.Instance {
	db := relational.MustDatabase()
	nBlocks := 1 + rng.IntN(3)
	letters := []relational.Const{"a", "b"}
	for b := 0; b < nBlocks; b++ {
		sz := 1 + rng.IntN(2)
		for j := 0; j < sz; j++ {
			db.Add(relational.NewFact("R", relational.IntConst(b), letters[rng.IntN(2)]))
		}
	}
	for b := 0; b < rng.IntN(2); b++ {
		db.Add(relational.NewFact("S", letters[rng.IntN(2)]))
	}
	ks := relational.Keys(map[string]int{"R": 1, "S": 1})
	corpus := []string{
		"exists x, y . (R(x, y) & S(y))",
		"exists x . R(x, 'a')",
		"(exists x . R(x, 'b')) | (exists y . S(y))",
		"exists x, y . (R(x, 'a') & R(y, 'b'))",
	}
	q := query.MustParse(corpus[rng.IntN(len(corpus))])
	return repairs.MustInstance(db, ks, q)
}

// Property (Theorem 3.7 made executable): span of Algorithm 1 equals the
// exact repair count, and equals the guess-check-expand span of the
// Algorithm 2 compactor, on random instances.
func TestSpanEqualsExactCountProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		in := randomInstance(rng)
		exact, err := in.CountEnumUCQ(0)
		if err != nil {
			return false
		}
		span, err := Span(CQATransducer(in.UCQ, in.Keys, in.DB), 0)
		if err != nil {
			return false
		}
		if span.Cmp(exact) != 0 {
			t.Logf("seed %d: span=%s exact=%s q=%s db=\n%s", seed, span, exact, in.Q, in.DB)
			return false
		}
		c, err := in.Compactor()
		if err != nil {
			return false
		}
		gce, err := Span(GuessCheckExpand(c), 0)
		if err != nil {
			return false
		}
		return gce.Cmp(exact) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

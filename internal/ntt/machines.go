package ntt

import (
	"strconv"
	"strings"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// CQATransducer builds the logspace NTT M(Q,Σ) of Algorithm 1 for a UCQ
// and an input database: guess a disjunct and a mapping h from its
// variables to dom(D); reject unless h(Q_i) ⊆ D and h(Q_i) ⊨ Σ; then walk
// the block sequence B1,...,Bn in ≺(D,Σ) order, emitting the forced fact
// for keyed blocks hit by h(Q_i) and a guessed fact for every other block.
//
// Every accepting computation outputs a repair, facts from block i always
// appear at position i of the output, and a repair is output by some
// accepting computation iff it entails Q — so span(M) = #CQA(Q,Σ)(D)
// (Theorem 3.7).
func CQATransducer(u query.UCQ, ks *relational.KeySet, db *relational.Database) Machine {
	blocks := relational.Blocks(db, ks)
	idx := eval.IndexDatabase(db)
	dom := idx.Dom()
	blockIdx := relational.NewBlockIndex(blocks)
	return MachineFunc(func(ch Chooser) (string, bool) {
		if len(u.Disjuncts) == 0 {
			return "", false
		}
		qi := ch.Choose(len(u.Disjuncts))
		q := u.Disjuncts[qi]
		// Guess h: var(Q_i) → dom(D), one choice per variable.
		vars := q.Vars()
		h := eval.Binding{}
		for _, v := range vars {
			if len(dom) == 0 {
				return "", false
			}
			h[v] = dom[ch.Choose(len(dom))]
		}
		// Check: h(Q_i) ⊆ D and h(Q_i) ⊨ Σ.
		img := eval.Image(q, h)
		forced := map[int]relational.Fact{}
		for _, f := range img {
			if !idx.Contains(f) {
				return "", false
			}
			if !ks.HasKey(f.Pred) {
				continue
			}
			bi, inBlocks := blockIdx.Find(ks, f)
			if !inBlocks {
				return "", false // cannot happen: f ∈ D implies a block exists
			}
			if prev, ok := forced[bi]; ok && !prev.Equal(f) {
				return "", false // h(Q_i) violates Σ
			}
			forced[bi] = f
		}
		// Expand: output one fact per block in canonical order.
		var out strings.Builder
		for i, b := range blocks {
			if i > 0 {
				out.WriteByte('\n')
			}
			if f, ok := forced[i]; ok {
				out.WriteString(f.Canonical())
				continue
			}
			g := b.Facts[ch.Choose(len(b.Facts))]
			out.WriteString(g.Canonical())
		}
		return out.String(), true
	})
}

// FORepairNTM builds the Theorem 3.3 NTM for an arbitrary FO query: guess
// one fact per block (each computation builds a distinct repair, thanks to
// the fixed block order), then accept iff the repair satisfies Q. The
// number of accepting computations is #CQA(Q,Σ)(D), placing the problem in
// #P under the paper's conventions.
func FORepairNTM(q query.Formula, ks *relational.KeySet, db *relational.Database) Machine {
	blocks := relational.Blocks(db, ks)
	return MachineFunc(func(ch Chooser) (string, bool) {
		facts := make([]relational.Fact, len(blocks))
		for i, b := range blocks {
			facts[i] = b.Facts[ch.Choose(len(b.Facts))]
		}
		if !eval.EvalBoolean(q, eval.NewIndex(facts)) {
			return "", false
		}
		var out strings.Builder
		for i, f := range facts {
			if i > 0 {
				out.WriteByte('\n')
			}
			out.WriteString(f.Canonical())
		}
		return out.String(), true
	})
}

// GuessCheckExpand converts any compactor into an NTT following the
// guess-check-expand paradigm of §4.1: guess a candidate certificate,
// reject if invalid, then expand the compact representation by emitting
// pinned elements and guessing the rest. Its span equals unfold_M, which
// is the Λ ⊆ SpanL direction of Theorem 4.3.
func GuessCheckExpand(c *core.Compactor) Machine {
	// Materialize the candidate certificate list once (the paper's
	// certificates are O(log)-bit strings, i.e. polynomially many).
	var certs []core.Certificate
	for cert := range c.Certificates() {
		certs = append(certs, cert)
	}
	return MachineFunc(func(ch Chooser) (string, bool) {
		if len(certs) == 0 {
			return "", false
		}
		cert := certs[ch.Choose(len(certs))]
		sel, ok := c.Compact(cert)
		if !ok {
			return "", false
		}
		var out strings.Builder
		j := 0
		for i, d := range c.Doms {
			if i > 0 {
				out.WriteByte('$')
			}
			if j < len(sel) && sel[j].Index == i {
				out.WriteString(strconv.Quote(string(sel[j].Elem)))
				j++
				continue
			}
			out.WriteString(strconv.Quote(string(d.Elems[ch.Choose(d.Size())])))
		}
		return out.String(), true
	})
}

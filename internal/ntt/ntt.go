// Package ntt simulates nondeterministic transducers (NTTs) and implements
// the paper's machine constructions: Algorithm 1 (the logspace NTT M(Q,Σ)
// whose span is #CQA(Q,Σ), Theorem 3.7), the Theorem 3.3 NTM whose
// accepting computations count repairs entailing an FO query, and the
// generic guess-check-expand transducer derived from any compactor
// (the Λ ⊆ SpanL direction of Theorem 4.3).
//
// The simulator enumerates every computation path of a machine by replaying
// recorded choice sequences and advancing them like an odometer. Span
// semantics (SpanL) counts distinct accepting outputs; accept semantics
// (#L/#P) counts accepting paths.
package ntt

import (
	"fmt"
	"iter"
	"math/big"
)

// Chooser supplies nondeterministic choices to a running machine.
type Chooser interface {
	// Choose returns a branch index in [0,n); n must be at least 1.
	Choose(n int) int
}

// Machine is a nondeterministic transducer presented operationally: Run
// executes one computation, consulting the chooser at each branch point,
// and returns the output-tape contents plus whether the machine halted
// accepting. Run must be deterministic given the chooser's answers.
type Machine interface {
	Run(ch Chooser) (output string, accept bool)
}

// Computation is one complete run of a machine.
type Computation struct {
	Output string
	Accept bool
}

// ErrBudget reports that path enumeration exceeded its work budget.
var ErrBudget = fmt.Errorf("ntt: path enumeration exceeds budget")

// replayChooser replays a fixed prefix of choices, then extends with 0s,
// recording the fanout observed at every branch point.
type replayChooser struct {
	prefix  []int
	choices []int
	fanouts []int
	pos     int
}

func (c *replayChooser) Choose(n int) int {
	if n < 1 {
		panic("ntt: Choose with fanout < 1")
	}
	var v int
	if c.pos < len(c.prefix) {
		v = c.prefix[c.pos]
		if v >= n {
			panic("ntt: machine fanout changed between replays")
		}
	} else {
		v = 0
	}
	c.choices = append(c.choices, v)
	c.fanouts = append(c.fanouts, n)
	c.pos++
	return v
}

// Paths enumerates every computation path of the machine in depth-first
// order. Enumeration is exhaustive: the number of paths is the product of
// fanouts along each branch, so callers bound their machines.
func Paths(m Machine) iter.Seq[Computation] {
	return func(yield func(Computation) bool) {
		prefix := []int{}
		for {
			ch := &replayChooser{prefix: prefix}
			out, acc := m.Run(ch)
			if !yield(Computation{Output: out, Accept: acc}) {
				return
			}
			// Advance the odometer over the recorded choice sequence.
			i := len(ch.choices) - 1
			for ; i >= 0; i-- {
				if ch.choices[i]+1 < ch.fanouts[i] {
					break
				}
			}
			if i < 0 {
				return
			}
			prefix = append(prefix[:0], ch.choices[:i]...)
			prefix = append(prefix, ch.choices[i]+1)
		}
	}
}

// Span computes span_M: the number of distinct valid outputs over all
// accepting computations (the SpanL counting semantics). budget ≤ 0 means
// 4,000,000 paths.
func Span(m Machine, budget int) (*big.Int, error) {
	if budget <= 0 {
		budget = 4_000_000
	}
	outputs := map[string]bool{}
	paths := 0
	for c := range Paths(m) {
		paths++
		if paths > budget {
			return nil, ErrBudget
		}
		if c.Accept {
			outputs[c.Output] = true
		}
	}
	return big.NewInt(int64(len(outputs))), nil
}

// CountAccepting computes accept_M: the number of accepting computation
// paths (the #P/#L counting semantics). budget ≤ 0 means 4,000,000 paths.
func CountAccepting(m Machine, budget int) (*big.Int, error) {
	if budget <= 0 {
		budget = 4_000_000
	}
	n := new(big.Int)
	one := big.NewInt(1)
	paths := 0
	for c := range Paths(m) {
		paths++
		if paths > budget {
			return nil, ErrBudget
		}
		if c.Accept {
			n.Add(n, one)
		}
	}
	return n, nil
}

// MachineFunc adapts a function to the Machine interface.
type MachineFunc func(ch Chooser) (string, bool)

// Run implements Machine.
func (f MachineFunc) Run(ch Chooser) (string, bool) { return f(ch) }

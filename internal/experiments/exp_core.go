package experiments

import (
	"fmt"
	"math/big"

	"repaircount/internal/core"
	"repaircount/internal/ntt"
	"repaircount/internal/problems/graphs"
	"repaircount/internal/query"
	"repaircount/internal/reductions"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

func init() {
	register("E01", runE01)
	register("E03", runE03)
	register("E04", runE04)
	register("E05", runE05)
}

// exampleInstance is Example 1.1 of the paper.
func exampleInstance() *repairs.Instance {
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	)
	ks := relational.Keys(map[string]int{"Employee": 1})
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	return repairs.MustInstance(db, ks, q)
}

// E01 — Example 1.1: every algorithm reproduces total 4, count 2,
// frequency 1/2.
func runE01(p Params) (*Table, error) {
	in := exampleInstance()
	t := &Table{
		ID:      "E01",
		Title:   "Example 1.1 end to end",
		Claim:   "relative frequency of the same-department query is 1/2 (paper §1.1)",
		Columns: []string{"algorithm", "count", "time"},
	}
	algos := []struct {
		name string
		f    func() (*big.Int, error)
	}{
		{"block enumeration", func() (*big.Int, error) { return in.CountEnumUCQ(0) }},
		{"certificate inclusion-exclusion", func() (*big.Int, error) { return in.CountIE(0) }},
		{"Algorithm 2 compactor unfold", in.CountCompactor},
		{"FO enumeration", func() (*big.Int, error) { return in.CountEnumFO(0) }},
		{"Algorithm 1 NTT span", func() (*big.Int, error) {
			return ntt.Span(ntt.CQATransducer(in.UCQ, in.Keys, in.DB), 0)
		}},
	}
	for _, a := range algos {
		var n *big.Int
		d, err := timeIt(func() error {
			var err error
			n, err = a.f()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{a.name, bigStr(n), dur(d)})
	}
	freq, err := in.RelativeFrequency()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total repairs = %s, relative frequency = %s, decision = %v, kw = %d",
			in.TotalRepairs(), freq, in.HasRepairEntailing(), in.Keywidth()))
	return t, nil
}

// E03 — Theorem 3.7 / Algorithm 1: span(M(Q,Σ)) equals #CQA on random
// instances; accepting paths may exceed the span.
func runE03(p Params) (*Table, error) {
	t := &Table{
		ID:      "E03",
		Title:   "Algorithm 1 NTT span vs exact count",
		Claim:   "span of the logspace NTT M(Q,Σ) equals #CQA(Q,Σ) (Theorem 3.7)",
		Columns: []string{"instance", "repairs", "span", "exact", "accepting paths", "match"},
	}
	n := 8
	if p.Quick {
		n = 4
	}
	corpus := []string{
		"exists x, y . (R(x, y) & S(y))",
		"exists x . R(x, 'v0')",
		"(exists x . R(x, 'v1')) | (exists y . S(y))",
	}
	for i := 0; i < n; i++ {
		r := rng(p, uint64(100+i))
		db, ks, err := workload.Generate(r, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 1 + r.IntN(3), BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 2},
			{Pred: "S", KeyWidth: 1, Arity: 1, NumBlocks: r.IntN(2), BlockSizes: workload.Fixed{N: 1}, NumValues: 2},
		})
		if err != nil {
			return nil, err
		}
		in := repairs.MustInstance(db, ks, query.MustParse(corpus[i%len(corpus)]))
		exact, err := in.CountEnumUCQ(0)
		if err != nil {
			return nil, err
		}
		m := ntt.CQATransducer(in.UCQ, in.Keys, in.DB)
		span, err := ntt.Span(m, 0)
		if err != nil {
			return nil, err
		}
		acc, err := ntt.CountAccepting(m, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random-%d", i), bigStr(in.TotalRepairs()), bigStr(span),
			bigStr(exact), bigStr(acc), boolMark(span.Cmp(exact) == 0),
		})
	}
	t.Notes = append(t.Notes,
		"accepting paths ≥ span: distinct certificates can witness the same repair, which is why SpanL (distinct outputs), not #L (accepting paths), is the right semantics (§3.2).")
	return t, nil
}

// E04 — Theorem 5.1 membership / Algorithm 2: the compactor is a valid
// kw-compactor and its unfold equals #CQA, for kw = 0..4.
func runE04(p Params) (*Table, error) {
	t := &Table{
		ID:      "E04",
		Title:   "Algorithm 2 compactor: unfold = #CQA, selector length ≤ kw",
		Claim:   "#CQA(Q,Σ) ∈ Λ[kw(Q,Σ)] via the Algorithm 2 k-compactor (Theorem 5.1 membership)",
		Columns: []string{"kw", "blocks", "certificates", "distinct boxes", "unfold", "exact", "effective k", "match"},
	}
	maxK := 4
	if p.Quick {
		maxK = 2
	}
	for k := 0; k <= maxK; k++ {
		r := rng(p, uint64(200+k))
		q, ks := workload.KeywidthQuery(k)
		db := workload.KeywidthDatabase(r, k, 3, 1)
		in := repairs.MustInstance(db, ks, q)
		c, err := in.Compactor()
		if err != nil {
			return nil, err
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		nCerts := 0
		for range in.Certificates() {
			nCerts++
		}
		boxes := c.Boxes()
		unfold, err := c.CountExact()
		if err != nil {
			return nil, err
		}
		exact, err := in.CountEnumUCQ(0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", len(in.Blocks)),
			fmt.Sprintf("%d", nCerts), fmt.Sprintf("%d", len(boxes)),
			bigStr(unfold), bigStr(exact), fmt.Sprintf("%d", c.EffectiveK()),
			boolMark(unfold.Cmp(exact) == 0 && c.EffectiveK() <= k),
		})
	}
	return t, nil
}

// E05 — Theorem 5.1 hardness: the Selector/Element reduction maps Λ[k]
// problem instances to #CQA(Q_k, Σ_k) preserving the count exactly.
func runE05(p Params) (*Table, error) {
	t := &Table{
		ID:      "E05",
		Title:   "Λ[k] hardness reduction into #CQA(Q_k, Σ_k)",
		Claim:   "for every λ ∈ Λ[k], λ(x) = #CQA(Q_k,Σ_k)(D_x) (Theorem 5.1 hardness)",
		Columns: []string{"source problem", "k", "source count", "#CQA on D_x", "|D_x|", "match"},
	}
	r := rng(p, 300)
	nis, err := graphs.NonIndependentSets(workload.RandomGraph(r, 5, 0.5))
	if err != nil {
		return nil, err
	}
	sources := []struct {
		name string
		c    *core.Compactor
	}{
		{"#DisjPoskDNF", workload.RandomDisjDNF(r, 3, 3, 2, 4).Compactor()},
		{"#NonIndependentSets", nis},
		{"#kForbColoring", workload.RandomColoring(r, 4, 2, 2, 2, 2).Compactor()},
	}
	for _, s := range sources {
		want, err := s.c.CountExact()
		if err != nil {
			return nil, err
		}
		img, err := reductions.LambdaToCQA(s.c)
		if err != nil {
			return nil, err
		}
		in := repairs.MustInstance(img.DB, img.Keys, img.Q)
		got, _, err := in.CountExact()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			s.name, fmt.Sprintf("%d", s.c.K), bigStr(want), bigStr(got),
			fmt.Sprintf("%d facts", img.DB.Len()), boolMark(got.Cmp(want) == 0),
		})
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math/big"
	"strconv"

	"repaircount/internal/probdb"
	"repaircount/internal/problems/graphs"
	"repaircount/internal/query"
	"repaircount/internal/reductions"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

func init() {
	register("E09", runE09)
	register("E10", runE10)
	register("E13", runE13)
}

// E09 — Theorems 3.2/3.3: the 3SAT reduction into #CQA(FO) preserves
// counts and decisions.
func runE09(p Params) (*Table, error) {
	t := &Table{
		ID:      "E09",
		Title:   "3SAT → #CQA(FO) reduction",
		Claim:   "#CQA(FO) is #P-complete and #CQA>0(FO) NP-complete under ≤log_m via the SAT encoding (Theorems 3.2/3.3)",
		Columns: []string{"vars", "clauses", "#SAT", "#CQA", "satisfiable", "decide", "match", "time"},
	}
	shapes := []struct{ vars, clauses int }{
		{4, 6}, {6, 10}, {8, 14}, {10, 20},
	}
	if p.Quick {
		shapes = shapes[:2]
	}
	for i, s := range shapes {
		r := rng(p, uint64(900+i))
		f := workload.RandomCNF(r, s.vars, s.clauses)
		want := f.CountSatisfying()
		img, err := reductions.SATToCQAFO(f)
		if err != nil {
			return nil, err
		}
		in := repairs.MustInstance(img.DB, img.Keys, img.Q)
		var got fmt.Stringer
		d, err := timeIt(func() error {
			n, _, err := in.CountExact()
			got = n
			return err
		})
		if err != nil {
			return nil, err
		}
		decide := in.HasRepairEntailing()
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(s.vars), strconv.Itoa(s.clauses), want.String(), got.String(),
			boolMark(f.Satisfiable()), boolMark(decide),
			boolMark(got.String() == want.String() && decide == f.Satisfiable()), dur(d),
		})
	}
	return t, nil
}

// E10 — Theorems 7.1/7.2: the Λ[k]-complete problems count correctly
// through the compactor machinery and reduce into #CQA losslessly.
func runE10(p Params) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Λ[k]-complete problems: #DisjPoskDNF and #kForbColoring",
		Claim:   "both problems are Λ[k]-complete (Theorems 7.1/7.2); unfold = brute force = #CQA after reduction",
		Columns: []string{"problem", "k", "unfold", "brute force", "#CQA via reduction", "match"},
	}
	reps := 3
	if p.Quick {
		reps = 1
	}
	for i := 0; i < reps; i++ {
		r := rng(p, uint64(1000+i))
		din := workload.RandomDisjDNF(r, 4, 3, 2+i%2, 4)
		dc := din.Compactor()
		unfold, err := dc.CountExact()
		if err != nil {
			return nil, err
		}
		bf := din.CountBruteForce()
		img, err := reductions.LambdaToCQA(dc)
		if err != nil {
			return nil, err
		}
		viaCQA, _, err := repairs.MustInstance(img.DB, img.Keys, img.Q).CountExact()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"#DisjPoskDNF", strconv.Itoa(dc.K), bigStr(unfold), bigStr(bf), bigStr(viaCQA),
			boolMark(unfold.Cmp(bf) == 0 && unfold.Cmp(viaCQA) == 0),
		})
		cin := workload.RandomColoring(r, 4, 2, 3, 2, 2)
		cc := cin.Compactor()
		unfold, err = cc.CountExact()
		if err != nil {
			return nil, err
		}
		bf = cin.CountBruteForce()
		img, err = reductions.LambdaToCQA(cc)
		if err != nil {
			return nil, err
		}
		viaCQA, _, err = repairs.MustInstance(img.DB, img.Keys, img.Q).CountExact()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"#kForbColoring", strconv.Itoa(cc.K), bigStr(unfold), bigStr(bf), bigStr(viaCQA),
			boolMark(unfold.Cmp(bf) == 0 && unfold.Cmp(viaCQA) == 0),
		})
	}
	return t, nil
}

// E13 — §4.1's guess-check-expand problem list over graphs.
func runE13(p Params) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "guess-check-expand graph problems (§4.1)",
		Claim:   "non-independent sets, non-3-colorings and non-vertex-covers are Λ[2] problems solved by the same machinery",
		Columns: []string{"problem", "n", "edges", "unfold", "brute force", "match"},
	}
	n := 10
	if p.Quick {
		n = 7
	}
	r := rng(p, 1300)
	g := workload.RandomGraph(r, n, 0.35)
	nis, err := graphs.NonIndependentSets(g)
	if err != nil {
		return nil, err
	}
	nvc, err := graphs.NonVertexCovers(g)
	if err != nil {
		return nil, err
	}
	n3c, err := graphs.NonColorings(g, 3)
	if err != nil {
		return nil, err
	}
	cnt, err := nis.CountExact()
	if err != nil {
		return nil, err
	}
	want := graphs.BruteForceSubsets(g, func(in []bool) bool { return !graphs.IsIndependent(g, in) })
	t.Rows = append(t.Rows, []string{"non-independent sets", strconv.Itoa(g.N),
		strconv.Itoa(len(g.Edges)), bigStr(cnt), bigStr(want), boolMark(cnt.Cmp(want) == 0)})
	cnt, err = nvc.CountExact()
	if err != nil {
		return nil, err
	}
	want = graphs.BruteForceSubsets(g, func(in []bool) bool { return !graphs.IsVertexCover(g, in) })
	t.Rows = append(t.Rows, []string{"non-vertex-covers", strconv.Itoa(g.N),
		strconv.Itoa(len(g.Edges)), bigStr(cnt), bigStr(want), boolMark(cnt.Cmp(want) == 0)})
	cnt, err = n3c.CountExact()
	if err != nil {
		return nil, err
	}
	want = graphs.BruteForceColorings(g, 3)
	t.Rows = append(t.Rows, []string{"non-3-colorings", strconv.Itoa(g.N),
		strconv.Itoa(len(g.Edges)), bigStr(cnt), bigStr(want), boolMark(cnt.Cmp(want) == 0)})
	return t, nil
}

// E15 — the DisjPDB connection: #CQA equals P(Q)·∏|B| on the uniform
// probabilistic database (the approximation-preserving reduction after
// Corollary 6.4), and the [5]-style Karp–Luby estimator approximates P(Q).
func init() { register("E15", runE15) }

func runE15(p Params) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "#CQA ↔ disjoint-independent probabilistic databases",
		Claim:   "#CQA(Q,Σ)(D) = P(Q)·∏|B_i| over the uniform DisjPDB (reduction after Corollary 6.4)",
		Columns: []string{"instance", "P(Q)", "P·total", "#CQA", "KL estimate of P", "match"},
	}
	reps := 3
	if p.Quick {
		reps = 1
	}
	q := query.MustParse("exists x, y . (R(x, y) & R(x, 'v0'))")
	for i := 0; i < reps; i++ {
		r := rng(p, uint64(1500+i))
		db, ks, err := workload.Generate(r, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 4, BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 2},
		})
		if err != nil {
			return nil, err
		}
		in := repairs.MustInstance(db, ks, q)
		exact, _, err := in.CountExact()
		if err != nil {
			return nil, err
		}
		pd := probdb.FromRepairInstance(db, ks)
		prob, err := pd.QueryProbability(q)
		if err != nil {
			return nil, err
		}
		viaProb := new(big.Rat).Mul(prob, new(big.Rat).SetInt(in.TotalRepairs()))
		kl, err := pd.KarpLubyUCQ(in.UCQ, 4000, rng(p, uint64(1510+i)))
		if err != nil {
			return nil, err
		}
		klF, _ := kl.Float64()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random-%d", i), prob.RatString(), viaProb.RatString(), bigStr(exact),
			f64(klF), boolMark(viaProb.IsInt() && viaProb.Num().Cmp(exact) == 0),
		})
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"math/big"
	"strconv"

	"repaircount/internal/core"
	"repaircount/internal/problems/dnf"
	"repaircount/internal/query"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

func init() {
	register("E06", runE06)
	register("E07", runE07)
	register("E08", runE08)
	register("E12", runE12)
}

// E06 — Theorem 6.2: the FPRAS achieves relative error ≤ ε with frequency
// ≥ 1−δ across repeated trials.
func runE06(p Params) (*Table, error) {
	t := &Table{
		ID:      "E06",
		Title:   "FPRAS accuracy across ε",
		Claim:   "Pr(|Apx − #CQA| ≤ ε·#CQA) ≥ 1−δ (Theorem 6.2)",
		Columns: []string{"ε", "δ", "samples t", "trials", "within ε", "mean rel err", "max rel err"},
	}
	r := rng(p, 600)
	db, ks, err := workload.Generate(r, []workload.RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 6, BlockSizes: workload.Uniform{Lo: 2, Hi: 4}, NumValues: 3},
		{Pred: "S", KeyWidth: 1, Arity: 1, NumBlocks: 2, BlockSizes: workload.Fixed{N: 1}, NumValues: 3},
	})
	if err != nil {
		return nil, err
	}
	q := query.MustParse("exists x, y . (R(x, y) & R(x, 'v0'))")
	in := repairs.MustInstance(db, ks, q)
	exact, _, err := in.CountExact()
	if err != nil {
		return nil, err
	}
	if exact.Sign() == 0 {
		return nil, fmt.Errorf("experiments: degenerate E06 instance (count 0)")
	}
	c, err := in.Compactor()
	if err != nil {
		return nil, err
	}
	epss := []float64{0.5, 0.2, 0.1}
	trials := 30
	if p.Quick {
		epss = []float64{0.5, 0.2}
		trials = 8
	}
	const delta = 0.1
	for _, eps := range epss {
		within, sumErr, maxErr := 0, 0.0, 0.0
		samples := 0
		for trial := 0; trial < trials; trial++ {
			est, err := c.Apx(eps, delta, rng(p, uint64(610+trial)))
			if err != nil {
				return nil, err
			}
			samples = est.Samples
			rel := core.RelativeError(est.Value, exact)
			sumErr += rel
			if rel > maxErr {
				maxErr = rel
			}
			if rel <= eps {
				within++
			}
		}
		t.Rows = append(t.Rows, []string{
			f64(eps), f64(delta), strconv.Itoa(samples), strconv.Itoa(trials),
			fmt.Sprintf("%d/%d", within, trials), f64(sumErr / float64(trials)), f64(maxErr),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("exact count %s out of %s repairs; the Chernoff bound is conservative, so observed success rates sit well above 1−δ.", exact, in.TotalRepairs()))
	return t, nil
}

// E07 — the sample bound t = (2+ε)·m^k/ε²·ln(2/δ) grows like m^k with
// the keywidth (the price of sampling from the natural space).
func runE07(p Params) (*Table, error) {
	t := &Table{
		ID:      "E07",
		Title:   "FPRAS sample complexity grows like m^k",
		Claim:   "t = (2+ε)·m^k/ε²·ln(2/δ) (Theorem 6.2 proof)",
		Columns: []string{"kw k", "m", "m^k", "t", "hit rate", "est", "exact", "rel err", "time"},
	}
	maxK := 5
	if p.Quick {
		maxK = 3
	}
	const eps, delta = 0.25, 0.1
	const blockSize = 3
	for k := 1; k <= maxK; k++ {
		r := rng(p, uint64(700+k))
		q, ks := workload.KeywidthQuery(k)
		db := workload.KeywidthDatabase(r, k, blockSize, 0)
		in := repairs.MustInstance(db, ks, q)
		exact, _, err := in.CountExact()
		if err != nil {
			return nil, err
		}
		c, err := in.Compactor()
		if err != nil {
			return nil, err
		}
		var est core.Estimate
		d, err := timeIt(func() error {
			var err error
			est, err = c.Apx(eps, delta, rng(p, uint64(710+k)))
			return err
		})
		if err != nil {
			return nil, err
		}
		mk := new(big.Int).Exp(big.NewInt(blockSize), big.NewInt(int64(k)), nil)
		hitRate := float64(est.Hits) / float64(est.Samples)
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(k), strconv.Itoa(blockSize), bigStr(mk), strconv.Itoa(est.Samples),
			f64(hitRate), f64(est.Float64()), bigStr(exact),
			f64(core.RelativeError(est.Value, exact)), dur(d),
		})
	}
	t.Notes = append(t.Notes,
		"the hit rate is exactly m^-k on this worst-case family, so t must scale with m^k to keep the Chernoff guarantee — the reason the bound is polynomial only for bounded keywidth.")
	return t, nil
}

// E08 — paper FPRAS vs Karp–Luby [5] vs naive Monte-Carlo at comparable
// budgets.
func runE08(p Params) (*Table, error) {
	t := &Table{
		ID:      "E08",
		Title:   "sampler comparison: Algorithm 3 vs Karp–Luby vs naive MC",
		Claim:   "the paper's natural-space FPRAS matches the [5]-style estimator at its theoretical budget (§6, §8)",
		Columns: []string{"method", "samples", "estimate", "exact", "rel err", "time"},
	}
	r := rng(p, 800)
	// A DisjPoskDNF instance with a smallish satisfaction probability.
	in := workload.RandomDisjDNF(r, 6, 3, 3, 5)
	c := in.Compactor()
	exact, err := c.CountExact()
	if err != nil {
		return nil, err
	}
	if exact.Sign() == 0 {
		return nil, fmt.Errorf("experiments: degenerate E08 instance")
	}
	const eps, delta = 0.2, 0.1
	boxes := c.Boxes()
	klBudgetBig := core.KarpLubyBound(len(boxes), eps, delta)
	klBudget := int(klBudgetBig.Int64())
	naiveBudget := klBudget // same budget: how far does the natural space get?
	if p.Quick {
		naiveBudget = klBudget / 2
	}
	type method struct {
		name string
		run  func() (core.Estimate, error)
	}
	methods := []method{
		{"Algorithm 3 Apx (theorem t)", func() (core.Estimate, error) {
			return c.Apx(eps, delta, rng(p, 801))
		}},
		{"Karp–Luby (theorem t)", func() (core.Estimate, error) {
			return core.KarpLuby(c.Doms, boxes, klBudget, rng(p, 802))
		}},
		{"naive MC (KL budget)", func() (core.Estimate, error) {
			return c.ApxWithSamples(naiveBudget, rng(p, 803))
		}},
	}
	for _, m := range methods {
		var est core.Estimate
		d, err := timeIt(func() error {
			var err error
			est, err = m.run()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			m.name, strconv.Itoa(est.Samples), f64(est.Float64()),
			bigStr(exact), f64(core.RelativeError(est.Value, exact)), dur(d),
		})
	}
	t.Notes = append(t.Notes,
		"Algorithm 3's budget is m^k-sized while Karp–Luby's is #boxes-sized; both meet the (ε,δ) guarantee. The naive run shows what the natural space delivers when its budget is NOT scaled by m^k.")
	return t, nil
}

// E12 — SpanLL (§7.2): with unbounded clause width the natural-space
// sample bound m^k explodes while the Karp–Luby complex-space estimator
// keeps working.
func runE12(p Params) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "SpanLL: unbounded width defeats the natural sample space",
		Claim:   "SpanLL functions admit an FPRAS only via the complex sample space (Theorems 7.4/7.5)",
		Columns: []string{"clause width k", "m^k bound", "natural-space t", "KL t", "KL est", "exact", "KL rel err"},
	}
	widths := []int{2, 4, 8, 16}
	if p.Quick {
		widths = []int{2, 4}
	}
	const eps, delta = 0.25, 0.1
	const classSize = 3
	for _, k := range widths {
		// One clause spanning k classes: satisfaction probability 3^-k.
		nClasses := k
		var part [][]int
		n := 0
		for cla := 0; cla < nClasses; cla++ {
			var class []int
			for j := 0; j < classSize; j++ {
				class = append(class, n)
				n++
			}
			part = append(part, class)
		}
		var wide dnf.Clause
		for cla := 0; cla < k; cla++ {
			wide = append(wide, part[cla][0])
		}
		// A second, narrower clause keeps the union non-degenerate (two
		// disjoint boxes of very different sizes).
		narrow := dnf.Clause{part[0][1], part[1][1]}
		in := dnf.MustInstance(
			dnf.Formula{NumVars: n, Width: -1, Clauses: []dnf.Clause{wide, narrow}},
			dnf.Partition(part),
		)
		c := in.Compactor()
		exact, err := c.CountExact()
		if err != nil {
			return nil, err
		}
		mk := new(big.Int).Exp(big.NewInt(classSize), big.NewInt(int64(k)), nil)
		naturalT := core.SampleBound(classSize, k, eps, delta)
		klBudget := core.KarpLubyBound(len(c.Boxes()), eps, delta)
		kl, err := core.KarpLuby(c.Doms, c.Boxes(), int(klBudget.Int64()), rng(p, uint64(1200+k)))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(k), bigStr(mk), bigStr(naturalT), strconv.Itoa(kl.Samples),
			f64(kl.Float64()), bigStr(exact), f64(core.RelativeError(kl.Value, exact)),
		})
	}
	t.Notes = append(t.Notes,
		"natural-space t grows as 3^k (billions by k=16) while the Karp–Luby budget depends only on the number of boxes (here 2; the boxes are disjoint, so the coverage estimator is even exact). This is why SpanLL needs the complex sample space (§7.2).")
	return t, nil
}

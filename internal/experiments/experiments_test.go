package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and checks that (a) they complete, (b) every row that carries a "match"
// column reports agreement, and (c) tables render.
func TestAllExperimentsQuick(t *testing.T) {
	tables, err := RunAll(Params{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 14 {
		t.Fatalf("only %d experiments registered", len(tables))
	}
	for _, tab := range tables {
		matchCol := -1
		for i, c := range tab.Columns {
			if c == "match" {
				matchCol = i
			}
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d vs %d columns", tab.ID, len(row), len(tab.Columns))
			}
			if matchCol >= 0 && row[matchCol] != "yes" {
				t.Errorf("%s: mismatch row %v", tab.ID, row)
			}
		}
		var b strings.Builder
		tab.Render(&b)
		if !strings.Contains(b.String(), tab.ID) {
			t.Errorf("%s: render missing id", tab.ID)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Params{}); err == nil {
		t.Fatalf("unknown experiment accepted")
	}
}

func TestIDsSortedAndComplete(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
	want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
		"E09", "E10", "E11", "E12", "E13", "E14", "E15"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

// Package experiments implements the reproduction's experiment suite: one
// experiment per algorithmic claim of the paper, as indexed in DESIGN.md
// (E01–E14). The paper itself (PODS 2019 theory) contains no measurement
// tables; its §8 explicitly defers implementation and experiments to
// follow-up work, and this package is that experiment design. Each
// experiment returns a Table that cmd/cqabench renders and EXPERIMENTS.md
// records; bench_test.go at the repository root times the same code paths.
package experiments

import (
	"fmt"
	"math/big"
	"math/rand/v2"
	"sort"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim being exercised
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render prints the table in a fixed-width layout.
func (t *Table) Render(w *strings.Builder) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "Claim: %s\n\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(w, "| %-*s ", widths[i], cell)
		}
		w.WriteString("|\n")
	}
	line(t.Columns)
	for i, width := range widths {
		if i == 0 {
			w.WriteString("|")
		}
		w.WriteString(strings.Repeat("-", width+2))
		w.WriteString("|")
	}
	w.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	w.WriteString("\n")
}

// Params tunes experiment sizes.
type Params struct {
	// Seed drives all randomness (deterministic tables for fixed seeds).
	Seed uint64
	// Quick shrinks the workloads (used by tests and -quick).
	Quick bool
}

// Runner computes one experiment.
type Runner func(p Params) (*Table, error)

// registry maps experiment ids to runners, populated by init functions in
// the per-experiment files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, p Params) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(p)
}

// RunAll executes every experiment in id order.
func RunAll(p Params) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// helpers shared by the experiment files

func rng(p Params, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(p.Seed, stream))
}

// timeIt measures one execution.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), nil2(err)
}

func nil2(err error) error { return err }

func dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func bigStr(n *big.Int) string {
	if n == nil {
		return "-"
	}
	s := n.String()
	if len(s) > 24 {
		f := new(big.Float).SetInt(n)
		return f.Text('e', 3)
	}
	return s
}

func boolMark(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func f64(v float64) string { return fmt.Sprintf("%.4g", v) }

package experiments

import (
	"fmt"
	"math/big"
	"strconv"

	"repaircount/internal/query"
	"repaircount/internal/repairs"
	"repaircount/internal/workload"
)

func init() {
	register("E02", runE02)
	register("E11", runE11)
	register("E14", runE14)
}

// E02 — Theorem 3.4: the decision problem #CQA>0(∃FO⁺) stays cheap as the
// database grows, while exact counting by enumeration blows up; the safe
// plan (tractable dichotomy side) stays polynomial too.
func runE02(p Params) (*Table, error) {
	t := &Table{
		ID:      "E02",
		Title:   "decision vs exact counting as the database grows",
		Claim:   "#CQA>0(∃FO⁺) ∈ L (Theorem 3.4): deciding stays easy while counting by enumeration is exponential",
		Columns: []string{"blocks n", "repairs", "decide", "decide time", "safe plan", "safeplan time", "enum time"},
	}
	sizes := []int{4, 8, 12, 16, 20, 1 << 8, 1 << 11, 1 << 14}
	enumLimit := 20
	if p.Quick {
		sizes = []int{4, 8, 12, 1 << 8}
		enumLimit = 12
	}
	q := query.MustParse("exists x . R(x, 'a')")
	for _, n := range sizes {
		db, ks := workload.PairsDatabase(n)
		in := repairs.MustInstance(db, ks, q)
		var decided bool
		dDecide, err := timeIt(func() error {
			decided = in.HasRepairEntailing()
			return nil
		})
		if err != nil {
			return nil, err
		}
		var sp *big.Int
		dSafe, err := timeIt(func() error {
			var ok bool
			sp, ok = in.CountSafePlan()
			if !ok {
				return fmt.Errorf("experiments: query unexpectedly unsafe")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		enumCell := "skipped (2^n too large)"
		if n <= enumLimit {
			var enum *big.Int
			dEnum, err := timeIt(func() error {
				var err error
				enum, err = in.CountEnumUCQ(0)
				return err
			})
			if err != nil {
				return nil, err
			}
			if enum.Cmp(sp) != 0 {
				return nil, fmt.Errorf("experiments: enum %s != safeplan %s at n=%d", enum, sp, n)
			}
			enumCell = dur(dEnum)
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), bigStr(in.TotalRepairs()), boolMark(decided),
			dur(dDecide), bigStr(sp), dur(dSafe), enumCell,
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: decide and safeplan columns grow polynomially with n; the enumeration column doubles per block and must be cut off. The count is 2^n − 1 (all repairs except all-'b').")
	return t, nil
}

// E11 — Theorem 4.4(1): Λ[1] ⊆ #L; keywidth-1 queries count in
// polynomial time (here via the safe plan / closed form), far past where
// enumeration dies.
func runE11(p Params) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "keywidth-1 counting scales polynomially",
		Claim:   "Λ[1] ⊆ #L (Theorem 4.4(1)): kw=1 instances count in polynomial time",
		Columns: []string{"blocks n", "kw", "count", "safeplan time", "IE time", "Λ[1] closed form"},
	}
	sizes := []int{1 << 6, 1 << 9, 1 << 12, 1 << 15}
	if p.Quick {
		sizes = []int{1 << 6, 1 << 9}
	}
	// kw = 1 query: the single keyed ground atom R(k0,'hit').
	q, ks := workload.KeywidthQuery(1)
	for _, n := range sizes {
		r := rng(p, uint64(1100+n))
		db := workload.KeywidthDatabase(r, 1, 2, n-1) // n blocks of size 2
		in := repairs.MustInstance(db, ks, q)
		if got := in.Keywidth(); got != 1 {
			return nil, fmt.Errorf("experiments: kw = %d, want 1", got)
		}
		var sp *big.Int
		dSafe, err := timeIt(func() error {
			var ok bool
			sp, ok = in.CountSafePlan()
			if !ok {
				return fmt.Errorf("experiments: kw-1 query unexpectedly unsafe")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var ie *big.Int
		dIE, err := timeIt(func() error {
			var err error
			ie, err = in.CountIE(0)
			return err
		})
		if err != nil {
			return nil, err
		}
		if ie.Cmp(sp) != 0 {
			return nil, fmt.Errorf("experiments: IE %s != safeplan %s", ie, sp)
		}
		var l1 *big.Int
		dL1, err := timeIt(func() error {
			var err error
			l1, err = in.CountLambda1()
			return err
		})
		if err != nil {
			return nil, err
		}
		if l1.Cmp(sp) != 0 {
			return nil, fmt.Errorf("experiments: Λ[1] closed form %s != safeplan %s", l1, sp)
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), "1", bigStr(sp), dur(dSafe), dur(dIE), dur(dL1),
		})
	}
	t.Notes = append(t.Notes,
		"three polynomial algorithms agree: the safe plan, certificate inclusion–exclusion (a single box at kw=1), and the Λ[1] closed form |U| − ∏(|B_i| − pinned_i) — the executable content of Theorem 4.4(1).")
	return t, nil
}

// E14 — tractable side of the Maslowski–Wijsen dichotomy: a safe
// self-join-free join query counts polynomially via the safe plan while
// enumeration is exponential.
func runE14(p Params) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "safe-plan counting vs enumeration on a safe sjf join",
		Claim:   "the tractable side of the Maslowski–Wijsen dichotomy [8] counts in polynomial time",
		Columns: []string{"blocks per relation", "repairs", "count", "safeplan time", "enum time"},
	}
	// Q = ∃x (R(x,'v0') ∧ S(x,'v1')): x is a root variable (in both keys);
	// after grounding x the residue splits into two disjoint projects. The
	// value constraints keep the entailment probability strictly between 0
	// and 1, so the count is a non-trivial fraction of the repairs.
	q := query.MustParse("exists x . (R(x, 'v0') & S(x, 'v1'))")
	sizes := []int{4, 8, 10, 64, 256}
	enumLimit := 10
	if p.Quick {
		sizes = []int{4, 8, 64}
		enumLimit = 8
	}
	for _, n := range sizes {
		r := rng(p, uint64(1400+n))
		db, ks, err := workload.Generate(r, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: n, BlockSizes: workload.Fixed{N: 2}, NumValues: 3},
			{Pred: "S", KeyWidth: 1, Arity: 2, NumBlocks: n, BlockSizes: workload.Fixed{N: 2}, NumValues: 3},
		})
		if err != nil {
			return nil, err
		}
		in := repairs.MustInstance(db, ks, q)
		var sp *big.Int
		dSafe, err := timeIt(func() error {
			var ok bool
			sp, ok = in.CountSafePlan()
			if !ok {
				return fmt.Errorf("experiments: join query unexpectedly unsafe")
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		enumCell := "skipped (4^n too large)"
		if n <= enumLimit {
			var enum *big.Int
			dEnum, err := timeIt(func() error {
				var err error
				enum, err = in.CountEnumUCQ(0)
				return err
			})
			if err != nil {
				return nil, err
			}
			if enum.Cmp(sp) != 0 {
				return nil, fmt.Errorf("experiments: enum %s != safeplan %s at n=%d", enum, sp, n)
			}
			enumCell = dur(dEnum)
		}
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(n), bigStr(in.TotalRepairs()), bigStr(sp), dur(dSafe), enumCell,
		})
	}
	t.Notes = append(t.Notes,
		"R(x,y) ∧ S(x,z) shares only the key variable x: safe. Compare E02's hard pattern R(x,y) ∧ S(y) (nonkey join variable), which the planner refuses — that boundary is the dichotomy.")
	return t, nil
}

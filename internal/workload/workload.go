// Package workload generates the synthetic inputs used by the test suite,
// the examples and the benchmark harness: random inconsistent databases
// with controlled block-size distributions, the Employee scenario of the
// paper's Example 1.1 scaled up, query families of prescribed keywidth,
// random positive kDNF instances, hypergraph coloring instances, random
// graphs and random 3CNF formulas. All generators are deterministic given
// the caller's *rand.Rand.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/big"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"repaircount/internal/problems/coloring"
	"repaircount/internal/problems/dnf"
	"repaircount/internal/problems/graphs"
	"repaircount/internal/problems/sat"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Dist samples positive integers (block sizes).
type Dist interface {
	Sample(rng *rand.Rand) int
	String() string
}

// Fixed always returns N.
type Fixed struct{ N int }

// Sample implements Dist.
func (d Fixed) Sample(*rand.Rand) int { return d.N }
func (d Fixed) String() string        { return fmt.Sprintf("fixed(%d)", d.N) }

// Uniform returns integers uniformly in [Lo, Hi].
type Uniform struct{ Lo, Hi int }

// Sample implements Dist.
func (d Uniform) Sample(rng *rand.Rand) int {
	if d.Hi <= d.Lo {
		return d.Lo
	}
	return d.Lo + rng.IntN(d.Hi-d.Lo+1)
}
func (d Uniform) String() string { return fmt.Sprintf("uniform(%d..%d)", d.Lo, d.Hi) }

// Zipf returns 1 + a Zipf(s, v)-distributed value capped at Max: a few
// heavy blocks, a long tail of small ones — the shape of real dirty data.
type Zipf struct {
	S, V float64
	Max  int
}

// Sample implements Dist.
func (d Zipf) Sample(rng *rand.Rand) int {
	z := rand.NewZipf(rng, d.S, d.V, uint64(d.Max-1))
	return 1 + int(z.Uint64())
}
func (d Zipf) String() string { return fmt.Sprintf("zipf(s=%g,max=%d)", d.S, d.Max) }

// RelationSpec describes one generated relation.
type RelationSpec struct {
	Pred string
	// KeyWidth 0 declares no key (all facts certain). The generated key is
	// always the first attribute when KeyWidth = 1 (the common case).
	KeyWidth int
	// Arity is the total number of attributes (≥ KeyWidth, ≥ 1).
	Arity int
	// NumBlocks is the number of distinct key values (or facts when
	// unkeyed).
	NumBlocks int
	// BlockSizes samples the number of conflicting facts per block.
	BlockSizes Dist
	// NumValues is the size of the non-key value alphabet.
	NumValues int
}

// Generate builds a random database and key set from the specs.
func Generate(rng *rand.Rand, specs []RelationSpec) (*relational.Database, *relational.KeySet, error) {
	db := relational.MustDatabase()
	ks := relational.NewKeySet()
	for _, s := range specs {
		if s.Arity < 1 || s.KeyWidth < 0 || s.KeyWidth > s.Arity {
			return nil, nil, fmt.Errorf("workload: bad spec %+v", s)
		}
		if s.KeyWidth > 0 {
			if err := ks.Add(s.Pred, s.KeyWidth); err != nil {
				return nil, nil, err
			}
		}
		for b := 0; b < s.NumBlocks; b++ {
			size := s.BlockSizes.Sample(rng)
			if size < 1 {
				size = 1
			}
			if s.KeyWidth == 0 {
				size = 1 // unkeyed facts have no conflicts by construction
			}
			seen := map[string]bool{}
			for j := 0; j < size; j++ {
				args := make([]relational.Const, s.Arity)
				for a := 0; a < s.KeyWidth; a++ {
					args[a] = relational.Const("k" + strconv.Itoa(b))
				}
				for a := s.KeyWidth; a < s.Arity; a++ {
					args[a] = valueConst(rng.IntN(max(1, s.NumValues)))
				}
				if s.KeyWidth == 0 && s.Arity > 0 {
					// Make unkeyed facts distinct per block index.
					args[0] = relational.Const("u" + strconv.Itoa(b))
				}
				f := relational.Fact{Pred: s.Pred, Args: args}
				if seen[f.Canonical()] {
					continue // duplicate within block: block ends up smaller
				}
				seen[f.Canonical()] = true
				if err := db.Add(f); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	return db, ks, nil
}

func valueConst(i int) relational.Const {
	return relational.Const("v" + strconv.Itoa(i))
}

// PairsDatabase builds the scaling workload of experiments E2/E11: n
// blocks R(ki, 'a'|'b') of size 2 each, so the database has exactly 2^n
// repairs.
func PairsDatabase(n int) (*relational.Database, *relational.KeySet) {
	db := relational.MustDatabase()
	for i := 0; i < n; i++ {
		k := relational.Const("k" + strconv.Itoa(i))
		db.Add(relational.Fact{Pred: "R", Args: []relational.Const{k, "a"}})
		db.Add(relational.Fact{Pred: "R", Args: []relational.Const{k, "b"}})
	}
	return db, relational.Keys(map[string]int{"R": 1})
}

// Employee is the Example 1.1 scenario scaled: Employee(id, name, dept)
// with key(Employee) = {1}. A conflictRate fraction of employees have 2–3
// conflicting tuples (uncertain name or department).
func Employee(rng *rand.Rand, nEmployees, nDepts int, conflictRate float64) (*relational.Database, *relational.KeySet) {
	db := relational.MustDatabase()
	names := []relational.Const{"Alice", "Bob", "Carol", "Dan", "Eve", "Frank", "Grace", "Tim"}
	for id := 1; id <= nEmployees; id++ {
		idc := relational.IntConst(id)
		name := names[rng.IntN(len(names))]
		dept := deptConst(rng.IntN(nDepts))
		db.Add(relational.NewFact("Employee", idc, name, dept))
		if rng.Float64() < conflictRate {
			// A conflicting tuple: same id, different name or department.
			n2, d2 := name, dept
			if rng.IntN(2) == 0 {
				d2 = deptConst(rng.IntN(nDepts))
			} else {
				n2 = names[rng.IntN(len(names))]
			}
			if n2 != name || d2 != dept {
				db.Add(relational.NewFact("Employee", idc, n2, d2))
			}
			if rng.IntN(4) == 0 {
				db.Add(relational.NewFact("Employee", idc, names[rng.IntN(len(names))], deptConst(rng.IntN(nDepts))))
			}
		}
	}
	return db, relational.Keys(map[string]int{"Employee": 1})
}

func deptConst(i int) relational.Const {
	depts := []relational.Const{"HR", "IT", "Sales", "Legal", "R&D", "Ops"}
	return depts[i%len(depts)]
}

// SameDeptQuery asks whether employees id1 and id2 work in the same
// department (the query of Example 1.1).
func SameDeptQuery(id1, id2 int) query.Formula {
	src := fmt.Sprintf(
		"exists x, y, z . (Employee(%d, x, y) & Employee(%d, z, y))", id1, id2)
	return query.MustParse(src)
}

// MultiComponent builds a structured instance whose query-interaction
// graph has exactly nComponents independent components: predicates
// C0..C{n−1}, each with blocksPer conflict blocks of blockSize facts, and a
// query whose i-th disjunct joins two Ci blocks on their chosen values. The
// full repair space is blockSize^(nComponents·blocksPer) but each component
// couples only its own blocksPer blocks — the workload the factorized exact
// counter is built for, used by its benchmarks and differential tests.
func MultiComponent(nComponents, blocksPer, blockSize int) (*relational.Database, *relational.KeySet, query.Formula) {
	if blockSize < 2 {
		panic("workload: MultiComponent needs blockSize ≥ 2")
	}
	db := relational.MustDatabase()
	keys := map[string]int{}
	var disjuncts []string
	for c := 0; c < nComponents; c++ {
		pred := "C" + strconv.Itoa(c)
		keys[pred] = 1
		for b := 0; b < blocksPer; b++ {
			k := relational.Const("k" + strconv.Itoa(b))
			for v := 0; v < blockSize; v++ {
				db.Add(relational.Fact{Pred: pred, Args: []relational.Const{k, valueConst(v)}})
			}
		}
		disjuncts = append(disjuncts,
			fmt.Sprintf("(exists x, y . (%s(x, 'v0') & %s(y, 'v1')))", pred, pred))
	}
	q := query.MustParse(strings.Join(disjuncts, " | "))
	return db, relational.Keys(keys), q
}

// SkewedComponents builds a MultiComponent-style instance with a power-law
// component-size distribution — the adversarial case for the shard
// planner's cost bin-packing. Component i (predicate S{i}, key width 1)
// has b_i = max(2, ⌊maxBlocks / (i+1)^skew⌋) conflict blocks of size 2
// (choices 'v0'/'v1'), so component 0 dominates and the tail is tiny: a
// block-count-balanced partition would serialize the fleet behind the head
// component, while cost-balancing isolates it on its own shard. The query
// is the MultiComponent disjunction (component i entails iff some S{i}
// block picks 'v0' and another picks 'v1').
func SkewedComponents(nComponents, maxBlocks int, skew float64) (*relational.Database, *relational.KeySet, query.Formula) {
	if nComponents < 1 || maxBlocks < 2 || skew < 0 {
		panic("workload: SkewedComponents needs nComponents >= 1, maxBlocks >= 2 and skew >= 0")
	}
	db := relational.MustDatabase()
	keys := map[string]int{}
	var disjuncts []string
	for c := 0; c < nComponents; c++ {
		pred := "S" + strconv.Itoa(c)
		keys[pred] = 1
		for b := 0; b < skewedBlocks(c, maxBlocks, skew); b++ {
			k := relational.Const("k" + strconv.Itoa(b))
			for v := 0; v < 2; v++ {
				db.Add(relational.Fact{Pred: pred, Args: []relational.Const{k, valueConst(v)}})
			}
		}
		disjuncts = append(disjuncts,
			fmt.Sprintf("(exists x, y . (%s(x, 'v0') & %s(y, 'v1')))", pred, pred))
	}
	q := query.MustParse(strings.Join(disjuncts, " | "))
	return db, relational.Keys(keys), q
}

// skewedBlocks is the power-law block count of component i.
func skewedBlocks(i, maxBlocks int, skew float64) int {
	b := int(float64(maxBlocks) / math.Pow(float64(i+1), skew))
	if b < 2 {
		b = 2
	}
	return b
}

// SkewedComponentsCount returns #CQA of SkewedComponents in closed form.
// Component i avoids its disjunct iff all b_i blocks pick 'v0' or all pick
// 'v1', so #¬Q_c = 2 regardless of b_i and
// #Q = 2^{Σ_i b_i} − 2^{nComponents}.
func SkewedComponentsCount(nComponents, maxBlocks int, skew float64) *big.Int {
	total := 0
	for c := 0; c < nComponents; c++ {
		total += skewedBlocks(c, maxBlocks, skew)
	}
	n := new(big.Int).Lsh(big.NewInt(1), uint(total))
	return n.Sub(n, new(big.Int).Lsh(big.NewInt(1), uint(nComponents)))
}

// IEHeavy builds a structured instance in the few-boxes/large-component
// regime — the workload the exact-counting planner's component-local
// inclusion–exclusion engine exists for. Each of nComponents predicates
// P0..P{n−1} has blocksPer conflict blocks of size 2 (choices 'v0'/'v1'),
// and the query gives the component exactly nBoxes homomorphic-image
// boxes: ground disjunct j pins block 0 and the j-th contiguous segment of
// the remaining blocks to 'v0', so every box shares block 0 (the blocks
// form one connected component) while the segments partition the rest. The
// component's Gray walk costs 2^blocksPer states, its IE pass at most
// 2^nBoxes − 1 subset nodes, so forced Gray enumeration blows the budget
// at sizes the planner counts in microseconds. Requires
// 1 ≤ nBoxes < blocksPer.
func IEHeavy(nComponents, blocksPer, nBoxes int) (*relational.Database, *relational.KeySet, query.Formula) {
	if nComponents < 1 || blocksPer < 2 || nBoxes < 1 || nBoxes >= blocksPer {
		panic("workload: IEHeavy needs nComponents >= 1, blocksPer >= 2 and 1 <= nBoxes < blocksPer")
	}
	db := relational.MustDatabase()
	keys := map[string]int{}
	var disjuncts []string
	for c := 0; c < nComponents; c++ {
		pred := "P" + strconv.Itoa(c)
		keys[pred] = 1
		for b := 0; b < blocksPer; b++ {
			k := relational.Const("k" + strconv.Itoa(b))
			db.Add(relational.Fact{Pred: pred, Args: []relational.Const{k, "v0"}})
			db.Add(relational.Fact{Pred: pred, Args: []relational.Const{k, "v1"}})
		}
		for _, seg := range ieHeavySegments(blocksPer, nBoxes) {
			atoms := []string{fmt.Sprintf("%s('k0', 'v0')", pred)}
			for _, b := range seg {
				atoms = append(atoms, fmt.Sprintf("%s('k%d', 'v0')", pred, b))
			}
			disjuncts = append(disjuncts, "("+strings.Join(atoms, " & ")+")")
		}
	}
	q := query.MustParse(strings.Join(disjuncts, " | "))
	return db, relational.Keys(keys), q
}

// ieHeavySegments partitions blocks 1..blocksPer−1 into nBoxes contiguous
// near-equal runs, one per box.
func ieHeavySegments(blocksPer, nBoxes int) [][]int {
	rest := blocksPer - 1
	segs := make([][]int, nBoxes)
	next := 1
	for j := 0; j < nBoxes; j++ {
		n := rest / nBoxes
		if j < rest%nBoxes {
			n++
		}
		for i := 0; i < n; i++ {
			segs[j] = append(segs[j], next)
			next++
		}
	}
	return segs
}

// IEHeavyCount returns #CQA of IEHeavy(nComponents, blocksPer, nBoxes) in
// closed form. Per component, a choice vector avoids every box iff block 0
// picks 'v1' (2^{blocksPer−1} vectors) or block 0 picks 'v0' and every
// box's segment contains some 'v1' (Π_j (2^{s_j} − 1), segments disjoint),
// so #¬Q_c = 2^{blocksPer−1} + Π_j (2^{s_j} − 1) and
// #Q = 2^{nComponents·blocksPer} − (#¬Q_c)^{nComponents}.
func IEHeavyCount(nComponents, blocksPer, nBoxes int) *big.Int {
	nonent := new(big.Int).Lsh(big.NewInt(1), uint(blocksPer-1))
	broken := big.NewInt(1)
	for _, seg := range ieHeavySegments(blocksPer, nBoxes) {
		t := new(big.Int).Lsh(big.NewInt(1), uint(len(seg)))
		broken.Mul(broken, t.Sub(t, big.NewInt(1)))
	}
	nonent.Add(nonent, broken)
	total := new(big.Int).Lsh(big.NewInt(1), uint(nComponents*blocksPer))
	return total.Sub(total, nonent.Exp(nonent, big.NewInt(int64(nComponents)), nil))
}

// KeywidthQuery builds, together with its key set, a query of keywidth
// exactly k: ⋀ᵢ Ri('k0', 'hit') over k distinct keyed relations — each
// atom is satisfied only by the repair picking the designated witness fact
// of block k0, so on KeywidthDatabase instances the entailment probability
// is exactly blockSize^-k (the worst case driving the FPRAS sample bound).
func KeywidthQuery(k int) (query.Formula, *relational.KeySet) {
	ks := relational.NewKeySet()
	var conj []query.Formula
	for i := 1; i <= k; i++ {
		pred := "R" + strconv.Itoa(i)
		ks.MustAdd(pred, 1)
		conj = append(conj, query.AtomF{Atom: query.NewAtom(pred, query.C("k0"), query.C("hit"))})
	}
	if k == 0 {
		return query.Truth{Val: true}, ks
	}
	return query.Conj(conj...), ks
}

// KeywidthDatabase builds a database for KeywidthQuery(k): each Ri has
// extraBlocks+1 blocks of the given size; in block 'k0' exactly one fact
// carries the matching witness value 'hit'.
func KeywidthDatabase(rng *rand.Rand, k, blockSize, extraBlocks int) *relational.Database {
	db := relational.MustDatabase()
	for i := 1; i <= k; i++ {
		pred := "R" + strconv.Itoa(i)
		for b := 0; b <= extraBlocks; b++ {
			key := relational.Const("k" + strconv.Itoa(b))
			for j := 0; j < blockSize; j++ {
				val := relational.Const("miss" + strconv.Itoa(j))
				if b == 0 && j == 0 {
					val = "hit"
				}
				db.Add(relational.Fact{Pred: pred, Args: []relational.Const{key, val}})
			}
		}
	}
	return db
}

// Update is one operation of an update stream: the insertion (Del=false)
// or deletion (Del=true) of a fact.
type Update struct {
	Del  bool
	Fact relational.Fact
}

// UpdateStream generates n interleaved insert/delete operations that are
// valid against db evolving under the stream: every delete targets a fact
// live at that point, every insert is of a fact absent at that point.
// Roughly half the operations are deletes (when facts remain); of the
// inserts, a conflictRate fraction land in the conflict block of an
// existing fact (same key, fresh non-key values — raising that block's
// repair count), the rest open fresh blocks. The stream exercises every
// incremental-maintenance path: block growth, block birth, block shrink
// and block death. Deterministic for a fixed rng.
func UpdateStream(rng *rand.Rand, db *relational.Database, ks *relational.KeySet, n int, conflictRate float64) []Update {
	live := append([]relational.Fact(nil), db.FactsUnsorted()...)
	preds := make([]string, 0, len(db.Schema()))
	arity := db.Schema()
	for p := range arity {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	out := make([]Update, 0, n)
	fresh := 0
	for len(out) < n {
		if len(live) > 0 && rng.IntN(2) == 0 {
			j := rng.IntN(len(live))
			out = append(out, Update{Del: true, Fact: live[j]})
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		var f relational.Fact
		if base, ok := pickConflictBase(rng, live, ks, conflictRate); ok {
			kw, _ := ks.Width(base.Pred)
			args := append([]relational.Const(nil), base.Args...)
			for a := kw; a < len(args); a++ {
				args[a] = relational.Const("uv" + strconv.Itoa(fresh))
			}
			fresh++
			f = relational.Fact{Pred: base.Pred, Args: args}
		} else {
			var pred string
			var ar int
			if len(preds) > 0 {
				pred = preds[rng.IntN(len(preds))]
				ar = arity[pred]
			} else {
				pred, ar = "U", 2
			}
			args := make([]relational.Const, ar)
			for a := range args {
				args[a] = relational.Const("uk" + strconv.Itoa(fresh))
			}
			fresh++
			f = relational.Fact{Pred: pred, Args: args}
		}
		out = append(out, Update{Fact: f})
		live = append(live, f)
	}
	return out
}

// pickConflictBase selects a live fact whose block an insert can join with
// a genuinely conflicting tuple: the predicate needs a key narrower than
// its arity (a fully-keyed fact admits no distinct block-mate).
func pickConflictBase(rng *rand.Rand, live []relational.Fact, ks *relational.KeySet, rate float64) (relational.Fact, bool) {
	if len(live) == 0 || rng.Float64() >= rate {
		return relational.Fact{}, false
	}
	for try := 0; try < 8; try++ {
		f := live[rng.IntN(len(live))]
		if w, ok := ks.Width(f.Pred); ok && w < len(f.Args) {
			return f, true
		}
	}
	return relational.Fact{}, false
}

// Probe is one admission probe for the serve daemon: a query text and the
// outcome the admission ladder must choose for it under the stream's
// stated exact budget — "exact", "approx" or "reject".
type Probe struct {
	Expect string
	Query  string
}

// ProbeStream builds a MultiComponent base instance (nComponents
// components, blocksPer size-2 blocks each) plus a probe stream covering
// every rung of the serve admission ladder, with the exact budget the
// outcomes are guaranteed under:
//
//   - exact — ground atoms, closed-form under the safe plan at zero
//     priced work, admitted under any budget;
//   - approx — the full cross-component disjunction, whose planned exact
//     work is at least 2^blocksPer per component and therefore exceeds
//     the returned budget of nComponents, degrading to the FPRAS;
//   - reject — a negation, outside existential positive FO: no FPRAS
//     exists, and with 2^(nComponents·blocksPer) repairs the enumeration
//     fallback also exceeds the budget, so the probe must be refused.
func ProbeStream(nComponents, blocksPer int) (*relational.Database, *relational.KeySet, int64, []Probe) {
	return ProbeStreamDistinct(nComponents, blocksPer, 0)
}

// ProbeStreamDistinct is ProbeStream with a query working-set knob:
// distinct > 0 replaces the default one-exact-probe-per-component set
// with exactly `distinct` DISTINCT ground-atom exact probes, cycling
// through components, keys and values — so cache hit rates under a
// mixed probe stream are shaped deterministically. The instance has
// nComponents·blocksPer·2 distinct ground atoms; asking for more
// panics. distinct == 0 keeps the default set.
func ProbeStreamDistinct(nComponents, blocksPer, distinct int) (*relational.Database, *relational.KeySet, int64, []Probe) {
	if nComponents < 1 || blocksPer < 2 {
		panic("workload: ProbeStream needs nComponents >= 1 and blocksPer >= 2")
	}
	if distinct > nComponents*blocksPer*2 {
		panic(fmt.Sprintf("workload: ProbeStreamDistinct can shape at most %d distinct ground-atom probes (nComponents*blocksPer*2), asked for %d",
			nComponents*blocksPer*2, distinct))
	}
	db, ks, _ := MultiComponent(nComponents, blocksPer, 2)
	budget := int64(nComponents)
	var probes []Probe
	if distinct > 0 {
		for i := 0; i < distinct; i++ {
			c := i % nComponents
			b := (i / nComponents) % blocksPer
			v := i / (nComponents * blocksPer)
			probes = append(probes, Probe{Expect: "exact", Query: fmt.Sprintf("C%d('k%d', 'v%d')", c, b, v)})
		}
	} else {
		for c := 0; c < nComponents; c++ {
			probes = append(probes, Probe{Expect: "exact", Query: fmt.Sprintf("C%d('k0', 'v0')", c)})
		}
	}
	var parts []string
	for c := 0; c < nComponents; c++ {
		parts = append(parts, fmt.Sprintf("(exists x, y . (C%d(x, 'v0') & C%d(y, 'v1')))", c, c))
	}
	probes = append(probes, Probe{Expect: "approx", Query: strings.Join(parts, " | ")})
	probes = append(probes, Probe{Expect: "reject", Query: "!C0('k0', 'v0')"})
	return db, ks, budget, probes
}

// FormatProbes writes a probe stream: an "# exact-budget: N" header the
// consumer must configure the daemon with, then one "expect<TAB>query"
// line per probe.
func FormatProbes(w io.Writer, exactBudget int64, probes []Probe) error {
	if _, err := fmt.Fprintf(w, "# exact-budget: %d\n", exactBudget); err != nil {
		return err
	}
	for _, p := range probes {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", p.Expect, p.Query); err != nil {
			return err
		}
	}
	return nil
}

// FormatUpdates writes an update stream in the text op format consumed by
// repairctl apply: one op per line, "+ Fact" for inserts and "- Fact" for
// deletes, facts in the codec syntax.
func FormatUpdates(w io.Writer, ops []Update) error {
	for _, op := range ops {
		sign := "+"
		if op.Del {
			sign = "-"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sign, op.Fact.Canonical()); err != nil {
			return err
		}
	}
	return nil
}

// ParseUpdates reads the text op format back (blank lines and # comments
// are skipped).
func ParseUpdates(r io.Reader) ([]Update, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ops []Update
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var del bool
		switch {
		case strings.HasPrefix(line, "+"):
		case strings.HasPrefix(line, "-"):
			del = true
		default:
			return nil, fmt.Errorf("workload: line %d: want '+ Fact' or '- Fact', got %q", lineNo, line)
		}
		f, err := relational.ParseFact(strings.TrimSpace(line[1:]))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		ops = append(ops, Update{Del: del, Fact: f})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	return ops, nil
}

// ProbAnnotation is one per-fact probability annotation of a prob stream:
// the fact and its non-negative weight. Within one conflict block the
// weights normalize to the block's choice distribution (the disjoint-
// independent probabilistic-database reading; see internal/probdb and the
// weighted counters of internal/repairs).
type ProbAnnotation struct {
	Fact   relational.Fact
	Weight float64
}

// ProbStream annotates every fact of db with a deterministic pseudo-random
// dyadic weight k/16, k ∈ 1..16. Dyadic weights are exact in float64 AND
// in big.Rat, so a stream round-trips through its text form bit-exactly
// and the interval-arithmetic weighted counters can be pinned against
// exact rational ground truth without representation slack. Facts are
// visited in canonical order, so the stream is deterministic for a fixed
// rng.
func ProbStream(rng *rand.Rand, db *relational.Database) []ProbAnnotation {
	facts := db.Facts()
	out := make([]ProbAnnotation, len(facts))
	for i, f := range facts {
		out[i] = ProbAnnotation{Fact: f, Weight: float64(1+rng.IntN(16)) / 16}
	}
	return out
}

// FormatProbAnnotations writes a prob stream in the text format consumed
// by `repairctl serve -probs`: one "weight<TAB>fact" line per annotation,
// the weight rendered with strconv 'g'/-1 so parsing recovers the exact
// float64.
func FormatProbAnnotations(w io.Writer, anns []ProbAnnotation) error {
	for _, a := range anns {
		if _, err := fmt.Fprintf(w, "%s\t%s\n", strconv.FormatFloat(a.Weight, 'g', -1, 64), a.Fact.Canonical()); err != nil {
			return err
		}
	}
	return nil
}

// ParseProbAnnotations reads the prob-stream text format back (blank
// lines and # comments are skipped). Weights must be finite and ≥ 0; a
// duplicate annotation for one fact is an error rather than a silent
// last-writer-wins.
func ParseProbAnnotations(r io.Reader) ([]ProbAnnotation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var anns []ProbAnnotation
	seen := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		weight, fact, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("workload: line %d: want 'weight<TAB>Fact', got %q", lineNo, line)
		}
		x, err := strconv.ParseFloat(strings.TrimSpace(weight), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad weight: %w", lineNo, err)
		}
		if math.IsInf(x, 0) || math.IsNaN(x) || x < 0 {
			return nil, fmt.Errorf("workload: line %d: weight %v out of range (want finite ≥ 0)", lineNo, x)
		}
		f, err := relational.ParseFact(strings.TrimSpace(fact))
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		if seen[f.Canonical()] {
			return nil, fmt.Errorf("workload: line %d: duplicate annotation for %s", lineNo, f)
		}
		seen[f.Canonical()] = true
		anns = append(anns, ProbAnnotation{Fact: f, Weight: x})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read: %w", err)
	}
	return anns, nil
}

// AnnotationMap renders a prob stream as the canonical-fact-text → weight
// map the Counter.FactWeights facade consumes.
func AnnotationMap(anns []ProbAnnotation) map[string]float64 {
	m := make(map[string]float64, len(anns))
	for _, a := range anns {
		m[a.Fact.Canonical()] = a.Weight
	}
	return m
}

// RandomCNF builds a random 3CNF formula.
func RandomCNF(rng *rand.Rand, nVars, nClauses int) sat.CNF {
	f := sat.CNF{NumVars: nVars}
	for c := 0; c < nClauses; c++ {
		var cl sat.Clause
		for j := 0; j < 3; j++ {
			cl[j] = sat.Literal{Var: rng.IntN(nVars), Neg: rng.IntN(2) == 0}
		}
		f.Clauses = append(f.Clauses, cl)
	}
	return f
}

// RandomDisjDNF builds a random #DisjPoskDNF instance with the given
// number of classes, maximum class size, clause width and clause count.
func RandomDisjDNF(rng *rand.Rand, nClasses, maxClassSize, width, nClauses int) *dnf.Instance {
	var p dnf.Partition
	n := 0
	for c := 0; c < nClasses; c++ {
		sz := 1 + rng.IntN(maxClassSize)
		var class []int
		for j := 0; j < sz; j++ {
			class = append(class, n)
			n++
		}
		p = append(p, class)
	}
	f := dnf.Formula{NumVars: n, Width: width}
	for c := 0; c < nClauses; c++ {
		sz := 1 + rng.IntN(max(1, width))
		clause := make(dnf.Clause, 0, sz)
		for j := 0; j < sz; j++ {
			clause = append(clause, rng.IntN(n))
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return dnf.MustInstance(f, p)
}

// RandomGraph builds a G(n, p)-style random graph.
func RandomGraph(rng *rand.Rand, n int, p float64) graphs.Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graphs.Graph{N: n, Edges: edges}
}

// RandomColoring builds a random #kForbColoring instance.
func RandomColoring(rng *rand.Rand, nVertices, k, nEdges, nColors, maxForbidden int) *coloring.Instance {
	palette := make([]coloring.Color, nColors)
	for i := range palette {
		palette[i] = coloring.Color("col" + strconv.Itoa(i))
	}
	colors := make([][]coloring.Color, nVertices)
	for v := range colors {
		colors[v] = append([]coloring.Color{}, palette[:1+rng.IntN(nColors)]...)
	}
	var edges [][]int
	for e := 0; e < nEdges; e++ {
		edges = append(edges, rng.Perm(nVertices)[:k])
	}
	h := coloring.Hypergraph{N: nVertices, K: k, Edges: edges}
	forb := make([][]coloring.Forbidden, len(edges))
	for ei := range forb {
		for f := 0; f < 1+rng.IntN(max(1, maxForbidden)); f++ {
			nu := make(coloring.Forbidden, k)
			for j := range nu {
				nu[j] = palette[rng.IntN(nColors)]
			}
			forb[ei] = append(forb[ei], nu)
		}
	}
	return coloring.MustInstance(h, colors, forb)
}

package workload

import (
	"math/big"
	"math/rand/v2"
	"strings"
	"testing"

	"repaircount/internal/relational"
	"repaircount/internal/repairs"
)

func TestGenerateRespectsSpec(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	db, ks, err := Generate(rng, []RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 5, BlockSizes: Fixed{N: 3}, NumValues: 10},
		{Pred: "U", KeyWidth: 0, Arity: 1, NumBlocks: 4, BlockSizes: Fixed{N: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := relational.Blocks(db, ks)
	rBlocks := 0
	for _, b := range blocks {
		if b.Key.Pred == "R" {
			rBlocks++
			if b.Size() > 3 || b.Size() < 1 {
				t.Fatalf("R block size %d outside [1,3]", b.Size())
			}
		}
		if b.Key.Pred == "U" && b.Size() != 1 {
			t.Fatalf("unkeyed block size %d, want 1", b.Size())
		}
	}
	if rBlocks != 5 {
		t.Fatalf("R blocks = %d, want 5", rBlocks)
	}
	if !ks.HasKey("R") || ks.HasKey("U") {
		t.Fatalf("key set wrong: %v", ks)
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	if _, _, err := Generate(rng, []RelationSpec{{Pred: "R", KeyWidth: 3, Arity: 2, NumBlocks: 1, BlockSizes: Fixed{N: 1}}}); err == nil {
		t.Fatalf("key wider than arity accepted")
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	if (Fixed{N: 7}).Sample(rng) != 7 {
		t.Fatalf("Fixed broken")
	}
	for i := 0; i < 100; i++ {
		v := (Uniform{Lo: 2, Hi: 5}).Sample(rng)
		if v < 2 || v > 5 {
			t.Fatalf("Uniform out of range: %d", v)
		}
		z := (Zipf{S: 1.5, V: 1, Max: 8}).Sample(rng)
		if z < 1 || z > 8 {
			t.Fatalf("Zipf out of range: %d", z)
		}
	}
}

func TestPairsDatabase(t *testing.T) {
	db, ks := PairsDatabase(10)
	if got := relational.NumRepairs(db, ks); got.Cmp(new(big.Int).Lsh(big.NewInt(1), 10)) != 0 {
		t.Fatalf("pairs database must have 2^10 repairs, got %s", got)
	}
}

func TestEmployeeScenario(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	db, ks := Employee(rng, 50, 4, 0.4)
	if db.Len() < 50 {
		t.Fatalf("employee database too small: %d", db.Len())
	}
	q := SameDeptQuery(1, 2)
	in := repairs.MustInstance(db, ks, q)
	n, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(in.TotalRepairs()) > 0 {
		t.Fatalf("count exceeds total")
	}
}

func TestKeywidthFamily(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for k := 0; k <= 4; k++ {
		q, ks := KeywidthQuery(k)
		db := KeywidthDatabase(rng, k, 3, 2)
		in := repairs.MustInstance(db, ks, q)
		if got := in.Keywidth(); got != k {
			t.Fatalf("kw = %d, want %d", got, k)
		}
		n, _, err := in.CountExact()
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 && n.Sign() == 0 {
			t.Fatalf("k=%d: count must be positive (hit witness present)", k)
		}
		// Each Ri has a hit in exactly 1 of 3 facts of block k0:
		// P(Q) = (1/3)^k, total = 3^(3k) → count = 3^(3k)·3^-k = 3^(2k).
		want := new(big.Int).Exp(big.NewInt(3), big.NewInt(int64(2*k)), nil)
		if n.Cmp(want) != 0 {
			t.Fatalf("k=%d: count = %s, want %s", k, n, want)
		}
	}
}

func TestIEHeavyFamily(t *testing.T) {
	// Structure: each component contributes blocksPer size-2 blocks, all
	// facts are query-relevant, and the closed form matches enumeration
	// (pinned from the repairs side too, via the planner differential).
	db, ks, q := IEHeavy(2, 5, 2)
	if got := db.Len(); got != 2*5*2 {
		t.Fatalf("facts = %d, want 20", got)
	}
	in := repairs.MustInstance(db, ks, q)
	n, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if want := IEHeavyCount(2, 5, 2); n.Cmp(want) != 0 {
		t.Fatalf("count = %s, closed form = %s", n, want)
	}
	// nBoxes = 1: only the all-'v0' vector entails per component, so
	// #¬Q_c = 2^B − 1.
	db1, ks1, q1 := IEHeavy(1, 3, 1)
	n1, _, err := repairs.MustInstance(db1, ks1, q1).CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if n1.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("IEHeavy(1,3,1) count = %s, want 1", n1)
	}
	if got := IEHeavyCount(1, 3, 1); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("closed form = %s, want 1", got)
	}
	// The segments must partition blocks 1..B−1.
	segs := ieHeavySegments(10, 3)
	seen := map[int]bool{}
	for _, seg := range segs {
		if len(seg) == 0 {
			t.Fatal("empty segment")
		}
		for _, b := range seg {
			if b < 1 || b > 9 || seen[b] {
				t.Fatalf("segment block %d out of range or repeated", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 9 {
		t.Fatalf("segments cover %d blocks, want 9", len(seen))
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	f := RandomCNF(rng, 5, 8)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(f.Clauses) != 8 {
		t.Fatalf("clauses = %d", len(f.Clauses))
	}
	d := RandomDisjDNF(rng, 4, 3, 2, 5)
	if _, err := d.Count(); err != nil {
		t.Fatal(err)
	}
	g := RandomGraph(rng, 8, 0.4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := RandomColoring(rng, 5, 2, 3, 3, 2)
	if _, err := c.Count(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateStreamValidity drives a generated stream against its base
// database and asserts self-consistency: every delete targets a live fact,
// every insert a fresh one, and a positive conflict rate produces inserts
// that land in existing conflict blocks.
func TestUpdateStreamValidity(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 5))
	db, ks := Employee(rng, 20, 4, 0.5)
	baseBlocks := len(relational.Blocks(db, ks))
	ops := UpdateStream(rng, db, ks, 120, 0.7)
	if len(ops) != 120 {
		t.Fatalf("stream has %d ops, want 120", len(ops))
	}
	inserts, deletes, conflicts := 0, 0, 0
	for i, op := range ops {
		if op.Del {
			deletes++
			if !db.Delete(op.Fact) {
				t.Fatalf("op %d deletes absent fact %v", i, op.Fact)
			}
			continue
		}
		inserts++
		if db.Contains(op.Fact) {
			t.Fatalf("op %d inserts duplicate fact %v", i, op.Fact)
		}
		if blocks := relational.Blocks(db, ks); func() bool {
			for _, b := range blocks {
				if b.Key.Equal(ks.KeyValue(op.Fact)) {
					return true
				}
			}
			return false
		}() {
			conflicts++
		}
		if added, err := db.Insert(op.Fact); err != nil || !added {
			t.Fatalf("op %d insert %v: added=%v err=%v", i, op.Fact, added, err)
		}
	}
	if inserts == 0 || deletes == 0 {
		t.Fatalf("stream is not interleaved: %d inserts, %d deletes", inserts, deletes)
	}
	if conflicts == 0 {
		t.Fatalf("conflict rate 0.7 produced no conflicting inserts (base blocks: %d)", baseBlocks)
	}
}

// TestUpdateStreamRoundTrip pins the text op codec.
func TestUpdateStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 6))
	db, ks := Employee(rng, 8, 3, 0.5)
	ops := UpdateStream(rng, db, ks, 25, 0.5)
	var buf strings.Builder
	if err := FormatUpdates(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ParseUpdates(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip: %d ops, want %d", len(back), len(ops))
	}
	for i := range ops {
		if back[i].Del != ops[i].Del || !back[i].Fact.Equal(ops[i].Fact) {
			t.Fatalf("op %d: %+v round-trips to %+v", i, ops[i], back[i])
		}
	}
	if _, err := ParseUpdates(strings.NewReader("? R(a)\n")); err == nil {
		t.Fatal("bad op sign accepted")
	}
}

// TestProbStreamRoundTrip pins the prob-annotation text codec: weights
// round-trip bit-exactly, comments are skipped, malformed lines error.
func TestProbStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 4))
	db, _ := Employee(rng, 6, 3, 0.5)
	anns := ProbStream(rng, db)
	if len(anns) != db.Len() {
		t.Fatalf("ProbStream annotated %d facts, db has %d", len(anns), db.Len())
	}
	for i, a := range anns {
		if a.Weight <= 0 || a.Weight > 1 || a.Weight != float64(int(a.Weight*16))/16 {
			t.Fatalf("annotation %d: weight %v is not dyadic in (0, 1]", i, a.Weight)
		}
	}
	var buf strings.Builder
	buf.WriteString("# prob stream\n\n")
	if err := FormatProbAnnotations(&buf, anns); err != nil {
		t.Fatal(err)
	}
	back, err := ParseProbAnnotations(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(anns) {
		t.Fatalf("round trip: %d annotations, want %d", len(back), len(anns))
	}
	for i := range anns {
		if back[i].Weight != anns[i].Weight || !back[i].Fact.Equal(anns[i].Fact) {
			t.Fatalf("annotation %d: %+v round-trips to %+v", i, anns[i], back[i])
		}
	}
	m := AnnotationMap(back)
	if len(m) != len(back) {
		t.Fatalf("AnnotationMap has %d entries, want %d", len(m), len(back))
	}
	for _, a := range back {
		if m[a.Fact.Canonical()] != a.Weight {
			t.Fatalf("AnnotationMap[%s] = %v, want %v", a.Fact, m[a.Fact.Canonical()], a.Weight)
		}
	}
	for _, bad := range []string{
		"0.5 R('a')\n",                // space, not tab
		"x\tR('a')\n",                 // unparseable weight
		"-1\tR('a')\n",                // negative weight
		"NaN\tR('a')\n",               // NaN weight
		"0.5\tR('a'\n",                // malformed fact
		"0.5\tR('a')\n0.25\tR('a')\n", // duplicate fact
	} {
		if _, err := ParseProbAnnotations(strings.NewReader(bad)); err == nil {
			t.Fatalf("malformed stream %q accepted", bad)
		}
	}
}

package dnf

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestValidation(t *testing.T) {
	if err := (Formula{NumVars: 2, Width: 1, Clauses: []Clause{{0, 1}}}).Validate(); err == nil {
		t.Fatalf("overwide clause accepted")
	}
	if err := (Formula{NumVars: 2, Width: 2, Clauses: []Clause{{5}}}).Validate(); err == nil {
		t.Fatalf("out-of-range variable accepted")
	}
	if err := (Partition{{0}, {0, 1}}).Validate(2); err == nil {
		t.Fatalf("overlapping partition accepted")
	}
	if err := (Partition{{0}}).Validate(2); err == nil {
		t.Fatalf("incomplete partition accepted")
	}
	if err := (Partition{{0}, {}}).Validate(1); err == nil {
		t.Fatalf("empty class accepted")
	}
	// Unbounded width (SpanLL variant) is legal.
	if err := (Formula{NumVars: 3, Width: -1, Clauses: []Clause{{0, 1, 2}}}).Validate(); err != nil {
		t.Fatalf("unbounded width rejected: %v", err)
	}
}

func TestSmallInstanceByHand(t *testing.T) {
	// X = {x0,x1,x2,x3}, P = {{x0,x1},{x2,x3}}, φ = x0 ∨ (x1 ∧ x2).
	// P-assignments: (x0|x1) × (x2|x3) = 4.
	// Satisfying: x0 picked (2 assignments) ∪ x1∧x2 picked (1) = 3.
	in := MustInstance(
		Formula{NumVars: 4, Width: 2, Clauses: []Clause{{0}, {1, 2}}},
		Partition{{0, 1}, {2, 3}},
	)
	if got := in.TotalAssignments(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("total = %s, want 4", got)
	}
	bf := in.CountBruteForce()
	if bf.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("brute force = %s, want 3", bf)
	}
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(bf) != 0 {
		t.Fatalf("compactor count %s vs brute force %s", cnt, bf)
	}
	if err := in.Compactor().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClauseWithTwoVarsFromOneClass(t *testing.T) {
	// x0 and x1 share a class: the clause x0 ∧ x1 is unsatisfiable under
	// P-assignments and must compact to ϵ.
	in := MustInstance(
		Formula{NumVars: 2, Width: 2, Clauses: []Clause{{0, 1}}},
		Partition{{0, 1}},
	)
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Sign() != 0 {
		t.Fatalf("count = %s, want 0", cnt)
	}
	if in.Compactor().HasSolution() {
		t.Fatalf("HasSolution must be false")
	}
}

func TestEmptyClauseAndEmptyFormula(t *testing.T) {
	// The empty clause is true: every P-assignment satisfies φ.
	in := MustInstance(
		Formula{NumVars: 2, Width: 2, Clauses: []Clause{{}}},
		Partition{{0}, {1}},
	)
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(in.TotalAssignments()) != 0 {
		t.Fatalf("count = %s, want all %s", cnt, in.TotalAssignments())
	}
	// No clauses: nothing satisfies.
	in2 := MustInstance(Formula{NumVars: 2, Width: 2}, Partition{{0}, {1}})
	cnt2, err := in2.Count()
	if err != nil || cnt2.Sign() != 0 {
		t.Fatalf("count = %v %v, want 0", cnt2, err)
	}
}

func randomInstance(rng *rand.Rand, maxClasses, maxClassSize, width int) *Instance {
	nClasses := 1 + rng.IntN(maxClasses)
	var p Partition
	n := 0
	for c := 0; c < nClasses; c++ {
		sz := 1 + rng.IntN(maxClassSize)
		var class []int
		for j := 0; j < sz; j++ {
			class = append(class, n)
			n++
		}
		p = append(p, class)
	}
	f := Formula{NumVars: n, Width: width}
	nClauses := rng.IntN(5)
	for c := 0; c < nClauses; c++ {
		sz := 1 + rng.IntN(width)
		clause := make(Clause, 0, sz)
		for j := 0; j < sz; j++ {
			clause = append(clause, rng.IntN(n))
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return MustInstance(f, p)
}

// Property: compactor count equals brute force on random instances, and
// the compactor is structurally valid.
func TestCompactorAgreesWithBruteForceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		in := randomInstance(rng, 4, 3, 3)
		cnt, err := in.Count()
		if err != nil {
			return false
		}
		if in.Compactor().Validate() != nil {
			return false
		}
		return cnt.Cmp(in.CountBruteForce()) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromStandardEmbedding(t *testing.T) {
	// φ = x0 ∨ (x1 ∧ x2) over 3 Boolean variables: satisfying assignments
	// = 4 (x0=1: 4) ∪ (x1=x2=1: 2) minus overlap 1 → total 5.
	f := Formula{NumVars: 3, Width: 2, Clauses: []Clause{{0}, {1, 2}}}
	std := CountStandardBruteForce(f)
	if std.Cmp(big.NewInt(5)) != 0 {
		t.Fatalf("standard brute force = %s, want 5", std)
	}
	emb := FromStandard(f)
	cnt, err := emb.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(std) != 0 {
		t.Fatalf("embedded count %s vs standard %s", cnt, std)
	}
}

// Property: the FromStandard embedding is count-preserving.
func TestFromStandardProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		n := 1 + rng.IntN(6)
		f := Formula{NumVars: n, Width: 3}
		for c := 0; c < rng.IntN(5); c++ {
			sz := 1 + rng.IntN(3)
			clause := make(Clause, 0, sz)
			for j := 0; j < sz; j++ {
				clause = append(clause, rng.IntN(n))
			}
			f.Clauses = append(f.Clauses, clause)
		}
		cnt, err := FromStandard(f).Count()
		if err != nil {
			return false
		}
		return cnt.Cmp(CountStandardBruteForce(f)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedSpanLLVariant(t *testing.T) {
	// Width unbounded: Apx must refuse, Karp–Luby must work.
	in := MustInstance(
		Formula{NumVars: 4, Width: -1, Clauses: []Clause{{0, 1, 2, 3}}},
		Partition{{0, 2}, {1, 3}},
	)
	c := in.Compactor()
	if c.K >= 0 {
		t.Fatalf("K = %d, want unbounded", c.K)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	if _, err := c.Apx(0.2, 0.2, rng); err == nil {
		t.Fatalf("Apx accepted an unbounded compactor")
	}
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.KarpLubyAuto(0.2, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sign() > 0 {
		rel := new(big.Float).Sub(est.Value, new(big.Float).SetInt(exact))
		rel.Abs(rel)
		rel.Quo(rel, new(big.Float).SetInt(exact))
		r, _ := rel.Float64()
		if r > 0.2 {
			t.Fatalf("Karp–Luby error %.3f > 0.2", r)
		}
	}
}

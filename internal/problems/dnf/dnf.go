// Package dnf implements #DisjPoskDNF (paper §7.1): counting the
// P-assignments of a partitioned variable set that satisfy a positive kDNF
// formula. Theorem 7.1 shows the problem is Λ[k]-complete for every k ≥ 0;
// its unbounded variant #DisjPosDNF is SpanLL-complete (Theorem 7.5).
//
// The problem generalizes counting satisfying assignments of a positive
// kDNF (FromStandard embeds the standard problem), and #Pos2DNF is the
// Λ[2] function that is ≤p_T-complete for #P used in Theorem 4.4(2).
package dnf

import (
	"fmt"
	"iter"
	"math/big"
	"strconv"

	"repaircount/internal/core"
)

// Clause is a conjunction of variables occurring positively, by index.
type Clause []int

// Formula is a positive DNF formula C1 ∨ ... ∨ Cm over variables
// 0..NumVars-1. Width bounds the clause size (the k of kDNF); a negative
// Width means unbounded (the SpanLL variant #DisjPosDNF of §7.2).
type Formula struct {
	NumVars int
	Clauses []Clause
	Width   int
}

// Validate checks indices in range and clause sizes within Width.
func (f Formula) Validate() error {
	for ci, c := range f.Clauses {
		if f.Width >= 0 && len(c) > f.Width {
			return fmt.Errorf("dnf: clause %d has %d literals, width is %d", ci, len(c), f.Width)
		}
		for _, v := range c {
			if v < 0 || v >= f.NumVars {
				return fmt.Errorf("dnf: clause %d mentions variable %d, out of range [0,%d)", ci, v, f.NumVars)
			}
		}
	}
	return nil
}

// Eval reports whether the assignment (one bool per variable) satisfies
// the formula: some clause has all its variables true.
func (f Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := true
		for _, v := range c {
			if !assign[v] {
				ok = false
				break
			}
		}
		if ok && len(c) > 0 {
			return true
		}
		if ok && len(c) == 0 {
			return true // the empty clause is true
		}
	}
	return false
}

// Partition groups the variables into disjoint non-empty classes covering
// 0..NumVars-1. A P-assignment sets exactly one variable per class to 1.
type Partition [][]int

// Validate checks that the classes partition 0..n-1.
func (p Partition) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for ci, class := range p {
		if len(class) == 0 {
			return fmt.Errorf("dnf: class %d is empty", ci)
		}
		for _, v := range class {
			if v < 0 || v >= n {
				return fmt.Errorf("dnf: class %d mentions variable %d, out of range [0,%d)", ci, v, n)
			}
			if seen[v] {
				return fmt.Errorf("dnf: variable %d appears in two classes", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("dnf: partition covers %d of %d variables", total, n)
	}
	return nil
}

// Instance is one #DisjPoskDNF input.
type Instance struct {
	F Formula
	P Partition
}

// NewInstance validates and builds an instance.
func NewInstance(f Formula, p Partition) (*Instance, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(f.NumVars); err != nil {
		return nil, err
	}
	return &Instance{F: f, P: p}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(f Formula, p Partition) *Instance {
	in, err := NewInstance(f, p)
	if err != nil {
		panic(err)
	}
	return in
}

// classOf maps each variable to its class index.
func (in *Instance) classOf() []int {
	out := make([]int, in.F.NumVars)
	for ci, class := range in.P {
		for _, v := range class {
			out[v] = ci
		}
	}
	return out
}

// Assignments enumerates all P-assignments as bool vectors (reused across
// iterations; copy to retain).
func (in *Instance) Assignments() iter.Seq[[]bool] {
	return func(yield func([]bool) bool) {
		n := len(in.P)
		choice := make([]int, n)
		assign := make([]bool, in.F.NumVars)
		for {
			for i := range assign {
				assign[i] = false
			}
			for ci, class := range in.P {
				assign[class[choice[ci]]] = true
			}
			if !yield(assign) {
				return
			}
			i := n - 1
			for ; i >= 0; i-- {
				choice[i]++
				if choice[i] < len(in.P[i]) {
					break
				}
				choice[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
}

// CountBruteForce counts satisfying P-assignments by enumeration (ground
// truth; exponential in the number of classes).
func (in *Instance) CountBruteForce() *big.Int {
	count := new(big.Int)
	one := big.NewInt(1)
	for assign := range in.Assignments() {
		if in.F.Eval(assign) {
			count.Add(count, one)
		}
	}
	return count
}

// TotalAssignments returns the number of P-assignments, ∏ |class|.
func (in *Instance) TotalAssignments() *big.Int {
	n := big.NewInt(1)
	for _, class := range in.P {
		n.Mul(n, big.NewInt(int64(len(class))))
	}
	return n
}

// Compactor renders the instance as a k-compactor (the Theorem 7.1
// membership construction): solution domains are the classes (one element
// per variable), candidate certificates are the clauses, and a clause
// compacts to the selector pinning, for each of its variables, the
// variable's class to that variable. A clause with two distinct variables
// in one class is unsatisfiable under P-assignments and compacts to ϵ.
// Pass width < 0 to build the SpanLL (unbounded) variant.
func (in *Instance) Compactor() *core.Compactor {
	classOf := in.classOf()
	doms := make([]core.Domain, len(in.P))
	for ci, class := range in.P {
		elems := make([]core.Element, len(class))
		for j, v := range class {
			elems[j] = varElem(v)
		}
		doms[ci] = core.Domain{Name: "class" + strconv.Itoa(ci), Elems: elems}
	}
	return &core.Compactor{
		Name: "#DisjPoskDNF",
		Doms: doms,
		K:    in.F.Width,
		Certificates: func() iter.Seq[core.Certificate] {
			return func(yield func(core.Certificate) bool) {
				for ci := range in.F.Clauses {
					if !yield(ci) {
						return
					}
				}
			}
		},
		Compact: func(cert core.Certificate) (core.Selector, bool) {
			clause := in.F.Clauses[cert.(int)]
			pinned := map[int]int{} // class -> variable
			for _, v := range clause {
				c := classOf[v]
				if prev, ok := pinned[c]; ok && prev != v {
					return nil, false // two distinct variables of one class
				}
				pinned[c] = v
			}
			var sel core.Selector
			for c, v := range pinned {
				sel = append(sel, core.Pin{Index: c, Elem: varElem(v)})
			}
			s, err := core.NewSelector(doms, sel...)
			if err != nil {
				panic("dnf: invalid selector: " + err.Error())
			}
			return s, true
		},
		Member: func(tuple []core.Element) bool {
			assign := make([]bool, in.F.NumVars)
			for _, e := range tuple {
				v, err := strconv.Atoi(string(e[1:]))
				if err != nil {
					panic("dnf: bad element " + string(e))
				}
				assign[v] = true
			}
			return in.F.Eval(assign)
		},
	}
}

func varElem(v int) core.Element { return core.Element("x" + strconv.Itoa(v)) }

// Count computes #DisjPoskDNF exactly through the compactor machinery.
func (in *Instance) Count() (*big.Int, error) {
	return in.Compactor().CountExact()
}

// FromStandard embeds the standard problem "count satisfying assignments
// of a positive kDNF over n Boolean variables" into #DisjPoskDNF: each
// variable x becomes a two-element class {x⁺, x⁻}; setting x⁺ to 1 encodes
// x = 1. Clause variables map to the x⁺ copies. The counts agree exactly.
func FromStandard(f Formula) *Instance {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	nf := Formula{NumVars: 2 * f.NumVars, Width: f.Width}
	for _, c := range f.Clauses {
		nc := make(Clause, len(c))
		for i, v := range c {
			nc[i] = 2 * v // x⁺ copies sit at even indices
		}
		nf.Clauses = append(nf.Clauses, nc)
	}
	p := make(Partition, f.NumVars)
	for v := 0; v < f.NumVars; v++ {
		p[v] = []int{2 * v, 2*v + 1}
	}
	return MustInstance(nf, p)
}

// CountStandardBruteForce counts satisfying 0/1 assignments of a positive
// DNF by enumeration (ground truth for FromStandard).
func CountStandardBruteForce(f Formula) *big.Int {
	if f.NumVars > 24 {
		panic("dnf: brute force beyond 24 variables")
	}
	count := new(big.Int)
	one := big.NewInt(1)
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 0; v < f.NumVars; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		if f.Eval(assign) {
			count.Add(count, one)
		}
	}
	return count
}

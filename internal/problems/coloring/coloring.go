// Package coloring implements #kForbColoring (paper §7.1): counting the
// forbidden C-colorings of a k-uniform hypergraph H w.r.t. per-edge sets of
// forbidden partial assignments. Theorem 7.2 shows the problem is
// Λ[k]-complete for every k ≥ 0; the unbounded variant #ForbColoring is
// SpanLL-complete (Theorem 7.5). It generalizes counting non-list-colorings
// of hypergraphs.
package coloring

import (
	"fmt"
	"iter"
	"math/big"
	"strconv"

	"repaircount/internal/core"
)

// Hypergraph is a hypergraph over vertices 0..N-1; k-uniform when every
// edge has exactly k vertices (K < 0 disables the uniformity check, the
// unbounded SpanLL variant).
type Hypergraph struct {
	N     int
	Edges [][]int
	K     int
}

// Validate checks vertex indices, uniformity and edge simplicity (no
// repeated vertex within an edge).
func (h Hypergraph) Validate() error {
	for ei, e := range h.Edges {
		if h.K >= 0 && len(e) != h.K {
			return fmt.Errorf("coloring: edge %d has %d vertices, hypergraph is %d-uniform", ei, len(e), h.K)
		}
		seen := map[int]bool{}
		for _, v := range e {
			if v < 0 || v >= h.N {
				return fmt.Errorf("coloring: edge %d mentions vertex %d, out of range [0,%d)", ei, v, h.N)
			}
			if seen[v] {
				return fmt.Errorf("coloring: edge %d repeats vertex %d", ei, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// Color names a color.
type Color string

// Forbidden is one forbidden partial assignment ν ∈ F_e: colors for the
// vertices of edge e, in edge order.
type Forbidden []Color

// Instance is one #kForbColoring input: the hypergraph, the color lists
// C = {C_v}, and per-edge forbidden assignment sets F = {F_e}.
type Instance struct {
	H        Hypergraph
	Colors   [][]Color
	ForbSets [][]Forbidden
}

// NewInstance validates and builds an instance: every vertex needs a
// non-empty color list (duplicates rejected), every forbidden assignment
// matches its edge's length and uses colors from the vertices' lists.
func NewInstance(h Hypergraph, colors [][]Color, forb [][]Forbidden) (*Instance, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(colors) != h.N {
		return nil, fmt.Errorf("coloring: %d color lists for %d vertices", len(colors), h.N)
	}
	for v, cs := range colors {
		if len(cs) == 0 {
			return nil, fmt.Errorf("coloring: vertex %d has an empty color list", v)
		}
		seen := map[Color]bool{}
		for _, c := range cs {
			if seen[c] {
				return nil, fmt.Errorf("coloring: vertex %d lists color %q twice", v, c)
			}
			seen[c] = true
		}
	}
	if len(forb) != len(h.Edges) {
		return nil, fmt.Errorf("coloring: %d forbidden sets for %d edges", len(forb), len(h.Edges))
	}
	for ei, fs := range forb {
		for fi, nu := range fs {
			if len(nu) != len(h.Edges[ei]) {
				return nil, fmt.Errorf("coloring: forbidden assignment %d of edge %d has %d colors for %d vertices", fi, ei, len(nu), len(h.Edges[ei]))
			}
		}
	}
	return &Instance{H: h, Colors: colors, ForbSets: forb}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(h Hypergraph, colors [][]Color, forb [][]Forbidden) *Instance {
	in, err := NewInstance(h, colors, forb)
	if err != nil {
		panic(err)
	}
	return in
}

// IsForbidden reports whether the full coloring (one color per vertex) is
// forbidden: it extends some ν ∈ F_e.
func (in *Instance) IsForbidden(coloring []Color) bool {
	for ei, e := range in.H.Edges {
		for _, nu := range in.ForbSets[ei] {
			match := true
			for j, v := range e {
				if coloring[v] != nu[j] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
	}
	return false
}

// Colorings enumerates all C-assignments for V (reused slice; copy to
// retain).
func (in *Instance) Colorings() iter.Seq[[]Color] {
	return func(yield func([]Color) bool) {
		n := in.H.N
		choice := make([]int, n)
		cur := make([]Color, n)
		for {
			for v := 0; v < n; v++ {
				cur[v] = in.Colors[v][choice[v]]
			}
			if !yield(cur) {
				return
			}
			i := n - 1
			for ; i >= 0; i-- {
				choice[i]++
				if choice[i] < len(in.Colors[i]) {
					break
				}
				choice[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
}

// CountBruteForce counts forbidden colorings by enumeration (ground truth;
// exponential in |V|).
func (in *Instance) CountBruteForce() *big.Int {
	count := new(big.Int)
	one := big.NewInt(1)
	for coloring := range in.Colorings() {
		if in.IsForbidden(coloring) {
			count.Add(count, one)
		}
	}
	return count
}

// TotalColorings returns ∏ |C_v|.
func (in *Instance) TotalColorings() *big.Int {
	n := big.NewInt(1)
	for _, cs := range in.Colors {
		n.Mul(n, big.NewInt(int64(len(cs))))
	}
	return n
}

// Compactor renders the instance as a k-compactor (the Theorem 7.2
// membership construction): solution domains are the per-vertex color
// lists, candidate certificates are pairs (edge, forbidden assignment),
// and a certificate compacts to the selector pinning each vertex of the
// edge to the assignment's color — or ϵ if some color is outside the
// vertex's list.
func (in *Instance) Compactor() *core.Compactor {
	doms := make([]core.Domain, in.H.N)
	for v, cs := range in.Colors {
		elems := make([]core.Element, len(cs))
		for j, c := range cs {
			elems[j] = core.Element(c)
		}
		doms[v] = core.Domain{Name: "v" + strconv.Itoa(v), Elems: elems}
	}
	type cert struct{ edge, forb int }
	return &core.Compactor{
		Name: "#kForbColoring",
		Doms: doms,
		K:    in.H.K,
		Certificates: func() iter.Seq[core.Certificate] {
			return func(yield func(core.Certificate) bool) {
				for ei := range in.H.Edges {
					for fi := range in.ForbSets[ei] {
						if !yield(cert{ei, fi}) {
							return
						}
					}
				}
			}
		},
		Compact: func(c core.Certificate) (core.Selector, bool) {
			ct := c.(cert)
			e := in.H.Edges[ct.edge]
			nu := in.ForbSets[ct.edge][ct.forb]
			var pins []core.Pin
			for j, v := range e {
				if doms[v].Index(core.Element(nu[j])) < 0 {
					return nil, false // color outside C_v: unrealizable
				}
				pins = append(pins, core.Pin{Index: v, Elem: core.Element(nu[j])})
			}
			s, err := core.NewSelector(doms, pins...)
			if err != nil {
				panic("coloring: invalid selector: " + err.Error())
			}
			return s, true
		},
		Member: func(tuple []core.Element) bool {
			coloring := make([]Color, len(tuple))
			for v, e := range tuple {
				coloring[v] = Color(e)
			}
			return in.IsForbidden(coloring)
		},
	}
}

// Count computes #kForbColoring exactly through the compactor machinery.
func (in *Instance) Count() (*big.Int, error) {
	return in.Compactor().CountExact()
}

package coloring

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func triangle() Hypergraph {
	return Hypergraph{N: 3, Edges: [][]int{{0, 1}, {1, 2}, {0, 2}}, K: 2}
}

func TestValidation(t *testing.T) {
	if err := (Hypergraph{N: 2, Edges: [][]int{{0, 1, 1}}, K: 3}).Validate(); err == nil {
		t.Fatalf("repeated vertex in edge accepted")
	}
	if err := (Hypergraph{N: 2, Edges: [][]int{{0, 5}}, K: 2}).Validate(); err == nil {
		t.Fatalf("out-of-range vertex accepted")
	}
	if err := (Hypergraph{N: 3, Edges: [][]int{{0, 1, 2}}, K: 2}).Validate(); err == nil {
		t.Fatalf("non-uniform edge accepted")
	}
	h := triangle()
	if _, err := NewInstance(h, [][]Color{{"r"}, {"r"}}, nil); err == nil {
		t.Fatalf("wrong number of color lists accepted")
	}
	if _, err := NewInstance(h, [][]Color{{"r"}, {"r"}, {}}, [][]Forbidden{nil, nil, nil}); err == nil {
		t.Fatalf("empty color list accepted")
	}
	if _, err := NewInstance(h, [][]Color{{"r", "r"}, {"r"}, {"r"}}, [][]Forbidden{nil, nil, nil}); err == nil {
		t.Fatalf("duplicate color accepted")
	}
	if _, err := NewInstance(h, [][]Color{{"r"}, {"r"}, {"r"}}, [][]Forbidden{{{"r"}}, nil, nil}); err == nil {
		t.Fatalf("wrong-length forbidden assignment accepted")
	}
}

func TestMonochromaticTriangle(t *testing.T) {
	// Forbid monochromatic edges over palette {r,g}: forbidden colorings of
	// a triangle = 2^3 − (proper 2-colorings of a triangle = 0) = 8.
	h := triangle()
	colors := [][]Color{{"r", "g"}, {"r", "g"}, {"r", "g"}}
	forb := make([][]Forbidden, 3)
	for e := range forb {
		forb[e] = []Forbidden{{"r", "r"}, {"g", "g"}}
	}
	in := MustInstance(h, colors, forb)
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("count = %s, want 8 (triangle has no proper 2-coloring)", cnt)
	}
	if bf := in.CountBruteForce(); bf.Cmp(cnt) != 0 {
		t.Fatalf("brute force %s vs compactor %s", bf, cnt)
	}
	if err := in.Compactor().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestForbiddenColorOutsideList(t *testing.T) {
	// A forbidden assignment using a color not in C_v is unrealizable: ϵ.
	h := Hypergraph{N: 2, Edges: [][]int{{0, 1}}, K: 2}
	in := MustInstance(h,
		[][]Color{{"r"}, {"r", "g"}},
		[][]Forbidden{{{"blue", "r"}}},
	)
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Sign() != 0 {
		t.Fatalf("count = %s, want 0", cnt)
	}
}

func TestPathTwoForbiddenPattern(t *testing.T) {
	// Path 0-1 with lists C0={a,b}, C1={a,b,c}; forbid ν = (a,c) on the
	// edge: exactly one coloring extends it (µ(0)=a, µ(1)=c) → count 1.
	h := Hypergraph{N: 2, Edges: [][]int{{0, 1}}, K: 2}
	in := MustInstance(h,
		[][]Color{{"a", "b"}, {"a", "b", "c"}},
		[][]Forbidden{{{"a", "c"}}},
	)
	cnt, err := in.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("count = %s, want 1", cnt)
	}
}

func randomInstance(rng *rand.Rand) *Instance {
	k := 1 + rng.IntN(3)
	n := k + rng.IntN(4)
	palette := []Color{"r", "g", "b"}
	colors := make([][]Color, n)
	for v := range colors {
		sz := 1 + rng.IntN(3)
		colors[v] = append([]Color{}, palette[:sz]...)
	}
	var edges [][]int
	nEdges := rng.IntN(4)
	for e := 0; e < nEdges; e++ {
		perm := rng.Perm(n)[:k]
		edges = append(edges, perm)
	}
	h := Hypergraph{N: n, Edges: edges, K: k}
	forb := make([][]Forbidden, len(edges))
	for ei := range forb {
		nf := rng.IntN(3)
		for f := 0; f < nf; f++ {
			nu := make(Forbidden, k)
			for j := range nu {
				nu[j] = palette[rng.IntN(3)] // may fall outside C_v: tests ϵ
			}
			forb[ei] = append(forb[ei], nu)
		}
	}
	return MustInstance(h, colors, forb)
}

// Property: compactor count equals brute force; compactor structurally
// valid; count bounded by total colorings.
func TestCompactorAgreesWithBruteForceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 53))
		in := randomInstance(rng)
		cnt, err := in.Count()
		if err != nil {
			return false
		}
		if in.Compactor().Validate() != nil {
			return false
		}
		if cnt.Cmp(in.CountBruteForce()) != 0 {
			return false
		}
		return cnt.Cmp(in.TotalColorings()) <= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

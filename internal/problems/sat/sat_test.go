package sat

import (
	"math/big"
	"testing"
)

func TestEvalAndCount(t *testing.T) {
	// (x0 ∨ x1 ∨ x2) ∧ (!x0 ∨ !x1 ∨ !x2): all assignments except 000 and
	// 111 → 6.
	f := CNF{NumVars: 3, Clauses: []Clause{
		{Literal{0, false}, Literal{1, false}, Literal{2, false}},
		{Literal{0, true}, Literal{1, true}, Literal{2, true}},
	}}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := f.CountSatisfying(); got.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("#SAT = %s, want 6", got)
	}
	if !f.Satisfiable() {
		t.Fatalf("formula is satisfiable")
	}
}

func TestUnsatisfiable(t *testing.T) {
	// x0 ∧ !x0 via duplicated literals in 3-clauses.
	f := CNF{NumVars: 1, Clauses: []Clause{
		{Literal{0, false}, Literal{0, false}, Literal{0, false}},
		{Literal{0, true}, Literal{0, true}, Literal{0, true}},
	}}
	if f.Satisfiable() {
		t.Fatalf("contradiction is satisfiable?")
	}
	if got := f.CountSatisfying(); got.Sign() != 0 {
		t.Fatalf("#SAT = %s, want 0", got)
	}
}

func TestEmptyFormula(t *testing.T) {
	f := CNF{NumVars: 3}
	if got := f.CountSatisfying(); got.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("#SAT of empty formula = %s, want 8", got)
	}
}

func TestValidate(t *testing.T) {
	f := CNF{NumVars: 1, Clauses: []Clause{{Literal{5, false}, Literal{0, false}, Literal{0, false}}}}
	if err := f.Validate(); err == nil {
		t.Fatalf("out-of-range variable accepted")
	}
}

func TestLiteralString(t *testing.T) {
	if (Literal{3, true}).String() != "!x3" || (Literal{0, false}).String() != "x0" {
		t.Fatalf("literal rendering broken")
	}
}

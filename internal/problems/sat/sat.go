// Package sat implements 3CNF formulas, satisfiability and #3SAT by
// exhaustive search. It is the source problem of the paper's Theorem 3.2
// (3SAT ≤log_m #CQA>0(FO)) and Theorem 3.3 (#3SAT ≤log_m #CQA(FO));
// the reductions themselves live in internal/reductions.
package sat

import (
	"fmt"
	"math/big"
)

// Literal is a possibly negated variable (variables are 0-based).
type Literal struct {
	Var int
	Neg bool
}

// String renders the literal as x3 or !x3.
func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var)
	}
	return fmt.Sprintf("x%d", l.Var)
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// CNF is a 3CNF formula over variables 0..NumVars-1.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable ranges.
func (f CNF) Validate() error {
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("sat: clause %d mentions variable %d, out of range [0,%d)", ci, l.Var, f.NumVars)
			}
		}
	}
	return nil
}

// Eval reports whether the assignment satisfies the formula.
func (f CNF) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CountSatisfying computes #3SAT by enumeration (up to 24 variables).
func (f CNF) CountSatisfying() *big.Int {
	if f.NumVars > 24 {
		panic("sat: brute force beyond 24 variables")
	}
	count := new(big.Int)
	one := big.NewInt(1)
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		for v := 0; v < f.NumVars; v++ {
			assign[v] = mask&(1<<uint(v)) != 0
		}
		if f.Eval(assign) {
			count.Add(count, one)
		}
	}
	return count
}

// Satisfiable decides 3SAT by enumeration.
func (f CNF) Satisfiable() bool {
	return f.CountSatisfying().Sign() > 0
}

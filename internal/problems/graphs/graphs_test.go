package graphs

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/core"
)

func triangle() Graph {
	return Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
}

func TestValidation(t *testing.T) {
	if err := (Graph{N: 2, Edges: [][2]int{{0, 0}}}).Validate(); err == nil {
		t.Fatalf("self-loop accepted")
	}
	if err := (Graph{N: 2, Edges: [][2]int{{0, 5}}}).Validate(); err == nil {
		t.Fatalf("out-of-range vertex accepted")
	}
}

func TestTriangleCounts(t *testing.T) {
	g := triangle()
	// Independent sets of a triangle: {}, {0}, {1}, {2} → 4; non-independent
	// = 8 − 4 = 4.
	nis, err := NonIndependentSets(g)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := nis.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("non-independent sets = %s, want 4", cnt)
	}
	// Vertex covers of a triangle: all pairs and the full set → 4;
	// non-covers = 8 − 4 = 4.
	nvc, err := NonVertexCovers(g)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err = nvc.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("non-vertex-covers = %s, want 4", cnt)
	}
	// Proper 3-colorings of a triangle: 3! = 6; non-3-colorings = 27 − 6 = 21.
	n3c, err := NonColorings(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err = n3c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Cmp(big.NewInt(21)) != 0 {
		t.Fatalf("non-3-colorings = %s, want 21", cnt)
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := Graph{N: 3}
	for _, build := range []func(Graph) (*core.Compactor, error){NonIndependentSets, NonVertexCovers} {
		c, err := build(g)
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := c.CountExact()
		if err != nil || cnt.Sign() != 0 {
			t.Fatalf("edgeless graph count = %v %v, want 0", cnt, err)
		}
	}
}

func randomGraph(rng *rand.Rand, maxN int) Graph {
	n := 2 + rng.IntN(maxN-1)
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.IntN(3) == 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return Graph{N: n, Edges: edges}
}

// Property: all three compactors agree with brute force and validate.
func TestGraphProblemsAgreeWithBruteForceProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		g := randomGraph(rng, 8)
		nis, err := NonIndependentSets(g)
		if err != nil {
			return false
		}
		cnt, err := nis.CountExact()
		if err != nil || nis.Validate() != nil {
			return false
		}
		want := BruteForceSubsets(g, func(in []bool) bool { return !IsIndependent(g, in) })
		if cnt.Cmp(want) != 0 {
			return false
		}
		nvc, err := NonVertexCovers(g)
		if err != nil {
			return false
		}
		cnt, err = nvc.CountExact()
		if err != nil {
			return false
		}
		want = BruteForceSubsets(g, func(in []bool) bool { return !IsVertexCover(g, in) })
		if cnt.Cmp(want) != 0 {
			return false
		}
		c := 2 + rng.IntN(2)
		ncc, err := NonColorings(g, c)
		if err != nil {
			return false
		}
		cnt, err = ncc.CountExact()
		if err != nil {
			return false
		}
		return cnt.Cmp(BruteForceColorings(g, c)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFPRASOnGraphProblem(t *testing.T) {
	g := randomGraph(rand.New(rand.NewPCG(7, 8)), 10)
	nis, err := NonIndependentSets(g)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := nis.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Sign() == 0 {
		t.Skip("degenerate random graph")
	}
	rng := rand.New(rand.NewPCG(9, 10))
	est, err := nis.Apx(0.1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel := core.RelativeError(est.Value, exact); rel > 0.1 {
		t.Fatalf("FPRAS error %.4f > ε", rel)
	}
}

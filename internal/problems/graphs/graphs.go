// Package graphs implements the guess-check-expand example problems of
// paper §4.1 over undirected graphs, each as a 2-compactor whose unfold is
// the answer:
//
//   - non-independent sets: vertex subsets containing at least one edge;
//   - non-c-colorings: colorings with at least one monochromatic edge
//     (non-3-colorings for c = 3);
//   - non-vertex-covers: subsets missing both endpoints of some edge.
//
// Each comes with a brute-force counter for cross-validation.
package graphs

import (
	"fmt"
	"iter"
	"math/big"
	"strconv"

	"repaircount/internal/core"
)

// Graph is an undirected graph over vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// Validate checks vertex ranges and rejects self-loops (the three problems
// are standard for simple graphs).
func (g Graph) Validate() error {
	for ei, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N {
			return fmt.Errorf("graphs: edge %d = %v out of range [0,%d)", ei, e, g.N)
		}
		if e[0] == e[1] {
			return fmt.Errorf("graphs: edge %d is a self-loop", ei)
		}
	}
	return nil
}

const (
	inSet  core.Element = "in"
	outSet core.Element = "out"
)

// binaryDomains builds one {in,out} domain per vertex.
func binaryDomains(n int) []core.Domain {
	doms := make([]core.Domain, n)
	for v := 0; v < n; v++ {
		doms[v] = core.Domain{Name: "v" + strconv.Itoa(v), Elems: []core.Element{inSet, outSet}}
	}
	return doms
}

// edgeCerts enumerates edge indices as certificates.
func edgeCerts(g Graph) func() iter.Seq[core.Certificate] {
	return func() iter.Seq[core.Certificate] {
		return func(yield func(core.Certificate) bool) {
			for ei := range g.Edges {
				if !yield(ei) {
					return
				}
			}
		}
	}
}

// NonIndependentSets builds the 2-compactor counting vertex subsets that
// are not independent: a certificate is an edge, pinning both endpoints in.
func NonIndependentSets(g Graph) (*core.Compactor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	doms := binaryDomains(g.N)
	return &core.Compactor{
		Name:         "#NonIndependentSets",
		Doms:         doms,
		K:            2,
		Certificates: edgeCerts(g),
		Compact: func(c core.Certificate) (core.Selector, bool) {
			e := g.Edges[c.(int)]
			return core.MustSelector(doms,
				core.Pin{Index: e[0], Elem: inSet},
				core.Pin{Index: e[1], Elem: inSet}), true
		},
		Member: func(tuple []core.Element) bool {
			for _, e := range g.Edges {
				if tuple[e[0]] == inSet && tuple[e[1]] == inSet {
					return true
				}
			}
			return false
		},
	}, nil
}

// NonVertexCovers builds the 2-compactor counting vertex subsets that are
// not vertex covers: a certificate is an edge, pinning both endpoints out.
func NonVertexCovers(g Graph) (*core.Compactor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	doms := binaryDomains(g.N)
	return &core.Compactor{
		Name:         "#NonVertexCovers",
		Doms:         doms,
		K:            2,
		Certificates: edgeCerts(g),
		Compact: func(c core.Certificate) (core.Selector, bool) {
			e := g.Edges[c.(int)]
			return core.MustSelector(doms,
				core.Pin{Index: e[0], Elem: outSet},
				core.Pin{Index: e[1], Elem: outSet}), true
		},
		Member: func(tuple []core.Element) bool {
			for _, e := range g.Edges {
				if tuple[e[0]] == outSet && tuple[e[1]] == outSet {
					return true
				}
			}
			return false
		},
	}, nil
}

// NonColorings builds the 2-compactor counting c-colorings with a
// monochromatic edge: a certificate is a pair (edge, color), pinning both
// endpoints to the color. c = 3 gives non-3-colorings.
func NonColorings(g Graph, c int) (*core.Compactor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, fmt.Errorf("graphs: need at least one color, got %d", c)
	}
	palette := make([]core.Element, c)
	for i := range palette {
		palette[i] = core.Element("c" + strconv.Itoa(i))
	}
	doms := make([]core.Domain, g.N)
	for v := 0; v < g.N; v++ {
		doms[v] = core.Domain{Name: "v" + strconv.Itoa(v), Elems: palette}
	}
	type cert struct{ edge, color int }
	return &core.Compactor{
		Name: fmt.Sprintf("#Non%dColorings", c),
		Doms: doms,
		K:    2,
		Certificates: func() iter.Seq[core.Certificate] {
			return func(yield func(core.Certificate) bool) {
				for ei := range g.Edges {
					for col := 0; col < c; col++ {
						if !yield(cert{ei, col}) {
							return
						}
					}
				}
			}
		},
		Compact: func(ct core.Certificate) (core.Selector, bool) {
			cc := ct.(cert)
			e := g.Edges[cc.edge]
			return core.MustSelector(doms,
				core.Pin{Index: e[0], Elem: palette[cc.color]},
				core.Pin{Index: e[1], Elem: palette[cc.color]}), true
		},
		Member: func(tuple []core.Element) bool {
			for _, e := range g.Edges {
				if tuple[e[0]] == tuple[e[1]] {
					return true
				}
			}
			return false
		},
	}, nil
}

// BruteForceSubsets counts subsets satisfying pred by enumerating all 2^N
// subsets (membership vector indexed by vertex).
func BruteForceSubsets(g Graph, pred func(in []bool) bool) *big.Int {
	if g.N > 24 {
		panic("graphs: brute force beyond 24 vertices")
	}
	count := new(big.Int)
	one := big.NewInt(1)
	in := make([]bool, g.N)
	for mask := 0; mask < 1<<uint(g.N); mask++ {
		for v := 0; v < g.N; v++ {
			in[v] = mask&(1<<uint(v)) != 0
		}
		if pred(in) {
			count.Add(count, one)
		}
	}
	return count
}

// IsIndependent reports whether the subset is independent in g.
func IsIndependent(g Graph, in []bool) bool {
	for _, e := range g.Edges {
		if in[e[0]] && in[e[1]] {
			return false
		}
	}
	return true
}

// IsVertexCover reports whether the subset covers every edge of g.
func IsVertexCover(g Graph, in []bool) bool {
	for _, e := range g.Edges {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}

// BruteForceColorings counts c-colorings with a monochromatic edge by
// enumeration.
func BruteForceColorings(g Graph, c int) *big.Int {
	count := new(big.Int)
	one := big.NewInt(1)
	coloring := make([]int, g.N)
	var rec func(v int)
	rec = func(v int) {
		if v == g.N {
			for _, e := range g.Edges {
				if coloring[e[0]] == coloring[e[1]] {
					count.Add(count, one)
					return
				}
			}
			return
		}
		for col := 0; col < c; col++ {
			coloring[v] = col
			rec(v + 1)
		}
	}
	rec(0)
	return count
}

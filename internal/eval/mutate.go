package eval

import (
	"sort"

	"repaircount/internal/relational"
)

// This file implements delta maintenance of the evaluation index and the
// LiveInstance coordinator that applies one fact insert or delete across
// the whole substrate — database, canonical block sequence, index — as a
// single versioned mutation.
//
// The maintenance contract is ordinal stability: an insert appends a fresh
// ordinal, a delete tombstones an existing one, and the interned columns
// (facts, predicate IDs, argument arena) are strictly append-only. That is
// what lets snapshot-loaded indexes — whose columns alias a read-only
// mapped file — be mutated safely (appending past the borrowed capacity
// reallocates; nothing ever writes through the mapping), and what keeps
// every ordinal-keyed structure built before the delta meaningful after
// it. The redundant access paths are maintained eagerly per delta:
//
//   - membership buckets: the fact hash of the touched ordinal is added or
//     removed, so OrdinalOf/Contains stay exact;
//   - posting lists: a new ordinal is appended to the list of each of its
//     (position, constant) slots — new ordinals exceed all existing ones,
//     so ascending order is preserved — and a deleted ordinal is copied
//     out of each list (copy, not splice: the list may alias a snapshot
//     section);
//   - per-predicate candidates: the first mutation touching a predicate
//     materializes its live ordinal list (predCands), which overrides the
//     contiguous canonical range from then on;
//   - active domain: a per-constant refcount of live argument slots keeps
//     dom exactly equal to the domain of a freshly built index;
//   - key partitions: every memoized partition is extended with the new
//     ordinal's group (deletes need no work — tombstoned ordinals are
//     unreachable through any candidate list).
//
// Structures compiled against the index (UCQMatcher, compactors, the
// factorization) are not patched: they are cheap to recompile and the
// counting layer flushes them on version change.

// InsertFact adds a fact to the index, maintaining every access path
// incrementally. It returns the fact's ordinal and whether the index
// changed (false: the fact was already present, live).
func (idx *Index) InsertFact(f relational.Fact) (int32, bool) {
	idx.ensureBuckets()
	idx.ensurePostings()
	idx.ensureDomUses()
	if ord, ok := idx.OrdinalOf(f); ok {
		return ord, false
	}
	ord := int32(len(idx.facts))
	start := len(idx.arena)
	pid, arena := idx.in.InternFact(f, idx.arena)
	idx.arena = arena
	idx.offs = append(idx.offs, int32(len(arena)))
	idx.facts = append(idx.facts, f)
	idx.fpred = append(idx.fpred, pid)
	args := idx.arena[start:]
	idx.buckets[hashFact(pid, args)] = append(idx.buckets[hashFact(pid, args)], ord)
	for pos, cid := range args {
		k := postingKey{pred: pid, pos: uint16(pos), cid: cid}
		idx.postings[k] = append(idx.postings[k], ord)
	}
	idx.addPredCand(pid, ord)
	idx.noteDomUse(args, +1)
	idx.mu.Lock()
	for ks, p := range idx.keyParts {
		p.extend(idx, ks, ord)
	}
	idx.mu.Unlock()
	idx.byPredStale = true
	idx.version++
	return ord, true
}

// RemoveFact tombstones a fact, maintaining every access path
// incrementally. It returns the fact's (now dead) ordinal and whether the
// fact was present.
func (idx *Index) RemoveFact(f relational.Fact) (int32, bool) {
	idx.ensureBuckets()
	idx.ensurePostings()
	idx.ensureDomUses()
	ord, ok := idx.OrdinalOf(f)
	if !ok {
		return 0, false
	}
	pid := idx.fpred[ord]
	args := idx.argsOf(ord)
	h := hashFact(pid, args)
	idx.buckets[h] = removeOrdScan(idx.buckets[h], ord)
	w := int(ord) >> 6
	for len(idx.dead) <= w {
		idx.dead = append(idx.dead, 0)
	}
	idx.dead[w] |= 1 << (uint32(ord) & 63)
	idx.nDead++
	for pos, cid := range args {
		k := postingKey{pred: pid, pos: uint16(pos), cid: cid}
		if list := removeOrdCopy(idx.postings[k], ord); len(list) > 0 {
			idx.postings[k] = list
		} else {
			delete(idx.postings, k)
		}
	}
	idx.removePredCand(pid, ord)
	idx.noteDomUse(args, -1)
	idx.byPredStale = true
	idx.version++
	return ord, true
}

// ensureDomUses builds the per-constant live-use refcounts on the first
// mutation.
func (idx *Index) ensureDomUses() {
	if idx.domUses != nil {
		return
	}
	uses := make([]int32, idx.in.NumConsts())
	for ord := range idx.facts {
		if !idx.aliveOrd(int32(ord)) {
			continue
		}
		for _, cid := range idx.argsOf(int32(ord)) {
			uses[cid]++
		}
	}
	idx.domUses = uses
}

// noteDomUse adjusts the refcounts of one fact's argument slots, inserting
// a constant into the sorted domain when its count rises from zero and
// removing it when the count returns to zero.
func (idx *Index) noteDomUse(args []uint32, delta int32) {
	for _, cid := range args {
		for int(cid) >= len(idx.domUses) {
			idx.domUses = append(idx.domUses, 0)
		}
		idx.domUses[cid] += delta
		c := idx.in.ConstAt(cid)
		switch {
		case delta > 0 && idx.domUses[cid] == 1:
			// First live use: insert into the sorted domain.
			i := sort.Search(len(idx.dom), func(i int) bool { return idx.dom[i] >= c })
			if i < len(idx.dom) && idx.dom[i] == c {
				continue
			}
			idx.dom = append(idx.dom, "")
			copy(idx.dom[i+1:], idx.dom[i:])
			idx.dom[i] = c
		case delta < 0 && idx.domUses[cid] == 0:
			// Last live use gone: remove from the sorted domain.
			i := sort.Search(len(idx.dom), func(i int) bool { return idx.dom[i] >= c })
			if i < len(idx.dom) && idx.dom[i] == c {
				copy(idx.dom[i:], idx.dom[i+1:])
				idx.dom = idx.dom[:len(idx.dom)-1]
			}
		}
	}
}

// addPredCand records a freshly appended live ordinal of pred,
// materializing the predicate's live candidate list on first touch.
func (idx *Index) addPredCand(pid uint32, ord int32) {
	if idx.predCands == nil {
		idx.predCands = map[uint32][]int32{}
	}
	list, ok := idx.predCands[pid]
	if !ok {
		list = idx.liveRange(pid)
	}
	idx.predCands[pid] = append(list, ord) // new ordinals exceed all existing
}

// removePredCand drops a (just tombstoned) ordinal of pred from the
// predicate's live candidate list, materializing it on first touch.
func (idx *Index) removePredCand(pid uint32, ord int32) {
	if idx.predCands == nil {
		idx.predCands = map[uint32][]int32{}
	}
	list, ok := idx.predCands[pid]
	if !ok {
		// liveRange already excludes ord: it was tombstoned above.
		idx.predCands[pid] = idx.liveRange(pid)
		return
	}
	idx.predCands[pid] = removeOrdCopy(list, ord)
}

// liveRange materializes the live ordinals of the predicate's contiguous
// canonical range.
func (idx *Index) liveRange(pid uint32) []int32 {
	r := idx.predRange[pid]
	list := make([]int32, 0, r[1]-r[0]+1)
	for o := r[0]; o < r[1]; o++ {
		if idx.aliveOrd(o) {
			list = append(list, o)
		}
	}
	return list
}

// removeOrdCopy returns a copy of the ascending list without ord (the list
// itself is never written: it may alias a read-only snapshot section).
func removeOrdCopy(list []int32, ord int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= ord })
	if i == len(list) || list[i] != ord {
		return list
	}
	out := make([]int32, 0, len(list)-1)
	out = append(out, list[:i]...)
	return append(out, list[i+1:]...)
}

// removeOrdScan is removeOrdCopy for lists in no particular order (the
// membership buckets, whose ordinals were permuted by the canonical sort).
func removeOrdScan(list []int32, ord int32) []int32 {
	for i, o := range list {
		if o == ord {
			out := make([]int32, 0, len(list)-1)
			out = append(out, list[:i]...)
			return append(out, list[i+1:]...)
		}
	}
	return list
}

// LiveInstance is the versioned mutable instance: one database plus key
// set with its maintained canonical block sequence and evaluation index,
// mutated in lockstep. It is the single shared substrate behind every
// counter built on one instance — counters detect staleness of their
// compiled/memoized structures by comparing Version — and the replay
// target of the snapshot store's delta journal. Mutation is not safe
// concurrently with other mutations or with counting.
type LiveInstance struct {
	DB     *relational.Database
	Keys   *relational.KeySet
	Blocks *relational.BlockSeq
	Idx    *Index
}

// NewLiveInstance bundles an existing coherent substrate: blocks must be
// the canonical sequence ≺(D,Σ) of (db, ks) and idx must index exactly the
// live facts of db.
func NewLiveInstance(db *relational.Database, ks *relational.KeySet, blocks *relational.BlockSeq, idx *Index) *LiveInstance {
	return &LiveInstance{DB: db, Keys: ks, Blocks: blocks, Idx: idx}
}

// Version returns the monotonically increasing instance version (the
// number of successful mutations since construction).
func (li *LiveInstance) Version() uint64 { return li.Idx.Version() }

// Apply performs one mutation — insert (del=false) or delete (del=true) of
// fact f — across the database, the block sequence and the index. It
// reports whether the instance changed (duplicate inserts and misses are
// no-ops) and fails only on an arity clash.
func (li *LiveInstance) Apply(del bool, f relational.Fact) (bool, error) {
	if del {
		if !li.DB.Delete(f) {
			return false, nil
		}
		li.Blocks.Remove(li.Keys, f)
		li.Idx.RemoveFact(f)
		return true, nil
	}
	added, err := li.DB.Insert(f)
	if err != nil || !added {
		return false, err
	}
	li.Blocks.Insert(li.Keys, f)
	li.Idx.InsertFact(f)
	return true, nil
}

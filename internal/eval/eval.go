// Package eval implements query evaluation over databases: first-order
// model checking with active-domain semantics, conjunctive-query
// homomorphism search, UCQ evaluation, and the Σ-consistent homomorphism
// search that underlies Lemma 3.5 of the paper (the logspace decision
// procedure for #CQA>0(∃FO⁺)).
//
// Evaluation runs over an interned fact Index (see index.go): constants
// and predicates are dense uint32 IDs, membership is an integer-keyed hash
// probe, and joins probe (predicate × position × constant) posting lists
// ordered by bound-variable selectivity instead of scanning every fact of
// a predicate.
package eval

import (
	"fmt"
	"sort"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Binding maps variables to constants.
type Binding map[query.Var]relational.Const

// Clone copies a binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Canonical returns a canonical string for the binding (sorted by variable).
func (b Binding) Canonical() string {
	keys := make([]string, 0, len(b))
	for v := range b {
		keys = append(keys, string(v))
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + string(b[query.Var(k)]) + ";"
	}
	return s
}

// EvalFO model-checks an arbitrary first-order formula under active-domain
// semantics: quantifiers range over the active domain of the indexed facts.
// env binds the free variables; evaluating a formula with an unbound free
// variable panics (callers substitute tuples first).
func EvalFO(f query.Formula, idx *Index, env Binding) bool {
	switch f := f.(type) {
	case query.AtomF:
		fact, ok := groundUnder(f.Atom, env)
		if !ok {
			panic(fmt.Sprintf("eval: unbound variable in atom %s", f.Atom))
		}
		return idx.Contains(fact)
	case query.And:
		for _, k := range f.Kids {
			if !EvalFO(k, idx, env) {
				return false
			}
		}
		return true
	case query.Or:
		for _, k := range f.Kids {
			if EvalFO(k, idx, env) {
				return true
			}
		}
		return false
	case query.Not:
		return !EvalFO(f.Kid, idx, env)
	case query.Exists:
		return evalExists(f.Vars, f.Kid, idx, env)
	case query.Forall:
		// ∀x̄ φ ≡ ¬∃x̄ ¬φ; pushing the negation one level exposes the
		// guard atoms of the common shape ∀x̄ (R(x̄) → ψ) to the
		// join-based existential evaluator.
		return !evalExists(f.Vars, negate(f.Kid), idx, env)
	case query.Truth:
		return f.Val
	default:
		panic(fmt.Sprintf("eval: unknown formula type %T", f))
	}
}

// negate builds ¬f, pushing the negation through one level of structure
// (De Morgan) and cancelling double negations, so that implications under
// universal quantifiers expose positive guard atoms.
func negate(f query.Formula) query.Formula {
	switch f := f.(type) {
	case query.Not:
		return f.Kid
	case query.Truth:
		return query.Truth{Val: !f.Val}
	case query.And:
		kids := make([]query.Formula, len(f.Kids))
		for i, k := range f.Kids {
			kids[i] = negate(k)
		}
		return query.Or{Kids: kids}
	case query.Or:
		kids := make([]query.Formula, len(f.Kids))
		for i, k := range f.Kids {
			kids[i] = negate(k)
		}
		return query.And{Kids: kids}
	default:
		return query.Not{Kid: f}
	}
}

// candidatesFor returns the candidate fact set for an atom under the
// current binding: the shortest posting list among positions carrying a
// constant or an already-bound variable, or the atom's full predicate
// range when no position is bound. An atom mentioning a predicate or
// constant unknown to the index has no candidates.
func (idx *Index) candidatesFor(a query.Atom, env Binding) candSet {
	pid, ok := idx.in.LookupPred(a.Pred)
	if !ok {
		return candSet{}
	}
	var best candSet
	if list, ok := idx.predCands[pid]; ok {
		best = candSet{list: list}
	} else if r, ok := idx.predRange[pid]; ok {
		best = candSet{lo: r[0], hi: r[1]}
	} else {
		return candSet{}
	}
	for pos, t := range a.Args {
		var c relational.Const
		switch t := t.(type) {
		case query.ConstTerm:
			c = relational.Const(t)
		case query.Var:
			bound, ok := env[t]
			if !ok {
				continue
			}
			c = bound
		default:
			continue
		}
		cid, ok := idx.in.LookupConst(c)
		if !ok {
			return candSet{} // constant absent from the index: no match
		}
		idx.ensurePostings()
		list := idx.postings[postingKey{pred: pid, pos: uint16(pos), cid: cid}]
		if int32(len(list)) < best.size() {
			best = candSet{list: list}
		}
	}
	return best
}

// evalExists evaluates ∃x̄ φ. When φ is a conjunction containing positive
// atoms over quantified variables, the evaluator backtracks over matching
// facts for those atoms (a join) instead of scanning dom(D)^|x̄|, and only
// the remaining conjuncts are model-checked per binding. Guard atoms are
// chosen dynamically by bound-variable selectivity: at every depth the
// pending atom with the fewest candidate facts (per the posting lists) is
// matched next. Atom arguments are always database constants, so the join
// never leaves the active domain; variables in no positive atom fall back
// to a domain scan. This keeps first-order queries such as the Theorem
// 3.2/3.3 SAT encoding (seven quantified variables, one guard atom)
// evaluable in linear rather than |dom|⁷ time.
func evalExists(vars []query.Var, kid query.Formula, idx *Index, env Binding) bool {
	// Flatten the body into conjuncts.
	var conjuncts []query.Formula
	switch k := kid.(type) {
	case query.And:
		conjuncts = k.Kids
	default:
		conjuncts = []query.Formula{kid}
	}
	var atoms []query.Atom
	var rest []query.Formula
	for _, c := range conjuncts {
		if a, ok := c.(query.AtomF); ok {
			atoms = append(atoms, a.Atom)
		} else {
			rest = append(rest, c)
		}
	}
	if len(atoms) == 0 {
		return evalQuant(vars, kid, idx, env, false)
	}
	quantified := make(map[query.Var]bool, len(vars))
	for _, v := range vars {
		quantified[v] = true
	}
	used := make([]bool, len(atoms))
	// Backtrack over the guard atoms (most selective first), then finish
	// remaining variables and conjuncts.
	var joined func(nUsed int) bool
	joined = func(nUsed int) bool {
		if nUsed == len(atoms) {
			var unbound []query.Var
			for _, v := range vars {
				if _, ok := env[v]; !ok {
					unbound = append(unbound, v)
				}
			}
			body := query.And{Kids: rest}
			return evalQuant(unbound, body, idx, env, false)
		}
		// Select the pending atom with the fewest candidates.
		best := -1
		var bestC candSet
		for i := range atoms {
			if used[i] {
				continue
			}
			c := idx.candidatesFor(atoms[i], env)
			if best < 0 || c.size() < bestC.size() {
				best, bestC = i, c
			}
		}
		a := atoms[best]
		used[best] = true
		defer func() { used[best] = false }()
		for k := int32(0); k < bestC.size(); k++ {
			fact := idx.facts[bestC.at(k)]
			newly, ok := unify(a, fact, env)
			if !ok {
				continue
			}
			// Quantified-variable discipline: unify may bind outer free
			// variables only if they were already bound (checked by unify);
			// newly bound variables must be quantified here.
			legal := true
			for _, v := range newly {
				if !quantified[v] {
					legal = false
					break
				}
			}
			if legal && joined(nUsed+1) {
				for _, v := range newly {
					delete(env, v)
				}
				return true
			}
			for _, v := range newly {
				delete(env, v)
			}
		}
		return false
	}
	return joined(0)
}

// evalQuant evaluates a block of quantified variables. forall selects
// universal semantics, otherwise existential.
func evalQuant(vars []query.Var, kid query.Formula, idx *Index, env Binding, forall bool) bool {
	if len(vars) == 0 {
		return EvalFO(kid, idx, env)
	}
	v, rest := vars[0], vars[1:]
	saved, had := env[v]
	defer func() {
		if had {
			env[v] = saved
		} else {
			delete(env, v)
		}
	}()
	for _, c := range idx.dom {
		env[v] = c
		got := evalQuant(rest, kid, idx, env, forall)
		if forall && !got {
			return false
		}
		if !forall && got {
			return true
		}
	}
	return forall
}

// EvalBoolean model-checks a Boolean formula (no free variables).
func EvalBoolean(f query.Formula, idx *Index) bool {
	if fv := query.FreeVars(f); len(fv) > 0 {
		panic(fmt.Sprintf("eval: formula has free variables %v; substitute a tuple first", fv))
	}
	return EvalFO(f, idx, Binding{})
}

// groundUnder applies the binding to the atom and converts it into a fact;
// ok is false if a variable remains unbound.
func groundUnder(a query.Atom, env Binding) (relational.Fact, bool) {
	args := make([]relational.Const, len(a.Args))
	for i, t := range a.Args {
		switch t := t.(type) {
		case query.ConstTerm:
			args[i] = relational.Const(t)
		case query.Var:
			c, ok := env[t]
			if !ok {
				return relational.Fact{}, false
			}
			args[i] = c
		}
	}
	return relational.Fact{Pred: a.Pred, Args: args}, true
}

// Answers computes Q(D) for a query with free variables x̄ (sorted order, as
// returned by query.FreeVars): the set of tuples c̄ ∈ dom(D)^|x̄| with
// D ⊨ φ(c̄), per the paper's definition of query answers. Tuples are
// returned in lexicographic order.
func Answers(f query.Formula, idx *Index) [][]relational.Const {
	free := query.FreeVars(f)
	if len(free) == 0 {
		if EvalBoolean(f, idx) {
			return [][]relational.Const{{}}
		}
		return nil
	}
	var out [][]relational.Const
	tuple := make([]relational.Const, len(free))
	env := Binding{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(free) {
			if EvalFO(f, idx, env) {
				cp := make([]relational.Const, len(tuple))
				copy(cp, tuple)
				out = append(out, cp)
			}
			return
		}
		for _, c := range idx.dom {
			tuple[i] = c
			env[free[i]] = c
			rec(i + 1)
		}
		delete(env, free[i])
	}
	rec(0)
	return out
}

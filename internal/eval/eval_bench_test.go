package eval

import (
	"strconv"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Ablation benchmark for the DESIGN.md-called-out design choice: the
// join-based fast path for guarded quantifiers vs the naive
// active-domain scan. The workload is the Theorem 3.2/3.3 SAT-encoding
// shape: ∀ 7 variables guarded by a single Clause atom.
func satShapeIndex(nVars, nClauses int) *Index {
	var facts []relational.Fact
	for v := 0; v < nVars; v++ {
		name := relational.Const("v" + strconv.Itoa(v))
		facts = append(facts,
			relational.NewFact("Var", name, "1"),
			relational.NewFact("Clause", relational.Const("c"+strconv.Itoa(v%nClauses)),
				name, "1", name, "1", name, "1"))
	}
	return NewIndex(facts)
}

var satShapeQuery = query.MustParse(
	"forall c, v1, t1, v2, t2, v3, t3 . (Clause(c, v1, t1, v2, t2, v3, t3) -> Var(v1, t1))")

func BenchmarkGuardedForallFastPath(b *testing.B) {
	idx := satShapeIndex(24, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !EvalBoolean(satShapeQuery, idx) {
			b.Fatal("query must hold")
		}
	}
}

func BenchmarkGuardedForallNaive(b *testing.B) {
	// Much smaller instance: the naive path is Θ(|dom|⁷).
	idx := satShapeIndex(4, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !EvalFONaive(satShapeQuery, idx, Binding{}) {
			b.Fatal("query must hold")
		}
	}
}

func BenchmarkHomSearchWide(b *testing.B) {
	var facts []relational.Fact
	for i := 0; i < 500; i++ {
		facts = append(facts, relational.NewFact("R",
			relational.IntConst(i%50), relational.IntConst(i%7)))
	}
	idx := NewIndex(facts)
	q := query.MustToUCQ(query.MustParse("exists x, y, z . (R(x, y) & R(z, '3') & R(x, '5'))")).Disjuncts[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for range Homs(q, idx) {
			n++
		}
	}
}

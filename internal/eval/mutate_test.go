package eval

import (
	"math/rand/v2"
	"strconv"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// randomFact draws a fact over a small universe, so streams collide with
// earlier inserts often enough to exercise duplicates and misses.
func randomFact(rng *rand.Rand) relational.Fact {
	pred := "P" + strconv.Itoa(rng.IntN(3))
	return relational.Fact{Pred: pred, Args: []relational.Const{
		relational.Const("k" + strconv.Itoa(rng.IntN(4))),
		relational.Const("v" + strconv.Itoa(rng.IntN(4))),
	}}
}

// TestIndexMutationDifferential drives a random insert/delete stream
// through a mutable index and, after every mutation, compares it against a
// freshly built index over the same live fact set: membership, live
// counts, the sorted domain, per-predicate facts, and the results of the
// compiled matcher (which exercises posting lists, candidate lists and the
// maintained key partition).
func TestIndexMutationDifferential(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 11))
	ks := relational.Keys(map[string]int{"P0": 1, "P1": 1}) // P2 unkeyed
	queries := []query.UCQ{
		mustUCQ(t, "exists x . P0(x, 'v1')"),
		mustUCQ(t, "exists x, y . (P0(x, 'v0') & P1(x, y))"),
		mustUCQ(t, "exists x . (P2(x, 'v2') | P1(x, 'v3'))"),
	}

	var live []relational.Fact
	idx := NewIndex(nil)
	for step := 0; step < 160; step++ {
		f := randomFact(rng)
		if rng.IntN(2) == 0 && len(live) > 0 {
			f = live[rng.IntN(len(live))]
			ord, ok := idx.RemoveFact(f)
			if !ok {
				t.Fatalf("step %d: live fact %v missing from index", step, f)
			}
			if idx.Alive(ord) {
				t.Fatalf("step %d: removed ordinal %d still alive", step, ord)
			}
			for i := range live {
				if live[i].Equal(f) {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		} else {
			dup := contains(live, f)
			_, added := idx.InsertFact(f)
			if added == dup {
				t.Fatalf("step %d: insert %v reported added=%v with dup=%v", step, f, added, dup)
			}
			if !dup {
				live = append(live, f)
			}
		}

		fresh := NewIndex(live)
		if idx.LiveFacts() != fresh.Len() {
			t.Fatalf("step %d: %d live facts vs %d rebuilt", step, idx.LiveFacts(), fresh.Len())
		}
		for _, g := range live {
			if !idx.Contains(g) {
				t.Fatalf("step %d: live fact %v not in index", step, g)
			}
		}
		if idx.Contains(randomAbsent(rng, live)) {
			t.Fatalf("step %d: absent fact reported present", step)
		}
		ld, fd := idx.Dom(), fresh.Dom()
		if len(ld) != len(fd) {
			t.Fatalf("step %d: dom %v vs rebuilt %v", step, ld, fd)
		}
		for i := range ld {
			if ld[i] != fd[i] {
				t.Fatalf("step %d: dom %v vs rebuilt %v", step, ld, fd)
			}
		}
		for _, p := range []string{"P0", "P1", "P2"} {
			lf, ff := idx.FactsFor(p), fresh.FactsFor(p)
			if len(lf) != len(ff) {
				t.Fatalf("step %d: FactsFor(%s) %v vs rebuilt %v", step, p, lf, ff)
			}
			for i := range lf {
				if !lf[i].Equal(ff[i]) {
					t.Fatalf("step %d: FactsFor(%s) %v vs rebuilt %v", step, p, lf, ff)
				}
			}
		}
		for qi, u := range queries {
			for _, useKeys := range []*relational.KeySet{nil, ks} {
				lm := NewConsistentUCQMatcher(u, idx, useKeys).HasHom()
				fm := NewConsistentUCQMatcher(u, fresh, useKeys).HasHom()
				if lm != fm {
					t.Fatalf("step %d: query %d (keys=%v): live %v vs rebuilt %v", step, qi, useKeys != nil, lm, fm)
				}
			}
		}
	}
}

func contains(facts []relational.Fact, f relational.Fact) bool {
	for _, g := range facts {
		if g.Equal(f) {
			return true
		}
	}
	return false
}

func randomAbsent(rng *rand.Rand, live []relational.Fact) relational.Fact {
	for {
		f := randomFact(rng)
		if !contains(live, f) {
			return f
		}
	}
}

func mustUCQ(t *testing.T, src string) query.UCQ {
	t.Helper()
	u, err := query.ToUCQ(query.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

package eval

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// The optimized evaluator (join fast path for ∃ conjunctions, De Morgan
// push for ∀) must agree with the naive active-domain evaluator on every
// formula. The corpus mixes quantifier shapes, negation, implications,
// repeated variables and constants — including the shapes the fast paths
// rewrite.
var fastPathCorpus = []string{
	"exists x . R(x, x)",
	"exists x, y . (R(x, y) & !S(y))",
	"exists x, y . (R(x, y) & S(y))",
	"forall x . (S(x) -> exists y . R(x, y))",
	"forall x, y . (R(x, y) -> S(x))",
	"!(exists x . (S(x) & !S(x)))",
	"forall x . (R(x, 'a') | !R(x, 'a'))",
	"exists x . (S(x) & (exists y . R(y, x)))",
	"forall x . exists y . (R(x, y) | R(y, x) | !S(x))",
	"(exists x . S(x)) -> (exists x, y . R(x, y))",
	"forall c, u, v . (T(c, u, v) -> (S(u) | S(v)))",
	"exists u, v . (T(u, u, v) & !(S(u) & S(v)))",
	"true & (false | exists q . S(q))",
}

func randomFactsForFastPath(rng *rand.Rand) []relational.Fact {
	dom := []relational.Const{"a", "b", "c"}
	var facts []relational.Fact
	for i := 0; i < rng.IntN(8); i++ {
		facts = append(facts, relational.NewFact("R", dom[rng.IntN(3)], dom[rng.IntN(3)]))
	}
	for i := 0; i < rng.IntN(4); i++ {
		facts = append(facts, relational.NewFact("S", dom[rng.IntN(3)]))
	}
	for i := 0; i < rng.IntN(3); i++ {
		facts = append(facts, relational.NewFact("T", dom[rng.IntN(3)], dom[rng.IntN(3)], dom[rng.IntN(3)]))
	}
	return facts
}

// Property: optimized == naive on random databases across the corpus.
func TestEvalFastPathsAgreeWithNaiveProperty(t *testing.T) {
	prop := func(seed uint64, qi uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 131))
		idx := NewIndex(randomFactsForFastPath(rng))
		src := fastPathCorpus[int(qi)%len(fastPathCorpus)]
		f := query.MustParse(src)
		fast := EvalBoolean(f, idx)
		naive := EvalFONaive(f, idx, Binding{})
		if fast != naive {
			t.Logf("seed %d query %q: fast=%v naive=%v db=%v", seed, src, fast, naive, idx.Dom())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

// The empty database exercises the empty-active-domain corner of both
// paths.
func TestEvalFastPathsEmptyDomain(t *testing.T) {
	idx := NewIndex(nil)
	for _, src := range fastPathCorpus {
		f := query.MustParse(src)
		if got, want := EvalBoolean(f, idx), EvalFONaive(f, idx, Binding{}); got != want {
			t.Errorf("%q on empty db: fast=%v naive=%v", src, got, want)
		}
	}
}

// negate must be a semantic negation on arbitrary formulas.
func TestNegateSemantics(t *testing.T) {
	prop := func(seed uint64, qi uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 137))
		idx := NewIndex(randomFactsForFastPath(rng))
		f := query.MustParse(fastPathCorpus[int(qi)%len(fastPathCorpus)])
		return EvalBoolean(negate(f), idx) == !EvalBoolean(f, idx)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

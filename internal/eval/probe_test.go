package eval

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Tests for the factorized-counter probes: ordinal lookup, ordinal-image
// enumeration, and the masked matcher — each pinned to an existing path.

func probeFixture(t *testing.T, seed uint64) (*Index, *relational.KeySet, query.UCQ) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 77))
	var facts []relational.Fact
	vals := []relational.Const{"a", "b", "c"}
	for i := 0; i < 3+rng.IntN(4); i++ {
		for j := 0; j < 1+rng.IntN(3); j++ {
			facts = append(facts, relational.NewFact("R", relational.IntConst(i), vals[rng.IntN(len(vals))]))
		}
	}
	for i := 0; i < 2+rng.IntN(3); i++ {
		facts = append(facts, relational.NewFact("S", relational.IntConst(i), vals[rng.IntN(len(vals))]))
	}
	ks := relational.Keys(map[string]int{"R": 1, "S": 1})
	u := query.MustToUCQ(query.MustParse(
		"(exists x, y . (R(x, 'a') & R(y, 'b'))) | (exists x, y . (R(x, y) & S(x, y)))"))
	return NewIndex(facts), ks, u
}

func TestOrdinalOf(t *testing.T) {
	idx, _, _ := probeFixture(t, 1)
	for ord := 0; ord < idx.NumFacts(); ord++ {
		got, ok := idx.OrdinalOf(idx.FactAt(ord))
		if !ok || got != int32(ord) {
			t.Fatalf("OrdinalOf(FactAt(%d)) = %d, %v", ord, got, ok)
		}
	}
	if _, ok := idx.OrdinalOf(relational.NewFact("R", "999", "zz")); ok {
		t.Fatal("OrdinalOf found an absent fact")
	}
	if _, ok := idx.OrdinalOf(relational.NewFact("T", "1")); ok {
		t.Fatal("OrdinalOf found an absent predicate")
	}
}

// The ordinal images must be exactly the images of ConsistentHoms, read
// through OrdinalOf.
func TestConsistentHomImageOrdsDifferential(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		idx, ks, u := probeFixture(t, seed)
		for _, q := range u.Disjuncts {
			var got []string
			for ords := range ConsistentHomImageOrds(q, idx, ks) {
				if len(ords) != len(q.Atoms) {
					t.Fatalf("seed %d: image has %d ordinals for %d atoms", seed, len(ords), len(q.Atoms))
				}
				got = append(got, ordsKey(ords))
			}
			var want []string
			for h := range ConsistentHoms(q, idx, ks) {
				ords := make([]int32, 0, len(q.Atoms))
				for _, f := range Image(q, h) {
					ord, ok := idx.OrdinalOf(f)
					if !ok {
						t.Fatalf("seed %d: image fact %s not indexed", seed, f)
					}
					ords = append(ords, ord)
				}
				want = append(want, ordsKey(ords))
			}
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("seed %d: %d ordinal images, reference has %d", seed, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d: image %q, reference %q", seed, got[i], want[i])
				}
			}
		}
	}
}

func ordsKey(ords []int32) string {
	cp := append([]int32(nil), ords...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := make([]byte, 0, 2*len(cp))
	for _, o := range cp {
		out = append(out, byte('A'+o/64), byte(' '+o%64))
	}
	return string(out)
}

// HasHomMasked must agree with HasHomWhere over random masks.
func TestHasHomMaskedDifferential(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		idx, ks, u := probeFixture(t, seed)
		m := NewUCQMatcher(u, idx)
		cm := NewConsistentUCQMatcher(u, idx, ks)
		rng := rand.New(rand.NewPCG(seed, 99))
		mask := make([]uint64, (idx.NumFacts()+63)/64)
		for trial := 0; trial < 50; trial++ {
			allowed := make([]bool, idx.NumFacts())
			for i := range mask {
				mask[i] = 0
			}
			for ord := range allowed {
				if rng.IntN(3) > 0 {
					allowed[ord] = true
					mask[ord/64] |= 1 << (uint(ord) % 64)
				}
			}
			filter := func(ord int32) bool { return allowed[ord] }
			if got, want := m.HasHomMasked(mask), m.HasHomWhere(filter); got != want {
				t.Fatalf("seed %d trial %d: plain HasHomMasked = %v, HasHomWhere = %v", seed, trial, got, want)
			}
			if got, want := cm.HasHomMasked(mask), cm.HasHomWhere(filter); got != want {
				t.Fatalf("seed %d trial %d: consistent HasHomMasked = %v, HasHomWhere = %v", seed, trial, got, want)
			}
		}
	}
}

package eval

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

func exampleIndex() *Index {
	return NewIndex([]relational.Fact{
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	})
}

func TestIndexBasics(t *testing.T) {
	idx := exampleIndex()
	if idx.Len() != 4 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if !idx.Contains(relational.NewFact("Employee", "1", "Bob", "HR")) {
		t.Fatalf("Contains failed")
	}
	if idx.Contains(relational.NewFact("Employee", "9", "X", "Y")) {
		t.Fatalf("Contains false positive")
	}
	if got := len(idx.FactsFor("Employee")); got != 4 {
		t.Fatalf("FactsFor = %d", got)
	}
	if got := len(idx.Dom()); got != 7 {
		t.Fatalf("Dom = %v", idx.Dom())
	}
}

func TestEvalFOOnExample(t *testing.T) {
	idx := exampleIndex()
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	if !EvalBoolean(q, idx) {
		t.Fatalf("query must hold on the full (inconsistent) database")
	}
	// On the repair where Bob is in HR, the query fails.
	rep := NewIndex([]relational.Fact{
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
	})
	if EvalBoolean(q, rep) {
		t.Fatalf("query must fail on the HR repair")
	}
}

func TestEvalFONegationAndUniversal(t *testing.T) {
	idx := NewIndex([]relational.Fact{
		relational.NewFact("R", "a"),
		relational.NewFact("R", "b"),
		relational.NewFact("S", "a"),
	})
	if !EvalBoolean(query.MustParse("exists x . (R(x) & !S(x))"), idx) {
		t.Fatalf("b is in R but not S")
	}
	if EvalBoolean(query.MustParse("forall x . (R(x) -> S(x))"), idx) {
		t.Fatalf("not all R are S")
	}
	if !EvalBoolean(query.MustParse("forall x . (S(x) -> R(x))"), idx) {
		t.Fatalf("all S are R")
	}
	// Universal over empty domain is true; existential false.
	empty := NewIndex(nil)
	if !EvalBoolean(query.MustParse("forall x . R(x)"), empty) {
		t.Fatalf("forall over empty domain must hold")
	}
	if EvalBoolean(query.MustParse("exists x . R(x)"), empty) {
		t.Fatalf("exists over empty domain must fail")
	}
}

func TestEvalTruthConstants(t *testing.T) {
	idx := NewIndex(nil)
	if !EvalBoolean(query.MustParse("true"), idx) || EvalBoolean(query.MustParse("false"), idx) {
		t.Fatalf("truth constants broken")
	}
}

func TestAnswers(t *testing.T) {
	idx := exampleIndex()
	// Who works in IT? One free variable n.
	f := query.MustParse("exists i . Employee(i, n, 'IT')")
	got := Answers(f, idx)
	want := map[relational.Const]bool{"Alice": true, "Bob": true, "Tim": true}
	if len(got) != len(want) {
		t.Fatalf("answers = %v", got)
	}
	for _, tuple := range got {
		if !want[tuple[0]] {
			t.Fatalf("unexpected answer %v", tuple)
		}
	}
	// Boolean query answers: the empty tuple iff true.
	if n := len(Answers(query.MustParse("exists x,y,z . Employee(x,y,z)"), idx)); n != 1 {
		t.Fatalf("boolean true must yield 1 empty tuple, got %d", n)
	}
}

func TestHomsEnumeration(t *testing.T) {
	idx := exampleIndex()
	u := query.MustToUCQ(query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))"))
	q := u.Disjuncts[0]
	var all []Binding
	for h := range Homs(q, idx) {
		all = append(all, h.Clone())
	}
	// Matches: y must be a department shared by employee 1 and 2: only IT
	// works (Bob-IT with Alice-IT and Tim-IT). So two homomorphisms.
	if len(all) != 2 {
		t.Fatalf("want 2 homomorphisms, got %d: %v", len(all), all)
	}
	for _, h := range all {
		img := Image(q, h)
		for _, f := range img {
			if !idx.Contains(f) {
				t.Fatalf("hom image not in database: %v", f)
			}
		}
	}
}

func TestConsistentHomsRespectKeys(t *testing.T) {
	// h(q) must itself satisfy Σ: mapping both atoms into the same block
	// with different facts is rejected.
	idx := NewIndex([]relational.Fact{
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
	})
	ks := relational.Keys(map[string]int{"R": 1})
	u := query.MustToUCQ(query.MustParse("exists x, y . (R(x, 'a') & R(y, 'b'))"))
	q := u.Disjuncts[0]
	if !HasHom(q, idx) {
		t.Fatalf("plain homomorphism must exist")
	}
	if HasConsistentHom(q, idx, ks) {
		t.Fatalf("consistent homomorphism must not exist: both atoms map into block R[1]")
	}
	// With a second block the query becomes consistently satisfiable.
	idx2 := NewIndex([]relational.Fact{
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
		relational.NewFact("R", "2", "b"),
	})
	if !HasConsistentHom(q, idx2, ks) {
		t.Fatalf("consistent homomorphism must exist via R(2,b)")
	}
}

func TestConsistentHomSameFactTwice(t *testing.T) {
	// Two atoms mapping to the SAME fact is consistent (h(q) is a set).
	idx := NewIndex([]relational.Fact{relational.NewFact("R", "1", "a")})
	ks := relational.Keys(map[string]int{"R": 1})
	u := query.MustToUCQ(query.MustParse("exists x, y . (R(x, y) & R(x, 'a'))"))
	if !HasConsistentHom(u.Disjuncts[0], idx, ks) {
		t.Fatalf("mapping both atoms to the same fact must be consistent")
	}
}

func TestEvalUCQ(t *testing.T) {
	idx := exampleIndex()
	u := query.MustToUCQ(query.MustParse("(exists x . Employee(x, 'Zed', 'HR')) | (exists x . Employee(x, 'Tim', 'IT'))"))
	if !EvalUCQ(u, idx) {
		t.Fatalf("second disjunct holds")
	}
	u2 := query.MustToUCQ(query.MustParse("exists x . Employee(x, 'Zed', 'HR')"))
	if EvalUCQ(u2, idx) {
		t.Fatalf("no Zed in the database")
	}
}

func TestHomsWithRepeatedVariable(t *testing.T) {
	idx := NewIndex([]relational.Fact{
		relational.NewFact("E", "a", "a"),
		relational.NewFact("E", "a", "b"),
	})
	u := query.MustToUCQ(query.MustParse("exists x . E(x, x)"))
	n := 0
	for range Homs(u.Disjuncts[0], idx) {
		n++
	}
	if n != 1 {
		t.Fatalf("want exactly the loop edge, got %d homs", n)
	}
}

func TestHomsEarlyStop(t *testing.T) {
	idx := exampleIndex()
	u := query.MustToUCQ(query.MustParse("exists x, y, z . Employee(x, y, z)"))
	n := 0
	for range Homs(u.Disjuncts[0], idx) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("early stop failed")
	}
}

// Property: EvalUCQ agrees with EvalFO on the UCQ's formula, for random
// small databases and a fixed query corpus.
func TestUCQAgreesWithFOProperty(t *testing.T) {
	queries := []string{
		"exists x, y . (R(x, y) & S(y))",
		"(exists x . R(x, x)) | (exists y . S(y))",
		"exists x, y, z . (R(x, y) & R(y, z))",
		"true",
		"false",
	}
	prop := func(seed uint64, qi uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		var facts []relational.Fact
		dom := []relational.Const{"a", "b", "c"}
		for i := 0; i < rng.IntN(8); i++ {
			facts = append(facts, relational.NewFact("R", dom[rng.IntN(3)], dom[rng.IntN(3)]))
		}
		for i := 0; i < rng.IntN(4); i++ {
			facts = append(facts, relational.NewFact("S", dom[rng.IntN(3)]))
		}
		idx := NewIndex(facts)
		f := query.MustParse(queries[int(qi)%len(queries)])
		u := query.MustToUCQ(f)
		return EvalUCQ(u, idx) == EvalBoolean(f, idx)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: ConsistentHoms is exactly Homs filtered by image consistency.
func TestConsistentHomsFilterProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		var facts []relational.Fact
		dom := []relational.Const{"a", "b"}
		for i := 0; i < 2+rng.IntN(6); i++ {
			facts = append(facts, relational.NewFact("R", dom[rng.IntN(2)], dom[rng.IntN(2)]))
		}
		idx := NewIndex(facts)
		ks := relational.Keys(map[string]int{"R": 1})
		u := query.MustToUCQ(query.MustParse("exists x, y, z . (R(x, y) & R(z, 'a'))"))
		q := u.Disjuncts[0]
		want := map[string]bool{}
		for h := range Homs(q, idx) {
			img := Image(q, h)
			db := relational.Subset(img)
			if db.Satisfies(ks) {
				want[h.Canonical()] = true
			}
		}
		got := map[string]bool{}
		for h := range ConsistentHoms(q, idx, ks) {
			got[h.Canonical()] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

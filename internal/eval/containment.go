package eval

import (
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// This file implements the Chandra–Merlin containment test for Boolean
// conjunctive queries and UCQ minimization on top of it. Minimization
// removes disjuncts subsumed by others, which shrinks the certificate
// space of Algorithm 2 (fewer (disjunct, homomorphism) pairs) without
// changing any count — the tests verify count preservation on random
// instances.

// CQContained reports whether q1 ⊆ q2 for Boolean CQs (every database
// satisfying q1 satisfies q2): by the Chandra–Merlin theorem, iff there is
// a homomorphism from q2 into the canonical database of q1 (q1's atoms
// with variables frozen to fresh constants).
func CQContained(q1, q2 query.CQ) bool {
	frozen := make(map[query.Var]relational.Const)
	for _, v := range q1.Vars() {
		frozen[v] = relational.Const("⟨" + string(v) + "⟩")
	}
	facts := make([]relational.Fact, 0, len(q1.Atoms))
	for _, a := range q1.Atoms {
		fact, ok := query.GroundAtom(query.SubstituteAtom(a, frozen))
		if !ok {
			panic("eval: canonical database construction left a variable")
		}
		facts = append(facts, fact)
	}
	return HasHom(q2, NewIndex(facts))
}

// CQEquivalent reports whether the two Boolean CQs have the same models.
func CQEquivalent(q1, q2 query.CQ) bool {
	return CQContained(q1, q2) && CQContained(q2, q1)
}

// MinimizeUCQ removes every disjunct contained in another disjunct,
// keeping one representative (the first) of each equivalence class. The
// result is logically equivalent to the input: if qᵢ ⊆ qⱼ then
// qᵢ ∨ qⱼ ≡ qⱼ.
func MinimizeUCQ(u query.UCQ) query.UCQ {
	n := len(u.Disjuncts)
	keep := make([]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = true
	}
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || !keep[j] {
				continue
			}
			if !CQContained(u.Disjuncts[i], u.Disjuncts[j]) {
				continue
			}
			// q_i ⊆ q_j. Drop q_i unless they are equivalent and i is the
			// earlier (representative) index.
			if CQContained(u.Disjuncts[j], u.Disjuncts[i]) && i < j {
				continue
			}
			keep[i] = false
			break
		}
	}
	var out query.UCQ
	for i, q := range u.Disjuncts {
		if keep[i] {
			out.Disjuncts = append(out.Disjuncts, q)
		}
	}
	return out
}

package eval

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

func cq(t *testing.T, src string) query.CQ {
	t.Helper()
	u := query.MustToUCQ(query.MustParse(src))
	if len(u.Disjuncts) != 1 {
		t.Fatalf("%q is not a single CQ", src)
	}
	return u.Disjuncts[0]
}

func TestCQContainedBasics(t *testing.T) {
	// R(x,y) ∧ S(y) ⊆ R(x,y): dropping atoms enlarges the models.
	q1 := cq(t, "exists x, y . (R(x, y) & S(y))")
	q2 := cq(t, "exists x, y . R(x, y)")
	if !CQContained(q1, q2) {
		t.Fatalf("conjunction must be contained in its conjunct")
	}
	if CQContained(q2, q1) {
		t.Fatalf("R(x,y) is not contained in R(x,y) ∧ S(y)")
	}
	// Specializing a variable to a constant shrinks the models.
	q3 := cq(t, "exists x . R(x, 'a')")
	if !CQContained(q3, q2) || CQContained(q2, q3) {
		t.Fatalf("constant specialization containment wrong")
	}
	// Renamed variables are equivalent.
	q4 := cq(t, "exists u, v . R(u, v)")
	if !CQEquivalent(q2, q4) {
		t.Fatalf("alpha-renamed CQs must be equivalent")
	}
	// R(x,x) ⊆ R(x,y) but not conversely.
	q5 := cq(t, "exists x . R(x, x)")
	if !CQContained(q5, q2) || CQContained(q2, q5) {
		t.Fatalf("diagonal containment wrong")
	}
}

func TestMinimizeUCQ(t *testing.T) {
	u := query.MustToUCQ(query.MustParse(
		"(exists x, y . (R(x, y) & S(y))) | (exists u, v . R(u, v)) | (exists x . R(x, 'a'))"))
	min := MinimizeUCQ(u)
	// Both the conjunction and the constant-specialized disjunct are
	// contained in R(u,v); only that disjunct survives.
	if len(min.Disjuncts) != 1 {
		t.Fatalf("minimized to %d disjuncts: %v", len(min.Disjuncts), min)
	}
	if len(min.Disjuncts[0].Atoms) != 1 || min.Disjuncts[0].Atoms[0].Pred != "R" {
		t.Fatalf("wrong survivor: %v", min)
	}
}

func TestMinimizeUCQKeepsOneOfEquivalent(t *testing.T) {
	u := query.MustToUCQ(query.MustParse(
		"(exists x, y . R(x, y)) | (exists u, v . R(u, v))"))
	min := MinimizeUCQ(u)
	if len(min.Disjuncts) != 1 {
		t.Fatalf("equivalent disjuncts not collapsed: %v", min)
	}
}

func TestMinimizeUCQIncomparable(t *testing.T) {
	u := query.MustToUCQ(query.MustParse("(exists x . R(x, 'a')) | (exists x . R(x, 'b'))"))
	min := MinimizeUCQ(u)
	if len(min.Disjuncts) != 2 {
		t.Fatalf("incomparable disjuncts dropped: %v", min)
	}
}

// Property: minimization preserves UCQ semantics on random databases.
func TestMinimizeUCQPreservesSemanticsProperty(t *testing.T) {
	corpus := []string{
		"(exists x, y . (R(x, y) & S(y))) | (exists u, v . R(u, v))",
		"(exists x . R(x, 'a')) | (exists x, y . R(x, y)) | (exists z . S(z))",
		"(exists x . (R(x, x) & S(x))) | (exists x, y . (R(x, y) & S(x)))",
		"(exists x . S(x)) | (exists y . S(y))",
	}
	prop := func(seed uint64, qi uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 151))
		dom := []relational.Const{"a", "b"}
		var facts []relational.Fact
		for i := 0; i < rng.IntN(7); i++ {
			facts = append(facts, relational.NewFact("R", dom[rng.IntN(2)], dom[rng.IntN(2)]))
		}
		for i := 0; i < rng.IntN(3); i++ {
			facts = append(facts, relational.NewFact("S", dom[rng.IntN(2)]))
		}
		idx := NewIndex(facts)
		u := query.MustToUCQ(query.MustParse(corpus[int(qi)%len(corpus)]))
		return EvalUCQ(u, idx) == EvalUCQ(MinimizeUCQ(u), idx)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: containment is a preorder (reflexive, transitive) on a corpus.
func TestContainmentPreorderProperty(t *testing.T) {
	var cqs []query.CQ
	for _, src := range []string{
		"exists x, y . R(x, y)",
		"exists x . R(x, x)",
		"exists x . R(x, 'a')",
		"exists x, y . (R(x, y) & S(y))",
		"exists x . S(x)",
		"R('a', 'a')",
	} {
		cqs = append(cqs, cq(t, src))
	}
	for _, q := range cqs {
		if !CQContained(q, q) {
			t.Fatalf("containment not reflexive on %v", q)
		}
	}
	for _, a := range cqs {
		for _, b := range cqs {
			for _, c := range cqs {
				if CQContained(a, b) && CQContained(b, c) && !CQContained(a, c) {
					t.Fatalf("containment not transitive: %v ⊆ %v ⊆ %v", a, b, c)
				}
			}
		}
	}
}

package eval

import (
	"iter"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// This file implements homomorphism search for conjunctive queries: the
// basis of UCQ evaluation, of the Lemma 3.5 decision procedure, and of the
// certificate enumeration used by Algorithms 1 and 2 of the paper.
//
// A homomorphism for a Boolean CQ q over facts F is a mapping h from the
// variables of q to constants with h(q) ⊆ F. The search is a backtracking
// join: atoms are processed in order, candidate facts come from the
// per-predicate index, and partial bindings prune inconsistent branches.

// Homs enumerates every homomorphism h with h(q) ⊆ idx, in a deterministic
// order (atom order × canonical fact order). The yielded binding is reused
// across iterations; clone it if retained.
func Homs(q query.CQ, idx *Index) iter.Seq[Binding] {
	return homs(q, idx, nil)
}

// ConsistentHoms enumerates homomorphisms h with h(q) ⊆ idx and h(q) ⊨ Σ
// (the image is consistent w.r.t. the keys). These are exactly the small
// certificates of the paper's guess-check-expand algorithm for #CQA
// (§4.1): a pair (disjunct, h) witnesses a repair entailing the query.
func ConsistentHoms(q query.CQ, idx *Index, ks *relational.KeySet) iter.Seq[Binding] {
	return homs(q, idx, ks)
}

// homs is the shared backtracking engine; ks == nil disables the
// image-consistency check.
func homs(q query.CQ, idx *Index, ks *relational.KeySet) iter.Seq[Binding] {
	return func(yield func(Binding) bool) {
		env := Binding{}
		// image tracks key value -> chosen fact canonical, to enforce
		// h(q) ⊨ Σ incrementally; counts allow backtracking.
		type kvEntry struct {
			fact  string
			count int
		}
		image := map[string]*kvEntry{}
		var rec func(i int) bool // returns false to stop enumeration
		rec = func(i int) bool {
			if i == len(q.Atoms) {
				return yield(env)
			}
			a := q.Atoms[i]
			for _, fact := range idx.FactsFor(a.Pred) {
				newly, ok := unify(a, fact, env)
				if !ok {
					continue
				}
				var entry *kvEntry
				if ks != nil {
					kv := ks.KeyValue(fact).Canonical()
					fc := fact.Canonical()
					if e, exists := image[kv]; exists {
						if e.fact != fc {
							// Image would violate a key: two distinct facts
							// with the same key value.
							for _, v := range newly {
								delete(env, v)
							}
							continue
						}
						e.count++
						entry = e
					} else {
						entry = &kvEntry{fact: fc, count: 1}
						image[kv] = entry
					}
				}
				cont := rec(i + 1)
				if ks != nil {
					entry.count--
					if entry.count == 0 {
						delete(image, ks.KeyValue(fact).Canonical())
					}
				}
				for _, v := range newly {
					delete(env, v)
				}
				if !cont {
					return false
				}
			}
			return true
		}
		rec(0)
	}
}

// unify extends env so that the atom maps onto the fact; it returns the
// variables newly bound (to undo on backtrack) and whether unification
// succeeded. On failure env is left unchanged.
func unify(a query.Atom, f relational.Fact, env Binding) ([]query.Var, bool) {
	if len(a.Args) != len(f.Args) {
		return nil, false
	}
	var newly []query.Var
	undo := func() {
		for _, v := range newly {
			delete(env, v)
		}
	}
	for i, t := range a.Args {
		switch t := t.(type) {
		case query.ConstTerm:
			if relational.Const(t) != f.Args[i] {
				undo()
				return nil, false
			}
		case query.Var:
			if c, ok := env[t]; ok {
				if c != f.Args[i] {
					undo()
					return nil, false
				}
			} else {
				env[t] = f.Args[i]
				newly = append(newly, t)
			}
		}
	}
	return newly, true
}

// HasHom reports whether some homomorphism embeds q into idx.
func HasHom(q query.CQ, idx *Index) bool {
	for range Homs(q, idx) {
		return true
	}
	return false
}

// HasConsistentHom reports whether some homomorphism embeds q into idx with
// a Σ-consistent image. Together with iteration over UCQ disjuncts this is
// Lemma 3.5: a repair entailing the UCQ exists iff some disjunct has a
// consistent homomorphism.
func HasConsistentHom(q query.CQ, idx *Index, ks *relational.KeySet) bool {
	for range ConsistentHoms(q, idx, ks) {
		return true
	}
	return false
}

// EvalUCQ reports whether the UCQ holds on the indexed facts (some disjunct
// has a homomorphism).
func EvalUCQ(u query.UCQ, idx *Index) bool {
	for _, q := range u.Disjuncts {
		if HasHom(q, idx) {
			return true
		}
	}
	return false
}

// Image applies h to the atoms of q, producing facts. It panics if h does
// not bind every variable of q.
func Image(q query.CQ, h Binding) []relational.Fact {
	out := make([]relational.Fact, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		f, ok := groundUnder(a, h)
		if !ok {
			panic("eval: Image with incomplete binding")
		}
		out = append(out, f)
	}
	return out
}

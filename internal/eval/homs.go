package eval

import (
	"iter"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// This file implements homomorphism search for conjunctive queries: the
// basis of UCQ evaluation, of the Lemma 3.5 decision procedure, and of the
// certificate enumeration used by Algorithms 1 and 2 of the paper.
//
// A homomorphism for a Boolean CQ q over facts F is a mapping h from the
// variables of q to constants with h(q) ⊆ F. The search is a backtracking
// join over the interned index: atoms are compiled to (predicate ID, term)
// sequences once per search, candidate facts come from the argument-
// position posting lists, and at every depth the pending atom with the
// fewest candidates under the current partial binding is matched next
// (bound-variable selectivity ordering). Environments are flat int32
// slices, so the inner loop performs no allocation and no string work.

// cterm is one compiled atom argument: a variable slot or a constant ID.
type cterm struct {
	slot int32  // ≥ 0: variable slot; < 0: constant
	cid  uint32 // constant ID when slot < 0; unused otherwise
}

// catom is one compiled atom.
type catom struct {
	pred  uint32
	terms []cterm
}

// homSearch is the reusable backtracking state for one CQ over one index.
// It is not safe for concurrent use; parallel callers build one per worker.
type homSearch struct {
	idx   *Index
	atoms []catom
	vars  []query.Var // slot → variable name, in first-occurrence order
	dead  bool        // some atom can never match: the CQ has no homomorphisms

	env   []int32 // slot → constant ID, -1 when unbound
	used  []bool
	trail []int32 // stack of bound slots, unwound on backtrack

	// Σ-consistency state (nil ks disables the image check): the facts
	// chosen for the homomorphic image, grouped by the key partition under
	// ks. The image pins at most one group per atom, so a small parallel
	// vector beats a block-count-sized table.
	ks       *relational.KeySet
	part     *keyPartition
	imgGroup []int32 // pinned group ordinals (≤ len(atoms) entries)
	imgFact  []int32 // chosen fact ordinal per pinned group
	imgCount []int32 // how many atoms currently pin that fact

	// allowed, when non-nil, restricts candidate facts to a subset of the
	// index (e.g. the facts of one repair).
	allowed func(ord int32) bool

	// allowedBits is the mask form of allowed (bit ord set ⇔ fact ord is
	// usable). The factorized counters mutate one shared mask between probes
	// — two bit flips per enumerated repair — instead of rebuilding any
	// per-repair state, so the check must be branch-cheap.
	allowedBits []uint64

	binding Binding // reused yield map

	// yield receives complete homomorphisms during rec; nil selects the
	// existence-only mode, which records found and stops at the first hit.
	// Keeping both on the struct lets rec be a plain method — no closure
	// allocation per search, which matters when the FPRAS runs one search
	// per sample.
	yield func(Binding) bool
	found bool

	// yieldOrds, when non-nil, receives the fact ordinal matched by each
	// atom (index-aligned with atoms) on every complete homomorphism. The
	// factorized counters use it to read off homomorphic images as sets of
	// interned ordinals without materializing bindings or facts.
	yieldOrds func([]int32) bool
	matched   []int32 // atom → matched fact ordinal (yieldOrds mode only)
}

// newHomSearch compiles q against the index.
func newHomSearch(q query.CQ, idx *Index, ks *relational.KeySet) *homSearch {
	s := &homSearch{idx: idx, ks: ks}
	nTerms := 0
	for _, a := range q.Atoms {
		nTerms += len(a.Args)
	}
	termArena := make([]cterm, 0, nTerms)
	var slots map[query.Var]int32
	s.atoms = make([]catom, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		pid, ok := idx.in.LookupPred(a.Pred)
		if !ok {
			s.dead = true
		}
		start := len(termArena)
		for _, t := range a.Args {
			switch t := t.(type) {
			case query.ConstTerm:
				cid, ok := idx.in.LookupConst(relational.Const(t))
				if !ok {
					s.dead = true
				}
				termArena = append(termArena, cterm{slot: -1, cid: cid})
			case query.Var:
				slot, ok := slots[t]
				if !ok {
					if slots == nil {
						slots = make(map[query.Var]int32, 8)
					}
					slot = int32(len(s.vars))
					slots[t] = slot
					s.vars = append(s.vars, t)
				}
				termArena = append(termArena, cterm{slot: slot})
			}
		}
		s.atoms = append(s.atoms, catom{pred: pid, terms: termArena[start:len(termArena):len(termArena)]})
	}
	// One shared int32 arena backs the environment, the trail and the
	// image vectors, so a search costs a handful of allocations total.
	nv, na := len(s.vars), len(s.atoms)
	arenaLen := 2 * nv // env + trail
	if ks != nil {
		arenaLen += 3 * na
	}
	arena := make([]int32, arenaLen)
	s.env = arena[:nv:nv]
	s.trail = arena[nv : nv : 2*nv]
	if ks != nil {
		base := 2 * nv
		s.imgGroup = arena[base : base : base+na]
		s.imgFact = arena[base+na : base+na : base+2*na]
		s.imgCount = arena[base+2*na : base+2*na : base+3*na]
	}
	s.used = make([]bool, na)
	if ks != nil {
		s.part = idx.keyPartition(ks)
	}
	s.reset()
	return s
}

// reset restores the pristine search state (needed when a search is reused
// after an early stop, which leaves bindings on the trail).
func (s *homSearch) reset() {
	for i := range s.env {
		s.env[i] = -1
	}
	for i := range s.used {
		s.used[i] = false
	}
	s.trail = s.trail[:0]
	if s.imgGroup != nil {
		s.imgGroup = s.imgGroup[:0]
		s.imgFact = s.imgFact[:0]
		s.imgCount = s.imgCount[:0]
	}
}

// pinImage records that the homomorphic image uses fact ord, which lies in
// key-partition group grp. It returns false when the image would contain
// two distinct facts of the same group (a key violation).
func (s *homSearch) pinImage(grp, ord int32) bool {
	for i, g := range s.imgGroup {
		if g != grp {
			continue
		}
		if s.imgFact[i] != ord {
			return false
		}
		s.imgCount[i]++
		return true
	}
	s.imgGroup = append(s.imgGroup, grp)
	s.imgFact = append(s.imgFact, ord)
	s.imgCount = append(s.imgCount, 1)
	return true
}

// unpinImage undoes one pinImage of fact ord in group grp.
func (s *homSearch) unpinImage(grp int32) {
	for i, g := range s.imgGroup {
		if g != grp {
			continue
		}
		s.imgCount[i]--
		if s.imgCount[i] == 0 {
			last := len(s.imgGroup) - 1
			s.imgGroup[i] = s.imgGroup[last]
			s.imgFact[i] = s.imgFact[last]
			s.imgCount[i] = s.imgCount[last]
			s.imgGroup = s.imgGroup[:last]
			s.imgFact = s.imgFact[:last]
			s.imgCount = s.imgCount[:last]
		}
		return
	}
}

// candidates returns the candidate fact set for a compiled atom: the
// shortest posting list among positions whose term is a constant or a
// bound variable, or the predicate's live candidate list (maintained for
// predicates touched by a mutation), or the predicate's contiguous
// canonical range.
func (s *homSearch) candidates(a catom) candSet {
	idx := s.idx
	var best candSet
	if list, ok := idx.predCands[a.pred]; ok {
		best = candSet{list: list}
	} else if r, ok := idx.predRange[a.pred]; ok {
		best = candSet{lo: r[0], hi: r[1]}
	} else {
		return candSet{}
	}
	for pos, t := range a.terms {
		cid := t.cid
		if t.slot >= 0 {
			if s.env[t.slot] < 0 {
				continue
			}
			cid = uint32(s.env[t.slot])
		}
		idx.ensurePostings()
		list := idx.postings[postingKey{pred: a.pred, pos: uint16(pos), cid: cid}]
		if int32(len(list)) < best.size() {
			best = candSet{list: list}
		}
	}
	return best
}

// match extends the environment so the atom maps onto fact ordinal ord; it
// returns the number of slots newly pushed on the trail and whether the
// match succeeded. On failure the environment is left unchanged.
func (s *homSearch) match(a catom, ord int32) (int, bool) {
	args := s.idx.argsOf(ord)
	if len(a.terms) != len(args) {
		return 0, false
	}
	pushed := 0
	for i, t := range a.terms {
		c := int32(args[i])
		if t.slot < 0 {
			if uint32(c) != t.cid {
				s.unwind(pushed)
				return 0, false
			}
			continue
		}
		switch b := s.env[t.slot]; {
		case b < 0:
			s.env[t.slot] = c
			s.trail = append(s.trail, t.slot)
			pushed++
		case b != c:
			s.unwind(pushed)
			return 0, false
		}
	}
	return pushed, true
}

// unwind pops n bindings off the trail.
func (s *homSearch) unwind(n int) {
	for ; n > 0; n-- {
		s.env[s.trail[len(s.trail)-1]] = -1
		s.trail = s.trail[:len(s.trail)-1]
	}
}

// run enumerates the homomorphisms, calling yield with a reused Binding.
// It returns false when yield stopped the enumeration (leaving partial
// state behind; call reset before reusing the search).
func (s *homSearch) run(yield func(Binding) bool) bool {
	if s.dead {
		return true
	}
	s.yield = yield
	cont := s.rec(0)
	s.yield = nil
	return cont
}

// exists reports whether at least one homomorphism exists. It allocates
// nothing in steady state and leaves partial search state behind; call
// reset before reusing the search.
func (s *homSearch) exists() bool {
	if s.dead {
		return false
	}
	s.found = false
	s.rec(0)
	return s.found
}

// rec is the backtracking core: match one more atom, chosen by bound-
// variable selectivity, against its posting-list candidates. It returns
// false to stop the enumeration.
func (s *homSearch) rec(nUsed int) bool {
	if nUsed == len(s.atoms) {
		if s.yieldOrds != nil {
			return s.yieldOrds(s.matched)
		}
		if s.yield == nil {
			s.found = true
			return false
		}
		return s.yield(s.fillBinding())
	}
	part := s.part
	// Selectivity ordering: match the pending atom with the fewest
	// candidate facts under the current partial binding.
	best := -1
	var bestC candSet
	for i, a := range s.atoms {
		if s.used[i] {
			continue
		}
		c := s.candidates(a)
		if best < 0 || c.size() < bestC.size() {
			best, bestC = i, c
		}
	}
	a := s.atoms[best]
	s.used[best] = true
	for k := int32(0); k < bestC.size(); k++ {
		ord := bestC.at(k)
		if s.allowedBits != nil && s.allowedBits[ord>>6]&(1<<(uint32(ord)&63)) == 0 {
			continue
		}
		if s.allowed != nil && !s.allowed(ord) {
			continue
		}
		pushed, ok := s.match(a, ord)
		if !ok {
			continue
		}
		if s.matched != nil {
			s.matched[best] = ord
		}
		grp := int32(-1)
		if part != nil {
			grp = part.factBlock[ord]
			if !s.pinImage(grp, ord) {
				// Image would violate a key: two distinct facts with the
				// same key value.
				s.unwind(pushed)
				continue
			}
		}
		cont := s.rec(nUsed + 1)
		if part != nil {
			s.unpinImage(grp)
		}
		s.unwind(pushed)
		if !cont {
			return false
		}
	}
	s.used[best] = false
	return true
}

// fillBinding refreshes the reused Binding map from the flat environment.
// The map is allocated on first yield, so pure existence checks never
// build one.
func (s *homSearch) fillBinding() Binding {
	if s.binding == nil {
		s.binding = make(Binding, len(s.vars))
	} else {
		clear(s.binding)
	}
	for slot, v := range s.vars {
		s.binding[v] = s.idx.in.ConstAt(uint32(s.env[slot]))
	}
	return s.binding
}

// Homs enumerates every homomorphism h with h(q) ⊆ idx, in a deterministic
// order (selectivity-driven atom order × ascending fact order). The yielded
// binding is reused across iterations; clone it if retained.
func Homs(q query.CQ, idx *Index) iter.Seq[Binding] {
	return func(yield func(Binding) bool) {
		newHomSearch(q, idx, nil).run(yield)
	}
}

// ConsistentHoms enumerates homomorphisms h with h(q) ⊆ idx and h(q) ⊨ Σ
// (the image is consistent w.r.t. the keys). These are exactly the small
// certificates of the paper's guess-check-expand algorithm for #CQA
// (§4.1): a pair (disjunct, h) witnesses a repair entailing the query.
func ConsistentHoms(q query.CQ, idx *Index, ks *relational.KeySet) iter.Seq[Binding] {
	return func(yield func(Binding) bool) {
		newHomSearch(q, idx, ks).run(yield)
	}
}

// ConsistentHomImageOrds enumerates, for every homomorphism h of q into idx
// with a Σ-consistent image, the fact ordinals matched by the atoms of q
// (index-aligned with q.Atoms; duplicates occur when two atoms map onto the
// same fact). This is the component probe of the factorized exact counters:
// the set of blocks touched by one image is exactly the set of blocks a
// single homomorphism couples, and the union of these couplings is the
// block interaction graph. The yielded slice is reused across iterations;
// copy to retain.
func ConsistentHomImageOrds(q query.CQ, idx *Index, ks *relational.KeySet) iter.Seq[[]int32] {
	return func(yield func([]int32) bool) {
		s := newHomSearch(q, idx, ks)
		if s.dead {
			return
		}
		s.matched = make([]int32, len(s.atoms))
		s.yieldOrds = yield
		s.rec(0)
		s.yieldOrds = nil
	}
}

// unify extends env so that the atom maps onto the fact; it returns the
// variables newly bound (to undo on backtrack) and whether unification
// succeeded. On failure env is left unchanged. The first-order evaluator
// uses it for guard atoms; the CQ engines use the compiled matcher above.
func unify(a query.Atom, f relational.Fact, env Binding) ([]query.Var, bool) {
	if len(a.Args) != len(f.Args) {
		return nil, false
	}
	var newly []query.Var
	undo := func() {
		for _, v := range newly {
			delete(env, v)
		}
	}
	for i, t := range a.Args {
		switch t := t.(type) {
		case query.ConstTerm:
			if relational.Const(t) != f.Args[i] {
				undo()
				return nil, false
			}
		case query.Var:
			if c, ok := env[t]; ok {
				if c != f.Args[i] {
					undo()
					return nil, false
				}
			} else {
				env[t] = f.Args[i]
				newly = append(newly, t)
			}
		}
	}
	return newly, true
}

// HasHom reports whether some homomorphism embeds q into idx.
func HasHom(q query.CQ, idx *Index) bool {
	return newHomSearch(q, idx, nil).exists()
}

// HasConsistentHom reports whether some homomorphism embeds q into idx with
// a Σ-consistent image. Together with iteration over UCQ disjuncts this is
// Lemma 3.5: a repair entailing the UCQ exists iff some disjunct has a
// consistent homomorphism.
func HasConsistentHom(q query.CQ, idx *Index, ks *relational.KeySet) bool {
	return newHomSearch(q, idx, ks).exists()
}

// EvalUCQ reports whether the UCQ holds on the indexed facts (some disjunct
// has a homomorphism).
func EvalUCQ(u query.UCQ, idx *Index) bool {
	for _, q := range u.Disjuncts {
		if HasHom(q, idx) {
			return true
		}
	}
	return false
}

// UCQMatcher is a compiled UCQ evaluator over one index, reusable across
// many membership probes. HasHomWhere restricts the search to a subset of
// the indexed facts, which is how the FPRAS tests "does the repair encoded
// by this tuple entail Q" without building a per-sample index. A matcher
// holds scratch state and is not safe for concurrent use; build one per
// worker.
type UCQMatcher struct {
	searches []*homSearch
}

// NewUCQMatcher compiles the UCQ against the index.
func NewUCQMatcher(u query.UCQ, idx *Index) *UCQMatcher {
	return NewConsistentUCQMatcher(u, idx, nil)
}

// NewConsistentUCQMatcher compiles the UCQ against the index with the
// Σ-consistent image check enabled: matches report homomorphisms whose
// image satisfies the keys, i.e. Lemma 3.5 certificates. ks == nil
// disables the check (plain UCQ evaluation).
func NewConsistentUCQMatcher(u query.UCQ, idx *Index, ks *relational.KeySet) *UCQMatcher {
	m := &UCQMatcher{}
	for _, q := range u.Disjuncts {
		m.searches = append(m.searches, newHomSearch(q, idx, ks))
	}
	return m
}

// HasHom reports whether some disjunct has a (consistent, when enabled)
// homomorphism into the index.
func (m *UCQMatcher) HasHom() bool { return m.HasHomWhere(nil) }

// HasHomWhere reports whether some disjunct has a homomorphism whose image
// uses only facts allowed by the filter (nil allows every fact). Fact
// ordinals follow Index.FactAt.
func (m *UCQMatcher) HasHomWhere(allowed func(ord int32) bool) bool {
	for _, s := range m.searches {
		s.reset()
		s.allowed = allowed
		found := s.exists()
		s.allowed = nil
		if found {
			return true
		}
	}
	return false
}

// HasHomMasked reports whether some disjunct has a homomorphism whose image
// uses only facts whose bit is set in mask (bit i of mask[i/64] governs
// fact ordinal i). It is HasHomWhere with the filter inlined to a bit
// probe: callers that flip a couple of bits between probes — the factorized
// counters flip exactly two per enumerated repair — pay no closure call on
// the match path. The mask must cover every ordinal of the index.
func (m *UCQMatcher) HasHomMasked(mask []uint64) bool {
	for _, s := range m.searches {
		s.reset()
		s.allowedBits = mask
		found := s.exists()
		s.allowedBits = nil
		if found {
			return true
		}
	}
	return false
}

// Image applies h to the atoms of q, producing facts. It panics if h does
// not bind every variable of q.
func Image(q query.CQ, h Binding) []relational.Fact {
	out := make([]relational.Fact, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		f, ok := groundUnder(a, h)
		if !ok {
			panic("eval: Image with incomplete binding")
		}
		out = append(out, f)
	}
	return out
}

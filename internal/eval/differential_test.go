package eval

import (
	"math/rand/v2"
	"sort"
	"strconv"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Differential tests: the interned, posting-list-driven homomorphism
// engine must agree bit-for-bit with a straightforward string-canonical
// reference — the algorithm the engine replaced: atoms in query order,
// candidates by scanning every fact of the predicate, image consistency
// via canonical key-value strings.

// referenceHoms enumerates homomorphisms the old way and returns the set
// of their canonical encodings. ks == nil disables the consistency check.
func referenceHoms(q query.CQ, idx *Index, ks *relational.KeySet) map[string]bool {
	out := map[string]bool{}
	env := Binding{}
	image := map[string]string{} // key value canonical -> fact canonical
	counts := map[string]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(q.Atoms) {
			out[env.Canonical()] = true
			return
		}
		a := q.Atoms[i]
		for _, fact := range idx.FactsFor(a.Pred) {
			newly, ok := unify(a, fact, env)
			if !ok {
				continue
			}
			undone := false
			if ks != nil {
				kv := ks.KeyValue(fact).Canonical()
				fc := fact.Canonical()
				if prev, exists := image[kv]; exists && prev != fc {
					for _, v := range newly {
						delete(env, v)
					}
					continue
				}
				image[kv] = fc
				counts[kv]++
				rec(i + 1)
				counts[kv]--
				if counts[kv] == 0 {
					delete(image, kv)
					delete(counts, kv)
				}
				undone = true
			}
			if !undone {
				rec(i + 1)
			}
			for _, v := range newly {
				delete(env, v)
			}
		}
	}
	rec(0)
	return out
}

func collectHoms(q query.CQ, idx *Index, ks *relational.KeySet) map[string]bool {
	out := map[string]bool{}
	if ks == nil {
		for h := range Homs(q, idx) {
			out[h.Canonical()] = true
		}
	} else {
		for h := range ConsistentHoms(q, idx, ks) {
			out[h.Canonical()] = true
		}
	}
	return out
}

func sameSet(t *testing.T, label string, want, got map[string]bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: reference found %d homs, engine found %d", label, len(want), len(got))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: engine missed hom %q", label, k)
		}
	}
}

// randomEmployeeFacts builds an Example-1.1-shaped instance directly (the
// workload package cannot be imported here without a cycle through query).
func randomEmployeeFacts(rng *rand.Rand, n int) []relational.Fact {
	names := []relational.Const{"Alice", "Bob", "Carol", "Dan"}
	depts := []relational.Const{"HR", "IT", "Sales"}
	var facts []relational.Fact
	for id := 1; id <= n; id++ {
		idc := relational.IntConst(id)
		facts = append(facts, relational.NewFact("Employee",
			idc, names[rng.IntN(len(names))], depts[rng.IntN(len(depts))]))
		if rng.IntN(2) == 0 {
			facts = append(facts, relational.NewFact("Employee",
				idc, names[rng.IntN(len(names))], depts[rng.IntN(len(depts))]))
		}
	}
	return facts
}

func TestHomsDifferentialEmployee(t *testing.T) {
	queries := []string{
		"exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))",
		"exists x, y . (Employee(x, 'Alice', y) & Employee(x, 'Bob', y))",
		"exists x, y, z, w . (Employee(x, y, 'IT') & Employee(z, w, 'IT'))",
		"exists x . Employee(x, 'Carol', 'HR')",
	}
	for seed := uint64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		idx := NewIndex(randomEmployeeFacts(rng, 2+rng.IntN(12)))
		ks := relational.Keys(map[string]int{"Employee": 1})
		for qi, src := range queries {
			q := query.MustToUCQ(query.MustParse(src)).Disjuncts[0]
			label := "seed " + strconv.FormatUint(seed, 10) + " query " + strconv.Itoa(qi)
			sameSet(t, label+" plain", referenceHoms(q, idx, nil), collectHoms(q, idx, nil))
			sameSet(t, label+" consistent", referenceHoms(q, idx, ks), collectHoms(q, idx, ks))
		}
	}
}

// Random multi-relation instances with repeated variables, constants that
// may be absent from the data, and a wider-key relation.
func TestHomsDifferentialRandom(t *testing.T) {
	queries := []string{
		"exists x, y . (R(x, y) & S(y))",
		"exists x . (R(x, x) & S(x))",
		"exists x, y, z . (R(x, y) & R(y, z) & T(x, y, z))",
		"exists x, y . (T(x, 'a', y) & R(y, 'b'))",
		"exists x . R(x, 'zzz-not-present')",
	}
	dom := []relational.Const{"a", "b", "c", "d"}
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 7))
		var facts []relational.Fact
		for i := 0; i < 3+rng.IntN(15); i++ {
			facts = append(facts, relational.NewFact("R",
				dom[rng.IntN(len(dom))], dom[rng.IntN(len(dom))]))
		}
		for i := 0; i < rng.IntN(5); i++ {
			facts = append(facts, relational.NewFact("S", dom[rng.IntN(len(dom))]))
		}
		for i := 0; i < rng.IntN(6); i++ {
			facts = append(facts, relational.NewFact("T",
				dom[rng.IntN(len(dom))], dom[rng.IntN(len(dom))], dom[rng.IntN(len(dom))]))
		}
		idx := NewIndex(facts)
		ks := relational.Keys(map[string]int{"R": 1, "T": 2})
		for qi, src := range queries {
			q := query.MustToUCQ(query.MustParse(src)).Disjuncts[0]
			label := "seed " + strconv.FormatUint(seed, 10) + " query " + strconv.Itoa(qi)
			sameSet(t, label+" plain", referenceHoms(q, idx, nil), collectHoms(q, idx, nil))
			sameSet(t, label+" consistent", referenceHoms(q, idx, ks), collectHoms(q, idx, ks))
		}
	}
}

// The filtered matcher restricted to a subset of facts must agree with
// rebuilding an index over that subset — the exact operation the FPRAS
// member predicate replaced.
func TestUCQMatcherFilterDifferential(t *testing.T) {
	dom := []relational.Const{"a", "b", "c"}
	u := query.MustToUCQ(query.MustParse(
		"exists x, y . (R(x, y) & S(y)) | exists z . R(z, z)"))
	for seed := uint64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewPCG(seed, 13))
		var facts []relational.Fact
		for i := 0; i < 4+rng.IntN(10); i++ {
			facts = append(facts, relational.NewFact("R",
				dom[rng.IntN(len(dom))], dom[rng.IntN(len(dom))]))
		}
		for i := 0; i < rng.IntN(4); i++ {
			facts = append(facts, relational.NewFact("S", dom[rng.IntN(len(dom))]))
		}
		idx := NewIndex(facts)
		m := NewUCQMatcher(u, idx)
		for trial := 0; trial < 8; trial++ {
			allowed := make([]bool, idx.NumFacts())
			var subset []relational.Fact
			for ord := range allowed {
				if rng.IntN(2) == 0 {
					allowed[ord] = true
					subset = append(subset, idx.FactAt(ord))
				}
			}
			got := m.HasHomWhere(func(ord int32) bool { return allowed[ord] })
			want := EvalUCQ(u, NewIndex(subset))
			if got != want {
				t.Fatalf("seed %d trial %d: filtered matcher = %v, subset index = %v (subset %v)",
					seed, trial, got, want, subset)
			}
		}
	}
}

// A query atom whose arity disagrees with the indexed facts must simply
// never match (the behavior of the unify-based reference), not panic or
// prefix-match.
func TestHomsArityMismatch(t *testing.T) {
	idx := NewIndex([]relational.Fact{
		relational.NewFact("R", "a", "b"),
		relational.NewFact("R", "b", "b"),
	})
	ks := relational.Keys(map[string]int{"R": 1})
	for _, src := range []string{
		"exists x . R(x)",
		"exists x, y, z . R(x, y, z)",
		"exists x, y . (R(x, y) & R(x))",
	} {
		q := query.MustToUCQ(query.MustParse(src)).Disjuncts[0]
		if HasHom(q, idx) {
			t.Fatalf("%s: HasHom = true across an arity mismatch", src)
		}
		if HasConsistentHom(q, idx, ks) {
			t.Fatalf("%s: HasConsistentHom = true across an arity mismatch", src)
		}
		for h := range Homs(q, idx) {
			t.Fatalf("%s: Homs yielded %v across an arity mismatch", src, h)
		}
	}
}

// Index accessors must present the same canonical view as the previous
// string-keyed implementation.
func TestIndexCanonicalView(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	facts := randomEmployeeFacts(rng, 20)
	facts = append(facts, facts[0], facts[3]) // duplicates must collapse
	idx := NewIndex(facts)
	sorted := relational.SortFacts(append([]relational.Fact(nil), facts...))
	uniq := sorted[:0]
	for i, f := range sorted {
		if i == 0 || !sorted[i-1].Equal(f) {
			uniq = append(uniq, f)
		}
	}
	if idx.Len() != len(uniq) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(uniq))
	}
	for i, f := range uniq {
		if !idx.FactAt(i).Equal(f) {
			t.Fatalf("FactAt(%d) = %s, want %s", i, idx.FactAt(i), f)
		}
		if !idx.Contains(f) {
			t.Fatalf("Contains(%s) = false", f)
		}
	}
	ff := idx.FactsFor("Employee")
	if !sort.SliceIsSorted(ff, func(i, j int) bool { return ff[i].Less(ff[j]) }) {
		t.Fatal("FactsFor not canonically sorted")
	}
	if idx.Contains(relational.NewFact("Employee", "1", "Nobody", "Nowhere")) {
		t.Fatal("Contains on absent fact")
	}
}

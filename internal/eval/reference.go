package eval

import (
	"fmt"

	"repaircount/internal/query"
)

// EvalFONaive is the textbook active-domain evaluator with no join fast
// paths: quantifier blocks always scan dom(D)^|x̄|. It exists as an
// executable specification — EvalFO is property-tested against it, and the
// eval benchmarks quantify the gap (orders of magnitude on guarded
// quantifiers like the Theorem 3.2/3.3 SAT encoding). Prefer EvalFO.
func EvalFONaive(f query.Formula, idx *Index, env Binding) bool {
	switch f := f.(type) {
	case query.AtomF:
		fact, ok := groundUnder(f.Atom, env)
		if !ok {
			panic(fmt.Sprintf("eval: unbound variable in atom %s", f.Atom))
		}
		return idx.Contains(fact)
	case query.And:
		for _, k := range f.Kids {
			if !EvalFONaive(k, idx, env) {
				return false
			}
		}
		return true
	case query.Or:
		for _, k := range f.Kids {
			if EvalFONaive(k, idx, env) {
				return true
			}
		}
		return false
	case query.Not:
		return !EvalFONaive(f.Kid, idx, env)
	case query.Exists:
		return naiveQuant(f.Vars, f.Kid, idx, env, false)
	case query.Forall:
		return naiveQuant(f.Vars, f.Kid, idx, env, true)
	case query.Truth:
		return f.Val
	default:
		panic(fmt.Sprintf("eval: unknown formula type %T", f))
	}
}

func naiveQuant(vars []query.Var, kid query.Formula, idx *Index, env Binding, forall bool) bool {
	if len(vars) == 0 {
		return EvalFONaive(kid, idx, env)
	}
	v, rest := vars[0], vars[1:]
	saved, had := env[v]
	defer func() {
		if had {
			env[v] = saved
		} else {
			delete(env, v)
		}
	}()
	for _, c := range idx.dom {
		env[v] = c
		got := naiveQuant(rest, kid, idx, env, forall)
		if forall && !got {
			return false
		}
		if !forall && got {
			return true
		}
	}
	return forall
}

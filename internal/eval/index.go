package eval

import (
	"sync"

	"repaircount/internal/relational"
)

// This file implements the interned fact index shared by all evaluators.
// Facts are stored once in canonical order; every constant and predicate is
// mapped to a dense uint32 ID; and three integer-keyed access paths replace
// the former canonical-string maps:
//
//   - membership: fact hash → ordinals, verified structurally (ID compare);
//   - per-predicate ranges: the canonical order groups facts by predicate,
//     so each predicate owns one contiguous ordinal range;
//   - posting lists: (predicate, argument position, constant ID) → ascending
//     ordinals of the facts carrying that constant in that position. The
//     join engines probe these instead of scanning all facts of a predicate.

// postingKey addresses one posting list: predicate × argument position ×
// constant ID.
type postingKey struct {
	pred uint32
	pos  uint16
	cid  uint32
}

// Index is a view of a set of facts with per-predicate access, membership
// testing, argument-position posting lists and the active domain, shared
// by all evaluators. Safe for concurrent use after construction.
//
// An index is mutable through InsertFact and RemoveFact (see mutate.go):
// mutations keep fact ordinals stable — inserts append new ordinals,
// deletes tombstone old ones — and maintain the membership buckets, the
// posting lists, the per-predicate candidate lists, the sorted active
// domain and the memoized key partitions incrementally, so matchers and
// counters recompiled after a delta see a fully consistent index without
// any O(n) rebuild. Mutation is not safe concurrently with reads.
type Index struct {
	in    *relational.Interner
	facts []relational.Fact // canonical order; position = fact ordinal
	// arena and offs hold the interned arguments of every fact: fact i's
	// argument IDs are arena[offs[i]:offs[i+1]].
	arena []uint32
	offs  []int32
	fpred []uint32 // interned predicate per ordinal

	byPred    map[string][]relational.Fact // subslices of facts
	predRange map[uint32][2]int32          // pred ID → [start, end) ordinals
	buckets   map[uint64][]int32           // fact hash → ordinals
	bktOnce   sync.Once                    // lazy bucket build for section-backed indexes
	dom       []relational.Const

	postOnce sync.Once
	postings map[postingKey][]int32
	// postSec holds prebuilt posting-list sections from a snapshot: keys is
	// a flat (pred, pos, cid) triple per list, offs/ords the concatenated
	// ordinal arenas. When set, ensurePostings assembles the map from these
	// instead of rescanning every fact.
	postSec *PostingSections

	mu       sync.Mutex
	keyParts map[*relational.KeySet]*keyPartition

	// Mutation state (see mutate.go). dead is the tombstone mask (bit set ⇔
	// ordinal deleted; may be shorter than facts — ordinals beyond its end
	// are alive). predCands overrides predRange for every predicate touched
	// by a mutation: the ascending live ordinals of that predicate,
	// including appended ones outside the contiguous canonical range.
	// domUses counts, per constant ID, the live argument slots using it —
	// the refcount that keeps dom exact under deletes. version increments
	// on every successful mutation.
	dead        []uint64
	nDead       int
	predCands   map[uint32][]int32
	byPredStale bool
	domUses     []int32
	version     uint64
}

// NewIndex builds an index over the given facts (de-duplicating them).
func NewIndex(facts []relational.Fact) *Index {
	idx := &Index{
		in:      relational.NewInterner(),
		buckets: make(map[uint64][]int32, len(facts)),
		offs:    make([]int32, 1, len(facts)+1),
	}
	// Intern and de-duplicate in insertion order.
	for _, f := range facts {
		start := len(idx.arena)
		pid, arena := idx.in.InternFact(f, idx.arena)
		args := arena[start:]
		h := hashFact(pid, args)
		dup := false
		for _, ord := range idx.buckets[h] {
			if idx.fpred[ord] == pid && u32SliceEqual(idx.argsOf(ord), args) {
				dup = true
				break
			}
		}
		if dup {
			idx.arena = arena[:start]
			continue
		}
		ord := int32(len(idx.facts))
		idx.arena = arena
		idx.offs = append(idx.offs, int32(len(arena)))
		idx.facts = append(idx.facts, f)
		idx.fpred = append(idx.fpred, pid)
		idx.buckets[h] = append(idx.buckets[h], ord)
	}
	idx.sortCanonical()
	idx.buildPredAccess()
	dom := make([]relational.Const, 0, idx.in.NumConsts())
	dom = append(dom, idx.in.Consts()...)
	idx.dom = relational.ConstSlice(dom)
	return idx
}

// sortCanonical permutes the fact arrays into canonical fact order and
// remaps the membership buckets accordingly.
func (idx *Index) sortCanonical() {
	n := len(idx.facts)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	relational.SortOrdinalsByFact(perm, idx.facts)
	inv := make([]int32, n)
	for newOrd, oldOrd := range perm {
		inv[oldOrd] = int32(newOrd)
	}
	facts := make([]relational.Fact, n)
	fpred := make([]uint32, n)
	arena := make([]uint32, 0, len(idx.arena))
	offs := make([]int32, 1, n+1)
	for _, oldOrd := range perm {
		facts[len(offs)-1] = idx.facts[oldOrd]
		fpred[len(offs)-1] = idx.fpred[oldOrd]
		arena = append(arena, idx.argsOf(oldOrd)...)
		offs = append(offs, int32(len(arena)))
	}
	idx.facts, idx.fpred, idx.arena, idx.offs = facts, fpred, arena, offs
	for h, ords := range idx.buckets {
		for i, o := range ords {
			ords[i] = inv[o]
		}
		idx.buckets[h] = ords
	}
}

// buildPredAccess computes the per-predicate ordinal ranges and the
// byPred subslices from the canonically sorted fact array.
func (idx *Index) buildPredAccess() {
	idx.byPred = map[string][]relational.Fact{}
	idx.predRange = map[uint32][2]int32{}
	for s := 0; s < len(idx.facts); {
		e := s + 1
		for e < len(idx.facts) && idx.fpred[e] == idx.fpred[s] {
			e++
		}
		idx.byPred[idx.facts[s].Pred] = idx.facts[s:e:e]
		idx.predRange[idx.fpred[s]] = [2]int32{int32(s), int32(e)}
		s = e
	}
}

// ensurePostings builds the argument-position posting lists on first use:
// from the snapshot's prebuilt sections when present (the lists subslice
// the mapped ordinal arena, so only the map itself is allocated), else by
// scanning every fact.
func (idx *Index) ensurePostings() {
	idx.postOnce.Do(func() {
		if s := idx.postSec; s != nil {
			posts := make(map[postingKey][]int32, len(s.Offs)-1)
			for i := 0; i+1 < len(s.Offs); i++ {
				k := postingKey{pred: s.Keys[3*i], pos: uint16(s.Keys[3*i+1]), cid: s.Keys[3*i+2]}
				posts[k] = s.Ords[s.Offs[i]:s.Offs[i+1]:s.Offs[i+1]]
			}
			idx.postings = posts
			return
		}
		posts := make(map[postingKey][]int32, len(idx.arena))
		for ord := range idx.facts {
			if !idx.aliveOrd(int32(ord)) {
				continue
			}
			args := idx.argsOf(int32(ord))
			pred := idx.fpred[ord]
			for pos, cid := range args {
				k := postingKey{pred: pred, pos: uint16(pos), cid: cid}
				posts[k] = append(posts[k], int32(ord))
			}
		}
		idx.postings = posts
	})
}

// ensureBuckets builds the fact-hash membership buckets of a section-backed
// index on first use. Indexes built by NewIndex fill the buckets during
// de-duplication, making this a no-op.
func (idx *Index) ensureBuckets() {
	idx.bktOnce.Do(func() {
		if idx.buckets != nil {
			return
		}
		b := make(map[uint64][]int32, len(idx.facts))
		for ord := range idx.facts {
			if !idx.aliveOrd(int32(ord)) {
				continue
			}
			h := hashFact(idx.fpred[ord], idx.argsOf(int32(ord)))
			b[h] = append(b[h], int32(ord))
		}
		idx.buckets = b
	})
}

// PostingSections is the snapshot encoding of the posting lists: Keys holds
// one (predicate ID, argument position, constant ID) triple per list, and
// list i is Ords[Offs[i]:Offs[i+1]]. Lists are keyed in ascending triple
// order, each list ascending — the same contents ensurePostings computes.
type PostingSections struct {
	Keys []uint32
	Offs []int32
	Ords []int32
}

// IndexSections bundles the preassembled columns of a snapshot-loaded
// index. All slices are borrowed, not copied; Facts must be in canonical
// order with Facts[i] interned as predicate FPred[i] and argument IDs
// Arena[Offs[i]:Offs[i+1]] under Interner, and Dom must be the sorted
// active domain. Postings is optional.
type IndexSections struct {
	Interner *relational.Interner
	Facts    []relational.Fact
	Arena    []uint32
	Offs     []int32
	FPred    []uint32
	Dom      []relational.Const
	Postings *PostingSections
}

// IndexFromSections assembles an index from snapshot sections with a
// constant number of allocations: the per-predicate ranges are rebuilt by
// one scan over the predicate column (the canonical order groups facts by
// predicate), while membership buckets and posting lists stay lazy.
func IndexFromSections(s IndexSections) *Index {
	idx := &Index{
		in:      s.Interner,
		facts:   s.Facts,
		arena:   s.Arena,
		offs:    s.Offs,
		fpred:   s.FPred,
		dom:     s.Dom,
		postSec: s.Postings,
	}
	idx.buildPredAccess()
	return idx
}

// argsOf returns the interned argument IDs of a fact ordinal.
func (idx *Index) argsOf(ord int32) []uint32 {
	return idx.arena[idx.offs[ord]:idx.offs[ord+1]]
}

// IndexDatabase builds an index over a database.
func IndexDatabase(d *relational.Database) *Index {
	return NewIndex(d.FactsUnsorted())
}

// Contains reports whether the fact is present. The probe is read-only and
// allocation-free for facts of arity ≤ 16.
func (idx *Index) Contains(f relational.Fact) bool {
	_, ok := idx.OrdinalOf(f)
	return ok
}

// OrdinalOf returns the ordinal of the fact in canonical order, or ok=false
// when the fact is not indexed. Like Contains, the probe is read-only and
// allocation-free for facts of arity ≤ 16.
func (idx *Index) OrdinalOf(f relational.Fact) (int32, bool) {
	idx.ensureBuckets()
	pid, ok := idx.in.LookupPred(f.Pred)
	if !ok {
		return 0, false
	}
	var buf [16]uint32
	args := buf[:0]
	if len(f.Args) > len(buf) {
		args = make([]uint32, 0, len(f.Args))
	}
	for _, a := range f.Args {
		id, ok := idx.in.LookupConst(a)
		if !ok {
			return 0, false
		}
		args = append(args, id)
	}
	h := hashFact(pid, args)
	for _, ord := range idx.buckets[h] {
		if idx.fpred[ord] == pid && u32SliceEqual(idx.argsOf(ord), args) {
			return ord, true
		}
	}
	return 0, false
}

// FactsFor returns the live facts with the given predicate, canonically
// sorted. Callers must not mutate the result. After a mutation the
// per-predicate fact map is rebuilt lazily on the first call (it backs the
// reference evaluators, not the hot join paths, which read the maintained
// posting and candidate lists instead).
func (idx *Index) FactsFor(pred string) []relational.Fact {
	idx.mu.Lock()
	if idx.byPredStale {
		m := map[string][]relational.Fact{}
		for ord, f := range idx.facts {
			if idx.aliveOrd(int32(ord)) {
				m[f.Pred] = append(m[f.Pred], f)
			}
		}
		for p := range m {
			relational.SortFacts(m[p])
		}
		idx.byPred = m
		idx.byPredStale = false
	}
	out := idx.byPred[pred]
	idx.mu.Unlock()
	return out
}

// Dom returns the active domain, sorted. Callers must not mutate the result.
func (idx *Index) Dom() []relational.Const { return idx.dom }

// Len returns the number of fact ordinals, including tombstoned ones:
// ordinal-indexed tables (masks, per-ordinal columns) must be sized by it.
func (idx *Index) Len() int { return len(idx.facts) }

// NumFacts returns the number of fact ordinals (alias of Len, named for
// ordinal-based callers).
func (idx *Index) NumFacts() int { return len(idx.facts) }

// LiveFacts returns the number of live (non-tombstoned) facts.
func (idx *Index) LiveFacts() int { return len(idx.facts) - idx.nDead }

// Version returns a counter incremented by every successful mutation;
// structures derived from the index are fresh iff their recorded version
// matches.
func (idx *Index) Version() uint64 { return idx.version }

// Alive reports whether the fact ordinal is not tombstoned.
func (idx *Index) Alive(ord int32) bool { return idx.aliveOrd(ord) }

func (idx *Index) aliveOrd(ord int32) bool {
	w := int(ord) >> 6
	return idx.nDead == 0 || w >= len(idx.dead) || idx.dead[w]&(1<<(uint32(ord)&63)) == 0
}

// FactAt returns the fact with the given ordinal (position in canonical
// order). Ordinals are stable for the lifetime of the index.
func (idx *Index) FactAt(ord int) relational.Fact { return idx.facts[ord] }

// Interner exposes the index's symbol table (read-only use).
func (idx *Index) Interner() *relational.Interner { return idx.in }

// keyPartition groups the indexed facts by key value under one Σ: facts
// with equal key values share a group ordinal. It is the integer-keyed
// form of the conflict-block structure, memoized per KeySet. The grouping
// state (group representatives and the hash buckets) is retained so the
// partition extends in O(1) per inserted fact instead of being rebuilt;
// tombstoned ordinals keep their stale entry, which is never read because
// no candidate list yields them.
type keyPartition struct {
	factBlock []int32 // fact ordinal → group ordinal
	numBlocks int
	groups    []kpGroup
	buckets   map[uint64][]int32
}

// kpGroup is one key-value group: a representative fact ordinal and the
// effective key width of its predicate.
type kpGroup struct {
	rep int32
	kw  int
}

// extend assigns fact ordinal ord (the next unassigned ordinal) to its
// group, creating the group if its key value is new.
func (p *keyPartition) extend(idx *Index, ks *relational.KeySet, ord int32) {
	kw := len(idx.facts[ord].Args)
	if w, ok := ks.Width(idx.facts[ord].Pred); ok && w <= kw {
		kw = w
	}
	pid := idx.fpred[ord]
	key := idx.argsOf(ord)[:kw]
	h := hashFact(pid, key) ^ uint64(kw)
	found := int32(-1)
	for _, gi := range p.buckets[h] {
		g := p.groups[gi]
		if idx.fpred[g.rep] == pid && g.kw == kw && u32SliceEqual(idx.argsOf(g.rep)[:g.kw], key) {
			found = gi
			break
		}
	}
	if found < 0 {
		found = int32(len(p.groups))
		p.groups = append(p.groups, kpGroup{rep: ord, kw: kw})
		p.buckets[h] = append(p.buckets[h], found)
		p.numBlocks++
	}
	p.factBlock = append(p.factBlock, found)
}

// keyPartition returns (building it on first use) the key partition of the
// indexed facts under ks.
func (idx *Index) keyPartition(ks *relational.KeySet) *keyPartition {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if p, ok := idx.keyParts[ks]; ok {
		return p
	}
	p := &keyPartition{
		factBlock: make([]int32, 0, len(idx.facts)),
		buckets:   make(map[uint64][]int32, len(idx.facts)),
	}
	for i := range idx.facts {
		p.extend(idx, ks, int32(i))
	}
	if idx.keyParts == nil {
		idx.keyParts = map[*relational.KeySet]*keyPartition{}
	}
	idx.keyParts[ks] = p
	return p
}

// candSet is a candidate fact set for one atom: either an explicit posting
// list or a contiguous ordinal range.
type candSet struct {
	list   []int32
	lo, hi int32
}

func (c candSet) size() int32 {
	if c.list != nil {
		return int32(len(c.list))
	}
	return c.hi - c.lo
}

func (c candSet) at(i int32) int32 {
	if c.list != nil {
		return c.list[i]
	}
	return c.lo + i
}

// hashFact and u32SliceEqual alias the relational layer's shared hash and
// equality helpers, so one definition covers the whole repository.
func hashFact(pred uint32, args []uint32) uint64 { return relational.HashIDs(pred, args) }

func u32SliceEqual(a, b []uint32) bool { return relational.U32Equal(a, b) }

package repairs

import (
	"math/big"
	"math/rand/v2"
	"testing"

	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

// Differential suite for component-sharded counting: the sharded count must
// be bit-identical to the unsharded planned counter for every shard count,
// on every structural extreme, before and after delta streams.

// shardInstances is the sharding corpus: the factorized structural extremes
// plus the multi-component workloads sharding is built for.
func shardInstances(t *testing.T, seed uint64) []*Instance {
	t.Helper()
	out := factorizedInstances(t, seed)
	db, ks, q := workload.MultiComponent(6, 4, 2)
	out = append(out, MustInstance(db, ks, q))
	db, ks, q = workload.IEHeavy(3, 10, 3)
	out = append(out, MustInstance(db, ks, q))
	db, ks, q = workload.SkewedComponents(5, 10, 1.0)
	out = append(out, MustInstance(db, ks, q))
	return out
}

func TestShardedDifferential(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		for ii, in := range shardInstances(t, seed) {
			want, err := in.CountFactorizedParallel(0, 2)
			if err != nil {
				t.Fatalf("seed %d instance %d: unsharded: %v", seed, ii, err)
			}
			for _, k := range []int{1, 2, 3, 8} {
				got, err := in.CountSharded(k, 4)
				if err != nil {
					t.Fatalf("seed %d instance %d: k=%d: %v", seed, ii, k, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("seed %d instance %d: CountSharded(%d) = %s, unsharded = %s", seed, ii, k, got, want)
				}
			}
		}
	}
}

// The partition must be exhaustive and measure-preserving: every canonical
// block lands in exactly one class, and the shard Inner products times the
// excluded factor reproduce Π|B_i| over all blocks.
func TestShardPlanInvariants(t *testing.T) {
	db, ks, q := workload.SkewedComponents(6, 12, 1.2)
	in := MustInstance(db, ks, q)
	for _, k := range []int{1, 2, 3, 8} {
		plan, err := in.PlanShards(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.ShardOf) != len(in.Blocks) {
			t.Fatalf("k=%d: plan covers %d positions, instance has %d blocks", k, len(plan.ShardOf), len(in.Blocks))
		}
		total := big.NewInt(1)
		space := big.NewInt(1)
		for pos, b := range in.Blocks {
			space.Mul(space, big.NewInt(int64(b.Size())))
			s := plan.ShardOf[pos]
			if s < ShardExcluded || int(s) >= plan.K {
				t.Fatalf("k=%d: position %d has shard %d", k, pos, s)
			}
		}
		for _, inner := range plan.Inner {
			total.Mul(total, inner)
		}
		// Shared blocks are size 1, so they contribute 1 to every Inner and
		// the product telescopes to the full choice space.
		total.Mul(total, plan.Outer)
		if total.Cmp(space) != 0 {
			t.Fatalf("k=%d: Π Inner × Outer = %s, block space = %s", k, total, space)
		}
		for i, s := range plan.CompShard {
			if s < 0 || int(s) >= plan.K {
				t.Fatalf("k=%d: component %d assigned to shard %d", k, i, s)
			}
		}
		// LPT bin-packing: with k ≥ #components, no shard holds two
		// components, so each shard's cost is one component's planned cost.
		if k >= len(plan.Components) && len(plan.Components) > 1 {
			seen := map[int32]bool{}
			for _, s := range plan.CompShard {
				if seen[s] {
					t.Fatalf("k=%d ≥ %d components, but shard %d holds two", k, len(plan.Components), s)
				}
				seen[s] = true
			}
		}
	}
}

// A shard partial is self-contained: Inner − NonEnt equals the
// sub-instance's own repair count.
func TestCountNonEntailmentSelfContained(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		for ii, in := range shardInstances(t, seed) {
			want, err := in.CountFactorized(0)
			if err != nil {
				t.Fatalf("seed %d instance %d: %v", seed, ii, err)
			}
			p, err := in.CountNonEntailment(0, 2)
			if err != nil {
				t.Fatalf("seed %d instance %d: %v", seed, ii, err)
			}
			got := new(big.Int).Sub(p.Inner, p.NonEnt)
			if got.Cmp(want) != 0 {
				t.Fatalf("seed %d instance %d: Inner−NonEnt = %s, count = %s", seed, ii, got, want)
			}
		}
	}
}

// Sharded counting after a randomized delta stream: re-planning per count
// must track the mutated instance exactly.
func TestShardedAfterApply(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 17))
	db, ks := workload.Employee(rng, 8, 3, 0.6)
	q := workload.SameDeptQuery(1, 2)
	in := MustInstance(db, ks, q)
	stream := workload.UpdateStream(rng, db, ks, 30, 0.6)
	for step, op := range stream {
		d := Insert(op.Fact)
		if op.Del {
			d = Delete(op.Fact)
		}
		if _, err := in.Apply(d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%5 != 4 {
			continue
		}
		want, err := in.CountFactorizedParallel(0, 2)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, k := range []int{1, 3, 8} {
			got, err := in.CountSharded(k, 2)
			if err != nil {
				t.Fatalf("step %d: k=%d: %v", step, k, err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("step %d: CountSharded(%d) = %s, unsharded = %s", step, k, got, want)
			}
		}
	}
}

// A plan outlives its instance version only as an error: materializing
// shards of a stale partition must fail, never misattribute blocks.
func TestShardPlanStaleVersion(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 2, 2)
	in := MustInstance(db, ks, q)
	plan, err := in.PlanShards(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.ShardInstances(plan); err != nil {
		t.Fatalf("fresh plan rejected: %v", err)
	}
	f := relational.NewFact("C0", "zq", "v0")
	if _, err := in.Apply(Insert(f)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.ShardInstances(plan); err == nil {
		t.Fatal("stale shard plan accepted after Apply")
	}
}

func TestPlanShardsRejects(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 2)
	in := MustInstance(db, ks, q)
	if _, err := in.PlanShards(0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// The closed form documented on SkewedComponents must match the counter.
func TestSkewedComponentsClosedForm(t *testing.T) {
	for _, tc := range []struct {
		n, maxBlocks int
		skew         float64
	}{{1, 4, 0}, {3, 8, 1.0}, {5, 10, 1.5}} {
		db, ks, q := workload.SkewedComponents(tc.n, tc.maxBlocks, tc.skew)
		in := MustInstance(db, ks, q)
		got, _, err := in.CountExact()
		if err != nil {
			t.Fatal(err)
		}
		want := workload.SkewedComponentsCount(tc.n, tc.maxBlocks, tc.skew)
		if got.Cmp(want) != 0 {
			t.Fatalf("SkewedComponents(%d,%d,%g): counted %s, closed form %s", tc.n, tc.maxBlocks, tc.skew, got, want)
		}
	}
}

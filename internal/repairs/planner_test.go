package repairs

import (
	"math/big"
	"strings"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

// Differential and unit suite for the exact-counting planner: per-component
// engine selection, component-local inclusion–exclusion, forced engines,
// the engine-keyed structural memo, and the typed EngineKind surface.

func TestEngineKindNamesRoundTrip(t *testing.T) {
	for name, want := range map[string]EngineKind{
		"auto": EngineAuto, "factorized": EngineFactorized, "gray": EngineGray,
		"ie": EngineIE, "enum": EngineEnum,
	} {
		k, err := ParseEngine(name)
		if err != nil || k != want {
			t.Fatalf("ParseEngine(%q) = %v (%v), want %v", name, k, err, want)
		}
	}
	if k, err := ParseEngine(""); err != nil || k != EngineAuto {
		t.Fatalf("empty engine name: %v %v", k, err)
	}
	_, err := ParseEngine("quantum")
	if err == nil {
		t.Fatal("unknown engine name accepted")
	}
	for _, name := range EngineNames() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid engine %q", err, name)
		}
	}
	// Per-component kinds keep display names even though they are not
	// ParseEngine inputs.
	for k, want := range map[EngineKind]string{
		EngineMasked:  "masked",
		EngineCompIE:  "component-ie",
		EngineLambda1: "lambda1-closed-form",
		EngineEnumFO:  "fo-enumeration",
	} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// plannerInstances is the differential corpus: the factorized corpus plus
// ie-heavy instances (the regime where component-local IE is chosen).
func plannerInstances(t *testing.T, seed uint64) []*Instance {
	t.Helper()
	out := factorizedInstances(t, seed)
	db, ks, q := workload.IEHeavy(2, 5+int(seed%3), 2)
	out = append(out, MustInstance(db, ks, q))
	db2, ks2, q2 := workload.IEHeavy(1, 7, 3)
	out = append(out, MustInstance(db2, ks2, q2))
	return out
}

// TestPlannerDifferential pins every exact engine bit-identical to the
// enumeration ground truth across the corpus: the planned factorized
// engine, the forced Gray walk, forced component-local IE, whole-instance
// inclusion–exclusion and CountExact, at worker counts 1 and 4.
func TestPlannerDifferential(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for ii, in := range plannerInstances(t, seed) {
			want, err := in.CountEnumUCQ(0)
			if err != nil {
				t.Fatalf("seed %d instance %d: ground truth: %v", seed, ii, err)
			}
			check := func(name string, got *big.Int, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("seed %d instance %d: %s: %v", seed, ii, name, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("seed %d instance %d: %s = %s, enumeration = %s", seed, ii, name, got, want)
				}
			}
			for _, workers := range []int{1, 4} {
				got, err := in.CountFactorizedParallel(0, workers)
				check("planned", got, err)
				got, err = in.CountGray(0, workers)
				check("forced gray", got, err)
				got, err = in.CountCompIE(0, workers)
				check("forced component-ie", got, err)
			}
			got, err := in.CountIE(0)
			check("whole-instance ie", got, err)
			exact, algo, err := in.CountExact()
			check("exact("+algo.String()+")", exact, err)
		}
	}
}

// TestIEHeavyClosedForm pins the ie-heavy generator against its closed
// form through the enumeration ground truth at a small size.
func TestIEHeavyClosedForm(t *testing.T) {
	for _, tc := range []struct{ comps, blocks, boxes int }{
		{1, 4, 1}, {1, 6, 2}, {2, 5, 3}, {3, 4, 2},
	} {
		db, ks, q := workload.IEHeavy(tc.comps, tc.blocks, tc.boxes)
		in := MustInstance(db, ks, q)
		enum, err := in.CountEnumUCQ(0)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if want := workload.IEHeavyCount(tc.comps, tc.blocks, tc.boxes); enum.Cmp(want) != 0 {
			t.Fatalf("%+v: enumeration = %s, closed form = %s", tc, enum, want)
		}
	}
}

// TestPlannerBeyondGrayBudget is the acceptance scenario: a 40-block
// component with 3 boxes exceeds any feasible Gray budget (2^40 states)
// but the planner counts it exactly — bit-identical to the closed form —
// as a ≤ 7-term component-local IE sum.
func TestPlannerBeyondGrayBudget(t *testing.T) {
	db, ks, q := workload.IEHeavy(2, 40, 3)
	in := MustInstance(db, ks, q)
	if _, err := in.CountGray(0, 1); err != ErrBudget {
		t.Fatalf("forced gray on a 2^40-state component: err = %v, want ErrBudget", err)
	}
	p, err := in.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine != EngineFactorized || len(p.Components) != 2 {
		t.Fatalf("plan = %s, want factorized over 2 components", p)
	}
	for i, c := range p.Components {
		if c.Engine != EngineCompIE {
			t.Fatalf("component %d engine = %s, want component-ie", i, c.Engine)
		}
		if c.Boxes != 3 || c.Blocks != 40 {
			t.Fatalf("component %d = %+v", i, c)
		}
		if c.Cost >= c.GrayCost {
			t.Fatalf("component %d: chosen cost %d not below gray cost %d", i, c.Cost, c.GrayCost)
		}
	}
	got, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := workload.IEHeavyCount(2, 40, 3); got.Cmp(want) != 0 {
		t.Fatalf("planned = %s, closed form = %s", got, want)
	}
	if n, algo, err := in.CountExact(); err != nil || algo != EngineFactorized || n.Cmp(got) != 0 {
		t.Fatalf("CountExact = %v via %v (%v), want %s via factorized", n, algo, err, got)
	}
}

// TestPlannerHugeComponent: a component whose choice space overflows int64
// entirely (2^80 states) stays exactly countable — component-local IE
// never materializes the space.
func TestPlannerHugeComponent(t *testing.T) {
	db, ks, q := workload.IEHeavy(1, 80, 2)
	in := MustInstance(db, ks, q)
	got, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := workload.IEHeavyCount(1, 80, 2); got.Cmp(want) != 0 {
		t.Fatalf("planned = %s, closed form = %s", got, want)
	}
}

// TestPlanSelection pins the cost model's choices: Gray for small spaces
// with many boxes, component-local IE for large spaces with few boxes, and
// a budget of Σ_c min(2^{n_c}, IE_c).
func TestPlanSelection(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 2, 2) // 4-state components, 4 boxes each
	in := MustInstance(db, ks, q)
	p, err := in.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine != EngineFactorized {
		t.Fatalf("plan engine = %s", p.Engine)
	}
	var budget int64
	for i, c := range p.Components {
		if c.Engine != EngineGray {
			t.Fatalf("component %d: engine = %s, want gray (space %d vs ie %d)", i, c.Engine, c.GrayCost, c.IECost)
		}
		if c.Cost != min(c.GrayCost, c.IECost) {
			t.Fatalf("component %d: cost %d, want min(%d, %d)", i, c.Cost, c.GrayCost, c.IECost)
		}
		budget += c.Cost
	}
	if p.Budget != budget {
		t.Fatalf("plan budget %d, components sum to %d", p.Budget, budget)
	}

	// After a count, the memo absorbs every component: the next plan is free.
	if _, err := in.CountFactorized(0); err != nil {
		t.Fatal(err)
	}
	p2, err := in.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Budget != 0 {
		t.Fatalf("post-count plan budget = %d, want 0 (memoized)", p2.Budget)
	}
	for i, c := range p2.Components {
		if !c.Memoized || c.Cost != 0 {
			t.Fatalf("post-count component %d = %+v, want memoized at cost 0", i, c)
		}
	}

	// The forced plans agree on structure but pin the engine.
	pg, err := in.ExplainPlan(EngineGray)
	if err != nil {
		t.Fatal(err)
	}
	pie, err := in.ExplainPlan(EngineCompIE)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pg.Components {
		if pg.Components[i].Engine != EngineGray || pie.Components[i].Engine != EngineCompIE {
			t.Fatalf("forced plans: component %d = %s / %s", i, pg.Components[i].Engine, pie.Components[i].Engine)
		}
	}
}

// TestEngineKeyedMemo pins that the structural memo keys on the chosen
// engine: a planned (IE) count must not hand its result to a forced Gray
// run, which would otherwise skip the enumeration it exists to measure.
func TestEngineKeyedMemo(t *testing.T) {
	db, ks, q := workload.IEHeavy(1, 10, 2) // space 1024, IE cost 24: planner picks IE
	in := MustInstance(db, ks, q)
	n1, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 100 covers the memo-hit case only: if forced Gray could reuse
	// the planner's IE result it would succeed without enumerating.
	if _, err := in.CountGray(100, 1); err != ErrBudget {
		t.Fatalf("forced gray after planned count: err = %v, want ErrBudget (memo must be engine-keyed)", err)
	}
	n2, err := in.CountGray(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n1.Cmp(n2) != 0 {
		t.Fatalf("planned %s vs forced gray %s", n1, n2)
	}
	// Now the Gray entry exists: the tiny budget succeeds via the memo.
	if _, err := in.CountGray(1, 1); err != nil {
		t.Fatalf("memoized forced gray recount: %v", err)
	}
}

// TestForcedCompIEOnMaskedPath: the masked fallback has no boxes, so
// forcing component-local IE must fail rather than miscount.
func TestForcedCompIEOnMaskedPath(t *testing.T) {
	in := exampleInstance(t)
	if _, err := in.countFactorized(0, 1, -1, EngineCompIE, nil); err == nil {
		t.Fatal("forced component-ie accepted on the masked path")
	}
	// The masked walk itself remains available under forced Gray.
	want, err := in.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := in.countFactorized(0, 1, -1, EngineGray, nil)
	if err != nil || got.Cmp(want) != 0 {
		t.Fatalf("masked forced gray = %v (%v), want %s", got, err, want)
	}
}

// TestExplainPlanSurface covers the non-factorized plan shapes: safe plan,
// FO enumeration, trivial whole-instance plans, and the rejection of
// non-plannable kinds.
func TestExplainPlanSurface(t *testing.T) {
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
	)
	ks := relational.Keys(map[string]int{"R": 1})
	sp := MustInstance(db, ks, query.MustParse("R(1, 'a')"))
	if p, err := sp.ExplainPlan(EngineAuto); err != nil || p.Engine != EngineSafePlan {
		t.Fatalf("safe-plan instance: plan %v (%v)", p, err)
	}
	fo := MustInstance(db, ks, query.MustParse("!R('1', 'a')"))
	if p, err := fo.ExplainPlan(EngineAuto); err != nil || p.Engine != EngineEnumFO {
		t.Fatalf("FO instance: plan %v (%v)", p, err)
	}
	in := exampleInstance(t)
	if p, err := in.ExplainPlan(EngineIE); err != nil || p.Engine != EngineIE {
		t.Fatalf("ie plan: %v (%v)", p, err)
	}
	if p, err := in.ExplainPlan(EngineEnum); err != nil || p.Engine != EngineEnum {
		t.Fatalf("enum plan: %v (%v)", p, err)
	}
	if _, err := in.ExplainPlan(EngineSafePlan); err == nil {
		t.Fatal("ExplainPlan(EngineSafePlan) accepted")
	}
	// A query entailed by an always-present fact (a size-1 block) plans as
	// always-true.
	db.Add(relational.NewFact("R", "2", "c"))
	at := MustInstance(db, ks, query.MustParse("exists x, y . R(x, y)"))
	p, err := at.ExplainPlan(EngineFactorized)
	if err != nil || !p.AlwaysTrue {
		t.Fatalf("always-true plan: %v (%v)", p, err)
	}
}

package repairs

import (
	"fmt"
	"math/big"
	"math/rand/v2"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// HasRepairEntailing decides #CQA>0: is there a repair entailing Q?
//
// For existential positive queries this is the logspace procedure of
// Theorem 3.4, justified by Lemma 3.5: a repair entailing the UCQ exists
// iff some disjunct Q_i has a homomorphism h with h(Q_i) ⊆ D and
// h(Q_i) ⊨ Σ. Only the polynomial certificate space is searched.
//
// For arbitrary FO queries the problem is NP-complete (Theorem 3.2); we
// fall back to exhaustive search over repairs.
func (in *Instance) HasRepairEntailing() bool {
	in.refresh()
	if in.IsEP {
		if in.decisionMemo == nil {
			in.decisionMemo = eval.NewConsistentUCQMatcher(in.UCQ, in.Idx, in.Keys)
		}
		return in.decisionMemo.HasHom()
	}
	for facts := range relational.Repairs(in.Blocks) {
		if eval.EvalBoolean(in.Q, eval.NewIndex(facts)) {
			return true
		}
	}
	return false
}

// Apx runs the Theorem 6.2 FPRAS on the instance via the Algorithm 2
// compactor: Pr(|Apx − #CQA| ≤ ε·#CQA) ≥ 1−δ.
func (in *Instance) Apx(eps, delta float64, rng *rand.Rand) (core.Estimate, error) {
	c, err := in.Compactor()
	if err != nil {
		return core.Estimate{}, err
	}
	return c.Apx(eps, delta, rng)
}

// ApxWithSamples runs the Algorithm 3 estimator with an explicit budget.
func (in *Instance) ApxWithSamples(t int, rng *rand.Rand) (core.Estimate, error) {
	c, err := in.Compactor()
	if err != nil {
		return core.Estimate{}, err
	}
	return c.ApxWithSamples(t, rng)
}

// KarpLuby runs the [5]-style estimator over the certificate boxes (the
// complex sample space discussed at the end of §6).
func (in *Instance) KarpLuby(t int, rng *rand.Rand) (core.Estimate, error) {
	boxes := in.CertificateBoxes()
	return core.KarpLuby(in.Domains(), boxes, t, rng)
}

// ApxParallel runs the Theorem 6.2 FPRAS with the sampling loop sharded
// across worker goroutines (workers ≤ 0 selects GOMAXPROCS). For a fixed
// seed the estimate is identical across runs and worker counts.
func (in *Instance) ApxParallel(eps, delta float64, workers int, seed uint64) (core.Estimate, error) {
	c, err := in.Compactor()
	if err != nil {
		return core.Estimate{}, err
	}
	return c.ApxParallel(eps, delta, workers, seed)
}

// ApxParallelStop is ApxParallel with a cooperative stop flag polled
// inside the sharded sampling loop; a fired stop fails the run with
// core.ErrStopped.
func (in *Instance) ApxParallelStop(eps, delta float64, workers int, seed uint64, stop *core.Stop) (core.Estimate, error) {
	c, err := in.Compactor()
	if err != nil {
		return core.Estimate{}, err
	}
	return c.ApxParallelStop(eps, delta, workers, seed, stop)
}

// ApxSampleBound reports the Theorem 6.2 sample count t the FPRAS would
// run at the given accuracy, without drawing a sample — the serving
// layer prices an approximate probe against its budget with it. It fails
// when the compactor is unbounded (no FPRAS; Theorem 6.1).
func (in *Instance) ApxSampleBound(eps, delta float64) (*big.Int, error) {
	c, err := in.Compactor()
	if err != nil {
		return nil, err
	}
	if c.K < 0 {
		return nil, fmt.Errorf("repairs: no sample bound: %s is an unbounded compactor (SpanLL)", c.Name)
	}
	return core.SampleBound(core.MaxDomainSize(c.Doms), c.K, eps, delta), nil
}

// ApxParallelWithSamples runs the Algorithm 3 estimator with an explicit
// sample budget, sharded across worker goroutines.
func (in *Instance) ApxParallelWithSamples(t, workers int, seed uint64) (core.Estimate, error) {
	c, err := in.Compactor()
	if err != nil {
		return core.Estimate{}, err
	}
	return c.ApxParallelWithSamples(t, workers, seed)
}

// KarpLubyParallel runs the Karp–Luby estimator over the certificate boxes
// with a sharded parallel sampling loop.
func (in *Instance) KarpLubyParallel(t, workers int, seed uint64) (core.Estimate, error) {
	boxes := in.CertificateBoxes()
	return core.KarpLubyParallel(in.Domains(), boxes, t, workers, seed)
}

package repairs

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// exampleInstance is Example 1.1 of the paper: 4 facts, 2 blocks, 4
// repairs, 2 of which entail the "same department" query.
func exampleInstance(t testing.TB) *Instance {
	t.Helper()
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	)
	ks := relational.Keys(map[string]int{"Employee": 1})
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	return MustInstance(db, ks, q)
}

func TestExampleOneOne(t *testing.T) {
	in := exampleInstance(t)
	if got := in.TotalRepairs(); got.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("total repairs = %s, want 4", got)
	}
	n, algo, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if n.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("#CQA = %s (algo %s), want 2", n, algo)
	}
	freq, err := in.RelativeFrequency()
	if err != nil {
		t.Fatal(err)
	}
	if freq.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("relative frequency = %s, want 1/2", freq)
	}
	if !in.HasRepairEntailing() {
		t.Fatalf("decision must be true")
	}
	if in.Keywidth() != 2 {
		t.Fatalf("kw = %d, want 2", in.Keywidth())
	}
}

func TestExampleAllExactAlgorithmsAgree(t *testing.T) {
	in := exampleInstance(t)
	want := big.NewInt(2)
	enum, err := in.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	ie, err := in.CountIE(0)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := in.CountCompactor()
	if err != nil {
		t.Fatal(err)
	}
	fo, err := in.CountEnumFO(0)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*big.Int{"enum": enum, "ie": ie, "compactor": comp, "fo": fo} {
		if got.Cmp(want) != 0 {
			t.Errorf("%s = %s, want 2", name, got)
		}
	}
}

func TestCompactorIsValidKCompactor(t *testing.T) {
	in := exampleInstance(t)
	c, err := in.Compactor()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.K != 2 {
		t.Fatalf("compactor K = %d, want kw = 2", c.K)
	}
	if c.EffectiveK() > c.K {
		t.Fatalf("effective selector length %d exceeds K", c.EffectiveK())
	}
}

func TestNonBooleanRejected(t *testing.T) {
	db := relational.MustDatabase(relational.NewFact("R", "1"))
	if _, err := NewInstance(db, relational.NewKeySet(), query.MustParse("R(x)")); err == nil {
		t.Fatalf("free variable accepted")
	}
}

func TestTupleSubstitutionWorkflow(t *testing.T) {
	// Non-Boolean query answered per tuple, as the paper reduces it.
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
	)
	ks := relational.Keys(map[string]int{"Employee": 1})
	q := query.MustParse("exists n . Employee(1, n, d)")
	for _, tc := range []struct {
		dept relational.Const
		want int64
	}{{"HR", 1}, {"IT", 1}, {"Sales", 0}} {
		bound := query.Substitute(q, map[query.Var]relational.Const{"d": tc.dept})
		in := MustInstance(db, ks, bound)
		n, _, err := in.CountExact()
		if err != nil {
			t.Fatal(err)
		}
		if n.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("#CQA(d=%s) = %s, want %d", tc.dept, n, tc.want)
		}
	}
}

func TestDecisionMatchesLemma35(t *testing.T) {
	// Inconsistent image: plain hom exists, consistent hom does not, so no
	// repair entails the query.
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
	)
	ks := relational.Keys(map[string]int{"R": 1})
	q := query.MustParse("exists x, y . (R(x, 'a') & R(y, 'b'))")
	in := MustInstance(db, ks, q)
	if in.HasRepairEntailing() {
		t.Fatalf("no repair can contain both R(1,a) and R(1,b)")
	}
	n, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if n.Sign() != 0 {
		t.Fatalf("count = %s, want 0", n)
	}
}

func TestCountFOWithNegation(t *testing.T) {
	// Repairs pick a truth value per variable; Q asks that no clause is
	// violated: a 1-clause 2SAT instance (x1 ∨ x2) has 3 satisfying
	// assignments out of 4.
	db := relational.MustDatabase(
		relational.NewFact("Var", "x1", "0"),
		relational.NewFact("Var", "x1", "1"),
		relational.NewFact("Var", "x2", "0"),
		relational.NewFact("Var", "x2", "1"),
	)
	ks := relational.Keys(map[string]int{"Var": 1})
	q := query.MustParse("!(Var('x1', '0') & Var('x2', '0'))")
	in := MustInstance(db, ks, q)
	n, algo, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if algo != EngineEnumFO {
		t.Fatalf("algo = %s, want fo-enumeration", algo)
	}
	if n.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("count = %s, want 3", n)
	}
	if !in.HasRepairEntailing() {
		t.Fatalf("decision must be true")
	}
}

func TestSafePlanSimpleQueries(t *testing.T) {
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
		relational.NewFact("R", "2", "a"),
		relational.NewFact("R", "3", "c"),
		relational.NewFact("R", "3", "a"),
	)
	ks := relational.Keys(map[string]int{"R": 1})
	cases := []struct {
		src  string
		want int64
	}{
		// Some R fact always exists: all 4 repairs.
		{"exists x, y . R(x, y)", 4},
		// R(x,'a'): blocks 1 (P=1/2), 2 (P=1), 3 (P=1/2) → always true.
		{"exists x . R(x, 'a')", 4},
		// R(x,'b'): only block 1 has b, P = 1/2 → 2 repairs.
		{"exists x . R(x, 'b')", 2},
		// Ground fact in block of size 2.
		{"R(1, 'b')", 2},
		// Absent fact.
		{"R(2, 'zzz')", 0},
		// Key value not in the database.
		{"R(9, 'a')", 0},
	}
	for _, tc := range cases {
		in := MustInstance(db, ks, query.MustParse(tc.src))
		got, ok := in.CountSafePlan()
		if !ok {
			t.Errorf("CountSafePlan(%q) reported unsafe", tc.src)
			continue
		}
		if got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Errorf("CountSafePlan(%q) = %s, want %d", tc.src, got, tc.want)
		}
		// Cross-check against enumeration.
		enum, err := in.CountEnumUCQ(0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(enum) != 0 {
			t.Errorf("safe plan %s vs enumeration %s for %q", got, enum, tc.src)
		}
	}
}

func TestSafePlanIndependentJoin(t *testing.T) {
	// Conjunction over two keyed predicates: T(1,'b') ∧ W(3,'c'), each a
	// size-2 block with one match → P = 1/2 · 1/2 of 2·2·(extra W block 2) =
	// 8 repairs → 2.
	db := relational.MustDatabase(
		relational.NewFact("T", "1", "a"),
		relational.NewFact("T", "1", "b"),
		relational.NewFact("W", "3", "c"),
		relational.NewFact("W", "3", "d"),
		relational.NewFact("W", "4", "e"),
		relational.NewFact("W", "4", "f"),
	)
	ks := relational.Keys(map[string]int{"T": 1, "W": 1})
	in := MustInstance(db, ks, query.MustParse("T(1, 'b') & W(3, 'c')"))
	got, ok := in.CountSafePlan()
	if !ok {
		t.Fatalf("independent join reported unsafe")
	}
	if got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("safe plan = %s, want 2", got)
	}
	enum, err := in.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(enum) != 0 {
		t.Fatalf("safe plan %s vs enumeration %s", got, enum)
	}
}

func TestSafePlanUnsafeQuery(t *testing.T) {
	// ∃x∃y R(x,y) ∧ S(y) with keys on the first attributes is the classic
	// #P-hard pattern: y is a nonkey join variable. The planner must refuse.
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("S", "a"),
	)
	ks := relational.Keys(map[string]int{"R": 1, "S": 1})
	in := MustInstance(db, ks, query.MustParse("exists x, y . (R(x, y) & S(y))"))
	if _, ok := in.CountSafePlan(); ok {
		t.Fatalf("unsafe query accepted by safe planner")
	}
	// The self-join query is refused as well (outside sjf).
	in2 := MustInstance(db, ks, query.MustParse("exists x, y . (R(x, 'a') & R(y, 'a'))"))
	if _, ok := in2.CountSafePlan(); ok {
		t.Fatalf("self-join accepted by safe planner")
	}
}

func TestSafePlanWithUnkeyedAtom(t *testing.T) {
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
		relational.NewFact("Cert", "ok"),
	)
	ks := relational.Keys(map[string]int{"R": 1})
	// Cert is unkeyed: certain. Component splits: P = 1 · 1/2.
	in := MustInstance(db, ks, query.MustParse("Cert('ok') & R(1, 'a')"))
	got, ok := in.CountSafePlan()
	if !ok || got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("safe plan = %v %v, want 1", got, ok)
	}
	in2 := MustInstance(db, ks, query.MustParse("Cert('missing') & R(1, 'a')"))
	got2, ok := in2.CountSafePlan()
	if !ok || got2.Sign() != 0 {
		t.Fatalf("safe plan = %v %v, want 0", got2, ok)
	}
}

func TestFalseAndTrueQueries(t *testing.T) {
	in := exampleInstance(t)
	fin := MustInstance(in.DB, in.Keys, query.MustParse("false"))
	n, _, err := fin.CountExact()
	if err != nil || n.Sign() != 0 {
		t.Fatalf("false query count = %v %v", n, err)
	}
	if fin.HasRepairEntailing() {
		t.Fatalf("false query has no entailing repair")
	}
	tin := MustInstance(in.DB, in.Keys, query.MustParse("true"))
	n2, _, err := tin.CountExact()
	if err != nil || n2.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("true query count = %v %v, want 4", n2, err)
	}
}

func TestEntailingRepairs(t *testing.T) {
	in := exampleInstance(t)
	n := 0
	for facts := range in.EntailingRepairs() {
		n++
		rd := relational.Subset(append([]relational.Fact{}, facts...))
		if !relational.IsRepairOf(rd, in.DB, in.Keys) {
			t.Fatalf("yielded non-repair %v", rd)
		}
		// Each must actually entail Q: both employees in IT.
		if !rd.Contains(relational.NewFact("Employee", "1", "Bob", "IT")) {
			t.Fatalf("repair %v cannot entail the same-department query", rd)
		}
	}
	if n != 2 {
		t.Fatalf("entailing repairs = %d, want 2", n)
	}
	// Early stop.
	n = 0
	for range in.EntailingRepairs() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("early stop failed")
	}
	// FO query path.
	foIn := MustInstance(in.DB, in.Keys, query.MustParse("!Employee(1, 'Bob', 'HR')"))
	n = 0
	for range foIn.EntailingRepairs() {
		n++
	}
	if n != 2 {
		t.Fatalf("FO entailing repairs = %d, want 2", n)
	}
}

func TestApxOnExample(t *testing.T) {
	in := exampleInstance(t)
	rng := rand.New(rand.NewPCG(11, 13))
	est, err := in.Apx(0.15, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := est.Value.Float64()
	if v < 2*(1-0.15) || v > 2*(1+0.15) {
		t.Fatalf("Apx estimate %.3f outside ε-band around 2", v)
	}
	kl, err := in.KarpLuby(4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	kv, _ := kl.Value.Float64()
	if kv < 1.7 || kv > 2.3 {
		t.Fatalf("Karp–Luby estimate %.3f far from 2", kv)
	}
}

// randomEPInstance builds a random database over R/2 (keyed), S/1 (keyed)
// and U/1 (unkeyed), plus a random ∃FO⁺ query from a small corpus.
func randomEPInstance(rng *rand.Rand) *Instance {
	db := relational.MustDatabase()
	nBlocks := 1 + rng.IntN(4)
	letters := []relational.Const{"a", "b", "c"}
	for b := 0; b < nBlocks; b++ {
		sz := 1 + rng.IntN(3)
		for j := 0; j < sz; j++ {
			db.Add(relational.NewFact("R", relational.IntConst(b), letters[rng.IntN(3)]))
		}
	}
	for b := 0; b < rng.IntN(3); b++ {
		db.Add(relational.NewFact("S", letters[rng.IntN(3)]))
	}
	for b := 0; b < rng.IntN(2); b++ {
		db.Add(relational.NewFact("U", letters[rng.IntN(3)]))
	}
	ks := relational.Keys(map[string]int{"R": 1, "S": 1})
	corpus := []string{
		"exists x, y . (R(x, y) & S(y))",
		"exists x . R(x, 'a')",
		"(exists x . R(x, 'b')) | (exists y . S(y))",
		"exists x, y . (R(x, 'a') & R(y, 'b'))",
		"exists x . (R(x, 'a') & U(x))",
		"exists x, y, z . (R(x, y) & R(z, 'c'))",
	}
	q := query.MustParse(corpus[rng.IntN(len(corpus))])
	return MustInstance(db, ks, q)
}

// Property: the four exact counters agree on random ∃FO⁺ instances, the
// decision procedure matches count > 0, and the count never exceeds the
// total number of repairs.
func TestExactCountersAgreeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		in := randomEPInstance(rng)
		enum, err := in.CountEnumUCQ(0)
		if err != nil {
			return false
		}
		ie, err := in.CountIE(0)
		if err != nil {
			return false
		}
		comp, err := in.CountCompactor()
		if err != nil {
			return false
		}
		fo, err := in.CountEnumFO(0)
		if err != nil {
			return false
		}
		if enum.Cmp(ie) != 0 || enum.Cmp(comp) != 0 || enum.Cmp(fo) != 0 {
			t.Logf("seed %d: enum=%s ie=%s comp=%s fo=%s q=%s db=\n%s", seed, enum, ie, comp, fo, in.Q, in.DB)
			return false
		}
		if (enum.Sign() > 0) != in.HasRepairEntailing() {
			return false
		}
		return enum.Cmp(in.TotalRepairs()) <= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever the safe plan succeeds it matches enumeration.
func TestSafePlanAgreesWithEnumProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		in := randomEPInstance(rng)
		sp, ok := in.CountSafePlan()
		if !ok {
			return true // fallback path; nothing to check
		}
		enum, err := in.CountEnumUCQ(0)
		if err != nil {
			return false
		}
		if sp.Cmp(enum) != 0 {
			t.Logf("seed %d: safeplan=%s enum=%s q=%s db=\n%s", seed, sp, enum, in.Q, in.DB)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Algorithm 2 compactor is a valid kw-compactor on random
// instances (selector lengths within kw, compact strings in shape).
func TestCompactorValidProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 123))
		in := randomEPInstance(rng)
		c, err := in.Compactor()
		if err != nil {
			return false
		}
		return c.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCountEnumUCQFactorsIrrelevantBlocks(t *testing.T) {
	// 20 irrelevant blocks of size 2 multiply the count by 2^20 without
	// blowing the enumeration budget.
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
	)
	for i := 0; i < 20; i++ {
		db.Add(relational.NewFact("Noise", relational.IntConst(i), "x"))
		db.Add(relational.NewFact("Noise", relational.IntConst(i), "y"))
	}
	ks := relational.Keys(map[string]int{"R": 1, "Noise": 1})
	in := MustInstance(db, ks, query.MustParse("R(1, 'a')"))
	got, err := in.CountEnumUCQ(100) // tiny budget: only R's blocks enumerated
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 20) // 1 · 2^20
	if got.Cmp(want) != 0 {
		t.Fatalf("count = %s, want 2^20", got)
	}
}

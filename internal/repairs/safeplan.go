package repairs

import (
	"math/big"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// This file implements polynomial-time exact counting for the tractable
// side of the Maslowski–Wijsen dichotomy [8] on self-join-free conjunctive
// queries, via safe plans in the style of Dalvi–Suciu evaluated over the
// block-disjoint structure of repairs. Repairs drawn uniformly at random
// pick one fact per block independently, so #CQA = P(Q) · ∏|B_i| where
// P(Q) is the probability that a random repair satisfies Q. The planner
// computes P(Q) with exact rational arithmetic using four rules, each
// locally correct:
//
//	(independent join)     variable-disjoint components use disjoint
//	                       predicates (self-join-freeness), hence disjoint
//	                       blocks, hence independent events: multiply.
//	(certain atom)         a component that is a single unkeyed atom is
//	                       deterministic: every repair contains all facts
//	                       of an unkeyed predicate.
//	(disjoint project)     an atom whose key positions are all constants
//	                       addresses one block; the block's choices are
//	                       mutually exclusive, and the rest of the query
//	                       touches other predicates only: sum over the
//	                       block's facts of (1/|B|)·P(rest under unifier).
//	(independent project)  a variable occurring in every atom of a
//	                       connected component and in a key position of
//	                       every keyed atom partitions the event across
//	                       disjoint block sets for different values:
//	                       P = 1 − ∏_v (1 − P(q[x→v])).
//
// Queries on which no rule applies are reported unsafe and the caller
// falls back to an exponential exact counter or the FPRAS; tests verify
// that whenever the plan succeeds it matches brute-force enumeration.

// CountSafePlan attempts the safe-plan count. ok is false when the query
// is not a self-join-free conjunctive query or no rule sequence applies.
func (in *Instance) CountSafePlan() (*big.Int, bool) {
	if !in.IsEP {
		return nil, false
	}
	total := in.TotalRepairs()
	switch len(in.UCQ.Disjuncts) {
	case 0:
		return big.NewInt(0), true // the empty union: no repair entails false
	case 1:
	default:
		return nil, false // dichotomy machinery is for single CQs
	}
	q := in.UCQ.Disjuncts[0]
	if !q.IsSelfJoinFree() {
		return nil, false
	}
	sp := &safePlanner{in: in}
	p, ok := sp.prob(q.Atoms)
	if !ok {
		return nil, false
	}
	count := new(big.Rat).Mul(p, new(big.Rat).SetInt(total))
	if !count.IsInt() {
		panic("repairs: safe plan produced a non-integer count; planner invariant violated")
	}
	return new(big.Int).Set(count.Num()), true
}

type safePlanner struct {
	in *Instance
}

// prob computes P(random repair ⊨ ∃* ⋀ atoms), or ok=false when unsafe.
func (sp *safePlanner) prob(atoms []query.Atom) (*big.Rat, bool) {
	if len(atoms) == 0 {
		return big.NewRat(1, 1), true
	}
	comps := components(atoms)
	if len(comps) > 1 {
		out := big.NewRat(1, 1)
		for _, comp := range comps {
			p, ok := sp.probComponent(comp)
			if !ok {
				return nil, false
			}
			out.Mul(out, p)
		}
		return out, true
	}
	return sp.probComponent(comps[0])
}

// probComponent handles one variable-connected component.
func (sp *safePlanner) probComponent(atoms []query.Atom) (*big.Rat, bool) {
	in := sp.in
	// Certain atom: a single unkeyed atom is deterministic.
	if len(atoms) == 1 && !in.Keys.HasKey(atoms[0].Pred) {
		for _, f := range in.Idx.FactsFor(atoms[0].Pred) {
			if _, ok := unifyAtomFact(atoms[0], f); ok {
				return big.NewRat(1, 1), true
			}
		}
		return big.NewRat(0, 1), true
	}
	// Disjoint project: an atom whose key prefix is fully constant.
	for i, a := range atoms {
		w, keyed := in.Keys.Width(a.Pred)
		if !keyed || w > len(a.Args) {
			continue
		}
		keyVals, ground := keyPrefixConsts(a, w)
		if !ground {
			continue
		}
		kv := relational.KeyValue{Pred: a.Pred, Vals: keyVals}
		bi, exists := in.blockIndex().FindKey(kv)
		if !exists {
			// The atom can never hold: no repair contains a fact with this
			// key value.
			return big.NewRat(0, 1), true
		}
		block := in.Blocks[bi]
		rest := removeAtom(atoms, i)
		sum := big.NewRat(0, 1)
		per := big.NewRat(1, int64(block.Size()))
		ok := true
		for _, f := range block.Facts {
			theta, unifies := unifyAtomFact(a, f)
			if !unifies {
				continue
			}
			p, pok := sp.prob(substituteAtoms(rest, theta))
			if !pok {
				ok = false
				break
			}
			sum.Add(sum, new(big.Rat).Mul(per, p))
		}
		if ok {
			return sum, true
		}
		// This projection got stuck downstream; try other rules.
	}
	// Independent project: a root variable in every atom, in the key of
	// every keyed atom.
	for _, x := range componentVars(atoms) {
		if !isRootVariable(atoms, x, in.Keys) {
			continue
		}
		values := candidateValues(atoms, x, in)
		fail := big.NewRat(1, 1)
		ok := true
		for _, v := range values {
			p, pok := sp.prob(substituteAtoms(atoms, map[query.Var]relational.Const{x: v}))
			if !pok {
				ok = false
				break
			}
			one := big.NewRat(1, 1)
			fail.Mul(fail, one.Sub(one, p))
		}
		if ok {
			one := big.NewRat(1, 1)
			return one.Sub(one, fail), true
		}
	}
	return nil, false
}

// components splits atoms into variable-connected components (ground atoms
// are singletons), preserving atom order within components.
func components(atoms []query.Atom) [][]query.Atom {
	n := len(atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	byVar := map[query.Var]int{}
	for i, a := range atoms {
		for _, v := range a.Vars() {
			if j, seen := byVar[v]; seen {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := map[int][]query.Atom{}
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]query.Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// componentVars returns the distinct variables of the atoms, in first-seen
// order (a deterministic rule-application order).
func componentVars(atoms []query.Atom) []query.Var {
	seen := map[query.Var]bool{}
	var out []query.Var
	for _, a := range atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// isRootVariable reports whether x occurs in every atom and in a key
// position of every keyed atom.
func isRootVariable(atoms []query.Atom, x query.Var, ks *relational.KeySet) bool {
	for _, a := range atoms {
		inAtom, inKey := false, false
		w, keyed := ks.Width(a.Pred)
		for pos, t := range a.Args {
			if v, ok := t.(query.Var); ok && v == x {
				inAtom = true
				if pos < w {
					inKey = true
				}
			}
		}
		if !inAtom {
			return false
		}
		if keyed && !inKey {
			return false
		}
	}
	return true
}

// candidateValues returns the constants v for which q[x→v] can possibly
// hold: the intersection over atoms of the values occurring, in some
// position where x occurs, in facts of the atom's predicate. Values
// outside the intersection give P(q[x→v]) = 0 and are skipped soundly.
func candidateValues(atoms []query.Atom, x query.Var, in *Instance) []relational.Const {
	var result map[relational.Const]bool
	for _, a := range atoms {
		vals := map[relational.Const]bool{}
		for pos, t := range a.Args {
			v, ok := t.(query.Var)
			if !ok || v != x {
				continue
			}
			for _, f := range in.Idx.FactsFor(a.Pred) {
				vals[f.Args[pos]] = true
			}
		}
		if result == nil {
			result = vals
			continue
		}
		for c := range result {
			if !vals[c] {
				delete(result, c)
			}
		}
	}
	var out []relational.Const
	for c := range result {
		out = append(out, c)
	}
	return relational.ConstSlice(out)
}

// keyPrefixConsts extracts the key prefix of an atom if fully constant.
func keyPrefixConsts(a query.Atom, w int) ([]relational.Const, bool) {
	out := make([]relational.Const, w)
	for i := 0; i < w; i++ {
		ct, ok := a.Args[i].(query.ConstTerm)
		if !ok {
			return nil, false
		}
		out[i] = relational.Const(ct)
	}
	return out, true
}

// unifyAtomFact matches an atom against a fact: constants must agree and
// repeated variables must bind consistently; returns the binding.
func unifyAtomFact(a query.Atom, f relational.Fact) (map[query.Var]relational.Const, bool) {
	if a.Pred != f.Pred || len(a.Args) != len(f.Args) {
		return nil, false
	}
	theta := map[query.Var]relational.Const{}
	for i, t := range a.Args {
		switch t := t.(type) {
		case query.ConstTerm:
			if relational.Const(t) != f.Args[i] {
				return nil, false
			}
		case query.Var:
			if c, ok := theta[t]; ok {
				if c != f.Args[i] {
					return nil, false
				}
			} else {
				theta[t] = f.Args[i]
			}
		}
	}
	return theta, true
}

func removeAtom(atoms []query.Atom, i int) []query.Atom {
	out := make([]query.Atom, 0, len(atoms)-1)
	out = append(out, atoms[:i]...)
	out = append(out, atoms[i+1:]...)
	return out
}

func substituteAtoms(atoms []query.Atom, theta map[query.Var]relational.Const) []query.Atom {
	out := make([]query.Atom, len(atoms))
	for i, a := range atoms {
		out[i] = query.SubstituteAtom(a, theta)
	}
	return out
}

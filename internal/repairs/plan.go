package repairs

import (
	"fmt"
	"math"
	"math/big"
	"strconv"
	"strings"

	"repaircount/internal/core"
)

// This file implements the exact-counting planner: the strategy layer that
// turns CountExact from a try-and-fallback chain into a costed decision.
// After factorize.go decomposes the relevant conflict blocks into connected
// components of the query-interaction graph, each component admits two
// independent exact strategies for its non-entailment count #¬Q_c:
//
//   - walk the 2^{n_c} choice vectors in Gray order with delta-maintained
//     match state (delta.go) — work proportional to the component's choice
//     space, independent of the number of boxes;
//   - inclusion–exclusion over the component's boxes, reusing
//     core.CountUnionIE on per-component domains — work bounded by the
//     number of box subsets with non-empty intersection, independent of the
//     choice space: #¬Q_c = Π|B_i| − |⋃_b box_b|.
//
// The tractable strategy varies per component, not per instance
// (Calautti–Livshits–Pieris): a 40-block component with 3 boxes is a 7-term
// IE sum where the Gray walk would need 2^40 states, while a 2-block
// component with 256 boxes is a 4-state walk where IE could touch 2^256
// subsets. The planner therefore costs each component independently and
// assigns the cheaper engine, making the effective enumeration budget
// Σ_c min(2^{n_c}, IE_c) — and because IE never materializes the choice
// space, components whose 2^{n_c} overflows int64 remain exactly countable.
//
// # Cost model
//
// Costs are expressed in Gray states, the unit the enumeration budget is
// stated in:
//
//   - Gray (and masked) cost: the component's choice space Π|B_i|,
//     saturated at MaxInt64 — one delta-maintained state per repair.
//   - IE cost: (2^{#boxes} − 1) · ieNodeCost. The DFS of core.CountUnionIE
//     visits only box subsets with a non-empty intersection, so 2^{#boxes}−1
//     is a worst-case bound (pruning only helps); ieNodeCost accounts for an
//     IE node being more expensive than a Gray state (a selector merge plus
//     a product, versus a couple of counter bumps).
//
// The masked fallback (homomorphism space too large to materialize as
// boxes) has no box tables, so IE is unavailable there and the planner
// keeps the masked walk. Memoized components (their #¬Q_c already in the
// structural memo for the chosen engine) cost nothing.

// EngineKind identifies one exact-counting engine. The first group are the
// whole-instance algorithms CountExact arbitrates between; EngineGray,
// EngineMasked and EngineCompIE are the per-component engines a factorized
// Plan assigns.
type EngineKind uint8

const (
	// EngineAuto requests planner arbitration (not a reportable engine).
	EngineAuto EngineKind = iota
	// EngineSafePlan is the polynomial safe-plan counter for tractable
	// self-join-free CQs (Maslowski–Wijsen dichotomy).
	EngineSafePlan
	// EngineLambda1 is the Λ[1] closed form for keywidth ≤ 1 (Thm 4.4(1)).
	EngineLambda1
	// EngineFactorized is the planned factorized engine: per-component
	// engine selection over the query-interaction decomposition.
	EngineFactorized
	// EngineGray is the per-component Gray-code walk with delta-maintained
	// box miss counters.
	EngineGray
	// EngineMasked is the per-component Gray-code walk probing the compiled
	// matcher through an allowed-ordinal bitmask (the fallback when boxes
	// cannot be materialized).
	EngineMasked
	// EngineCompIE is component-local inclusion–exclusion over the
	// component's boxes.
	EngineCompIE
	// EngineCompile is the knowledge-compilation engine: the component is
	// compiled once into a d-DNNF circuit (compile.go) and every count —
	// first, repeated, post-delta, weighted — is one bottom-up pass over
	// the cached circuit.
	EngineCompile
	// EngineIE is whole-instance inclusion–exclusion over the global
	// certificate boxes.
	EngineIE
	// EngineEnum is plain enumeration of the relevant choice space.
	EngineEnum
	// EngineEnumFO is exhaustive repair enumeration with full FO
	// evaluation (the only exact engine for non-∃FO⁺ queries).
	EngineEnumFO
)

// String returns the display name of the engine.
func (k EngineKind) String() string {
	switch k {
	case EngineAuto:
		return "auto"
	case EngineSafePlan:
		return "safeplan"
	case EngineLambda1:
		return "lambda1-closed-form"
	case EngineFactorized:
		return "factorized"
	case EngineGray:
		return "gray"
	case EngineMasked:
		return "masked"
	case EngineCompIE:
		return "component-ie"
	case EngineCompile:
		return "compile"
	case EngineIE:
		return "inclusion-exclusion"
	case EngineEnum:
		return "enumeration"
	case EngineEnumFO:
		return "fo-enumeration"
	}
	return fmt.Sprintf("EngineKind(%d)", uint8(k))
}

// EngineNames lists the engine names ParseEngine accepts, in display order.
func EngineNames() []string {
	return []string{"auto", "factorized", "gray", "ie", "compile", "enum"}
}

// ParseEngine maps a user-facing engine name (the -exact values of
// repairctl count) to its kind. The error lists every valid name.
func ParseEngine(name string) (EngineKind, error) {
	switch name {
	case "", "auto":
		return EngineAuto, nil
	case "factorized":
		return EngineFactorized, nil
	case "gray":
		return EngineGray, nil
	case "ie":
		return EngineIE, nil
	case "compile":
		return EngineCompile, nil
	case "enum":
		return EngineEnum, nil
	}
	return EngineAuto, fmt.Errorf("unknown exact engine %q (want one of %s)", name, strings.Join(EngineNames(), ", "))
}

// ieNodeCost is the planner's cost of one inclusion–exclusion subset node,
// in Gray states: an IE node performs a selector merge and a box-size
// product where a Gray state performs a handful of counter bumps.
const ieNodeCost = 8

// ComponentPlan is the planner's verdict for one connected component.
type ComponentPlan struct {
	// Blocks is the number of conflict blocks (odometer digits).
	Blocks int
	// Boxes is the number of homomorphic-image boxes inside the component
	// (0 on the masked path, where boxes are not materialized).
	Boxes int
	// GrayCost is the Gray/masked walk cost: the choice space Π|B_i|,
	// saturated at MaxInt64.
	GrayCost int64
	// IECost is the component-local IE cost (2^Boxes − 1) · ieNodeCost,
	// saturated; MaxInt64 when IE is unavailable (masked path).
	IECost int64
	// CompileCost is the knowledge-compilation cost: the cached circuit's
	// node count when one exists (a single bottom-up evaluation), the Gray
	// cost for a cold compile, MaxInt64 when compilation is unavailable
	// (masked path).
	CompileCost int64
	// CircuitNodes is the cached circuit's size (0 when no circuit is
	// cached for this component's structure).
	CircuitNodes int
	// Engine is the chosen engine: EngineGray, EngineMasked, EngineCompIE
	// or EngineCompile.
	Engine EngineKind
	// Cost is the work the chosen engine charges against the enumeration
	// budget (0 when Memoized).
	Cost int64
	// Memoized reports that #¬Q_c for this structure and engine is already
	// in the instance's structural memo, so the component costs nothing.
	Memoized bool
}

// Plan reports how CountExact will (or did) answer: the overall algorithm
// and, for the factorized engine, the per-component engine assignment with
// its costs. Budget is the total work charged against the enumeration
// budget — Σ_c min(2^{n_c}, IE_c) over the non-memoized components. When
// the planned budget is exceeded, Engine names the fallback CountExact
// attempts next (EngineIE); whether that fallback itself fits its node
// budget is only known by running it, so the count may ultimately report
// EngineEnum.
type Plan struct {
	Engine     EngineKind
	AlwaysTrue bool // some homomorphism uses only always-present facts: #Q = |rep|
	Masked     bool // hom budget exceeded: masked walk, IE unavailable
	Budget     int64
	Components []ComponentPlan
}

// String renders a one-line summary (per-component detail is in Components).
func (p *Plan) String() string {
	if len(p.Components) == 0 {
		return fmt.Sprintf("engine=%s", p.Engine)
	}
	counts := map[EngineKind]int{}
	for _, c := range p.Components {
		counts[c.Engine]++
	}
	var parts []string
	for _, k := range []EngineKind{EngineGray, EngineMasked, EngineCompIE, EngineCompile} {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return fmt.Sprintf("engine=%s components=%d (%s) budget=%d",
		p.Engine, len(p.Components), strings.Join(parts, " "), p.Budget)
}

// grayCost returns the component's walk cost: its choice space, saturated.
func grayCost(c *component) int64 { return c.space }

// ieCost returns the component-local IE cost, saturated; MaxInt64 when the
// component has no box tables (masked path).
func ieCost(c *component) int64 {
	if c.numBoxes == 0 {
		return math.MaxInt64
	}
	if c.numBoxes >= 62 {
		return math.MaxInt64
	}
	return mulSat((int64(1)<<c.numBoxes)-1, ieNodeCost)
}

// ieNodeBudget returns the worst-case node count CountUnionIE may visit for
// the component — the bound the planner priced, passed as the IE budget so
// an execution can never exceed its plan.
func ieNodeBudget(c *component) int {
	if c.numBoxes >= 62 {
		return math.MaxInt32 // execution is unreachable: ieCost saturates first
	}
	return int((int64(1) << c.numBoxes) - 1)
}

// compileCost prices EngineCompile for a component: a circuit cached under
// the component's structural fingerprint costs its node count (one
// bottom-up evaluation, the engine's whole point), and a cold compile is
// priced at min(Gray walk, node budget) — reachable compile states are
// bounded by the decided-choice prefixes of the choice space (never worse
// than the walk), every state materializes at least one node, and the
// compiler aborts with ErrBudget past compileNodeBudget nodes, so the work
// a compilation can possibly do is genuinely capped by the smaller bound.
// This is what lets a forced compile accept components whose choice space
// is astronomical but whose circuit is small (the IEHeavy shape): the
// budget check prices the attempt, the node budget polices the outcome.
// Compilation is unavailable without box tables. The cached circuit, if
// any, rides along so callers avoid a second lookup.
func (in *Instance) compileCost(c *component) (int64, *circuit) {
	if c.numBoxes == 0 {
		return math.MaxInt64, nil
	}
	if circ, ok := in.circMemo[c.circuitFingerprint()]; ok {
		return int64(len(circ.nodes)), circ
	}
	return min(grayCost(c), int64(compileNodeBudget)), nil
}

// planEngines assigns an engine to every component: the cheapest one under
// the cost model for EngineAuto, or the forced engine. Forcing EngineCompIE
// or EngineCompile on the masked path is an error (no box tables there).
// Under EngineAuto a cached circuit competes on its evaluation cost; a cold
// compile is only preferred once the instance has observed memo reuse
// (memoReuse ≥ compileReuseThreshold) and never charges more than the Gray
// walk it replaces — the amortization bet the cost-model notes in
// compile.go spell out.
func (in *Instance) planEngines(f *factorization, force EngineKind) ([]EngineKind, error) {
	engines := make([]EngineKind, len(f.comps))
	for i := range f.comps {
		c := &f.comps[i]
		switch {
		case f.masked:
			if force == EngineCompIE {
				return nil, fmt.Errorf("repairs: component-local inclusion–exclusion unavailable: homomorphism space exceeded the box budget (masked fallback)")
			}
			if force == EngineCompile {
				return nil, fmt.Errorf("repairs: circuit compilation unavailable: homomorphism space exceeded the box budget (masked fallback)")
			}
			engines[i] = EngineMasked
		case force == EngineGray:
			engines[i] = EngineGray
		case force == EngineCompIE:
			engines[i] = EngineCompIE
		case force == EngineCompile:
			engines[i] = EngineCompile
		default: // EngineAuto / EngineFactorized: pick the cheapest engine
			engines[i] = EngineGray
			best := grayCost(c)
			if ie := ieCost(c); ie < best {
				engines[i], best = EngineCompIE, ie
			}
			ccost, circ := in.compileCost(c)
			switch {
			case circ != nil && ccost < best:
				engines[i] = EngineCompile
			case circ == nil && in.memoReuse >= compileReuseThreshold && ccost <= best:
				// No circuit yet, but the workload demonstrably recounts:
				// compile now (charged no more than the engine it displaces)
				// so the next recount is circuit-linear.
				engines[i] = EngineCompile
			}
		}
	}
	return engines, nil
}

// engineCost returns the budget charge of running the component under the
// given engine.
func (in *Instance) engineCost(c *component, engine EngineKind) int64 {
	switch engine {
	case EngineCompIE:
		return ieCost(c)
	case EngineCompile:
		cost, _ := in.compileCost(c)
		return cost
	default:
		return grayCost(c)
	}
}

// compDomains renders the component's blocks as core solution domains:
// digit d becomes a domain of its |B_d| choice ordinals.
func compDomains(c *component) []core.Domain {
	doms := make([]core.Domain, len(c.sizes))
	for d := range doms {
		elems := make([]core.Element, c.sizes[d])
		for j := range elems {
			elems[j] = core.Element(strconv.Itoa(j))
		}
		doms[d] = core.Domain{Name: "b" + strconv.Itoa(d), Elems: elems}
	}
	return doms
}

// compIENonEntailment computes #¬Q_c by component-local inclusion–exclusion:
// the component's boxes become selectors over its choice-ordinal domains,
// core.CountUnionIE counts the entailing choice vectors |⋃_b box_b|, and
// the complement against the (big-int) choice space is returned. Unlike the
// Gray walk this never enumerates the space, so it works for components
// whose Π|B_i| exceeds any machine word.
func compIENonEntailment(c *component, stop *core.Stop) (*big.Int, error) {
	doms := compDomains(c)
	sels := make([]core.Selector, c.numBoxes)
	for b := 0; b < c.numBoxes; b++ {
		pins := make([]core.Pin, 0, c.boxOff[b+1]-c.boxOff[b])
		for r := c.boxOff[b]; r < c.boxOff[b+1]; r++ {
			d := c.reqDigit[r]
			pins = append(pins, core.Pin{Index: int(d), Elem: doms[d].Elems[c.reqChoice[r]]})
		}
		sel, err := core.NewSelector(doms, pins...)
		if err != nil {
			// The box tables pin each digit at most once to a valid choice;
			// a failure here is a factorization bug, not an input condition.
			panic("repairs: component box is not a valid selector: " + err.Error())
		}
		sels[b] = sel
	}
	union, err := core.CountUnionIEStop(doms, sels, ieNodeBudget(c), stop)
	if err != nil {
		return nil, err
	}
	space := big.NewInt(1)
	for _, s := range c.sizes {
		space.Mul(space, big.NewInt(int64(s)))
	}
	return space.Sub(space, union), nil
}

// compAssessment is the shared costing pass behind both ExplainPlan and
// countFactorized: the per-component report, the total budget charge, and
// — on the box path — every component's engine-keyed fingerprint with any
// count already in the structural memo. Keeping one implementation
// guarantees the budget a plan reports is the budget the execution
// enforces.
type compAssessment struct {
	plans  []ComponentPlan
	budget int64
	fps    []compFP   // nil on the masked path (no memoization)
	known  []*big.Int // memoized #¬Q_c per component, nil when unknown
	circs  []*circuit // cached circuit per component, nil when none/masked
}

// assessComponents runs the costing pass for a factorization under the
// given engine assignment, consulting the structural memo.
func (in *Instance) assessComponents(f *factorization, engines []EngineKind) compAssessment {
	a := compAssessment{
		plans: make([]ComponentPlan, len(f.comps)),
		known: make([]*big.Int, len(f.comps)),
	}
	if !f.masked {
		a.fps = make([]compFP, len(f.comps))
		a.circs = make([]*circuit, len(f.comps))
	}
	for i := range f.comps {
		c := &f.comps[i]
		cp := ComponentPlan{
			Blocks:   len(c.sizes),
			Boxes:    c.numBoxes,
			GrayCost: grayCost(c),
			IECost:   ieCost(c),
			Engine:   engines[i],
		}
		ccost, circ := in.compileCost(c)
		cp.CompileCost = ccost
		if circ != nil {
			cp.CircuitNodes = len(circ.nodes)
			if a.circs != nil {
				a.circs[i] = circ
			}
		}
		if a.fps != nil {
			a.fps[i] = c.fingerprint(engines[i])
			if v, ok := in.compMemo[a.fps[i]]; ok {
				a.known[i] = v
				cp.Memoized = true
			}
		}
		if !cp.Memoized {
			cp.Cost = in.engineCost(c, engines[i])
			a.budget = addSat(a.budget, cp.Cost)
		}
		a.plans[i] = cp
	}
	return a
}

// prePlan checks the closed-form engines that preempt factorization: the
// safe plan and, at keywidth ≤ 1, the Λ[1] closed form. It returns a nil
// plan when neither applies; otherwise the count comes with the plan (both
// engines produce it while deciding applicability). Existential positive
// instances only.
func (in *Instance) prePlan() (*Plan, *big.Int) {
	if n, ok := in.CountSafePlan(); ok {
		return &Plan{Engine: EngineSafePlan}, n
	}
	if in.Keywidth() <= 1 {
		if n, err := in.CountLambda1(); err == nil {
			return &Plan{Engine: EngineLambda1}, n
		}
	}
	return nil, nil
}

// planExact derives the full plan report CountExact follows, returning the
// count alongside when planning already produced it (safe plan, Λ[1]
// closed form, always-true factorization). CountExact itself only consults
// prePlan and lets countFactorized derive the component assignment — the
// fingerprint and costing pass happens once per count, not twice; this
// full report backs ExplainPlan. Existential positive instances only.
func (in *Instance) planExact() (*Plan, *big.Int) {
	if p, n := in.prePlan(); p != nil {
		return p, n
	}
	f := in.factorization(0)
	if f.alwaysTrue {
		return &Plan{Engine: EngineFactorized, AlwaysTrue: true}, in.TotalRepairs()
	}
	engines, err := in.planEngines(f, EngineAuto)
	if err != nil {
		// Unreachable: EngineAuto never fails planEngines.
		panic(err)
	}
	a := in.assessComponents(f, engines)
	p := &Plan{Engine: EngineFactorized, Masked: f.masked, Budget: a.budget, Components: a.plans}
	if a.budget > int64(DefaultEnumBudget) {
		// The planned factorized run would exceed the enumeration budget;
		// CountExact attempts whole-instance inclusion–exclusion next (and
		// plain enumeration after that, should IE exceed its own node
		// budget — feasibility of the fallbacks is only known by running
		// them). The component report is kept so the caller can see why.
		p.Engine = EngineIE
	}
	return p, nil
}

// ExplainPlan reports how the exact engines would answer this instance
// without running the enumeration: the overall algorithm and — for the
// factorized engine — every component's size, box count, both engine
// costs, the chosen engine and whether its count is already memoized. (The
// polynomial closed-form engines, safe plan and Λ[1], do execute while
// deciding applicability; the exponential work is what planning avoids.)
// force selects whose plan to explain: EngineAuto for the planner's own
// arbitration (what CountExact does), EngineFactorized/EngineGray/
// EngineCompIE/EngineCompile for a forced per-component assignment,
// EngineIE/EngineEnum for the trivial whole-instance plans.
func (in *Instance) ExplainPlan(force EngineKind) (*Plan, error) {
	in.refresh()
	if !in.IsEP {
		return &Plan{Engine: EngineEnumFO}, nil
	}
	switch force {
	case EngineAuto:
		p, _ := in.planExact()
		return p, nil
	case EngineIE:
		return &Plan{Engine: EngineIE}, nil
	case EngineEnum:
		return &Plan{Engine: EngineEnum}, nil
	case EngineFactorized, EngineGray, EngineCompIE, EngineCompile:
	default:
		return nil, fmt.Errorf("repairs: no plan for engine %s (want EngineAuto, EngineFactorized, EngineGray, EngineCompIE, EngineCompile, EngineIE or EngineEnum)", force)
	}
	f := in.factorization(0)
	if f.alwaysTrue {
		return &Plan{Engine: EngineFactorized, AlwaysTrue: true}, nil
	}
	fc := force
	if fc == EngineFactorized {
		fc = EngineAuto
	}
	engines, err := in.planEngines(f, fc)
	if err != nil {
		return nil, err
	}
	a := in.assessComponents(f, engines)
	return &Plan{Engine: EngineFactorized, Masked: f.masked, Budget: a.budget, Components: a.plans}, nil
}

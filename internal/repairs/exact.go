package repairs

import (
	"fmt"
	"math/big"

	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file implements the brute-force exact counters. They are
// exponential in the number of (relevant) blocks — which is exactly what
// the paper's hardness results predict for the general case — and serve as
// ground truth for every other algorithm in the repository, including the
// factorized engine in delta.go that supersedes them on real workloads.

// ErrBudget is returned when an exact counter would exceed its work budget.
var ErrBudget = fmt.Errorf("repairs: exact count exceeds work budget")

// DefaultEnumBudget bounds the number of (partial) repairs an enumeration
// counter will evaluate.
const DefaultEnumBudget = 4_000_000

// CountEnumUCQ counts repairs entailing the UCQ by enumerating choices over
// the *relevant* blocks only — blocks whose predicate occurs in the query —
// and multiplying by the number of choices over irrelevant blocks. UCQ
// truth depends only on facts whose predicate occurs in the query, so the
// factoring is exact. budget ≤ 0 selects DefaultEnumBudget.
func (in *Instance) CountEnumUCQ(budget int) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountEnumUCQ needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	split := in.relevant()
	if !split.inner.IsInt64() || split.inner.Int64() > int64(budget) {
		return nil, ErrBudget
	}
	count := new(big.Int)
	one := big.NewInt(1)
	for facts := range relational.Repairs(split.rel) {
		idx := eval.NewIndex(facts)
		if eval.EvalUCQ(in.UCQ, idx) {
			count.Add(count, one)
		}
	}
	return count.Mul(count, split.outer), nil
}

// CountEnumFO counts repairs entailing an arbitrary FO query by exhaustive
// enumeration of rep(D,Σ), evaluating Q on each repair under active-domain
// semantics. budget ≤ 0 selects DefaultEnumBudget.
func (in *Instance) CountEnumFO(budget int) (*big.Int, error) {
	in.refresh()
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	total := in.TotalRepairs()
	if !total.IsInt64() || total.Int64() > int64(budget) {
		return nil, ErrBudget
	}
	count := new(big.Int)
	one := big.NewInt(1)
	for facts := range relational.Repairs(in.Blocks) {
		idx := eval.NewIndex(facts)
		if eval.EvalBoolean(in.Q, idx) {
			count.Add(count, one)
		}
	}
	return count, nil
}

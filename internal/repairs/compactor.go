package repairs

import (
	"fmt"
	"iter"
	"math/big"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Compactor builds the k-compactor M(Q,Σ) of Algorithm 2 for the instance:
// solution domains are the blocks B1,...,Bn in ≺(D,Σ) order, candidate
// certificates are (disjunct, homomorphism) pairs, and the compact step
// pins exactly the keyed blocks hit by the homomorphism's image. Its
// unfold equals #CQA(Q,Σ)(D), which is the membership half of Theorem 5.1:
// #CQA(Q,Σ) ∈ Λ[kw(Q,Σ)].
//
// The compactor's Member predicate decodes a tuple back into a repair and
// evaluates the UCQ on it — the cross-check that ⋃ unfoldings is exactly
// the set of repairs entailing Q.
func (in *Instance) Compactor() (*core.Compactor, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: the Algorithm 2 compactor needs an existential positive query, have %s", in.Q)
	}
	doms := in.Domains()
	// Decode table: element string -> fact.
	decode := make(map[core.Element]relational.Fact)
	for _, b := range in.Blocks {
		for _, f := range b.Facts {
			decode[core.Element(f.Canonical())] = f
		}
	}
	ucq := in.UCQ
	k := query.KeywidthUCQ(ucq, in.Keys)
	return &core.Compactor{
		Name: fmt.Sprintf("#CQA(%s)", in.Q),
		Doms: doms,
		K:    k,
		Certificates: func() iter.Seq[core.Certificate] {
			return func(yield func(core.Certificate) bool) {
				for c := range in.Certificates() {
					if !yield(c) {
						return
					}
				}
			}
		},
		Compact: func(c core.Certificate) (core.Selector, bool) {
			// Certificates() yields only valid certificates (the check step
			// is folded into the consistent-homomorphism enumeration), so
			// every candidate compacts successfully.
			return in.SelectorFor(c.(Certificate)), true
		},
		Member: func(tuple []core.Element) bool {
			facts := make([]relational.Fact, len(tuple))
			for i, e := range tuple {
				f, ok := decode[e]
				if !ok {
					panic(fmt.Sprintf("repairs: unknown element %q in tuple", e))
				}
				facts[i] = f
			}
			return eval.EvalUCQ(ucq, eval.NewIndex(facts))
		},
	}, nil
}

// CountCompactor computes #CQA through the Algorithm 2 compactor's exact
// unfold count — a third independent exact algorithm.
func (in *Instance) CountCompactor() (*big.Int, error) {
	c, err := in.Compactor()
	if err != nil {
		return nil, err
	}
	return c.CountExact()
}

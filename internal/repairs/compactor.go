package repairs

import (
	"fmt"
	"iter"
	"math/big"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
)

// Compactor builds the k-compactor M(Q,Σ) of Algorithm 2 for the instance:
// solution domains are the blocks B1,...,Bn in ≺(D,Σ) order, candidate
// certificates are (disjunct, homomorphism) pairs, and the compact step
// pins exactly the keyed blocks hit by the homomorphism's image. Its
// unfold equals #CQA(Q,Σ)(D), which is the membership half of Theorem 5.1:
// #CQA(Q,Σ) ∈ Λ[kw(Q,Σ)].
//
// The compactor's Member predicate decides whether the repair encoded by a
// tuple entails the UCQ — the cross-check that ⋃ unfoldings is exactly the
// set of repairs entailing Q. It runs a compiled homomorphism search over
// the instance's interned index, restricted to the facts the tuple chose,
// so no per-sample index is built and a sample costs roughly one small
// join. MemberFactory hands independent copies of the predicate to
// parallel samplers (the compiled matcher holds per-worker scratch state).
func (in *Instance) Compactor() (*core.Compactor, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: the Algorithm 2 compactor needs an existential positive query, have %s", in.Q)
	}
	doms := in.Domains()
	// Per fact ordinal of the instance index: the position of its block in
	// the domain sequence, and its element encoding within that domain.
	// "Fact chosen by tuple" is then one slot load and one string compare.
	nf := in.Idx.NumFacts()
	blockPos := make([]int32, nf)
	elemOf := make([]core.Element, nf)
	bi := in.blockIndex()
	for ord := 0; ord < nf; ord++ {
		if !in.Idx.Alive(int32(ord)) {
			continue // tombstoned: unreachable through the matcher
		}
		f := in.Idx.FactAt(ord)
		p, ok := bi.Find(in.Keys, f)
		if !ok {
			return nil, fmt.Errorf("repairs: fact %s outside every block", f)
		}
		blockPos[ord] = int32(p)
		elemOf[ord] = core.Element(f.Canonical())
	}
	ucq := in.UCQ
	idx := in.Idx
	memberFactory := func() func([]core.Element) bool {
		m := eval.NewUCQMatcher(ucq, idx)
		// The filter closure is hoisted out of the per-sample call and reads
		// the current tuple through cur, so a membership probe allocates
		// nothing.
		var cur []core.Element
		filter := func(ord int32) bool { return cur[blockPos[ord]] == elemOf[ord] }
		return func(tuple []core.Element) bool {
			cur = tuple
			return m.HasHomWhere(filter)
		}
	}
	k := query.KeywidthUCQ(ucq, in.Keys)
	return &core.Compactor{
		Name: fmt.Sprintf("#CQA(%s)", in.Q),
		Doms: doms,
		K:    k,
		Certificates: func() iter.Seq[core.Certificate] {
			return func(yield func(core.Certificate) bool) {
				for c := range in.Certificates() {
					if !yield(c) {
						return
					}
				}
			}
		},
		Compact: func(c core.Certificate) (core.Selector, bool) {
			// Certificates() yields only valid certificates (the check step
			// is folded into the consistent-homomorphism enumeration), so
			// every candidate compacts successfully.
			return in.SelectorFor(c.(Certificate)), true
		},
		Member:        memberFactory(),
		MemberFactory: memberFactory,
	}, nil
}

// CountCompactor computes #CQA through the Algorithm 2 compactor's exact
// unfold count — a third independent exact algorithm.
func (in *Instance) CountCompactor() (*big.Int, error) {
	c, err := in.Compactor()
	if err != nil {
		return nil, err
	}
	return c.CountExact()
}

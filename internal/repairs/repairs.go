// Package repairs implements the paper's central problem #CQA(Q,Σ):
// counting the repairs of a database D w.r.t. a set Σ of primary keys that
// entail a Boolean query Q. It provides:
//
//   - a planned exact-counting stack: a typed planner (plan.go) that
//     assigns each connected component of the query-interaction graph the
//     cheaper of Gray-code enumeration and component-local
//     inclusion–exclusion, over two independent ground-truth counters
//     (block enumeration with irrelevant-block factoring, and
//     inclusion–exclusion over the global certificate boxes), plus a
//     full-FO enumeration counter;
//   - the logspace decision procedure for #CQA>0(∃FO⁺) via Lemma 3.5;
//   - Algorithm 2: the k-compactor M(Q,Σ) placing #CQA(Q,Σ) in Λ[kw(Q,Σ)]
//     (Theorem 5.1 membership), which also plugs into the Section 6 FPRAS;
//   - a safe-plan polynomial-time counter for the tractable side of the
//     Maslowski–Wijsen dichotomy on self-join-free conjunctive queries;
//   - relative frequency (the motivation of §1.1).
package repairs

import (
	"fmt"
	"iter"
	"math/big"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Instance bundles one #CQA(Q,Σ) input: the fixed query and keys plus the
// input database, with derived structures (blocks, index) computed once.
//
// Instances are versioned and mutable: Apply threads single-fact inserts
// and deletes through the shared live substrate (database, maintained
// block sequence, evaluation index), and every counting entry point
// refreshes itself against the substrate version first — memoized and
// compiled structures (matchers, domains, the factorization layout) are
// flushed when stale, while the per-component enumeration memo survives
// deltas and is keyed structurally, so a recount after a delta
// re-enumerates only the connected components whose blocks changed.
// Several instances (e.g. counters for different queries over one loaded
// snapshot) may share one live substrate; a delta applied through any of
// them is visible to all on their next count.
type Instance struct {
	DB     *relational.Database
	Keys   *relational.KeySet
	Q      query.Formula
	Blocks []relational.Block
	Idx    *eval.Index

	// UCQ is the rewriting of Q when Q ∈ ∃FO⁺ (nil disjuncts slice is a
	// valid UCQ: false); IsEP records whether the rewriting applies.
	UCQ  query.UCQ
	IsEP bool

	// live is the shared mutable substrate; memoVer is the substrate
	// version the memos below were built against.
	live    *eval.LiveInstance
	memoVer uint64

	blockIdxMemo *relational.BlockIndex
	domsMemo     []core.Domain
	decisionMemo *eval.UCQMatcher
	relSplitMemo *relevantSplit
	factMemo     *factorization
	deltaMemo    *deltaScratch

	// compMemo caches per-component non-entailment counts of the box-path
	// engines across deltas, keyed by a structural fingerprint of the
	// component (chosen engine, sizes and box requirements): #¬Q_c is a
	// pure function of that structure, so untouched components of a
	// re-derived factorization hit the memo and skip their work entirely,
	// while forced-engine runs never serve each other's entries.
	compMemo map[compFP]*big.Int

	// circMemo caches compiled d-DNNF circuits (compile.go) across deltas,
	// keyed by circuitFingerprint — the box tables WITHOUT block sizes — so
	// a component whose blocks merely grew or shrank re-counts its cached
	// circuit in O(|circuit|) instead of re-enumerating. memoReuse counts
	// component results served from either structural memo: the planner's
	// observed-reuse signal for pricing cold compiles.
	circMemo  map[compFP]*circuit
	memoReuse int64
}

// NewInstance prepares an instance. Boolean queries only; substitute the
// tuple t̄ into a non-Boolean query first (the paper reduces to the Boolean
// case the same way).
func NewInstance(db *relational.Database, ks *relational.KeySet, q query.Formula) (*Instance, error) {
	return NewPreparedInstance(db, ks, q, nil, nil)
}

// NewPreparedInstance is NewInstance for callers that already hold the
// derived structures — the snapshot loader reconstructs the canonical
// block sequence and the evaluation index from mapped arenas, so
// recomputing them here would forfeit the zero-parse load. A nil blocks or
// idx is computed from db as usual; when given, blocks must be the
// canonical sequence ≺(D,Σ) of (db, ks) and idx must index exactly the
// facts of db.
func NewPreparedInstance(db *relational.Database, ks *relational.KeySet, q query.Formula, blocks []relational.Block, idx *eval.Index) (*Instance, error) {
	if blocks == nil {
		blocks = relational.Blocks(db, ks)
	}
	if idx == nil {
		idx = eval.IndexDatabase(db)
	}
	return NewLiveInstance(eval.NewLiveInstance(db, ks, relational.NewBlockSeq(blocks), idx), q)
}

// NewLiveInstance prepares an instance over an existing live substrate —
// the path counters over one loaded snapshot share: every counter built on
// the same LiveInstance sees deltas applied through any of them.
func NewLiveInstance(live *eval.LiveInstance, q query.Formula) (*Instance, error) {
	if fv := query.FreeVars(q); len(fv) > 0 {
		return nil, fmt.Errorf("repairs: query has free variables %v; substitute a tuple first", fv)
	}
	if err := live.Keys.Validate(live.DB.Schema()); err != nil {
		return nil, err
	}
	inst := &Instance{
		DB:      live.DB,
		Keys:    live.Keys,
		Q:       q,
		Blocks:  live.Blocks.Seq(),
		Idx:     live.Idx,
		live:    live,
		memoVer: live.Version(),
	}
	if query.IsExistentialPositive(q) {
		u, err := query.ToUCQ(q)
		if err != nil {
			return nil, err
		}
		// Minimization drops subsumed disjuncts, shrinking the certificate
		// space of Algorithm 2 without changing any count.
		inst.UCQ = eval.MinimizeUCQ(u)
		inst.IsEP = true
	}
	return inst, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(db *relational.Database, ks *relational.KeySet, q query.Formula) *Instance {
	inst, err := NewInstance(db, ks, q)
	if err != nil {
		panic(err)
	}
	return inst
}

// TotalRepairs returns |rep(D,Σ)| = ∏|B_i| (computable in FP, §1.1).
func (in *Instance) TotalRepairs() *big.Int {
	in.refresh()
	return relational.NumRepairsOfBlocks(in.Blocks)
}

// Keywidth returns kw(Q,Σ) for the instance's query (over the UCQ rewriting
// when it exists, else over the formula).
func (in *Instance) Keywidth() int {
	if in.IsEP {
		return query.KeywidthUCQ(in.UCQ, in.Keys)
	}
	return query.Keywidth(in.Q, in.Keys)
}

// CountExact computes #CQA(Q,Σ)(D) with the best available exact
// algorithm and reports which engine decided it. It consumes a planner
// report (plan.go): the safe plan and the Λ[1] closed form when they apply,
// else the planned factorized engine — per-component selection between the
// Gray-delta walk and component-local inclusion–exclusion, with the budget
// Σ_c min(2^{n_c}, IE_c) — falling back to whole-instance
// inclusion–exclusion and plain enumeration only when the planned budget is
// exceeded. Non-∃FO⁺ queries take full FO enumeration. ExplainPlan exposes
// the same report without counting.
func (in *Instance) CountExact() (*big.Int, EngineKind, error) {
	return in.CountExactWorkers(0)
}

// CountExactWorkers is CountExact with the worker count threaded through
// every engine that parallelizes — the planned factorized executor and the
// enumeration fallback. workers ≤ 0 selects GOMAXPROCS; the count is
// identical for every worker count.
func (in *Instance) CountExactWorkers(workers int) (*big.Int, EngineKind, error) {
	return in.CountExactStop(workers, nil)
}

// CountExactStop is CountExactWorkers with a cooperative stop flag
// threaded through every engine that enumerates — the Gray/masked
// walkers, the component-local and whole-instance IE passes and the
// enumeration fallback poll it at a coarse stride. When the flag fires
// mid-count the run fails with core.ErrStopped within a bounded number of
// states, freeing its workers; a nil stop never fires and the behavior is
// exactly CountExactWorkers. The serving layer uses this to enforce
// deadlines and client disconnects.
func (in *Instance) CountExactStop(workers int, stop *core.Stop) (*big.Int, EngineKind, error) {
	in.refresh()
	if !in.IsEP {
		n, err := in.CountEnumFO(0)
		return n, EngineEnumFO, err
	}
	if plan, n := in.prePlan(); plan != nil {
		return n, plan.Engine, nil
	}
	// The planned factorized engine derives the per-component assignment
	// and its Σ_c min(2^{n_c}, IE_c) budget internally — the same report
	// ExplainPlan exposes — so the costing pass runs once per count.
	n, err := in.countFactorized(0, workers, 0, EngineAuto, stop)
	if err == nil {
		return n, EngineFactorized, nil
	}
	if err == core.ErrStopped {
		return nil, EngineFactorized, err
	}
	// The planned budget was exceeded: whole-instance inclusion–exclusion
	// over the certificate boxes, then plain enumeration as the last
	// resort.
	if n, err := in.countIE(0, stop); err == nil {
		return n, EngineIE, nil
	} else if err == core.ErrStopped {
		return nil, EngineIE, err
	}
	n2, err := in.countEnumUCQParallel(0, workers, stop)
	return n2, EngineEnum, err
}

// EntailingRepairs iterates the repairs that entail Q, in the canonical
// block order, as fact slices (one fact per block, reused across
// iterations — copy to retain). It enumerates the full repair space and is
// meant for inspection of small instances; counting uses the dedicated
// algorithms.
func (in *Instance) EntailingRepairs() iter.Seq[[]relational.Fact] {
	return func(yield func([]relational.Fact) bool) {
		in.refresh()
		for facts := range relational.Repairs(in.Blocks) {
			idx := eval.NewIndex(facts)
			var holds bool
			if in.IsEP {
				holds = eval.EvalUCQ(in.UCQ, idx)
			} else {
				holds = eval.EvalBoolean(in.Q, idx)
			}
			if holds && !yield(facts) {
				return
			}
		}
	}
}

// RelativeFrequency returns #CQA / |rep| as an exact rational (the measure
// motivating the counting problem, §1.1). The boolean is false when the
// database has no repairs (impossible: every database has ≥ 1 repair).
func (in *Instance) RelativeFrequency() (*big.Rat, error) {
	n, _, err := in.CountExact()
	if err != nil {
		return nil, err
	}
	total := in.TotalRepairs()
	if total.Sign() == 0 {
		return nil, fmt.Errorf("repairs: database has no repairs")
	}
	return new(big.Rat).SetFrac(n, total), nil
}

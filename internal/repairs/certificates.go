package repairs

import (
	"fmt"
	"iter"
	"math/big"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file implements the small certificates of the guess-check-expand
// view of #CQA (paper §4.1): a certificate is a pair (Q', h) where Q' is a
// disjunct of the UCQ and h a homomorphism with h(Q') ⊆ D and h(Q') ⊨ Σ.
// Each certificate determines an ℓ-selector over the block sequence: block
// B_i is pinned to R(t̄) iff h(Q') ∩ B_i = {R(t̄)} and Σ has an R-key.

// Certificate is one (disjunct, homomorphism) witness.
type Certificate struct {
	Disjunct int
	H        eval.Binding
}

// Certificates enumerates all certificates of the instance in a
// deterministic order (disjunct order × homomorphism order). The binding in
// the yielded certificate is cloned and safe to retain.
func (in *Instance) Certificates() iter.Seq[Certificate] {
	return func(yield func(Certificate) bool) {
		in.refresh()
		if !in.IsEP {
			return
		}
		for qi, q := range in.UCQ.Disjuncts {
			for h := range eval.ConsistentHoms(q, in.Idx, in.Keys) {
				if !yield(Certificate{Disjunct: qi, H: h.Clone()}) {
					return
				}
			}
		}
	}
}

// BlockDomains renders the block sequence B1,...,Bn as core solution
// domains: domain i is block i, its elements the canonical fact encodings
// in block order.
func BlockDomains(blocks []relational.Block) []core.Domain {
	doms := make([]core.Domain, len(blocks))
	for i, b := range blocks {
		elems := make([]core.Element, len(b.Facts))
		for j, f := range b.Facts {
			elems[j] = core.Element(f.Canonical())
		}
		doms[i] = core.Domain{Name: b.Key.Canonical(), Elems: elems}
	}
	return doms
}

// Domains memoizes the block domains of the instance.
func (in *Instance) Domains() []core.Domain {
	in.refresh()
	if in.domsMemo == nil {
		in.domsMemo = BlockDomains(in.Blocks)
	}
	return in.domsMemo
}

// SelectorFor computes the ℓ-selector σ_(Q',h) over the block sequence for
// a certificate: the pairs (i, R(t̄)) with h(Q') ∩ B_i = {R(t̄)} and Σ
// having an R-key.
func (in *Instance) SelectorFor(c Certificate) core.Selector {
	blockIdx := in.blockIndex()
	q := in.UCQ.Disjuncts[c.Disjunct]
	img := eval.Image(q, c.H)
	var sel core.Selector
	seen := map[int]bool{}
	for _, f := range img {
		if !in.Keys.HasKey(f.Pred) {
			continue
		}
		i, ok := blockIdx.Find(in.Keys, f)
		if !ok {
			panic("repairs: certificate image fact outside every block")
		}
		if seen[i] {
			// h(Q') ⊨ Σ guarantees at most one fact per block, so a repeat
			// is necessarily the same fact.
			continue
		}
		seen[i] = true
		sel = append(sel, core.Pin{Index: i, Elem: core.Element(f.Canonical())})
	}
	s, err := core.NewSelector(in.Domains(), sel...)
	if err != nil {
		panic("repairs: certificate produced invalid selector: " + err.Error())
	}
	return s
}

// blockIndex memoizes the key-value → block-position index.
func (in *Instance) blockIndex() *relational.BlockIndex {
	in.refresh()
	if in.blockIdxMemo == nil {
		in.blockIdxMemo = relational.NewBlockIndex(in.Blocks)
	}
	return in.blockIdxMemo
}

// CertificateBoxes materializes the distinct boxes of all certificates.
func (in *Instance) CertificateBoxes() []core.Selector {
	var sels []core.Selector
	for c := range in.Certificates() {
		sels = append(sels, in.SelectorFor(c))
	}
	return core.SortSelectors(core.DedupeSelectors(sels))
}

// CountIE computes #CQA by inclusion–exclusion over the certificate boxes:
// the number of repairs entailing Q is |⋃_(Q',h) [B1..Bn]_σ(Q',h)| (§4.1).
func (in *Instance) CountIE(budget int) (*big.Int, error) {
	return in.countIE(budget, nil)
}

// countIE is CountIE with a cooperative stop flag polled inside the
// subset DFS.
func (in *Instance) countIE(budget int, stop *core.Stop) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountIE needs an existential positive query, have %s", in.Q)
	}
	return core.CountUnionIEStop(in.Domains(), in.CertificateBoxes(), budget, stop)
}

// CountLambda1 computes #CQA through the Λ[1] closed form (Theorem 4.4(1)
// made executable): for keywidth ≤ 1 every certificate box pins at most
// one block, and the union is |U| − ∏(|B_i| − #pinned facts of B_i),
// a linear-time product. It fails when some box pins several blocks.
func (in *Instance) CountLambda1() (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountLambda1 needs an existential positive query, have %s", in.Q)
	}
	return core.CountUnionOnePin(in.Domains(), in.CertificateBoxes())
}

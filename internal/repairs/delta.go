package repairs

import (
	"fmt"
	"math"
	"math/big"
	"runtime"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file implements the delta-maintained enumeration engines behind
// CountFactorized. Each component's choice space is walked in mixed-radix
// Gray-code order — consecutive repairs differ by exactly one fact swap —
// against the single shared instance index, so per-repair work is the delta
// update alone and the inner loop allocates nothing:
//
//   - box engine: every homomorphic image is a box of (block, choice)
//     requirements; a per-box miss counter tracks how many requirements the
//     current choice violates, and a swap only touches the boxes pinning
//     the swapped slots. The repair fails the query iff no box has zero
//     misses. O(boxes touching the two slots) per repair.
//   - mask engine (fallback when the boxes could not be materialized): the
//     swap flips two bits in an allowed-ordinal mask and the compiled
//     UCQMatcher is probed through it — one small indexed join per repair,
//     still no per-repair index construction.
//
// Components are independent, so their odometer spaces are split into
// prefix shards (the high digits are fixed per shard, the low digits
// Gray-enumerated); the planner (plan.go) decides per component whether to
// walk at all or to count by component-local inclusion–exclusion instead,
// and the heterogeneous jobs drain from an atomic work-stealing queue
// (parallel.go) into uint64 accumulators that spill to big.Int only on
// overflow and at the final merge.

// deltaScratch is the reusable per-worker state of both engines.
type deltaScratch struct {
	gray    relational.GrayOdometer
	cur     []int32
	miss    []int32
	mask    []uint64         // mask engine: mutable copy of the base mask
	matcher *eval.UCQMatcher // mask engine: per-worker compiled matcher
}

func (in *Instance) newDeltaScratch(f *factorization) *deltaScratch {
	sc := &deltaScratch{}
	maxDigits, maxBoxes := 0, 0
	for _, c := range f.comps {
		maxDigits = max(maxDigits, len(c.sizes))
		maxBoxes = max(maxBoxes, c.numBoxes)
	}
	sc.cur = make([]int32, maxDigits)
	sc.miss = make([]int32, maxBoxes)
	if f.masked {
		sc.mask = append([]uint64(nil), f.baseMask...)
		sc.matcher = eval.NewUCQMatcher(in.UCQ, in.Idx)
	}
	return sc
}

// shardPlan splits a component's odometer space into prefix shards: the
// highest prefixDigits digits are fixed per shard (shards = their product)
// and the rest are Gray-enumerated. The prefix grows until the component
// offers at least `target` shards or the per-shard suffix space would drop
// below minSuffixSpace (per-shard init costs O(boxes + digits); suffixes
// must stay large enough to amortize it).
const minSuffixSpace = 1024

func shardPlan(c *component, target int64) (prefixDigits int, shards int64) {
	shards = 1
	suffix := c.space
	for prefixDigits < len(c.sizes) && shards < target {
		s := int64(c.sizes[len(c.sizes)-1-prefixDigits])
		if suffix/s < minSuffixSpace {
			break
		}
		shards *= s
		suffix /= s
		prefixDigits++
	}
	return prefixDigits, shards
}

// decodeShard fixes the prefix digits of cur according to the shard id and
// zeroes the suffix digits.
func decodeShard(c *component, prefixDigits int, shard int64, cur []int32) {
	m := len(c.sizes)
	for d := 0; d < m-prefixDigits; d++ {
		cur[d] = 0
	}
	for d := m - prefixDigits; d < m; d++ {
		cur[d] = int32(shard % int64(c.sizes[d]))
		shard /= int64(c.sizes[d])
	}
}

// stopStride is how many Gray states a walker processes between polls of
// the cooperative stop flag: a power of two (the countdown reload), large
// enough that the rare atomic load vanishes against the delta update.
const stopStride = 1 << 13

// runBoxShard counts the non-entailing choices of one shard with the
// per-box miss counters, polling stop every stopStride states (a fired
// stop abandons the shard; the caller reports ErrStopped and discards the
// partial count). Allocation-free given warm scratch.
func runBoxShard(c *component, prefixDigits int, shard int64, sc *deltaScratch, stop *core.Stop) uint64 {
	m := len(c.sizes)
	cur := sc.cur[:m]
	decodeShard(c, prefixDigits, shard, cur)
	miss := sc.miss[:c.numBoxes]
	active := 0
	for b := 0; b < c.numBoxes; b++ {
		miss[b] = 0
		for r := c.boxOff[b]; r < c.boxOff[b+1]; r++ {
			if cur[c.reqDigit[r]] != c.reqChoice[r] {
				miss[b]++
			}
		}
		if miss[b] == 0 {
			active++
		}
	}
	var n uint64
	if active == 0 {
		n++
	}
	check := stopStride
	sc.gray.Reset(c.sizes[:m-prefixDigits])
	for {
		d, old, new, ok := sc.gray.Step()
		if !ok {
			return n
		}
		if check--; check == 0 {
			if stop.Stopped() {
				return n
			}
			check = stopStride
		}
		slot := c.slotOff[d]
		for _, b := range c.touch[slot+old] {
			if miss[b] == 0 {
				active--
			}
			miss[b]++
		}
		for _, b := range c.touch[slot+new] {
			miss[b]--
			if miss[b] == 0 {
				active++
			}
		}
		if active == 0 {
			n++
		}
	}
}

// runMaskShard counts the non-entailing choices of one shard by probing the
// compiled matcher through the allowed-ordinal mask, polling stop every
// stopStride states. sc.mask must equal the factorization's base mask on
// entry; the invariant is restored on return (including on early stop).
func runMaskShard(c *component, prefixDigits int, shard int64, sc *deltaScratch, stop *core.Stop) uint64 {
	m := len(c.sizes)
	cur := sc.cur[:m]
	decodeShard(c, prefixDigits, shard, cur)
	mask := sc.mask
	for d := 0; d < m; d++ {
		ord := c.ords[c.slotOff[d]+cur[d]]
		mask[ord/64] |= 1 << (uint(ord) % 64)
	}
	var n uint64
	if !sc.matcher.HasHomMasked(mask) {
		n++
	}
	check := stopStride
	sc.gray.Reset(c.sizes[:m-prefixDigits])
	for {
		d, old, new, ok := sc.gray.Step()
		if !ok {
			break
		}
		if check--; check == 0 {
			if stop.Stopped() {
				break
			}
			check = stopStride
		}
		ord := c.ords[c.slotOff[d]+old]
		mask[ord/64] &^= 1 << (uint(ord) % 64)
		ord = c.ords[c.slotOff[d]+new]
		mask[ord/64] |= 1 << (uint(ord) % 64)
		cur[d] = new
		if !sc.matcher.HasHomMasked(mask) {
			n++
		}
	}
	for d := 0; d < m; d++ {
		ord := c.ords[c.slotOff[d]+cur[d]]
		mask[ord/64] &^= 1 << (uint(ord) % 64)
	}
	return n
}

// CountFactorized counts repairs entailing the UCQ with the planned
// factorized engine, sequentially: blocks are partitioned into components
// of the query-interaction graph, the planner assigns each component the
// cheaper of the Gray-delta walk and component-local inclusion–exclusion
// (see plan.go), and the per-component non-entailment counts multiply. The
// budget bounds the planned work Σ_c min(2^{n_c}, IE_c), so instances
// whose full product space — or even a single component's space — is
// astronomically large stay countable as long as every component is cheap
// under one of its engines. budget ≤ 0 selects DefaultEnumBudget. The
// result is identical to CountEnumUCQ.
func (in *Instance) CountFactorized(budget int) (*big.Int, error) {
	return in.countFactorized(budget, 1, 0, EngineAuto, nil)
}

// CountFactorizedParallel is CountFactorized with the heterogeneous
// component jobs served to worker goroutines from a work-stealing queue.
// workers ≤ 0 selects GOMAXPROCS. The count is exact and independent of
// the worker count and scheduling.
func (in *Instance) CountFactorizedParallel(budget, workers int) (*big.Int, error) {
	return in.countFactorized(budget, workers, 0, EngineAuto, nil)
}

// CountGray is CountFactorizedParallel with every component forced onto the
// Gray-delta walk (the masked walk on the masked path) — the pre-planner
// behavior, kept as a comparable engine for tests, benchmarks and
// `repairctl count -exact=gray`.
func (in *Instance) CountGray(budget, workers int) (*big.Int, error) {
	return in.countFactorized(budget, workers, 0, EngineGray, nil)
}

// CountCompIE is CountFactorizedParallel with every component forced onto
// component-local inclusion–exclusion. It fails on the masked path (no box
// tables to include–exclude) and when some component's IE cost exceeds the
// budget.
func (in *Instance) CountCompIE(budget, workers int) (*big.Int, error) {
	return in.countFactorized(budget, workers, 0, EngineCompIE, nil)
}

// CountCompile is CountFactorizedParallel with every component forced onto
// the knowledge-compilation engine (compile.go): each component is compiled
// into a d-DNNF circuit — cached under its structural fingerprint, so
// repeated counts and post-delta recounts reuse it — and counted in one
// bottom-up pass. It fails on the masked path (no box tables to compile)
// and with ErrBudget when a compilation exceeds its node budget.
func (in *Instance) CountCompile(budget, workers int) (*big.Int, error) {
	return in.countFactorized(budget, workers, 0, EngineCompile, nil)
}

func (in *Instance) countFactorized(budget, workers, homBudget int, force EngineKind, stop *core.Stop) (*big.Int, error) {
	f, nonent, err := in.nonEntailment(budget, workers, homBudget, force, stop)
	if err != nil {
		return nil, err
	}
	count := new(big.Int).Sub(f.split.inner, nonent)
	return count.Mul(count, f.split.outer), nil
}

// nonEntailment is the shared core of the planned factorized counters: it
// plans and runs the per-component engines and returns the factorization
// together with Π_c #¬Q_c × untouched — the number of repairs of the
// relevant blocks that do NOT entail the query. An always-true instance
// (some homomorphic image survives every repair) reports zero without
// running any engine. countFactorized subtracts the result from the
// relevant choice space; CountNonEntailment exposes it as a shard partial.
func (in *Instance) nonEntailment(budget, workers, homBudget int, force EngineKind, stop *core.Stop) (*factorization, *big.Int, error) {
	if !in.IsEP {
		return nil, nil, fmt.Errorf("repairs: CountFactorized needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := in.factorization(homBudget)
	if f.alwaysTrue {
		return f, big.NewInt(0), nil
	}
	engines, err := in.planEngines(f, force)
	if err != nil {
		return nil, nil, err
	}
	// The shared costing pass (plan.go) consults the structural component
	// memo: a component whose (engine, structure) fingerprint was counted
	// before — typically every component untouched by the deltas since the
	// last count — reuses its #¬Q_c and is excluded from the job space, so
	// the cost of a recount is Σ min(2^{n_c}, IE_c) over the *changed*
	// components only. Only the box-path engines are memoized: a masked
	// component's count depends on facts outside the component
	// (homomorphisms may use always-present facts), so its structure alone
	// does not determine it.
	a := in.assessComponents(f, engines)
	if a.budget > int64(budget) {
		return nil, nil, ErrBudget
	}
	// Observed-reuse signal for the compile arbitration (plan.go): every
	// component count served from the structural memo — and every compiled
	// circuit reused — is evidence the workload recounts, which is what
	// makes a cold compile worth its price.
	for i := range f.comps {
		if a.known[i] != nil || (a.circs != nil && a.circs[i] != nil) {
			in.memoReuse++
		}
	}

	perComp, bigRes, newCircs, err := in.runPlanned(f, engines, a.known, a.circs, workers, homBudget, stop)
	if err != nil {
		return nil, nil, err
	}
	for _, circ := range newCircs {
		if circ != nil {
			in.storeCircuit(circ)
		}
	}

	nonent := new(big.Int).Set(f.untouched)
	for i := range f.comps {
		v := a.known[i]
		if v == nil {
			if bigRes[i] != nil {
				v = bigRes[i]
			} else {
				v = perComp[i].Big()
			}
			if a.fps != nil {
				if len(in.compMemo) > 1<<14 {
					in.compMemo = nil // bound the memo; it refills structurally
				}
				if in.compMemo == nil {
					in.compMemo = map[compFP]*big.Int{}
				}
				in.compMemo[a.fps[i]] = new(big.Int).Set(v)
			}
		}
		nonent.Mul(nonent, v)
	}
	return f, nonent, nil
}

// addSat adds non-negative int64s, saturating at MaxInt64.
func addSat(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

package repairs

import (
	"fmt"
	"math"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file implements the delta-maintained enumeration engines behind
// CountFactorized. Each component's choice space is walked in mixed-radix
// Gray-code order — consecutive repairs differ by exactly one fact swap —
// against the single shared instance index, so per-repair work is the delta
// update alone and the inner loop allocates nothing:
//
//   - box engine: every homomorphic image is a box of (block, choice)
//     requirements; a per-box miss counter tracks how many requirements the
//     current choice violates, and a swap only touches the boxes pinning
//     the swapped slots. The repair fails the query iff no box has zero
//     misses. O(boxes touching the two slots) per repair.
//   - mask engine (fallback when the boxes could not be materialized): the
//     swap flips two bits in an allowed-ordinal mask and the compiled
//     UCQMatcher is probed through it — one small indexed join per repair,
//     still no per-repair index construction.
//
// Components are independent, so their odometer spaces are split into
// prefix shards (the high digits are fixed per shard, the low digits
// Gray-enumerated) served from an atomic work-stealing queue; workers count
// into uint64 accumulators that spill to big.Int only on overflow and at
// the final merge.

// deltaScratch is the reusable per-worker state of both engines.
type deltaScratch struct {
	gray    relational.GrayOdometer
	cur     []int32
	miss    []int32
	mask    []uint64         // mask engine: mutable copy of the base mask
	matcher *eval.UCQMatcher // mask engine: per-worker compiled matcher
}

func (in *Instance) newDeltaScratch(f *factorization) *deltaScratch {
	sc := &deltaScratch{}
	maxDigits, maxBoxes := 0, 0
	for _, c := range f.comps {
		maxDigits = max(maxDigits, len(c.sizes))
		maxBoxes = max(maxBoxes, c.numBoxes)
	}
	sc.cur = make([]int32, maxDigits)
	sc.miss = make([]int32, maxBoxes)
	if f.masked {
		sc.mask = append([]uint64(nil), f.baseMask...)
		sc.matcher = eval.NewUCQMatcher(in.UCQ, in.Idx)
	}
	return sc
}

// shardPlan splits a component's odometer space into prefix shards: the
// highest prefixDigits digits are fixed per shard (shards = their product)
// and the rest are Gray-enumerated. The prefix grows until the component
// offers at least `target` shards or the per-shard suffix space would drop
// below minSuffixSpace (per-shard init costs O(boxes + digits); suffixes
// must stay large enough to amortize it).
const minSuffixSpace = 1024

func shardPlan(c *component, target int64) (prefixDigits int, shards int64) {
	shards = 1
	suffix := c.space
	for prefixDigits < len(c.sizes) && shards < target {
		s := int64(c.sizes[len(c.sizes)-1-prefixDigits])
		if suffix/s < minSuffixSpace {
			break
		}
		shards *= s
		suffix /= s
		prefixDigits++
	}
	return prefixDigits, shards
}

// decodeShard fixes the prefix digits of cur according to the shard id and
// zeroes the suffix digits.
func decodeShard(c *component, prefixDigits int, shard int64, cur []int32) {
	m := len(c.sizes)
	for d := 0; d < m-prefixDigits; d++ {
		cur[d] = 0
	}
	for d := m - prefixDigits; d < m; d++ {
		cur[d] = int32(shard % int64(c.sizes[d]))
		shard /= int64(c.sizes[d])
	}
}

// runBoxShard counts the non-entailing choices of one shard with the
// per-box miss counters. Allocation-free given warm scratch.
func runBoxShard(c *component, prefixDigits int, shard int64, sc *deltaScratch) uint64 {
	m := len(c.sizes)
	cur := sc.cur[:m]
	decodeShard(c, prefixDigits, shard, cur)
	miss := sc.miss[:c.numBoxes]
	active := 0
	for b := 0; b < c.numBoxes; b++ {
		miss[b] = 0
		for r := c.boxOff[b]; r < c.boxOff[b+1]; r++ {
			if cur[c.reqDigit[r]] != c.reqChoice[r] {
				miss[b]++
			}
		}
		if miss[b] == 0 {
			active++
		}
	}
	var n uint64
	if active == 0 {
		n++
	}
	sc.gray.Reset(c.sizes[:m-prefixDigits])
	for {
		d, old, new, ok := sc.gray.Step()
		if !ok {
			return n
		}
		slot := c.slotOff[d]
		for _, b := range c.touch[slot+old] {
			if miss[b] == 0 {
				active--
			}
			miss[b]++
		}
		for _, b := range c.touch[slot+new] {
			miss[b]--
			if miss[b] == 0 {
				active++
			}
		}
		if active == 0 {
			n++
		}
	}
}

// runMaskShard counts the non-entailing choices of one shard by probing the
// compiled matcher through the allowed-ordinal mask. sc.mask must equal the
// factorization's base mask on entry; the invariant is restored on return.
func runMaskShard(c *component, prefixDigits int, shard int64, sc *deltaScratch) uint64 {
	m := len(c.sizes)
	cur := sc.cur[:m]
	decodeShard(c, prefixDigits, shard, cur)
	mask := sc.mask
	for d := 0; d < m; d++ {
		ord := c.ords[c.slotOff[d]+cur[d]]
		mask[ord/64] |= 1 << (uint(ord) % 64)
	}
	var n uint64
	if !sc.matcher.HasHomMasked(mask) {
		n++
	}
	sc.gray.Reset(c.sizes[:m-prefixDigits])
	for {
		d, old, new, ok := sc.gray.Step()
		if !ok {
			break
		}
		ord := c.ords[c.slotOff[d]+old]
		mask[ord/64] &^= 1 << (uint(ord) % 64)
		ord = c.ords[c.slotOff[d]+new]
		mask[ord/64] |= 1 << (uint(ord) % 64)
		cur[d] = new
		if !sc.matcher.HasHomMasked(mask) {
			n++
		}
	}
	for d := 0; d < m; d++ {
		ord := c.ords[c.slotOff[d]+cur[d]]
		mask[ord/64] &^= 1 << (uint(ord) % 64)
	}
	return n
}

// CountFactorized counts repairs entailing the UCQ with the factorized
// engine, sequentially: blocks are partitioned into components of the
// query-interaction graph, each component's choices are enumerated once in
// Gray-code order with delta-maintained match state, and the non-entailment
// counts multiply. The budget bounds Σ_c Π|B_i| — the factorized work — so
// instances whose full product space is astronomically large stay countable
// as long as every component is small. budget ≤ 0 selects
// DefaultEnumBudget. The result is identical to CountEnumUCQ.
func (in *Instance) CountFactorized(budget int) (*big.Int, error) {
	return in.countFactorized(budget, 1, 0)
}

// CountFactorizedParallel is CountFactorized with the component shards
// served to worker goroutines from a work-stealing queue. workers ≤ 0
// selects GOMAXPROCS. The count is exact and independent of the worker
// count and scheduling.
func (in *Instance) CountFactorizedParallel(budget, workers int) (*big.Int, error) {
	return in.countFactorized(budget, workers, 0)
}

func (in *Instance) countFactorized(budget, workers, homBudget int) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountFactorized needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := in.factorization(homBudget)
	if f.alwaysTrue {
		return in.TotalRepairs(), nil
	}
	// Consult the structural component memo: a component whose fingerprint
	// was enumerated before — typically every component untouched by the
	// deltas since the last count — reuses its #¬Q_c and is excluded from
	// the job space, so the enumeration cost of a recount is Σ 2^{n_c} over
	// the *changed* components only. Only the box engine is memoized: a
	// masked component's count depends on facts outside the component
	// (homomorphisms may use always-present facts), so its structure alone
	// does not determine it.
	known := make([]*big.Int, len(f.comps))
	var fps []compFP
	if !f.masked {
		fps = make([]compFP, len(f.comps))
		for i := range f.comps {
			fps[i] = f.comps[i].fingerprint()
			if v, ok := in.compMemo[fps[i]]; ok {
				known[i] = v
			}
		}
	}
	work := int64(0)
	for i := range f.comps {
		if known[i] == nil {
			work = addSat(work, f.comps[i].space)
		}
	}
	if work > int64(budget) {
		return nil, ErrBudget
	}

	// Shard every still-unknown component against the worker-scaled target
	// and serve the flattened (component, shard) job space from one atomic
	// queue.
	plans := make([]struct {
		prefixDigits int
		shards       int64
	}, len(f.comps))
	jobOff := make([]int64, len(f.comps)+1)
	target := int64(4 * workers)
	for i := range f.comps {
		if known[i] != nil {
			jobOff[i+1] = jobOff[i]
			continue
		}
		p, s := shardPlan(&f.comps[i], target)
		plans[i] = struct {
			prefixDigits int
			shards       int64
		}{p, s}
		jobOff[i+1] = jobOff[i] + s
	}
	totalJobs := jobOff[len(f.comps)]

	perComp := make([]core.Accum, len(f.comps))
	runWorker := func(sc *deltaScratch, q *core.ShardQueue, acc []core.Accum) {
		for {
			job, ok := q.Next()
			if !ok {
				return
			}
			ci := sort.Search(len(f.comps), func(i int) bool { return jobOff[i+1] > int64(job) })
			shard := int64(job) - jobOff[ci]
			c := &f.comps[ci]
			var n uint64
			if f.masked {
				n = runMaskShard(c, plans[ci].prefixDigits, shard, sc)
			} else {
				n = runBoxShard(c, plans[ci].prefixDigits, shard, sc)
			}
			acc[ci].Add(n)
		}
	}

	queue := core.NewShardQueue(int(totalJobs))
	if workers == 1 || totalJobs <= 1 {
		// Inline on the caller's goroutine with instance-memoized scratch:
		// steady-state sequential counting allocates only the result words.
		// Scratch is sized for one factorization, so the memo serves only
		// the default (memoized) one; non-default factorizations get a
		// fresh scratch and leave the memo alone.
		var sc *deltaScratch
		if homBudget != 0 {
			sc = in.newDeltaScratch(f)
		} else {
			if in.deltaMemo == nil {
				in.deltaMemo = in.newDeltaScratch(f)
			}
			sc = in.deltaMemo
		}
		runWorker(sc, queue, perComp)
	} else {
		nw := workers
		if int64(nw) > totalJobs {
			nw = int(totalJobs)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := in.newDeltaScratch(f)
				local := make([]core.Accum, len(f.comps))
				runWorker(sc, queue, local)
				mu.Lock()
				for i := range perComp {
					perComp[i].Merge(&local[i])
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	}

	nonent := new(big.Int).Set(f.untouched)
	for i := range perComp {
		v := known[i]
		if v == nil {
			v = perComp[i].Big()
			if fps != nil {
				if len(in.compMemo) > 1<<14 {
					in.compMemo = nil // bound the memo; it refills structurally
				}
				if in.compMemo == nil {
					in.compMemo = map[compFP]*big.Int{}
				}
				in.compMemo[fps[i]] = new(big.Int).Set(v)
			}
		}
		nonent.Mul(nonent, v)
	}
	count := new(big.Int).Sub(f.split.inner, nonent)
	return count.Mul(count, f.split.outer), nil
}

// addSat adds non-negative int64s, saturating at MaxInt64.
func addSat(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

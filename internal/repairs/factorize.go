package repairs

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file builds the component factorization behind CountFactorized: the
// decomposition of the relevant conflict blocks into connected components
// of the query-interaction graph. A repair entails the UCQ iff some
// homomorphism of some disjunct lands inside it, and every homomorphic
// image lives inside one component, so the non-entailment predicate ¬Q
// factorizes over components:
//
//	#¬Q = Π_c #¬Q_c      and      #Q = Π_i |B_i| − Π_c #¬Q_c.
//
// The enumeration cost drops from Π_c 2^{n_c} (one odometer over every
// block) to Σ_c 2^{n_c} (one odometer per component) — the decomposition
// exploited by Calautti–Livshits–Pieris for practical exact counting.
//
// Two interaction graphs are available. The precise one connects the blocks
// co-occurring in the image of one Σ-consistent homomorphism (enumerated
// over the shared interned index); as a by-product every image becomes a
// "box": the set of (block, choice) pairs a repair must pick for that
// homomorphism to land inside it, which feeds the counter-based delta
// engine in delta.go. When the homomorphism space is too large to
// materialize, a coarser sound over-approximation is used instead — blocks
// whose predicates co-occur in one disjunct are connected — and the delta
// engine falls back to probing the compiled matcher through a mutable
// allowed-ordinal mask.

// relevantSplit classifies the canonical block sequence by query relevance:
// UCQ truth depends only on facts whose predicate occurs in the query, so
// counts over the irrelevant blocks factor out as Π|B_i|. Computed once per
// instance and shared by the exact, parallel and factorized counters.
type relevantSplit struct {
	rel, irr []relational.Block
	inner    *big.Int // Π sizes over rel
	outer    *big.Int // Π sizes over irr
}

// relevant memoizes the relevant/irrelevant block split. Valid only for
// existential positive instances (the UCQ rewriting names the predicates).
func (in *Instance) relevant() *relevantSplit {
	in.refresh()
	if in.relSplitMemo == nil {
		pred := map[string]bool{}
		for _, p := range in.UCQ.Predicates() {
			pred[p] = true
		}
		s := &relevantSplit{}
		for _, b := range in.Blocks {
			if pred[b.Key.Pred] {
				s.rel = append(s.rel, b)
			} else {
				s.irr = append(s.irr, b)
			}
		}
		s.inner = relational.NumRepairsOfBlocks(s.rel)
		s.outer = relational.NumRepairsOfBlocks(s.irr)
		in.relSplitMemo = s
	}
	return in.relSplitMemo
}

// defaultHomBudget caps how many Σ-consistent homomorphisms the box
// extraction will materialize before falling back to the masked engine.
const defaultHomBudget = 1 << 20

// component is one connected component of the block interaction graph,
// ready for delta enumeration. Digits index the component's conflicting
// blocks; digit d has radix sizes[d] and its choices own the slot range
// [slotOff[d], slotOff[d+1]).
type component struct {
	blocks  []int32 // member positions into factorization.conf, digit order
	sizes   []int32 // per-digit block size (every size ≥ 2)
	slotOff []int32 // digit → first slot; slot = slotOff[d] + choice
	ords    []int32 // slot → fact ordinal in the instance index
	space   int64   // Π sizes, saturated at MaxInt64

	// Box-engine tables (nil on the masked path): box b requires the
	// (digit, choice) pairs reqDigit/reqChoice[boxOff[b]:boxOff[b+1]], and
	// touch[slot] lists the boxes requiring that slot.
	numBoxes  int
	boxOff    []int32
	reqDigit  []int32
	reqChoice []int32
	touch     [][]int32
}

// factorization is the memoized component decomposition of one instance.
type factorization struct {
	split         *relevantSplit
	conf          []relational.Block // relevant blocks with ≥ 2 facts
	alwaysTrue    bool               // some homomorphism uses only always-present facts
	masked        bool               // hom budget exceeded: predicate-level components + matcher-mask engine
	comps         []component
	untouched     *big.Int // Π sizes of conflicting blocks in no box (they never affect Q)
	untouchedConf []int32  // conf positions of those box-free blocks
	baseMask      []uint64 // all facts allowed except those of conflicting relevant blocks
}

// factorization returns (building and memoizing on first use) the component
// decomposition. homBudget 0 selects defaultHomBudget (memoized); any other
// value bypasses the memo, and a negative value skips box extraction
// entirely, forcing the masked engine (used by tests).
func (in *Instance) factorization(homBudget int) *factorization {
	in.refresh()
	if homBudget != 0 {
		return newFactorization(in, homBudget)
	}
	if in.factMemo == nil {
		in.factMemo = newFactorization(in, defaultHomBudget)
	}
	return in.factMemo
}

func newFactorization(in *Instance, homBudget int) *factorization {
	f := &factorization{split: in.relevant(), untouched: big.NewInt(1)}
	for _, b := range f.split.rel {
		if b.Size() > 1 {
			f.conf = append(f.conf, b)
		}
	}
	// Map fact ordinals of conflicting relevant facts to (block, choice);
	// every other fact is present in every repair.
	nOrd := in.Idx.NumFacts()
	ordBlock := make([]int32, nOrd)
	ordChoice := make([]int32, nOrd)
	for i := range ordBlock {
		ordBlock[i] = -1
	}
	for ci, b := range f.conf {
		for j, fact := range b.Facts {
			ord, ok := in.Idx.OrdinalOf(fact)
			if !ok {
				panic(fmt.Sprintf("repairs: block fact %s missing from instance index", fact))
			}
			ordBlock[ord] = int32(ci)
			ordChoice[ord] = int32(j)
		}
	}
	f.baseMask = make([]uint64, (nOrd+63)/64)
	for i := range f.baseMask {
		f.baseMask[i] = ^uint64(0)
	}
	for ord, ci := range ordBlock {
		if ci >= 0 {
			f.baseMask[ord/64] &^= 1 << (uint(ord) % 64)
		}
	}

	// Extract one box per distinct Σ-consistent homomorphic image: the
	// (block, choice) pairs the image pins among the conflicting relevant
	// blocks. An image pinning nothing lies inside the always-present facts,
	// so every repair entails the query.
	type box struct {
		blocks  []int32 // global conflicting-block positions, ascending
		choices []int32
	}
	var boxes []box
	dedup := map[uint64][]int32{} // req hash → box ids
	var req [][2]int32
	homs := 0
	if homBudget < 0 {
		f.masked = true
	}
	for _, q := range in.UCQ.Disjuncts {
		if f.masked {
			break
		}
		for ords := range eval.ConsistentHomImageOrds(q, in.Idx, in.Keys) {
			homs++
			if homs > homBudget {
				f.masked = true
				break
			}
			req = req[:0]
			for _, ord := range ords {
				if ci := ordBlock[ord]; ci >= 0 {
					req = append(req, [2]int32{ci, ordChoice[ord]})
				}
			}
			if len(req) == 0 {
				f.alwaysTrue = true
				break
			}
			sort.Slice(req, func(i, j int) bool {
				if req[i][0] != req[j][0] {
					return req[i][0] < req[j][0]
				}
				return req[i][1] < req[j][1]
			})
			w := 1
			for i := 1; i < len(req); i++ {
				if req[i] != req[i-1] {
					req[w] = req[i]
					w++
				}
			}
			req = req[:w]
			h := uint64(14695981039346656037)
			for _, r := range req {
				h = (h ^ uint64(uint32(r[0]))) * 1099511628211
				h = (h ^ uint64(uint32(r[1]))) * 1099511628211
			}
			found := false
			for _, bi := range dedup[h] {
				if boxEqual(boxes[bi].blocks, boxes[bi].choices, req) {
					found = true
					break
				}
			}
			if !found {
				b := box{blocks: make([]int32, len(req)), choices: make([]int32, len(req))}
				for i, r := range req {
					b.blocks[i] = r[0]
					b.choices[i] = r[1]
				}
				dedup[h] = append(dedup[h], int32(len(boxes)))
				boxes = append(boxes, b)
			}
		}
		if f.alwaysTrue || f.masked {
			break
		}
	}
	if f.alwaysTrue {
		return f
	}

	if f.masked {
		// Coarse components: blocks whose predicates co-occur in a disjunct
		// interact. Sound because a homomorphism of one disjunct only uses
		// facts of that disjunct's predicates. First probe whether the
		// always-present facts alone entail the query (the masked analogue
		// of an empty box).
		if eval.NewUCQMatcher(in.UCQ, in.Idx).HasHomMasked(f.baseMask) {
			f.alwaysTrue = true
			return f
		}
		predID := map[string]int{}
		for _, b := range f.conf {
			if _, ok := predID[b.Key.Pred]; !ok {
				predID[b.Key.Pred] = len(predID)
			}
		}
		uf := relational.NewUnionFind(len(predID))
		for _, q := range in.UCQ.Disjuncts {
			first := -1
			for _, a := range q.Atoms {
				id, ok := predID[a.Pred]
				if !ok {
					continue
				}
				if first < 0 {
					first = id
				} else {
					uf.Union(first, id)
				}
			}
		}
		predComps := uf.Components()
		compOf := make([]int32, len(predID))
		for ci, preds := range predComps {
			for _, p := range preds {
				compOf[p] = int32(ci)
			}
		}
		groups := make([][]int32, len(predComps))
		for ci, b := range f.conf {
			g := compOf[predID[b.Key.Pred]]
			groups[g] = append(groups[g], int32(ci))
		}
		for _, g := range groups {
			f.comps = append(f.comps, f.buildComponent(in, g))
		}
		return f
	}

	// Precise components: union the blocks of every box, then lay each
	// component out with its boxes remapped to local digits. Blocks are
	// only ever unioned through boxes, so a box-free component is a single
	// block the query never inspects: its choices multiply directly into
	// the non-entailment product.
	uf := relational.NewUnionFind(len(f.conf))
	for _, b := range boxes {
		for _, ci := range b.blocks {
			uf.Union(int(b.blocks[0]), int(ci))
		}
	}
	members := uf.Components()
	blockComp := make([]int32, len(f.conf))
	for id, blocks := range members {
		for _, ci := range blocks {
			blockComp[ci] = int32(id)
		}
	}
	compBoxes := make([][]int32, len(members))
	for bi, b := range boxes {
		id := blockComp[b.blocks[0]]
		compBoxes[id] = append(compBoxes[id], int32(bi))
	}
	for id := range members {
		if len(compBoxes[id]) == 0 {
			for _, ci := range members[id] {
				f.untouched.Mul(f.untouched, big.NewInt(int64(f.conf[ci].Size())))
				f.untouchedConf = append(f.untouchedConf, ci)
			}
			continue
		}
		local := make(map[int32]int32, len(members[id])) // global block → digit
		for d, ci := range members[id] {
			local[ci] = int32(d)
		}
		c := f.buildComponent(in, members[id])
		c.numBoxes = len(compBoxes[id])
		c.boxOff = make([]int32, c.numBoxes+1)
		nReq := 0
		for _, bi := range compBoxes[id] {
			nReq += len(boxes[bi].blocks)
		}
		c.reqDigit = make([]int32, 0, nReq)
		c.reqChoice = make([]int32, 0, nReq)
		c.touch = make([][]int32, c.slotOff[len(c.sizes)])
		for k, bi := range compBoxes[id] {
			b := boxes[bi]
			for i := range b.blocks {
				d := local[b.blocks[i]]
				c.reqDigit = append(c.reqDigit, d)
				c.reqChoice = append(c.reqChoice, b.choices[i])
				slot := c.slotOff[d] + b.choices[i]
				c.touch[slot] = append(c.touch[slot], int32(k))
			}
			c.boxOff[k+1] = int32(len(c.reqDigit))
		}
		f.comps = append(f.comps, c)
	}
	return f
}

// buildComponent lays out the digits, slots and fact ordinals of one
// component over the given conflicting-block positions.
func (f *factorization) buildComponent(in *Instance, blocks []int32) component {
	c := component{
		blocks:  blocks,
		sizes:   make([]int32, len(blocks)),
		slotOff: make([]int32, len(blocks)+1),
		space:   1,
	}
	for d, ci := range blocks {
		c.sizes[d] = int32(f.conf[ci].Size())
		c.slotOff[d+1] = c.slotOff[d] + c.sizes[d]
		c.space = mulSat(c.space, int64(c.sizes[d]))
	}
	c.ords = make([]int32, c.slotOff[len(blocks)])
	for d, ci := range blocks {
		for j, fact := range f.conf[ci].Facts {
			ord, _ := in.Idx.OrdinalOf(fact)
			c.ords[c.slotOff[d]+int32(j)] = ord
		}
	}
	return c
}

// compFP is the structural fingerprint of a component: two independent
// FNV-1a streams over the engine kind, the digit radices and the box
// requirement tables. Both box-path engines' per-component non-entailment
// counts #¬Q_c are pure functions of that structure — the Gray walk counts
// choice vectors avoiding every box, component-local IE sums signed box
// intersections, and neither looks at fact identities — so equal
// fingerprints mean equal counts, across deltas and even across instances.
// The engine kind is mixed in so forced-engine runs (differential tests,
// the planned-IE-vs-forced-Gray benchmark gate) never serve each other's
// memo entries: a forced Gray walk must pay for its enumeration even when
// the planner's IE pass already knows the answer. 128 bits make an
// accidental collision on the handful of components per instance
// astronomically unlikely.
type compFP [2]uint64

func (c *component) fingerprint(engine EngineKind) compFP {
	const (
		off1  = uint64(14695981039346656037)
		off2  = uint64(0x9e3779b97f4a7c15)
		prime = uint64(1099511628211)
	)
	h1, h2 := off1^uint64(engine), off2^uint64(engine)
	mix := func(v uint64) {
		h1 = (h1 ^ v) * prime
		h2 = (h2 ^ (v + 0x9e3779b97f4a7c15)) * prime
	}
	cols := [][]int32{c.sizes, c.boxOff, c.reqDigit, c.reqChoice}
	for _, col := range cols {
		mix(uint64(len(col)))
		for _, v := range col {
			mix(uint64(uint32(v)))
		}
	}
	return compFP{h1, h2}
}

func boxEqual(blocks, choices []int32, req [][2]int32) bool {
	if len(blocks) != len(req) {
		return false
	}
	for i, r := range req {
		if blocks[i] != r[0] || choices[i] != r[1] {
			return false
		}
	}
	return true
}

// mulSat multiplies non-negative int64s, saturating at MaxInt64.
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

package repairs

import (
	"math/big"
	"math/rand/v2"
	"testing"

	"repaircount/internal/probdb"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

func mustFact(t *testing.T, src string) relational.Fact {
	t.Helper()
	f, err := relational.ParseFact(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// Differential suite for the knowledge-compilation engine: EngineCompile
// must be bit-identical to enumeration, the planner, the Gray walk and
// component-local IE on every instance it accepts — cold, warm, after
// randomized update streams (the circuit-reuse path), and across worker
// counts — and its weighted evaluation must bracket the exact
// repair-probability sums of internal/probdb.

func TestCompileDifferentialCorpus(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for ii, in := range randomInstances(t, seed) {
			want := bruteCount(in)
			for _, workers := range []int{1, 4} {
				got, err := in.CountCompile(0, workers)
				if err != nil {
					t.Fatalf("seed %d instance %d workers %d: CountCompile: %v", seed, ii, workers, err)
				}
				if got.Int64() != want {
					t.Fatalf("seed %d instance %d workers %d: CountCompile = %s, brute = %d", seed, ii, workers, got, want)
				}
			}
			// Warm path: the second count must serve the cached circuits and
			// still agree.
			again, err := in.CountCompile(0, 1)
			if err != nil {
				t.Fatalf("seed %d instance %d: warm CountCompile: %v", seed, ii, err)
			}
			if again.Int64() != want {
				t.Fatalf("seed %d instance %d: warm CountCompile = %s, brute = %d", seed, ii, again, want)
			}
		}
	}
}

func TestCompileStructuredWorkloads(t *testing.T) {
	cases := []struct {
		name string
		db   func() (*Instance, *big.Int)
	}{
		{"MultiComponent", func() (*Instance, *big.Int) {
			db, ks, q := workload.MultiComponent(3, 3, 3)
			in := MustInstance(db, ks, q)
			want, err := in.CountGray(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			return in, want
		}},
		{"IEHeavy", func() (*Instance, *big.Int) {
			db, ks, q := workload.IEHeavy(2, 10, 3)
			return MustInstance(db, ks, q), workload.IEHeavyCount(2, 10, 3)
		}},
		{"SkewedComponents", func() (*Instance, *big.Int) {
			db, ks, q := workload.SkewedComponents(4, 8, 1.2)
			return MustInstance(db, ks, q), workload.SkewedComponentsCount(4, 8, 1.2)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, want := tc.db()
			for _, workers := range []int{1, 4} {
				got, err := in.CountCompile(0, workers)
				if err != nil {
					t.Fatalf("workers %d: CountCompile: %v", workers, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("workers %d: CountCompile = %s, want %s", workers, got, want)
				}
			}
			// Forced component-IE corroborates where it fits its budget (the
			// skewed head component's 56 boxes legitimately price it out).
			if ie, err := in.CountCompIE(0, 1); err == nil {
				if ie.Cmp(want) != 0 {
					t.Fatalf("CountCompIE = %s, want %s", ie, want)
				}
			} else if err != ErrBudget {
				t.Fatalf("CountCompIE: %v", err)
			}
		})
	}
}

// IEHeavy at 40 blocks per component has a 2^40 choice space — the Gray
// walk is priced out — yet its circuit is tiny (the boxes AND-split into
// per-segment chains after block 0 is decided). The compile engine must
// count it exactly without tripping any budget: node budgets are enforced
// during compilation, never derived from the choice space a priori.
func TestCompileHugeSpaceTinyCircuit(t *testing.T) {
	db, ks, q := workload.IEHeavy(1, 40, 4)
	in := MustInstance(db, ks, q)
	got, err := in.CountCompile(0, 1)
	if err != nil {
		t.Fatalf("CountCompile: %v", err)
	}
	want := workload.IEHeavyCount(1, 40, 4)
	if got.Cmp(want) != 0 {
		t.Fatalf("CountCompile = %s, want %s", got, want)
	}
	plan, err := in.ExplainPlan(EngineCompile)
	if err != nil {
		t.Fatal(err)
	}
	for i, cp := range plan.Components {
		if cp.CircuitNodes == 0 {
			t.Fatalf("component %d: no cached circuit after CountCompile", i)
		}
		if cp.CircuitNodes > 4096 {
			t.Fatalf("component %d: circuit has %d nodes; expected a tiny circuit for the segment-chain structure", i, cp.CircuitNodes)
		}
		if cp.CompileCost != int64(cp.CircuitNodes) {
			t.Fatalf("component %d: cached CompileCost = %d, want node count %d", i, cp.CompileCost, cp.CircuitNodes)
		}
	}
}

// Post-delta recounts through cached circuits must stay bit-identical to a
// forced Gray recount across a randomized update stream, and size-only
// deltas (fresh-value conflict inserts) must actually reuse the cached
// circuit (same circuitFingerprint, no recompilation).
func TestCompileDeltaReuse(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 3, 3)
	in := MustInstance(db, ks, q)
	if _, err := in.CountCompile(0, 1); err != nil {
		t.Fatal(err)
	}
	circuits := len(in.circMemo)
	if circuits == 0 {
		t.Fatal("no circuits cached after CountCompile")
	}

	rng := rand.New(rand.NewPCG(42, 7))
	stream := workload.UpdateStream(rng, db, ks, 40, 0.7)
	for i, op := range stream {
		if _, err := in.Apply(Delta{Del: op.Del, Fact: op.Fact}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%5 != 4 {
			continue
		}
		got, err := in.CountCompile(0, 2)
		if err != nil {
			t.Fatalf("op %d: CountCompile: %v", i, err)
		}
		want, err := in.CountGray(0, 1)
		if err != nil {
			t.Fatalf("op %d: CountGray: %v", i, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("op %d: CountCompile = %s, CountGray = %s", i, got, want)
		}
	}
	if len(in.circMemo) < circuits {
		t.Fatalf("circuit cache shrank: %d -> %d", circuits, len(in.circMemo))
	}
}

// A fresh-value insert grows a block without touching the box tables: the
// component's circuitFingerprint must not move, so the cached circuit
// serves the recount; a value that joins the homomorphic images must move
// it.
func TestCircuitFingerprintSizeInvariance(t *testing.T) {
	db, ks, q := workload.MultiComponent(1, 3, 3)
	in := MustInstance(db, ks, q)
	f := in.factorization(0)
	if len(f.comps) != 1 {
		t.Fatalf("expected 1 component, got %d", len(f.comps))
	}
	before := f.comps[0].circuitFingerprint()

	if _, err := in.Apply(Insert(mustFact(t, "C0('k0', 'zz')"))); err != nil {
		t.Fatal(err)
	}
	f2 := in.factorization(0)
	if got := f2.comps[0].circuitFingerprint(); got != before {
		t.Fatalf("size-only delta moved the circuit fingerprint: %v -> %v", before, got)
	}
	// The count fingerprint (sizes included) must move: the counts differ.
	if f.comps[0].fingerprint(EngineCompile) == f2.comps[0].fingerprint(EngineCompile) {
		t.Fatal("size-only delta did not move the count fingerprint")
	}

	// Inserting a fact with value 'v0' under a fresh key adds a block and
	// new homomorphic images: the structure, and the fingerprint, change.
	if _, err := in.Apply(Insert(mustFact(t, "C0('q9', 'v0')")), Insert(mustFact(t, "C0('q9', 'zz')"))); err != nil {
		t.Fatal(err)
	}
	f3 := in.factorization(0)
	if got := f3.comps[0].circuitFingerprint(); got == before {
		t.Fatal("structural delta did not move the circuit fingerprint")
	}
}

// After the instance observes memo reuse, EngineAuto adopts compilation
// for changed components on its own: a recount following a delta both
// stays exact and leaves a compiled circuit behind.
func TestCompileAutoAdoption(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 3, 3)
	in := MustInstance(db, ks, q)
	for i := 0; i < 3; i++ {
		if _, _, err := in.CountExact(); err != nil {
			t.Fatal(err)
		}
	}
	if in.memoReuse < compileReuseThreshold {
		t.Fatalf("memoReuse = %d after repeated counts, want >= %d", in.memoReuse, compileReuseThreshold)
	}
	if _, err := in.Apply(Insert(mustFact(t, "C0('k0', 'fresh')"))); err != nil {
		t.Fatal(err)
	}
	got, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := in.CountGray(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("auto recount = %s, CountGray = %s", got, want)
	}
	if len(in.circMemo) == 0 {
		t.Fatal("auto planner did not compile the changed component despite observed reuse")
	}
}

// CountCompile must refuse the masked path (no box tables to compile).
func TestCompileMaskedUnavailable(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 2)
	in := MustInstance(db, ks, q)
	if _, err := in.countFactorized(0, 1, -1, EngineCompile, nil); err == nil {
		t.Fatal("forced compile on the masked path succeeded; want an error")
	}
}

// The weighted evaluation must bracket the exact ground truth: the
// interval from ProbabilityOf contains probdb's world-enumeration
// probability, and CountWeighted under all-ones weights contains #Q.
func TestWeightedAgainstProbDB(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		for ii, in := range randomInstances(t, seed) {
			// Dyadic weights (k/8) are exact in float64 AND as rationals, so
			// the two pipelines see literally the same numbers.
			rng := rand.New(rand.NewPCG(seed, 99))
			w := make([]float64, in.Idx.NumFacts())
			wr := map[string]*big.Rat{}
			for _, b := range in.Blocks {
				for _, f := range b.Facts {
					num := int64(1 + rng.IntN(8))
					ord, ok := in.Idx.OrdinalOf(f)
					if !ok {
						t.Fatalf("fact %s missing from index", f)
					}
					w[ord] = float64(num) / 8
					wr[f.Canonical()] = big.NewRat(num, 8)
				}
			}
			got, err := in.ProbabilityOf(w)
			if err != nil {
				t.Fatalf("seed %d instance %d: ProbabilityOf: %v", seed, ii, err)
			}
			pd, err := probdb.FromWeights(in.DB, in.Keys, wr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := pd.QueryProbability(in.Q)
			if err != nil {
				t.Fatalf("seed %d instance %d: QueryProbability: %v", seed, ii, err)
			}
			wantF, _ := want.Float64()
			const slack = 1e-12 // want.Float64 itself rounds once
			if wantF < got.Lo-slack || wantF > got.Hi+slack {
				t.Fatalf("seed %d instance %d: ProbabilityOf = %v does not bracket exact %v", seed, ii, got, wantF)
			}
			if got.Width() > 1e-9 {
				t.Fatalf("seed %d instance %d: interval too wide: %v", seed, ii, got)
			}

			// All-ones weights: the weighted count is the exact count.
			ones := make([]float64, in.Idx.NumFacts())
			for i := range ones {
				ones[i] = 1
			}
			wc, err := in.CountWeighted(ones)
			if err != nil {
				t.Fatalf("seed %d instance %d: CountWeighted: %v", seed, ii, err)
			}
			exact := float64(bruteCount(in))
			if !wc.Contains(exact) {
				t.Fatalf("seed %d instance %d: CountWeighted(1..1) = %v does not contain #Q = %g", seed, ii, wc, exact)
			}

			// Uniform probability = relative frequency.
			up, err := in.ProbabilityOf(ones)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := in.RelativeFrequency()
			if err != nil {
				t.Fatal(err)
			}
			rfF, _ := rf.Float64()
			if rfF < up.Lo-slack || rfF > up.Hi+slack {
				t.Fatalf("seed %d instance %d: uniform ProbabilityOf = %v vs relative frequency %v", seed, ii, up, rfF)
			}
		}
	}
}

// Weighted evaluation must survive deltas: the circuits recompile or
// reuse transparently and keep bracketing the ground truth.
func TestWeightedAfterDeltas(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 3)
	in := MustInstance(db, ks, q)
	step := func() {
		w := make([]float64, in.Idx.NumFacts())
		wr := map[string]*big.Rat{}
		for i := range w {
			num := int64(1 + i%4)
			w[i] = float64(num) / 4
		}
		for _, b := range in.Blocks {
			for _, f := range b.Facts {
				ord, _ := in.Idx.OrdinalOf(f)
				wr[f.Canonical()] = big.NewRat(int64(1+int(ord)%4), 4)
			}
		}
		got, err := in.ProbabilityOf(w)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := probdb.FromWeights(in.DB, in.Keys, wr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pd.QueryProbability(in.Q)
		if err != nil {
			t.Fatal(err)
		}
		wantF, _ := want.Float64()
		if wantF < got.Lo-1e-12 || wantF > got.Hi+1e-12 {
			t.Fatalf("ProbabilityOf = %v does not bracket exact %v", got, wantF)
		}
	}
	step()
	if _, err := in.Apply(Insert(mustFact(t, "C0('k0', 'w0')"))); err != nil {
		t.Fatal(err)
	}
	step()
	if _, err := in.Apply(Delete(mustFact(t, "C1('k1', 'v2')"))); err != nil {
		t.Fatal(err)
	}
	step()
}

func TestCompileEngineParsing(t *testing.T) {
	k, err := ParseEngine("compile")
	if err != nil {
		t.Fatal(err)
	}
	if k != EngineCompile {
		t.Fatalf("ParseEngine(compile) = %v", k)
	}
	if EngineCompile.String() != "compile" {
		t.Fatalf("EngineCompile.String() = %q", EngineCompile)
	}
	db := relational.MustDatabase(
		mustFact(t, "C0('k0', 'v0')"), mustFact(t, "C0('k0', 'v1')"))
	ks := relational.Keys(map[string]int{"C0": 1})
	plan, err := MustInstance(db, ks, mustQuery(t, "C0('k0', 'v0')")).ExplainPlan(EngineCompile)
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range plan.Components {
		if cp.Engine != EngineCompile {
			t.Fatalf("forced compile plan assigned %v", cp.Engine)
		}
	}
}

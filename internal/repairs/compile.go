package repairs

import (
	"fmt"
	"math/big"
	"math/bits"
	"sort"

	"repaircount/internal/core"
)

// This file implements the knowledge-compilation engine EngineCompile: each
// component of the query-interaction graph is compiled once into a smooth
// deterministic decomposable circuit (a decision-DNNF) over its block-choice
// variables, representing the non-entailment predicate ¬Q_c, and every
// count thereafter is one bottom-up pass over the circuit instead of a walk
// over the component's choice space — the compile-once/count-many trade of
// the Calautti–Livshits–Pieris exact counting line.
//
// # Circuit format
//
// Variables are the component's digits (conflict blocks); digit d ranges
// over the block's |B_d| choices. Nodes come in two kinds plus two
// sentinels (id 0 = ⊥, id 1 = ⊤):
//
//   - decision node on digit d: one child per CONSTRAINED choice (a choice
//     some box requirement pins) plus exactly one residual child shared by
//     every unconstrained choice — the choices no box distinguishes are
//     symmetric, so the circuit collapses them and the evaluator weighs the
//     residual child by |B_d| − #constrained. Children are exhaustive and
//     mutually exclusive over the digit's choices (a deterministic,
//     smooth-by-weighting decision node).
//   - AND node: the conjunction of digit-disjoint sub-circuits
//     (decomposable by construction — conjuncts never share a variable),
//     times a free factor: `free` lists digits no live box constrains below
//     this point, each contributing |B_d| models (weight Σ_j w_dj).
//
// The compiler decides digits recursively, tracking the state
// (undecided-digit set, live-box set): a box dies when a decided digit
// violates one of its requirements, completes (⊥ branch — the repair
// entails Q) when its last requirement is satisfied, and the state is
// memoized on exactly that pair, so shared suffixes across branches
// compile once. When the live boxes split into groups touching disjoint
// undecided digits, the compiler emits an AND of independently compiled
// groups (the box-interaction structure drives the decomposition). The
// digit decided next is the one the most live boxes constrain, which kills
// or completes boxes fastest and keeps the reachable state set small.
//
// Crucially the circuit never reads block SIZES — only the box tables
// (which requirement pins which digit to which choice index). Sizes enter
// at evaluation time, in the residual weights and free factors. A delta
// that grows or shrinks blocks without disturbing any requirement (the
// common update-stream case: inserted facts with fresh values join no
// homomorphic image) therefore leaves the circuit valid: the instance
// caches circuits under circuitFingerprint (box structure only, no sizes,
// no engine) and a post-delta recount of a changed component is one
// O(|circuit|) evaluation instead of an O(Π|B_d|) re-enumeration. The same
// circuit evaluates under per-fact probabilities (CountWeighted /
// ProbabilityOf): decision nodes sum weight×child products, AND nodes
// multiply, in outward-rounded float64 interval arithmetic — the
// subtraction-free evaluation d-DNNFs exist for.
//
// # Cost model
//
// Reachable states are bounded by the decided-choice prefixes (never more
// than the Gray walk) and every state materializes at least one node, so a
// cold compile is priced at min(grayCost, compileNodeBudget) — the node
// budget aborts anything larger, making the price a true work bound. What
// makes the engine win is amortization, which the planner observes rather
// than guesses:
//
//   - a component whose circuit is already cached is priced at the
//     circuit's node count (the true evaluation cost), which beats
//     Gray/IE whenever the circuit is small — so EngineAuto routes
//     recounts through cached circuits with no configuration;
//   - a cold compile is chosen by EngineAuto only once the instance has
//     observed memo reuse (memoReuse ≥ compileReuseThreshold counts served
//     from the structural memos), i.e. when the workload demonstrably
//     recounts, and never when it prices above the engine it displaces. A
//     compilation that defies the price hits compileNodeBudget, fails with
//     ErrBudget, and CountExact falls back down its usual ladder.

// compileNodeBudget caps the circuit size a single compilation may
// materialize (nodes are ~100 bytes; the cap bounds memory, and a
// component needing more nodes than this has no business being compiled).
const compileNodeBudget = 1 << 20

// compileReuseThreshold is how many memo-served component counts the
// instance must observe before EngineAuto considers a cold compile.
const compileReuseThreshold = 2

// Sentinel node ids: every circuit's nodes[0] is ⊥ (0 models) and nodes[1]
// is ⊤ (1 model); real nodes start at id 2 and children always precede
// parents, so node order is a topological order for bottom-up evaluation.
const (
	circFalse = int32(0)
	circTrue  = int32(1)
)

// circAnd marks an AND node in circNode.digit.
const circAnd = int32(-1)

// circNode is one circuit node. digit ≥ 0 is a decision node on that
// digit: kids holds one child per constrained choice (choices, ascending)
// plus the shared residual child last. digit == circAnd is an AND node:
// kids are digit-disjoint conjuncts and free lists the digits whose full
// choice range multiplies in as a free factor.
type circNode struct {
	digit   int32
	choices []int32
	kids    []int32
	free    []int32
}

// circuit is the compiled d-DNNF of one component's ¬Q_c.
type circuit struct {
	fp       compFP // circuitFingerprint the circuit was compiled from
	digits   int
	numBoxes int
	root     int32
	nodes    []circNode

	// stats for ExplainPlan / repairctl -explain
	decisions int
	ands      int
	states    int // distinct (undecided, live) states compiled
}

// circuitFingerprint hashes the component structure the circuit depends
// on: digit count and the box requirement tables — NOT the block sizes
// (evaluation inputs) and NOT an engine kind (circuits back every engine's
// weighted evaluation). Two FNV-1a streams as in compFP.
func (c *component) circuitFingerprint() compFP {
	const (
		off1  = uint64(14695981039346656037)
		off2  = uint64(0x9e3779b97f4a7c15)
		prime = uint64(1099511628211)
	)
	h1, h2 := off1^uint64(0xc1c), off2^uint64(0xc1c)
	mix := func(v uint64) {
		h1 = (h1 ^ v) * prime
		h2 = (h2 ^ (v + 0x9e3779b97f4a7c15)) * prime
	}
	mix(uint64(len(c.sizes)))
	cols := [][]int32{c.boxOff, c.reqDigit, c.reqChoice}
	for _, col := range cols {
		mix(uint64(len(col)))
		for _, v := range col {
			mix(uint64(uint32(v)))
		}
	}
	return compFP{h1, h2}
}

// circuitCompiler is the transient state of one compilation.
type circuitCompiler struct {
	c      *component
	stop   *core.Stop
	budget int

	uWords, bWords int
	nodes          []circNode
	memo           map[string]int32
	states         int
	keyBuf         []byte
}

func bitHas(s []uint64, i int32) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(s []uint64, i int32)      { s[i>>6] |= 1 << (uint(i) & 63) }

func bitEmpty(s []uint64) bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// compileComponent builds the component's circuit, failing with ErrBudget
// when the node budget is exceeded and core.ErrStopped on cancellation.
// Compilation is deterministic: the same box tables always yield the same
// circuit, node for node.
func compileComponent(c *component, nodeBudget int, stop *core.Stop) (*circuit, error) {
	m := len(c.sizes)
	if c.numBoxes == 0 {
		return nil, fmt.Errorf("repairs: circuit compilation needs materialized boxes (masked fallback has none)")
	}
	cc := &circuitCompiler{
		c:      c,
		stop:   stop,
		budget: nodeBudget,
		uWords: (m + 63) / 64,
		bWords: (c.numBoxes + 63) / 64,
		memo:   map[string]int32{},
		// ⊥ and ⊤ sentinels; evaluators special-case ids 0 and 1.
		nodes: []circNode{{digit: circAnd}, {digit: circAnd}},
	}
	// The root state: all boxes live, undecided = the digits some box
	// requires; box-free digits multiply in as a root free factor.
	u := make([]uint64, cc.uWords)
	b := make([]uint64, cc.bWords)
	for _, d := range c.reqDigit {
		bitSet(u, d)
	}
	for bx := 0; bx < c.numBoxes; bx++ {
		bitSet(b, int32(bx))
	}
	var rootFree []int32
	for d := int32(0); d < int32(m); d++ {
		if !bitHas(u, d) {
			rootFree = append(rootFree, d)
		}
	}
	root, err := cc.compileState(u, b)
	if err != nil {
		return nil, err
	}
	root, err = cc.wrap(root, rootFree)
	if err != nil {
		return nil, err
	}
	circ := &circuit{
		fp:       c.circuitFingerprint(),
		digits:   m,
		numBoxes: c.numBoxes,
		root:     root,
		nodes:    cc.nodes,
		states:   cc.states,
	}
	for _, n := range circ.nodes[2:] {
		if n.digit >= 0 {
			circ.decisions++
		} else {
			circ.ands++
		}
	}
	return circ, nil
}

func (cc *circuitCompiler) addNode(n circNode) (int32, error) {
	if len(cc.nodes) >= cc.budget {
		return 0, ErrBudget
	}
	cc.nodes = append(cc.nodes, n)
	return int32(len(cc.nodes) - 1), nil
}

// key encodes the (undecided, live) state for the memo.
func (cc *circuitCompiler) key(u, b []uint64) string {
	buf := cc.keyBuf[:0]
	for _, w := range u {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	for _, w := range b {
		buf = append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	cc.keyBuf = buf
	return string(buf)
}

// boxReqs returns box bx's requirement range.
func (cc *circuitCompiler) boxReqs(bx int32) (digits, choices []int32) {
	c := cc.c
	return c.reqDigit[c.boxOff[bx]:c.boxOff[bx+1]], c.reqChoice[c.boxOff[bx]:c.boxOff[bx+1]]
}

// wrap multiplies freed digits into a sub-circuit: an AND node carrying the
// free factor, elided when nothing was freed or the child is ⊥.
func (cc *circuitCompiler) wrap(sub int32, freed []int32) (int32, error) {
	if len(freed) == 0 || sub == circFalse {
		return sub, nil
	}
	n := circNode{digit: circAnd, free: freed}
	if sub != circTrue {
		n.kids = []int32{sub}
	}
	return cc.addNode(n)
}

// compileState compiles the sub-formula of the (undecided u, live b) state
// and returns its node id, memoizing on the state. Invariant: u is exactly
// the set of digits some live box requires.
func (cc *circuitCompiler) compileState(u, b []uint64) (int32, error) {
	if bitEmpty(b) {
		return circTrue, nil
	}
	key := cc.key(u, b)
	if id, ok := cc.memo[key]; ok {
		return id, nil
	}
	if cc.stop.Stopped() {
		return 0, core.ErrStopped
	}
	cc.states++

	live := cc.liveList(b)

	// AND-decomposition: boxes touching disjoint undecided digits are
	// independent sub-problems.
	groups := cc.splitGroups(u, live)
	var id int32
	var err error
	if len(groups) > 1 {
		kids := make([]int32, 0, len(groups))
		for _, g := range groups {
			gu := make([]uint64, cc.uWords)
			gb := make([]uint64, cc.bWords)
			for _, bx := range g {
				bitSet(gb, bx)
				digs, _ := cc.boxReqs(bx)
				for _, d := range digs {
					if bitHas(u, d) {
						bitSet(gu, d)
					}
				}
			}
			kid, kerr := cc.compileState(gu, gb)
			if kerr != nil {
				return 0, kerr
			}
			kids = append(kids, kid)
		}
		id, err = cc.addNode(circNode{digit: circAnd, kids: kids})
	} else {
		id, err = cc.decide(u, b, live)
	}
	if err != nil {
		return 0, err
	}
	// Re-derive the key: recursion reused keyBuf.
	cc.memo[cc.key(u, b)] = id
	return id, nil
}

// liveList lists the live box ids of b in ascending order.
func (cc *circuitCompiler) liveList(b []uint64) []int32 {
	var live []int32
	for w, word := range b {
		for word != 0 {
			bit := word & (-word)
			live = append(live, int32(w<<6)+int32(bits.TrailingZeros64(bit)))
			word &^= bit
		}
	}
	return live
}

// splitGroups partitions the live boxes into groups connected through
// shared undecided digits (union-find over the live list).
func (cc *circuitCompiler) splitGroups(u []uint64, live []int32) [][]int32 {
	parent := make([]int, len(live))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	digOwner := make(map[int32]int, len(live))
	for i, bx := range live {
		digs, _ := cc.boxReqs(bx)
		for _, d := range digs {
			if !bitHas(u, d) {
				continue
			}
			if o, ok := digOwner[d]; ok {
				ri, ro := find(i), find(o)
				if ri != ro {
					parent[ri] = ro
				}
			} else {
				digOwner[d] = i
			}
		}
	}
	groupOf := map[int]int{}
	var groups [][]int32
	for i, bx := range live {
		r := find(i)
		gi, ok := groupOf[r]
		if !ok {
			gi = len(groups)
			groupOf[r] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], bx)
	}
	return groups
}

// decide emits the decision node of a connected state: the digit the most
// live boxes constrain is decided, with one child per constrained choice
// plus the shared residual child.
func (cc *circuitCompiler) decide(u, b []uint64, live []int32) (int32, error) {
	// Pick the most-constrained digit (ties: lowest index).
	count := map[int32]int{}
	for _, bx := range live {
		digs, _ := cc.boxReqs(bx)
		for _, d := range digs {
			if bitHas(u, d) {
				count[d]++
			}
		}
	}
	best, bestN := int32(-1), 0
	for d, n := range count {
		if n > bestN || (n == bestN && (best < 0 || d < best)) {
			best, bestN = d, n
		}
	}
	d := best

	// Constrained choices of d among the live boxes.
	chSet := map[int32]bool{}
	for _, bx := range live {
		digs, chs := cc.boxReqs(bx)
		for i, bd := range digs {
			if bd == d {
				chSet[chs[i]] = true
			}
		}
	}
	choices := make([]int32, 0, len(chSet))
	for j := range chSet {
		choices = append(choices, j)
	}
	sort.Slice(choices, func(i, j int) bool { return choices[i] < choices[j] })

	kids := make([]int32, 0, len(choices)+1)
	for _, j := range choices {
		kid, err := cc.child(u, live, d, j, false)
		if err != nil {
			return 0, err
		}
		kids = append(kids, kid)
	}
	resid, err := cc.child(u, live, d, -1, true)
	if err != nil {
		return 0, err
	}
	kids = append(kids, resid)
	return cc.addNode(circNode{digit: d, choices: choices, kids: kids})
}

// child compiles the successor state after deciding digit d to constrained
// choice j (residual=false) or to any unconstrained choice (residual=true):
// boxes requiring another choice of d die, a box whose last undecided
// requirement was (d, j) completes the branch to ⊥, and digits no surviving
// box requires are freed as a multiplier on the edge.
func (cc *circuitCompiler) child(u []uint64, live []int32, d, j int32, residual bool) (int32, error) {
	nb := make([]uint64, cc.bWords)
	survivors := false
	for _, bx := range live {
		digs, chs := cc.boxReqs(bx)
		onD := int32(-1)
		for i, bd := range digs {
			if bd == d {
				onD = chs[i]
				break
			}
		}
		if onD >= 0 {
			if residual || onD != j {
				continue // requirement violated: the box dies
			}
			// Requirement satisfied; does the box still pin an undecided digit?
			remaining := false
			for _, bd := range digs {
				if bd != d && bitHas(u, bd) {
					remaining = true
					break
				}
			}
			if !remaining {
				// The box is fully satisfied: every repair of this branch
				// entails the query, so it contributes nothing to ¬Q_c.
				return circFalse, nil
			}
		}
		bitSet(nb, bx)
		survivors = true
	}
	if !survivors {
		// All boxes died: the rest of the digits are free.
		var freed []int32
		for dd := int32(0); dd < int32(len(cc.c.sizes)); dd++ {
			if dd != d && bitHas(u, dd) {
				freed = append(freed, dd)
			}
		}
		return cc.wrap(circTrue, freed)
	}
	nu := make([]uint64, cc.uWords)
	for w, word := range nb {
		for word != 0 {
			bit := word & (-word)
			bx := int32(w<<6) + int32(bits.TrailingZeros64(bit))
			word &^= bit
			digs, _ := cc.boxReqs(bx)
			for _, bd := range digs {
				if bd != d && bitHas(u, bd) {
					bitSet(nu, bd)
				}
			}
		}
	}
	var freed []int32
	for dd := int32(0); dd < int32(len(cc.c.sizes)); dd++ {
		if dd != d && bitHas(u, dd) && !bitHas(nu, dd) {
			freed = append(freed, dd)
		}
	}
	sub, err := cc.compileState(nu, nb)
	if err != nil {
		return 0, err
	}
	return cc.wrap(sub, freed)
}

// count evaluates #¬Q_c bottom-up under the component's CURRENT block
// sizes — the circuit is size-independent, so any component with the same
// circuitFingerprint (same box tables, possibly resized blocks) evaluates
// against the same circuit in O(|circuit|) big-int operations.
func (ci *circuit) count(c *component) *big.Int {
	arena := core.GetBigArena()
	defer core.PutBigArena(arena)
	vals := arena.Vals(len(ci.nodes))
	vals[circTrue].SetInt64(1)
	var tmp big.Int
	for id := 2; id < len(ci.nodes); id++ {
		n := &ci.nodes[id]
		v := &vals[id]
		if n.digit >= 0 {
			v.SetInt64(0)
			for _, k := range n.kids[:len(n.kids)-1] {
				v.Add(v, &vals[k])
			}
			if resid := int64(c.sizes[n.digit]) - int64(len(n.choices)); resid > 0 {
				tmp.SetInt64(resid)
				tmp.Mul(&tmp, &vals[n.kids[len(n.kids)-1]])
				v.Add(v, &tmp)
			}
		} else {
			v.SetInt64(1)
			for _, k := range n.kids {
				v.Mul(v, &vals[k])
			}
			for _, d := range n.free {
				tmp.SetInt64(int64(c.sizes[d]))
				v.Mul(v, &tmp)
			}
		}
	}
	return new(big.Int).Set(&vals[ci.root])
}

// weighted evaluates the circuit under per-slot weights (slot =
// c.slotOff[d] + choice) in outward-rounded interval arithmetic. The
// result is the weighted model count of ¬Q_c: Σ over non-entailing choice
// vectors of Π_d w[slot(d, vector_d)]. Subtraction-free by construction.
func (ci *circuit) weighted(c *component, w []core.Interval) core.Interval {
	vals := make([]core.Interval, len(ci.nodes))
	vals[circTrue] = core.ExactInterval(1)
	for id := 2; id < len(ci.nodes); id++ {
		n := &ci.nodes[id]
		if n.digit >= 0 {
			d := n.digit
			v := core.ExactInterval(0)
			for i, j := range n.choices {
				v = v.Add(w[c.slotOff[d]+j].Mul(vals[n.kids[i]]))
			}
			// The residual child covers every unconstrained choice: weigh it
			// by their summed weight (the unweighted |B_d| − #constrained).
			residW := core.ExactInterval(0)
			ptr := 0
			for j := int32(0); j < c.sizes[d]; j++ {
				if ptr < len(n.choices) && n.choices[ptr] == j {
					ptr++
					continue
				}
				residW = residW.Add(w[c.slotOff[d]+j])
			}
			vals[id] = v.Add(residW.Mul(vals[n.kids[len(n.kids)-1]]))
		} else {
			v := core.ExactInterval(1)
			for _, k := range n.kids {
				v = v.Mul(vals[k])
			}
			for _, d := range n.free {
				s := core.ExactInterval(0)
				for j := int32(0); j < c.sizes[d]; j++ {
					s = s.Add(w[c.slotOff[d]+j])
				}
				v = v.Mul(s)
			}
			vals[id] = v
		}
	}
	return vals[ci.root]
}

// storeCircuit caches a compiled circuit under its structural fingerprint,
// bounding the cache like the count memo.
func (in *Instance) storeCircuit(circ *circuit) {
	if len(in.circMemo) > 1<<10 {
		in.circMemo = nil // bound the cache; it refills structurally
	}
	if in.circMemo == nil {
		in.circMemo = map[compFP]*circuit{}
	}
	in.circMemo[circ.fp] = circ
}

// circuitFor returns the component's circuit, compiling and caching on
// first use. Sequential-path helper (the parallel executor compiles in its
// workers and publishes through runPlanned's barrier instead).
func (in *Instance) circuitFor(c *component, stop *core.Stop) (*circuit, error) {
	if circ, ok := in.circMemo[c.circuitFingerprint()]; ok {
		in.memoReuse++
		return circ, nil
	}
	circ, err := compileComponent(c, compileNodeBudget, stop)
	if err != nil {
		return nil, err
	}
	in.storeCircuit(circ)
	return circ, nil
}

// weightedFactors evaluates one component under per-fact weights: the
// weighted non-entailment count and the component's weighted choice space
// Π_d (Σ_j w_dj).
func (in *Instance) weightedFactors(c *component, w []float64, stop *core.Stop) (nonent, space core.Interval, err error) {
	circ, err := in.circuitFor(c, stop)
	if err != nil {
		return core.Interval{}, core.Interval{}, err
	}
	slotW := make([]core.Interval, len(c.ords))
	for s, ord := range c.ords {
		slotW[s] = core.ExactInterval(w[ord])
	}
	space = core.ExactInterval(1)
	for d := range c.sizes {
		sum := core.ExactInterval(0)
		for s := c.slotOff[d]; s < c.slotOff[d+1]; s++ {
			sum = sum.Add(slotW[s])
		}
		space = space.Mul(sum)
	}
	return circ.weighted(c, slotW), space, nil
}

// checkWeights validates a per-fact weight vector against the instance.
func (in *Instance) checkWeights(w []float64) error {
	if len(w) != in.Idx.NumFacts() {
		return fmt.Errorf("repairs: weight vector has %d entries, instance has %d facts", len(w), in.Idx.NumFacts())
	}
	for i, x := range w {
		if !(x >= 0) { // also rejects NaN
			return fmt.Errorf("repairs: fact %d has invalid weight %v (want ≥ 0)", i, x)
		}
	}
	return nil
}

// ProbabilityOf computes the probability that a random repair entails the
// query when every block independently picks one of its facts with odds
// proportional to the per-fact weights w (indexed by fact ordinal; a
// uniform vector recovers #Q/|rep|, the relative frequency of §1.1 — and
// the disjoint-independent probabilistic-database semantics of
// internal/probdb with zero residual mass). The result is an outward-
// rounded interval guaranteed to contain the exact probability:
//
//	P(Q) = 1 − Π_c ( W¬_c / Π_d Σ_j w_dj ),
//
// every W¬_c one subtraction-free evaluation of the component's compiled
// circuit. Blocks outside every component (irrelevant, non-conflicting, or
// untouched by any box) cancel from the ratio exactly. Circuits are cached
// across calls and deltas (circuitFingerprint), so repeated probability
// probes are circuit-linear. Requires the box path (existential positive
// query, materialized boxes).
func (in *Instance) ProbabilityOf(w []float64) (core.Interval, error) {
	in.refresh()
	if !in.IsEP {
		return core.Interval{}, fmt.Errorf("repairs: ProbabilityOf needs an existential positive query, have %s", in.Q)
	}
	if err := in.checkWeights(w); err != nil {
		return core.Interval{}, err
	}
	f := in.factorization(0)
	if f.alwaysTrue {
		return core.ExactInterval(1), nil
	}
	if f.masked {
		return core.Interval{}, fmt.Errorf("repairs: ProbabilityOf unavailable: homomorphism space exceeded the box budget (masked fallback)")
	}
	ratio := core.ExactInterval(1)
	for i := range f.comps {
		nonent, space, err := in.weightedFactors(&f.comps[i], w, nil)
		if err != nil {
			return core.Interval{}, err
		}
		q, err := nonent.Div(space)
		if err != nil {
			return core.Interval{}, fmt.Errorf("repairs: component %d has zero total weight: %w", i, err)
		}
		ratio = ratio.Mul(q)
	}
	return core.ExactInterval(1).Sub(ratio).Clamp(0, 1), nil
}

// CountWeighted computes the weighted model count of the entailing
// repairs: Σ over repairs r entailing Q of Π_{fact ∈ r} w[fact], the
// unnormalized form of ProbabilityOf (uniform weight 1 everywhere recovers
// the exact count #Q as an interval). Same engine, same requirements.
func (in *Instance) CountWeighted(w []float64) (core.Interval, error) {
	in.refresh()
	if !in.IsEP {
		return core.Interval{}, fmt.Errorf("repairs: CountWeighted needs an existential positive query, have %s", in.Q)
	}
	if err := in.checkWeights(w); err != nil {
		return core.Interval{}, err
	}
	f := in.factorization(0)
	if f.masked {
		return core.Interval{}, fmt.Errorf("repairs: CountWeighted unavailable: homomorphism space exceeded the box budget (masked fallback)")
	}
	// outer = Π Σ-weights over every block NOT inside a component; the
	// component blocks contribute Π_c space_c − Π_c W¬_c.
	member := map[string]bool{}
	for i := range f.comps {
		for _, ci := range f.comps[i].blocks {
			member[f.conf[ci].Key.Canonical()] = true
		}
	}
	outer := core.ExactInterval(1)
	for _, b := range in.Blocks {
		if member[b.Key.Canonical()] {
			continue
		}
		sum := core.ExactInterval(0)
		for _, fact := range b.Facts {
			ord, ok := in.Idx.OrdinalOf(fact)
			if !ok {
				return core.Interval{}, fmt.Errorf("repairs: block fact %s missing from instance index", fact)
			}
			sum = sum.Add(core.ExactInterval(w[ord]))
		}
		outer = outer.Mul(sum)
	}
	spaces := core.ExactInterval(1)
	nonents := core.ExactInterval(1)
	for i := range f.comps {
		nonent, space, err := in.weightedFactors(&f.comps[i], w, nil)
		if err != nil {
			return core.Interval{}, err
		}
		spaces = spaces.Mul(space)
		nonents = nonents.Mul(nonent)
	}
	if f.alwaysTrue {
		nonents = core.ExactInterval(0)
	}
	total := spaces.Sub(nonents)
	if total.Lo < 0 {
		total.Lo = 0
	}
	return outer.Mul(total), nil
}

package repairs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/big"
	"sort"
)

// This file derives instance-level structural fingerprints from the
// factorization and the planner report, for serving layers that want to
// recognize "the same counting problem" across different query texts
// (result sharing in the probe cache) and "the same plan" across instance
// versions (admission re-pricing). Both are one-way soundness contracts:
// equal fingerprints imply equal counts (respectively equal plans); unequal
// fingerprints imply nothing, so a consumer that misses merely recomputes.

// writeBig mixes a big.Int into the hash, length-prefixed so adjacent
// values cannot alias.
func writeBig(h interface{ Write([]byte) (int, error) }, x *big.Int) {
	b := x.Bytes()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	h.Write(n[:])
	h.Write(b)
}

// writeU64 mixes one machine word into the hash.
func writeU64(h interface{ Write([]byte) (int, error) }, v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	h.Write(n[:])
}

// CountFingerprint returns a digest that determines the exact count: two
// instances (even built from different query texts, or the same query at
// different versions) with equal fingerprints have equal #CQA values. It
// digests everything the factorized assembly
//
//	#Q = outer × (inner − Π_c #¬Q_c × untouched)
//
// consumes: the relevant/irrelevant space split, the untouched-block
// factor, the always-true flag, and every component's structural
// fingerprint (sizes and box tables — the exact inputs the per-component
// engines count from, independent of fact identities). Component
// fingerprints are sorted before mixing, so two factorizations that
// enumerate the same components in different orders still agree.
//
// ok is false when no sound structure-only fingerprint exists: non-∃FO⁺
// queries, and the masked fallback (a masked component's count depends on
// facts outside the component, so its structure alone does not determine
// it — the same reason the structural memo skips it).
func (in *Instance) CountFingerprint() (fp string, ok bool) {
	in.refresh()
	if !in.IsEP {
		return "", false
	}
	f := in.factorization(0)
	if f.masked {
		return "", false
	}
	h := fnv.New128a()
	writeBig(h, f.split.inner)
	writeBig(h, f.split.outer)
	writeBig(h, f.untouched)
	if f.alwaysTrue {
		writeU64(h, 1)
		return fmt.Sprintf("c%x", h.Sum(nil)), true
	}
	writeU64(h, 0)
	fps := make([]compFP, len(f.comps))
	for i := range f.comps {
		// EngineAuto is a neutral salt here: no concrete engine ever keys
		// the memo with it, and #¬Q_c does not depend on which engine
		// counts it.
		fps[i] = f.comps[i].fingerprint(EngineAuto)
	}
	sort.Slice(fps, func(i, j int) bool {
		if fps[i][0] != fps[j][0] {
			return fps[i][0] < fps[j][0]
		}
		return fps[i][1] < fps[j][1]
	})
	for _, c := range fps {
		writeU64(h, c[0])
		writeU64(h, c[1])
	}
	return fmt.Sprintf("c%x", h.Sum(nil)), true
}

// PlanFingerprint returns a digest of the EngineAuto planner report — the
// overall engine, the flags, the budget, and every component's costs and
// assignment. Equal fingerprints mean the planner would hand a serving
// layer the identical ExplainPlan report, so anything priced purely from
// that report (the exact admission rung: AlwaysTrue or Budget against the
// exact budget) is reusable across instance versions without re-planning.
// The approximate rung is NOT covered: its Theorem 6.2 sample bound
// depends on the active domain, which this fingerprint deliberately does
// not digest — consumers must re-price non-exact admissions.
//
// ok is false for non-∃FO⁺ queries, whose single-rung admission is priced
// from the repair total rather than a plan.
func (in *Instance) PlanFingerprint() (fp string, ok bool) {
	in.refresh()
	if !in.IsEP {
		return "", false
	}
	p, err := in.ExplainPlan(EngineAuto)
	if err != nil || p == nil || p.Engine == EngineEnumFO {
		return "", false
	}
	h := fnv.New128a()
	writeU64(h, uint64(p.Engine))
	flags := uint64(0)
	if p.AlwaysTrue {
		flags |= 1
	}
	if p.Masked {
		flags |= 2
	}
	writeU64(h, flags)
	writeU64(h, uint64(p.Budget))
	writeU64(h, uint64(len(p.Components)))
	for _, c := range p.Components {
		writeU64(h, uint64(c.Blocks))
		writeU64(h, uint64(c.Boxes))
		writeU64(h, uint64(c.GrayCost))
		writeU64(h, uint64(c.IECost))
		writeU64(h, uint64(c.CompileCost))
		writeU64(h, uint64(c.CircuitNodes))
		writeU64(h, uint64(c.Engine))
		writeU64(h, uint64(c.Cost))
		if c.Memoized {
			writeU64(h, 1)
		} else {
			writeU64(h, 0)
		}
	}
	return fmt.Sprintf("p%x", h.Sum(nil)), true
}

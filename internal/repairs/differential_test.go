package repairs

import (
	"math/rand/v2"
	"testing"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

func mustQuery(t *testing.T, src string) query.Formula {
	t.Helper()
	return query.MustParse(src)
}

// Differential tests pitting the interned, ID-indexed paths (Lemma 3.5
// decision matcher, posting-list certificate enumeration, filtered-matcher
// FPRAS membership) against the string-canonical reference semantics:
// brute-force enumeration of repairs with a fresh index per repair.

func randomInstances(t *testing.T, seed uint64) []*Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 21))
	var out []*Instance
	// Example 1.1 scaled down so brute force stays cheap.
	db, ks := workload.Employee(rng, 4+rng.IntN(6), 3, 0.6)
	out = append(out, MustInstance(db, ks, workload.SameDeptQuery(1, 2)))
	// Two keyed relations with a join query.
	db2, ks2, err := workload.Generate(rng, []workload.RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 2 + rng.IntN(4),
			BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 2},
		{Pred: "S", KeyWidth: 1, Arity: 2, NumBlocks: 2 + rng.IntN(3),
			BlockSizes: workload.Uniform{Lo: 1, Hi: 2}, NumValues: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	q2 := mustQuery(t, "exists x, y, z . (R(x, y) & S(x, z))")
	out = append(out, MustInstance(db2, ks2, q2))
	// Self-join with a constant.
	q3 := mustQuery(t, "exists x, y . (R(x, 'v0') & R(y, 'v1'))")
	out = append(out, MustInstance(db2, ks2, q3))
	return out
}

// bruteCount is the reference counter: enumerate every repair, evaluate
// the query on a fresh index (the old string path end to end).
func bruteCount(in *Instance) int64 {
	var n int64
	for facts := range relational.Repairs(in.Blocks) {
		if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
			n++
		}
	}
	return n
}

func TestDecisionAndCountsDifferential(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for ii, in := range randomInstances(t, seed) {
			want := bruteCount(in)
			if got := in.HasRepairEntailing(); got != (want > 0) {
				t.Fatalf("seed %d instance %d: decision = %v, brute count = %d", seed, ii, got, want)
			}
			n, algo, err := in.CountExact()
			if err != nil {
				t.Fatalf("seed %d instance %d: CountExact: %v", seed, ii, err)
			}
			if n.Int64() != want {
				t.Fatalf("seed %d instance %d: CountExact (%s) = %s, brute = %d", seed, ii, algo, n, want)
			}
			if ie, err := in.CountIE(0); err != nil {
				t.Fatalf("seed %d instance %d: CountIE: %v", seed, ii, err)
			} else if ie.Int64() != want {
				t.Fatalf("seed %d instance %d: CountIE = %s, brute = %d", seed, ii, ie, want)
			}
			if cc, err := in.CountCompactor(); err != nil {
				t.Fatalf("seed %d instance %d: CountCompactor: %v", seed, ii, err)
			} else if cc.Int64() != want {
				t.Fatalf("seed %d instance %d: CountCompactor = %s, brute = %d", seed, ii, cc, want)
			}
		}
	}
}

// The certificate sets of the ID-indexed enumeration must coincide with a
// string-canonical reference: every (disjunct, binding) whose image is in
// D and key-consistent, found by exhaustive scan.
func TestCertificateSetDifferential(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for ii, in := range randomInstances(t, seed) {
			got := map[string]bool{}
			for c := range in.Certificates() {
				got[certKey(c)] = true
			}
			want := map[string]bool{}
			for qi, q := range in.UCQ.Disjuncts {
				for h := range eval.Homs(q, in.Idx) {
					img := eval.Image(q, h)
					if relational.Subset(img).Satisfies(in.Keys) {
						want[certKey(Certificate{Disjunct: qi, H: h.Clone()})] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d instance %d: %d certificates, reference has %d", seed, ii, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("seed %d instance %d: missing certificate %s", seed, ii, k)
				}
			}
		}
	}
}

func certKey(c Certificate) string {
	return string(rune('0'+c.Disjunct)) + "|" + c.H.Canonical()
}

// The compactor's filtered-matcher Member must agree with decoding the
// tuple into a repair and evaluating the UCQ on a fresh index — the
// implementation it replaced — on every repair of small instances.
func TestCompactorMemberDifferential(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		for ii, in := range randomInstances(t, seed) {
			c, err := in.Compactor()
			if err != nil {
				t.Fatalf("seed %d instance %d: %v", seed, ii, err)
			}
			member := c.MemberFunc()
			tuple := make([]core.Element, len(in.Blocks))
			var rec func(i int)
			rec = func(i int) {
				if i == len(in.Blocks) {
					facts := make([]relational.Fact, 0, len(tuple))
					for bi, b := range in.Blocks {
						for _, f := range b.Facts {
							if core.Element(f.Canonical()) == tuple[bi] {
								facts = append(facts, f)
							}
						}
					}
					want := eval.EvalUCQ(in.UCQ, eval.NewIndex(facts))
					if got := member(tuple); got != want {
						t.Fatalf("seed %d instance %d: member = %v, reference = %v for %v", seed, ii, got, want, tuple)
					}
					return
				}
				for _, f := range in.Blocks[i].Facts {
					tuple[i] = core.Element(f.Canonical())
					rec(i + 1)
				}
			}
			rec(0)
		}
	}
}

// Parallel FPRAS determinism: for a fixed seed the estimate is identical
// across repeated runs and across worker counts, and matches a generous
// accuracy window around the exact count.
func TestParallelFPRASDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	db, ks := workload.Employee(rng, 60, 4, 0.5)
	in := MustInstance(db, ks, workload.SameDeptQuery(1, 2))
	const samples = 6000
	const seed = 1234
	var first core.Estimate
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 2, 3, 8} {
			est, err := in.ApxParallelWithSamples(samples, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 && workers == 1 {
				first = est
				continue
			}
			if est.Hits != first.Hits || est.Value.Cmp(first.Value) != 0 {
				t.Fatalf("run %d workers %d: hits %d value %v, want hits %d value %v",
					run, workers, est.Hits, est.Value, first.Hits, first.Value)
			}
		}
	}
	// Different seeds must (in general) draw different samples.
	other, err := in.ApxParallelWithSamples(samples, 4, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	if other.Hits == first.Hits && other.Value.Cmp(first.Value) == 0 {
		t.Log("distinct seeds produced identical estimates (possible but unlikely)")
	}
	exact, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if rel := core.RelativeError(first.Value, exact); rel > 0.5 {
		t.Fatalf("parallel estimate %v vs exact %s: relative error %g", first.Value, exact, rel)
	}
}

func TestParallelKarpLubyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	db, ks := workload.Employee(rng, 50, 4, 0.5)
	in := MustInstance(db, ks, workload.SameDeptQuery(1, 2))
	const samples = 4000
	const seed = 99
	var first core.Estimate
	for run := 0; run < 2; run++ {
		for _, workers := range []int{1, 3, 8} {
			est, err := in.KarpLubyParallel(samples, workers, seed)
			if err != nil {
				t.Fatal(err)
			}
			if run == 0 && workers == 1 {
				first = est
				continue
			}
			if est.Hits != first.Hits || est.Value.Cmp(first.Value) != 0 {
				t.Fatalf("run %d workers %d: hits %d, want %d", run, workers, est.Hits, first.Hits)
			}
		}
	}
	exact, _, err := in.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if rel := core.RelativeError(first.Value, exact); rel > 0.5 {
		t.Fatalf("parallel Karp–Luby estimate %v vs exact %s: relative error %g", first.Value, exact, rel)
	}
}

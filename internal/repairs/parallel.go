package repairs

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// CountEnumUCQParallel is CountEnumUCQ with the enumeration fanned out
// across worker goroutines: the choices of the first relevant block are
// partitioned among workers, each enumerating the remaining blocks
// independently and reporting a partial count; partial counts are summed.
// The result is exact and identical to the sequential counter; workers ≤ 0
// selects GOMAXPROCS. Useful when the (relevant-block) repair space is in
// the millions — beyond that, the paper says to approximate instead.
func (in *Instance) CountEnumUCQParallel(budget, workers int) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountEnumUCQParallel needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	relevant := map[string]bool{}
	for _, p := range in.UCQ.Predicates() {
		relevant[p] = true
	}
	var relBlocks, irrBlocks []relational.Block
	for _, b := range in.Blocks {
		if relevant[b.Key.Pred] {
			relBlocks = append(relBlocks, b)
		} else {
			irrBlocks = append(irrBlocks, b)
		}
	}
	outer := relational.NumRepairsOfBlocks(irrBlocks)
	inner := relational.NumRepairsOfBlocks(relBlocks)
	if !inner.IsInt64() || inner.Int64() > int64(budget) {
		return nil, ErrBudget
	}
	if len(relBlocks) == 0 {
		if eval.EvalUCQ(in.UCQ, eval.NewIndex(nil)) {
			return outer, nil
		}
		return big.NewInt(0), nil
	}

	// Partition the first block's choices across workers; each worker owns
	// a disjoint slice of the product space, so no locking beyond the
	// final sum is needed.
	first, rest := relBlocks[0], relBlocks[1:]
	type job struct{ fact relational.Fact }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := new(big.Int)
	one := big.NewInt(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := new(big.Int)
			for j := range jobs {
				facts := make([]relational.Fact, 0, len(rest)+1)
				facts = append(facts, j.fact)
				if len(rest) == 0 {
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
						local.Add(local, one)
					}
					continue
				}
				for tail := range relational.Repairs(rest) {
					all := append(facts[:1], tail...)
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(all)) {
						local.Add(local, one)
					}
				}
			}
			mu.Lock()
			total.Add(total, local)
			mu.Unlock()
		}()
	}
	for _, f := range first.Facts {
		jobs <- job{fact: f}
	}
	close(jobs)
	wg.Wait()
	return total.Mul(total, outer), nil
}

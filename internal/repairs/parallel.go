package repairs

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// CountEnumUCQParallel is CountEnumUCQ with the enumeration fanned out
// across worker goroutines. The choice space of the relevant blocks is
// split into prefix ranges — the first blocks' choices are fixed per job,
// giving several jobs per worker — and workers steal jobs from an atomic
// queue, so a skewed job costs one worker, not the whole run. Each worker
// reuses one fact buffer across all its jobs and counts into a machine-word
// accumulator, promoted to big.Int only at the final merge. The result is
// exact and identical to the sequential counter (it deliberately keeps the
// per-repair index evaluation of the ground-truth path; CountFactorized is
// the fast engine); workers ≤ 0 selects GOMAXPROCS. budget ≤ 0 selects
// DefaultEnumBudget.
func (in *Instance) CountEnumUCQParallel(budget, workers int) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountEnumUCQParallel needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	split := in.relevant()
	if !split.inner.IsInt64() || split.inner.Int64() > int64(budget) {
		return nil, ErrBudget
	}
	rel := split.rel
	if len(rel) == 0 {
		if eval.EvalUCQ(in.UCQ, eval.NewIndex(nil)) {
			return new(big.Int).Set(split.outer), nil
		}
		return big.NewInt(0), nil
	}

	// Fix the choices of the first `prefix` blocks per job: enough jobs to
	// keep every worker busy (≥ 4× workers when the space allows), few
	// enough that the per-job suffix enumeration amortizes job dispatch.
	prefix, jobs := 1, int64(rel[0].Size())
	for prefix < len(rel) && jobs < int64(4*workers) {
		jobs *= int64(rel[prefix].Size())
		prefix++
	}
	suffix := rel[prefix:]

	queue := core.NewShardQueue(int(jobs))
	var mu sync.Mutex
	total := new(core.Accum)
	var wg sync.WaitGroup
	if int64(workers) > jobs {
		workers = int(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			facts := make([]relational.Fact, len(rel))
			var local core.Accum
			for {
				job, ok := queue.Next()
				if !ok {
					break
				}
				rem := int64(job)
				for i := prefix - 1; i >= 0; i-- {
					n := int64(rel[i].Size())
					facts[i] = rel[i].Facts[rem%n]
					rem /= n
				}
				if len(suffix) == 0 {
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
						local.Inc()
					}
					continue
				}
				for tail := range relational.Repairs(suffix) {
					copy(facts[prefix:], tail)
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
						local.Inc()
					}
				}
			}
			mu.Lock()
			total.Merge(&local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return new(big.Int).Mul(total.Big(), split.outer), nil
}

package repairs

import (
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repaircount/internal/core"
	"repaircount/internal/eval"
	"repaircount/internal/relational"
)

// This file holds the work-stealing executors of the exact counters: the
// planned factorized runner (heterogeneous per-component engines sharing
// one shard queue) and the parallel enumeration ground truth.

// runPlanned executes a planned factorization: every component not already
// known from the memo contributes jobs to one flattened (component, shard)
// job space — prefix shards for the Gray and masked walks, exactly one job
// for a component-local inclusion–exclusion pass or a circuit
// compile-and-count — and workers steal jobs from an atomic queue, so a
// heterogeneous mix of engines load-balances the same way a homogeneous one
// does. Walk results accumulate in per-component machine-word accumulators;
// IE and circuit results land in bigRes (both count against the big-int
// choice space, so they are not bounded by a machine word). Exactly one
// worker runs a given IE or circuit job, so the bigRes and newCircs slots
// need no lock; the WaitGroup barrier publishes them. circs supplies cached
// circuits per component (nil entries compile cold); circuits compiled by
// workers come back in newCircs for the caller to cache after the barrier.
//
// stop is the run's cooperative cancellation flag (nil never fires): it is
// polled between jobs and, at a coarse stride, inside the Gray/masked
// walkers, the IE DFS and the circuit compiler; a fired stop stops the
// queue, winds every worker down and fails the run with core.ErrStopped —
// partial accumulators are discarded by the caller.
func (in *Instance) runPlanned(f *factorization, engines []EngineKind, known []*big.Int, circs []*circuit, workers, homBudget int, stop *core.Stop) ([]core.Accum, []*big.Int, []*circuit, error) {
	plans := make([]struct {
		prefixDigits int
		shards       int64
	}, len(f.comps))
	jobOff := make([]int64, len(f.comps)+1)
	target := int64(4 * workers)
	for i := range f.comps {
		if known[i] != nil {
			jobOff[i+1] = jobOff[i]
			continue
		}
		if engines[i] == EngineCompIE || engines[i] == EngineCompile {
			jobOff[i+1] = jobOff[i] + 1
			continue
		}
		p, s := shardPlan(&f.comps[i], target)
		plans[i] = struct {
			prefixDigits int
			shards       int64
		}{p, s}
		jobOff[i+1] = jobOff[i] + s
	}
	totalJobs := jobOff[len(f.comps)]

	perComp := make([]core.Accum, len(f.comps))
	bigRes := make([]*big.Int, len(f.comps))
	newCircs := make([]*circuit, len(f.comps))
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	runWorker := func(sc *deltaScratch, q *core.ShardQueue, acc []core.Accum) {
		for {
			if stop.Stopped() {
				q.Stop()
				return
			}
			job, ok := q.Next()
			if !ok {
				return
			}
			ci := sort.Search(len(f.comps), func(i int) bool { return jobOff[i+1] > int64(job) })
			shard := int64(job) - jobOff[ci]
			c := &f.comps[ci]
			switch engines[ci] {
			case EngineCompIE:
				v, err := compIENonEntailment(c, stop)
				if err != nil {
					// Reachable only on cancellation: the node budget passed
					// to the IE pass is the worst-case bound the planner
					// priced, so ErrBudget cannot fire here.
					fail(err)
					continue
				}
				bigRes[ci] = v
			case EngineCompile:
				circ := (*circuit)(nil)
				if circs != nil {
					circ = circs[ci]
				}
				if circ == nil {
					var err error
					circ, err = compileComponent(c, compileNodeBudget, stop)
					if err != nil {
						// Cancellation, or a compilation that exceeded its
						// node budget (ErrBudget): the planner prices cold
						// compiles by a bound, not the actual circuit size,
						// so — unlike IE — the budget CAN fire here; the
						// caller falls down the usual CountExact ladder.
						fail(err)
						continue
					}
					newCircs[ci] = circ
				}
				bigRes[ci] = circ.count(c)
			case EngineMasked:
				acc[ci].Add(runMaskShard(c, plans[ci].prefixDigits, shard, sc, stop))
			default: // EngineGray
				acc[ci].Add(runBoxShard(c, plans[ci].prefixDigits, shard, sc, stop))
			}
		}
	}

	queue := core.NewShardQueue(int(totalJobs))
	if workers == 1 || totalJobs <= 1 {
		// Inline on the caller's goroutine with instance-memoized scratch:
		// steady-state sequential counting allocates only the result words.
		// Scratch is sized for one factorization, so the memo serves only
		// the default (memoized) one; non-default factorizations get a
		// fresh scratch and leave the memo alone.
		var sc *deltaScratch
		if homBudget != 0 {
			sc = in.newDeltaScratch(f)
		} else {
			if in.deltaMemo == nil {
				in.deltaMemo = in.newDeltaScratch(f)
			}
			sc = in.deltaMemo
		}
		runWorker(sc, queue, perComp)
	} else {
		nw := workers
		if int64(nw) > totalJobs {
			nw = int(totalJobs)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := in.newDeltaScratch(f)
				local := make([]core.Accum, len(f.comps))
				runWorker(sc, queue, local)
				mu.Lock()
				for i := range perComp {
					perComp[i].Merge(&local[i])
				}
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	if stop.Stopped() && firstErr == nil {
		firstErr = core.ErrStopped
	}
	return perComp, bigRes, newCircs, firstErr
}

// CountEnumUCQParallel is CountEnumUCQ with the enumeration fanned out
// across worker goroutines. The choice space of the relevant blocks is
// split into prefix ranges — the first blocks' choices are fixed per job,
// giving several jobs per worker — and workers steal jobs from an atomic
// queue, so a skewed job costs one worker, not the whole run. Each worker
// reuses one fact buffer across all its jobs and counts into a machine-word
// accumulator, promoted to big.Int only at the final merge. The result is
// exact and identical to the sequential counter (it deliberately keeps the
// per-repair index evaluation of the ground-truth path; CountFactorized is
// the fast engine); workers ≤ 0 selects GOMAXPROCS. budget ≤ 0 selects
// DefaultEnumBudget.
func (in *Instance) CountEnumUCQParallel(budget, workers int) (*big.Int, error) {
	return in.countEnumUCQParallel(budget, workers, nil)
}

// countEnumUCQParallel is CountEnumUCQParallel with a cooperative stop
// flag polled between jobs and every stopStride evaluated repairs inside a
// job; a fired stop fails the run with core.ErrStopped.
func (in *Instance) countEnumUCQParallel(budget, workers int, stop *core.Stop) (*big.Int, error) {
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: CountEnumUCQParallel needs an existential positive query, have %s", in.Q)
	}
	if budget <= 0 {
		budget = DefaultEnumBudget
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	split := in.relevant()
	if !split.inner.IsInt64() || split.inner.Int64() > int64(budget) {
		return nil, ErrBudget
	}
	rel := split.rel
	if len(rel) == 0 {
		if eval.EvalUCQ(in.UCQ, eval.NewIndex(nil)) {
			return new(big.Int).Set(split.outer), nil
		}
		return big.NewInt(0), nil
	}

	// Fix the choices of the first `prefix` blocks per job: enough jobs to
	// keep every worker busy (≥ 4× workers when the space allows), few
	// enough that the per-job suffix enumeration amortizes job dispatch.
	prefix, jobs := 1, int64(rel[0].Size())
	for prefix < len(rel) && jobs < int64(4*workers) {
		jobs *= int64(rel[prefix].Size())
		prefix++
	}
	suffix := rel[prefix:]

	queue := core.NewShardQueue(int(jobs))
	var mu sync.Mutex
	total := new(core.Accum)
	var wg sync.WaitGroup
	if int64(workers) > jobs {
		workers = int(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			facts := make([]relational.Fact, len(rel))
			var local core.Accum
			for {
				if stop.Stopped() {
					queue.Stop()
					break
				}
				job, ok := queue.Next()
				if !ok {
					break
				}
				rem := int64(job)
				for i := prefix - 1; i >= 0; i-- {
					n := int64(rel[i].Size())
					facts[i] = rel[i].Facts[rem%n]
					rem /= n
				}
				if len(suffix) == 0 {
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
						local.Inc()
					}
					continue
				}
				check := stopStride
				for tail := range relational.Repairs(suffix) {
					if check--; check == 0 {
						if stop.Stopped() {
							break
						}
						check = stopStride
					}
					copy(facts[prefix:], tail)
					if eval.EvalUCQ(in.UCQ, eval.NewIndex(facts)) {
						local.Inc()
					}
				}
			}
			mu.Lock()
			total.Merge(&local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	if stop.Stopped() {
		return nil, core.ErrStopped
	}
	return new(big.Int).Mul(total.Big(), split.outer), nil
}

package repairs

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
)

func TestParallelMatchesSequentialExample(t *testing.T) {
	in := exampleInstance(t)
	seq, err := in.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 8} {
		par, err := in.CountEnumUCQParallel(0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Cmp(seq) != 0 {
			t.Fatalf("workers=%d: parallel %s vs sequential %s", workers, par, seq)
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	// No relevant blocks at all: the UCQ is false on the empty index.
	db := relational.MustDatabase(
		relational.NewFact("Noise", "1", "a"),
		relational.NewFact("Noise", "1", "b"),
	)
	ks := relational.Keys(map[string]int{"Noise": 1, "R": 1})
	in := MustInstance(db, ks, query.MustParse("exists x . R(x, 'a')"))
	par, err := in.CountEnumUCQParallel(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Sign() != 0 {
		t.Fatalf("count = %s, want 0", par)
	}
	// FO query is rejected.
	foIn := MustInstance(db, ks, query.MustParse("!Noise('1', 'a')"))
	if _, err := foIn.CountEnumUCQParallel(0, 2); err == nil {
		t.Fatalf("FO query accepted by parallel UCQ counter")
	}
	// Budget applies.
	big1, ks1 := bigPairs(14)
	bin := MustInstance(big1, ks1, query.MustParse("exists x . P(x, 'a')"))
	if _, err := bin.CountEnumUCQParallel(100, 2); err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func bigPairs(n int) (*relational.Database, *relational.KeySet) {
	db := relational.MustDatabase()
	for i := 0; i < n; i++ {
		db.Add(relational.NewFact("P", relational.IntConst(i), "a"))
		db.Add(relational.NewFact("P", relational.IntConst(i), "b"))
	}
	return db, relational.Keys(map[string]int{"P": 1})
}

// Property: parallel and sequential enumeration agree on random instances
// and random worker counts.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	prop := func(seed uint64, w uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 163))
		in := randomEPInstance(rng)
		seq, err := in.CountEnumUCQ(0)
		if err != nil {
			return false
		}
		par, err := in.CountEnumUCQParallel(0, 1+int(w%7))
		if err != nil {
			return false
		}
		return par.Cmp(seq) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

package repairs

import (
	"math/rand/v2"
	"testing"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

// rebuildInstance builds a from-scratch instance over the live facts of
// the mutated database — the ground truth every incremental structure is
// measured against.
func rebuildInstance(t *testing.T, db *relational.Database, ks *relational.KeySet, q query.Formula) *Instance {
	t.Helper()
	fresh, err := relational.NewDatabase(db.Facts()...)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	in, err := NewInstance(fresh, ks, q)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return in
}

// checkBlocksCanonical asserts the maintained block sequence is exactly
// the canonical decomposition of the rebuilt database: same order, same
// keys, same facts in the same within-block order.
func checkBlocksCanonical(t *testing.T, step int, live, rebuilt *Instance) {
	t.Helper()
	a, b := live.Blocks, rebuilt.Blocks
	if len(a) != len(b) {
		t.Fatalf("step %d: %d maintained blocks vs %d canonical", step, len(a), len(b))
	}
	for i := range a {
		if !a[i].Key.Equal(b[i].Key) {
			t.Fatalf("step %d: block %d key %v vs canonical %v", step, i, a[i].Key, b[i].Key)
		}
		if len(a[i].Facts) != len(b[i].Facts) {
			t.Fatalf("step %d: block %d has %d facts vs canonical %d", step, i, len(a[i].Facts), len(b[i].Facts))
		}
		for j := range a[i].Facts {
			if !a[i].Facts[j].Equal(b[i].Facts[j]) {
				t.Fatalf("step %d: block %d fact %d is %v vs canonical %v", step, i, j, a[i].Facts[j], b[i].Facts[j])
			}
		}
	}
}

// TestIncrementalDifferential drives randomized insert/delete streams
// through live instances and asserts, after every delta, that counts are
// bit-identical to a full rebuild-from-scratch: total repairs, the
// decision, the factorized exact count (box and masked engines, several
// worker counts) against the rebuilt enumeration ground truth, and the
// deterministic FPRAS estimate. The maintained block sequence must equal
// the canonical decomposition exactly (the FPRAS determinism depends on
// it).
func TestIncrementalDifferential(t *testing.T) {
	type tc struct {
		name string
		db   *relational.Database
		ks   *relational.KeySet
		q    query.Formula
		ops  int
	}
	rng := rand.New(rand.NewPCG(41, 7))
	var cases []tc
	{
		db, ks := workload.Employee(rng, 10, 3, 0.6)
		cases = append(cases, tc{"employee", db, ks, workload.SameDeptQuery(1, 2), 40})
	}
	{
		db, ks, q := workload.MultiComponent(3, 2, 2)
		cases = append(cases, tc{"multicomponent", db, ks, q, 40})
	}
	{
		db, ks, err := workload.Generate(rng, []workload.RelationSpec{
			{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 5, BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 3},
			{Pred: "S", KeyWidth: 1, Arity: 2, NumBlocks: 3, BlockSizes: workload.Uniform{Lo: 1, Hi: 2}, NumValues: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		q := query.MustParse("exists x, y . (R(x, 'v0') & S(y, 'v1')) | exists z . R(z, 'v2')")
		cases = append(cases, tc{"random", db, ks, q, 40})
	}
	{
		// The planner's component-local IE regime: replanning after deltas
		// must keep the IE engine bit-identical to a rebuild.
		db, ks, q := workload.IEHeavy(2, 6, 2)
		cases = append(cases, tc{"ieheavy", db, ks, q, 40})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			crng := rand.New(rand.NewPCG(97, uint64(len(c.name))))
			stream := workload.UpdateStream(crng, c.db, c.ks, c.ops, 0.6)
			live := MustInstance(c.db, c.ks, c.q)
			if _, err := live.CountFactorized(0); err != nil {
				t.Fatal(err)
			}
			for step, op := range stream {
				d := Insert(op.Fact)
				if op.Del {
					d = Delete(op.Fact)
				}
				n, err := live.Apply(d)
				if err != nil {
					t.Fatalf("step %d: apply %v: %v", step, op, err)
				}
				if n != 1 {
					t.Fatalf("step %d: op %v applied %d times, want 1", step, op, n)
				}
				rebuilt := rebuildInstance(t, c.db, c.ks, c.q)
				checkBlocksCanonical(t, step, live, rebuilt)
				if lt, rt := live.TotalRepairs(), rebuilt.TotalRepairs(); lt.Cmp(rt) != 0 {
					t.Fatalf("step %d: live total %s vs rebuilt %s", step, lt, rt)
				}
				if ld, rd := live.HasRepairEntailing(), rebuilt.HasRepairEntailing(); ld != rd {
					t.Fatalf("step %d: live decide %v vs rebuilt %v", step, ld, rd)
				}
				want, err := rebuilt.CountEnumUCQ(0)
				if err != nil {
					t.Fatalf("step %d: rebuilt enum: %v", step, err)
				}
				for _, workers := range []int{1, 4} {
					got, err := live.CountFactorizedParallel(0, workers)
					if err != nil {
						t.Fatalf("step %d: live planned(%d workers): %v", step, workers, err)
					}
					if got.Cmp(want) != 0 {
						t.Fatalf("step %d: live planned(%d workers) = %s, rebuilt enum = %s", step, workers, got, want)
					}
					// The forced engines replan against the mutated structure
					// too: Gray and component-local IE must stay bit-identical
					// to the rebuilt ground truth after every delta.
					if got, err := live.CountGray(0, workers); err != nil || got.Cmp(want) != 0 {
						t.Fatalf("step %d: live gray(%d workers) = %v (%v), rebuilt enum = %s", step, workers, got, err, want)
					}
					if got, err := live.CountCompIE(0, workers); err != nil || got.Cmp(want) != 0 {
						t.Fatalf("step %d: live component-ie(%d workers) = %v (%v), rebuilt enum = %s", step, workers, got, err, want)
					}
				}
				if got, err := live.CountIE(0); err != nil || got.Cmp(want) != 0 {
					t.Fatalf("step %d: live whole-instance ie = %v (%v), rebuilt enum = %s", step, got, err, want)
				}
				if got, err := live.countFactorized(0, 2, -1, EngineAuto, nil); err != nil || got.Cmp(want) != 0 {
					t.Fatalf("step %d: live masked = %v (%v), rebuilt enum = %s", step, got, err, want)
				}
				if got, err := live.CountEnumUCQ(0); err != nil || got.Cmp(want) != 0 {
					t.Fatalf("step %d: live enum = %v (%v), want %s", step, got, err, want)
				}
				// The FPRAS is deterministic for a fixed seed and must be
				// bit-identical between the live and rebuilt instances —
				// this pins the maintained block domains and the compiled
				// membership matcher. Every few steps: it dominates runtime.
				if step%5 == 0 {
					le, err := live.ApxParallelWithSamples(800, 3, 42)
					if err != nil {
						t.Fatalf("step %d: live fpras: %v", step, err)
					}
					re, err := rebuilt.ApxParallelWithSamples(800, 3, 42)
					if err != nil {
						t.Fatalf("step %d: rebuilt fpras: %v", step, err)
					}
					if le.Hits != re.Hits || le.Samples != re.Samples || le.Value.Cmp(re.Value) != 0 {
						t.Fatalf("step %d: live fpras (%d hits, %v) vs rebuilt (%d hits, %v)",
							step, le.Hits, le.Value, re.Hits, re.Value)
					}
				}
			}
		})
	}
}

// TestApplyNoOps pins the no-op semantics: duplicate inserts and deletes
// of absent facts report zero applied deltas and leave the version
// untouched.
func TestApplyNoOps(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 2)
	in := MustInstance(db, ks, q)
	v := in.Version()
	f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", "v0"}} // already present
	if n, err := in.Apply(Insert(f)); err != nil || n != 0 {
		t.Fatalf("duplicate insert: applied %d, err %v", n, err)
	}
	missing := relational.Fact{Pred: "C0", Args: []relational.Const{"k9", "v9"}}
	if n, err := in.Apply(Delete(missing)); err != nil || n != 0 {
		t.Fatalf("absent delete: applied %d, err %v", n, err)
	}
	if in.Version() != v {
		t.Fatalf("no-op deltas moved the version %d -> %d", v, in.Version())
	}
	if n, err := in.Apply(Delete(f), Insert(f)); err != nil || n != 2 {
		t.Fatalf("delete+reinsert: applied %d, err %v", n, err)
	}
	if in.Version() != v+2 {
		t.Fatalf("version %d after two mutations from %d", in.Version(), v)
	}
}

// TestApplyArityClash pins the failure mode: an arity clash reports an
// error, with every delta before the clash applied.
func TestApplyArityClash(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 2)
	in := MustInstance(db, ks, q)
	good := relational.Fact{Pred: "C0", Args: []relational.Const{"k7", "v0"}}
	bad := relational.Fact{Pred: "C0", Args: []relational.Const{"k7"}}
	n, err := in.Apply(Insert(good), Insert(bad))
	if err == nil {
		t.Fatal("arity clash not reported")
	}
	if n != 1 {
		t.Fatalf("applied %d deltas before the clash, want 1", n)
	}
	if !in.DB.Contains(good) {
		t.Fatal("the delta before the clash was lost")
	}
}

// TestRecountReplansOnlyTouchedComponents is the planner analog of the
// test below: on an ie-heavy instance every component counts via
// component-local IE, and after a delta touching one component a recount
// must replan — and pay for — only that component. With IE costs of 24 per
// component (2 boxes), a budget of 40 covers one replanned component but
// not two, so the recount succeeds only because the untouched component
// comes from the engine-keyed structural memo.
func TestRecountReplansOnlyTouchedComponents(t *testing.T) {
	db, ks, q := workload.IEHeavy(2, 12, 2) // 2^12-state components: Gray infeasible at budget 40
	in := MustInstance(db, ks, q)
	if _, err := in.CountFactorized(0); err != nil {
		t.Fatal(err)
	}
	p, err := in.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p.Components {
		if c.Engine != EngineCompIE || !c.Memoized {
			t.Fatalf("component %d after count = %+v, want memoized component-ie", i, c)
		}
	}
	f := relational.Fact{Pred: "P0", Args: []relational.Const{"k0", "uvZ"}}
	if _, err := in.Apply(Insert(f)); err != nil {
		t.Fatal(err)
	}
	p, err = in.ExplainPlan(EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	if p.Budget == 0 || p.Budget > 40 {
		t.Fatalf("post-delta plan budget = %d, want only the touched component's IE cost", p.Budget)
	}
	touched := 0
	for _, c := range p.Components {
		if !c.Memoized {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("%d components replanned, want 1", touched)
	}
	got, err := in.CountFactorized(40)
	if err != nil {
		t.Fatalf("recount within touched-component budget: %v", err)
	}
	want, err := rebuildInstance(t, db, ks, q).CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("memoized recount = %s, rebuilt count = %s", got, want)
	}
}

// TestRecountReenumeratesOnlyTouchedComponents pins the incremental-recount
// mechanism itself: after a delta touching one component, a recount hits
// the structural memo for every other component, so its enumeration budget
// need only cover the touched component.
func TestRecountReenumeratesOnlyTouchedComponents(t *testing.T) {
	db, ks, q := workload.MultiComponent(6, 3, 2) // six components, 8 states each
	in := MustInstance(db, ks, q)
	if _, err := in.CountFactorized(0); err != nil {
		t.Fatal(err)
	}
	f := relational.Fact{Pred: "C0", Args: []relational.Const{"k0", "uvZ"}}
	if _, err := in.Apply(Insert(f)); err != nil {
		t.Fatal(err)
	}
	// Budget 13 covers the touched component (3 blocks now sized 3,2,2 =
	// 12 states) but not even two untouched ones (8 each): the recount
	// succeeds only because the other five come from the memo.
	got, err := in.CountFactorized(13)
	if err != nil {
		t.Fatalf("recount within touched-component budget: %v", err)
	}
	// Factorized-vs-enum equality is pinned by TestIncrementalDifferential;
	// a fresh (memo-less) factorized rebuild is ground truth enough here.
	want, err := rebuildInstance(t, db, ks, q).CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("memoized recount = %s, rebuilt count = %s", got, want)
	}
}

package repairs

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/workload"
)

// Differential suite for the factorized exact counter: both engines (box
// counters and matcher mask), sequential and work-stealing parallel, pinned
// to the enumeration ground truth across coupled, disconnected and
// degenerate instances.

// factorizedInstances covers the structural extremes: fully-coupled
// queries, disconnected per-predicate disjuncts, per-block factorization,
// irrelevant blocks, empty relevant set, and truth constants.
func factorizedInstances(t *testing.T, seed uint64) []*Instance {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 31))
	var out []*Instance

	// Example 1.1 scaled: one join query coupling everything.
	db, ks := workload.Employee(rng, 4+rng.IntN(6), 3, 0.6)
	out = append(out, MustInstance(db, ks, workload.SameDeptQuery(1, 2)))

	// Two keyed relations, varying block counts.
	db2, ks2, err := workload.Generate(rng, []workload.RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 2, NumBlocks: 2 + rng.IntN(4),
			BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 2},
		{Pred: "S", KeyWidth: 1, Arity: 2, NumBlocks: 2 + rng.IntN(3),
			BlockSizes: workload.Uniform{Lo: 1, Hi: 2}, NumValues: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Coupled join; disconnected per-predicate disjuncts; self-join;
	// per-block factorizing constant query.
	for _, src := range []string{
		"exists x, y, z . (R(x, y) & S(x, z))",
		"(exists x . R(x, 'v0')) | (exists y . S(y, 'v1'))",
		"exists x, y . (R(x, 'v0') & R(y, 'v1'))",
		"exists x . R(x, 'v1')",
	} {
		out = append(out, MustInstance(db2, ks2, query.MustParse(src)))
	}

	// Structured multi-component instance.
	db3, ks3, q3 := workload.MultiComponent(2+rng.IntN(2), 2, 2)
	out = append(out, MustInstance(db3, ks3, q3))

	// Irrelevant conflicting blocks only (empty relevant set), plus truth
	// constants over a conflicting database.
	db4 := relational.MustDatabase(
		relational.NewFact("Noise", "1", "a"),
		relational.NewFact("Noise", "1", "b"),
		relational.NewFact("Noise", "2", "a"),
	)
	ks4 := relational.Keys(map[string]int{"Noise": 1, "R": 1})
	out = append(out, MustInstance(db4, ks4, query.MustParse("exists x . R(x, 'a')")))
	out = append(out, MustInstance(db4, ks4, query.MustParse("true")))
	out = append(out, MustInstance(db4, ks4, query.MustParse("false")))
	// Ground query entailed by a conflicting block's singleton sibling.
	out = append(out, MustInstance(db4, ks4, query.MustParse("Noise('2', 'a')")))
	// Ground query on a conflicting block: entailed by half the repairs.
	out = append(out, MustInstance(db4, ks4, query.MustParse("Noise('1', 'a')")))
	return out
}

func TestFactorizedDifferential(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		for ii, in := range factorizedInstances(t, seed) {
			want, err := in.CountEnumUCQ(0)
			if err != nil {
				t.Fatalf("seed %d instance %d: ground truth: %v", seed, ii, err)
			}
			check := func(name string, got *big.Int, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("seed %d instance %d: %s: %v", seed, ii, name, err)
				}
				if got.Cmp(want) != 0 {
					t.Fatalf("seed %d instance %d: %s = %s, enumeration = %s", seed, ii, name, got, want)
				}
			}
			got, err := in.CountFactorized(0)
			check("CountFactorized", got, err)
			for _, workers := range []int{1, 2, 3, 8} {
				got, err := in.CountFactorizedParallel(0, workers)
				check("CountFactorizedParallel", got, err)
			}
			// Masked engine, sequential and parallel.
			got, err = in.countFactorized(0, 1, -1, EngineAuto, nil)
			check("masked sequential", got, err)
			got, err = in.countFactorized(0, 4, -1, EngineAuto, nil)
			check("masked parallel", got, err)
			// Tiny hom budget: overflow into the masked path on any
			// instance with ≥ 2 homomorphisms, exercise dedup otherwise.
			got, err = in.countFactorized(0, 2, 1, EngineAuto, nil)
			check("hom-budget overflow", got, err)
		}
	}
}

// Property: factorized and enumeration counters agree on random EP
// instances for random worker counts, on both engines.
func TestFactorizedMatchesEnumProperty(t *testing.T) {
	prop := func(seed uint64, w uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 271))
		in := randomEPInstance(rng)
		want, err := in.CountEnumUCQ(0)
		if err != nil {
			return false
		}
		got, err := in.CountFactorizedParallel(0, 1+int(w%7))
		if err != nil || got.Cmp(want) != 0 {
			return false
		}
		masked, err := in.countFactorized(0, 1+int(w%3), -1, EngineAuto, nil)
		return err == nil && masked.Cmp(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The factorized budget bounds the per-component work Σ_c Π|B_i|, so a
// multi-component instance far beyond the enumeration budget stays exactly
// countable — the point of the decomposition. #Q on MultiComponent(c, 2, 2)
// is 4^c − 2^c in closed form.
func TestFactorizedBeyondEnumerationBudget(t *testing.T) {
	db, ks, q := workload.MultiComponent(8, 2, 2)
	in := MustInstance(db, ks, q)
	if _, err := in.CountEnumUCQ(1000); err != ErrBudget {
		t.Fatalf("enumeration within budget 1000: err = %v", err)
	}
	want := new(big.Int).Sub(
		new(big.Int).Exp(big.NewInt(4), big.NewInt(8), nil),
		new(big.Int).Exp(big.NewInt(2), big.NewInt(8), nil))
	got, err := in.CountFactorized(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("factorized = %s, want %s", got, want)
	}
	// A genuinely over-budget component still errors — on a cold instance:
	// the budget bounds work actually performed, and on the warm instance
	// above the structural component memo has already absorbed it.
	if _, err := MustInstance(db, ks, q).CountFactorized(16); err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, err := in.CountFactorized(16); err != nil {
		t.Fatalf("memoized recount within budget 16: err = %v", err)
	}
}

// Worker count must never change the exact count, on either engine.
func TestFactorizedWorkerDeterminism(t *testing.T) {
	db, ks, q := workload.MultiComponent(4, 3, 3)
	in := MustInstance(db, ks, q)
	want, err := in.CountFactorized(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, homBudget := range []int{0, -1} {
		for _, workers := range []int{0, 1, 2, 3, 5, 16} {
			got, err := in.countFactorized(0, workers, homBudget, EngineAuto, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(want) != 0 {
				t.Fatalf("homBudget %d workers %d: %s, want %s", homBudget, workers, got, want)
			}
		}
	}
}

// Regression: a forced-engine call must not poison the instance-memoized
// scratch used by the default path (the masked scratch has no box
// counters, and vice versa the default factorization differs in shape).
func TestFactorizedScratchMemoIsolation(t *testing.T) {
	db, ks, q := workload.MultiComponent(2, 2, 2)
	in := MustInstance(db, ks, q)
	masked, err := in.countFactorized(0, 1, -1, EngineAuto, nil) // masked engine first
	if err != nil {
		t.Fatal(err)
	}
	got, err := in.CountFactorized(0) // then the default box engine
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(masked) != 0 {
		t.Fatalf("box engine after masked = %s, masked = %s", got, masked)
	}
	want, err := in.CountEnumUCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("count = %s, enumeration = %s", got, want)
	}
}

func TestFactorizedRejectsFO(t *testing.T) {
	db := relational.MustDatabase(
		relational.NewFact("R", "1", "a"),
		relational.NewFact("R", "1", "b"),
	)
	ks := relational.Keys(map[string]int{"R": 1})
	in := MustInstance(db, ks, query.MustParse("!R('1', 'a')"))
	if _, err := in.CountFactorized(0); err == nil {
		t.Fatal("FO query accepted")
	}
}

// The shared relevant-block split must be computed once and reused.
func TestRelevantSplitMemo(t *testing.T) {
	in := exampleInstance(t)
	s1 := in.relevant()
	s2 := in.relevant()
	if s1 != s2 {
		t.Fatal("relevant split not memoized")
	}
	if len(s1.rel)+len(s1.irr) != len(in.Blocks) {
		t.Fatalf("split loses blocks: %d + %d vs %d", len(s1.rel), len(s1.irr), len(in.Blocks))
	}
	product := new(big.Int).Mul(s1.inner, s1.outer)
	if product.Cmp(in.TotalRepairs()) != 0 {
		t.Fatalf("inner × outer = %s, total = %s", product, in.TotalRepairs())
	}
}

package repairs

import (
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"

	"repaircount/internal/core"
	"repaircount/internal/relational"
)

// This file implements component-sharded exact counting. The factorization
// #Q = Π|B_i| − Π_c #¬Q_c makes connected components of the query-
// interaction graph independent by construction, so the exact count
// distributes with zero coordination: a shard holding a subset of the
// components — plus every always-present relevant fact, which any
// homomorphic image may use — discovers exactly the parent's homomorphisms
// that pin its components, and its relevant-space non-entailment count
// factors as Π over its components. The merge recombines shard partials
// exactly:
//
//	#Q = (Π_s Inner_s − Π_s NonEnt_s) × Outer
//
// where Inner_s/NonEnt_s are shard s's relevant choice space and
// non-entailing count, and Outer is the product of the sizes of blocks
// excluded from every shard (irrelevant blocks and box-free conflicting
// blocks, which no homomorphic image touches). An always-true instance
// needs no special flag: every shard sees the witnessing image among its
// shared facts, reports NonEnt_s = 0, and the product vanishes.

// ShardOf sentinel values: a canonical block position carrying one of these
// is not exclusive to any shard.
const (
	// ShardShared marks blocks replicated into every shard: relevant
	// single-fact blocks, whose fact survives every repair and may appear
	// in any homomorphic image.
	ShardShared = -1
	// ShardExcluded marks blocks appearing in no shard: irrelevant blocks
	// and box-free conflicting blocks. Their sizes multiply into the
	// partition's Outer factor.
	ShardExcluded = -2
)

// ShardPlan is a partition of an instance's components into K groups,
// balanced by planned engine cost. It is valid only for the instance
// version it was derived from.
type ShardPlan struct {
	K int

	// ShardOf maps each position of the canonical block sequence to the
	// shard owning it (0..K-1), ShardShared, or ShardExcluded.
	ShardOf []int32

	// CompShard maps component index → shard; Components holds the planner
	// report the bin-packing priced (Cost is the planned engine cost, never
	// the memo-adjusted one: a shard executor starts cold).
	CompShard  []int32
	Components []ComponentPlan

	// CompOf maps each canonical block position to the query-graph
	// component owning it, or -1 for positions not in any component
	// (shared, excluded and box-free blocks). A distributed coordinator
	// uses it to check that no component's blocks straddle two physical
	// shards after deltas moved the factorization.
	CompOf []int32

	// Cost and Blocks aggregate planned cost and exclusive conflicting
	// blocks per shard; Inner is the per-shard Π of exclusive block sizes.
	Cost   []int64
	Blocks []int
	Inner  []*big.Int

	// Outer is Π sizes over excluded blocks — the global factor restored at
	// merge time.
	Outer *big.Int

	version    uint64
	alwaysTrue bool
	masked     bool
}

// AlwaysTrue reports whether the parent instance is entailed by every
// repair; the partition then assigns every conflicting block to Outer.
func (p *ShardPlan) AlwaysTrue() bool { return p.alwaysTrue }

// Masked reports whether the partition came from the coarse predicate-level
// component graph (homomorphism space over budget). The partition is still
// exact; shard-local planning may refine it.
func (p *ShardPlan) Masked() bool { return p.masked }

// PlanShards partitions the instance's components into k groups by greedy
// LPT bin-packing on planned engine cost: components are placed heaviest
// first onto the currently lightest shard, so one heavy component occupies
// one shard instead of serializing the fleet. k may exceed the component
// count; the surplus shards are empty (Inner 1, partial NonEnt 1) and merge
// neutrally.
func (in *Instance) PlanShards(k int) (*ShardPlan, error) {
	in.refresh()
	if !in.IsEP {
		return nil, fmt.Errorf("repairs: sharding needs an existential positive query, have %s", in.Q)
	}
	if k < 1 {
		return nil, fmt.Errorf("repairs: need at least 1 shard, got %d", k)
	}
	f := in.factorization(0)
	engines, err := in.planEngines(f, EngineAuto)
	if err != nil {
		return nil, err
	}
	p := &ShardPlan{
		K:          k,
		CompShard:  make([]int32, len(f.comps)),
		Components: make([]ComponentPlan, len(f.comps)),
		Cost:       make([]int64, k),
		Blocks:     make([]int, k),
		Inner:      make([]*big.Int, k),
		Outer:      big.NewInt(1),
		version:    in.Version(),
		alwaysTrue: f.alwaysTrue,
		masked:     f.masked,
	}
	for s := 0; s < k; s++ {
		p.Inner[s] = big.NewInt(1)
	}

	// Greedy LPT: heaviest planned cost first, onto the lightest shard.
	// Ties break on the lower component/shard index, so the partition is
	// deterministic for a given instance.
	order := make([]int, len(f.comps))
	for i := range order {
		order[i] = i
		c := &f.comps[i]
		p.Components[i] = ComponentPlan{
			Blocks:   len(c.sizes),
			Boxes:    c.numBoxes,
			GrayCost: grayCost(c),
			IECost:   ieCost(c),
			Engine:   engines[i],
			Cost:     in.engineCost(c, engines[i]),
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Components[order[a]].Cost > p.Components[order[b]].Cost
	})
	for _, ci := range order {
		best := 0
		for s := 1; s < k; s++ {
			if p.Cost[s] < p.Cost[best] {
				best = s
			}
		}
		p.CompShard[ci] = int32(best)
		p.Cost[best] = addSat(p.Cost[best], p.Components[ci].Cost)
		p.Blocks[best] += len(f.comps[ci].blocks)
	}

	// Shard of each conflicting-block position: conf index ci belongs to
	// the component listing it, to Outer when box-free, and to Outer
	// wholesale on an always-true instance (no engine ever runs; any shard
	// detects the truth from its shared facts alone).
	confShard := make([]int32, len(f.conf))
	confComp := make([]int32, len(f.conf))
	for i := range confShard {
		confShard[i] = ShardExcluded
		confComp[i] = -1
	}
	if !f.alwaysTrue {
		for i := range f.comps {
			for _, ci := range f.comps[i].blocks {
				confShard[ci] = p.CompShard[i]
				confComp[ci] = int32(i)
			}
		}
	}

	// Walk the canonical block sequence once, classifying every position.
	pred := map[string]bool{}
	for _, q := range in.UCQ.Predicates() {
		pred[q] = true
	}
	p.ShardOf = make([]int32, len(in.Blocks))
	p.CompOf = make([]int32, len(in.Blocks))
	ci := 0
	for pos, b := range in.Blocks {
		p.CompOf[pos] = -1
		switch {
		case !pred[b.Key.Pred]:
			p.ShardOf[pos] = ShardExcluded
		case b.Size() == 1:
			p.ShardOf[pos] = ShardShared
		default:
			p.ShardOf[pos] = confShard[ci]
			p.CompOf[pos] = confComp[ci]
			ci++
		}
		if s := p.ShardOf[pos]; s >= 0 {
			p.Inner[s].Mul(p.Inner[s], big.NewInt(int64(b.Size())))
		} else if s == ShardExcluded {
			p.Outer.Mul(p.Outer, big.NewInt(int64(b.Size())))
		}
	}
	if ci != len(f.conf) {
		return nil, fmt.Errorf("repairs: internal: %d conflicting blocks classified, factorization has %d", ci, len(f.conf))
	}
	return p, nil
}

// ShardInstances materializes the plan's K sub-instances: shard s holds the
// facts of its exclusive conflicting blocks plus every shared block's fact.
// The plan must come from the instance's current version — counting shards
// of a stale partition would silently misattribute blocks.
func (in *Instance) ShardInstances(plan *ShardPlan) ([]*Instance, error) {
	in.refresh()
	if plan.version != in.Version() {
		return nil, fmt.Errorf("repairs: shard plan is for version %d, instance is at %d; re-plan after Apply", plan.version, in.Version())
	}
	if len(plan.ShardOf) != len(in.Blocks) {
		return nil, fmt.Errorf("repairs: shard plan covers %d blocks, instance has %d", len(plan.ShardOf), len(in.Blocks))
	}
	facts := make([][]relational.Fact, plan.K)
	for pos, b := range in.Blocks {
		switch s := plan.ShardOf[pos]; {
		case s >= 0:
			facts[s] = append(facts[s], b.Facts...)
		case s == ShardShared:
			for i := range facts {
				facts[i] = append(facts[i], b.Facts...)
			}
		}
	}
	subs := make([]*Instance, plan.K)
	for s := range subs {
		db, err := relational.NewDatabase(facts[s]...)
		if err != nil {
			return nil, fmt.Errorf("repairs: shard %d: %w", s, err)
		}
		sub, err := NewInstance(db, in.Keys, in.Q)
		if err != nil {
			return nil, fmt.Errorf("repairs: shard %d: %w", s, err)
		}
		subs[s] = sub
	}
	return subs, nil
}

// Partial is one shard's (or any instance's) contribution to a sharded
// count: Inner = Π|B_i| over all its blocks and NonEnt = the number of its
// repairs that do not entail the query, so Inner − NonEnt = #Q of the
// sub-instance alone and the products of each side merge exactly across
// shards.
type Partial struct {
	Inner  *big.Int
	NonEnt *big.Int
}

// CountNonEntailment computes the instance's Partial with the planned
// factorized engine. budget and workers behave as in
// CountFactorizedParallel. On an always-true instance NonEnt is zero.
func (in *Instance) CountNonEntailment(budget, workers int) (*Partial, error) {
	return in.CountNonEntailmentStop(budget, workers, nil)
}

// CountNonEntailmentStop is CountNonEntailment with cooperative
// cancellation: the enumeration kernels poll stop at a coarse stride and
// the call returns core.ErrStopped once it fires. A nil stop never fires.
func (in *Instance) CountNonEntailmentStop(budget, workers int, stop *core.Stop) (*Partial, error) {
	f, nonent, err := in.nonEntailment(budget, workers, 0, EngineAuto, stop)
	if err != nil {
		return nil, err
	}
	// Fold the irrelevant factor into both sides: (inner·outer −
	// nonent·outer) = #Q, and the factor distributes over the merge
	// products, so a shard carrying irrelevant blocks still merges exactly.
	return &Partial{
		Inner:  new(big.Int).Mul(f.split.inner, f.split.outer),
		NonEnt: new(big.Int).Mul(nonent, f.split.outer),
	}, nil
}

// CombinePartials recombines shard partials under the plan's excluded
// factor: (Π_s Inner_s − Π_s NonEnt_s) × outer. Every shard of the
// partition must contribute exactly once; the file-level merge in
// internal/store enforces that via manifest digests, in-process callers get
// it by construction.
func CombinePartials(outer *big.Int, parts []*Partial) *big.Int {
	inner := big.NewInt(1)
	nonent := big.NewInt(1)
	for _, p := range parts {
		inner.Mul(inner, p.Inner)
		nonent.Mul(nonent, p.NonEnt)
	}
	count := inner.Sub(inner, nonent)
	return count.Mul(count, outer)
}

// CountSharded counts repairs entailing the UCQ by partitioning the
// components into k cost-balanced shards, counting each shard's partial
// with an independent planned counter, and merging exactly. workers ≤ 0
// selects GOMAXPROCS; shards are served to min(workers, k) goroutines from
// a work-stealing queue, each counting its shard sequentially (the
// intra-process analogue of the repairctl shard/count/merge pipeline). The
// result is bit-identical to CountFactorized for every k.
func (in *Instance) CountSharded(k, workers int) (*big.Int, error) {
	return in.CountShardedStop(k, workers, nil)
}

// CountShardedStop is CountSharded with cooperative cancellation threaded
// through every per-shard job: workers poll stop between shards and each
// shard's enumeration kernels poll it at a coarse stride, so a fired stop
// frees the whole fleet within a bounded number of states and the call
// returns core.ErrStopped. A nil stop never fires.
func (in *Instance) CountShardedStop(k, workers int, stop *core.Stop) (*big.Int, error) {
	plan, err := in.PlanShards(k)
	if err != nil {
		return nil, err
	}
	subs, err := in.ShardInstances(plan)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > plan.K {
		workers = plan.K
	}
	parts := make([]*Partial, plan.K)
	queue := core.NewShardQueue(plan.K)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Stopped() {
					return
				}
				s, ok := queue.Next()
				if !ok {
					return
				}
				p, err := subs[s].CountNonEntailmentStop(0, 1, stop)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("repairs: shard %d: %w", s, err)
					}
					errMu.Unlock()
					continue
				}
				parts[s] = p
			}
		}()
	}
	wg.Wait()
	if stop.Stopped() {
		return nil, core.ErrStopped
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return CombinePartials(plan.Outer, parts), nil
}

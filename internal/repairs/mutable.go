package repairs

import (
	"repaircount/internal/relational"
)

// This file implements the versioned-mutation surface of an Instance. A
// Delta is one fact insert or delete; Apply threads deltas through the
// shared live substrate (database, maintained block sequence, evaluation
// index — see eval.LiveInstance), and refresh flushes the instance's
// memoized and compiled structures when the substrate version moved. The
// per-component count memo (compMemo) deliberately survives: it is keyed
// by (engine, component structure), not version, which is what makes a
// recount after a delta replan — and pay for — only the touched
// components.

// Delta is one instance mutation: the insertion or deletion of a fact.
type Delta struct {
	Del  bool
	Fact relational.Fact
}

// Insert builds an insertion delta.
func Insert(f relational.Fact) Delta { return Delta{Fact: f} }

// Delete builds a deletion delta.
func Delete(f relational.Fact) Delta { return Delta{Del: true, Fact: f} }

// Apply performs the deltas in order against the live substrate and
// returns how many of them changed the instance (duplicate inserts and
// deletes of absent facts are no-ops). It fails on an arity clash, with
// every delta before the clash applied. Counting methods called after
// Apply — on this instance or any other sharing the substrate — see the
// new state; CountFactorized and the FPRAS remain valid to call between
// deltas.
func (in *Instance) Apply(deltas ...Delta) (int, error) {
	applied := 0
	for _, d := range deltas {
		changed, err := in.live.Apply(d.Del, d.Fact)
		if changed {
			applied++
		}
		if err != nil {
			in.refresh()
			return applied, err
		}
	}
	in.refresh()
	return applied, nil
}

// Version returns the monotonically increasing version of the live
// substrate (the number of successful mutations since construction).
func (in *Instance) Version() uint64 { return in.live.Version() }

// ResetComponentMemo drops the structural per-component memos — counts and
// compiled circuits — and the observed-reuse signal. The memos are sound
// across deltas (they are keyed by component structure, not version), so
// the only reasons to drop them are bounding memory and benchmarking cold
// enumeration.
func (in *Instance) ResetComponentMemo() {
	in.compMemo = nil
	in.circMemo = nil
	in.memoReuse = 0
}

// refresh resynchronizes the instance with the live substrate: when the
// version moved, the block-sequence view is re-read and every memoized or
// compiled structure tied to the old state is flushed. The structural
// component memo is kept — it is version-independent by construction.
func (in *Instance) refresh() {
	v := in.live.Version()
	if v == in.memoVer {
		return
	}
	in.memoVer = v
	in.Blocks = in.live.Blocks.Seq()
	in.blockIdxMemo = nil
	in.domsMemo = nil
	in.decisionMemo = nil
	in.relSplitMemo = nil
	in.factMemo = nil
	in.deltaMemo = nil
}

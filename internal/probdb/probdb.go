// Package probdb implements disjoint-independent probabilistic databases —
// the setting of Dalvi–Suciu [5] that the paper's Section 6 compares its
// FPRAS against. Facts are partitioned into blocks; within a block the
// facts are mutually exclusive alternatives whose probabilities sum to at
// most 1 (the residual mass is "no fact from this block"); distinct blocks
// are independent.
//
// Repairs under primary keys are the special case with uniform
// probabilities 1/|B| and no residual mass, so
// #CQA(Q,Σ)(D) = P(Q) · ∏|B_i| — the approximation-preserving reduction
// #CQA ≤ DisjPDB mentioned after Corollary 6.4. The package provides exact
// query probability by world enumeration and a Karp–Luby style FPRAS over
// the complex sample space of (certificate, world) pairs.
package probdb

import (
	"fmt"
	"iter"
	"math/big"
	"math/rand/v2"

	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
)

// Choice is one alternative of a block: a fact with its probability.
type Choice struct {
	F relational.Fact
	P *big.Rat
}

// Block is a set of mutually exclusive alternatives. If the probabilities
// sum to p < 1, the block contributes no fact with probability 1−p.
type Block struct {
	Name    string
	Choices []Choice
}

// Residual returns 1 − Σ P(choice).
func (b Block) Residual() *big.Rat {
	r := big.NewRat(1, 1)
	for _, c := range b.Choices {
		r.Sub(r, c.P)
	}
	return r
}

// ProbDatabase is a disjoint-independent probabilistic database.
type ProbDatabase struct {
	Blocks []Block
}

// Validate checks that probabilities are positive and sum to at most 1 per
// block.
func (pd *ProbDatabase) Validate() error {
	for bi, b := range pd.Blocks {
		sum := new(big.Rat)
		for ci, c := range b.Choices {
			if c.P.Sign() <= 0 {
				return fmt.Errorf("probdb: block %d choice %d has non-positive probability %s", bi, ci, c.P)
			}
			sum.Add(sum, c.P)
		}
		if sum.Cmp(big.NewRat(1, 1)) > 0 {
			return fmt.Errorf("probdb: block %d probabilities sum to %s > 1", bi, sum)
		}
	}
	return nil
}

// World is one possible world: the chosen alternative per block (-1 means
// the empty choice) with its probability.
type World struct {
	Choice []int
	P      *big.Rat
}

// Facts materializes the world's facts.
func (pd *ProbDatabase) Facts(w []int) []relational.Fact {
	var out []relational.Fact
	for bi, ci := range w {
		if ci >= 0 {
			out = append(out, pd.Blocks[bi].Choices[ci].F)
		}
	}
	return out
}

// Worlds enumerates all possible worlds with their probabilities
// (exponential; ground truth for small databases). Blocks with residual
// mass zero never take the empty choice.
func (pd *ProbDatabase) Worlds() iter.Seq[World] {
	return func(yield func(World) bool) {
		n := len(pd.Blocks)
		choice := make([]int, n)
		// start: all blocks at first alternative, or -1 when a block allows
		// emptiness... simpler: options per block = choices plus empty when
		// residual > 0; iterate odometer over option counts.
		type opt struct {
			indices []int // choice index per option, -1 = empty
			probs   []*big.Rat
		}
		opts := make([]opt, n)
		for bi, b := range pd.Blocks {
			var o opt
			for ci := range b.Choices {
				o.indices = append(o.indices, ci)
				o.probs = append(o.probs, b.Choices[ci].P)
			}
			if r := b.Residual(); r.Sign() > 0 {
				o.indices = append(o.indices, -1)
				o.probs = append(o.probs, r)
			}
			if len(o.indices) == 0 {
				// A block with no choices and no residual is impossible;
				// Validate rejects sums > 1, and an empty block has
				// residual 1, so this cannot happen.
				panic("probdb: block with no options")
			}
			opts[bi] = opt{indices: o.indices, probs: o.probs}
		}
		pos := make([]int, n)
		for {
			p := big.NewRat(1, 1)
			for bi := range pd.Blocks {
				choice[bi] = opts[bi].indices[pos[bi]]
				p.Mul(p, opts[bi].probs[pos[bi]])
			}
			cp := make([]int, n)
			copy(cp, choice)
			if !yield(World{Choice: cp, P: p}) {
				return
			}
			i := n - 1
			for ; i >= 0; i-- {
				pos[i]++
				if pos[i] < len(opts[i].indices) {
					break
				}
				pos[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
}

// QueryProbability computes P(Q) = Σ_W P(W)·[W ⊨ Q] exactly by world
// enumeration. Q must be Boolean; arbitrary FO is supported.
func (pd *ProbDatabase) QueryProbability(q query.Formula) (*big.Rat, error) {
	if fv := query.FreeVars(q); len(fv) > 0 {
		return nil, fmt.Errorf("probdb: query has free variables %v", fv)
	}
	total := new(big.Rat)
	for w := range pd.Worlds() {
		if eval.EvalBoolean(q, eval.NewIndex(pd.Facts(w.Choice))) {
			total.Add(total, w.P)
		}
	}
	return total, nil
}

// FromRepairInstance renders a database with primary keys as the uniform
// disjoint-independent probabilistic database whose possible worlds are
// exactly the repairs: each block's facts get probability 1/|B|, leaving
// no residual mass.
func FromRepairInstance(db *relational.Database, ks *relational.KeySet) *ProbDatabase {
	var out ProbDatabase
	for _, b := range relational.Blocks(db, ks) {
		pb := Block{Name: b.Key.Canonical()}
		for _, f := range b.Facts {
			pb.Choices = append(pb.Choices, Choice{F: f, P: big.NewRat(1, int64(b.Size()))})
		}
		out.Blocks = append(out.Blocks, pb)
	}
	return &out
}

// FromWeights renders a keyed database under per-fact weights (keyed by
// fact canonical string; missing annotations weigh 1) as the
// disjoint-independent probabilistic database of the weighted-repair
// semantics: each block picks one of its facts with probability
// proportional to its weight, leaving no residual mass. Weights are exact
// rationals so the world enumeration stays an exact ground truth — this is
// the reference the interval-arithmetic circuit evaluation of
// internal/repairs is differentially pinned against.
func FromWeights(db *relational.Database, ks *relational.KeySet, w map[string]*big.Rat) (*ProbDatabase, error) {
	var out ProbDatabase
	for _, b := range relational.Blocks(db, ks) {
		pb := Block{Name: b.Key.Canonical()}
		total := new(big.Rat)
		ws := make([]*big.Rat, len(b.Facts))
		for i, f := range b.Facts {
			wi, ok := w[f.Canonical()]
			if !ok {
				wi = big.NewRat(1, 1)
			}
			if wi.Sign() <= 0 {
				return nil, fmt.Errorf("probdb: fact %s has non-positive weight %s", f, wi)
			}
			ws[i] = wi
			total.Add(total, wi)
		}
		for i, f := range b.Facts {
			pb.Choices = append(pb.Choices, Choice{F: f, P: new(big.Rat).Quo(ws[i], total)})
		}
		out.Blocks = append(out.Blocks, pb)
	}
	return &out, nil
}

// KarpLubyUCQ estimates P(Q) for a UCQ with t samples over the complex
// sample space of (certificate, world) pairs, where a certificate is a
// consistent homomorphism image of some disjunct with positive
// probability. This is the estimator the paper contrasts with its simpler
// natural-space FPRAS: sampling possible worlds directly needs
// exponentially many samples when P(Q) is tiny, whereas conditioning on a
// certificate keeps the hit probability at least 1/#certificates.
func (pd *ProbDatabase) KarpLubyUCQ(u query.UCQ, t int, rng *rand.Rand) (*big.Rat, error) {
	if t <= 0 {
		return nil, fmt.Errorf("probdb: sample budget must be positive, got %d", t)
	}
	certs, err := pd.certificates(u)
	if err != nil {
		return nil, err
	}
	if len(certs) == 0 {
		return new(big.Rat), nil
	}
	// w_i = P(certificate facts all present); W = Σ w_i.
	weights := make([]*big.Rat, len(certs))
	W := new(big.Rat)
	for i, c := range certs {
		weights[i] = c.prob(pd)
		W.Add(W, weights[i])
	}
	// Sample certificates proportionally using float64 cumulative weights
	// (estimator remains unbiased in expectation up to float rounding of
	// the sampling distribution; weights here are ratios of small ints).
	cum := make([]float64, len(certs))
	acc := 0.0
	wf, _ := W.Float64()
	for i := range certs {
		v, _ := weights[i].Float64()
		acc += v / wf
		cum[i] = acc
	}
	hits := 0
	for trial := 0; trial < t; trial++ {
		r := rng.Float64()
		ci := 0
		for ci < len(cum)-1 && cum[ci] <= r {
			ci++
		}
		world := pd.sampleWorldGiven(certs[ci], rng)
		// Coverage: is ci the first certificate contained in the world?
		first := -1
		for j, c := range certs {
			if c.containedIn(pd, world) {
				first = j
				break
			}
		}
		if first == ci {
			hits++
		}
	}
	est := new(big.Rat).Mul(W, big.NewRat(int64(hits), int64(t)))
	return est, nil
}

// MonteCarlo estimates P(Q) by sampling possible worlds directly — the
// natural sample space the paper's §6 discussion warns about: when P(Q) is
// tiny, exponentially many samples are needed for a relative-error
// guarantee. It exists as the baseline that motivates both the paper's
// natural-space FPRAS (whose m^k bound fixes the problem for bounded
// keywidth) and the Karp–Luby complex space. Q may be arbitrary FO.
func (pd *ProbDatabase) MonteCarlo(q query.Formula, t int, rng *rand.Rand) (*big.Rat, error) {
	if t <= 0 {
		return nil, fmt.Errorf("probdb: sample budget must be positive, got %d", t)
	}
	if fv := query.FreeVars(q); len(fv) > 0 {
		return nil, fmt.Errorf("probdb: query has free variables %v", fv)
	}
	hits := 0
	for trial := 0; trial < t; trial++ {
		world := pd.sampleWorldGiven(certificate{}, rng)
		if eval.EvalBoolean(q, eval.NewIndex(pd.Facts(world))) {
			hits++
		}
	}
	return big.NewRat(int64(hits), int64(t)), nil
}

// certificate is a Σ-consistent disjunct image: per-block forced choices.
type certificate struct {
	forced map[int]int // block index -> choice index
	key    string
}

// prob returns ∏ P(forced choices).
func (c certificate) prob(pd *ProbDatabase) *big.Rat {
	p := big.NewRat(1, 1)
	for bi, ci := range c.forced {
		p.Mul(p, pd.Blocks[bi].Choices[ci].P)
	}
	return p
}

// containedIn reports whether every forced choice is taken in the world.
func (c certificate) containedIn(pd *ProbDatabase, world []int) bool {
	for bi, ci := range c.forced {
		if world[bi] != ci {
			return false
		}
	}
	return true
}

// sampleWorldGiven draws a world conditioned on the certificate: forced
// blocks are fixed; every other block samples by its own distribution.
func (pd *ProbDatabase) sampleWorldGiven(c certificate, rng *rand.Rand) []int {
	world := make([]int, len(pd.Blocks))
	for bi, b := range pd.Blocks {
		if ci, ok := c.forced[bi]; ok {
			world[bi] = ci
			continue
		}
		r := rng.Float64()
		acc := 0.0
		world[bi] = -1 // falls through to empty when residual mass remains
		for ci, ch := range b.Choices {
			v, _ := ch.P.Float64()
			acc += v
			if r < acc {
				world[bi] = ci
				break
			}
		}
	}
	return world
}

// certificates enumerates the distinct certificates of the UCQ over the
// probabilistic database: homomorphism images of disjuncts that are
// consistent (at most one fact per block).
func (pd *ProbDatabase) certificates(u query.UCQ) ([]certificate, error) {
	// Index all facts with block+choice provenance.
	var facts []relational.Fact
	loc := map[string][2]int{}
	for bi, b := range pd.Blocks {
		for ci, ch := range b.Choices {
			facts = append(facts, ch.F)
			loc[ch.F.Canonical()] = [2]int{bi, ci}
		}
	}
	idx := eval.NewIndex(facts)
	seen := map[string]bool{}
	var out []certificate
	for _, q := range u.Disjuncts {
		for h := range eval.Homs(q, idx) {
			img := eval.Image(q, h)
			forced := map[int]int{}
			ok := true
			for _, f := range img {
				bc := loc[f.Canonical()]
				if prev, dup := forced[bc[0]]; dup && prev != bc[1] {
					ok = false // two alternatives of one block: impossible
					break
				}
				forced[bc[0]] = bc[1]
			}
			if !ok {
				continue
			}
			key := certKey(forced)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, certificate{forced: forced, key: key})
		}
	}
	return out, nil
}

func certKey(forced map[int]int) string {
	// Deterministic encoding of the forced map.
	max := -1
	for bi := range forced {
		if bi > max {
			max = bi
		}
	}
	key := ""
	for bi := 0; bi <= max; bi++ {
		if ci, ok := forced[bi]; ok {
			key += fmt.Sprintf("%d=%d;", bi, ci)
		}
	}
	return key
}

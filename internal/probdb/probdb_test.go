package probdb

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
)

func employeeDB() (*relational.Database, *relational.KeySet) {
	db := relational.MustDatabase(
		relational.NewFact("Employee", "1", "Bob", "HR"),
		relational.NewFact("Employee", "1", "Bob", "IT"),
		relational.NewFact("Employee", "2", "Alice", "IT"),
		relational.NewFact("Employee", "2", "Tim", "IT"),
	)
	return db, relational.Keys(map[string]int{"Employee": 1})
}

func TestFromRepairInstanceUniform(t *testing.T) {
	db, ks := employeeDB()
	pd := FromRepairInstance(db, ks)
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pd.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(pd.Blocks))
	}
	for _, b := range pd.Blocks {
		if b.Residual().Sign() != 0 {
			t.Fatalf("repair blocks must have no residual mass, got %s", b.Residual())
		}
	}
}

func TestQueryProbabilityMatchesRelativeFrequency(t *testing.T) {
	db, ks := employeeDB()
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	pd := FromRepairInstance(db, ks)
	p, err := pd.QueryProbability(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("P(Q) = %s, want 1/2", p)
	}
	// #CQA = P(Q) · ∏|B| — the approximation-preserving reduction.
	in := repairs.MustInstance(db, ks, q)
	count := new(big.Rat).Mul(p, new(big.Rat).SetInt(in.TotalRepairs()))
	if !count.IsInt() || count.Num().Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("P·total = %s, want 2", count)
	}
}

func TestWorldsWithResidualMass(t *testing.T) {
	// One block {A: 1/2, B: 1/4}: worlds A, B, empty with probs 1/2, 1/4,
	// 1/4.
	pd := &ProbDatabase{Blocks: []Block{{
		Name: "b",
		Choices: []Choice{
			{F: relational.NewFact("R", "a"), P: big.NewRat(1, 2)},
			{F: relational.NewFact("R", "b"), P: big.NewRat(1, 4)},
		},
	}}}
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}
	total := new(big.Rat)
	worlds := 0
	for w := range pd.Worlds() {
		worlds++
		total.Add(total, w.P)
	}
	if worlds != 3 {
		t.Fatalf("worlds = %d, want 3", worlds)
	}
	if total.Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("world probabilities sum to %s, want 1", total)
	}
	p, err := pd.QueryProbability(query.MustParse("exists x . R(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cmp(big.NewRat(3, 4)) != 0 {
		t.Fatalf("P(∃R) = %s, want 3/4", p)
	}
}

func TestValidateRejectsBadProbabilities(t *testing.T) {
	pd := &ProbDatabase{Blocks: []Block{{
		Choices: []Choice{
			{F: relational.NewFact("R", "a"), P: big.NewRat(3, 4)},
			{F: relational.NewFact("R", "b"), P: big.NewRat(1, 2)},
		},
	}}}
	if err := pd.Validate(); err == nil {
		t.Fatalf("block probabilities summing to 5/4 accepted")
	}
	pd2 := &ProbDatabase{Blocks: []Block{{
		Choices: []Choice{{F: relational.NewFact("R", "a"), P: big.NewRat(0, 1)}},
	}}}
	if err := pd2.Validate(); err == nil {
		t.Fatalf("zero probability accepted")
	}
}

func TestKarpLubyUCQAccuracy(t *testing.T) {
	db, ks := employeeDB()
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	pd := FromRepairInstance(db, ks)
	u := query.MustToUCQ(q)
	rng := rand.New(rand.NewPCG(21, 22))
	est, err := pd.KarpLubyUCQ(u, 6000, rng)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := est.Float64()
	if v < 0.4 || v > 0.6 {
		t.Fatalf("Karp–Luby P(Q) estimate %.3f far from 1/2", v)
	}
	// No certificates → estimate 0.
	zero, err := pd.KarpLubyUCQ(query.MustToUCQ(query.MustParse("exists x . Missing(x)")), 10, rng)
	if err != nil || zero.Sign() != 0 {
		t.Fatalf("estimate for unsatisfiable query = %v %v", zero, err)
	}
}

func TestMonteCarloPossibleWorlds(t *testing.T) {
	db, ks := employeeDB()
	q := query.MustParse("exists x, y, z . (Employee(1, x, y) & Employee(2, z, y))")
	pd := FromRepairInstance(db, ks)
	rng := rand.New(rand.NewPCG(31, 32))
	est, err := pd.MonteCarlo(q, 8000, rng)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := est.Float64()
	if v < 0.42 || v > 0.58 {
		t.Fatalf("naive MC estimate %.3f far from 1/2", v)
	}
	if _, err := pd.MonteCarlo(q, 0, rng); err == nil {
		t.Fatalf("zero budget accepted")
	}
	if _, err := pd.MonteCarlo(query.MustParse("Employee(1, n, 'IT')"), 5, rng); err == nil {
		t.Fatalf("free variables accepted")
	}
}

// Property: on uniform repair databases, P(Q)·∏|B| equals the exact repair
// count for random instances.
func TestReductionCountPreservingProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		db := relational.MustDatabase()
		nBlocks := 1 + rng.IntN(3)
		letters := []relational.Const{"a", "b"}
		for b := 0; b < nBlocks; b++ {
			sz := 1 + rng.IntN(2)
			for j := 0; j < sz; j++ {
				db.Add(relational.NewFact("R", relational.IntConst(b), letters[rng.IntN(2)]))
			}
		}
		ks := relational.Keys(map[string]int{"R": 1})
		corpus := []string{
			"exists x . R(x, 'a')",
			"exists x, y . (R(x, 'a') & R(y, 'b'))",
			"(exists x . R(x, 'b')) | R(0, 'a')",
		}
		q := query.MustParse(corpus[rng.IntN(len(corpus))])
		in := repairs.MustInstance(db, ks, q)
		exact, _, err := in.CountExact()
		if err != nil {
			return false
		}
		p, err := FromRepairInstance(db, ks).QueryProbability(q)
		if err != nil {
			return false
		}
		viaProb := new(big.Rat).Mul(p, new(big.Rat).SetInt(in.TotalRepairs()))
		return viaProb.IsInt() && viaProb.Num().Cmp(exact) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"fmt"
	"math"
)

// This file implements outward-rounded float64 interval arithmetic, the
// numeric substrate of the weighted circuit evaluation: hardware floats
// round to nearest, so a bottom-up evaluation of a compiled circuit under
// per-fact probabilities accumulates rounding error that a single float64
// silently hides. An Interval instead carries a lower and an upper bound
// and widens every operation by one ulp in each direction, so the true
// real-valued result is guaranteed to lie inside [Lo, Hi] — the caller
// sees exactly how much precision the evaluation lost instead of a
// plausible-looking wrong digit.

// Interval is a closed float64 interval [Lo, Hi] guaranteed to contain the
// exact real result of the computation that produced it.
type Interval struct {
	Lo, Hi float64
}

// ExactInterval returns the degenerate interval [x, x].
func ExactInterval(x float64) Interval { return Interval{Lo: x, Hi: x} }

// down widens a lower bound by one ulp (the directed-rounding surrogate:
// round-to-nearest is within one ulp of round-toward-−∞).
func down(x float64) float64 {
	if math.IsInf(x, -1) {
		return x
	}
	return math.Nextafter(x, math.Inf(-1))
}

// up widens an upper bound by one ulp.
func up(x float64) float64 {
	if math.IsInf(x, 1) {
		return x
	}
	return math.Nextafter(x, math.Inf(1))
}

// Add returns a + b, outward-rounded.
func (a Interval) Add(b Interval) Interval {
	return Interval{Lo: down(a.Lo + b.Lo), Hi: up(a.Hi + b.Hi)}
}

// Sub returns a − b, outward-rounded.
func (a Interval) Sub(b Interval) Interval {
	return Interval{Lo: down(a.Lo - b.Hi), Hi: up(a.Hi - b.Lo)}
}

// Mul returns a × b, outward-rounded. All four endpoint products are
// considered, so negative endpoints are handled correctly even though the
// weighted counters only ever multiply non-negative values.
func (a Interval) Mul(b Interval) Interval {
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return Interval{
		Lo: down(min(min(p1, p2), min(p3, p4))),
		Hi: up(max(max(p1, p2), max(p3, p4))),
	}
}

// Div returns a / b, outward-rounded. b must not contain zero.
func (a Interval) Div(b Interval) (Interval, error) {
	if b.Lo <= 0 && b.Hi >= 0 {
		return Interval{}, fmt.Errorf("core: interval division by %v, which contains zero", b)
	}
	q1, q2, q3, q4 := a.Lo/b.Lo, a.Lo/b.Hi, a.Hi/b.Lo, a.Hi/b.Hi
	return Interval{
		Lo: down(min(min(q1, q2), min(q3, q4))),
		Hi: up(max(max(q1, q2), max(q3, q4))),
	}, nil
}

// Clamp intersects the interval with [lo, hi] — used to restore invariants
// the arithmetic cannot see (probabilities lie in [0, 1]; weighted counts
// are non-negative). Clamping never loses the true value when the invariant
// genuinely holds.
func (a Interval) Clamp(lo, hi float64) Interval {
	return Interval{Lo: math.Max(lo, math.Min(a.Lo, hi)), Hi: math.Min(hi, math.Max(a.Hi, lo))}
}

// Width returns Hi − Lo, the accumulated uncertainty.
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Mid returns the midpoint, the natural point estimate.
func (a Interval) Mid() float64 { return a.Lo + (a.Hi-a.Lo)/2 }

// Contains reports whether x lies in [Lo, Hi].
func (a Interval) Contains(x float64) bool { return a.Lo <= x && x <= a.Hi }

// String renders the interval as [lo, hi].
func (a Interval) String() string { return fmt.Sprintf("[%.17g, %.17g]", a.Lo, a.Hi) }

package core

import (
	"math/big"
	"math/rand/v2"
)

// UniformBigInt draws a uniform random integer in [0, n) using rejection
// sampling over the minimal number of random bits. n must be positive.
func UniformBigInt(rng *rand.Rand, n *big.Int) *big.Int {
	if n.Sign() <= 0 {
		panic("core: UniformBigInt needs n > 0")
	}
	bits := n.BitLen()
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	mask := byte(0xFF >> (uint(bytes*8 - bits)))
	out := new(big.Int)
	for {
		for i := 0; i < bytes; i += 8 {
			v := rng.Uint64()
			for j := 0; j < 8 && i+j < bytes; j++ {
				buf[i+j] = byte(v >> (8 * uint(j)))
			}
		}
		buf[0] &= mask
		out.SetBytes(buf)
		if out.Cmp(n) < 0 {
			return out
		}
	}
}

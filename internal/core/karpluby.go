package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"
)

// This file implements the Karp–Luby union-of-sets estimator over the
// "complex sample space" discussed at the end of §6 and in §7.2 of the
// paper: pairs (box, tuple) rather than plain tuples. It is the estimator
// one inherits from Dalvi–Suciu [5] for disjoint-independent probabilistic
// databases, and the one that still works for SpanLL functions, where the
// natural-sample-space FPRAS of Theorem 6.2 degrades (its m^k sample bound
// is unbounded).
//
// Sampling: draw a box b with probability |box_b| / Σ|box|, then a tuple s
// uniformly inside box_b. Every pair (b,s) has probability 1/W with
// W = Σ|box|; the indicator "b is the first box (in canonical order)
// containing s" succeeds exactly once per tuple in the union, so the hit
// probability is |⋃ boxes| / W ≥ 1/(#boxes), and W·(hits/t) is unbiased.

// KarpLubyBound returns the sample count t = ⌈(2+ε)·b/ε²·ln(2/δ)⌉ that
// suffices for the (ε,δ) guarantee with b boxes (hit probability ≥ 1/b).
func KarpLubyBound(numBoxes int, eps, delta float64) *big.Int {
	if numBoxes == 0 {
		return big.NewInt(1)
	}
	factor := (2 + eps) / (eps * eps) * math.Log(2/delta)
	t := new(big.Float).Mul(big.NewFloat(float64(numBoxes)), big.NewFloat(factor))
	out, _ := t.Int(nil)
	return out.Add(out, big.NewInt(1))
}

// KarpLuby estimates |⋃ boxes| with t samples from the complex sample
// space. Boxes are deduplicated and put in canonical order internally.
func KarpLuby(doms []Domain, boxes []Selector, t int, rng *rand.Rand) (Estimate, error) {
	if t <= 0 {
		return Estimate{}, fmt.Errorf("core: sample budget must be positive, got %d", t)
	}
	boxes = SortSelectors(DedupeSelectors(boxes))
	if len(boxes) == 0 {
		return Estimate{Value: big.NewFloat(0), Samples: t}, nil
	}
	cum, w := cumulativeBoxWeights(doms, boxes)
	if w.Sign() == 0 {
		return Estimate{Value: big.NewFloat(0), Samples: t}, nil
	}
	tuple := make([]Element, len(doms))
	hits := 0
	for trial := 0; trial < t; trial++ {
		if karpLubyTrial(doms, boxes, cum, w, tuple, rng) {
			hits++
		}
	}
	wf := new(big.Float).SetInt(w)
	est := new(big.Float).Quo(
		new(big.Float).Mul(wf, big.NewFloat(float64(hits))),
		big.NewFloat(float64(t)),
	)
	return Estimate{Value: est, Samples: t, Hits: hits}, nil
}

// cumulativeBoxWeights returns the running box-size sums used for weighted
// box selection, plus the total weight W = Σ|box|.
func cumulativeBoxWeights(doms []Domain, boxes []Selector) ([]*big.Int, *big.Int) {
	cum := make([]*big.Int, len(boxes))
	w := new(big.Int)
	for i, b := range boxes {
		w.Add(w, b.BoxSize(doms))
		cum[i] = new(big.Int).Set(w)
	}
	return cum, w
}

// karpLubyTrial runs one trial of the complex-sample-space estimator: draw
// a box with probability proportional to its size, a tuple uniformly
// inside it (written into the reused tuple buffer), and report whether the
// drawn box is the first box (in canonical order) containing the tuple.
func karpLubyTrial(doms []Domain, boxes []Selector, cum []*big.Int, w *big.Int, tuple []Element, rng *rand.Rand) bool {
	r := UniformBigInt(rng, w)
	// Binary search for the first cumulative weight exceeding r.
	lo, hi := 0, len(boxes)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid].Cmp(r) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b := boxes[lo]
	// Uniform tuple inside box b.
	j := 0
	for i, d := range doms {
		if j < len(b) && b[j].Index == i {
			tuple[i] = b[j].Elem
			j++
			continue
		}
		tuple[i] = d.Elems[rng.IntN(d.Size())]
	}
	// Coverage test: is b the first box containing the tuple?
	first := -1
	for i, other := range boxes {
		if other.ContainsTuple(tuple) {
			first = i
			break
		}
	}
	return first == lo
}

// KarpLubyAuto runs KarpLuby with the (ε,δ) sample bound. It works for
// unbounded (SpanLL) compactors, unlike Apx.
func (c *Compactor) KarpLubyAuto(eps, delta float64, rng *rand.Rand) (Estimate, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return Estimate{}, err
	}
	boxes := c.Boxes()
	tBig := KarpLubyBound(len(boxes), eps, delta)
	if !tBig.IsInt64() || tBig.Int64() > MaxApxSamples {
		return Estimate{}, fmt.Errorf("core: Karp–Luby sample bound %s exceeds cap %d", tBig, MaxApxSamples)
	}
	return KarpLuby(c.Doms, boxes, int(tBig.Int64()), rng)
}

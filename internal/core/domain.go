// Package core implements the paper's primary contribution in executable
// form: the Λ-hierarchy machinery of Section 4 — ℓ-selectors, cartesian
// products [S1,...,Sn]_σ ("boxes"), the compact-representation string shape
// [[S1,...,Sn]]_k, logspace k-compactors (Definition 4.1), unfolding, and
// exact counting of unfold_M — together with the approximation engine of
// Section 6: the Sample routine (Algorithm 3), the Apx FPRAS with the
// Chernoff sample bound t = (2+ε)·m^k/ε²·ln(2/δ) (Theorem 6.2), the
// Karp–Luby estimator over the "complex sample space" used for SpanLL
// functions (§7.2), and a naive Monte-Carlo baseline.
//
// Everything is generic over string-encoded solution domains, so the same
// machinery counts repairs (#CQA), satisfying P-assignments (#DisjPoskDNF),
// forbidden colorings (#kForbColoring) and the graph problems of §4.1.
package core

import (
	"fmt"
	"math/big"
	"strings"
)

// Element is a member of a solution domain: a non-empty string encoding of
// one choice (a fact, a variable set to 1, a colored vertex, ...).
type Element string

// Domain is a non-empty, duplicate-free, ordered set of elements — one of
// the solution domains S1,...,Sn of the paper. The order is fixed and
// canonical (it determines the #...# full-listing encoding and tuple
// enumeration order).
type Domain struct {
	// Name identifies the domain for diagnostics (e.g. a block key).
	Name string
	// Elems are the members, in canonical order.
	Elems []Element
}

// NewDomain builds a domain, validating non-emptiness, non-empty elements
// and uniqueness.
func NewDomain(name string, elems ...Element) (Domain, error) {
	d := Domain{Name: name, Elems: elems}
	if err := d.Validate(); err != nil {
		return Domain{}, err
	}
	return d, nil
}

// MustDomain is NewDomain that panics on error.
func MustDomain(name string, elems ...Element) Domain {
	d, err := NewDomain(name, elems...)
	if err != nil {
		panic(err)
	}
	return d
}

// Validate checks the domain invariants: at least one element, no empty
// elements (the compact-string codec relies on it), no duplicates.
func (d Domain) Validate() error {
	if len(d.Elems) == 0 {
		return fmt.Errorf("core: domain %q is empty; the paper requires non-empty solution domains", d.Name)
	}
	seen := make(map[Element]bool, len(d.Elems))
	for _, e := range d.Elems {
		if e == "" {
			return fmt.Errorf("core: domain %q contains an empty element", d.Name)
		}
		if seen[e] {
			return fmt.Errorf("core: domain %q contains duplicate element %q", d.Name, e)
		}
		seen[e] = true
	}
	return nil
}

// Size returns |S_i|.
func (d Domain) Size() int { return len(d.Elems) }

// Index returns the position of e in the domain, or -1.
func (d Domain) Index(e Element) int {
	for i, x := range d.Elems {
		if x == e {
			return i
		}
	}
	return -1
}

// ValidateDomains validates a sequence of domains.
func ValidateDomains(doms []Domain) error {
	for i, d := range doms {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("core: domain %d: %w", i, err)
		}
	}
	return nil
}

// UniverseSize returns |U| = ∏ |S_i| (1 for the empty sequence).
func UniverseSize(doms []Domain) *big.Int {
	n := big.NewInt(1)
	for _, d := range doms {
		n.Mul(n, big.NewInt(int64(d.Size())))
	}
	return n
}

// MaxDomainSize returns m = max_i |S_i| (0 for the empty sequence): the
// quantity in the FPRAS sample bound.
func MaxDomainSize(doms []Domain) int {
	m := 0
	for _, d := range doms {
		if d.Size() > m {
			m = d.Size()
		}
	}
	return m
}

// escElement escapes an element for the compact-string codec: '%', '$' and
// '#' become %25, %24 and %23 so the separators of the paper's shape stay
// unambiguous.
func escElement(e Element) string {
	if !strings.ContainsAny(string(e), "%$#") {
		return string(e)
	}
	var b strings.Builder
	for i := 0; i < len(e); i++ {
		switch e[i] {
		case '%':
			b.WriteString("%25")
		case '$':
			b.WriteString("%24")
		case '#':
			b.WriteString("%23")
		default:
			b.WriteByte(e[i])
		}
	}
	return b.String()
}

// unescElement inverts escElement.
func unescElement(s string) (Element, error) {
	if !strings.Contains(s, "%") {
		return Element(s), nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '%' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("core: dangling escape in %q", s)
		}
		switch s[i : i+3] {
		case "%25":
			b.WriteByte('%')
		case "%24":
			b.WriteByte('$')
		case "%23":
			b.WriteByte('#')
		default:
			return "", fmt.Errorf("core: bad escape %q in %q", s[i:i+3], s)
		}
		i += 3
	}
	return Element(b.String()), nil
}

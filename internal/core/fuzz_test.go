package core

import (
	"testing"
)

// FuzzParseCompact checks that the compact-representation parser of the
// [[S1..Sn]]_k shape never panics and that accepted strings re-encode to
// themselves (the shape has a canonical spelling per selector).
func FuzzParseCompact(f *testing.F) {
	for _, seed := range []string{
		"",
		"a1$b1$c1",
		"#a1$a2#$b1$#c1$c2#",
		"#a1$a2#$#b1$b2$b3#$#c1$c2#",
		"a1$b1$",
		"##",
		"#a1",
		"%24$b1$c1",
		"%2x$b1$c1",
		"a1$$c1",
	} {
		f.Add(seed)
	}
	doms := []Domain{
		MustDomain("S1", "a1", "a2"),
		MustDomain("S2", "b1", "b2", "b3"),
		MustDomain("S3", "c1", "c2"),
	}
	f.Fuzz(func(t *testing.T, s string) {
		sel, valid, err := ParseCompact(doms, 2, s)
		if err != nil || !valid {
			return
		}
		enc := EncodeCompact(doms, sel)
		if enc != s {
			t.Fatalf("accepted %q but canonical spelling is %q", s, enc)
		}
	})
}

package core

import (
	"fmt"
	"math"
	"math/big"
	"sync"
	"sync/atomic"
)

// This file provides the two shared building blocks of the work-stealing
// exact counters: an atomic shard queue (workers steal the next unclaimed
// shard index instead of being assigned a fixed partition up front) and an
// accumulator that stays a machine word until it overflows, so hot counting
// loops never touch big.Int.

// ShardQueue hands out the shard indices 0..n−1 exactly once, in order,
// to any number of concurrent callers. The zero value is an empty queue.
//
// A queue can be stopped: Stop makes every subsequent Next report drained,
// so workers polling the queue wind down at their next claim, and Done
// gives waiters a channel to unblock on without waiting for workers that
// are stalled inside their current shard.
type ShardQueue struct {
	n    int64
	next atomic.Int64
	halt Stop
}

// NewShardQueue returns a queue over n shards.
func NewShardQueue(n int) *ShardQueue { return &ShardQueue{n: int64(n)} }

// Next claims the next unclaimed shard; ok is false when the queue is
// drained or stopped. Safe for concurrent use.
func (q *ShardQueue) Next() (shard int, ok bool) {
	if q.halt.Stopped() {
		return 0, false
	}
	i := q.next.Add(1) - 1
	if i >= q.n {
		return 0, false
	}
	return int(i), true
}

// Stop cancels the queue: unclaimed shards are never handed out, and any
// Drain in progress returns early. Idempotent, safe for concurrent use.
func (q *ShardQueue) Stop() { q.halt.Trigger() }

// Stopped reports whether Stop has been called.
func (q *ShardQueue) Stopped() bool { return q.halt.Stopped() }

// Done returns a channel closed when the queue is stopped.
func (q *ShardQueue) Done() <-chan struct{} { return q.halt.Done() }

// Drain runs fn over every shard of the queue on `workers` goroutines and
// blocks until the work is complete — or until Stop is called, in which
// case it returns early without waiting for workers wedged inside their
// current fn call (their claimed shard may still be executing when Drain
// returns; the queue hands out no further ones). Returns true when every
// shard ran to completion, false on early stop.
func (q *ShardQueue) Drain(workers int, fn func(shard int)) bool {
	if workers < 1 {
		workers = 1
	}
	finished := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					shard, ok := q.Next()
					if !ok {
						return
					}
					fn(shard)
				}
			}()
		}
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return !q.Stopped()
	case <-q.Done():
		return false
	}
}

// Accum is an unsigned counter that lives in a uint64 until it would
// overflow, spilling into a big.Int only then (and at the final read). The
// zero value is 0 and ready to use. Not safe for concurrent use; keep one
// per worker and Merge at the end.
type Accum struct {
	lo uint64
	hi *big.Int // nil until the first spill
}

// Inc adds 1.
func (a *Accum) Inc() { a.Add(1) }

// Add adds n.
func (a *Accum) Add(n uint64) {
	if n > math.MaxUint64-a.lo {
		a.spill()
	}
	a.lo += n
}

// spill moves the machine word into the big part.
func (a *Accum) spill() {
	if a.hi == nil {
		a.hi = new(big.Int)
	}
	var w big.Int
	a.hi.Add(a.hi, w.SetUint64(a.lo))
	a.lo = 0
}

// Merge adds b into a (b is left unchanged).
func (a *Accum) Merge(b *Accum) {
	if b.hi != nil {
		if a.hi == nil {
			a.hi = new(big.Int)
		}
		a.hi.Add(a.hi, b.hi)
	}
	a.Add(b.lo)
}

// Big returns the current total as a fresh big.Int.
func (a *Accum) Big() *big.Int {
	var w big.Int
	w.SetUint64(a.lo)
	if a.hi == nil {
		return &w
	}
	return new(big.Int).Add(a.hi, &w)
}

// SetBig replaces the accumulator's value with v, which must be
// non-negative. Values fitting a machine word stay in the word; larger ones
// live in the big part, so subsequent Adds remain cheap.
func (a *Accum) SetBig(v *big.Int) error {
	if v.Sign() < 0 {
		return fmt.Errorf("core: accumulator cannot hold negative value %s", v)
	}
	if v.IsUint64() {
		a.lo = v.Uint64()
		a.hi = nil
		return nil
	}
	a.lo = 0
	a.hi = new(big.Int).Set(v)
	return nil
}

// MarshalText renders the current total in decimal — the wire form of a
// shard partial. Implements encoding.TextMarshaler.
func (a *Accum) MarshalText() ([]byte, error) {
	return []byte(a.Big().String()), nil
}

// UnmarshalText parses a decimal total produced by MarshalText. Implements
// encoding.TextUnmarshaler; rejects signs, spaces and non-digits.
func (a *Accum) UnmarshalText(text []byte) error {
	s := string(text)
	if len(s) == 0 {
		return fmt.Errorf("core: empty accumulator literal")
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return fmt.Errorf("core: bad accumulator literal %q", s)
		}
	}
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return fmt.Errorf("core: bad accumulator literal %q", s)
	}
	return a.SetBig(v)
}

// SignedAccum accumulates a signed sum of uint64 terms — the ± box sizes
// of an inclusion–exclusion pass — as two machine-word accumulators, so
// the hot loop never touches big.Int: terms of each sign add into their
// own Accum and the balance is formed once at the final read. The zero
// value is 0 and ready to use. Not safe for concurrent use.
type SignedAccum struct {
	pos, neg Accum
}

// Add adds +v.
func (a *SignedAccum) Add(v uint64) { a.pos.Add(v) }

// Sub adds −v.
func (a *SignedAccum) Sub(v uint64) { a.neg.Add(v) }

// Big returns the current balance as a fresh big.Int.
func (a *SignedAccum) Big() *big.Int {
	p := a.pos.Big()
	return p.Sub(p, a.neg.Big())
}

package core

import (
	"fmt"
	"strings"
)

// This file implements the syntactic shape of compact representations
// (paper §4.3): for non-empty sets S1,...,Sn and k ≥ 0, [[S1,...,Sn]]_k is
//
//	{ϵ} ∪ { s1$s2$...$sn | s_i ∈ S_i  or  s_i = #s_i^1$...$s_i^{ℓ_i}#,
//	        and |{i : s_i ∈ S_i}| ≤ k }
//
// A pinned coordinate is written as the chosen element; an unpinned one as
// the full listing of its domain between '#'. Elements are escaped so that
// '$' and '#' inside elements cannot be confused with separators. The empty
// string ϵ is the rejection output (unfolding(ϵ) = ∅).
//
// SpanLL (§7.2) uses the same shape without the ≤ k bound: pass k < 0 to
// mean "unbounded" ([[S1,...,Sn]]).

// Unbounded selects the SpanLL variant [[S1,...,Sn]] of the shape (no bound
// on the number of selected coordinates).
const Unbounded = -1

// EncodeCompact renders the compact representation of the box [S1..Sn]_σ in
// the paper's shape. With n = 0 the encoding is the empty concatenation;
// use the (selector, ok) representation where the ε-ambiguity matters.
func EncodeCompact(doms []Domain, sel Selector) string {
	var b strings.Builder
	j := 0
	for i, d := range doms {
		if i > 0 {
			b.WriteByte('$')
		}
		if j < len(sel) && sel[j].Index == i {
			b.WriteString(escElement(sel[j].Elem))
			j++
			continue
		}
		b.WriteByte('#')
		for t, e := range d.Elems {
			if t > 0 {
				b.WriteByte('$')
			}
			b.WriteString(escElement(e))
		}
		b.WriteByte('#')
	}
	return b.String()
}

// ParseCompact parses a string against the shape [[S1,...,Sn]]_k and
// returns the selector it represents. valid is false for ϵ (the rejection
// output). It is an error if the string is not in the shape: wrong arity,
// a full listing not equal to the domain, a pinned element outside its
// domain, or more than k pinned coordinates (for k ≥ 0).
func ParseCompact(doms []Domain, k int, s string) (sel Selector, valid bool, err error) {
	if s == "" && len(doms) > 0 {
		return nil, false, nil // ϵ
	}
	toks, err := splitCompact(s)
	if err != nil {
		return nil, false, err
	}
	if len(doms) == 0 {
		// The empty domain sequence: the only non-ϵ member is the empty
		// concatenation, which is also "". We treat it as the valid empty
		// selector (see package docs for this corner of the paper's shape).
		if s != "" {
			return nil, false, fmt.Errorf("core: compact string %q for empty domain sequence", s)
		}
		return Selector{}, true, nil
	}
	if len(toks) != len(doms) {
		return nil, false, fmt.Errorf("core: compact string has %d coordinates, want %d", len(toks), len(doms))
	}
	for i, tok := range toks {
		if tok.full {
			if len(tok.list) != doms[i].Size() {
				return nil, false, fmt.Errorf("core: coordinate %d lists %d elements, domain has %d", i, len(tok.list), doms[i].Size())
			}
			for t, e := range tok.list {
				if doms[i].Elems[t] != e {
					return nil, false, fmt.Errorf("core: coordinate %d full listing differs from domain at position %d: %q vs %q", i, t, e, doms[i].Elems[t])
				}
			}
			continue
		}
		if doms[i].Index(tok.elem) < 0 {
			return nil, false, fmt.Errorf("core: coordinate %d pinned to %q, not in domain %q", i, tok.elem, doms[i].Name)
		}
		sel = append(sel, Pin{Index: i, Elem: tok.elem})
	}
	if k >= 0 && len(sel) > k {
		return nil, false, fmt.Errorf("core: compact string selects %d coordinates, exceeding k = %d", len(sel), k)
	}
	return sel, true, nil
}

// compactTok is one coordinate of a compact string: either a single pinned
// element or a full-domain listing.
type compactTok struct {
	full bool
	elem Element   // when !full
	list []Element // when full
}

// splitCompact tokenizes a compact string on top-level '$' separators,
// treating '#...#' groups as single full-listing tokens.
func splitCompact(s string) ([]compactTok, error) {
	var toks []compactTok
	i := 0
	for {
		if i < len(s) && s[i] == '#' {
			// Full listing: scan to the closing '#'.
			j := strings.IndexByte(s[i+1:], '#')
			if j < 0 {
				return nil, fmt.Errorf("core: unterminated '#' listing in %q", s)
			}
			body := s[i+1 : i+1+j]
			var list []Element
			for _, part := range strings.Split(body, "$") {
				e, err := unescElement(part)
				if err != nil {
					return nil, err
				}
				list = append(list, e)
			}
			toks = append(toks, compactTok{full: true, list: list})
			i += j + 2
		} else {
			// Pinned element: up to the next top-level '$' or end.
			j := strings.IndexByte(s[i:], '$')
			var part string
			if j < 0 {
				part = s[i:]
				i = len(s)
			} else {
				part = s[i : i+j]
				i += j
			}
			e, err := unescElement(part)
			if err != nil {
				return nil, err
			}
			toks = append(toks, compactTok{elem: e})
		}
		if i == len(s) {
			return toks, nil
		}
		if s[i] != '$' {
			return nil, fmt.Errorf("core: expected '$' at offset %d of %q", i, s)
		}
		i++
		if i == len(s) {
			// Trailing separator: final coordinate is an empty element,
			// which domains forbid.
			return nil, fmt.Errorf("core: trailing '$' in %q", s)
		}
	}
}

// ValidateCompact checks that s ∈ [[S1,...,Sn]]_k.
func ValidateCompact(doms []Domain, k int, s string) error {
	_, _, err := ParseCompact(doms, k, s)
	return err
}

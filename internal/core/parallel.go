package core

import (
	"fmt"
	"math/big"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the sharded parallel sampling loop for the
// Theorem 6.2 FPRAS and the Karp–Luby estimator. The sample budget is
// split into a fixed number of shards; each shard owns an independent PCG
// stream seeded deterministically from the user seed and the shard number,
// and workers drain shards from a queue. Because the shard → stream and
// shard → sample-count assignments are fixed, the total hit count — and
// therefore the estimate — is identical for every worker count and every
// scheduling, so parallel runs stay exactly reproducible.

// sampleShards is the number of independent PCG streams a parallel
// sampling run is split into. It bounds usable parallelism and is fixed
// (rather than derived from the worker count) so results do not depend on
// GOMAXPROCS.
const sampleShards = 64

// shardStream returns the deterministic RNG of one shard.
func shardStream(seed uint64, shard int) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15+uint64(shard)))
}

// shardSize returns the sample budget of one shard: t split as evenly as
// possible across shards (the first t%shards shards take one extra).
func shardSize(t, shards, shard int) int {
	n := t / shards
	if shard < t%shards {
		n++
	}
	return n
}

// memberFactory returns a per-worker membership predicate: MemberFactory
// when set, the boxes fallback otherwise (stateless, shared safely), and
// Member itself as a last resort for callers that set only Member and
// guarantee it is safe for concurrent use.
func (c *Compactor) memberFactory() func() func([]Element) bool {
	if c.MemberFactory != nil {
		return c.MemberFactory
	}
	if c.Member == nil {
		boxes := c.Boxes()
		shared := func(tuple []Element) bool {
			for _, b := range boxes {
				if b.ContainsTuple(tuple) {
					return true
				}
			}
			return false
		}
		return func() func([]Element) bool { return shared }
	}
	return func() func([]Element) bool { return c.Member }
}

// ApxParallel is Apx with the sampling loop sharded across worker
// goroutines. workers ≤ 0 selects GOMAXPROCS. The result for a fixed seed
// is identical across runs and worker counts.
func (c *Compactor) ApxParallel(eps, delta float64, workers int, seed uint64) (Estimate, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return Estimate{}, err
	}
	if c.K < 0 {
		return Estimate{}, fmt.Errorf("core: ApxParallel needs a bounded k-compactor; %s is unbounded (SpanLL) — use KarpLubyParallel", c.Name)
	}
	m := MaxDomainSize(c.Doms)
	tBig := SampleBound(m, c.K, eps, delta)
	if !tBig.IsInt64() || tBig.Int64() > MaxApxSamples {
		return Estimate{}, fmt.Errorf("core: Apx sample bound %s exceeds cap %d (m=%d, k=%d)", tBig, MaxApxSamples, m, c.K)
	}
	return c.ApxParallelWithSamples(int(tBig.Int64()), workers, seed)
}

// ApxParallelStop is ApxParallel with a cooperative stop flag threaded
// into the sampling loop (see ApxParallelWithSamplesStop).
func (c *Compactor) ApxParallelStop(eps, delta float64, workers int, seed uint64, stop *Stop) (Estimate, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return Estimate{}, err
	}
	if c.K < 0 {
		return Estimate{}, fmt.Errorf("core: ApxParallel needs a bounded k-compactor; %s is unbounded (SpanLL) — use KarpLubyParallel", c.Name)
	}
	m := MaxDomainSize(c.Doms)
	tBig := SampleBound(m, c.K, eps, delta)
	if !tBig.IsInt64() || tBig.Int64() > MaxApxSamples {
		return Estimate{}, fmt.Errorf("core: Apx sample bound %s exceeds cap %d (m=%d, k=%d)", tBig, MaxApxSamples, m, c.K)
	}
	return c.ApxParallelWithSamplesStop(int(tBig.Int64()), workers, seed, stop)
}

// ApxParallelWithSamples runs the Algorithm 3 estimator with an explicit
// sample budget, sharded across worker goroutines with deterministic
// per-shard PCG streams. workers ≤ 0 selects GOMAXPROCS.
func (c *Compactor) ApxParallelWithSamples(t, workers int, seed uint64) (Estimate, error) {
	return c.ApxParallelWithSamplesStop(t, workers, seed, nil)
}

// ApxParallelWithSamplesStop is ApxParallelWithSamples polling a
// cooperative stop flag between sample batches: a fired stop abandons the
// run with ErrStopped instead of finishing the budget, so deadlines free
// sampling workers mid-estimate. A nil stop never fires; results for a
// fixed seed are unchanged by the polling.
func (c *Compactor) ApxParallelWithSamplesStop(t, workers int, seed uint64, stop *Stop) (Estimate, error) {
	if t <= 0 {
		return Estimate{}, fmt.Errorf("core: sample budget must be positive, got %d", t)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := sampleShards
	if t < shards {
		shards = t
	}
	factory := c.memberFactory()
	jobs := make(chan int)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			member := factory()
			tuple := make([]Element, len(c.Doms))
			local := int64(0)
			for shard := range jobs {
				if stop.Stopped() {
					continue // keep draining so the producer never blocks
				}
				rng := shardStream(seed, shard)
				for i := shardSize(t, shards, shard); i > 0; i-- {
					if i&(stopStride-1) == 0 && stop.Stopped() {
						break
					}
					for j, d := range c.Doms {
						tuple[j] = d.Elems[rng.IntN(d.Size())]
					}
					if member(tuple) {
						local++
					}
				}
			}
			hits.Add(local)
		}()
	}
	for shard := 0; shard < shards; shard++ {
		select {
		case jobs <- shard:
		case <-stop.Done(): // nil stop: nil channel, never fires
			shard = shards
		}
	}
	close(jobs)
	wg.Wait()
	if stop.Stopped() {
		return Estimate{}, ErrStopped
	}
	u := new(big.Float).SetInt(UniverseSize(c.Doms))
	est := new(big.Float).Quo(
		new(big.Float).Mul(u, big.NewFloat(float64(hits.Load()))),
		big.NewFloat(float64(t)),
	)
	return Estimate{Value: est, Samples: t, Hits: int(hits.Load())}, nil
}

// KarpLubyParallel estimates |⋃ boxes| with t samples from the complex
// sample space, sharded across worker goroutines with deterministic
// per-shard PCG streams. workers ≤ 0 selects GOMAXPROCS. The result for a
// fixed seed is identical across runs and worker counts.
func KarpLubyParallel(doms []Domain, boxes []Selector, t, workers int, seed uint64) (Estimate, error) {
	if t <= 0 {
		return Estimate{}, fmt.Errorf("core: sample budget must be positive, got %d", t)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	boxes = SortSelectors(DedupeSelectors(boxes))
	if len(boxes) == 0 {
		return Estimate{Value: big.NewFloat(0), Samples: t}, nil
	}
	cum, w := cumulativeBoxWeights(doms, boxes)
	if w.Sign() == 0 {
		return Estimate{Value: big.NewFloat(0), Samples: t}, nil
	}
	shards := sampleShards
	if t < shards {
		shards = t
	}
	jobs := make(chan int)
	var hits atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tuple := make([]Element, len(doms))
			local := int64(0)
			for shard := range jobs {
				rng := shardStream(seed, shard)
				for i := shardSize(t, shards, shard); i > 0; i-- {
					if karpLubyTrial(doms, boxes, cum, w, tuple, rng) {
						local++
					}
				}
			}
			hits.Add(local)
		}()
	}
	for shard := 0; shard < shards; shard++ {
		jobs <- shard
	}
	close(jobs)
	wg.Wait()
	wf := new(big.Float).SetInt(w)
	est := new(big.Float).Quo(
		new(big.Float).Mul(wf, big.NewFloat(float64(hits.Load()))),
		big.NewFloat(float64(t)),
	)
	return Estimate{Value: est, Samples: t, Hits: int(hits.Load())}, nil
}

package core

import (
	"fmt"
	"math"
	"math/big"
)

// This file computes unfold_M(x) = |⋃_c unfolding(M(x,c))| exactly, in two
// independent ways that cross-validate each other:
//
//  1. inclusion–exclusion over the distinct boxes (fast when the number of
//     distinct boxes is moderate; exact for any domain sizes), and
//  2. direct enumeration of the universe U = S1×...×Sn with a membership
//     test (exponential in n; the ground truth for small instances).

// DefaultIENodeBudget bounds the number of subset nodes the
// inclusion–exclusion DFS may visit before giving up.
const DefaultIENodeBudget = 8_000_000

// ErrBudget is returned when an exact counter exceeds its work budget.
var ErrBudget = fmt.Errorf("core: exact count exceeds work budget")

// CountUnionIE computes |⋃_b [S1..Sn]_b| by inclusion–exclusion over the
// boxes with empty-intersection pruning: the DFS enumerates exactly the
// subsets of boxes with non-empty intersection (intersections of boxes are
// boxes; incompatible merges prune whole subtrees soundly because
// intersections only shrink). budget ≤ 0 selects DefaultIENodeBudget.
//
// When the universe Π|S_i| fits a uint64 — so every box size does too —
// the signed partial products accumulate in a machine-word SignedAccum and
// each node's box size is one exact division (|U| over the pinned domain
// sizes) instead of an O(n) big.Int product; the big path remains for
// larger universes.
func CountUnionIE(doms []Domain, boxes []Selector, budget int) (*big.Int, error) {
	return CountUnionIEStop(doms, boxes, budget, nil)
}

// CountUnionIEStop is CountUnionIE polling a cooperative stop flag every
// stopStride subset nodes, returning ErrStopped when it fires mid-DFS. A
// nil stop never fires.
func CountUnionIEStop(doms []Domain, boxes []Selector, budget int, stop *Stop) (*big.Int, error) {
	if budget <= 0 {
		budget = DefaultIENodeBudget
	}
	boxes = DedupeSelectors(boxes)
	universe, fits := universeU64(doms)
	var acc SignedAccum
	total := new(big.Int)
	nodes := 0
	var rec func(start int, cur Selector, sign int) error
	rec = func(start int, cur Selector, sign int) error {
		for i := start; i < len(boxes); i++ {
			merged, ok := cur.Merge(boxes[i])
			if !ok {
				continue
			}
			nodes++
			if nodes > budget {
				return ErrBudget
			}
			if nodes&(stopStride-1) == 0 && stop.Stopped() {
				return ErrStopped
			}
			if fits {
				// Pinned coordinates are distinct, so the product of their
				// domain sizes divides |U| exactly and stays ≤ |U|.
				den := uint64(1)
				for _, p := range merged {
					den *= uint64(doms[p.Index].Size())
				}
				if sign > 0 {
					acc.Add(universe / den)
				} else {
					acc.Sub(universe / den)
				}
			} else {
				sz := merged.BoxSize(doms)
				if sign > 0 {
					total.Add(total, sz)
				} else {
					total.Sub(total, sz)
				}
			}
			if err := rec(i+1, merged, -sign); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, nil, 1); err != nil {
		return nil, err
	}
	if fits {
		return acc.Big(), nil
	}
	return total, nil
}

// universeU64 returns Π|S_i| when it fits a uint64.
func universeU64(doms []Domain) (uint64, bool) {
	u := uint64(1)
	for _, d := range doms {
		s := uint64(d.Size())
		if s != 0 && u > math.MaxUint64/s {
			return 0, false
		}
		u *= s
	}
	return u, true
}

// CountUnionEnum computes |⋃_b [S1..Sn]_b| by enumerating U and testing
// membership; member defaults to a test against the boxes. It fails with
// ErrBudget when |U| exceeds the budget (≤ 0 selects 4,000,000).
func CountUnionEnum(doms []Domain, boxes []Selector, member func([]Element) bool, budget int) (*big.Int, error) {
	if budget <= 0 {
		budget = 4_000_000
	}
	u := UniverseSize(doms)
	if u.Cmp(big.NewInt(int64(budget))) > 0 {
		return nil, ErrBudget
	}
	if member == nil {
		member = func(tuple []Element) bool {
			for _, b := range boxes {
				if b.ContainsTuple(tuple) {
					return true
				}
			}
			return false
		}
	}
	count := new(big.Int)
	one := big.NewInt(1)
	for tuple := range EnumerateUniverse(doms) {
		if member(tuple) {
			count.Add(count, one)
		}
	}
	return count, nil
}

// EnumerateUniverse iterates over U = S1×...×Sn in lexicographic order.
// The yielded tuple is reused; copy it if retained. The empty domain
// sequence yields exactly one empty tuple.
func EnumerateUniverse(doms []Domain) func(yield func([]Element) bool) {
	return func(yield func([]Element) bool) {
		n := len(doms)
		idx := make([]int, n)
		tuple := make([]Element, n)
		for {
			for i := range doms {
				tuple[i] = doms[i].Elems[idx[i]]
			}
			if !yield(tuple) {
				return
			}
			i := n - 1
			for ; i >= 0; i-- {
				idx[i]++
				if idx[i] < doms[i].Size() {
					break
				}
				idx[i] = 0
			}
			if i < 0 {
				return
			}
		}
	}
}

// CountExact computes unfold_M(x) by inclusion–exclusion over the
// compactor's distinct boxes.
func (c *Compactor) CountExact() (*big.Int, error) {
	return CountUnionIE(c.Doms, c.Boxes(), 0)
}

// CountExactEnum computes unfold_M(x) by universe enumeration, using the
// compactor's membership predicate; ground truth for small instances.
func (c *Compactor) CountExactEnum() (*big.Int, error) {
	return CountUnionEnum(c.Doms, c.Boxes(), c.MemberFunc(), 0)
}

package core

import (
	"math/big"
	"sync"
)

// BigArena is a reusable arena of big.Int accumulators for bottom-up
// circuit evaluation: a compiled d-DNNF is counted by assigning every node
// one big-int value in topological order, and a fresh []big.Int per count
// would allocate a slice plus one limb array per node on every recount —
// exactly the O(|circuit|) hot path the circuits exist to make cheap. An
// arena keeps the slice and the grown limb arrays alive between counts;
// big.Int.Set-style writes into the recycled values reuse their storage.
//
// Arenas are not safe for concurrent use; grab one per evaluation from
// GetBigArena and return it with PutBigArena (a sync.Pool, so parallel
// component evaluations each get their own).
type BigArena struct {
	vals []big.Int
}

// Vals returns n zero-valued accumulators, growing the arena as needed.
// The returned slice is valid until the next Vals call; values keep their
// previously grown limb storage (SetInt64(0) on reuse, not reallocation).
func (a *BigArena) Vals(n int) []big.Int {
	if cap(a.vals) < n {
		grown := make([]big.Int, n)
		copy(grown, a.vals[:cap(a.vals)])
		a.vals = grown
	}
	vals := a.vals[:n]
	for i := range vals {
		vals[i].SetInt64(0)
	}
	return vals
}

var bigArenaPool = sync.Pool{New: func() any { return new(BigArena) }}

// GetBigArena fetches a warm arena from the shared pool.
func GetBigArena() *BigArena { return bigArenaPool.Get().(*BigArena) }

// PutBigArena returns an arena to the pool. The caller must not retain
// slices obtained from Vals past this point.
func PutBigArena(a *BigArena) { bigArenaPool.Put(a) }

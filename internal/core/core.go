package core

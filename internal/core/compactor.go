package core

import (
	"fmt"
	"iter"
)

// Certificate is a candidate small certificate: any value whose validity
// and compaction the problem defines. The paper bounds certificates to
// O(log |x|) bits, which makes the candidate space polynomial; here the
// Certificates enumerator plays that role directly.
type Certificate any

// Compactor is Definition 4.1 made executable: a (logspace) k-compactor for
// one input instance x. It exposes the solution domains S1,...,Sn computed
// from x, enumerates candidate certificates, and maps each candidate to
// either ϵ (invalid) or a compact representation of the box [S1..Sn]_σc —
// returned as the selector σc, with EncodeCompact providing the paper's
// exact string shape.
//
// unfold_M(x) = |⋃_c unfolding(M(x,c))| is computed by CountExact /
// CountExactEnum and approximated by Apx (Theorem 6.2).
type Compactor struct {
	// Name identifies the problem instance for diagnostics.
	Name string
	// Doms are the solution domains S1,...,Sn.
	Doms []Domain
	// K bounds the selector length (kw for #CQA). K = Unbounded selects the
	// SpanLL variant (§7.2) where selectors may pin any number of
	// coordinates.
	K int
	// Certificates enumerates the candidate certificates; it may be called
	// multiple times and must yield the same sequence each time.
	Certificates func() iter.Seq[Certificate]
	// Compact implements the check+compact steps: it returns the selector
	// determined by a valid certificate, or ok=false for ϵ.
	Compact func(Certificate) (Selector, bool)
	// Member, if non-nil, reports whether a solution tuple lies in
	// ⋃_c unfolding(M(x,c)) directly (e.g. "does this repair entail Q").
	// When nil, membership is decided against the materialized boxes.
	Member func(tuple []Element) bool
	// MemberFactory, if non-nil, returns a fresh membership predicate that
	// shares no mutable state with any other; parallel samplers call it
	// once per worker. A Member built from scratch state (a compiled
	// matcher) must come with a factory; a stateless Member may leave it
	// nil.
	MemberFactory func() func(tuple []Element) bool
}

// Validate checks structural invariants: domains valid, every certificate's
// selector valid for the domains and within the K bound. It materializes
// all boxes, so it is meant for tests and small instances.
func (c *Compactor) Validate() error {
	if err := ValidateDomains(c.Doms); err != nil {
		return fmt.Errorf("core: compactor %s: %w", c.Name, err)
	}
	for cert := range c.Certificates() {
		sel, ok := c.Compact(cert)
		if !ok {
			continue
		}
		if _, err := NewSelector(c.Doms, sel...); err != nil {
			return fmt.Errorf("core: compactor %s: certificate %v: %w", c.Name, cert, err)
		}
		if c.K >= 0 && sel.Len() > c.K {
			return fmt.Errorf("core: compactor %s: certificate %v selects %d coordinates, exceeding k = %d", c.Name, cert, sel.Len(), c.K)
		}
		// The encoded string must be a member of the paper's shape.
		if err := ValidateCompact(c.Doms, c.K, EncodeCompact(c.Doms, sel)); err != nil {
			return fmt.Errorf("core: compactor %s: certificate %v: %w", c.Name, cert, err)
		}
	}
	return nil
}

// Boxes materializes the distinct boxes induced by the valid certificates,
// in canonical selector order.
func (c *Compactor) Boxes() []Selector {
	var sels []Selector
	for cert := range c.Certificates() {
		if sel, ok := c.Compact(cert); ok {
			sels = append(sels, sel)
		}
	}
	return SortSelectors(DedupeSelectors(sels))
}

// MemberFunc returns the membership predicate: the explicit Member if set,
// otherwise a test against the materialized boxes.
func (c *Compactor) MemberFunc() func([]Element) bool {
	if c.Member != nil {
		return c.Member
	}
	boxes := c.Boxes()
	return func(tuple []Element) bool {
		for _, b := range boxes {
			if b.ContainsTuple(tuple) {
				return true
			}
		}
		return false
	}
}

// HasSolution reports whether unfold_M(x) > 0: some certificate is valid.
// This is the paper's "small certificate ⟹ decision in L" argument
// (Theorem 4.3): only the certificate space is searched, never the
// exponential solution space.
func (c *Compactor) HasSolution() bool {
	for cert := range c.Certificates() {
		if _, ok := c.Compact(cert); ok {
			return true
		}
	}
	return false
}

// EffectiveK returns the bound actually achieved by the instance's boxes
// (max selector length), which never exceeds K for a valid k-compactor.
func (c *Compactor) EffectiveK() int {
	k := 0
	for _, b := range c.Boxes() {
		if b.Len() > k {
			k = b.Len()
		}
	}
	return k
}

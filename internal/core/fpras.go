package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"
)

// This file implements Section 6 of the paper: the Sample routine
// (Algorithm 3) and the Apx fully polynomial-time randomized approximation
// scheme of Theorem 6.2 for functions in Λ[k].
//
// Sample draws a tuple uniformly from the natural sample space
// U = S1×...×Sn and reports whether it lies in some unfolding; the key
// inequality f(x)/|U| ≥ 1/m^k (every valid certificate leaves at most k
// coordinates pinned, so its box has at least |U|/m^k tuples) makes the
// hit probability polynomially bounded below, so
// t = (2+ε)·m^k/ε² · ln(2/δ) samples suffice by Chernoff's inequality.

// Estimate is the outcome of a randomized counting run.
type Estimate struct {
	// Value approximates f(x).
	Value *big.Float
	// Samples is the number of trials t used.
	Samples int
	// Hits is the number of successful trials.
	Hits int
}

// Float64 returns the estimate as a float64 (may overflow to +Inf for
// astronomically large counts).
func (e Estimate) Float64() float64 {
	v, _ := e.Value.Float64()
	return v
}

// SampleOnce is one trial of Algorithm 3: draw s_i ∈ S_i uniformly and
// independently for every i, and report whether (s1,...,sn) belongs to
// ⋃_c unfolding(M(x,c)).
func SampleOnce(doms []Domain, member func([]Element) bool, rng *rand.Rand) bool {
	tuple := make([]Element, len(doms))
	for i, d := range doms {
		tuple[i] = d.Elems[rng.IntN(d.Size())]
	}
	return member(tuple)
}

// SampleBound returns the paper's sample count
//
//	t = ⌈ (2+ε)·m^k / ε² · ln(2/δ) ⌉
//
// as a big integer (it grows like m^k).
func SampleBound(m, k int, eps, delta float64) *big.Int {
	mk := new(big.Float).SetInt(new(big.Int).Exp(big.NewInt(int64(m)), big.NewInt(int64(k)), nil))
	factor := (2 + eps) / (eps * eps) * math.Log(2/delta)
	t := new(big.Float).Mul(mk, big.NewFloat(factor))
	out, _ := t.Int(nil)
	return out.Add(out, big.NewInt(1)) // ceil
}

// MaxApxSamples caps the number of samples Apx will actually run; the
// theoretical t is polynomial for fixed k but can still be impractically
// large for big m^k.
const MaxApxSamples = 50_000_000

// Apx is the FPRAS of Theorem 6.2 applied to the compactor: it runs
// t = (2+ε)·m^k/ε²·ln(2/δ) independent Sample trials and returns
// |U| · (hits/t). The guarantee is Pr(|Apx − f(x)| ≤ ε·f(x)) ≥ 1−δ.
// It fails if the compactor is unbounded (K = Unbounded; SpanLL functions
// need the Karp–Luby sampler instead — see §7.2) or if t exceeds
// MaxApxSamples.
func (c *Compactor) Apx(eps, delta float64, rng *rand.Rand) (Estimate, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return Estimate{}, err
	}
	if c.K < 0 {
		return Estimate{}, fmt.Errorf("core: Apx needs a bounded k-compactor; %s is unbounded (SpanLL) — use KarpLuby", c.Name)
	}
	m := MaxDomainSize(c.Doms)
	tBig := SampleBound(m, c.K, eps, delta)
	if !tBig.IsInt64() || tBig.Int64() > MaxApxSamples {
		return Estimate{}, fmt.Errorf("core: Apx sample bound %s exceeds cap %d (m=%d, k=%d)", tBig, MaxApxSamples, m, c.K)
	}
	return c.ApxWithSamples(int(tBig.Int64()), rng)
}

// ApxWithSamples runs the Algorithm 3 estimator with an explicit sample
// budget (used by the benchmark harness to compare samplers at equal
// budgets; the Theorem 6.2 guarantee holds only for t ≥ SampleBound).
func (c *Compactor) ApxWithSamples(t int, rng *rand.Rand) (Estimate, error) {
	if t <= 0 {
		return Estimate{}, fmt.Errorf("core: sample budget must be positive, got %d", t)
	}
	member := c.MemberFunc()
	hits := 0
	for i := 0; i < t; i++ {
		if SampleOnce(c.Doms, member, rng) {
			hits++
		}
	}
	u := new(big.Float).SetInt(UniverseSize(c.Doms))
	est := new(big.Float).Quo(
		new(big.Float).Mul(u, big.NewFloat(float64(hits))),
		big.NewFloat(float64(t)),
	)
	return Estimate{Value: est, Samples: t, Hits: hits}, nil
}

func checkEpsDelta(eps, delta float64) error {
	if eps <= 0 {
		return fmt.Errorf("core: ε must be positive, got %g", eps)
	}
	if delta <= 0 || delta >= 1 {
		return fmt.Errorf("core: δ must be in (0,1), got %g", delta)
	}
	return nil
}

// RelativeError returns |est − truth| / truth for a positive exact count;
// it returns +Inf when truth is zero and est is not.
func RelativeError(est *big.Float, truth *big.Int) float64 {
	t := new(big.Float).SetInt(truth)
	if truth.Sign() == 0 {
		if est.Sign() == 0 {
			return 0
		}
		return math.Inf(1)
	}
	diff := new(big.Float).Sub(est, t)
	diff.Abs(diff)
	rel, _ := new(big.Float).Quo(diff, t).Float64()
	return rel
}

package core

import (
	"iter"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func doms3() []Domain {
	return []Domain{
		MustDomain("S1", "a1", "a2"),
		MustDomain("S2", "b1", "b2", "b3"),
		MustDomain("S3", "c1", "c2"),
	}
}

func TestDomainValidation(t *testing.T) {
	if _, err := NewDomain("empty"); err == nil {
		t.Fatalf("empty domain accepted")
	}
	if _, err := NewDomain("dup", "x", "x"); err == nil {
		t.Fatalf("duplicate element accepted")
	}
	if _, err := NewDomain("blank", "x", ""); err == nil {
		t.Fatalf("empty element accepted")
	}
	d := MustDomain("ok", "x", "y")
	if d.Index("y") != 1 || d.Index("z") != -1 {
		t.Fatalf("Index broken")
	}
}

func TestUniverseSizeAndMax(t *testing.T) {
	ds := doms3()
	if got := UniverseSize(ds); got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("|U| = %s, want 12", got)
	}
	if MaxDomainSize(ds) != 3 {
		t.Fatalf("m = %d, want 3", MaxDomainSize(ds))
	}
	if got := UniverseSize(nil); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty product must be 1, got %s", got)
	}
}

func TestSelectorValidation(t *testing.T) {
	ds := doms3()
	if _, err := NewSelector(ds, Pin{0, "a1"}, Pin{2, "c2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSelector(ds, Pin{0, "nope"}); err == nil {
		t.Fatalf("element outside domain accepted")
	}
	if _, err := NewSelector(ds, Pin{5, "a1"}); err == nil {
		t.Fatalf("index out of range accepted")
	}
	if _, err := NewSelector(ds, Pin{0, "a1"}, Pin{0, "a2"}); err == nil {
		t.Fatalf("duplicate index accepted")
	}
	// Pins get sorted.
	s := MustSelector(ds, Pin{2, "c1"}, Pin{0, "a2"})
	if s[0].Index != 0 || s[1].Index != 2 {
		t.Fatalf("pins not sorted: %v", s)
	}
}

func TestSelectorMergeAndBoxSize(t *testing.T) {
	ds := doms3()
	s := MustSelector(ds, Pin{0, "a1"})
	u := MustSelector(ds, Pin{1, "b2"})
	merged, ok := s.Merge(u)
	if !ok || merged.Len() != 2 {
		t.Fatalf("merge failed: %v %v", merged, ok)
	}
	if got := merged.BoxSize(ds); got.Cmp(big.NewInt(2)) != 0 {
		t.Fatalf("box size = %s, want 2", got)
	}
	conflict := MustSelector(ds, Pin{0, "a2"})
	if _, ok := s.Merge(conflict); ok {
		t.Fatalf("conflicting merge accepted")
	}
	if got := Selector(nil).BoxSize(ds); got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("empty selector box = %s, want |U| = 12", got)
	}
}

func TestSelectorContainsTuple(t *testing.T) {
	ds := doms3()
	s := MustSelector(ds, Pin{0, "a1"}, Pin{2, "c2"})
	if !s.ContainsTuple([]Element{"a1", "b3", "c2"}) {
		t.Fatalf("tuple agreeing with pins rejected")
	}
	if s.ContainsTuple([]Element{"a2", "b3", "c2"}) {
		t.Fatalf("tuple disagreeing with pin accepted")
	}
}

func TestEncodeParseCompactRoundTrip(t *testing.T) {
	ds := doms3()
	sels := []Selector{
		nil,
		MustSelector(ds, Pin{0, "a2"}),
		MustSelector(ds, Pin{0, "a1"}, Pin{2, "c1"}),
		MustSelector(ds, Pin{0, "a1"}, Pin{1, "b2"}, Pin{2, "c1"}),
	}
	for _, s := range sels {
		enc := EncodeCompact(ds, s)
		got, valid, err := ParseCompact(ds, Unbounded, enc)
		if err != nil || !valid {
			t.Fatalf("parse %q: %v %v", enc, valid, err)
		}
		if got.Canonical() != s.Canonical() {
			t.Fatalf("round trip changed selector: %q vs %q", got.Canonical(), s.Canonical())
		}
	}
	// The paper's shape example: full listings between '#'.
	enc := EncodeCompact(ds, MustSelector(ds, Pin{1, "b1"}))
	want := "#a1$a2#$b1$#c1$c2#"
	if enc != want {
		t.Fatalf("encoding = %q, want %q", enc, want)
	}
}

func TestParseCompactEpsilonAndErrors(t *testing.T) {
	ds := doms3()
	if _, valid, err := ParseCompact(ds, 2, ""); err != nil || valid {
		t.Fatalf("ε must parse as invalid-output: %v %v", valid, err)
	}
	bad := []string{
		"a1$b1",                  // wrong arity
		"a1$b1$c1$c2",            // wrong arity
		"zz$#b1$b2$b3#$#c1$c2#",  // pinned element not in domain
		"#a1#$#b1$b2$b3#$c1",     // full listing missing elements
		"#a2$a1#$#b1$b2$b3#$c1",  // full listing out of order
		"#a1$a2#$#b1$b2$b3#$c1$", // trailing separator
		"#a1$a2$#b1$b2$b3#$c1",   // unterminated listing
	}
	for _, s := range bad {
		if _, _, err := ParseCompact(ds, Unbounded, s); err == nil {
			t.Errorf("ParseCompact(%q) accepted, want error", s)
		}
	}
	// k-bound enforcement.
	full := EncodeCompact(ds, MustSelector(ds, Pin{0, "a1"}, Pin{1, "b1"}))
	if _, _, err := ParseCompact(ds, 1, full); err == nil {
		t.Fatalf("selector of length 2 accepted with k = 1")
	}
	if _, valid, err := ParseCompact(ds, 2, full); err != nil || !valid {
		t.Fatalf("selector of length 2 rejected with k = 2: %v", err)
	}
}

func TestCompactEscaping(t *testing.T) {
	ds := []Domain{
		MustDomain("weird", "a$b", "c#d", "e%f"),
		MustDomain("plain", "x"),
	}
	s := MustSelector(ds, Pin{0, "a$b"})
	enc := EncodeCompact(ds, s)
	got, valid, err := ParseCompact(ds, Unbounded, enc)
	if err != nil || !valid || got.Canonical() != s.Canonical() {
		t.Fatalf("escaped round trip failed: %q -> %v %v %v", enc, got, valid, err)
	}
	s2 := MustSelector(ds, Pin{1, "x"})
	enc2 := EncodeCompact(ds, s2)
	got2, valid, err := ParseCompact(ds, Unbounded, enc2)
	if err != nil || !valid || got2.Canonical() != s2.Canonical() {
		t.Fatalf("escaped full-listing round trip failed: %q: %v %v", enc2, valid, err)
	}
}

// toyCompactor builds a compactor whose certificates are the given
// selectors (all valid).
func toyCompactor(name string, ds []Domain, k int, sels []Selector) *Compactor {
	return &Compactor{
		Name: name,
		Doms: ds,
		K:    k,
		Certificates: func() iter.Seq[Certificate] {
			return func(yield func(Certificate) bool) {
				for i := range sels {
					if !yield(i) {
						return
					}
				}
			}
		},
		Compact: func(c Certificate) (Selector, bool) {
			return sels[c.(int)], true
		},
	}
}

func TestCountUnionBasic(t *testing.T) {
	ds := doms3()
	// Two overlapping boxes: pin0=a1 (size 6) and pin2=c1 (size 6),
	// intersection size 3 → union 9.
	boxes := []Selector{
		MustSelector(ds, Pin{0, "a1"}),
		MustSelector(ds, Pin{2, "c1"}),
	}
	ie, err := CountUnionIE(ds, boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ie.Cmp(big.NewInt(9)) != 0 {
		t.Fatalf("IE union = %s, want 9", ie)
	}
	en, err := CountUnionEnum(ds, boxes, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if en.Cmp(ie) != 0 {
		t.Fatalf("enum disagrees: %s vs %s", en, ie)
	}
	// Duplicate boxes must not change the count.
	ie2, err := CountUnionIE(ds, append(boxes, boxes[0]), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ie2.Cmp(ie) != 0 {
		t.Fatalf("duplicates changed IE count: %s", ie2)
	}
	// No boxes: empty union.
	zero, err := CountUnionIE(ds, nil, 0)
	if err != nil || zero.Sign() != 0 {
		t.Fatalf("empty union = %s, %v", zero, err)
	}
}

func TestCountUnionEmptySelector(t *testing.T) {
	ds := doms3()
	// A box with the empty selector is the whole universe.
	u, err := CountUnionIE(ds, []Selector{nil, MustSelector(ds, Pin{0, "a1"})}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("union with universe box = %s, want 12", u)
	}
}

// randomBoxes builds random selectors over random small domains.
func randomBoxes(rng *rand.Rand) ([]Domain, []Selector) {
	n := 1 + rng.IntN(4)
	ds := make([]Domain, n)
	for i := range ds {
		sz := 1 + rng.IntN(3)
		elems := make([]Element, sz)
		for j := range elems {
			elems[j] = Element(string(rune('a'+i)) + string(rune('0'+j)))
		}
		ds[i] = MustDomain("D", elems...)
	}
	nb := rng.IntN(6)
	boxes := make([]Selector, 0, nb)
	for b := 0; b < nb; b++ {
		var pins []Pin
		for i := range ds {
			if rng.IntN(2) == 0 {
				pins = append(pins, Pin{i, ds[i].Elems[rng.IntN(ds[i].Size())]})
			}
		}
		boxes = append(boxes, MustSelector(ds, pins...))
	}
	return ds, boxes
}

// Property: inclusion–exclusion and enumeration agree on random boxes.
func TestCountUnionIEAgreesWithEnumProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		ds, boxes := randomBoxes(rng)
		ie, err := CountUnionIE(ds, boxes, 0)
		if err != nil {
			return false
		}
		en, err := CountUnionEnum(ds, boxes, nil, 0)
		if err != nil {
			return false
		}
		return ie.Cmp(en) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactorValidateAndCounts(t *testing.T) {
	ds := doms3()
	sels := []Selector{
		MustSelector(ds, Pin{0, "a1"}, Pin{1, "b1"}),
		MustSelector(ds, Pin{1, "b2"}),
	}
	c := toyCompactor("toy", ds, 2, sels)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	en, err := c.CountExactEnum()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cmp(en) != 0 {
		t.Fatalf("IE %s vs enum %s", exact, en)
	}
	// box1: 2 tuples (a1,b1,*); box2: 4 tuples (*,b2,*); disjoint → 6.
	if exact.Cmp(big.NewInt(6)) != 0 {
		t.Fatalf("exact = %s, want 6", exact)
	}
	if !c.HasSolution() {
		t.Fatalf("HasSolution must be true")
	}
	if c.EffectiveK() != 2 {
		t.Fatalf("EffectiveK = %d", c.EffectiveK())
	}
	// A compactor exceeding its K bound fails validation.
	bad := toyCompactor("bad", ds, 1, sels)
	if err := bad.Validate(); err == nil {
		t.Fatalf("K violation not caught")
	}
}

func TestCompactorNoCertificates(t *testing.T) {
	ds := doms3()
	c := toyCompactor("none", ds, 0, nil)
	exact, err := c.CountExact()
	if err != nil || exact.Sign() != 0 {
		t.Fatalf("want 0, got %s %v", exact, err)
	}
	if c.HasSolution() {
		t.Fatalf("HasSolution must be false")
	}
}

func TestApxAccuracy(t *testing.T) {
	ds := doms3()
	sels := []Selector{
		MustSelector(ds, Pin{0, "a1"}, Pin{1, "b1"}),
		MustSelector(ds, Pin{1, "b2"}),
		MustSelector(ds, Pin{2, "c2"}),
	}
	c := toyCompactor("apx", ds, 2, sels)
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(42, 42))
	est, err := c.Apx(0.1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel := RelativeError(est.Value, exact); rel > 0.1 {
		t.Fatalf("relative error %.4f exceeds ε = 0.1 (est %v, exact %s)", rel, est.Value, exact)
	}
	if est.Samples <= 0 || est.Hits <= 0 || est.Hits > est.Samples {
		t.Fatalf("bad sample accounting: %+v", est)
	}
}

func TestApxRejectsUnboundedAndBadParams(t *testing.T) {
	ds := doms3()
	c := toyCompactor("unb", ds, Unbounded, nil)
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := c.Apx(0.1, 0.1, rng); err == nil {
		t.Fatalf("Apx accepted an unbounded compactor")
	}
	c2 := toyCompactor("ok", ds, 0, nil)
	if _, err := c2.Apx(-1, 0.1, rng); err == nil {
		t.Fatalf("Apx accepted ε ≤ 0")
	}
	if _, err := c2.Apx(0.1, 1.5, rng); err == nil {
		t.Fatalf("Apx accepted δ ≥ 1")
	}
}

func TestSampleBoundGrowsLikeMk(t *testing.T) {
	t2 := SampleBound(2, 2, 0.1, 0.1)
	t4 := SampleBound(2, 4, 0.1, 0.1)
	// Quadrupling m^k must roughly quadruple t.
	ratio := new(big.Float).Quo(new(big.Float).SetInt(t4), new(big.Float).SetInt(t2))
	r, _ := ratio.Float64()
	if r < 3.5 || r > 4.5 {
		t.Fatalf("t(m^4)/t(m^2) = %.2f, want ≈ 4", r)
	}
}

func TestKarpLubyAgreesWithExact(t *testing.T) {
	ds := doms3()
	sels := []Selector{
		MustSelector(ds, Pin{0, "a1"}, Pin{1, "b1"}),
		MustSelector(ds, Pin{1, "b2"}),
		MustSelector(ds, Pin{0, "a2"}, Pin{2, "c1"}),
	}
	c := toyCompactor("kl", ds, 2, sels)
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	est, err := c.KarpLubyAuto(0.1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rel := RelativeError(est.Value, exact); rel > 0.1 {
		t.Fatalf("Karp–Luby relative error %.4f > 0.1 (est %v, exact %s)", rel, est.Value, exact)
	}
	// Zero boxes → zero estimate, no error.
	empty, err := KarpLuby(ds, nil, 10, rng)
	if err != nil || empty.Value.Sign() != 0 {
		t.Fatalf("empty union estimate = %v, %v", empty.Value, err)
	}
}

func TestUniformBigInt(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	n := big.NewInt(10)
	counts := make([]int, 10)
	const trials = 10000
	for i := 0; i < trials; i++ {
		v := UniformBigInt(rng, n)
		if v.Sign() < 0 || v.Cmp(n) >= 0 {
			t.Fatalf("UniformBigInt out of range: %s", v)
		}
		counts[v.Int64()]++
	}
	for d, c := range counts {
		if c < trials/20 || c > trials/5 {
			t.Fatalf("digit %d sampled %d/%d times; far from uniform", d, c, trials)
		}
	}
	// A large modulus still lands in range.
	big1 := new(big.Int).Lsh(big.NewInt(1), 130)
	v := UniformBigInt(rng, big1)
	if v.Sign() < 0 || v.Cmp(big1) >= 0 {
		t.Fatalf("large UniformBigInt out of range")
	}
}

func TestEnumerateUniverse(t *testing.T) {
	ds := doms3()
	n := 0
	last := ""
	for tuple := range EnumerateUniverse(ds) {
		n++
		cur := string(tuple[0]) + "|" + string(tuple[1]) + "|" + string(tuple[2])
		if cur <= last && n > 1 {
			t.Fatalf("universe enumeration not lexicographic: %q after %q", cur, last)
		}
		last = cur
	}
	if n != 12 {
		t.Fatalf("enumerated %d tuples, want 12", n)
	}
	// Empty sequence: exactly one empty tuple.
	n = 0
	for range EnumerateUniverse(nil) {
		n++
	}
	if n != 1 {
		t.Fatalf("empty universe yields %d tuples, want 1", n)
	}
}

// Property: Apx with the theorem's sample bound achieves ε-relative error
// in at least a (1−δ)-fraction of trials, over a batch of fixed seeds.
func TestApxGuaranteeStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	ds := doms3()
	sels := []Selector{
		MustSelector(ds, Pin{0, "a1"}, Pin{1, "b3"}),
		MustSelector(ds, Pin{1, "b2"}, Pin{2, "c1"}),
	}
	c := toyCompactor("stat", ds, 2, sels)
	exact, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	const eps, delta = 0.2, 0.2
	const trials = 60
	ok := 0
	for seed := 0; seed < trials; seed++ {
		rng := rand.New(rand.NewPCG(uint64(seed), 1000))
		est, err := c.Apx(eps, delta, rng)
		if err != nil {
			t.Fatal(err)
		}
		if RelativeError(est.Value, exact) <= eps {
			ok++
		}
	}
	// Expect ≥ (1−δ)·trials successes; allow slack for statistical noise
	// (the bound is conservative in practice, so this rarely binds).
	if ok < int(float64(trials)*(1-2*delta)) {
		t.Fatalf("ε-accuracy in %d/%d trials; guarantee 1−δ = %.2f violated badly", ok, trials, 1-delta)
	}
}

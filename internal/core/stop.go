package core

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrStopped is returned by counting and sampling runs that were canceled
// through a Stop before completing.
var ErrStopped = errors.New("core: run canceled")

// stopStride is the polling period of the hot loops, in states/nodes/
// samples: a power of two, so the poll condition compiles to a mask, and
// large enough that the rare atomic load vanishes against the loop body.
const stopStride = 1 << 12

// Stop is a cooperative cancellation flag shared by the workers of one
// counting or sampling run: deadline and disconnect handling trigger it
// once, and the hot loops poll it at a coarse stride (the Gray walkers,
// the IE subset DFS, the sampling batches and the shard-queue drain all
// check it), so a canceled run frees its workers within a bounded number
// of states instead of running to completion.
//
// The zero value is ready to use. A nil *Stop is valid everywhere and
// never fires, so un-canceled paths thread nil without allocating.
type Stop struct {
	fired atomic.Bool

	mu   sync.Mutex
	done chan struct{} // lazily created; closed by Trigger
}

// Trigger fires the stop. Idempotent and safe for concurrent use; a nil
// receiver is a no-op.
func (s *Stop) Trigger() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.fired.Load() {
		s.fired.Store(true)
		if s.done != nil {
			close(s.done)
		}
	}
	s.mu.Unlock()
}

// Stopped reports whether Trigger has fired. One atomic load; nil
// receivers report false, so hot loops poll without a nil check.
func (s *Stop) Stopped() bool { return s != nil && s.fired.Load() }

// Done returns a channel closed when the stop fires — the select-friendly
// form of Stopped. A nil receiver returns a nil channel (which never
// fires), so select arms stay valid without guards.
func (s *Stop) Done() <-chan struct{} {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done == nil {
		s.done = make(chan struct{})
		if s.fired.Load() {
			close(s.done)
		}
	}
	return s.done
}

// Err returns ErrStopped when the stop has fired, nil otherwise.
func (s *Stop) Err() error {
	if s.Stopped() {
		return ErrStopped
	}
	return nil
}

package core

import (
	"math"
	"math/big"
	"sync"
	"testing"
	"time"
)

func TestShardQueueDrainsOnceConcurrently(t *testing.T) {
	const n = 1000
	q := NewShardQueue(n)
	var mu sync.Mutex
	claimed := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, ok := q.Next()
				if !ok {
					return
				}
				mu.Lock()
				claimed[s]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for s, c := range claimed {
		if c != 1 {
			t.Fatalf("shard %d claimed %d times", s, c)
		}
	}
	if _, ok := q.Next(); ok {
		t.Fatal("drained queue yielded a shard")
	}
}

func TestShardQueueEmpty(t *testing.T) {
	var q ShardQueue
	if _, ok := q.Next(); ok {
		t.Fatal("zero-value queue yielded a shard")
	}
}

func TestShardQueueStop(t *testing.T) {
	q := NewShardQueue(1000)
	if _, ok := q.Next(); !ok {
		t.Fatal("fresh queue is empty")
	}
	q.Stop()
	if _, ok := q.Next(); ok {
		t.Fatal("stopped queue yielded a shard")
	}
	if !q.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	select {
	case <-q.Done():
	default:
		t.Fatal("Done() channel open after Stop")
	}
	q.Stop() // idempotent
}

func TestShardQueueDrainCompletes(t *testing.T) {
	const n = 100
	q := NewShardQueue(n)
	var mu sync.Mutex
	seen := make(map[int]int)
	if ok := q.Drain(4, func(s int) {
		mu.Lock()
		seen[s]++
		mu.Unlock()
	}); !ok {
		t.Fatal("Drain of an unstopped queue reported early stop")
	}
	if len(seen) != n {
		t.Fatalf("Drain ran %d shards, want %d", len(seen), n)
	}
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("shard %d ran %d times", s, c)
		}
	}
}

// TestShardQueueDrainUnblocksOnStalledWorker is the satellite contract:
// a worker wedged forever inside its shard cannot hold Drain hostage once
// the queue is stopped.
func TestShardQueueDrainUnblocksOnStalledWorker(t *testing.T) {
	q := NewShardQueue(8)
	stall := make(chan struct{})      // never closed until cleanup
	entered := make(chan struct{}, 8) // signals a worker reached the stall
	done := make(chan bool, 1)
	go func() {
		done <- q.Drain(2, func(s int) {
			if s == 0 {
				entered <- struct{}{}
				<-stall // wedged worker: simulates a hung shard
			}
		})
	}()
	<-entered // a worker is now stalled inside shard 0
	q.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("stopped Drain reported full completion")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not unblock after Stop with a stalled worker")
	}
	close(stall) // release the wedged goroutine
}

func TestAccumMatchesBigInt(t *testing.T) {
	var a Accum
	ref := new(big.Int)
	add := func(n uint64) {
		a.Add(n)
		ref.Add(ref, new(big.Int).SetUint64(n))
	}
	add(0)
	add(1)
	add(math.MaxUint64) // forces a spill
	add(math.MaxUint64)
	add(12345)
	for i := 0; i < 100; i++ {
		add(math.MaxUint64 / 3)
	}
	if a.Big().Cmp(ref) != 0 {
		t.Fatalf("accum %s, reference %s", a.Big(), ref)
	}

	var b Accum
	for i := 0; i < 10; i++ {
		b.Inc()
	}
	b.Merge(&a)
	ref.Add(ref, big.NewInt(10))
	if b.Big().Cmp(ref) != 0 {
		t.Fatalf("merged accum %s, reference %s", b.Big(), ref)
	}
	// Merge leaves the argument unchanged and Big is a fresh value.
	ref.Sub(ref, big.NewInt(10))
	if a.Big().Cmp(ref) != 0 {
		t.Fatalf("merge mutated its argument: %s vs %s", a.Big(), ref)
	}
	a.Big().SetInt64(0)
	if a.Big().Cmp(ref) != 0 {
		t.Fatal("Big returned aliased state")
	}
}

func TestAccumTextCodec(t *testing.T) {
	values := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(math.MaxInt64),
		new(big.Int).SetUint64(math.MaxUint64),
		new(big.Int).Lsh(big.NewInt(1), 64), // smallest value needing the hi word
		new(big.Int).Lsh(big.NewInt(7), 300),
	}
	for _, v := range values {
		var a Accum
		if err := a.SetBig(v); err != nil {
			t.Fatalf("SetBig(%s): %v", v, err)
		}
		if a.Big().Cmp(v) != 0 {
			t.Fatalf("SetBig(%s) reads back %s", v, a.Big())
		}
		text, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		if string(text) != v.String() {
			t.Fatalf("marshal(%s) = %q", v, text)
		}
		var b Accum
		b.Add(99) // stale state must be overwritten
		if err := b.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		if b.Big().Cmp(v) != 0 {
			t.Fatalf("round trip %s -> %s", v, b.Big())
		}
	}

	var a Accum
	if err := a.SetBig(big.NewInt(-1)); err == nil {
		t.Fatal("negative SetBig accepted")
	}
	for _, bad := range []string{"", "-1", "1x", " 1", "1 ", "0x10", "1.5"} {
		var b Accum
		if err := b.UnmarshalText([]byte(bad)); err == nil {
			t.Fatalf("UnmarshalText(%q) accepted", bad)
		}
	}
}

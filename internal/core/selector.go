package core

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Pin fixes coordinate Index of the domain sequence to Elem: one pair (i,e)
// of an ℓ-selector.
type Pin struct {
	Index int
	Elem  Element
}

// Selector is an ℓ-selector for a sequence of domains S1,...,Sn (paper
// §4.1): a sequence of pairs (i1,e1),...,(iℓ,eℓ) with strictly increasing
// indices and e_j ∈ S_{i_j}. It determines the box [S1,...,Sn]_σ: the
// cartesian product with the pinned coordinates replaced by singletons.
type Selector []Pin

// NewSelector sorts the pins by index and validates against the domains:
// indices in range and strictly increasing (no duplicates), elements
// members of their domain.
func NewSelector(doms []Domain, pins ...Pin) (Selector, error) {
	s := make(Selector, len(pins))
	copy(s, pins)
	sort.Slice(s, func(i, j int) bool { return s[i].Index < s[j].Index })
	for j, p := range s {
		if p.Index < 0 || p.Index >= len(doms) {
			return nil, fmt.Errorf("core: selector pin index %d out of range [0,%d)", p.Index, len(doms))
		}
		if j > 0 && s[j-1].Index == p.Index {
			return nil, fmt.Errorf("core: selector pins coordinate %d twice", p.Index)
		}
		if doms[p.Index].Index(p.Elem) < 0 {
			return nil, fmt.Errorf("core: selector pins coordinate %d to %q, not a member of domain %q", p.Index, p.Elem, doms[p.Index].Name)
		}
	}
	return s, nil
}

// MustSelector is NewSelector that panics on error.
func MustSelector(doms []Domain, pins ...Pin) Selector {
	s, err := NewSelector(doms, pins...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns ℓ, the number of pinned coordinates.
func (s Selector) Len() int { return len(s) }

// Pinned returns the element coordinate i is pinned to, if any.
func (s Selector) Pinned(i int) (Element, bool) {
	for _, p := range s {
		if p.Index == i {
			return p.Elem, true
		}
		if p.Index > i {
			break
		}
	}
	return "", false
}

// Canonical returns an injective string encoding of the selector.
func (s Selector) Canonical() string {
	var b strings.Builder
	for j, p := range s {
		if j > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d=%s", p.Index, escElement(p.Elem))
	}
	return b.String()
}

// Merge intersects two boxes: the result selects the union of the pins.
// ok is false when the boxes are disjoint (some coordinate pinned to two
// different elements). Merging is the engine of the inclusion–exclusion
// count: [S]_σ ∩ [S]_τ = [S]_{σ∪τ} when compatible, ∅ otherwise.
func (s Selector) Merge(t Selector) (Selector, bool) {
	out := make(Selector, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i].Index < t[j].Index:
			out = append(out, s[i])
			i++
		case s[i].Index > t[j].Index:
			out = append(out, t[j])
			j++
		default:
			if s[i].Elem != t[j].Elem {
				return nil, false
			}
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out, true
}

// BoxSize returns |[S1,...,Sn]_σ| = ∏_{i unpinned} |S_i|.
func (s Selector) BoxSize(doms []Domain) *big.Int {
	n := big.NewInt(1)
	j := 0
	for i, d := range doms {
		if j < len(s) && s[j].Index == i {
			j++
			continue
		}
		n.Mul(n, big.NewInt(int64(d.Size())))
	}
	return n
}

// ContainsTuple reports whether the tuple (one element per domain) lies in
// the box [S1,...,Sn]_σ, i.e. agrees with every pin. The caller guarantees
// tuple[i] ∈ S_i.
func (s Selector) ContainsTuple(tuple []Element) bool {
	for _, p := range s {
		if tuple[p.Index] != p.Elem {
			return false
		}
	}
	return true
}

// DedupeSelectors drops duplicate selectors (same canonical form),
// preserving first-seen order. Distinct certificates frequently induce the
// same box; counting works on distinct boxes.
func DedupeSelectors(sels []Selector) []Selector {
	seen := make(map[string]bool, len(sels))
	out := sels[:0:0]
	for _, s := range sels {
		c := s.Canonical()
		if seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, s)
	}
	return out
}

// SortSelectors orders selectors by canonical form, establishing the fixed
// order the Karp–Luby estimator uses for its "minimal covering box" test.
func SortSelectors(sels []Selector) []Selector {
	sort.Slice(sels, func(i, j int) bool { return sels[i].Canonical() < sels[j].Canonical() })
	return sels
}

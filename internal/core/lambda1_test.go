package core

import (
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCountUnionOnePinBasics(t *testing.T) {
	ds := doms3()
	// Pins a1 at coord 0 and b2 at coord 1:
	// |U| = 12, avoid = (2−1)·(3−1)·2 = 4 → union = 8.
	boxes := []Selector{
		MustSelector(ds, Pin{0, "a1"}),
		MustSelector(ds, Pin{1, "b2"}),
	}
	got, err := CountUnionOnePin(ds, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(big.NewInt(8)) != 0 {
		t.Fatalf("closed form = %s, want 8", got)
	}
	ie, err := CountUnionIE(ds, boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(ie) != 0 {
		t.Fatalf("closed form %s vs IE %s", got, ie)
	}
}

func TestCountUnionOnePinEdgeCases(t *testing.T) {
	ds := doms3()
	// No boxes: empty union.
	got, err := CountUnionOnePin(ds, nil)
	if err != nil || got.Sign() != 0 {
		t.Fatalf("empty union = %v %v", got, err)
	}
	// An empty selector swallows the universe.
	got, err = CountUnionOnePin(ds, []Selector{nil})
	if err != nil || got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("universe box = %v %v", got, err)
	}
	// Two pins in one box: out of scope.
	if _, err := CountUnionOnePin(ds, []Selector{MustSelector(ds, Pin{0, "a1"}, Pin{1, "b1"})}); err != ErrNotOnePin {
		t.Fatalf("want ErrNotOnePin, got %v", err)
	}
	// Pinning every element of a domain covers U entirely.
	boxes := []Selector{
		MustSelector(ds, Pin{0, "a1"}),
		MustSelector(ds, Pin{0, "a2"}),
	}
	got, err = CountUnionOnePin(ds, boxes)
	if err != nil || got.Cmp(big.NewInt(12)) != 0 {
		t.Fatalf("full-domain pins = %v %v, want 12", got, err)
	}
}

// Property: the Λ[1] closed form agrees with inclusion–exclusion on random
// one-pin boxes.
func TestOnePinAgreesWithIEProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 139))
		n := 1 + rng.IntN(4)
		ds := make([]Domain, n)
		for i := range ds {
			sz := 1 + rng.IntN(4)
			elems := make([]Element, sz)
			for j := range elems {
				elems[j] = Element(string(rune('a'+i)) + string(rune('0'+j)))
			}
			ds[i] = MustDomain("D", elems...)
		}
		var boxes []Selector
		for b := 0; b < rng.IntN(6); b++ {
			if rng.IntN(8) == 0 {
				boxes = append(boxes, nil) // occasional universe box
				continue
			}
			i := rng.IntN(n)
			boxes = append(boxes, MustSelector(ds, Pin{i, ds[i].Elems[rng.IntN(ds[i].Size())]}))
		}
		cf, err := CountUnionOnePin(ds, boxes)
		if err != nil {
			return false
		}
		ie, err := CountUnionIE(ds, boxes, 0)
		if err != nil {
			return false
		}
		return cf.Cmp(ie) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactorLambda1(t *testing.T) {
	ds := doms3()
	c := toyCompactor("l1", ds, 1, []Selector{
		MustSelector(ds, Pin{0, "a1"}),
		MustSelector(ds, Pin{2, "c2"}),
	})
	cf, err := c.CountExactLambda1()
	if err != nil {
		t.Fatal(err)
	}
	ie, err := c.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if cf.Cmp(ie) != 0 {
		t.Fatalf("Λ[1] closed form %s vs IE %s", cf, ie)
	}
}

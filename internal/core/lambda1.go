package core

import (
	"fmt"
	"math/big"
)

// This file implements the executable content of Theorem 4.4(1):
// Λ[1] ⊆ #L (⊆ FP). When every box pins at most one coordinate, the union
// has a closed form: a tuple avoids all boxes iff, at every coordinate, it
// avoids that coordinate's pinned elements, so
//
//	|⋃ boxes| = |U| − ∏_i (|S_i| − |P_i|),
//
// where P_i is the set of elements pinned at coordinate i by some box —
// unless some box pins nothing, in which case the union is all of U.
// Counting is a product of linear scans: the Λ[1] regime is genuinely
// polynomial (E11 uses this as an ablation against inclusion–exclusion).

// ErrNotOnePin is returned when a box pins more than one coordinate.
var ErrNotOnePin = fmt.Errorf("core: box pins more than one coordinate; Λ[1] closed form does not apply")

// CountUnionOnePin computes |⋃ boxes| in linear time for boxes with at
// most one pin each (the Λ[1] shape).
func CountUnionOnePin(doms []Domain, boxes []Selector) (*big.Int, error) {
	pinned := make([]map[Element]bool, len(doms))
	for _, b := range boxes {
		switch b.Len() {
		case 0:
			// The empty selector's box is the whole universe.
			return UniverseSize(doms), nil
		case 1:
			p := b[0]
			if p.Index < 0 || p.Index >= len(doms) {
				return nil, fmt.Errorf("core: pin index %d out of range", p.Index)
			}
			if pinned[p.Index] == nil {
				pinned[p.Index] = map[Element]bool{}
			}
			pinned[p.Index][p.Elem] = true
		default:
			return nil, ErrNotOnePin
		}
	}
	u := UniverseSize(doms)
	avoid := big.NewInt(1)
	for i, d := range doms {
		avoid.Mul(avoid, big.NewInt(int64(d.Size()-len(pinned[i]))))
	}
	return u.Sub(u, avoid), nil
}

// CountExactLambda1 computes unfold_M via the closed form; it fails with
// ErrNotOnePin when the compactor is not a 1-compactor in effect.
func (c *Compactor) CountExactLambda1() (*big.Int, error) {
	return CountUnionOnePin(c.Doms, c.Boxes())
}

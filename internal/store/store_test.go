package store_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repaircount/internal/eval"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/repairs"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// fixture bundles one workload instance with a query, covering every
// generator family of the workload package.
type fixture struct {
	name string
	db   *relational.Database
	ks   *relational.KeySet
	q    query.Formula
}

func fixtures(t testing.TB) []fixture {
	t.Helper()
	var out []fixture

	rng := rand.New(rand.NewPCG(7, 1))
	db, ks := workload.Employee(rng, 200, 5, 0.4)
	out = append(out, fixture{"employee", db, ks, workload.SameDeptQuery(1, 2)})

	db, ks = workload.PairsDatabase(8)
	out = append(out, fixture{"pairs", db, ks, query.MustParse("exists x . R(x, 'a')")})

	db, ks, q := workload.MultiComponent(4, 2, 2)
	out = append(out, fixture{"multicomponent", db, ks, q})

	rng = rand.New(rand.NewPCG(7, 2))
	db, ks, err := workload.Generate(rng, []workload.RelationSpec{
		{Pred: "R", KeyWidth: 1, Arity: 3, NumBlocks: 30, BlockSizes: workload.Uniform{Lo: 1, Hi: 3}, NumValues: 4},
		{Pred: "S", KeyWidth: 2, Arity: 3, NumBlocks: 20, BlockSizes: workload.Zipf{S: 1.5, V: 1, Max: 4}, NumValues: 4},
		{Pred: "U", KeyWidth: 0, Arity: 2, NumBlocks: 10, BlockSizes: workload.Fixed{N: 1}, NumValues: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, fixture{"generated", db, ks,
		query.MustParse("exists x, y, z . (R(x, y, 'v0') & S(z, y, 'v1'))")})

	qk, ksk := workload.KeywidthQuery(2)
	rng = rand.New(rand.NewPCG(7, 3))
	out = append(out, fixture{"keywidth", workload.KeywidthDatabase(rng, 2, 3, 2), ksk, qk})

	// A key over a predicate absent from the data (round-trips through the
	// extra-key section) plus an empty-ish relation mix.
	db, ks, err = relational.ParseInstanceString(`
key Employee 1
key Ghost 2
Employee(1, 'Bob Smith', HR)
Employee(1, Bob, IT)
Nokey(a, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, fixture{"quoted-and-ghost-key", db, ks,
		query.MustParse("exists x, y . Employee(x, y, 'IT')")})

	return out
}

// roundTrip writes the instance to a .cqs file and opens it.
func roundTrip(t testing.TB, db *relational.Database, ks *relational.KeySet) *store.Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "instance.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snap.Close() })
	return snap
}

// loadedInstance builds a repairs.Instance over the snapshot's borrowed
// structures (the OpenSnapshot path of the public API).
func loadedInstance(t testing.TB, snap *store.Snapshot, q query.Formula) *repairs.Instance {
	t.Helper()
	db, err := snap.Database()
	if err != nil {
		t.Fatal(err)
	}
	ks, err := snap.Keys()
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := snap.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := snap.Index()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := repairs.NewPreparedInstance(db, ks, q, blocks, idx)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// homSet collects the consistent homomorphism images of every disjunct as
// canonical strings (one sorted multiset per disjunct).
func homSet(u query.UCQ, idx *eval.Index, ks *relational.KeySet) []string {
	var out []string
	for _, cq := range u.Disjuncts {
		var imgs []string
		for h := range eval.ConsistentHoms(cq, idx, ks) {
			facts := eval.Image(cq, h)
			relational.SortFacts(facts)
			parts := make([]string, len(facts))
			for i, f := range facts {
				parts[i] = f.Canonical()
			}
			imgs = append(imgs, strings.Join(parts, ";"))
		}
		sort.Strings(imgs)
		out = append(out, strings.Join(imgs, " | "))
	}
	return out
}

// TestSnapshotDifferential is the load-vs-parse differential: for every
// workload fixture, writing a snapshot and loading it back must reproduce
// the block partition, the hom sets, and the exact, factorized and FPRAS
// counts of the parsed path bit for bit.
func TestSnapshotDifferential(t *testing.T) {
	for _, fix := range fixtures(t) {
		t.Run(fix.name, func(t *testing.T) {
			snap := roundTrip(t, fix.db, fix.ks)
			ldb, err := snap.Database()
			if err != nil {
				t.Fatal(err)
			}

			// Database content round-trips (canonical order on both sides).
			pf, lf := fix.db.Facts(), ldb.Facts()
			if len(pf) != len(lf) {
				t.Fatalf("loaded %d facts, parsed %d", len(lf), len(pf))
			}
			for i := range pf {
				if !pf[i].Equal(lf[i]) {
					t.Fatalf("fact %d: loaded %v, parsed %v", i, lf[i], pf[i])
				}
				if !ldb.Contains(pf[i]) {
					t.Fatalf("loaded database misses %v", pf[i])
				}
			}
			if ldb.Contains(relational.NewFact("NoSuchPred", "x")) {
				t.Fatal("loaded database contains a foreign fact")
			}
			lks, err := snap.Keys()
			if err != nil {
				t.Fatal(err)
			}
			if got, want := lks.String(), fix.ks.String(); got != want {
				t.Fatalf("key set round-trip: got %q, want %q", got, want)
			}

			// The text codec round-trips through the snapshot.
			var pt, lt bytes.Buffer
			if err := relational.WriteInstance(&pt, fix.db, fix.ks); err != nil {
				t.Fatal(err)
			}
			if err := relational.WriteInstance(&lt, ldb, lks); err != nil {
				t.Fatal(err)
			}
			if pt.String() != lt.String() {
				t.Fatal("text rendering differs after snapshot round-trip")
			}

			// Block partition: identical sequence, keys and fact order.
			want := relational.Blocks(fix.db, fix.ks)
			got, err := snap.Blocks()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("loaded %d blocks, parsed %d", len(got), len(want))
			}
			for i := range want {
				if !got[i].Key.Equal(want[i].Key) {
					t.Fatalf("block %d: key %v, want %v", i, got[i].Key, want[i].Key)
				}
				if len(got[i].Facts) != len(want[i].Facts) {
					t.Fatalf("block %d: %d facts, want %d", i, len(got[i].Facts), len(want[i].Facts))
				}
				for j := range want[i].Facts {
					if !got[i].Facts[j].Equal(want[i].Facts[j]) {
						t.Fatalf("block %d fact %d: %v, want %v", i, j, got[i].Facts[j], want[i].Facts[j])
					}
				}
			}

			// Instances: parsed path vs loaded path.
			pin := repairs.MustInstance(fix.db, fix.ks, fix.q)
			lin := loadedInstance(t, snap, fix.q)

			if p, l := pin.TotalRepairs(), lin.TotalRepairs(); p.Cmp(l) != 0 {
				t.Fatalf("total repairs: loaded %s, parsed %s", l, p)
			}
			pn, palgo, perr := pin.CountExact()
			ln, lalgo, lerr := lin.CountExact()
			if (perr == nil) != (lerr == nil) {
				t.Fatalf("CountExact errors diverge: parsed %v, loaded %v", perr, lerr)
			}
			if perr == nil && (pn.Cmp(ln) != 0 || palgo != lalgo) {
				t.Fatalf("CountExact: loaded %s (%s), parsed %s (%s)", ln, lalgo, pn, palgo)
			}
			if pin.HasRepairEntailing() != lin.HasRepairEntailing() {
				t.Fatal("decision #CQA>0 diverges")
			}

			if pin.IsEP {
				// Hom sets per disjunct over both indexes.
				if ph, lh := homSet(pin.UCQ, pin.Idx, fix.ks), homSet(lin.UCQ, lin.Idx, lin.Keys); !slicesEqual(ph, lh) {
					t.Fatalf("hom sets diverge:\nparsed: %v\nloaded: %v", ph, lh)
				}
				// Factorized engine on the loaded instance.
				pfc, perr := pin.CountFactorizedParallel(0, 0)
				lfc, lerr := lin.CountFactorizedParallel(0, 0)
				if (perr == nil) != (lerr == nil) {
					t.Fatalf("factorized errors diverge: parsed %v, loaded %v", perr, lerr)
				}
				if perr == nil && pfc.Cmp(lfc) != 0 {
					t.Fatalf("factorized count: loaded %s, parsed %s", lfc, pfc)
				}
				// FPRAS: the sharded sampler is deterministic per seed, so
				// the estimates must be bit-identical.
				pest, perr2 := pin.ApxParallelWithSamples(4000, 0, 42)
				lest, lerr2 := lin.ApxParallelWithSamples(4000, 0, 42)
				if (perr2 == nil) != (lerr2 == nil) {
					t.Fatalf("FPRAS errors diverge: parsed %v, loaded %v", perr2, lerr2)
				}
				if perr2 == nil {
					if pest.Hits != lest.Hits || pest.Samples != lest.Samples || pest.Value.Cmp(lest.Value) != 0 {
						t.Fatalf("FPRAS diverges: loaded %v/%d, parsed %v/%d",
							lest.Value, lest.Hits, pest.Value, pest.Hits)
					}
				}
			}
		})
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWriterDeterministic pins the byte-for-byte determinism of the
// writer: same instance, same bytes.
func TestWriterDeterministic(t *testing.T) {
	db, ks, _ := workload.MultiComponent(3, 2, 2)
	var a, b bytes.Buffer
	if err := store.Write(&a, db, ks, store.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	if err := store.Write(&b, db, ks, store.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("writer output is not deterministic")
	}
}

// TestMinimalSnapshot exercises a snapshot written without the optional
// sections: blocks must be recomputed from the fact column.
func TestMinimalSnapshot(t *testing.T) {
	db, ks, q := workload.MultiComponent(3, 2, 2)
	var buf bytes.Buffer
	if err := store.Write(&buf, db, ks, store.Options{}); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.HasBlocks() || snap.HasPostings() {
		t.Fatal("minimal snapshot reports optional sections")
	}
	lin := loadedInstance(t, snap, q)
	pin := repairs.MustInstance(db, ks, q)
	pn, _, err := pin.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	ln, _, err := lin.CountExact()
	if err != nil {
		t.Fatal(err)
	}
	if pn.Cmp(ln) != 0 {
		t.Fatalf("minimal snapshot count %s, want %s", ln, pn)
	}
}

// TestEmptySnapshot round-trips the empty instance.
func TestEmptySnapshot(t *testing.T) {
	db := relational.MustDatabase()
	ks := relational.Keys(map[string]int{"R": 1})
	snap := roundTrip(t, db, ks)
	ldb, err := snap.Database()
	if err != nil {
		t.Fatal(err)
	}
	if ldb.Len() != 0 {
		t.Fatalf("empty snapshot has %d facts", ldb.Len())
	}
	blocks, err := snap.Blocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 0 {
		t.Fatalf("empty snapshot has %d blocks", len(blocks))
	}
	lks, err := snap.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if got := lks.String(); got != ks.String() {
		t.Fatalf("keys round-trip: %q, want %q", got, ks.String())
	}
}

// reseal recomputes the trailing checksum after a mutation, producing a
// CRC-valid but semantically tampered snapshot.
func reseal(data []byte) []byte {
	crc := crc32.Checksum(data[:len(data)-8], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint64(data[len(data)-8:], uint64(crc))
	return data
}

// TestTamperedContentRejected: mutations that keep every offset in range
// but break semantic invariants — canonical fact order, block boundaries,
// posting-list contents — must be rejected even when the checksum is
// recomputed, not silently produce wrong counts.
func TestTamperedContentRejected(t *testing.T) {
	db, ks, _ := workload.MultiComponent(2, 2, 2)
	var buf bytes.Buffer
	if err := store.Write(&buf, db, ks, store.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	if _, err := store.Decode(pristine); err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, twiddle func(d []byte) bool) {
		t.Helper()
		found := false
		// Try every 4-byte word: at least one mutation per class must be
		// accepted by twiddle, and every accepted mutation must be
		// rejected by Decode.
		for off := 32; off+4 <= len(pristine)-8; off += 4 {
			d := append([]byte(nil), pristine...)
			if !twiddle(d[off : off+4]) {
				continue
			}
			found = true
			if _, err := store.Decode(reseal(d)); err == nil {
				snapA, _ := store.Decode(pristine)
				t.Fatalf("%s: tampered word at offset %d decodes cleanly (pristine has %d facts)",
					name, off, snapA.NumFacts())
			}
		}
		if !found {
			t.Fatalf("%s: mutation never applied", name)
		}
	}
	// Swap any word with its successor when they differ: breaks canonical
	// order, block bounds, posting contents or offsets somewhere.
	mutate("swap-adjacent-words", func(w []byte) bool {
		// w is a view of 4 bytes; swap its two halves when distinct.
		if w[0] == w[2] && w[1] == w[3] {
			return false
		}
		w[0], w[1], w[2], w[3] = w[2], w[3], w[0], w[1]
		return true
	})
}

// TestLoadAllocationsConstant pins the O(1)-allocation property of the
// load path: decoding and materializing a 20× larger instance must not
// perform more allocations (each allocation is a whole column, so the
// count is size-independent).
func TestLoadAllocationsConstant(t *testing.T) {
	snapshotBytes := func(n int) []byte {
		rng := rand.New(rand.NewPCG(11, uint64(n)))
		db, ks := workload.Employee(rng, n, 5, 0.4)
		var buf bytes.Buffer
		if err := store.Write(&buf, db, ks, store.DefaultOptions); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	load := func(data []byte) func() {
		return func() {
			snap, err := store.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := snap.Database(); err != nil {
				t.Fatal(err)
			}
			if _, err := snap.Blocks(); err != nil {
				t.Fatal(err)
			}
			if _, err := snap.Index(); err != nil {
				t.Fatal(err)
			}
		}
	}
	small := testing.AllocsPerRun(20, load(snapshotBytes(150)))
	large := testing.AllocsPerRun(20, load(snapshotBytes(3000)))
	if large > small+8 {
		t.Fatalf("load allocations grow with instance size: %.0f at n=150, %.0f at n=3000", small, large)
	}
}

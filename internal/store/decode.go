package store

import (
	"bytes"
	"hash/crc32"
	"math"
	"sort"
	"unsafe"

	"repaircount/internal/eval"
)

// hostLE reports whether the host is little-endian, in which case uint32
// columns alias the snapshot bytes directly; big-endian hosts fall back to
// copying columns through explicit little-endian reads.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Decode parses and validates a snapshot held in memory and returns a
// Snapshot whose columns alias data (which must stay immutable and live
// for the Snapshot's lifetime — Open arranges this over a mapped file).
//
// Validation is exhaustive: the checksum, the section table, every offset
// column's monotonicity and every symbol/ordinal reference is checked
// here, so the materialized structures can index their arenas without
// bounds surprises. A corrupted snapshot yields an error, never a panic.
func Decode(data []byte) (*Snapshot, error) { return decode(data, true) }

// DecodeUnverified is Decode without the whole-file checksum pass — for
// callers that already trust the bytes (or cannot afford to fault in every
// page of a huge mapping up front). All structural validation still runs.
func DecodeUnverified(data []byte) (*Snapshot, error) { return decode(data, false) }

func decode(data []byte, verify bool) (*Snapshot, error) {
	if len(data) < headerSize+trailerLen {
		return nil, corrupt("%d bytes is shorter than header plus trailer", len(data))
	}
	if string(data[:4]) != magic {
		return nil, corrupt("bad magic %q", data[:4])
	}
	if v := le.Uint32(data[4:]); v != version {
		return nil, corrupt("unsupported version %d (want %d)", v, version)
	}
	flags := le.Uint32(data[8:])
	if flags&^uint32(flagBlocks|flagPostings) != 0 {
		return nil, corrupt("unknown flag bits %#x", flags)
	}
	nSecs := le.Uint32(data[12:])
	if nSecs > maxSectionID {
		return nil, corrupt("%d sections exceed the %d defined ids", nSecs, maxSectionID)
	}
	// The header records the sealed base size; any bytes beyond it must
	// parse as appended delta-journal blocks (replayed at materialization).
	base := le.Uint64(data[16:])
	if base < headerSize+trailerLen || base > uint64(len(data)) {
		return nil, corrupt("header says %d bytes, have %d", base, len(data))
	}
	if le.Uint64(data[24:]) != 0 {
		return nil, corrupt("reserved header field is nonzero")
	}
	journal, err := parseJournal(data[base:])
	if err != nil {
		return nil, err
	}
	body := data[:base-trailerLen]
	if verify {
		if got, want := uint64(crc32.Checksum(body, crcTable)), le.Uint64(data[base-trailerLen:base]); got != want {
			return nil, corrupt("checksum mismatch: file says %#x, content hashes to %#x", want, got)
		}
	}

	// Section table: ascending, non-overlapping, 8-aligned, unique ids.
	var tab [maxSectionID + 1]struct {
		off, ln uint64
		ok      bool
	}
	prevEnd := uint64(headerSize) + uint64(entrySize)*uint64(nSecs)
	if prevEnd > uint64(len(body)) {
		return nil, corrupt("section table overruns the file")
	}
	for i := uint32(0); i < nSecs; i++ {
		e := data[headerSize+int(i)*entrySize:]
		id := le.Uint32(e)
		if id == 0 || id > maxSectionID {
			return nil, corrupt("unknown section id %d", id)
		}
		if le.Uint32(e[4:]) != 0 {
			return nil, corrupt("section %d: nonzero table padding", id)
		}
		off, ln := le.Uint64(e[8:]), le.Uint64(e[16:])
		if tab[id].ok {
			return nil, corrupt("duplicate section %d", id)
		}
		if off%8 != 0 {
			return nil, corrupt("section %d: offset %d is not 8-aligned", id, off)
		}
		if off < prevEnd {
			return nil, corrupt("section %d: offset %d overlaps the previous section", id, off)
		}
		end := off + ln
		if end < off || end > uint64(len(body)) {
			return nil, corrupt("section %d: [%d, %d) overruns the file", id, off, end)
		}
		tab[id] = struct {
			off, ln uint64
			ok      bool
		}{off, ln, true}
		prevEnd = end
	}
	want := []uint32{secConstBytes, secConstOffs, secPredBytes, secPredOffs,
		secSchema, secExtraKeys, secFactPred, secFactOffs, secFactArgs, secDomOrder}
	if flags&flagBlocks != 0 {
		want = append(want, secBlockBounds)
	}
	if flags&flagPostings != 0 {
		want = append(want, secPostKeys, secPostOffs, secPostOrds)
	}
	if int(nSecs) != len(want) {
		return nil, corrupt("have %d sections, flags require %d", nSecs, len(want))
	}
	for _, id := range want {
		if !tab[id].ok {
			return nil, corrupt("missing section %d", id)
		}
	}
	raw := func(id uint32) []byte { return data[tab[id].off : tab[id].off+tab[id].ln] }
	u32 := func(id uint32) ([]uint32, error) {
		if tab[id].ln%4 != 0 {
			return nil, corrupt("section %d: length %d is not a whole number of words", id, tab[id].ln)
		}
		return u32View(raw(id)), nil
	}

	s := &Snapshot{data: data, journal: journal, baseCRC: le.Uint64(data[base-trailerLen : base]), baseLen: base}
	if s.constOffs, err = u32(secConstOffs); err != nil {
		return nil, err
	}
	if s.predOffs, err = u32(secPredOffs); err != nil {
		return nil, err
	}
	if s.schema, err = u32(secSchema); err != nil {
		return nil, err
	}
	if s.fpred, err = u32(secFactPred); err != nil {
		return nil, err
	}
	if s.factOffs, err = u32(secFactOffs); err != nil {
		return nil, err
	}
	if s.factArgs, err = u32(secFactArgs); err != nil {
		return nil, err
	}
	if s.domOrder, err = u32(secDomOrder); err != nil {
		return nil, err
	}
	s.constBytes, s.predBytes = raw(secConstBytes), raw(secPredBytes)

	// Symbol tables: offset columns frame the byte arenas.
	if err := checkOffsets("constant", s.constOffs, uint64(len(s.constBytes))); err != nil {
		return nil, err
	}
	if err := checkOffsets("predicate", s.predOffs, uint64(len(s.predBytes))); err != nil {
		return nil, err
	}
	nc, np := len(s.constOffs)-1, len(s.predOffs)-1
	n := len(s.fpred)
	if nc > math.MaxInt32 || np > math.MaxInt32 || n > math.MaxInt32 || len(s.factArgs) > math.MaxInt32 {
		return nil, corrupt("column sizes exceed the int32 ordinal space")
	}
	if len(s.schema) != 2*np {
		return nil, corrupt("schema has %d words for %d predicates", len(s.schema), np)
	}
	if len(s.factOffs) != n+1 {
		return nil, corrupt("factOffs has %d entries for %d facts", len(s.factOffs), n)
	}
	if s.factOffs[0] != 0 {
		return nil, corrupt("factOffs does not start at 0")
	}
	if s.factOffs[n] != uint32(len(s.factArgs)) {
		return nil, corrupt("factOffs ends at %d, argument arena has %d words", s.factOffs[n], len(s.factArgs))
	}
	// Every fact references a valid predicate and carries exactly the
	// schema arity of arguments (which also makes factOffs monotone).
	for i := 0; i < n; i++ {
		p := s.fpred[i]
		if p >= uint32(np) {
			return nil, corrupt("fact %d: predicate id %d out of range", i, p)
		}
		arity := uint64(s.schema[2*p])
		if uint64(s.factOffs[i+1])-uint64(s.factOffs[i]) != arity ||
			s.factOffs[i+1] < s.factOffs[i] {
			return nil, corrupt("fact %d: width %d does not match arity %d of predicate %d",
				i, int64(s.factOffs[i+1])-int64(s.factOffs[i]), arity, p)
		}
	}
	for i, cid := range s.factArgs {
		if cid >= uint32(nc) {
			return nil, corrupt("argument word %d: constant id %d out of range", i, cid)
		}
	}
	// Key widths: the +1 encoding must not wrap.
	for p := 0; p < np; p++ {
		if s.schema[2*p+1] == math.MaxUint32 {
			return nil, corrupt("predicate %d: key width overflows", p)
		}
	}
	// The domain order must be a permutation of the constant IDs.
	if len(s.domOrder) != nc {
		return nil, corrupt("domain order has %d entries for %d constants", len(s.domOrder), nc)
	}
	seen := make([]uint64, (nc+63)/64)
	for _, id := range s.domOrder {
		if id >= uint32(nc) || seen[id/64]&(1<<(id%64)) != 0 {
			return nil, corrupt("domain order is not a permutation of the constant ids")
		}
		seen[id/64] |= 1 << (id % 64)
	}
	// The permutation must be strictly ascending by symbol: one pass
	// proves both that the materialized active domain is sorted and that
	// the constant symbols are unique — membership probes on the loaded
	// structures rely on symbol → ID being injective.
	sym := func(offs []uint32, arena []byte, id uint32) []byte {
		return arena[offs[id]:offs[id+1]]
	}
	for i := 1; i < nc; i++ {
		if bytes.Compare(sym(s.constOffs, s.constBytes, s.domOrder[i-1]),
			sym(s.constOffs, s.constBytes, s.domOrder[i])) >= 0 {
			return nil, corrupt("domain order is not strictly ascending (duplicate or unsorted constants)")
		}
	}
	// Predicate symbols must be unique for the same reason.
	if np > 1 {
		perm := make([]int32, np)
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(i, j int) bool {
			return bytes.Compare(sym(s.predOffs, s.predBytes, uint32(perm[i])),
				sym(s.predOffs, s.predBytes, uint32(perm[j]))) < 0
		})
		for i := 1; i < np; i++ {
			if bytes.Equal(sym(s.predOffs, s.predBytes, uint32(perm[i-1])),
				sym(s.predOffs, s.predBytes, uint32(perm[i]))) {
				return nil, corrupt("duplicate predicate symbol %q", sym(s.predOffs, s.predBytes, uint32(perm[i])))
			}
		}
	}
	// The fact column must be in strict canonical order (predicate symbol,
	// then argument-wise by constant symbol): the block run decomposition,
	// the per-predicate ranges and fact de-duplication all rest on it.
	// Constant order is read off the validated domain permutation.
	rank := make([]int32, nc)
	for pos, id := range s.domOrder {
		rank[id] = int32(pos)
	}
	for i := 1; i < n; i++ {
		p, q := s.fpred[i-1], s.fpred[i]
		if p != q {
			if bytes.Compare(sym(s.predOffs, s.predBytes, p), sym(s.predOffs, s.predBytes, q)) >= 0 {
				return nil, corrupt("fact %d breaks the canonical predicate order", i)
			}
			continue
		}
		a := s.factArgs[s.factOffs[i-1]:s.factOffs[i]]
		b := s.factArgs[s.factOffs[i]:s.factOffs[i+1]]
		cmp := 0
		for k := range a { // same predicate ⇒ same arity
			if a[k] != b[k] {
				if rank[a[k]] < rank[b[k]] {
					cmp = -1
				} else {
					cmp = 1
				}
				break
			}
		}
		if cmp >= 0 {
			return nil, corrupt("facts %d and %d are duplicated or out of canonical order", i-1, i)
		}
	}
	if err := s.parseExtraKeys(raw(secExtraKeys)); err != nil {
		return nil, err
	}

	if flags&flagBlocks != 0 {
		if s.blockBounds, err = u32(secBlockBounds); err != nil {
			return nil, err
		}
		b := s.blockBounds
		if len(b) == 0 || b[0] != 0 || b[len(b)-1] != uint32(n) || (n == 0) != (len(b) == 1) {
			return nil, corrupt("block boundaries do not cover the %d facts", n)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				return nil, corrupt("block boundary %d is not ascending", i)
			}
		}
		// The stored boundaries must equal the run decomposition of the
		// (now canonically ordered) fact column — a snapshot carrying a
		// block partition inconsistent with its facts would silently
		// change every count.
		expect := s.computeBounds()
		if len(b) != len(expect) {
			return nil, corrupt("block section has %d boundaries, the fact column implies %d", len(b), len(expect))
		}
		for i := range b {
			if b[i] != expect[i] {
				return nil, corrupt("block boundary %d is %d, the fact column implies %d", i, b[i], expect[i])
			}
		}
	}
	if flags&flagPostings != 0 {
		keys, err := u32(secPostKeys)
		if err != nil {
			return nil, err
		}
		offs, err := u32(secPostOffs)
		if err != nil {
			return nil, err
		}
		ords, err := u32(secPostOrds)
		if err != nil {
			return nil, err
		}
		if len(keys)%3 != 0 {
			return nil, corrupt("posting keys are not (pred, pos, const) triples")
		}
		if len(ords) > math.MaxInt32 {
			return nil, corrupt("posting arena exceeds the int32 ordinal space")
		}
		if len(offs) != len(keys)/3+1 {
			return nil, corrupt("posting offsets have %d entries for %d lists", len(offs), len(keys)/3)
		}
		if err := checkOffsets("posting", offs, uint64(len(ords))); err != nil {
			return nil, err
		}
		// Triples must reference real symbols, fit the uint16 position of
		// the in-memory posting key, and ascend strictly — which also
		// rules out duplicate keys silently overwriting each other.
		for i := 0; i+2 < len(keys); i += 3 {
			pred, pos, cid := keys[i], keys[i+1], keys[i+2]
			if pred >= uint32(np) || cid >= uint32(nc) || pos > math.MaxUint16 {
				return nil, corrupt("posting key %d: (%d, %d, %d) out of range", i/3, pred, pos, cid)
			}
			if i > 0 {
				pp, pq, pc := keys[i-3], keys[i-2], keys[i-1]
				if pred < pp || (pred == pp && (pos < pq || (pos == pq && cid <= pc))) {
					return nil, corrupt("posting key %d is not in ascending order", i/3)
				}
			}
		}
		// Content check, making the lists exactly the ones ensurePostings
		// would compute: every entry must be sound (the referenced fact
		// really carries that constant at that position) and ascending,
		// and the total count must equal the argument count. Soundness
		// pins each (ordinal, position) slot to the single key that can
		// legally hold it, so the count forces completeness — no map or
		// allocation needed.
		if len(ords) != len(s.factArgs) {
			return nil, corrupt("posting lists hold %d entries for %d argument slots", len(ords), len(s.factArgs))
		}
		for i := 0; i+1 < len(offs); i++ {
			pred, pos, cid := keys[3*i], keys[3*i+1], keys[3*i+2]
			prev := -1
			for _, ord := range ords[offs[i]:offs[i+1]] {
				if int(ord) <= prev {
					return nil, corrupt("posting list %d is not strictly ascending", i)
				}
				prev = int(ord)
				if ord >= uint32(n) {
					return nil, corrupt("posting list %d: fact ordinal %d out of range", i, ord)
				}
				if s.fpred[ord] != pred {
					return nil, corrupt("posting list %d points at a fact of another predicate", i)
				}
				lo, hi := s.factOffs[ord], s.factOffs[ord+1]
				if pos >= hi-lo || s.factArgs[lo+pos] != cid {
					return nil, corrupt("posting list %d disagrees with fact %d", i, ord)
				}
			}
		}
		s.post = &eval.PostingSections{Keys: keys, Offs: i32View(offs), Ords: i32View(ords)}
	}
	return s, nil
}

// parseExtraKeys decodes section 6: key constraints on predicates that
// have no facts. The section is byte-packed, so values are read with
// explicit little-endian loads rather than aliased.
func (s *Snapshot) parseExtraKeys(b []byte) error {
	if len(b) < 4 {
		return corrupt("extra-key section is shorter than its count")
	}
	count := le.Uint32(b)
	b = b[4:]
	if uint64(count) > uint64(len(b))/8 {
		return corrupt("extra-key count %d overruns the section", count)
	}
	for i := uint32(0); i < count; i++ {
		if len(b) < 8 {
			return corrupt("extra key %d is truncated", i)
		}
		width, nameLen := le.Uint32(b), le.Uint32(b[4:])
		b = b[8:]
		if uint64(nameLen) > uint64(len(b)) {
			return corrupt("extra key %d: name of %d bytes overruns the section", i, nameLen)
		}
		if width > math.MaxInt32 {
			return corrupt("extra key %d: width %d out of range", i, width)
		}
		s.extraKeys = append(s.extraKeys, extraKey{name: byteString(b[:nameLen]), width: int(width)})
		b = b[nameLen:]
	}
	if len(b) != 0 {
		return corrupt("%d trailing bytes after the extra keys", len(b))
	}
	return nil
}

// extraKey is a key constraint over a predicate absent from the data.
type extraKey struct {
	name  string
	width int
}

// checkOffsets validates an offset column framing an arena of the given
// length: non-empty, starting at 0, non-decreasing, ending at the arena
// length.
func checkOffsets(what string, offs []uint32, arenaLen uint64) error {
	if len(offs) == 0 || offs[0] != 0 {
		return corrupt("%s offsets do not start at 0", what)
	}
	if uint64(offs[len(offs)-1]) != arenaLen {
		return corrupt("%s offsets end at %d, arena has %d", what, offs[len(offs)-1], arenaLen)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return corrupt("%s offset %d is not monotone", what, i)
		}
	}
	return nil
}

// u32View reinterprets bytes as a little-endian uint32 column: a zero-copy
// alias on aligned little-endian hosts, an explicit copy otherwise. The
// caller guarantees len(b)%4 == 0.
func u32View(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLE && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = le.Uint32(b[4*i:])
	}
	return out
}

// i32View reinterprets a validated uint32 column (all values < 2³¹) as
// int32 without copying.
func i32View(v []uint32) []int32 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&v[0])), len(v))
}

// byteString returns a string aliasing b (no copy); the loader only calls
// it over immutable snapshot bytes.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

package store_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repaircount/internal/faultfs"
	"repaircount/internal/query"
	"repaircount/internal/relational"
	"repaircount/internal/store"
	"repaircount/internal/workload"
)

// writeBytes drops a byte image at path.
func writeBytes(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTornJournalTail is the exhaustive torn-tail table: a snapshot
// with one committed journal block is truncated at every byte offset of a
// second appended block, and every truncation must either load as the
// committed pre-append state after recovery (bit-identical bytes) or fail
// loudly — never panic, never load to any other state.
func TestRecoverTornJournalTail(t *testing.T) {
	db, ks := workload.PairsDatabase(3)
	q := query.MustParse("exists x . R(x, 'a')")
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	ops1 := []store.JournalOp{{Fact: relational.NewFact("R", "k9", "a")}}
	if err := store.AppendJournal(path, ops1); err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ops2 := []store.JournalOp{
		{Fact: relational.NewFact("R", "k8", "b")},
		{Del: true, Fact: relational.NewFact("R", "k0", "a")},
	}
	if err := store.AppendJournal(path, ops2); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(committed) {
		t.Fatalf("append did not grow the file: %d -> %d", len(committed), len(full))
	}
	_, wantCount, wantDec := snapshotCounts(t, path, q)

	// Reference counts of the committed (pre-append) state.
	writeBytes(t, path, committed)
	preTotal, preCount, preDec := snapshotCounts(t, path, q)

	torn := filepath.Join(dir, "torn.cqs")
	for cut := len(committed); cut < len(full); cut++ {
		writeBytes(t, torn, full[:cut])
		if cut > len(committed) {
			// The strict loader must reject the torn file outright.
			if _, err := store.Decode(append([]byte(nil), full[:cut]...)); err == nil {
				t.Fatalf("cut=%d: torn file decoded cleanly", cut)
			}
		}
		dropped, err := store.RecoverFile(torn)
		if err != nil {
			t.Fatalf("cut=%d: recover failed: %v", cut, err)
		}
		if want := int64(cut - len(committed)); dropped != want {
			t.Fatalf("cut=%d: dropped %d bytes, want %d", cut, dropped, want)
		}
		got, err := os.ReadFile(torn)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, committed) {
			t.Fatalf("cut=%d: recovered bytes differ from the committed state", cut)
		}
		gt, gc, gd := snapshotCounts(t, torn, q)
		if gt.Cmp(preTotal) != 0 || gc.Cmp(preCount) != 0 || gd != preDec {
			t.Fatalf("cut=%d: recovered counts (%s, %s, %v) differ from committed (%s, %s, %v)",
				cut, gt, gc, gd, preTotal, preCount, preDec)
		}
	}

	// The complete file recovers to itself.
	writeBytes(t, torn, full)
	if dropped, err := store.RecoverFile(torn); err != nil || dropped != 0 {
		t.Fatalf("clean file: dropped=%d err=%v", dropped, err)
	}
	gt, gc, gd := snapshotCounts(t, torn, q)
	if gc.Cmp(wantCount) != 0 || gd != wantDec {
		t.Fatalf("clean recover changed counts: (%s, %s, %v)", gt, gc, gd)
	}
}

// TestRecoverRejectsDamage pins the loud-failure side: damage that a torn
// append cannot explain must fail recovery, not silently truncate.
func TestRecoverRejectsDamage(t *testing.T) {
	db, ks := workload.PairsDatabase(2)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(path, []store.JournalOp{{Fact: relational.NewFact("R", "k7", "a")}}); err != nil {
		t.Fatal(err)
	}
	if err := store.AppendJournal(path, []store.JournalOp{{Fact: relational.NewFact("R", "k6", "a")}}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode(append([]byte(nil), full...))
	if err != nil {
		t.Fatal(err)
	}
	journalLen := int(snap.JournalBytes())
	baseLen := len(full) - journalLen

	check := func(name string, mut func([]byte) []byte) {
		t.Helper()
		bad := filepath.Join(dir, "bad.cqs")
		writeBytes(t, bad, mut(append([]byte(nil), full...)))
		if _, err := store.RecoverFile(bad); err == nil {
			t.Errorf("%s: recovery silently succeeded", name)
		}
	}
	// A bit flip in the sealed base fails its checksum.
	check("base bit flip", func(b []byte) []byte { b[baseLen/2] ^= 1; return b })
	// Garbage where the first journal block's magic must be.
	check("journal bad magic", func(b []byte) []byte { b[baseLen] ^= 0xff; return b })
	// A checksum failure before the final block is corruption, not a tear.
	check("non-final crc flip", func(b []byte) []byte { b[baseLen+20] ^= 1; return b })
	// A file shorter than its header's base size lost sealed bytes.
	check("truncated base", func(b []byte) []byte { return b[:baseLen-1] })
}

// TestAppendJournalFaultSweep drives AppendJournal through every injected
// crash point: for each fault budget, the interrupted file must recover to
// a state bit-identical to either the pre-append or the post-append
// snapshot — never a third state, never a miscount.
func TestAppendJournalFaultSweep(t *testing.T) {
	db, ks := workload.PairsDatabase(3)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, db, ks); err != nil {
		t.Fatal(err)
	}
	pre, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ops := []store.JournalOp{
		{Fact: relational.NewFact("R", "k9", "a")},
		{Del: true, Fact: relational.NewFact("R", "k0", "a")},
	}
	// Reference post-append image, written without faults.
	if err := store.AppendJournal(path, ops); err != nil {
		t.Fatal(err)
	}
	post, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	defer faultfs.Clear()
	for budget := int64(0); ; budget++ {
		writeBytes(t, path, pre)
		h := faultfs.Inject(budget)
		err := store.AppendJournal(path, ops)
		faultfs.Clear()
		if !h.Tripped() {
			if err != nil {
				t.Fatalf("budget=%d: untripped append failed: %v", budget, err)
			}
			break // the whole append fit the budget: sweep is exhaustive
		}
		if err == nil {
			t.Fatalf("budget=%d: tripped append reported success", budget)
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("budget=%d: fault surfaced as %v", budget, err)
		}
		if _, err := store.RecoverFile(path); err != nil {
			t.Fatalf("budget=%d: recovery failed: %v", budget, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pre) && !bytes.Equal(got, post) {
			t.Fatalf("budget=%d: recovered file matches neither committed state", budget)
		}
		if _, err := store.Decode(append([]byte(nil), got...)); err != nil {
			t.Fatalf("budget=%d: recovered file does not load: %v", budget, err)
		}
	}
}

// TestWriteFileFaultSweep drives the atomic snapshot writer through every
// injected crash point: the destination must hold either the old complete
// snapshot or the new one after every fault, and no temp litter survives.
func TestWriteFileFaultSweep(t *testing.T) {
	oldDB, oldKS := workload.PairsDatabase(2)
	newDB, newKS := workload.PairsDatabase(4)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.cqs")
	if err := store.WriteFile(path, oldDB, oldKS); err != nil {
		t.Fatal(err)
	}
	oldBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteFile(path, newDB, newKS); err != nil {
		t.Fatal(err)
	}
	newBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	defer faultfs.Clear()
	for budget := int64(0); ; budget++ {
		writeBytes(t, path, oldBytes)
		h := faultfs.Inject(budget)
		err := store.WriteFile(path, newDB, newKS)
		faultfs.Clear()
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("budget=%d: destination vanished: %v", budget, rerr)
		}
		if !bytes.Equal(got, oldBytes) && !bytes.Equal(got, newBytes) {
			t.Fatalf("budget=%d: destination is neither the old nor the new snapshot", budget)
		}
		if _, derr := store.Decode(append([]byte(nil), got...)); derr != nil {
			t.Fatalf("budget=%d: destination does not load: %v", budget, derr)
		}
		ents, derr := os.ReadDir(dir)
		if derr != nil {
			t.Fatal(derr)
		}
		if len(ents) != 1 {
			t.Fatalf("budget=%d: temp litter left behind: %v", budget, ents)
		}
		if !h.Tripped() {
			if err != nil {
				t.Fatalf("budget=%d: untripped write failed: %v", budget, err)
			}
			break
		}
		if err == nil {
			t.Fatalf("budget=%d: tripped write reported success", budget)
		}
	}
}
